#include "src/search/lcss_search.h"

#include <gtest/gtest.h>

#include "src/core/random.h"

namespace rotind {
namespace {

Series RandomSeries(Rng* rng, std::size_t n) {
  Series s(n);
  for (double& v : s) v = rng->Gaussian(0.0, 1.0);
  return s;
}

TEST(LcssMatchUpperBoundTest, FullMatchInsideEnvelope) {
  const std::size_t n = 20;
  Series upper(n, 1.0);
  Series lower(n, -1.0);
  Series q(n, 0.0);
  EXPECT_EQ(LcssMatchUpperBound(q.data(), upper.data(), lower.data(), n, 0.1,
                                /*required_matches=*/1),
            n);
}

TEST(LcssMatchUpperBoundTest, EpsilonWidensTheBand) {
  const std::size_t n = 10;
  Series upper(n, 0.0);
  Series lower(n, 0.0);
  Series q(n, 0.5);
  EXPECT_EQ(LcssMatchUpperBound(q.data(), upper.data(), lower.data(), n,
                                /*epsilon=*/0.4, 1),
            0u);
  EXPECT_EQ(LcssMatchUpperBound(q.data(), upper.data(), lower.data(), n,
                                /*epsilon=*/0.6, 1),
            n);
}

TEST(LcssMatchUpperBoundTest, AbandonsWhenRequirementUnreachable) {
  const std::size_t n = 100;
  Series upper(n, 0.0);
  Series lower(n, 0.0);
  Series q(n, 5.0);  // nothing matches
  StepCounter counter;
  const std::size_t bound = LcssMatchUpperBound(
      q.data(), upper.data(), lower.data(), n, 0.1, n, &counter);
  EXPECT_EQ(bound, 0u);
  EXPECT_EQ(counter.steps, 1u);  // first miss already disqualifies
  EXPECT_EQ(counter.early_abandons, 1u);
}

/// Exactness property: the wedge LCSS search returns exactly the
/// brute-force rotation-invariant LCSS result.
class LcssWedgeExactnessTest : public ::testing::TestWithParam<int> {};

TEST_P(LcssWedgeExactnessTest, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 17);
  const std::size_t n = 24 + rng.NextBounded(16);
  LcssOptions options;
  options.epsilon = rng.Uniform(0.2, 0.8);
  options.delta = 1 + static_cast<int>(rng.NextBounded(5));

  const Series q = RandomSeries(&rng, n);
  StepCounter counter;
  LcssWedgeSearcher searcher(q, options, {}, &counter);
  RotationSet rots(q, {});

  for (int trial = 0; trial < 8; ++trial) {
    const Series c = RandomSeries(&rng, n);
    std::size_t expected = 0;
    for (std::size_t r = 0; r < rots.count(); ++r) {
      expected = std::max(
          expected, LcssLength(rots.rotation(r), c.data(), n, options));
    }
    const LcssMatchResult m = searcher.Match(c.data(), 0, &counter);
    if (expected == 0) {
      EXPECT_TRUE(m.pruned);  // nothing beats best_so_far = 0 strictly
    } else {
      ASSERT_FALSE(m.pruned);
      EXPECT_EQ(m.length, expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LcssWedgeExactnessTest,
                         ::testing::Range(1, 7));

TEST(LcssWedgeSearcherTest, PrunesAgainstBestSoFar) {
  Rng rng(5);
  const std::size_t n = 30;
  LcssOptions options;
  options.epsilon = 0.3;
  options.delta = 3;
  const Series q = RandomSeries(&rng, n);
  StepCounter counter;
  LcssWedgeSearcher searcher(q, options, {}, &counter);
  const Series c = RandomSeries(&rng, n);
  // With best_so_far = n (perfect), nothing can strictly beat it.
  const LcssMatchResult m = searcher.Match(c.data(), n, &counter);
  EXPECT_TRUE(m.pruned);
}

TEST(LcssSearchDatabaseTest, WedgeAndBruteForceAgree) {
  Rng rng(6);
  const std::size_t n = 28;
  std::vector<Series> db;
  for (int i = 0; i < 15; ++i) db.push_back(RandomSeries(&rng, n));
  const Series q = RandomSeries(&rng, n);
  LcssOptions options;
  options.epsilon = 0.5;
  options.delta = 4;

  const LcssScanResult wedge =
      LcssSearchDatabase(db, q, options, {}, /*use_wedges=*/true);
  const LcssScanResult brute =
      LcssSearchDatabase(db, q, options, {}, /*use_wedges=*/false);
  EXPECT_EQ(wedge.best_length, brute.best_length);
  // Ties between objects are broken by scan order in both paths.
  EXPECT_EQ(wedge.best_index, brute.best_index);
}

TEST(LcssSearchDatabaseTest, WedgeSavesStepsWhenAGoodMatchExists) {
  // Pruning needs a tight best-so-far: once a near-perfect match is found,
  // the upper bound kills the remaining objects cheaply. (On pure noise
  // with a generous epsilon nothing can prune — that is a property of
  // LCSS, not of the wedge machinery.)
  Rng rng(9);
  const std::size_t n = 48;
  const Series q = RandomSeries(&rng, n);
  std::vector<Series> db;
  db.push_back(RotateLeft(q, 11));  // near-perfect match seen FIRST
  for (int i = 0; i < 30; ++i) db.push_back(RandomSeries(&rng, n));

  LcssOptions options;
  options.epsilon = 0.2;
  options.delta = 2;
  const LcssScanResult wedge =
      LcssSearchDatabase(db, q, options, {}, /*use_wedges=*/true);
  const LcssScanResult brute =
      LcssSearchDatabase(db, q, options, {}, /*use_wedges=*/false);
  EXPECT_EQ(wedge.best_index, 0);
  EXPECT_EQ(wedge.best_length, brute.best_length);
  EXPECT_LT(wedge.counter.total_steps(), brute.counter.total_steps() / 2);
}

TEST(LcssSearchDatabaseTest, FindsPlantedRotatedOccludedMatch) {
  // The LCSS use case (paper Figures 14/15): the query matches a rotated
  // object even when a chunk of the object is "missing" (occluded).
  Rng rng(7);
  const std::size_t n = 60;
  std::vector<Series> db;
  for (int i = 0; i < 10; ++i) db.push_back(RandomSeries(&rng, n));
  Series q = RandomSeries(&rng, n);
  Series planted = RotateLeft(q, 23);
  for (std::size_t i = 10; i < 18; ++i) planted[i] = 40.0;  // occlusion
  db[6] = planted;

  LcssOptions options;
  options.epsilon = 0.15;
  options.delta = 2;
  const LcssScanResult r = LcssSearchDatabase(db, q, options);
  EXPECT_EQ(r.best_index, 6);
  EXPECT_GE(r.best_similarity, 0.8);  // 52 of 60 points still match
  EXPECT_EQ(r.best_shift, 23);
}

TEST(LcssSearchDatabaseTest, MirrorOptionWorks) {
  Rng rng(8);
  const std::size_t n = 32;
  std::vector<Series> db;
  for (int i = 0; i < 8; ++i) db.push_back(RandomSeries(&rng, n));
  const Series q = RandomSeries(&rng, n);
  db[3] = RotateLeft(Reversed(q), 7);

  LcssOptions options;
  options.epsilon = 1e-9;
  options.delta = 0;
  RotationOptions mirror;
  mirror.mirror = true;
  const LcssScanResult r = LcssSearchDatabase(db, q, options, mirror);
  EXPECT_EQ(r.best_index, 3);
  EXPECT_EQ(r.best_length, n);
  EXPECT_TRUE(r.best_mirrored);
}

}  // namespace
}  // namespace rotind
