/// Unit tests for the project linter. Each test seeds an in-memory tree
/// with exactly one violation and asserts the matching rule (and only it)
/// fires — so the linter itself is held to "no false negatives on the
/// violations it exists to catch, no false positives on idiomatic code".

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/lint/rotind_lint.h"

namespace rotind {
namespace lint {
namespace {

std::vector<std::string> RuleNames(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const Finding& f : findings) rules.push_back(f.rule);
  return rules;
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  const std::vector<std::string> rules = RuleNames(findings);
  return static_cast<int>(std::count(rules.begin(), rules.end(), rule));
}

TEST(StripCommentsAndStringsTest, RemovesProseKeepsCodeAndLines) {
  const std::string in =
      "int a; // new delete rand()\n"
      "const char* s = \".value() new\";\n"
      "/* rand()\n   spans lines */ int b;\n";
  const std::string out = StripCommentsAndStrings(in);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
  EXPECT_EQ(out.find("new"), std::string::npos);
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_EQ(out.find(".value"), std::string::npos);
}

TEST(StripCommentsAndStringsTest, HandlesRawStringLiterals) {
  // A raw string holds a bare quote — the classic state-machine desync.
  const std::string in =
      "auto re = R\"(say \"new\" .value())\"; int after; auto s = \"x\";\n";
  const std::string out = StripCommentsAndStrings(in);
  EXPECT_EQ(out.find("new"), std::string::npos);
  EXPECT_EQ(out.find(".value"), std::string::npos);
  EXPECT_NE(out.find("int after;"), std::string::npos);
}

TEST(StripCommentsAndStringsTest, HandlesEscapesInsideLiterals) {
  const std::string in = "const char* s = \"a\\\"new\\\"b\"; char c = '\\''; int new_ok;\n";
  const std::string out = StripCommentsAndStrings(in);
  EXPECT_EQ(out.find("new\\"), std::string::npos);
  EXPECT_NE(out.find("int new_ok;"), std::string::npos);
}

/// Acceptance: a seeded layering violation is detected. envelope -> search
/// is exactly the inversion this repository once contained (lower_bound
/// lived in src/search/ while src/envelope/ included it).
TEST(RotindLintTest, DetectsSeededLayeringViolation) {
  const std::vector<SourceFile> files = {
      {"src/envelope/bad.cc",
       "#include \"src/search/hmerge.h\"\n#include \"src/core/series.h\"\n"},
  };
  const std::vector<Finding> findings = CheckLayering(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "layering");
  EXPECT_EQ(findings[0].file, "src/envelope/bad.cc");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("search"), std::string::npos);
}

TEST(RotindLintTest, AllowsDagEdgesAndSelfIncludes) {
  const std::vector<SourceFile> files = {
      {"src/search/ok.cc",
       "#include \"src/search/scan.h\"\n"
       "#include \"src/envelope/wedge_tree.h\"\n"
       "#include \"src/fourier/spectral.h\"\n"
       "#include \"src/core/status.h\"\n"},
      {"src/index/ok.cc", "#include \"src/search/engine.h\"\n"},
      // tools/tests/bench sit above the DAG and may include anything.
      {"tools/whatever.cc", "#include \"src/index/disk.h\"\n"},
  };
  EXPECT_TRUE(CheckLayering(files).empty());
}

/// The storage layer sits between io and the consumers that fetch through
/// it: io -> storage -> {index, search}. Upward includes from storage into
/// its consumers are the inversions the DAG must reject.
TEST(RotindLintTest, StorageLayerEdges) {
  const std::vector<SourceFile> allowed = {
      {"src/storage/ok.cc",
       "#include \"src/storage/backend.h\"\n"
       "#include \"src/io/serialize.h\"\n"
       "#include \"src/core/status.h\"\n"},
      {"src/index/ok.cc", "#include \"src/storage/backend.h\"\n"},
      {"src/search/ok.cc", "#include \"src/storage/buffer_pool.h\"\n"},
  };
  EXPECT_TRUE(CheckLayering(allowed).empty());
}

TEST(RotindLintTest, ServeLayerEdges) {
  // serve sits at the top of the DAG: it may reach down into search,
  // storage, obs, and core, but nothing below may reach up into serve.
  const std::vector<SourceFile> allowed = {
      {"src/serve/ok.cc",
       "#include \"src/serve/server.h\"\n"
       "#include \"src/search/engine.h\"\n"
       "#include \"src/storage/backend.h\"\n"
       "#include \"src/obs/metrics.h\"\n"
       "#include \"src/core/status.h\"\n"},
  };
  EXPECT_TRUE(CheckLayering(allowed).empty());
}

TEST(RotindLintTest, DetectsServeBeingIncludedFromBelow) {
  const std::vector<SourceFile> files = {
      {"src/search/bad.cc", "#include \"src/serve/server.h\"\n"},
      {"src/storage/bad.cc", "#include \"src/serve/protocol.h\"\n"},
  };
  const std::vector<Finding> findings = CheckLayering(files);
  ASSERT_EQ(findings.size(), 2u);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "layering");
    EXPECT_EQ(f.line, 1);
  }
}

TEST(RotindLintTest, DetectsStorageIncludingItsConsumers) {
  const std::vector<SourceFile> files = {
      {"src/storage/bad_search.cc", "#include \"src/search/engine.h\"\n"},
      {"src/storage/bad_index.cc",
       "#include \"src/index/candidate_scan.h\"\n"},
      // storage is below obs too: I/O accounting flows up via FetchStats,
      // never by storage reaching into the metrics registry.
      {"src/storage/bad_obs.cc", "#include \"src/obs/metrics.h\"\n"},
  };
  const std::vector<Finding> findings = CheckLayering(files);
  ASSERT_EQ(findings.size(), 3u);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "layering");
    EXPECT_EQ(f.line, 1);
  }
}

TEST(RotindLintTest, FlagsModuleMissingFromDag) {
  const std::vector<SourceFile> files = {
      {"src/newmodule/a.cc", "#include \"src/core/series.h\"\n"}};
  const std::vector<Finding> findings = CheckLayering(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("layer DAG"), std::string::npos);
}

TEST(RotindLintTest, LayeringIgnoresIncludesInComments) {
  const std::vector<SourceFile> files = {
      {"src/envelope/ok.cc",
       "// #include \"src/search/hmerge.h\" (moved; see history)\n"
       "#include \"src/envelope/envelope.h\"\n"}};
  EXPECT_TRUE(CheckLayering(files).empty());
}

/// Acceptance: a missing [[nodiscard]] on a Status-returning declaration
/// is detected — in headers, where the contract is visible to callers.
TEST(RotindLintTest, DetectsMissingNodiscard) {
  const std::vector<SourceFile> files = {
      {"src/io/bad.h",
       "Status SaveThing(const std::string& path);\n"
       "StatusOr<int> ParseThing(std::string_view text);\n"},
  };
  const std::vector<Finding> findings = CheckNodiscard(files);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "nodiscard");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(findings[1].line, 2);
}

TEST(RotindLintTest, AcceptsNodiscardOnSameOrPreviousLine) {
  const std::vector<SourceFile> files = {
      {"src/io/ok.h",
       "[[nodiscard]] Status SaveThing(const std::string& path);\n"
       "[[nodiscard]] static StatusOr<int> ParseThing(std::string_view t);\n"
       "[[nodiscard]]\n"
       "StatusOr<std::vector<double>> LongDeclarationName(int value);\n"},
  };
  EXPECT_TRUE(CheckNodiscard(files).empty());
}

TEST(RotindLintTest, NodiscardIgnoresUsesAndDefinitionsInCc) {
  const std::vector<SourceFile> files = {
      {"src/io/ok.h",
       "class Foo {\n"
       "  Status status_;\n"  // member, not a declaration
       "};\n"
       "// Status Load(const std::string&) — documented, not declared\n"},
      {"src/io/impl.cc",
       // Out-of-line definitions carry the attribute at the declaration.
       "Status SaveThing(const std::string& path) { return Status::Ok(); }\n"
       "void f() { return Status::InvalidArgument(\"x\"); }\n"},
  };
  EXPECT_TRUE(CheckNodiscard(files).empty());
}

TEST(RotindLintTest, DetectsUncheckedValueOutsideTests) {
  const std::vector<SourceFile> files = {
      {"src/search/bad.cc", "auto v = LoadThing(path).value();\n"},
      {"tests/ok_test.cc", "auto v = LoadThing(path).value();\n"},
  };
  const std::vector<Finding> findings = CheckUncheckedValue(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unchecked-value");
  EXPECT_EQ(findings[0].file, "src/search/bad.cc");
}

TEST(RotindLintTest, DetectsRawAllocationAndRandInKernels) {
  const std::vector<SourceFile> files = {
      {"src/distance/bad.cc",
       "double* buf = new double[n];\n"
       "delete[] buf;\n"
       "int r = rand();\n"},
      // Same tokens outside a kernel directory are not this rule's business.
      {"src/io/ok.cc", "double* buf = new double[n]; delete[] buf;\n"},
  };
  const std::vector<Finding> findings = CheckKernelHygiene(files);
  EXPECT_EQ(CountRule(findings, "kernel-hygiene"), 3);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.file, "src/distance/bad.cc");
  }
}

TEST(RotindLintTest, AllowsDeletedSpecialMembersAndIdentifiers) {
  const std::vector<SourceFile> files = {
      {"src/search/ok.h",
       "struct E {\n"
       "  E(const E&) = delete;\n"
       "  E& operator=(const E&) =\n"
       "      delete;\n"  // continuation line, as clang-format wraps it
       "  int new_count = 0;\n"  // identifier containing the token
       "  double rand_like = randomize();\n"
       "};\n"},
  };
  EXPECT_TRUE(CheckKernelHygiene(files).empty());
}

/// Acceptance: intrinsics outside src/simd/ are detected — both the
/// *intrin.h includes and the _mm*/__m* tokens. This is the rule that keeps
/// the bit-exact scalar twin honest: vector code anywhere else would have
/// no scalar reference to be compared against.
TEST(RotindLintTest, DetectsIntrinsicsOutsideSimd) {
  const std::vector<SourceFile> files = {
      {"src/distance/bad.cc",
       "#include <immintrin.h>\n"
       "__m256d v = _mm256_setzero_pd();\n"
       "auto w = _mm256_add_pd(v, v);\n"},
  };
  const std::vector<Finding> findings = CheckIntrinsicsOutsideSimd(files);
  EXPECT_EQ(CountRule(findings, "intrinsics-outside-simd"),
            static_cast<int>(findings.size()));
  ASSERT_GE(findings.size(), 3u);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.file, "src/distance/bad.cc");
  }
}

TEST(RotindLintTest, AllowsIntrinsicsInsideSimdAndIgnoresProse) {
  const std::vector<SourceFile> files = {
      // The same content inside src/simd/ is exactly where it belongs.
      {"src/simd/kernels_avx2.cc",
       "#include <immintrin.h>\n"
       "__m256d v = _mm256_setzero_pd();\n"},
      // Mentions in comments and strings are not code.
      {"src/search/ok.cc",
       "// engine.cc never calls _mm256_add_pd directly; see src/simd/\n"
       "const char* s = \"__m256d\";\n"},
      // Identifiers merely containing the prefix are not intrinsics.
      {"src/distance/ok.cc", "int comm_mmap = 0; double m256 = 0.0;\n"},
  };
  EXPECT_TRUE(CheckIntrinsicsOutsideSimd(files).empty());
}

/// simd sits between core and the numeric layers: distance/envelope/search
/// may call down into it, core may not reach up.
TEST(RotindLintTest, SimdLayerEdges) {
  const std::vector<SourceFile> allowed = {
      {"src/simd/ok.cc",
       "#include \"src/simd/simd.h\"\n"
       "#include \"src/core/aligned.h\"\n"},
      {"src/distance/ok.cc", "#include \"src/simd/simd.h\"\n"},
      {"src/envelope/ok.cc", "#include \"src/simd/simd.h\"\n"},
      {"src/search/ok.cc", "#include \"src/simd/simd.h\"\n"},
  };
  EXPECT_TRUE(CheckLayering(allowed).empty());

  const std::vector<SourceFile> bad = {
      {"src/core/bad.cc", "#include \"src/simd/simd.h\"\n"},
      {"src/simd/bad.cc", "#include \"src/distance/euclidean.h\"\n"},
  };
  const std::vector<Finding> findings = CheckLayering(bad);
  ASSERT_EQ(findings.size(), 2u);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "layering");
  }
}

/// Acceptance: an unregistered test file is detected.
TEST(RotindLintTest, DetectsUnregisteredTest) {
  const std::vector<SourceFile> files = {
      {"tests/CMakeLists.txt",
       "set(ROTIND_TEST_SOURCES\n  alpha_test.cc\n)\n"},
      {"tests/alpha_test.cc", "TEST(A, B) {}\n"},
      {"tests/beta_test.cc", "TEST(B, C) {}\n"},
  };
  const std::vector<Finding> findings = CheckTestRegistration(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unregistered-test");
  EXPECT_EQ(findings[0].file, "tests/beta_test.cc");
}

TEST(RotindLintTest, TestRegistrationIgnoresHelpersAndSubdirs) {
  const std::vector<SourceFile> files = {
      {"tests/CMakeLists.txt", "set(ROTIND_TEST_SOURCES\n)\n"},
      {"tests/testing/fault_injection.cc", "void Corrupt();\n"},
      {"tests/testing/helper_test.cc", "TEST(H, I) {}\n"},
  };
  EXPECT_TRUE(CheckTestRegistration(files).empty());
}

TEST(RotindLintTest, DetectsSuppressionWithoutReason) {
  const std::vector<SourceFile> files = {
      {"src/core/bad.h",
       "// NOLINTNEXTLINE\n"
       "int a = unchecked();\n"
       "int b = other();  // NOLINT(some-check)\n"},
      {"src/core/ok.h",
       "// NOLINTNEXTLINE(google-explicit-constructor): implicit by design\n"
       "int c = conversion();\n"
       "int d = fine();  // NOLINT(some-check): measured hot path\n"},
  };
  const std::vector<Finding> findings = CheckNolintReasons(files);
  EXPECT_EQ(CountRule(findings, "nolint-reason"), 2);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.file, "src/core/bad.h");
  }
}

TEST(RotindLintTest, NodiscardCatchesWrappedDeclarations) {
  // clang-format wraps long declarations after the return type; the
  // attribute must still be present on the first line.
  const std::vector<SourceFile> files = {
      {"src/io/bad.h",
       "StatusOr<std::vector<double>>\n"
       "ReallyLongFactoryFunctionName(const std::string& path);\n"},
  };
  const std::vector<Finding> findings = CheckNodiscard(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "nodiscard");
  EXPECT_EQ(findings[0].line, 1);

  const std::vector<SourceFile> ok = {
      {"src/io/ok.h",
       "[[nodiscard]] StatusOr<std::vector<double>>\n"
       "ReallyLongFactoryFunctionName(const std::string& path);\n"},
  };
  EXPECT_TRUE(CheckNodiscard(ok).empty());
}

/// Acceptance: a raw std sync primitive in src/ is detected — the rule
/// that funnels all locking through the annotated layer in core/sync.h
/// where Clang's thread-safety analysis can see it.
TEST(RotindLintTest, DetectsRawSyncPrimitivesInSrc) {
  const std::vector<SourceFile> files = {
      {"src/search/bad.cc",
       "#include <mutex>\n"
       "std::mutex mu;\n"
       "std::lock_guard<std::mutex> lock(mu);\n"
       "std::condition_variable cv;\n"
       "std::unique_lock<std::mutex> ul(mu);\n"},
  };
  const std::vector<Finding> findings = CheckSyncPrimitives(files);
  // One finding per line: the include, then the first token of each line.
  EXPECT_EQ(CountRule(findings, "raw-sync-primitive"), 5);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.file, "src/search/bad.cc");
  }
}

TEST(RotindLintTest, AllowsSyncPrimitivesInSyncHeaderAndOutsideSrc) {
  const std::vector<SourceFile> files = {
      // The wrapping layer itself is the one sanctioned user.
      {"src/core/sync.h", "#include <mutex>\nstd::mutex mu_;\n"},
      // tests/tools/bench sit outside the annotated world.
      {"tests/ok_test.cc", "std::mutex mu;\n"},
      {"tools/ok.cc", "std::lock_guard<std::mutex> lock(mu);\n"},
      // Prose mentions are not code.
      {"src/search/ok.cc", "// never hold a std::mutex across Score()\n"},
      // rotind::Mutex and MutexLock are not std primitives.
      {"src/storage/ok.cc", "Mutex mu_;\nMutexLock lock(mu_);\n"},
  };
  EXPECT_TRUE(CheckSyncPrimitives(files).empty());
}

/// Acceptance: a member sharing a class with a rotind::Mutex but carrying
/// neither a guard annotation nor a SYNC-EXEMPT justification is detected.
TEST(RotindLintTest, DetectsUnannotatedMemberBesideMutex) {
  const std::vector<SourceFile> files = {
      {"src/storage/bad.h",
       "class Pool {\n"
       " private:\n"
       "  mutable Mutex mutex_;\n"
       "  std::size_t hits_ = 0;\n"
       "};\n"},
  };
  const std::vector<Finding> findings = CheckGuardedMembers(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "guarded-by");
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("hits_"), std::string::npos);
}

TEST(RotindLintTest, GuardedByAcceptsAnnotatedConstAndExemptMembers) {
  const std::vector<SourceFile> files = {
      {"src/storage/ok.h",
       "class Pool {\n"
       " private:\n"
       "  mutable Mutex mutex_{LockRank::kBufferPool};\n"
       "  CondVar cv_;\n"
       "  std::size_t hits_ ROTIND_GUARDED_BY(mutex_) = 0;\n"
       "  Status* err_ ROTIND_PT_GUARDED_BY(mutex_) = nullptr;\n"
       "  const std::size_t capacity_;\n"
       "  static constexpr int kMax = 8;\n"
       "  /// SYNC-EXEMPT: internally synchronized — owns its own Mutex.\n"
       "  BufferPool pool_;\n"
       "  std::map<PageId,\n"
       "           Frame*>\n"
       "      frames_ ROTIND_GUARDED_BY(mutex_);\n"
       "};\n"
       "class NoLocks {\n"
       "  std::size_t fine_without_annotations_ = 0;\n"
       "};\n"},
  };
  EXPECT_TRUE(CheckGuardedMembers(files).empty());
}

TEST(RotindLintTest, GuardedByScopesToTheOwningClassOnly) {
  // A Mutex in one class places no obligation on a sibling class, and a
  // nested struct is a different block than its enclosing class.
  const std::vector<SourceFile> files = {
      {"src/serve/ok.h",
       "class Server {\n"
       "  struct Item {\n"
       "    std::uint64_t id_ = 0;\n"
       "  };\n"
       "  Mutex mutex_;\n"
       "  std::deque<int> queue_ ROTIND_GUARDED_BY(mutex_);\n"
       "};\n"},
  };
  EXPECT_TRUE(CheckGuardedMembers(files).empty());

  const std::vector<SourceFile> bad = {
      {"src/serve/bad.h",
       "class Server {\n"
       "  Mutex mutex_;\n"
       "  struct Inner {\n"
       "    int x_ = 0;\n"
       "  };\n"
       "  std::size_t depth_ = 0;\n"
       "};\n"},
  };
  const std::vector<Finding> findings = CheckGuardedMembers(bad);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 6);  // depth_, not Inner::x_
}

/// Acceptance: std::atomic outside the allowlist is detected — atomics
/// are invisible to -Wthread-safety, so each use needs a standing entry.
TEST(RotindLintTest, DetectsAtomicOutsideAllowlist) {
  const std::vector<SourceFile> files = {
      {"src/index/bad.cc", "std::atomic<int> hits{0};\n"},
      // Allowlisted files and non-src trees may use atomics freely.
      {"src/core/cancel.h", "std::atomic<bool> cancelled_{false};\n"},
      {"tests/ok_test.cc", "std::atomic<int> done{0};\n"},
      {"src/search/ok.cc", "// counter was std::atomic before the Mutex\n"},
  };
  const std::vector<Finding> findings = CheckAtomicAllowlist(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "atomic-allowlist");
  EXPECT_EQ(findings[0].file, "src/index/bad.cc");
}

/// The sharded-index edges: serve -> index (server opens shard sets via
/// ShardedIndex) and index -> storage (manifest + backends) are legal;
/// the inversions — index reaching up into serve, io reaching up into
/// storage — are the seeded violations.
TEST(RotindLintTest, ShardedIndexLayerEdges) {
  const std::vector<SourceFile> allowed = {
      {"src/serve/ok.cc",
       "#include \"src/index/sharded_index.h\"\n"
       "#include \"src/serve/protocol.h\"\n"},
      {"src/index/ok.cc",
       "#include \"src/storage/manifest.h\"\n"
       "#include \"src/storage/backend.h\"\n"},
      {"src/storage/ok.cc", "#include \"src/io/bytes.h\"\n"},
  };
  EXPECT_TRUE(CheckLayering(allowed).empty());

  const std::vector<SourceFile> seeded = {
      {"src/index/bad.cc", "#include \"src/serve/server.h\"\n"},
      {"src/io/bad.cc", "#include \"src/storage/manifest.h\"\n"},
  };
  const std::vector<Finding> findings = CheckLayering(seeded);
  ASSERT_EQ(findings.size(), 2u);
  for (const Finding& f : findings) EXPECT_EQ(f.rule, "layering");
}

/// Rule 6 acceptance: a stray fopen/std::rename in src/ outside the
/// sanctioned io + storage layers is a finding — a raw rename can publish
/// state the manifest never blessed.
TEST(RotindLintTest, DetectsRawFileMutationOutsideStorage) {
  const std::vector<SourceFile> files = {
      {"src/search/bad.cc",
       "void Dump() {\n"
       "  FILE* f = fopen(\"x.bin\", \"wb\");\n"
       "  std::rename(\"x.bin.tmp\", \"x.bin\");\n"
       "}\n"},
  };
  const std::vector<Finding> findings = CheckRawFileMutation(files);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "raw-file-mutation");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[1].line, 3);
  EXPECT_NE(findings[1].message.find("WriteManifest"), std::string::npos);
}

TEST(RotindLintTest, RawFileMutationExemptionsAreScoped) {
  const std::vector<SourceFile> files = {
      // The two sanctioned layers own the primitives.
      {"src/storage/manifest.cc",
       "std::rename(tmp.c_str(), path.c_str());\n"},
      {"src/io/bytes.cc", "FILE* f = fopen(path.c_str(), \"wb\");\n"},
      // Member calls and other libraries' qualified names are not libc.
      {"src/index/ok.cc",
       "journal.rename(\"a\", \"b\");\n"
       "fs::rename(a, b);\n"},
      // Prose and string literals never trip the rule.
      {"src/search/ok.cc",
       "// compaction does a rename (see storage/manifest.cc)\n"
       "const char* kHint = \"fopen(3) semantics\";\n"},
      // Tools/tests sit outside src/ and may do as they like.
      {"tools/scratch.cc", "std::rename(\"a\", \"b\");\n"},
  };
  EXPECT_TRUE(CheckRawFileMutation(files).empty());
}

TEST(RotindLintTest, RunAllChecksAggregatesAndSorts) {
  const std::vector<SourceFile> files = {
      {"src/envelope/bad.cc",
       "#include \"src/index/disk.h\"\n"
       "double* p = new double[4];\n"},
      {"src/io/bad.h", "Status SaveThing(const std::string& path);\n"},
  };
  const std::vector<Finding> findings = RunAllChecks(files);
  EXPECT_EQ(CountRule(findings, "layering"), 1);
  EXPECT_EQ(CountRule(findings, "kernel-hygiene"), 1);
  EXPECT_EQ(CountRule(findings, "nodiscard"), 1);
  // Sorted by (file, line): both envelope findings precede the io one.
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].file, "src/envelope/bad.cc");
  EXPECT_EQ(findings[2].file, "src/io/bad.h");
}

TEST(RotindLintTest, LoadSourceTreeRejectsNonRepository) {
  const StatusOr<std::vector<SourceFile>> files =
      LoadSourceTree("/nonexistent/definitely/not/a/repo");
  EXPECT_FALSE(files.ok());
}

}  // namespace
}  // namespace lint
}  // namespace rotind
