#include "src/index/vptree.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/random.h"

namespace rotind {
namespace {

std::vector<std::vector<double>> RandomPoints(Rng* rng, std::size_t m,
                                              std::size_t dims) {
  std::vector<std::vector<double>> pts(m, std::vector<double>(dims));
  for (auto& p : pts) {
    for (double& v : p) v = rng->Gaussian(0.0, 1.0);
  }
  return pts;
}

double L2(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

TEST(VpTreeTest, ExactNnUnderPureMetric) {
  // refine == the metric itself: the tree must find the true L2 NN.
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t m = 50 + rng.NextBounded(100);
    const std::size_t dims = 2 + rng.NextBounded(10);
    const auto pts = RandomPoints(&rng, m, dims);
    VpTree tree(pts, /*seed=*/trial);

    const auto q = RandomPoints(&rng, 1, dims)[0];
    const auto refine = [&](int id, double) {
      return L2(pts[static_cast<std::size_t>(id)], q);
    };
    const VpTree::Result r = tree.NearestNeighbor(q, refine);

    int expected = 0;
    double best = L2(pts[0], q);
    for (std::size_t i = 1; i < m; ++i) {
      const double d = L2(pts[i], q);
      if (d < best) {
        best = d;
        expected = static_cast<int>(i);
      }
    }
    EXPECT_EQ(r.best_id, expected);
    EXPECT_NEAR(r.best_distance, best, 1e-12);
  }
}

TEST(VpTreeTest, ExactNnWhenTrueDistanceExceedsMetric) {
  // The real contract: the metric is only a LOWER BOUND of the refined
  // distance. Here true(id) = metric * stretch(id) with stretch >= 1; the
  // tree must still return argmin of the TRUE distance.
  Rng rng(2);
  const std::size_t m = 120;
  const std::size_t dims = 6;
  const auto pts = RandomPoints(&rng, m, dims);
  std::vector<double> stretch(m);
  for (double& s : stretch) s = 1.0 + rng.NextDouble() * 3.0;
  VpTree tree(pts, 7);

  for (int trial = 0; trial < 10; ++trial) {
    const auto q = RandomPoints(&rng, 1, dims)[0];
    const auto true_dist = [&](int id) {
      return L2(pts[static_cast<std::size_t>(id)], q) *
             stretch[static_cast<std::size_t>(id)];
    };
    const auto refine = [&](int id, double threshold) {
      const double d = true_dist(id);
      return d < threshold ? d : std::numeric_limits<double>::infinity();
    };
    const VpTree::Result r = tree.NearestNeighbor(q, refine);

    double best = std::numeric_limits<double>::infinity();
    int expected = -1;
    for (std::size_t i = 0; i < m; ++i) {
      if (true_dist(static_cast<int>(i)) < best) {
        best = true_dist(static_cast<int>(i));
        expected = static_cast<int>(i);
      }
    }
    EXPECT_EQ(r.best_id, expected);
    EXPECT_NEAR(r.best_distance, best, 1e-12);
  }
}

TEST(VpTreeTest, PrunesRefineCalls) {
  // On clustered data the tree should refine far fewer than m objects.
  Rng rng(3);
  const std::size_t m = 500;
  const std::size_t dims = 4;
  auto pts = RandomPoints(&rng, m, dims);
  VpTree tree(pts, 11);
  const auto q = pts[42];  // query equal to a stored point
  const auto refine = [&](int id, double threshold) {
    const double d = L2(pts[static_cast<std::size_t>(id)], q);
    return d < threshold ? d : std::numeric_limits<double>::infinity();
  };
  const VpTree::Result r = tree.NearestNeighbor(q, refine);
  EXPECT_EQ(r.best_id, 42);
  EXPECT_LT(r.refine_calls, m / 2);
}

TEST(VpTreeTest, SinglePointAndEmpty) {
  VpTree empty({}, 1);
  const VpTree::Result none = empty.NearestNeighbor(
      {}, [](int, double) { return 0.0; });
  EXPECT_EQ(none.best_id, -1);

  VpTree one({{1.0, 2.0}}, 1);
  const VpTree::Result r = one.NearestNeighbor(
      {1.0, 2.5},
      [&](int, double) { return 0.5; });
  EXPECT_EQ(r.best_id, 0);
  EXPECT_DOUBLE_EQ(r.best_distance, 0.5);
}

TEST(VpTreeTest, DuplicatePointsHandled) {
  std::vector<std::vector<double>> pts(20, std::vector<double>{1.0, 1.0});
  pts[13] = {5.0, 5.0};
  VpTree tree(pts, 3);
  const std::vector<double> q = {5.1, 5.1};
  const auto refine = [&](int id, double threshold) {
    const double d = L2(pts[static_cast<std::size_t>(id)], q);
    return d < threshold ? d : std::numeric_limits<double>::infinity();
  };
  const VpTree::Result r = tree.NearestNeighbor(q, refine);
  EXPECT_EQ(r.best_id, 13);
}

TEST(VpTreeTest, CounterChargesMetricEvals) {
  Rng rng(4);
  const auto pts = RandomPoints(&rng, 64, 8);
  VpTree tree(pts, 5);
  const auto q = RandomPoints(&rng, 1, 8)[0];
  StepCounter counter;
  const VpTree::Result r = tree.NearestNeighbor(
      q,
      [&](int id, double) { return L2(pts[static_cast<std::size_t>(id)], q); },
      &counter);
  EXPECT_EQ(counter.steps, r.metric_evals * 8);
}

}  // namespace
}  // namespace rotind
