/// Blocked (SoA, 8-candidates-at-a-time) cascade terminals vs the
/// per-candidate scalar path. The blocked full-scan ED terminal claims to
/// be OBSERVATIONALLY IDENTICAL — same answers, same step counts, same
/// per-stage attribution — so this file holds it to == on all three, across
/// database sizes straddling the 8-lane tile width, holdout positions in
/// every tile group, mirror invariance, and rotation-limited queries. The
/// opt-in blocked early-abandon terminal only promises identical answers;
/// it is checked to exactly that weaker contract.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/flat_dataset.h"
#include "src/datasets/synthetic.h"
#include "src/obs/metrics.h"
#include "src/search/engine.h"

namespace rotind {
namespace {

EngineOptions FullScanOptions(bool mirror, int max_shift) {
  EngineOptions options;
  options.kind = DistanceKind::kEuclidean;
  options.cascade.stages = {StageKind::kFullScan};
  options.rotation.mirror = mirror;
  options.rotation.max_shift = max_shift;
  return options;
}

/// The two engines under comparison: identical except for the blocked
/// terminal toggle.
struct EnginePair {
  EnginePair(const FlatDataset& flat, EngineOptions options)
      : blocked_options(options), scalar_options(options) {
    blocked_options.simd.blocked_full_scan = true;
    blocked_options.simd.blocked_early_abandon = true;
    scalar_options.simd.blocked_full_scan = false;
    scalar_options.simd.blocked_early_abandon = false;
    blocked = std::make_unique<QueryEngine>(flat, blocked_options);
    scalar = std::make_unique<QueryEngine>(flat, scalar_options);
  }
  EngineOptions blocked_options;
  EngineOptions scalar_options;
  std::unique_ptr<QueryEngine> blocked;
  std::unique_ptr<QueryEngine> scalar;
};

/// Full-scan ED: results AND step accounting must be bit-identical,
/// including the per-stage attribution the metrics report.
void ExpectFullScanIdentical(const FlatDataset& flat, const Series& query,
                             std::size_t holdout, bool mirror, int max_shift,
                             const std::string& label) {
  EnginePair pair(flat, FullScanOptions(mirror, max_shift));

  obs::QueryMetrics blocked_metrics;
  obs::QueryMetrics scalar_metrics;
  const ScanResult got =
      pair.blocked->SearchLeaveOneOut(query, holdout, &blocked_metrics);
  const ScanResult ref =
      pair.scalar->SearchLeaveOneOut(query, holdout, &scalar_metrics);
  EXPECT_EQ(got.best_index, ref.best_index) << label;
  EXPECT_EQ(got.best_distance, ref.best_distance) << label;
  EXPECT_EQ(got.counter.total_steps(), ref.counter.total_steps()) << label;
  EXPECT_EQ(blocked_metrics.attributed_total_steps(),
            scalar_metrics.attributed_total_steps())
      << label;
  for (std::size_t i = 0; i < obs::kNumStages; ++i) {
    const obs::StageStats& b = blocked_metrics.stages[i];
    const obs::StageStats& s = scalar_metrics.stages[i];
    const std::string stage_label =
        label + " stage " + obs::StageName(static_cast<obs::StageId>(i));
    EXPECT_EQ(b.candidates_entered, s.candidates_entered) << stage_label;
    EXPECT_EQ(b.candidates_pruned, s.candidates_pruned) << stage_label;
    EXPECT_EQ(b.candidates_survived, s.candidates_survived) << stage_label;
    EXPECT_EQ(b.steps, s.steps) << stage_label;
    EXPECT_EQ(b.early_abandons, s.early_abandons) << stage_label;
  }

  StepCounter blocked_knn_counter;
  StepCounter scalar_knn_counter;
  const auto knn =
      pair.blocked->KnnLeaveOneOut(query, 3, holdout, &blocked_knn_counter);
  const auto ref_knn =
      pair.scalar->KnnLeaveOneOut(query, 3, holdout, &scalar_knn_counter);
  ASSERT_EQ(knn.size(), ref_knn.size()) << label;
  for (std::size_t r = 0; r < knn.size(); ++r) {
    EXPECT_EQ(knn[r].index, ref_knn[r].index) << label << " rank " << r;
    EXPECT_EQ(knn[r].distance, ref_knn[r].distance) << label << " rank " << r;
  }
  EXPECT_EQ(blocked_knn_counter.total_steps(),
            scalar_knn_counter.total_steps())
      << label;

  if (!ref_knn.empty()) {
    const double radius = ref_knn.back().distance * 1.01;
    StepCounter blocked_range_counter;
    StepCounter scalar_range_counter;
    const auto range =
        pair.blocked->Range(query, radius, &blocked_range_counter);
    const auto ref_range =
        pair.scalar->Range(query, radius, &scalar_range_counter);
    ASSERT_EQ(range.size(), ref_range.size()) << label;
    for (std::size_t r = 0; r < range.size(); ++r) {
      EXPECT_EQ(range[r].index, ref_range[r].index) << label << " hit " << r;
      EXPECT_EQ(range[r].distance, ref_range[r].distance)
          << label << " hit " << r;
    }
    EXPECT_EQ(blocked_range_counter.total_steps(),
              scalar_range_counter.total_steps())
        << label;
  }
}

/// Sizes straddling the tile width: below one group, exactly at group
/// boundaries, and with partial tail groups. Holdouts land in the first,
/// a middle, and the last (partial) group.
TEST(SimdEngineTest, BlockedFullScanIsObservationallyIdentical) {
  for (std::size_t m : {3u, 8u, 9u, 16u, 21u}) {
    const std::vector<Series> items =
        MakeProjectilePointsDatabase(m, 37, 701 + static_cast<int>(m));
    const FlatDataset flat = FlatDataset::FromItems(items);
    for (bool mirror : {false, true}) {
      for (std::size_t qi : {std::size_t{0}, m / 2, m - 1}) {
        ExpectFullScanIdentical(
            flat, items[qi], qi, mirror, /*max_shift=*/-1,
            "m=" + std::to_string(m) + (mirror ? " mirror" : "") + " q" +
                std::to_string(qi));
      }
    }
  }
}

/// Rotation-limited queries shrink the rotation set; the blocked driver
/// must mirror the scalar one under those too. Also: a query that is NOT
/// in the database (no holdout at all).
TEST(SimdEngineTest, BlockedFullScanMatchesUnderRotationLimits) {
  const std::vector<Series> items = MakeProjectilePointsDatabase(13, 36, 733);
  const FlatDataset flat = FlatDataset::FromItems(items);
  const Series probe = MakeProjectilePointsDatabase(1, 36, 997)[0];
  for (int max_shift : {0, 3, 9}) {
    ExpectFullScanIdentical(flat, probe, flat.size(), /*mirror=*/false,
                            max_shift,
                            "max_shift=" + std::to_string(max_shift));
    ExpectFullScanIdentical(flat, items[4], 4, /*mirror=*/true, max_shift,
                            "mirror max_shift=" + std::to_string(max_shift));
  }
}

/// The opt-in blocked early-abandon terminal: identical ANSWERS (lanes
/// abandon against the block-entry threshold, so step counts may drift —
/// that is exactly why it is opt-in and excluded from counter parity).
TEST(SimdEngineTest, BlockedEarlyAbandonReturnsIdenticalAnswers) {
  for (std::size_t m : {5u, 16u, 19u}) {
    const std::vector<Series> items =
        MakeProjectilePointsDatabase(m, 41, 811 + static_cast<int>(m));
    const FlatDataset flat = FlatDataset::FromItems(items);
    EngineOptions options;
    options.kind = DistanceKind::kEuclidean;
    options.cascade.stages = {StageKind::kExactScan};
    for (bool mirror : {false, true}) {
      options.rotation.mirror = mirror;
      EnginePair pair(flat, options);
      for (std::size_t qi : {std::size_t{0}, m - 1}) {
        const std::string label = "m=" + std::to_string(m) +
                                  (mirror ? " mirror" : "") + " q" +
                                  std::to_string(qi);
        const ScanResult got =
            pair.blocked->SearchLeaveOneOut(items[qi], qi);
        const ScanResult ref = pair.scalar->SearchLeaveOneOut(items[qi], qi);
        EXPECT_EQ(got.best_index, ref.best_index) << label;
        EXPECT_EQ(got.best_distance, ref.best_distance) << label;

        const auto knn = pair.blocked->KnnLeaveOneOut(items[qi], 3, qi);
        const auto ref_knn = pair.scalar->KnnLeaveOneOut(items[qi], 3, qi);
        ASSERT_EQ(knn.size(), ref_knn.size()) << label;
        for (std::size_t r = 0; r < knn.size(); ++r) {
          EXPECT_EQ(knn[r].index, ref_knn[r].index) << label << " rank " << r;
          EXPECT_EQ(knn[r].distance, ref_knn[r].distance)
              << label << " rank " << r;
        }
      }
    }
  }
}

/// A cascade with an FFT filter in front cannot take the blocked path (it
/// would bypass the filter); the engine must silently fall back and still
/// agree. This guards SupportsBlocked(), not the kernels.
TEST(SimdEngineTest, FilteredCascadeFallsBackAndAgrees) {
  const std::vector<Series> items = MakeProjectilePointsDatabase(17, 33, 877);
  const FlatDataset flat = FlatDataset::FromItems(items);
  EngineOptions options;
  options.kind = DistanceKind::kEuclidean;
  options.cascade.stages = {StageKind::kFftMagnitude, StageKind::kExactScan};
  EnginePair pair(flat, options);
  for (std::size_t qi : {0u, 8u, 16u}) {
    const ScanResult got = pair.blocked->SearchLeaveOneOut(items[qi], qi);
    const ScanResult ref = pair.scalar->SearchLeaveOneOut(items[qi], qi);
    EXPECT_EQ(got.best_index, ref.best_index) << "q" << qi;
    EXPECT_EQ(got.best_distance, ref.best_distance) << "q" << qi;
    EXPECT_EQ(got.counter.total_steps(), ref.counter.total_steps())
        << "q" << qi;
  }
}

/// DTW terminals never take the blocked path (the blocked kernels are
/// ED-only); the toggle must be a no-op there.
TEST(SimdEngineTest, DtwCascadeUnaffectedByBlockedToggle) {
  const std::vector<Series> items = MakeProjectilePointsDatabase(11, 30, 883);
  const FlatDataset flat = FlatDataset::FromItems(items);
  EngineOptions options;
  options.kind = DistanceKind::kDtw;
  options.band = 4;
  options.cascade.stages = {StageKind::kFullScanBanded};
  EnginePair pair(flat, options);
  for (std::size_t qi : {0u, 5u}) {
    const ScanResult got = pair.blocked->SearchLeaveOneOut(items[qi], qi);
    const ScanResult ref = pair.scalar->SearchLeaveOneOut(items[qi], qi);
    EXPECT_EQ(got.best_index, ref.best_index) << "q" << qi;
    EXPECT_EQ(got.best_distance, ref.best_distance) << "q" << qi;
    EXPECT_EQ(got.counter.total_steps(), ref.counter.total_steps())
        << "q" << qi;
  }
}

}  // namespace
}  // namespace rotind
