#include "src/datasets/synthetic.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "src/core/series.h"

namespace rotind {
namespace {

TEST(SyntheticShapeDatasetTest, SizesLabelsAndNormalisation) {
  SyntheticDatasetSpec spec;
  spec.name = "test";
  spec.num_classes = 3;
  spec.instances_per_class = 7;
  spec.length = 48;
  const Dataset ds = MakeSyntheticShapeDataset(spec);
  EXPECT_EQ(ds.size(), 21u);
  EXPECT_EQ(ds.length(), 48u);
  std::set<int> labels(ds.labels.begin(), ds.labels.end());
  EXPECT_EQ(labels.size(), 3u);
  for (const Series& s : ds.items) {
    EXPECT_NEAR(Mean(s), 0.0, 1e-9);
    EXPECT_NEAR(StdDev(s), 1.0, 1e-9);
  }
}

TEST(SyntheticShapeDatasetTest, DeterministicForSeed) {
  SyntheticDatasetSpec spec;
  spec.name = "det";
  spec.seed = 99;
  const Dataset a = MakeSyntheticShapeDataset(spec);
  const Dataset b = MakeSyntheticShapeDataset(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.items[i], b.items[i]);
}

TEST(SyntheticShapeDatasetTest, DifferentSeedsDiffer) {
  SyntheticDatasetSpec spec;
  spec.seed = 1;
  const Dataset a = MakeSyntheticShapeDataset(spec);
  spec.seed = 2;
  const Dataset b = MakeSyntheticShapeDataset(spec);
  EXPECT_NE(a.items[0], b.items[0]);
}

TEST(Table8SpecsTest, MatchesPaperStructure) {
  const auto specs = Table8Specs(1.0);
  ASSERT_EQ(specs.size(), 10u);
  // Class counts straight from the paper's Table 8.
  EXPECT_EQ(specs[0].name, "Face");
  EXPECT_EQ(specs[0].num_classes, 16);
  EXPECT_EQ(specs[1].num_classes, 15);
  EXPECT_EQ(specs[5].name, "Diatoms");
  EXPECT_EQ(specs[5].num_classes, 37);
  EXPECT_EQ(specs[9].name, "Yoga");
  EXPECT_EQ(specs[9].num_classes, 2);
  // Full scale approximates the paper's instance counts.
  EXPECT_NEAR(specs[0].num_classes * specs[0].instances_per_class, 2240, 120);
  EXPECT_NEAR(specs[9].num_classes * specs[9].instances_per_class, 3300, 100);
}

TEST(Table8SpecsTest, ScalingShrinksInstanceCounts) {
  const auto full = Table8Specs(1.0);
  const auto small = Table8Specs(0.1);
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_LE(small[i].instances_per_class, full[i].instances_per_class);
    EXPECT_GE(small[i].instances_per_class, 4);  // floor
  }
}

TEST(MakeTable8DatasetTest, LightCurveRowUsesThreeStarClasses) {
  auto specs = Table8Specs(0.05);
  const auto it = std::find_if(specs.begin(), specs.end(),
                               [](const SyntheticDatasetSpec& s) {
                                 return s.name == "LightCurve";
                               });
  ASSERT_NE(it, specs.end());
  const Dataset ds = MakeTable8Dataset(*it);
  std::set<int> labels(ds.labels.begin(), ds.labels.end());
  EXPECT_EQ(labels.size(), 3u);
}

TEST(ProjectilePointsTest, DatabaseProperties) {
  const auto db = MakeProjectilePointsDatabase(50, 251, 1);
  EXPECT_EQ(db.size(), 50u);
  for (const Series& s : db) {
    EXPECT_EQ(s.size(), 251u);
    EXPECT_NEAR(Mean(s), 0.0, 1e-9);
    EXPECT_NEAR(StdDev(s), 1.0, 1e-9);
  }
}

TEST(HeterogeneousTest, DatabaseProperties) {
  const auto db = MakeHeterogeneousDatabase(20, 128, 2);
  EXPECT_EQ(db.size(), 20u);
  for (const Series& s : db) {
    EXPECT_EQ(s.size(), 128u);
    EXPECT_NEAR(Mean(s), 0.0, 1e-9);
  }
  // Heterogeneity: items should not all look alike; compare a few pairs.
  EXPECT_NE(db[0], db[1]);
  EXPECT_NE(db[1], db[2]);
}

TEST(LightCurveDatabaseTest, RespectsRequestedSize) {
  EXPECT_EQ(MakeLightCurveDatabase(10, 64, 3).size(), 10u);
  EXPECT_EQ(MakeLightCurveDatabase(11, 64, 3).size(), 11u);
  EXPECT_EQ(MakeLightCurveDatabase(0, 64, 3).size(), 0u);
}

}  // namespace
}  // namespace rotind
