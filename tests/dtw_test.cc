#include "src/distance/dtw.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/distance/euclidean.h"

namespace rotind {
namespace {

Series RandomSeries(Rng* rng, std::size_t n) {
  Series s(n);
  for (double& v : s) v = rng->Gaussian(0.0, 1.0);
  return s;
}

/// O(n^2) reference DTW (full matrix, no band) used to validate the banded
/// rolling-array implementation.
double ReferenceDtw(const Series& q, const Series& c) {
  const std::size_t n = q.size();
  std::vector<std::vector<double>> dp(
      n, std::vector<double>(n, std::numeric_limits<double>::infinity()));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double cost = (q[i] - c[j]) * (q[i] - c[j]);
      double best;
      if (i == 0 && j == 0) {
        best = 0.0;
      } else {
        best = std::numeric_limits<double>::infinity();
        if (i > 0) best = std::min(best, dp[i - 1][j]);
        if (j > 0) best = std::min(best, dp[i][j - 1]);
        if (i > 0 && j > 0) best = std::min(best, dp[i - 1][j - 1]);
      }
      dp[i][j] = best + cost;
    }
  }
  return std::sqrt(dp[n - 1][n - 1]);
}

TEST(DtwTest, BandZeroEqualsEuclidean) {
  Rng rng(1);
  const Series q = RandomSeries(&rng, 40);
  const Series c = RandomSeries(&rng, 40);
  EXPECT_NEAR(DtwDistance(q, c, 0), EuclideanDistance(q, c), 1e-9);
}

TEST(DtwTest, UnconstrainedMatchesReference) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 5 + rng.NextBounded(40);
    const Series q = RandomSeries(&rng, n);
    const Series c = RandomSeries(&rng, n);
    EXPECT_NEAR(DtwDistance(q, c, -1), ReferenceDtw(q, c), 1e-9);
  }
}

TEST(DtwTest, IdenticalSeriesZero) {
  Rng rng(3);
  const Series q = RandomSeries(&rng, 30);
  EXPECT_NEAR(DtwDistance(q, q, 5), 0.0, 1e-12);
}

TEST(DtwTest, SymmetricForEqualLengths) {
  Rng rng(4);
  const Series q = RandomSeries(&rng, 25);
  const Series c = RandomSeries(&rng, 25);
  EXPECT_NEAR(DtwDistance(q, c, 4), DtwDistance(c, q, 4), 1e-9);
}

TEST(DtwTest, NonIncreasingInBand) {
  // A wider band can only find an equal or better warping path.
  Rng rng(5);
  const Series q = RandomSeries(&rng, 50);
  const Series c = RandomSeries(&rng, 50);
  double prev = DtwDistance(q, c, 0);
  for (int band : {1, 2, 4, 8, 16, 49}) {
    const double d = DtwDistance(q, c, band);
    EXPECT_LE(d, prev + 1e-9) << "band=" << band;
    prev = d;
  }
}

TEST(DtwTest, NeverExceedsEuclidean) {
  // The diagonal path is always available, so DTW <= ED for any band.
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 10 + rng.NextBounded(60);
    const Series q = RandomSeries(&rng, n);
    const Series c = RandomSeries(&rng, n);
    const int band = static_cast<int>(rng.NextBounded(n));
    EXPECT_LE(DtwDistance(q, c, band),
              EuclideanDistance(q, c) + 1e-9);
  }
}

TEST(DtwTest, RecoverssmallShift) {
  // A pattern shifted by 2 samples within a band of 2 warps to ~zero cost,
  // while the Euclidean distance stays large.
  const std::size_t n = 64;
  Series q(n, 0.0);
  Series c(n, 0.0);
  for (std::size_t i = 20; i < 30; ++i) q[i] = 1.0;
  for (std::size_t i = 22; i < 32; ++i) c[i] = 1.0;
  EXPECT_GT(EuclideanDistance(q, c), 1.0);
  EXPECT_NEAR(DtwDistance(q, c, 2), 0.0, 1e-9);
}

TEST(DtwTest, KnownTinyExample) {
  const Series q = {0.0, 1.0, 2.0};
  const Series c = {0.0, 2.0, 2.0};
  // Optimal path: (0,0)->(1,0)->(2,1)->(2,2): cost 0 + 1 + 0 + 0 = 1.
  EXPECT_NEAR(DtwDistance(q, c, -1), 1.0, 1e-12);
}

TEST(DtwTest, CellCountMatchesCounter) {
  Rng rng(7);
  for (int band : {0, 1, 3, 7, 100}) {
    const std::size_t n = 33;
    const Series q = RandomSeries(&rng, n);
    const Series c = RandomSeries(&rng, n);
    StepCounter counter;
    DtwDistance(q.data(), c.data(), n, band, &counter);
    EXPECT_EQ(counter.steps, DtwCellCount(n, band)) << "band=" << band;
  }
}

TEST(DtwTest, CellCountClosedForm) {
  // n(2R+1) - R(R+1) for R <= n-1.
  EXPECT_EQ(DtwCellCount(10, 0), 10u);
  EXPECT_EQ(DtwCellCount(10, 2), 10u * 5 - 2 * 3);
  EXPECT_EQ(DtwCellCount(10, 9), 100u);
  EXPECT_EQ(DtwCellCount(10, -1), 100u);  // unconstrained
}

TEST(EarlyAbandonDtwTest, MatchesFullWhenNotAbandoned) {
  Rng rng(8);
  const Series q = RandomSeries(&rng, 48);
  const Series c = RandomSeries(&rng, 48);
  const double full = DtwDistance(q, c, 5);
  const double ea = EarlyAbandonDtw(q.data(), c.data(), 48, 5, full + 1.0);
  EXPECT_NEAR(ea, full, 1e-9);
}

TEST(EarlyAbandonDtwTest, AbandonsAgainstTightLimit) {
  Rng rng(9);
  const Series q = RandomSeries(&rng, 48);
  Series c = q;
  for (double& v : c) v += 10.0;  // uniformly far away
  StepCounter counter;
  const double ea = EarlyAbandonDtw(q.data(), c.data(), 48, 5, 0.5, &counter);
  EXPECT_TRUE(std::isinf(ea));
  EXPECT_EQ(counter.early_abandons, 1u);
  EXPECT_LT(counter.steps, DtwCellCount(48, 5));
}

class DtwEarlyAbandonProperty : public ::testing::TestWithParam<int> {};

TEST_P(DtwEarlyAbandonProperty, NeverFalselyAbandons) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 77 + 5);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 8 + rng.NextBounded(50);
    const int band = 1 + static_cast<int>(rng.NextBounded(8));
    const Series q = RandomSeries(&rng, n);
    const Series c = RandomSeries(&rng, n);
    const double full = DtwDistance(q, c, band);
    const double limit = rng.Uniform(0.0, 2.0 * full + 0.1);
    const double ea = EarlyAbandonDtw(q.data(), c.data(), n, band, limit);
    if (full > limit) {
      EXPECT_TRUE(std::isinf(ea));
    } else {
      EXPECT_NEAR(ea, full, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DtwEarlyAbandonProperty,
                         ::testing::Range(1, 7));

TEST(ClampBandTest, Clamps) {
  EXPECT_EQ(ClampBand(10, -1), 9);
  EXPECT_EQ(ClampBand(10, 3), 3);
  EXPECT_EQ(ClampBand(10, 99), 9);
  EXPECT_EQ(ClampBand(0, 5), 0);
}

}  // namespace
}  // namespace rotind
