#include "src/envelope/wedge_tree.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/distance/euclidean.h"

namespace rotind {
namespace {

Series RandomSeries(Rng* rng, std::size_t n) {
  Series s(n);
  for (double& v : s) v = rng->Gaussian(0.0, 1.0);
  return s;
}

struct Case {
  bool mirror;
  WedgeHierarchy hierarchy;
};

class WedgeTreeInvariantTest
    : public ::testing::TestWithParam<std::tuple<bool, int>> {};

TEST_P(WedgeTreeInvariantTest, EveryNodeEnclosesItsRotations) {
  const bool mirror = std::get<0>(GetParam());
  const WedgeHierarchy hierarchy =
      std::get<1>(GetParam()) == 0 ? WedgeHierarchy::kClustered
                                   : WedgeHierarchy::kContiguous;
  Rng rng(11);
  const Series q = RandomSeries(&rng, 24);
  RotationOptions ropts;
  ropts.mirror = mirror;
  StepCounter counter;
  WedgeTree tree(q, ropts, /*dtw_band=*/0, Linkage::kAverage, hierarchy,
                 &counter);

  const RotationSet& rots = tree.rotations();
  for (int id = 0; id < tree.num_nodes(); ++id) {
    // Collect leaves under this node.
    std::vector<int> stack = {id};
    while (!stack.empty()) {
      const int cur = stack.back();
      stack.pop_back();
      if (!tree.IsLeaf(cur)) {
        stack.push_back(tree.LeftChild(cur));
        stack.push_back(tree.RightChild(cur));
        continue;
      }
      const double* member = rots.rotation(static_cast<std::size_t>(cur));
      const double* upper = tree.Upper(id);
      const double* lower = tree.Lower(id);
      for (std::size_t i = 0; i < tree.length(); ++i) {
        EXPECT_LE(member[i], upper[i] + 1e-12)
            << "node " << id << " leaf " << cur << " i=" << i;
        EXPECT_GE(member[i], lower[i] - 1e-12);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, WedgeTreeInvariantTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Values(0, 1)));

TEST(WedgeTreeTest, LagDistancesMatchDirectComputation) {
  // The O(n^2) lag-table trick must agree with directly computed distances
  // between materialised rotations — this validates the clustering inputs.
  Rng rng(1);
  const Series q = RandomSeries(&rng, 16);
  RotationOptions mirror_opts;
  mirror_opts.mirror = true;
  RotationSet rots(q, mirror_opts);

  // Reconstruct the same dissimilarities the builder used by clustering a
  // tiny tree and checking merge heights are achievable pair distances is
  // indirect; instead check the identity the tables rely on directly.
  for (std::size_t i = 0; i < rots.count(); ++i) {
    for (std::size_t j = 0; j < rots.count(); ++j) {
      const Series a = rots.Materialize(i);
      const Series b = rots.Materialize(j);
      const double direct = EuclideanDistance(a, b);
      // Same-chirality pairs depend only on shift difference.
      if (rots.mirrored_of(i) == rots.mirrored_of(j)) {
        const int lag =
            ((rots.shift_of(j) - rots.shift_of(i)) % 16 + 16) % 16;
        const Series c = rots.Materialize(0);  // shift 0, plain
        const Series d = RotateLeft(q, lag);
        EXPECT_NEAR(direct, EuclideanDistance(q, d), 1e-9)
            << "lag identity failed at lag " << lag;
        (void)c;
      }
    }
  }
}

TEST(WedgeTreeTest, RootCoversAllRotationsAndCountsAgree) {
  Rng rng(2);
  const Series q = RandomSeries(&rng, 20);
  StepCounter counter;
  WedgeTree tree(q, {}, 0, &counter);
  EXPECT_EQ(tree.num_rotations(), 20u);
  EXPECT_EQ(tree.num_nodes(), 39);
  EXPECT_EQ(tree.CountUnder(tree.root()), 20);
}

TEST(WedgeTreeTest, WedgeSetsPartitionRotations) {
  Rng rng(3);
  const Series q = RandomSeries(&rng, 18);
  StepCounter counter;
  WedgeTree tree(q, {}, 0, &counter);
  for (int k = 1; k <= tree.max_k(); ++k) {
    const std::vector<int> set = tree.WedgeSetForK(k);
    EXPECT_EQ(static_cast<int>(set.size()), k);
    std::set<int> leaves;
    int total = 0;
    for (int id : set) {
      std::vector<int> stack = {id};
      while (!stack.empty()) {
        const int cur = stack.back();
        stack.pop_back();
        if (tree.IsLeaf(cur)) {
          leaves.insert(cur);
          ++total;
        } else {
          stack.push_back(tree.LeftChild(cur));
          stack.push_back(tree.RightChild(cur));
        }
      }
    }
    EXPECT_EQ(total, 18) << "k=" << k;
    EXPECT_EQ(leaves.size(), 18u) << "k=" << k;
  }
}

TEST(WedgeTreeTest, SetupStepsChargedForClusteredHierarchy) {
  Rng rng(4);
  const Series q = RandomSeries(&rng, 32);
  StepCounter counter;
  WedgeTree tree(q, {}, 0, &counter);
  EXPECT_EQ(counter.setup_steps, 32u * 32u);  // one lag table
  StepCounter counter2;
  RotationOptions mirror_opts;
  mirror_opts.mirror = true;
  WedgeTree tree2(q, mirror_opts, 0, Linkage::kAverage,
                  WedgeHierarchy::kClustered, &counter2);
  EXPECT_EQ(counter2.setup_steps, 2u * 32u * 32u);  // same + cross tables
}

TEST(WedgeTreeTest, DtwModeExpandsLeafEnvelopes) {
  Rng rng(5);
  const Series q = RandomSeries(&rng, 25);
  StepCounter counter;
  WedgeTree tree(q, {}, /*dtw_band=*/3, &counter);
  EXPECT_EQ(tree.dtw_band(), 3);
  // Leaf envelope must contain the raw rotation with slack (it is the
  // band-expanded degenerate wedge).
  const double* raw = tree.LeafSeries(0);
  const double* upper = tree.Upper(0);
  const double* lower = tree.Lower(0);
  double slack = 0.0;
  for (std::size_t i = 0; i < 25; ++i) {
    EXPECT_LE(raw[i], upper[i] + 1e-12);
    EXPECT_GE(raw[i], lower[i] - 1e-12);
    slack += upper[i] - lower[i];
  }
  EXPECT_GT(slack, 0.0);
}

TEST(WedgeTreeTest, AreaGrowsUpTheHierarchy) {
  Rng rng(6);
  const Series q = RandomSeries(&rng, 30);
  StepCounter counter;
  WedgeTree tree(q, {}, 0, &counter);
  for (int id = static_cast<int>(tree.num_rotations());
       id < tree.num_nodes(); ++id) {
    const double area = tree.AreaOf(id);
    EXPECT_GE(area, tree.AreaOf(tree.LeftChild(id)) - 1e-12);
    EXPECT_GE(area, tree.AreaOf(tree.RightChild(id)) - 1e-12);
  }
}

TEST(WedgeTreeTest, ClusteredHierarchyGroupsSimilarRotationsFirst) {
  // For a smooth series, adjacent shifts are the most similar; the first
  // merges of the clustered hierarchy should involve small shift gaps.
  const std::size_t n = 32;
  Series q(n);
  for (std::size_t i = 0; i < n; ++i) {
    q[i] = std::sin(2 * 3.14159265 * static_cast<double>(i) /
                    static_cast<double>(n));
  }
  StepCounter counter;
  WedgeTree tree(q, {}, 0, &counter);
  // First merge node id = n; its children are leaves with adjacent shifts
  // (circular distance 1).
  const int first = static_cast<int>(n);
  const int a = tree.LeftChild(first);
  const int b = tree.RightChild(first);
  ASSERT_TRUE(tree.IsLeaf(a));
  ASSERT_TRUE(tree.IsLeaf(b));
  const int sa = tree.rotations().shift_of(static_cast<std::size_t>(a));
  const int sb = tree.rotations().shift_of(static_cast<std::size_t>(b));
  const int gap = std::min((sa - sb + 32) % 32, (sb - sa + 32) % 32);
  EXPECT_EQ(gap, 1);
}

TEST(WedgeTreeTest, RotationLimitedTreeHasFewerLeaves) {
  Rng rng(7);
  const Series q = RandomSeries(&rng, 40);
  RotationOptions limited;
  limited.max_shift = 4;
  StepCounter counter;
  WedgeTree tree(q, limited, 0, &counter);
  EXPECT_EQ(tree.num_rotations(), 9u);  // shifts -4..4
}

}  // namespace
}  // namespace rotind
