#include "src/fourier/fft.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/random.h"

namespace rotind {
namespace {

std::vector<Complex> RandomComplex(Rng* rng, std::size_t n) {
  std::vector<Complex> v(n);
  for (auto& c : v) c = Complex(rng->Gaussian(0, 1), rng->Gaussian(0, 1));
  return v;
}

Series RandomSeries(Rng* rng, std::size_t n) {
  Series s(n);
  for (double& v : s) v = rng->Gaussian(0.0, 1.0);
  return s;
}

double MaxAbsDiff(const std::vector<Complex>& a,
                  const std::vector<Complex>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

TEST(FftTest, IsPowerOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(251));
}

class FftVsNaiveTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftVsNaiveTest, MatchesNaiveDft) {
  Rng rng(GetParam());
  const std::vector<Complex> x = RandomComplex(&rng, GetParam());
  const std::vector<Complex> fast = Fft(x);
  const std::vector<Complex> slow = NaiveDft(x);
  ASSERT_EQ(fast.size(), slow.size());
  EXPECT_LT(MaxAbsDiff(fast, slow), 1e-7) << "n=" << GetParam();
}

// Powers of two exercise radix-2; the rest exercise Bluestein, including
// the paper's projectile-point length 251 (prime).
INSTANTIATE_TEST_SUITE_P(Lengths, FftVsNaiveTest,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 12, 16, 31, 64,
                                           100, 128, 251, 256));

class FftRoundTripTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTripTest, InverseRecoversInput) {
  Rng rng(GetParam() + 1000);
  const std::vector<Complex> x = RandomComplex(&rng, GetParam());
  const std::vector<Complex> back = InverseFft(Fft(x));
  EXPECT_LT(MaxAbsDiff(back, x), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftRoundTripTest,
                         ::testing::Values(1, 2, 5, 8, 17, 64, 251, 256));

TEST(FftTest, ParsevalHolds) {
  Rng rng(5);
  for (std::size_t n : {16u, 100u, 251u}) {
    const Series s = RandomSeries(&rng, n);
    const std::vector<Complex> spec = FftReal(s);
    double time_energy = 0.0;
    for (double v : s) time_energy += v * v;
    double freq_energy = 0.0;
    for (const Complex& c : spec) freq_energy += std::norm(c);
    EXPECT_NEAR(time_energy, freq_energy / static_cast<double>(n),
                1e-7 * time_energy + 1e-9);
  }
}

TEST(FftTest, MagnitudesInvariantToCircularShift) {
  // The core fact behind the FFT rotation lower bound (paper Section 4.2).
  Rng rng(6);
  for (std::size_t n : {32u, 61u, 251u}) {
    const Series s = RandomSeries(&rng, n);
    const std::vector<Complex> base = FftReal(s);
    for (long shift : {1L, 7L, static_cast<long>(n / 2)}) {
      const std::vector<Complex> shifted = FftReal(RotateLeft(s, shift));
      for (std::size_t k = 0; k < n; ++k) {
        EXPECT_NEAR(std::abs(base[k]), std::abs(shifted[k]),
                    1e-8 * (1.0 + std::abs(base[k])))
            << "n=" << n << " shift=" << shift << " k=" << k;
      }
    }
  }
}

TEST(FftTest, RealSignalHasConjugateSymmetry) {
  Rng rng(7);
  const std::size_t n = 24;
  const Series s = RandomSeries(&rng, n);
  const std::vector<Complex> spec = FftReal(s);
  for (std::size_t k = 1; k < n; ++k) {
    EXPECT_NEAR(std::abs(spec[k] - std::conj(spec[n - k])), 0.0, 1e-8);
  }
}

TEST(FftTest, DeltaFunctionFlatSpectrum) {
  Series s(16, 0.0);
  s[0] = 1.0;
  const std::vector<Complex> spec = FftReal(s);
  for (const Complex& c : spec) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, ConstantSignalOnlyDcBin) {
  Series s(32, 2.5);
  const std::vector<Complex> spec = FftReal(s);
  EXPECT_NEAR(std::abs(spec[0]), 2.5 * 32, 1e-9);
  for (std::size_t k = 1; k < 32; ++k) {
    EXPECT_NEAR(std::abs(spec[k]), 0.0, 1e-9);
  }
}

TEST(FftTest, EmptyAndSingle) {
  EXPECT_TRUE(Fft({}).empty());
  const std::vector<Complex> one = {Complex(3.0, -1.0)};
  EXPECT_EQ(Fft(one)[0], one[0]);
}

}  // namespace
}  // namespace rotind
