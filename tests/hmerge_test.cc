#include "src/search/hmerge.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/distance/dtw.h"
#include "src/distance/euclidean.h"

namespace rotind {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Series RandomSeries(Rng* rng, std::size_t n) {
  Series s(n);
  for (double& v : s) v = rng->Gaussian(0.0, 1.0);
  return s;
}

Series SmoothRandomSeries(Rng* rng, std::size_t n) {
  Series s = RandomSeries(rng, n);
  for (int pass = 0; pass < 2; ++pass) {
    Series t = s;
    for (std::size_t i = 0; i < n; ++i) {
      t[i] = (s[(i + n - 1) % n] + s[i] + s[(i + 1) % n]) / 3.0;
    }
    s = t;
  }
  return s;
}

/// The central exactness property (paper Section 4.1): H-Merge returns
/// exactly the brute-force rotation-invariant distance, for every K, both
/// hierarchies, with and without mirror candidates.
class HMergeExactnessTest
    : public ::testing::TestWithParam<std::tuple<int, bool, int>> {};

TEST_P(HMergeExactnessTest, EuclideanMatchesBruteForceForAllK) {
  const int seed = std::get<0>(GetParam());
  const bool mirror = std::get<1>(GetParam());
  const WedgeHierarchy hierarchy =
      std::get<2>(GetParam()) == 0 ? WedgeHierarchy::kClustered
                                   : WedgeHierarchy::kContiguous;
  Rng rng(static_cast<std::uint64_t>(seed) * 1013 + 11);
  const std::size_t n = 20 + rng.NextBounded(20);
  const Series q = RandomSeries(&rng, n);

  RotationOptions ropts;
  ropts.mirror = mirror;
  StepCounter counter;
  WedgeTree tree(q, ropts, 0, Linkage::kAverage, hierarchy, &counter);
  RotationSet rots(q, ropts);

  for (int trial = 0; trial < 10; ++trial) {
    const Series c = RandomSeries(&rng, n);
    const double expected =
        RotationInvariantEuclidean(rots, c.data()).distance;
    for (int k : {1, 2, 3, 5, static_cast<int>(tree.max_k())}) {
      const HMergeResult r =
          HMerge(c.data(), tree, tree.WedgeSetForK(k), kInf, &counter);
      ASSERT_FALSE(r.abandoned) << "k=" << k;
      EXPECT_NEAR(r.distance, expected, 1e-9) << "k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, HMergeExactnessTest,
    ::testing::Combine(::testing::Range(1, 5), ::testing::Bool(),
                       ::testing::Values(0, 1)));

TEST(HMergeTest, DtwMatchesBruteForceForAllK) {
  Rng rng(42);
  const std::size_t n = 32;
  const int band = 3;
  const Series q = SmoothRandomSeries(&rng, n);
  StepCounter counter;
  WedgeTree tree(q, {}, band, &counter);
  RotationSet rots(q, {});

  for (int trial = 0; trial < 8; ++trial) {
    const Series c = SmoothRandomSeries(&rng, n);
    const double expected =
        RotationInvariantDtw(rots, c.data(), band).distance;
    for (int k : {1, 2, 4, 8, 32}) {
      const HMergeResult r =
          HMerge(c.data(), tree, tree.WedgeSetForK(k), kInf, &counter);
      ASSERT_FALSE(r.abandoned);
      EXPECT_NEAR(r.distance, expected, 1e-9) << "k=" << k;
    }
  }
}

TEST(HMergeTest, AbandonsWhenBestSoFarUnbeatable) {
  Rng rng(7);
  const std::size_t n = 30;
  const Series q = RandomSeries(&rng, n);
  StepCounter counter;
  WedgeTree tree(q, {}, 0, &counter);
  RotationSet rots(q, {});
  const Series c = RandomSeries(&rng, n);
  const double true_dist = RotationInvariantEuclidean(rots, c.data()).distance;
  const HMergeResult r =
      HMerge(c.data(), tree, tree.WedgeSetForK(4), true_dist * 0.9, &counter);
  EXPECT_TRUE(r.abandoned);
  EXPECT_TRUE(std::isinf(r.distance));
}

TEST(HMergeTest, ReportsWinningRotation) {
  Rng rng(8);
  const std::size_t n = 40;
  const Series q = RandomSeries(&rng, n);
  const Series c = RotateLeft(q, 17);
  StepCounter counter;
  WedgeTree tree(q, {}, 0, &counter);
  const HMergeResult r =
      HMerge(c.data(), tree, tree.WedgeSetForK(2), kInf, &counter);
  ASSERT_FALSE(r.abandoned);
  EXPECT_NEAR(r.distance, 0.0, 1e-9);
  // RotateLeft(q, 17) compared against candidate rotations of q: the
  // winning candidate must itself be the 17-shift.
  EXPECT_EQ(tree.rotations().shift_of(r.rotation_index), 17);
}

TEST(HMergeTest, PruningSavesStepsVersusFlatScan) {
  Rng rng(9);
  const std::size_t n = 64;
  const Series q = SmoothRandomSeries(&rng, n);
  const Series near_match = RotateLeft(q, 5);
  StepCounter build;
  WedgeTree tree(q, {}, 0, &build);

  // With a tight best-so-far, the hierarchal search should examine far
  // fewer points than the n*n of a full scan.
  StepCounter counter;
  HMerge(near_match.data(), tree, tree.WedgeSetForK(2), 0.5, &counter);
  EXPECT_LT(counter.steps, static_cast<std::uint64_t>(n) * n / 2);
}

TEST(WedgeSearcherTest, DistanceMatchesBruteForce) {
  Rng rng(10);
  const std::size_t n = 28;
  const Series q = RandomSeries(&rng, n);
  WedgeSearchOptions options;
  options.kind = DistanceKind::kEuclidean;
  StepCounter counter;
  WedgeSearcher searcher(q, options, &counter);
  RotationSet rots(q, {});
  for (int trial = 0; trial < 10; ++trial) {
    const Series c = RandomSeries(&rng, n);
    const HMergeResult r = searcher.Distance(c.data(), kInf, &counter);
    ASSERT_FALSE(r.abandoned);
    EXPECT_NEAR(r.distance,
                RotationInvariantEuclidean(rots, c.data()).distance, 1e-9);
  }
}

TEST(WedgeSearcherTest, AdaptKStaysInRangeAndKeepsExactness) {
  Rng rng(11);
  const std::size_t n = 24;
  const Series q = RandomSeries(&rng, n);
  WedgeSearchOptions options;
  options.dynamic_k = true;
  options.initial_k = 2;
  StepCounter counter;
  WedgeSearcher searcher(q, options, &counter);
  RotationSet rots(q, {});

  double best = kInf;
  for (int trial = 0; trial < 20; ++trial) {
    const Series c = RandomSeries(&rng, n);
    const double expected =
        RotationInvariantEuclidean(rots, c.data()).distance;
    const HMergeResult r = searcher.Distance(c.data(), best, &counter);
    if (!r.abandoned) {
      EXPECT_NEAR(r.distance, expected, 1e-9);
      EXPECT_LE(r.distance, best);
      best = r.distance;
      searcher.AdaptK(c.data(), best, &counter);
      EXPECT_GE(searcher.current_k(), 1);
      EXPECT_LE(searcher.current_k(), static_cast<int>(n));
    } else {
      EXPECT_GE(expected, best - 1e-9);  // never falsely abandons
    }
  }
}

TEST(WedgeSearcherTest, FixedKDisablesAdaptation) {
  Rng rng(12);
  const Series q = RandomSeries(&rng, 20);
  WedgeSearchOptions options;
  options.dynamic_k = false;
  options.fixed_k = 4;
  StepCounter counter;
  WedgeSearcher searcher(q, options, &counter);
  EXPECT_EQ(searcher.current_k(), 4);
  const Series c = RandomSeries(&rng, 20);
  searcher.AdaptK(c.data(), 1.0, &counter);
  EXPECT_EQ(searcher.current_k(), 4);
}

TEST(WedgeSearcherTest, MirrorAndLimitedOptionsAreExact) {
  Rng rng(13);
  const std::size_t n = 26;
  const Series q = RandomSeries(&rng, n);
  RotationOptions ropts;
  ropts.mirror = true;
  ropts.max_shift = 6;
  WedgeSearchOptions options;
  options.rotation = ropts;
  StepCounter counter;
  WedgeSearcher searcher(q, options, &counter);
  RotationSet rots(q, ropts);
  for (int trial = 0; trial < 10; ++trial) {
    const Series c = RandomSeries(&rng, n);
    const HMergeResult r = searcher.Distance(c.data(), kInf, &counter);
    ASSERT_FALSE(r.abandoned);
    EXPECT_NEAR(r.distance,
                RotationInvariantEuclidean(rots, c.data()).distance, 1e-9);
  }
}

TEST(WedgeSearcherTest, DtwSearcherNeverFalselyAbandons) {
  Rng rng(14);
  const std::size_t n = 24;
  const int band = 2;
  const Series q = SmoothRandomSeries(&rng, n);
  WedgeSearchOptions options;
  options.kind = DistanceKind::kDtw;
  options.band = band;
  StepCounter counter;
  WedgeSearcher searcher(q, options, &counter);
  RotationSet rots(q, {});

  double best = kInf;
  for (int trial = 0; trial < 15; ++trial) {
    const Series c = SmoothRandomSeries(&rng, n);
    const double expected =
        RotationInvariantDtw(rots, c.data(), band).distance;
    const HMergeResult r = searcher.Distance(c.data(), best, &counter);
    if (!r.abandoned) {
      EXPECT_NEAR(r.distance, expected, 1e-9);
      best = r.distance;
      searcher.AdaptK(c.data(), best, &counter);
    } else {
      EXPECT_GE(expected, best - 1e-9);
    }
  }
}

}  // namespace
}  // namespace rotind
