/// QueryEngine basics: cascade normalization, storage-backend agreement,
/// adapter parity with the legacy scan API, and the single-sourced options
/// (the old ScanOptions::wedge kind/band/rotation footgun is now a compile
/// error — WedgePolicy simply has no such fields).

#include "src/search/engine.h"

#include <gtest/gtest.h>

#include <limits>

#include "src/core/flat_dataset.h"
#include "src/datasets/synthetic.h"
#include "src/search/scan.h"

namespace rotind {
namespace {

FlatDataset MakeDb(std::size_t m, std::size_t n, std::uint64_t seed) {
  return FlatDataset::FromItems(MakeProjectilePointsDatabase(m, n, seed));
}

// --- Cascade normalization -------------------------------------------------

TEST(CascadeSpecTest, DefaultIsWedge) {
  CascadeSpec spec;
  ASSERT_EQ(spec.stages.size(), 1u);
  EXPECT_EQ(spec.stages[0], StageKind::kWedge);
}

TEST(CascadeSpecTest, FftFilterDroppedForNonEuclidean) {
  CascadeSpec spec;
  spec.stages = {StageKind::kFftMagnitude, StageKind::kExactScan};
  const CascadeSpec ed = spec.Normalized(DistanceKind::kEuclidean);
  ASSERT_EQ(ed.stages.size(), 2u);
  EXPECT_EQ(ed.stages[0], StageKind::kFftMagnitude);
  const CascadeSpec dtw = spec.Normalized(DistanceKind::kDtw);
  ASSERT_EQ(dtw.stages.size(), 1u);
  EXPECT_EQ(dtw.stages[0], StageKind::kExactScan);
}

TEST(CascadeSpecTest, StagesAfterFirstTerminalAreDropped) {
  CascadeSpec spec;
  spec.stages = {StageKind::kWedge, StageKind::kExactScan,
                 StageKind::kFullScan};
  const CascadeSpec norm = spec.Normalized(DistanceKind::kEuclidean);
  ASSERT_EQ(norm.stages.size(), 1u);
  EXPECT_EQ(norm.stages[0], StageKind::kWedge);
}

TEST(CascadeSpecTest, FilterOnlyCascadeGetsExactScanAppended) {
  CascadeSpec spec;
  spec.stages = {StageKind::kFftMagnitude};
  const CascadeSpec norm = spec.Normalized(DistanceKind::kEuclidean);
  ASSERT_EQ(norm.stages.size(), 2u);
  EXPECT_EQ(norm.stages[1], StageKind::kExactScan);
}

TEST(CascadeSpecTest, EmptyCascadeGetsExactScan) {
  CascadeSpec spec;
  spec.stages = {};
  const CascadeSpec norm = spec.Normalized(DistanceKind::kDtw);
  ASSERT_EQ(norm.stages.size(), 1u);
  EXPECT_EQ(norm.stages[0], StageKind::kExactScan);
}

TEST(CascadeSpecTest, VecSignatureIsEuclideanOnly) {
  CascadeSpec spec;
  spec.stages = {StageKind::kVecSignature, StageKind::kExactScan};
  const CascadeSpec ed = spec.Normalized(DistanceKind::kEuclidean);
  ASSERT_EQ(ed.stages.size(), 2u);
  EXPECT_EQ(ed.stages[0], StageKind::kVecSignature);
  // The pooled-spectrum bound only holds for RED: dropped for DTW/LCSS.
  for (const DistanceKind kind : {DistanceKind::kDtw, DistanceKind::kLcss}) {
    const CascadeSpec other = spec.Normalized(kind);
    ASSERT_EQ(other.stages.size(), 1u);
    EXPECT_EQ(other.stages[0], StageKind::kExactScan);
  }
}

TEST(CascadeSpecTest, LbImprovedSoundnessRules) {
  CascadeSpec spec;
  spec.stages = {StageKind::kLbImproved, StageKind::kExactScan};

  // Sound for Euclidean (band-0 specialization) and kept.
  const CascadeSpec ed = spec.Normalized(DistanceKind::kEuclidean);
  ASSERT_EQ(ed.stages.size(), 2u);
  EXPECT_EQ(ed.stages[0], StageKind::kLbImproved);

  // Sound for banded DTW terminals.
  const CascadeSpec dtw = spec.Normalized(DistanceKind::kDtw);
  ASSERT_EQ(dtw.stages.size(), 2u);
  EXPECT_EQ(dtw.stages[0], StageKind::kLbImproved);

  // No LCSS lower bound exists: dropped.
  const CascadeSpec lcss = spec.Normalized(DistanceKind::kLcss);
  ASSERT_EQ(lcss.stages.size(), 1u);
  EXPECT_EQ(lcss.stages[0], StageKind::kExactScan);

  // A banded bound does NOT bound UNCONSTRAINED DTW: when the DTW terminal
  // is kFullScan (which ignores the band), the filter must vanish.
  CascadeSpec full;
  full.stages = {StageKind::kLbImproved, StageKind::kFullScan};
  const CascadeSpec dtw_full = full.Normalized(DistanceKind::kDtw);
  ASSERT_EQ(dtw_full.stages.size(), 1u);
  EXPECT_EQ(dtw_full.stages[0], StageKind::kFullScan);
  // ...but stays ahead of the BANDED full scan, which it does bound.
  CascadeSpec banded;
  banded.stages = {StageKind::kLbImproved, StageKind::kFullScanBanded};
  const CascadeSpec dtw_banded = banded.Normalized(DistanceKind::kDtw);
  ASSERT_EQ(dtw_banded.stages.size(), 2u);
  EXPECT_EQ(dtw_banded.stages[0], StageKind::kLbImproved);
  // Under Euclidean, kFullScan has no band to ignore: the filter stays.
  const CascadeSpec ed_full = full.Normalized(DistanceKind::kEuclidean);
  ASSERT_EQ(ed_full.stages.size(), 2u);
  EXPECT_EQ(ed_full.stages[0], StageKind::kLbImproved);
}

TEST(CascadeSpecTest, ForAlgorithmReproducesLegacyCompositions) {
  const auto wedge =
      CascadeSpec::ForAlgorithm(ScanAlgorithm::kWedge, DistanceKind::kDtw);
  ASSERT_EQ(wedge.stages.size(), 1u);
  EXPECT_EQ(wedge.stages[0], StageKind::kWedge);

  const auto fft = CascadeSpec::ForAlgorithm(ScanAlgorithm::kFftLowerBound,
                                             DistanceKind::kEuclidean);
  ASSERT_EQ(fft.stages.size(), 2u);
  EXPECT_EQ(fft.stages[0], StageKind::kFftMagnitude);
  EXPECT_EQ(fft.stages[1], StageKind::kExactScan);

  // Under DTW the FFT bound is unsound and degrades to the plain scan —
  // the same behavior the legacy switch had.
  const auto fft_dtw = CascadeSpec::ForAlgorithm(ScanAlgorithm::kFftLowerBound,
                                                 DistanceKind::kDtw);
  ASSERT_EQ(fft_dtw.stages.size(), 1u);
  EXPECT_EQ(fft_dtw.stages[0], StageKind::kExactScan);
}

// --- Storage backends ------------------------------------------------------

TEST(QueryEngineTest, FlatAndVectorBackendsAgreeExactly) {
  const std::size_t n = 64;
  const std::vector<Series> items = MakeProjectilePointsDatabase(40, n, 5);
  const FlatDataset flat = FlatDataset::FromItems(items);
  const Series query = items[7];

  for (DistanceKind kind : {DistanceKind::kEuclidean, DistanceKind::kDtw}) {
    EngineOptions options;
    options.kind = kind;
    const QueryEngine flat_engine(flat, options);
    const QueryEngine vec_engine(items, options);
    const ScanResult a = flat_engine.SearchLeaveOneOut(query, 7);
    const ScanResult b = vec_engine.SearchLeaveOneOut(query, 7);
    EXPECT_EQ(a.best_index, b.best_index);
    EXPECT_EQ(a.best_distance, b.best_distance);
    EXPECT_EQ(a.best_shift, b.best_shift);
    EXPECT_EQ(a.counter.total_steps(), b.counter.total_steps());
  }
}

TEST(QueryEngineTest, SearchFindsRotatedSelf) {
  const std::size_t n = 32;
  FlatDataset db = MakeDb(10, n, 9);
  const Series item = db.Materialize(4);
  // Query = item 4 rotated by 11 positions; exact match at that shift.
  Series query(n);
  for (std::size_t j = 0; j < n; ++j) query[j] = item[(j + 11) % n];
  const QueryEngine engine(db);
  const ScanResult hit = engine.Search(query);
  EXPECT_EQ(hit.best_index, 4);
  EXPECT_NEAR(hit.best_distance, 0.0, 1e-9);
}

TEST(QueryEngineTest, LeaveOneOutSkipsTheHoldout) {
  FlatDataset db = MakeDb(12, 48, 10);
  const QueryEngine engine(db);
  const Series query = db.Materialize(3);
  // Unrestricted search finds the query itself at distance 0...
  EXPECT_EQ(engine.Search(query).best_index, 3);
  // ...leave-one-out must find someone else.
  EXPECT_NE(engine.SearchLeaveOneOut(query, 3).best_index, 3);
}

// --- Adapter parity --------------------------------------------------------

/// The legacy scan entry points are thin adapters over the engine; the two
/// layers must agree bit-for-bit, step counts included.
TEST(QueryEngineTest, AdaptersMatchEngineBitForBit) {
  const std::size_t n = 64;
  const std::vector<Series> items = MakeProjectilePointsDatabase(30, n, 12);
  const FlatDataset flat = FlatDataset::FromItems(items);
  const Series query = items[0];

  for (ScanAlgorithm algorithm :
       {ScanAlgorithm::kBruteForce, ScanAlgorithm::kEarlyAbandon,
        ScanAlgorithm::kFftLowerBound, ScanAlgorithm::kWedge}) {
    ScanOptions options;
    const ScanResult legacy =
        SearchDatabase(items, query, algorithm, options);
    const QueryEngine engine(flat, EngineOptionsFrom(options, algorithm));
    const ScanResult direct = engine.Search(query);
    EXPECT_EQ(legacy.best_index, direct.best_index);
    EXPECT_EQ(legacy.best_distance, direct.best_distance);
    EXPECT_EQ(legacy.counter.total_steps(), direct.counter.total_steps())
        << "algorithm " << static_cast<int>(algorithm);
  }
}

TEST(QueryEngineTest, KnnLeaveOneOutMatchesRestrictedLegacyKnn) {
  const std::size_t n = 48;
  const std::vector<Series> items = MakeProjectilePointsDatabase(25, n, 13);
  const std::size_t holdout = 6;
  std::vector<Series> rest;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != holdout) rest.push_back(items[i]);
  }
  const auto legacy = KnnSearchDatabase(rest, items[holdout], 5,
                                        ScanAlgorithm::kWedge, {});
  const FlatDataset flat = FlatDataset::FromItems(items);
  const QueryEngine engine(flat);
  const auto engine_knn = engine.KnnLeaveOneOut(items[holdout], 5, holdout);
  ASSERT_EQ(legacy.size(), engine_knn.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    // Engine indexes are in full-database space; legacy ones skipped the
    // holdout. Distances must agree exactly.
    EXPECT_EQ(legacy[i].distance, engine_knn[i].distance) << "rank " << i;
    const int mapped = legacy[i].index >= static_cast<int>(holdout)
                           ? legacy[i].index + 1
                           : legacy[i].index;
    EXPECT_EQ(mapped, engine_knn[i].index) << "rank " << i;
  }
}

// --- Validation ------------------------------------------------------------

TEST(QueryEngineTest, ValidatesQueryLengthAgainstFlatStorage) {
  FlatDataset db = MakeDb(5, 16, 20);
  const QueryEngine engine(db);
  EXPECT_TRUE(engine.ValidateQuery(Series(16, 0.5)).ok());
  EXPECT_FALSE(engine.ValidateQuery(Series(15, 0.5)).ok());
  EXPECT_FALSE(engine.ValidateQuery({}).ok());
  Series nan_query(16, 0.5);
  nan_query[3] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(engine.ValidateQuery(nan_query).ok());
}

TEST(QueryEngineTest, CheckedKnnRejectsBadK) {
  FlatDataset db = MakeDb(5, 16, 21);
  const QueryEngine engine(db);
  EXPECT_FALSE(engine.KnnChecked(Series(16, 0.5), 0).ok());
  EXPECT_TRUE(engine.KnnChecked(Series(16, 0.5), 2).ok());
}

TEST(QueryEngineTest, CheckedRangeRejectsBadRadius) {
  FlatDataset db = MakeDb(5, 16, 22);
  const QueryEngine engine(db);
  EXPECT_FALSE(engine.RangeChecked(Series(16, 0.5), -1.0).ok());
  EXPECT_FALSE(
      engine
          .RangeChecked(Series(16, 0.5),
                        std::numeric_limits<double>::quiet_NaN())
          .ok());
  EXPECT_TRUE(engine.RangeChecked(Series(16, 0.5), 1.0).ok());
}

// --- Options single-sourcing (the old footgun) -----------------------------

/// ScanOptions::wedge used to carry its own kind/band/rotation that the
/// scan silently overrode. WedgePolicy has no such fields any more, so a
/// contradiction cannot be expressed; this test documents the seam by
/// exercising a non-default policy end to end.
TEST(QueryEngineTest, WedgePolicyRidesAlongWithoutDuplicatingMeasure) {
  const std::size_t n = 64;
  const std::vector<Series> items = MakeProjectilePointsDatabase(30, n, 23);
  ScanOptions options;
  options.kind = DistanceKind::kDtw;
  options.band = 3;
  options.wedge.dynamic_k = false;
  options.wedge.fixed_k = 4;
  const EngineOptions engine_options =
      EngineOptionsFrom(options, ScanAlgorithm::kWedge);
  EXPECT_EQ(engine_options.kind, DistanceKind::kDtw);
  EXPECT_EQ(engine_options.band, 3);
  EXPECT_FALSE(engine_options.wedge.dynamic_k);

  // And the composed search still agrees with brute force.
  const FlatDataset flat = FlatDataset::FromItems(items);
  const QueryEngine engine(flat, engine_options);
  const ScanResult wedge = engine.SearchLeaveOneOut(items[2], 2);
  std::vector<Series> rest;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 2) rest.push_back(items[i]);
  }
  const ScanResult ref =
      SearchDatabase(rest, items[2], ScanAlgorithm::kBruteForceBanded, options);
  EXPECT_DOUBLE_EQ(wedge.best_distance, ref.best_distance);
}

}  // namespace
}  // namespace rotind
