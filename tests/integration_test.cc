/// End-to-end tests exercising the full public pipeline the way the paper's
/// system would be used: raster shapes -> profiles -> database -> search /
/// index -> rotation-aligned matches.

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/distance/rotation.h"
#include "src/index/candidate_scan.h"
#include "src/search/scan.h"
#include "src/shape/generate.h"
#include "src/shape/profile.h"

namespace rotind {
namespace {

TEST(IntegrationTest, RasterShapeRetrievalUnderRotation) {
  // Build a database of rasterised shapes; query with a rotated bitmap of
  // one of them; every exact algorithm must retrieve it.
  const std::size_t n = 96;
  Rng rng(1);
  std::vector<Series> db;
  std::vector<Bitmap> bitmaps;
  for (int i = 0; i < 12; ++i) {
    const RadialShapeSpec spec = RandomShapeSpec(&rng, 7, 0.28, 1.2);
    bitmaps.push_back(Bitmap::FromPolygon(RadialPolygon(spec, 360), 128));
    const Series s = ShapeToSeries(bitmaps.back(), n);
    ASSERT_FALSE(s.empty());
    db.push_back(s);
  }

  const Series query = ShapeToSeries(bitmaps[5].Rotated(1.1), n);
  ASSERT_FALSE(query.empty());

  for (ScanAlgorithm algo :
       {ScanAlgorithm::kBruteForce, ScanAlgorithm::kEarlyAbandon,
        ScanAlgorithm::kFftLowerBound, ScanAlgorithm::kWedge}) {
    const ScanResult r = SearchDatabase(db, query, algo, ScanOptions{});
    EXPECT_EQ(r.best_index, 5) << "algo=" << static_cast<int>(algo);
  }
}

TEST(IntegrationTest, IndexAgreesWithScanOnRasterShapes) {
  const std::size_t n = 64;
  Rng rng(2);
  std::vector<Series> db;
  for (int i = 0; i < 25; ++i) {
    const RadialShapeSpec spec = RandomShapeSpec(&rng, 6, 0.3, 1.3);
    const Series s =
        ShapeToSeries(Bitmap::FromPolygon(RadialPolygon(spec, 300), 96), n);
    ASSERT_FALSE(s.empty());
    db.push_back(s);
  }
  RotationInvariantIndex::Options opts;
  opts.dims = 8;
  RotationInvariantIndex index(db, opts);

  for (int trial = 0; trial < 4; ++trial) {
    Series q = RotateLeft(db[rng.NextBounded(db.size())],
                          static_cast<long>(rng.NextBounded(n)));
    for (double& v : q) v += rng.Gaussian(0.0, 0.02);
    ZNormalize(&q);
    const auto via_index = index.NearestNeighbor(q);
    const auto via_scan =
        SearchDatabase(db, q, ScanAlgorithm::kWedge, ScanOptions{});
    EXPECT_EQ(via_index.best_index, via_scan.best_index);
    EXPECT_NEAR(via_index.best_distance, via_scan.best_distance, 1e-9);
  }
}

TEST(IntegrationTest, RotationLimitedQueryDistinguishesSixFromNine) {
  // The paper's "6 vs 9" example: a "9" is a rotated "6". An unrestricted
  // rotation-invariant query cannot tell them apart; a rotation-limited
  // query can.
  const std::size_t n = 120;
  const Series six = ZNormalized(RadialProfile(DigitSixSpec(), n));
  const Series nine = RotateLeft(six, static_cast<long>(n / 2));  // 180 deg

  // Unlimited: the 9 looks identical to the 6.
  EXPECT_NEAR(RotationInvariantEuclidean(six, nine), 0.0, 1e-9);

  // Limited to +/- 15 degrees: the 9 no longer matches.
  RotationOptions limited;
  limited.max_shift = static_cast<int>(n * 15 / 360);
  EXPECT_GT(RotationInvariantEuclidean(six, nine, limited), 0.5);
  // ... while a slightly rotated 6 still does.
  const Series tilted_six = RotateLeft(six, 3);  // 9 degrees
  EXPECT_NEAR(RotationInvariantEuclidean(six, tilted_six, limited), 0.0,
              1e-9);
}

TEST(IntegrationTest, MirrorInvarianceMatchesEnantiomorphicSkull) {
  // Paper Section 3: "in matching skulls, the best match may simply be
  // facing the opposite direction".
  Rng rng(3);
  const std::size_t n = 100;
  const Series skull =
      ZNormalized(RadialProfile(SkullSpec(&rng, 0.25, 0.3), n));
  const Series facing_left = RotateLeft(Reversed(skull), 31);

  std::vector<Series> db;
  for (int i = 0; i < 10; ++i) {
    db.push_back(
        ZNormalized(RadialProfile(RandomShapeSpec(&rng, 8, 0.3, 1.2), n)));
  }
  db.push_back(facing_left);

  ScanOptions with_mirror;
  with_mirror.rotation.mirror = true;
  const ScanResult hit =
      SearchDatabase(db, skull, ScanAlgorithm::kWedge, with_mirror);
  EXPECT_EQ(hit.best_index, 10);
  EXPECT_NEAR(hit.best_distance, 0.0, 1e-9);
  EXPECT_TRUE(hit.best_mirrored);

  // Without mirror invariance, the reversed skull is NOT a perfect match.
  const ScanResult miss =
      SearchDatabase(db, skull, ScanAlgorithm::kWedge, ScanOptions{});
  EXPECT_GT(miss.best_distance, 0.1);
}

TEST(IntegrationTest, LetterBAndDAreMirrorsNotRotations) {
  // The paper's "d" vs "b" example, in profile space: a chiral shape and
  // its reversal never align under rotation alone.
  Rng rng(4);
  const std::size_t n = 80;
  const Series d_letter =
      ZNormalized(RadialProfile(ButterflySpec(&rng, 0.2), n));
  const Series b_letter = Reversed(d_letter);
  EXPECT_GT(RotationInvariantEuclidean(d_letter, b_letter), 0.3);
  RotationOptions mirror;
  mirror.mirror = true;
  EXPECT_NEAR(RotationInvariantEuclidean(d_letter, b_letter, mirror), 0.0,
              1e-9);
}

TEST(IntegrationTest, DtwPipelineHandlesWarpedRotatedShapes) {
  Rng rng(5);
  const std::size_t n = 72;
  std::vector<Series> db;
  Series target;
  for (int i = 0; i < 15; ++i) {
    const Series s =
        ZNormalized(RadialProfile(RandomShapeSpec(&rng, 6, 0.3, 1.3), n));
    db.push_back(s);
  }
  // Query: a warped, rotated, noisy copy of db[7].
  Series q = SmoothTimeWarp(db[7], &rng, 0.03);
  q = RotateLeft(q, 29);
  q = AddNoise(q, &rng, 0.03);
  ZNormalize(&q);

  ScanOptions options;
  options.kind = DistanceKind::kDtw;
  options.band = 4;
  const ScanResult r = SearchDatabase(db, q, ScanAlgorithm::kWedge, options);
  EXPECT_EQ(r.best_index, 7);

  // And the full scan agrees.
  const ScanResult brute =
      SearchDatabase(db, q, ScanAlgorithm::kBruteForceBanded, options);
  EXPECT_EQ(brute.best_index, r.best_index);
  EXPECT_NEAR(brute.best_distance, r.best_distance, 1e-9);
}

}  // namespace
}  // namespace rotind
