/// FlatDataset: contiguous doubled storage and zero-copy rotation views.

#include "src/core/flat_dataset.h"

#include <gtest/gtest.h>

#include "src/core/aligned.h"
#include "src/core/random.h"

namespace rotind {
namespace {

TEST(FlatDatasetTest, EmptyByDefault) {
  FlatDataset db;
  EXPECT_TRUE(db.empty());
  EXPECT_EQ(db.size(), 0u);
  EXPECT_EQ(db.length(), 0u);
}

TEST(FlatDatasetTest, AddFixesLengthAndStoresItems) {
  FlatDataset db;
  db.Add({1.0, 2.0, 3.0});
  db.Add({4.0, 5.0, 6.0});
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.length(), 3u);
  EXPECT_EQ(db.Materialize(0), (Series{1.0, 2.0, 3.0}));
  EXPECT_EQ(db.Materialize(1), (Series{4.0, 5.0, 6.0}));
}

TEST(FlatDatasetTest, ViewAliasesStorage) {
  FlatDataset db;
  db.Add({1.0, 2.0, 3.0});
  const SeriesView v = db.view(0);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.data(), db.data(0));
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
}

TEST(FlatDatasetTest, RotationViewsAreZeroCopyCircularShifts) {
  FlatDataset db;
  const Series s = {1.0, 2.0, 3.0, 4.0, 5.0};
  db.Add(s);
  for (std::size_t shift = 0; shift < s.size(); ++shift) {
    const SeriesView r = db.rotation(0, shift);
    ASSERT_EQ(r.size(), s.size());
    // Zero copy: the view points into the doubled buffer, not a temporary.
    EXPECT_EQ(r.data(), db.data(0) + shift);
    for (std::size_t j = 0; j < s.size(); ++j) {
      EXPECT_DOUBLE_EQ(r[j], s[(j + shift) % s.size()])
          << "shift " << shift << " position " << j;
    }
  }
}

TEST(FlatDatasetTest, ItemsAreContiguousAtStride2N) {
  FlatDataset db;
  db.Add({1.0, 2.0});
  db.Add({3.0, 4.0});
  db.Add({5.0, 6.0});
  EXPECT_EQ(db.data(1), db.data(0) + 4);
  EXPECT_EQ(db.data(2), db.data(0) + 8);
}

TEST(FlatDatasetTest, FromItemsRoundTrips) {
  std::vector<Series> items;
  Rng rng(11);
  for (int i = 0; i < 7; ++i) {
    Series s(16);
    for (double& v : s) v = rng.Gaussian(0.0, 1.0);
    items.push_back(s);
  }
  const FlatDataset db = FlatDataset::FromItems(items);
  ASSERT_EQ(db.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(db.Materialize(i), items[i]);
  }
}

TEST(FlatDatasetTest, FromDatasetCarriesLabelsAndNames) {
  Dataset ds;
  ds.items = {{1.0, 2.0}, {3.0, 4.0}};
  ds.labels = {0, 1};
  ds.names = {"a", "b"};
  const FlatDataset db = FlatDataset::FromDataset(ds);
  ASSERT_EQ(db.labels().size(), 2u);
  EXPECT_EQ(db.label(1), 1);
  EXPECT_EQ(db.names()[0], "a");
}

TEST(FlatDatasetTest, FromItemsCheckedRejectsRagged) {
  const auto bad =
      FlatDataset::FromItemsChecked({{1.0, 2.0}, {3.0, 4.0, 5.0}});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("item 1"), std::string::npos);
}

TEST(FlatDatasetTest, FromItemsCheckedRejectsEmptyItem) {
  const auto bad = FlatDataset::FromItemsChecked({{}});
  ASSERT_FALSE(bad.ok());
}

TEST(FlatDatasetTest, FromItemsCheckedAcceptsRectangular) {
  const auto ok = FlatDataset::FromItemsChecked({{1.0, 2.0}, {3.0, 4.0}});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 2u);
}

/// The SIMD kernels issue 64-byte aligned loads against both the doubled
/// buffer and the SoA tiles; the dataset owns that guarantee.
TEST(FlatDatasetTest, BackingStorageIsSimdAligned) {
  FlatDataset db;
  for (int i = 0; i < 11; ++i) {
    db.Add({1.0 * i, 2.0 * i, 3.0 * i});
  }
  EXPECT_TRUE(IsSimdAligned(db.data(0)));
  ASSERT_GT(db.tile_groups(), 0u);
  for (std::size_t g = 0; g < db.tile_groups(); ++g) {
    EXPECT_TRUE(IsSimdAligned(db.tile(g))) << "group " << g;
  }
}

/// SoA layout: element t of candidate `base + l` lives at
/// tile(g)[t * kTileLanes + l]. Built incrementally via Add, which is the
/// path FromItems also uses.
TEST(FlatDatasetTest, TilesTransposeCandidatesIntoLanes) {
  const std::size_t n = 5;
  std::vector<Series> items;
  Rng rng(29);
  for (int i = 0; i < 19; ++i) {  // 19 = 2 full groups + a 3-lane tail
    Series s(n);
    for (double& v : s) v = rng.Gaussian(0.0, 1.0);
    items.push_back(s);
  }
  FlatDataset db;
  for (const Series& s : items) db.Add(s);

  ASSERT_EQ(db.tile_groups(), 3u);
  for (std::size_t i = 0; i < items.size(); ++i) {
    const std::size_t g = i / FlatDataset::kTileLanes;
    const std::size_t lane = i % FlatDataset::kTileLanes;
    const double* tile = db.tile(g);
    for (std::size_t t = 0; t < n; ++t) {
      EXPECT_EQ(tile[t * FlatDataset::kTileLanes + lane], items[i][t])
          << "item " << i << " element " << t;
    }
  }
}

/// Tail lanes past `size()` are zero-filled so blocked kernels can compute
/// them unconditionally and the caller can ignore the results.
TEST(FlatDatasetTest, TileTailLanesAreZero) {
  FlatDataset db;
  db.Add({1.0, 2.0});
  db.Add({3.0, 4.0});
  db.Add({5.0, 6.0});  // 3 candidates: lanes 3..7 of the only group unused
  ASSERT_EQ(db.tile_groups(), 1u);
  const double* tile = db.tile(0);
  for (std::size_t t = 0; t < db.length(); ++t) {
    for (std::size_t lane = db.size(); lane < FlatDataset::kTileLanes;
         ++lane) {
      EXPECT_EQ(tile[t * FlatDataset::kTileLanes + lane], 0.0)
          << "element " << t << " lane " << lane;
    }
  }
}

/// The tile mirror stays consistent as Add crosses group boundaries: the
/// SoA view must match the per-series view after every single insertion.
TEST(FlatDatasetTest, TilesStayConsistentAcrossIncrementalAdds) {
  const std::size_t n = 3;
  FlatDataset db;
  Rng rng(31);
  for (std::size_t i = 0; i < 2 * FlatDataset::kTileLanes + 1; ++i) {
    Series s(n);
    for (double& v : s) v = rng.Gaussian(0.0, 1.0);
    db.Add(s);
    for (std::size_t j = 0; j <= i; ++j) {
      const std::size_t g = j / FlatDataset::kTileLanes;
      const std::size_t lane = j % FlatDataset::kTileLanes;
      for (std::size_t t = 0; t < n; ++t) {
        ASSERT_EQ(db.tile(g)[t * FlatDataset::kTileLanes + lane],
                  db.data(j)[t])
            << "after add " << i << ": item " << j << " element " << t;
      }
    }
  }
}

}  // namespace
}  // namespace rotind
