/// FlatDataset: contiguous doubled storage and zero-copy rotation views.

#include "src/core/flat_dataset.h"

#include <gtest/gtest.h>

#include "src/core/random.h"

namespace rotind {
namespace {

TEST(FlatDatasetTest, EmptyByDefault) {
  FlatDataset db;
  EXPECT_TRUE(db.empty());
  EXPECT_EQ(db.size(), 0u);
  EXPECT_EQ(db.length(), 0u);
}

TEST(FlatDatasetTest, AddFixesLengthAndStoresItems) {
  FlatDataset db;
  db.Add({1.0, 2.0, 3.0});
  db.Add({4.0, 5.0, 6.0});
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.length(), 3u);
  EXPECT_EQ(db.Materialize(0), (Series{1.0, 2.0, 3.0}));
  EXPECT_EQ(db.Materialize(1), (Series{4.0, 5.0, 6.0}));
}

TEST(FlatDatasetTest, ViewAliasesStorage) {
  FlatDataset db;
  db.Add({1.0, 2.0, 3.0});
  const SeriesView v = db.view(0);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.data(), db.data(0));
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
}

TEST(FlatDatasetTest, RotationViewsAreZeroCopyCircularShifts) {
  FlatDataset db;
  const Series s = {1.0, 2.0, 3.0, 4.0, 5.0};
  db.Add(s);
  for (std::size_t shift = 0; shift < s.size(); ++shift) {
    const SeriesView r = db.rotation(0, shift);
    ASSERT_EQ(r.size(), s.size());
    // Zero copy: the view points into the doubled buffer, not a temporary.
    EXPECT_EQ(r.data(), db.data(0) + shift);
    for (std::size_t j = 0; j < s.size(); ++j) {
      EXPECT_DOUBLE_EQ(r[j], s[(j + shift) % s.size()])
          << "shift " << shift << " position " << j;
    }
  }
}

TEST(FlatDatasetTest, ItemsAreContiguousAtStride2N) {
  FlatDataset db;
  db.Add({1.0, 2.0});
  db.Add({3.0, 4.0});
  db.Add({5.0, 6.0});
  EXPECT_EQ(db.data(1), db.data(0) + 4);
  EXPECT_EQ(db.data(2), db.data(0) + 8);
}

TEST(FlatDatasetTest, FromItemsRoundTrips) {
  std::vector<Series> items;
  Rng rng(11);
  for (int i = 0; i < 7; ++i) {
    Series s(16);
    for (double& v : s) v = rng.Gaussian(0.0, 1.0);
    items.push_back(s);
  }
  const FlatDataset db = FlatDataset::FromItems(items);
  ASSERT_EQ(db.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(db.Materialize(i), items[i]);
  }
}

TEST(FlatDatasetTest, FromDatasetCarriesLabelsAndNames) {
  Dataset ds;
  ds.items = {{1.0, 2.0}, {3.0, 4.0}};
  ds.labels = {0, 1};
  ds.names = {"a", "b"};
  const FlatDataset db = FlatDataset::FromDataset(ds);
  ASSERT_EQ(db.labels().size(), 2u);
  EXPECT_EQ(db.label(1), 1);
  EXPECT_EQ(db.names()[0], "a");
}

TEST(FlatDatasetTest, FromItemsCheckedRejectsRagged) {
  const auto bad =
      FlatDataset::FromItemsChecked({{1.0, 2.0}, {3.0, 4.0, 5.0}});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("item 1"), std::string::npos);
}

TEST(FlatDatasetTest, FromItemsCheckedRejectsEmptyItem) {
  const auto bad = FlatDataset::FromItemsChecked({{}});
  ASSERT_FALSE(bad.ok());
}

TEST(FlatDatasetTest, FromItemsCheckedAcceptsRectangular) {
  const auto ok = FlatDataset::FromItemsChecked({{1.0, 2.0}, {3.0, 4.0}});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 2u);
}

}  // namespace
}  // namespace rotind
