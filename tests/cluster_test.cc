#include "src/cluster/linkage.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/core/random.h"

namespace rotind {
namespace {

/// 1-D points: distances are |a - b|; easy to reason about.
std::function<double(int, int)> PointDistance(const std::vector<double>& pts) {
  return [&pts](int i, int j) {
    return std::fabs(pts[static_cast<std::size_t>(i)] -
                     pts[static_cast<std::size_t>(j)]);
  };
}

TEST(DendrogramTest, SingleLeaf) {
  const std::vector<double> pts = {1.0};
  const Dendrogram dg = AgglomerativeCluster(1, PointDistance(pts),
                                             Linkage::kAverage);
  EXPECT_EQ(dg.num_leaves, 1);
  EXPECT_EQ(dg.nodes.size(), 1u);
  EXPECT_EQ(dg.CutIntoK(1), std::vector<int>{0});
}

TEST(DendrogramTest, TwoLeavesMergeAtTheirDistance) {
  const std::vector<double> pts = {0.0, 3.0};
  const Dendrogram dg = AgglomerativeCluster(2, PointDistance(pts),
                                             Linkage::kAverage);
  ASSERT_EQ(dg.nodes.size(), 3u);
  EXPECT_DOUBLE_EQ(dg.nodes[2].height, 3.0);
  EXPECT_EQ(dg.nodes[2].size, 2);
}

TEST(DendrogramTest, ObviousTwoClusters) {
  // Points {0, 1, 2} and {100, 101}: every linkage must split there first.
  const std::vector<double> pts = {0.0, 1.0, 2.0, 100.0, 101.0};
  for (Linkage linkage : {Linkage::kSingle, Linkage::kComplete,
                          Linkage::kAverage, Linkage::kWard}) {
    const Dendrogram dg =
        AgglomerativeCluster(5, PointDistance(pts), linkage);
    const std::vector<int> labels = dg.ClusterLabels(2);
    EXPECT_EQ(labels[0], labels[1]);
    EXPECT_EQ(labels[1], labels[2]);
    EXPECT_EQ(labels[3], labels[4]);
    EXPECT_NE(labels[0], labels[3]) << "linkage " << static_cast<int>(linkage);
  }
}

TEST(DendrogramTest, LeavesUnderRootCoversAll) {
  const std::vector<double> pts = {5.0, 1.0, 9.0, 2.0, 8.0, 3.0};
  const Dendrogram dg = AgglomerativeCluster(6, PointDistance(pts),
                                             Linkage::kAverage);
  std::vector<int> leaves = dg.LeavesUnder(dg.root());
  std::sort(leaves.begin(), leaves.end());
  EXPECT_EQ(leaves, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(DendrogramTest, CutsArePartitions) {
  Rng rng(1);
  std::vector<double> pts(20);
  for (double& p : pts) p = rng.Uniform(0.0, 100.0);
  const Dendrogram dg = AgglomerativeCluster(20, PointDistance(pts),
                                             Linkage::kAverage);
  for (int k = 1; k <= 20; ++k) {
    const std::vector<int> roots = dg.CutIntoK(k);
    EXPECT_EQ(static_cast<int>(roots.size()), k);
    std::set<int> all_leaves;
    int total = 0;
    for (int root : roots) {
      const std::vector<int> leaves = dg.LeavesUnder(root);
      total += static_cast<int>(leaves.size());
      all_leaves.insert(leaves.begin(), leaves.end());
    }
    EXPECT_EQ(total, 20) << "k=" << k;
    EXPECT_EQ(all_leaves.size(), 20u) << "k=" << k;  // disjoint cover
  }
}

TEST(DendrogramTest, CutsAreNested) {
  // Increasing k only ever splits one existing cluster (paper Figure 10).
  Rng rng(2);
  std::vector<double> pts(15);
  for (double& p : pts) p = rng.Uniform(0.0, 10.0);
  const Dendrogram dg = AgglomerativeCluster(15, PointDistance(pts),
                                             Linkage::kAverage);
  std::vector<int> prev = dg.ClusterLabels(1);
  for (int k = 2; k <= 15; ++k) {
    const std::vector<int> curr = dg.ClusterLabels(k);
    // Nestedness: any two leaves together at level k are together at k-1.
    for (std::size_t a = 0; a < curr.size(); ++a) {
      for (std::size_t b = a + 1; b < curr.size(); ++b) {
        if (curr[a] == curr[b]) {
          EXPECT_EQ(prev[a], prev[b]);
        }
      }
    }
    prev = curr;
  }
}

TEST(DendrogramTest, CutIntoKClampsRange) {
  const std::vector<double> pts = {0.0, 1.0, 5.0};
  const Dendrogram dg = AgglomerativeCluster(3, PointDistance(pts),
                                             Linkage::kAverage);
  EXPECT_EQ(dg.CutIntoK(0).size(), 1u);
  EXPECT_EQ(dg.CutIntoK(99).size(), 3u);
}

TEST(DendrogramTest, MergeSizesAccumulate) {
  Rng rng(3);
  std::vector<double> pts(12);
  for (double& p : pts) p = rng.Uniform(0.0, 50.0);
  const Dendrogram dg = AgglomerativeCluster(12, PointDistance(pts),
                                             Linkage::kComplete);
  ASSERT_EQ(dg.nodes.size(), 23u);
  EXPECT_EQ(dg.nodes.back().size, 12);
  for (std::size_t id = 12; id < dg.nodes.size(); ++id) {
    const auto& node = dg.nodes[id];
    EXPECT_EQ(node.size,
              dg.nodes[static_cast<std::size_t>(node.left)].size +
                  dg.nodes[static_cast<std::size_t>(node.right)].size);
  }
}

TEST(DendrogramTest, SingleLinkageMatchesMinimumSpanningIntuition) {
  // Chain 0-1-2-3 with gaps 1, 1, 10: single linkage merges the chain
  // before bridging the gap.
  const std::vector<double> pts = {0.0, 1.0, 2.0, 12.0};
  const Dendrogram dg = AgglomerativeCluster(4, PointDistance(pts),
                                             Linkage::kSingle);
  EXPECT_DOUBLE_EQ(dg.nodes.back().height, 10.0);
}

TEST(DendrogramTest, AverageLinkageHeightIsGroupAverage) {
  // Clusters {0} and {2, 4}: group-average distance from 0 is (2+4)/2 = 3.
  const std::vector<double> pts = {0.0, 2.0, 4.0};
  const Dendrogram dg = AgglomerativeCluster(3, PointDistance(pts),
                                             Linkage::kAverage);
  // First merge: {2,4} at height 2; second: {0}+{2,4} at height 3.
  EXPECT_DOUBLE_EQ(dg.nodes[3].height, 2.0);
  EXPECT_DOUBLE_EQ(dg.nodes[4].height, 3.0);
}

TEST(DendrogramTest, ToTextContainsLabels) {
  const std::vector<double> pts = {0.0, 1.0, 10.0};
  const Dendrogram dg = AgglomerativeCluster(3, PointDistance(pts),
                                             Linkage::kAverage);
  const std::string text = dg.ToText({"alpha", "beta", "gamma"});
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("gamma"), std::string::npos);
  EXPECT_NE(text.find("h="), std::string::npos);
}

TEST(DendrogramTest, WardPrefersCompactClusters) {
  const std::vector<double> pts = {0.0, 0.5, 1.0, 20.0, 20.5, 21.0};
  const Dendrogram dg = AgglomerativeCluster(6, PointDistance(pts),
                                             Linkage::kWard);
  const std::vector<int> labels = dg.ClusterLabels(2);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_EQ(labels[3], labels[5]);
  EXPECT_NE(labels[0], labels[3]);
}

}  // namespace
}  // namespace rotind
