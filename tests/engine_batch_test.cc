/// SearchBatch determinism: the worker pool must be invisible in the
/// results. 8 threads vs 1 thread, 50 seeded queries — every field of
/// every result, every per-query StepCounter, and the merged totals must
/// be bit-identical. (These tests also run under TSan in CI, where the
/// pool's memory ordering is exercised for data races.)

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "src/core/flat_dataset.h"
#include "src/core/random.h"
#include "src/datasets/synthetic.h"
#include "src/search/engine.h"

namespace rotind {
namespace {

std::vector<Series> MakeQueries(const FlatDataset& db, std::size_t count,
                                std::uint64_t seed) {
  // Queries are database items rotated by a seeded random shift — close
  // enough for pruning to engage, distinct enough to be non-trivial.
  Rng rng(seed);
  std::vector<Series> queries;
  const std::size_t n = db.length();
  for (std::size_t i = 0; i < count; ++i) {
    const Series item = db.Materialize(rng.NextBounded(db.size()));
    const std::size_t shift = rng.NextBounded(n);
    Series q(n);
    for (std::size_t j = 0; j < n; ++j) q[j] = item[(j + shift) % n];
    queries.push_back(q);
  }
  return queries;
}

void ExpectCountersEqual(const StepCounter& a, const StepCounter& b,
                         const std::string& label) {
  EXPECT_EQ(a.steps, b.steps) << label;
  EXPECT_EQ(a.setup_steps, b.setup_steps) << label;
  EXPECT_EQ(a.lower_bound_evals, b.lower_bound_evals) << label;
  EXPECT_EQ(a.full_evals, b.full_evals) << label;
  EXPECT_EQ(a.early_abandons, b.early_abandons) << label;
}

class EngineBatchTest : public ::testing::TestWithParam<DistanceKind> {};

TEST_P(EngineBatchTest, EightThreadsBitIdenticalToOne) {
  const FlatDataset db =
      FlatDataset::FromItems(MakeProjectilePointsDatabase(60, 48, 401));
  EngineOptions options;
  options.kind = GetParam();
  options.band = 4;
  const QueryEngine engine(db, options);
  const std::vector<Series> queries = MakeQueries(db, 50, 402);

  StepCounter merged_serial;
  StepCounter merged_parallel;
  const auto serial = engine.SearchBatch(queries, 1, &merged_serial);
  const auto parallel = engine.SearchBatch(queries, 8, &merged_parallel);

  ASSERT_EQ(serial.size(), queries.size());
  ASSERT_EQ(parallel.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const std::string label = "query " + std::to_string(q);
    EXPECT_EQ(serial[q].best_index, parallel[q].best_index) << label;
    // Bit-identical, not approximately equal.
    EXPECT_EQ(serial[q].best_distance, parallel[q].best_distance) << label;
    EXPECT_EQ(serial[q].best_shift, parallel[q].best_shift) << label;
    EXPECT_EQ(serial[q].best_mirrored, parallel[q].best_mirrored) << label;
    ExpectCountersEqual(serial[q].counter, parallel[q].counter, label);
  }
  ExpectCountersEqual(merged_serial, merged_parallel, "merged totals");
  // The merge must equal the sum of per-query counters, in query order.
  StepCounter recomputed;
  for (const ScanResult& r : serial) recomputed += r.counter;
  ExpectCountersEqual(recomputed, merged_parallel, "merge = sum");
}

TEST_P(EngineBatchTest, KnnBatchBitIdentical) {
  const FlatDataset db =
      FlatDataset::FromItems(MakeProjectilePointsDatabase(40, 32, 403));
  EngineOptions options;
  options.kind = GetParam();
  const QueryEngine engine(db, options);
  const std::vector<Series> queries = MakeQueries(db, 20, 404);

  StepCounter merged_serial;
  StepCounter merged_parallel;
  const auto serial = engine.KnnSearchBatch(queries, 4, 1, &merged_serial);
  const auto parallel = engine.KnnSearchBatch(queries, 4, 8, &merged_parallel);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t q = 0; q < serial.size(); ++q) {
    ASSERT_EQ(serial[q].size(), parallel[q].size()) << "query " << q;
    for (std::size_t r = 0; r < serial[q].size(); ++r) {
      EXPECT_EQ(serial[q][r].index, parallel[q][r].index);
      EXPECT_EQ(serial[q][r].distance, parallel[q][r].distance);
      EXPECT_EQ(serial[q][r].shift, parallel[q][r].shift);
    }
  }
  ExpectCountersEqual(merged_serial, merged_parallel, "knn merged");
}

TEST_P(EngineBatchTest, RangeBatchBitIdentical) {
  const FlatDataset db =
      FlatDataset::FromItems(MakeProjectilePointsDatabase(40, 32, 405));
  EngineOptions options;
  options.kind = GetParam();
  const QueryEngine engine(db, options);
  const std::vector<Series> queries = MakeQueries(db, 20, 406);

  // A radius wide enough that most queries have several hits.
  const double radius = 2.0;
  const auto serial = engine.RangeSearchBatch(queries, radius, 1);
  const auto parallel = engine.RangeSearchBatch(queries, radius, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t q = 0; q < serial.size(); ++q) {
    ASSERT_EQ(serial[q].size(), parallel[q].size()) << "query " << q;
    for (std::size_t r = 0; r < serial[q].size(); ++r) {
      EXPECT_EQ(serial[q][r].index, parallel[q][r].index);
      EXPECT_EQ(serial[q][r].distance, parallel[q][r].distance);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, EngineBatchTest,
                         ::testing::Values(DistanceKind::kEuclidean,
                                           DistanceKind::kDtw),
                         [](const ::testing::TestParamInfo<DistanceKind>& i) {
                           return DistanceKindName(i.param);
                         });

TEST(ParallelForTest, RunsEveryIndexExactlyOnce) {
  for (int threads : {1, 3, 8}) {
    const std::size_t count = 1000;
    std::vector<std::atomic<int>> hits(count);
    for (auto& h : hits) h.store(0);
    ParallelFor(count, threads, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelForTest, HandlesEmptyAndTinyRanges) {
  ParallelFor(0, 8, [](std::size_t) { FAIL() << "must not be called"; });
  std::atomic<int> calls{0};
  ParallelFor(1, 8, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelForTest, MoreThreadsThanWorkIsSafe) {
  std::atomic<int> calls{0};
  ParallelFor(3, 64, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 3);
}

}  // namespace
}  // namespace rotind
