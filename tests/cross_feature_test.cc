/// Cross-feature exactness matrix: the wedge scan must agree with brute
/// force for EVERY combination of distance kind, mirror invariance,
/// rotation limit, and hierarchy construction — the full option space a
/// downstream user can reach through ScanOptions.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/distance/dtw.h"
#include "src/distance/euclidean.h"
#include "src/distance/rotation.h"
#include "src/search/scan.h"

namespace rotind {
namespace {

std::vector<Series> RandomDatabase(Rng* rng, std::size_t m, std::size_t n) {
  std::vector<Series> db(m);
  for (Series& s : db) {
    s.resize(n);
    for (double& v : s) v = rng->Gaussian(0.0, 1.0);
    ZNormalize(&s);
  }
  return db;
}

/// (kind 0=ED 1=DTW, mirror, max_shift, hierarchy 0=clustered 1=contiguous)
using Config = std::tuple<int, bool, int, int>;

class CrossFeatureTest : public ::testing::TestWithParam<Config> {};

TEST_P(CrossFeatureTest, WedgeScanMatchesBruteForce) {
  const auto [kind, mirror, max_shift, hierarchy] = GetParam();
  Rng rng(static_cast<std::uint64_t>(kind) * 1000 + mirror * 100 +
          static_cast<std::uint64_t>(max_shift + 1) * 10 +
          static_cast<std::uint64_t>(hierarchy));
  const std::size_t n = 26;
  const std::vector<Series> db = RandomDatabase(&rng, 18, n);

  ScanOptions options;
  options.kind = kind == 0 ? DistanceKind::kEuclidean : DistanceKind::kDtw;
  options.band = 3;
  options.rotation.mirror = mirror;
  options.rotation.max_shift = max_shift;
  options.wedge.hierarchy = hierarchy == 0 ? WedgeHierarchy::kClustered
                                           : WedgeHierarchy::kContiguous;

  const ScanAlgorithm reference = kind == 0
                                      ? ScanAlgorithm::kBruteForce
                                      : ScanAlgorithm::kBruteForceBanded;
  for (int trial = 0; trial < 3; ++trial) {
    const Series q = RandomDatabase(&rng, 1, n)[0];
    const ScanResult brute = SearchDatabase(db, q, reference, options);
    const ScanResult wedge =
        SearchDatabase(db, q, ScanAlgorithm::kWedge, options);
    EXPECT_EQ(wedge.best_index, brute.best_index);
    EXPECT_NEAR(wedge.best_distance, brute.best_distance, 1e-9);
    // The reported alignment must reproduce the reported distance.
    Series aligned = wedge.best_mirrored ? Reversed(q) : q;
    aligned = RotateLeft(aligned, wedge.best_shift);
    const Series& c = db[static_cast<std::size_t>(wedge.best_index)];
    const double direct =
        kind == 0
            ? EuclideanDistance(aligned, c)
            : DtwDistance(aligned.data(), c.data(), n, options.band);
    EXPECT_NEAR(direct, wedge.best_distance, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CrossFeatureTest,
    ::testing::Combine(::testing::Values(0, 1),          // ED / DTW
                       ::testing::Bool(),                // mirror
                       ::testing::Values(-1, 0, 4),      // rotation limit
                       ::testing::Values(0, 1)));        // hierarchy

TEST(CrossFeatureTest, AlignmentReportedByBruteForceAlsoReconstructs) {
  Rng rng(77);
  const std::size_t n = 30;
  const std::vector<Series> db = RandomDatabase(&rng, 10, n);
  const Series q = RandomDatabase(&rng, 1, n)[0];
  ScanOptions options;
  options.rotation.mirror = true;
  const ScanResult r =
      SearchDatabase(db, q, ScanAlgorithm::kBruteForce, options);
  Series aligned = r.best_mirrored ? Reversed(q) : q;
  aligned = RotateLeft(aligned, r.best_shift);
  EXPECT_NEAR(
      EuclideanDistance(aligned, db[static_cast<std::size_t>(r.best_index)]),
      r.best_distance, 1e-9);
}

}  // namespace
}  // namespace rotind
