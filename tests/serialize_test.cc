#include "src/io/serialize.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/datasets/synthetic.h"

namespace rotind {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

Dataset SampleDataset() {
  SyntheticDatasetSpec spec;
  spec.name = "io";
  spec.num_classes = 3;
  spec.instances_per_class = 4;
  spec.length = 24;
  spec.seed = 7;
  return MakeSyntheticShapeDataset(spec);
}

TEST(BinarySerializeTest, RoundTripPreservesEverything) {
  const Dataset original = SampleDataset();
  const std::string path = TempPath("rotind_roundtrip.bin");
  ASSERT_TRUE(SaveDatasetBinary(original, path));

  Dataset loaded;
  ASSERT_TRUE(LoadDatasetBinary(path, &loaded));
  ASSERT_EQ(loaded.size(), original.size());
  ASSERT_EQ(loaded.length(), original.length());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.items[i], original.items[i]) << i;  // bit-exact
  }
  EXPECT_EQ(loaded.labels, original.labels);
  EXPECT_EQ(loaded.names, original.names);
  std::remove(path.c_str());
}

TEST(BinarySerializeTest, UnlabelledDataset) {
  Dataset ds;
  ds.items = {{1.0, 2.0}, {3.0, 4.0}};
  const std::string path = TempPath("rotind_unlabelled.bin");
  ASSERT_TRUE(SaveDatasetBinary(ds, path));
  Dataset loaded;
  ASSERT_TRUE(LoadDatasetBinary(path, &loaded));
  EXPECT_TRUE(loaded.labels.empty());
  EXPECT_TRUE(loaded.names.empty());
  EXPECT_EQ(loaded.items, ds.items);
  std::remove(path.c_str());
}

TEST(BinarySerializeTest, MissingFileFails) {
  Dataset out;
  EXPECT_FALSE(LoadDatasetBinary("/nonexistent/rotind.bin", &out));
  EXPECT_FALSE(LoadDatasetBinary(TempPath("rotind_missing.bin"), nullptr));
}

TEST(BinarySerializeTest, CorruptMagicFails) {
  const std::string path = TempPath("rotind_corrupt.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOT A ROTIND FILE", f);
    std::fclose(f);
  }
  Dataset out;
  EXPECT_FALSE(LoadDatasetBinary(path, &out));
  std::remove(path.c_str());
}

TEST(BinarySerializeTest, TruncatedFileFails) {
  const Dataset original = SampleDataset();
  const std::string path = TempPath("rotind_trunc.bin");
  ASSERT_TRUE(SaveDatasetBinary(original, path));
  std::filesystem::resize_file(path, 40);  // chop mid-payload
  Dataset out;
  EXPECT_FALSE(LoadDatasetBinary(path, &out));
  std::remove(path.c_str());
}

TEST(UcrSerializeTest, RoundTripValuesAndLabels) {
  const Dataset original = SampleDataset();
  const std::string path = TempPath("rotind_ucr.csv");
  ASSERT_TRUE(SaveDatasetUcr(original, path));

  Dataset loaded;
  ASSERT_TRUE(LoadDatasetUcr(path, &loaded));
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.labels, original.labels);
  for (std::size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ(loaded.items[i].size(), original.items[i].size());
    for (std::size_t j = 0; j < original.length(); ++j) {
      EXPECT_NEAR(loaded.items[i][j], original.items[i][j], 1e-12);
    }
  }
  std::remove(path.c_str());
}

TEST(UcrSerializeTest, ParsesWhitespaceAndTabSeparated) {
  const std::string path = TempPath("rotind_ucr_ws.txt");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("1 0.5 -0.25 3.0\n", f);
    std::fputs("2\t1.0\t2.0\t3.0\n", f);
    std::fputs("\n", f);  // blank lines are skipped
    std::fclose(f);
  }
  Dataset loaded;
  ASSERT_TRUE(LoadDatasetUcr(path, &loaded));
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.labels, (std::vector<int>{1, 2}));
  EXPECT_EQ(loaded.items[0], (Series{0.5, -0.25, 3.0}));
  std::remove(path.c_str());
}

TEST(UcrSerializeTest, RejectsRaggedRows) {
  const std::string path = TempPath("rotind_ucr_ragged.txt");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("1,0.5,1.5\n", f);
    std::fputs("2,0.5\n", f);  // different length
    std::fclose(f);
  }
  Dataset loaded;
  EXPECT_FALSE(LoadDatasetUcr(path, &loaded));
  std::remove(path.c_str());
}

TEST(UcrSerializeTest, RejectsEmptyAndMissing) {
  Dataset loaded;
  EXPECT_FALSE(LoadDatasetUcr("/nonexistent/rotind.csv", &loaded));
  const std::string path = TempPath("rotind_ucr_empty.txt");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadDatasetUcr(path, &loaded));
  std::remove(path.c_str());
}

// --- Status-returning API --------------------------------------------------

TEST(UcrSerializeStatusTest, DistinguishesMissingFromEmpty) {
  StatusOr<Dataset> missing = LoadDatasetUcrStatus("/nonexistent/rotind.csv");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  StatusOr<Dataset> empty = ParseDatasetUcr("");
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kEmptyDataset);
}

TEST(UcrSerializeStatusTest, TrailingNewlineAndBlankLinesAreFine) {
  StatusOr<Dataset> one = ParseDatasetUcr("1,0.5,1.5\n");
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  EXPECT_EQ(one->size(), 1u);

  // Missing final newline, CRLF endings, and interior blank lines all load.
  StatusOr<Dataset> messy =
      ParseDatasetUcr("1,0.5,1.5\r\n\n   \n2,2.5,3.5");
  ASSERT_TRUE(messy.ok()) << messy.status().ToString();
  ASSERT_EQ(messy->size(), 2u);
  EXPECT_EQ(messy->labels, (std::vector<int>{1, 2}));
  EXPECT_EQ(messy->items[1], (Series{2.5, 3.5}));
}

TEST(UcrSerializeStatusTest, MixedDelimitersWithinOneLine) {
  StatusOr<Dataset> ds = ParseDatasetUcr("3 0.5,1.5\t2.5\n");
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->labels, (std::vector<int>{3}));
  EXPECT_EQ(ds->items[0], (Series{0.5, 1.5, 2.5}));
}

TEST(UcrSerializeStatusTest, RaggedRowsGetRaggedRowCode) {
  StatusOr<Dataset> ds = ParseDatasetUcr("1,0.5,1.5\n2,0.5\n");
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kRaggedRow);
  // The message pinpoints the offending line.
  EXPECT_NE(ds.status().message().find("line 2"), std::string::npos)
      << ds.status().message();
}

TEST(UcrSerializeStatusTest, NonNumericFieldsGetParseErrorCode) {
  StatusOr<Dataset> bad_label = ParseDatasetUcr("abc,0.5,1.5\n");
  ASSERT_FALSE(bad_label.ok());
  EXPECT_EQ(bad_label.status().code(), StatusCode::kParseError);

  StatusOr<Dataset> bad_field = ParseDatasetUcr("1,0.5,oops\n");
  ASSERT_FALSE(bad_field.ok());
  EXPECT_EQ(bad_field.status().code(), StatusCode::kParseError);

  StatusOr<Dataset> label_only = ParseDatasetUcr("1\n");
  ASSERT_FALSE(label_only.ok());
  EXPECT_EQ(label_only.status().code(), StatusCode::kParseError);
}

TEST(UcrSerializeStatusTest, NonFiniteValuesGetBadValueCode) {
  for (const char* text : {"1,nan,1.0\n", "1,inf,1.0\n", "1,-inf,1.0\n",
                           "nan,1.0,2.0\n"}) {
    StatusOr<Dataset> ds = ParseDatasetUcr(text);
    ASSERT_FALSE(ds.ok()) << text;
    EXPECT_EQ(ds.status().code(), StatusCode::kBadValue) << text;
  }
}

TEST(BinarySerializeStatusTest, LengthZeroHeaderRejected) {
  // Hand-build a header claiming count=3, length=0.
  std::string image = "RIND";
  const auto append_pod = [&image](auto v) {
    image.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  append_pod(std::uint32_t{1});   // version
  append_pod(std::uint64_t{3});   // count
  append_pod(std::uint64_t{0});   // length
  append_pod(std::uint8_t{0});    // has_labels
  append_pod(std::uint8_t{0});    // has_names
  StatusOr<Dataset> ds = ParseDatasetBinary(image.data(), image.size());
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kCorruptHeader);
}

TEST(BinarySerializeStatusTest, SaveRejectsRaggedAndNonFinite) {
  Dataset ragged;
  ragged.items = {{1.0, 2.0}, {3.0}};
  const std::string path = TempPath("rotind_bad_save.bin");
  Status s = SaveDatasetBinaryStatus(ragged, path);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);

  Dataset nan_ds;
  nan_ds.items = {{1.0, std::nan("")}};
  s = SaveDatasetBinaryStatus(nan_ds, path);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kBadValue);
  EXPECT_FALSE(std::filesystem::exists(path));  // rejected before any write
}

}  // namespace
}  // namespace rotind
