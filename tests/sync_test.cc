/// Unit tests for the annotated sync primitives (src/core/sync.h): Mutex
/// mutual exclusion and try_lock, MutexLock RAII, CondVar wait/notify and
/// deadline semantics, and — in contract-enabled builds — the lock-order
/// hierarchy: acquiring a mutex whose rank is not strictly below every
/// held rank must abort, in ANY interleaving, which is what makes the
/// check stronger than a TSan run that happens not to deadlock.

#include "src/core/sync.h"

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace rotind {
namespace {

TEST(MutexTest, ExcludesOtherThreadsWhileHeld) {
  Mutex mu;
  mu.lock();
  bool acquired = true;
  std::thread prober([&] {
    acquired = mu.try_lock();
    if (acquired) mu.unlock();
  });
  prober.join();
  EXPECT_FALSE(acquired) << "try_lock succeeded against a held mutex";
  mu.unlock();

  std::thread retaker([&] {
    acquired = mu.try_lock();
    if (acquired) mu.unlock();
  });
  retaker.join();
  EXPECT_TRUE(acquired) << "try_lock failed against a free mutex";
}

TEST(MutexTest, CarriesItsLockRank) {
  const Mutex leaf;
  const Mutex pool(LockRank::kBufferPool);
  EXPECT_EQ(leaf.rank(), LockRank::kLeaf);
  EXPECT_EQ(pool.rank(), LockRank::kBufferPool);
}

TEST(MutexLockTest, SerializesConcurrentIncrements) {
  Mutex mu;
  long counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  bool observed = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    observed = true;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_TRUE(observed);
}

TEST(CondVarTest, WaitUntilReportsTimeout) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  // Nobody notifies: the wait must come back false with the lock reheld.
  EXPECT_FALSE(cv.WaitUntil(mu, deadline));
}

TEST(CondVarTest, WaitUntilWakesBeforeTheDeadlineWhenNotified) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread notifier([&] {
    {
      MutexLock lock(mu);
      ready = true;
    }
    cv.NotifyAll();
  });
  bool saw_ready = false;
  {
    MutexLock lock(mu);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    bool timed_out = false;
    while (!ready && !timed_out) {
      timed_out = !cv.WaitUntil(mu, deadline);
    }
    saw_ready = ready;
  }
  notifier.join();
  EXPECT_TRUE(saw_ready) << "notified wait reported a timeout";
}

/// The documented discipline — locks acquired in strictly decreasing rank
/// order — must be accepted in every build type.
TEST(LockRankTest, DescendingAcquisitionIsAllowed) {
  Mutex outer(LockRank::kServeQueue);
  Mutex middle(LockRank::kBackendError);
  Mutex leaf;  // kLeaf
  MutexLock a(outer);
  MutexLock b(middle);
  MutexLock c(leaf);
  SUCCEED();
}

#if ROTIND_CONTRACTS_ENABLED

using SyncDeathTest = ::testing::Test;

/// Acquiring UP the hierarchy is the shape every deadlock cycle contains;
/// contract-enabled builds refuse it before blocking on the lock.
TEST(SyncDeathTest, AscendingRankAcquisitionAborts) {
  Mutex low(LockRank::kFaultSchedule);
  Mutex high(LockRank::kBufferPool);
  EXPECT_DEATH(
      {
        MutexLock a(low);
        MutexLock b(high);
      },
      "lock-order hierarchy");
}

/// Equal ranks are also refused: two kLeaf mutexes taken together by two
/// threads in opposite orders is the textbook AB/BA deadlock.
TEST(SyncDeathTest, EqualRankAcquisitionAborts) {
  Mutex a;
  Mutex b;
  EXPECT_DEATH(
      {
        MutexLock first(a);
        MutexLock second(b);
      },
      "lock-order hierarchy");
}

TEST(SyncDeathTest, ReleasingAnUnheldMutexAborts) {
  Mutex mu;
  // The rank bookkeeping trips loudly before std::mutex undefined
  // behavior could.
  EXPECT_DEATH(mu.unlock(), "does not hold");
}

#endif  // ROTIND_CONTRACTS_ENABLED

}  // namespace
}  // namespace rotind
