#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/distance/rotation.h"
#include "src/index/disk.h"
#include "src/search/hmerge.h"
#include "src/search/scan.h"

namespace rotind {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

std::vector<Series> SmallDb() {
  return {{0.0, 1.0, 2.0, 3.0}, {3.0, 2.0, 1.0, 0.0}, {1.0, 1.0, 1.0, 1.0}};
}

// --- Scan entry points -----------------------------------------------------

TEST(ScanValidationTest, AcceptsWellFormedInputs) {
  const auto db = SmallDb();
  const Series query{0.5, 1.5, 2.5, 3.5};
  StatusOr<ScanResult> r =
      SearchDatabaseChecked(db, query, ScanAlgorithm::kWedge, ScanOptions{});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Same answer as the unchecked entry point.
  const ScanResult direct =
      SearchDatabase(db, query, ScanAlgorithm::kWedge, ScanOptions{});
  EXPECT_EQ(r->best_index, direct.best_index);
  EXPECT_DOUBLE_EQ(r->best_distance, direct.best_distance);
}

TEST(ScanValidationTest, RejectsEmptyQuery) {
  StatusOr<ScanResult> r = SearchDatabaseChecked(
      SmallDb(), Series{}, ScanAlgorithm::kBruteForce, ScanOptions{});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ScanValidationTest, RejectsNonFiniteQuery) {
  StatusOr<ScanResult> r =
      SearchDatabaseChecked(SmallDb(), Series{0.0, kNan, 2.0, 3.0},
                            ScanAlgorithm::kEarlyAbandon, ScanOptions{});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ScanValidationTest, RejectsMismatchedDbItem) {
  auto db = SmallDb();
  db.push_back({1.0, 2.0});  // wrong length
  StatusOr<ScanResult> r = SearchDatabaseChecked(
      db, Series{0.0, 1.0, 2.0, 3.0}, ScanAlgorithm::kWedge, ScanOptions{});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // The message names the offending item.
  EXPECT_NE(r.status().message().find("item 3"), std::string::npos)
      << r.status().message();
}

TEST(ScanValidationTest, KnnRejectsNonPositiveK) {
  StatusOr<std::vector<Neighbor>> r =
      KnnSearchDatabaseChecked(SmallDb(), Series{0.0, 1.0, 2.0, 3.0}, 0,
                               ScanAlgorithm::kWedge, ScanOptions{});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ScanValidationTest, RangeRejectsBadRadius) {
  for (double radius : {-1.0, kNan, std::numeric_limits<double>::infinity()}) {
    StatusOr<std::vector<Neighbor>> r =
        RangeSearchDatabaseChecked(SmallDb(), Series{0.0, 1.0, 2.0, 3.0},
                                   radius, ScanAlgorithm::kWedge,
                                   ScanOptions{});
    ASSERT_FALSE(r.ok()) << radius;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ScanValidationTest, KnnCheckedMatchesUnchecked) {
  const auto db = SmallDb();
  const Series query{0.1, 1.1, 2.1, 3.1};
  StatusOr<std::vector<Neighbor>> r = KnnSearchDatabaseChecked(
      db, query, 2, ScanAlgorithm::kEarlyAbandon, ScanOptions{});
  ASSERT_TRUE(r.ok());
  const auto direct =
      KnnSearchDatabase(db, query, 2, ScanAlgorithm::kEarlyAbandon,
                        ScanOptions{});
  ASSERT_EQ(r->size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ((*r)[i].index, direct[i].index);
  }
}

// --- Wedge searcher / H-Merge ---------------------------------------------

TEST(WedgeValidationTest, CreateRejectsEmptyAndNonFiniteQueries) {
  StepCounter counter;
  auto empty = WedgeSearcher::Create(Series{}, WedgeSearchOptions{}, &counter);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);

  auto nan = WedgeSearcher::Create(Series{1.0, kNan}, WedgeSearchOptions{},
                                   &counter);
  ASSERT_FALSE(nan.ok());
  EXPECT_EQ(nan.status().code(), StatusCode::kInvalidArgument);
}

TEST(WedgeValidationTest, CreateBuildsWorkingSearcher) {
  StepCounter counter;
  const Series query{0.0, 1.0, 2.0, 1.0};
  auto searcher =
      WedgeSearcher::Create(query, WedgeSearchOptions{}, &counter);
  ASSERT_TRUE(searcher.ok()) << searcher.status().ToString();
  const Series candidate{1.0, 2.0, 1.0, 0.0};  // a rotation of the query
  const HMergeResult r = (*searcher)->Distance(
      candidate.data(), std::numeric_limits<double>::infinity(), &counter);
  ASSERT_FALSE(r.abandoned);
  EXPECT_NEAR(r.distance, 0.0, 1e-12);
}

TEST(WedgeValidationTest, HMergeCheckedRejectsBadInputs) {
  StepCounter counter;
  const Series query{0.0, 1.0, 2.0, 1.0};
  WedgeTree tree(query, RotationOptions{}, /*dtw_band=*/0, &counter);
  const std::vector<int> wedges = tree.WedgeSetForK(2);
  const Series candidate{1.0, 2.0, 1.0, 0.0};

  auto null_c = HMergeChecked(nullptr, 4, tree, wedges, 10.0);
  ASSERT_FALSE(null_c.ok());
  EXPECT_EQ(null_c.status().code(), StatusCode::kInvalidArgument);

  auto short_c = HMergeChecked(candidate.data(), 3, tree, wedges, 10.0);
  ASSERT_FALSE(short_c.ok());
  EXPECT_EQ(short_c.status().code(), StatusCode::kInvalidArgument);

  auto bad_wedge =
      HMergeChecked(candidate.data(), 4, tree, {tree.num_nodes()}, 10.0);
  ASSERT_FALSE(bad_wedge.ok());
  EXPECT_EQ(bad_wedge.status().code(), StatusCode::kOutOfRange);

  auto ok = HMergeChecked(candidate.data(), 4, tree, wedges, 10.0);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_NEAR(ok->distance, 0.0, 1e-12);
}

// --- Rotation-invariant one-shot wrappers ---------------------------------

TEST(RotationValidationTest, RejectsMismatchedAndEmptyPairs) {
  auto mismatched = RotationInvariantEuclideanChecked(Series{1.0, 2.0},
                                                      Series{1.0, 2.0, 3.0});
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument);

  auto empty = RotationInvariantDtwChecked(Series{}, Series{}, 2);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);

  LcssOptions lcss;
  auto lcss_empty = RotationInvariantLcssChecked(Series{}, Series{}, lcss);
  ASSERT_FALSE(lcss_empty.ok());
  EXPECT_EQ(lcss_empty.status().code(), StatusCode::kInvalidArgument);
}

TEST(RotationValidationTest, CheckedMatchesUnchecked) {
  const Series q{0.0, 1.0, 2.0, 3.0};
  const Series c{3.0, 2.0, 1.0, 0.0};
  auto ed = RotationInvariantEuclideanChecked(q, c);
  ASSERT_TRUE(ed.ok());
  EXPECT_DOUBLE_EQ(*ed, RotationInvariantEuclidean(q, c));

  auto dtw = RotationInvariantDtwChecked(q, c, /*band=*/1);
  ASSERT_TRUE(dtw.ok());
  EXPECT_DOUBLE_EQ(*dtw, RotationInvariantDtw(q, c, /*band=*/1));
}

// --- SimulatedDisk ---------------------------------------------------------

TEST(DiskValidationTest, TryFetchRejectsInvalidIds) {
  SimulatedDisk disk;
  disk.Store(Series{1.0, 2.0, 3.0});
  for (int id : {-1, 1, 1000}) {
    auto fetched = disk.TryFetch(id);
    ASSERT_FALSE(fetched.ok()) << id;
    EXPECT_EQ(fetched.status().code(), StatusCode::kOutOfRange) << id;
    auto peeked = disk.TryPeek(id);
    ASSERT_FALSE(peeked.ok()) << id;
    EXPECT_EQ(peeked.status().code(), StatusCode::kOutOfRange) << id;
  }
  // Failed fetches count nothing.
  EXPECT_EQ(disk.object_fetches(), 0u);
  EXPECT_EQ(disk.page_reads(), 0u);

  auto ok = disk.TryFetch(0);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((**ok).size(), 3u);
  EXPECT_EQ(disk.object_fetches(), 1u);
}

}  // namespace
}  // namespace rotind
