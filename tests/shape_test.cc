#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/distance/euclidean.h"
#include "src/distance/rotation.h"
#include "src/shape/bitmap.h"
#include "src/shape/contour.h"
#include "src/shape/generate.h"
#include "src/shape/profile.h"

namespace rotind {
namespace {

std::vector<Point2> SquarePolygon() {
  return {{0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}, {0.0, 10.0}};
}

std::vector<Point2> CirclePolygon(double radius, int points) {
  std::vector<Point2> out;
  for (int i = 0; i < points; ++i) {
    const double t = 2 * 3.14159265358979 * i / points;
    out.push_back({radius * std::cos(t), radius * std::sin(t)});
  }
  return out;
}

TEST(BitmapTest, SetAndGetWithBoundsChecks) {
  Bitmap b(10, 8);
  EXPECT_EQ(b.width(), 10);
  EXPECT_EQ(b.height(), 8);
  EXPECT_FALSE(b.at(3, 3));
  b.set(3, 3, true);
  EXPECT_TRUE(b.at(3, 3));
  b.set(-1, 0, true);   // silently ignored
  b.set(100, 0, true);  // silently ignored
  EXPECT_FALSE(b.at(-1, 0));
  EXPECT_FALSE(b.at(100, 0));
}

TEST(BitmapTest, PolygonFillCoversInterior) {
  const Bitmap b = Bitmap::FromPolygon(SquarePolygon(), 64);
  EXPECT_GT(b.ForegroundCount(), 1000u);  // a filled square, not an outline
  const Point2 c = b.Centroid();
  EXPECT_NEAR(c.x, 32.0, 2.0);
  EXPECT_NEAR(c.y, 32.0, 2.0);
  EXPECT_TRUE(b.at(32, 32));
  EXPECT_FALSE(b.at(1, 1));  // margin is blank
}

TEST(BitmapTest, RotationPreservesAreaApproximately) {
  const Bitmap b = Bitmap::FromPolygon(CirclePolygon(1.0, 90), 64);
  const Bitmap r = b.Rotated(0.7);
  const double a0 = static_cast<double>(b.ForegroundCount());
  const double a1 = static_cast<double>(r.ForegroundCount());
  EXPECT_NEAR(a1 / a0, 1.0, 0.05);
}

TEST(BitmapTest, AsciiRendering) {
  Bitmap b(3, 2);
  b.set(1, 0, true);
  EXPECT_EQ(b.ToAscii(), ".#.\n...\n");
}

TEST(ContourTest, SquareBoundaryIsClosedRing) {
  const Bitmap b = Bitmap::FromPolygon(SquarePolygon(), 40);
  const std::vector<Pixel> boundary = TraceBoundary(b);
  ASSERT_GE(boundary.size(), 40u);
  // Consecutive boundary pixels are 8-adjacent, including the wrap-around.
  for (std::size_t i = 0; i < boundary.size(); ++i) {
    const Pixel& a = boundary[i];
    const Pixel& c = boundary[(i + 1) % boundary.size()];
    EXPECT_LE(std::abs(a.x - c.x), 1);
    EXPECT_LE(std::abs(a.y - c.y), 1);
    EXPECT_FALSE(a == c);
  }
  // Every boundary pixel is foreground.
  for (const Pixel& p : boundary) EXPECT_TRUE(b.at(p.x, p.y));
}

TEST(ContourTest, EmptyBitmapGivesEmptyBoundary) {
  EXPECT_TRUE(TraceBoundary(Bitmap(16, 16)).empty());
}

TEST(ContourTest, SinglePixel) {
  Bitmap b(8, 8);
  b.set(4, 4, true);
  const std::vector<Pixel> boundary = TraceBoundary(b);
  ASSERT_EQ(boundary.size(), 1u);
  EXPECT_EQ(boundary[0], (Pixel{4, 4}));
}

TEST(ContourTest, LargestComponentWins) {
  Bitmap b(64, 64);
  // Big blob.
  for (int y = 10; y < 40; ++y) {
    for (int x = 10; x < 40; ++x) b.set(x, y, true);
  }
  // Noise speck far away.
  b.set(60, 60, true);
  const std::vector<Pixel> boundary = TraceBoundary(b);
  for (const Pixel& p : boundary) {
    EXPECT_LT(p.x, 41);
    EXPECT_LT(p.y, 41);
  }
  EXPECT_GT(boundary.size(), 100u);
}

TEST(ContourTest, BoundaryLengthOfSquare) {
  Bitmap b(32, 32);
  for (int y = 8; y < 24; ++y) {
    for (int x = 8; x < 24; ++x) b.set(x, y, true);
  }
  const auto boundary = TraceBoundary(b);
  // Perimeter of a 16x16 square of pixels: 60 boundary pixels, length 60.
  EXPECT_NEAR(BoundaryLength(boundary), 60.0, 1.0);
}

TEST(ProfileTest, CircleProfileIsFlat) {
  const Bitmap b = Bitmap::FromPolygon(CirclePolygon(1.0, 180), 128);
  const std::vector<Pixel> boundary = TraceBoundary(b);
  const Series profile = CentroidProfile(boundary);
  ASSERT_FALSE(profile.empty());
  const double mean = Mean(profile);
  for (double v : profile) EXPECT_NEAR(v, mean, 0.05 * mean);
}

TEST(ProfileTest, ShapeToSeriesIsZNormalised) {
  const Bitmap b = Bitmap::FromPolygon(
      RadialPolygon(DigitSixSpec(), 256), 128);
  const Series s = ShapeToSeries(b, 64);
  ASSERT_EQ(s.size(), 64u);
  EXPECT_NEAR(Mean(s), 0.0, 1e-9);
  EXPECT_NEAR(StdDev(s), 1.0, 1e-9);
}

TEST(ProfileTest, EmptyBitmapGivesEmptySeries) {
  EXPECT_TRUE(ShapeToSeries(Bitmap(32, 32), 64).empty());
}

TEST(ProfileTest, RotatedBitmapYieldsCircularlyShiftedProfile) {
  // The foundational claim of the whole pipeline (paper Figure 2): rotating
  // the image is (approximately) a circular shift of the profile, so the
  // rotation-invariant distance between a shape and its rotation is small.
  const Bitmap base =
      Bitmap::FromPolygon(RadialPolygon(DigitSixSpec(), 360), 160);
  const Series s0 = ShapeToSeries(base, 128);
  ASSERT_FALSE(s0.empty());
  for (double angle : {0.5, 1.2, 2.6}) {
    const Series s1 = ShapeToSeries(base.Rotated(angle), 128);
    ASSERT_FALSE(s1.empty());
    const double aligned = RotationInvariantEuclidean(s0, s1);
    // Rasterisation noise keeps this from 0, but it must be far below the
    // typical distance between unrelated shapes (~ sqrt(2n) ~ 16).
    EXPECT_LT(aligned, 3.0) << "angle=" << angle;
  }
}

TEST(GenerateTest, RadialProfilePositive) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const RadialShapeSpec spec = RandomShapeSpec(&rng, 8);
    const Series p = RadialProfile(spec, 100);
    for (double v : p) EXPECT_GT(v, 0.0);
  }
}

TEST(GenerateTest, PolygonMatchesProfileRadii) {
  const RadialShapeSpec spec = DigitSixSpec();
  const Series profile = RadialProfile(spec, 64);
  const std::vector<Point2> poly = RadialPolygon(spec, 64);
  for (std::size_t i = 0; i < 64; ++i) {
    const double r = std::sqrt(poly[i].x * poly[i].x + poly[i].y * poly[i].y);
    EXPECT_NEAR(r, profile[i], 1e-9);
  }
}

TEST(GenerateTest, PerturbKeepsStructure) {
  Rng rng(2);
  const RadialShapeSpec base = RandomShapeSpec(&rng, 6);
  const RadialShapeSpec variant = PerturbSpec(base, &rng, 0.01, 0.01);
  const Series a = ZNormalized(RadialProfile(base, 80));
  const Series b = ZNormalized(RadialProfile(variant, 80));
  EXPECT_LT(EuclideanDistance(a, b), 2.0);
}

TEST(GenerateTest, WarpPreservesValueRange) {
  Rng rng(3);
  const Series s = RadialProfile(RandomShapeSpec(&rng, 6), 100);
  const Series w = SmoothTimeWarp(s, &rng, 0.03);
  const auto [lo, hi] = std::minmax_element(s.begin(), s.end());
  for (double v : w) {
    EXPECT_GE(v, *lo - 1e-9);
    EXPECT_LE(v, *hi + 1e-9);
  }
}

TEST(GenerateTest, WarpedSeriesFavoursDtw) {
  // The warp generator exists to make DTW matter: after warping, DTW keeps
  // the pair much closer than rotation-invariant ED does.
  Rng rng(4);
  int dtw_wins = 0;
  for (int trial = 0; trial < 10; ++trial) {
    Series s = ZNormalized(RadialProfile(RandomShapeSpec(&rng, 6), 96));
    Series w = ZNormalized(SmoothTimeWarp(s, &rng, 0.05));
    const double ed = RotationInvariantEuclidean(s, w);
    const double dtw = RotationInvariantDtw(s, w, 5);
    if (dtw < ed * 0.75) ++dtw_wins;
  }
  EXPECT_GE(dtw_wins, 6);
}

TEST(GenerateTest, ButterflyAsymmetryMakesChiralShapes) {
  Rng rng(5);
  const Series s =
      ZNormalized(RadialProfile(ButterflySpec(&rng, 0.15), 128));
  RotationOptions mirror;
  mirror.mirror = true;
  const double self_mirror = RotationInvariantEuclidean(s, Reversed(s), mirror);
  EXPECT_NEAR(self_mirror, 0.0, 1e-9);  // mirror search finds the reversal
  const double no_mirror = RotationInvariantEuclidean(s, Reversed(s));
  EXPECT_GT(no_mirror, 0.3);  // but plain rotations cannot
}

TEST(GenerateTest, DeterministicGivenSeed) {
  Rng a(42);
  Rng b(42);
  const Series s1 = RadialProfile(RandomShapeSpec(&a, 8), 64);
  const Series s2 = RadialProfile(RandomShapeSpec(&b, 8), 64);
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace rotind
