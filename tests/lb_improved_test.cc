/// LB_Improved exactness properties (Lemire's two-pass bound generalized
/// to rotation wedges, src/envelope/lower_bound.h):
///
///  * tightness ordering — LB_Keogh(C, W^band) <= LB_Improved <=
///    DTW_band(C, Q) for every member Q of the wedge, with the first
///    inequality exact in FLOATING POINT (pass 2 only adds non-negative
///    terms), and ED on the right at band 0;
///  * rotation soundness — a wedge merged over every rotation (and mirror)
///    of the query bounds the rotation-invariant distance itself;
///  * adversarial inputs — constant, sawtooth, and signed-zero series,
///    where clamping and tie-breaking rules earn their keep;
///  * early abandonment returns kAbandoned iff the full bound exceeds the
///    limit, and never changes the surviving value.

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/distance/dtw.h"
#include "src/distance/euclidean.h"
#include "src/distance/rotation.h"
#include "src/envelope/lower_bound.h"

namespace rotind {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Series RandomSeries(Rng* rng, std::size_t n) {
  Series s(n);
  for (double& v : s) v = rng->Gaussian(0.0, 1.0);
  return s;
}

/// Builds the wedge of a set of member series.
Envelope WedgeOf(const std::vector<Series>& members) {
  Envelope env = Envelope::FromSeries(members[0]);
  for (std::size_t m = 1; m < members.size(); ++m) {
    env.MergeSeries(members[m].data(), members[m].size());
  }
  return env;
}

/// One check of the full ordering chain for candidate `c` against a wedge
/// and its members: LB_Keogh (expanded) <= LB_Improved <= min member DTW.
void ExpectOrdering(const Series& c, const Envelope& wedge,
                    const std::vector<Series>& members, int band,
                    const char* label) {
  const std::size_t n = c.size();
  const Envelope expanded = wedge.ExpandedForDtw(band);

  // Pass-1-only bound: squared LB_Keogh of the candidate against the
  // EXPANDED wedge, exactly what LbImprovedSquared computes before pass 2.
  const double lb_keogh_sq = EarlyAbandonLbKeoghSquared(
      c.data(), expanded.upper.data(), expanded.lower.data(), n, kInf);
  const double lbi_sq =
      LbImprovedSquared(c.data(), wedge, expanded, band, kInf);
  ASSERT_FALSE(std::isinf(lbi_sq)) << label;
  const double lbi = std::sqrt(lbi_sq);

  // The first inequality is exact in floating point, not just in the
  // reals: pass 2 starts from the pass-1 accumulator and only adds
  // non-negative terms. No epsilon. (sqrt is monotone, so the unsquared
  // ordering follows exactly too.)
  EXPECT_LE(lb_keogh_sq, lbi_sq) << label;
  EXPECT_LE(LbKeogh(c.data(), expanded), lbi) << label;

  // The unsquared convenience agrees with the squared core.
  EXPECT_NEAR(LbImproved(c.data(), wedge, band, kInf), lbi, 1e-12) << label;

  for (const Series& q : members) {
    if (band == 0) {
      EXPECT_LE(lbi, EuclideanDistance(c, q) + 1e-9) << label;
    }
    EXPECT_LE(lbi, DtwDistance(c.data(), q.data(), n, band) + 1e-9) << label;
  }
}

class LbImprovedOrderingTest : public ::testing::TestWithParam<int> {};

TEST_P(LbImprovedOrderingTest, OrderingHoldsOnRandomWedges) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 17);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 8 + rng.NextBounded(48);
    const int band = static_cast<int>(rng.NextBounded(7));  // 0 = ED case
    const std::size_t members = 1 + rng.NextBounded(8);
    std::vector<Series> ms;
    for (std::size_t m = 0; m < members; ++m) {
      ms.push_back(RandomSeries(&rng, n));
    }
    const Envelope wedge = WedgeOf(ms);
    const Series c = RandomSeries(&rng, n);
    ExpectOrdering(c, wedge, ms, band, "random");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LbImprovedOrderingTest,
                         ::testing::Range(1, 9));

/// The engine's actual use: the wedge encloses EVERY rotation (and mirror)
/// of the query, so the bound must not exceed the rotation-invariant
/// distance — the min over all rotations.
TEST(LbImprovedRotationTest, BoundsRotationInvariantDistances) {
  Rng rng(2026);
  for (const bool mirror : {false, true}) {
    for (int trial = 0; trial < 12; ++trial) {
      const std::size_t n = 10 + rng.NextBounded(30);
      const int band = static_cast<int>(rng.NextBounded(5));
      const Series q = RandomSeries(&rng, n);
      RotationOptions ropts;
      ropts.mirror = mirror;
      const RotationSet rots(q, ropts);
      std::vector<Series> members;
      for (std::size_t r = 0; r < rots.count(); ++r) {
        members.push_back(rots.Materialize(r));
      }
      const Envelope wedge = WedgeOf(members);
      const Series c = RandomSeries(&rng, n);
      ExpectOrdering(c, wedge, members, band, mirror ? "mirror" : "plain");

      // Against the rotation-invariant distances themselves.
      const double lbi = LbImproved(c.data(), wedge, band, kInf);
      EXPECT_LE(lbi, RotationInvariantDtw(c, q, band, ropts) + 1e-9);
      if (band == 0) {
        EXPECT_LE(lbi, RotationInvariantEuclidean(c, q, ropts) + 1e-9);
      }
    }
  }
}

TEST(LbImprovedAdversarialTest, ConstantSawtoothAndSignedZeroSeries) {
  const std::size_t n = 24;
  std::vector<Series> shapes;
  shapes.push_back(Series(n, 0.0));    // constant zero
  shapes.push_back(Series(n, -3.25));  // constant offset
  Series saw(n);
  for (std::size_t i = 0; i < n; ++i) {
    saw[i] = (i % 4 == 3) ? -2.0 : static_cast<double>(i % 4);
  }
  shapes.push_back(saw);
  Series zeros(n, 0.0);
  for (std::size_t i = 0; i < n; i += 2) zeros[i] = -0.0;
  shapes.push_back(zeros);  // mixed +/-0.0: clamp ties must stay benign

  for (const Series& a : shapes) {
    for (const Series& b : shapes) {
      for (const int band : {0, 1, 3}) {
        const Envelope wedge = WedgeOf({a});
        ExpectOrdering(b, wedge, {a}, band, "adversarial");
      }
    }
  }
}

/// Degenerate wedge at band 0: pass 1 is already exact Euclidean, so the
/// two-pass bound must equal it (pass 2 contributes zero — the projection
/// IS the wedge).
TEST(LbImprovedAdversarialTest, DegenerateWedgeBandZeroEqualsEuclidean) {
  Rng rng(77);
  const std::size_t n = 32;
  const Series q = RandomSeries(&rng, n);
  const Series c = RandomSeries(&rng, n);
  const Envelope wedge = Envelope::FromSeries(q);
  const double lbi = LbImproved(c.data(), wedge, 0, kInf);
  EXPECT_NEAR(lbi, EuclideanDistance(q, c), 1e-12);
}

TEST(LbImprovedAbandonTest, AbandonsIffBoundExceedsLimit) {
  Rng rng(88);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 8 + rng.NextBounded(40);
    const int band = static_cast<int>(rng.NextBounded(5));
    Envelope wedge = Envelope::FromSeries(RandomSeries(&rng, n));
    wedge.MergeSeries(RandomSeries(&rng, n).data(), n);
    const Envelope expanded = wedge.ExpandedForDtw(band);
    const Series c = RandomSeries(&rng, n);

    const double full_sq = LbImprovedSquared(c.data(), wedge, expanded, band, kInf);
    const double limit_sq = rng.Uniform(0.0, 2.0 * full_sq + 0.01);
    const double got = LbImprovedSquared(c.data(), wedge, expanded, band, limit_sq);
    if (full_sq > limit_sq) {
      EXPECT_EQ(got, kAbandoned) << "n=" << n << " band=" << band;
    } else {
      // Surviving evaluations are bit-identical to the unlimited run.
      EXPECT_EQ(got, full_sq) << "n=" << n << " band=" << band;
    }
  }
}

/// Step accounting: a full evaluation charges both passes plus the 2n
/// projection-envelope build; lower_bound_evals ticks once per call.
TEST(LbImprovedAbandonTest, ChargesStepsForBothPasses) {
  const std::size_t n = 16;
  Rng rng(99);
  const Envelope wedge = Envelope::FromSeries(RandomSeries(&rng, n));
  const Envelope expanded = wedge.ExpandedForDtw(2);
  const Series c = RandomSeries(&rng, n);
  StepCounter counter;
  const double sq = LbImprovedSquared(c.data(), wedge, expanded, 2, kInf, &counter);
  ASSERT_FALSE(std::isinf(sq));
  // Pass 1 examines n points; pass 2 examines n gaps; the sliding min/max
  // projection envelope build costs 2n.
  EXPECT_EQ(counter.steps, 4 * n);
}

}  // namespace
}  // namespace rotind
