#include "src/mining/motif.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/datasets/synthetic.h"

namespace rotind {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Series RandomZSeries(Rng* rng, std::size_t n) {
  Series s(n);
  for (double& v : s) v = rng->Gaussian(0.0, 1.0);
  ZNormalize(&s);
  return s;
}

/// Reference all-pairs motif via brute force.
MotifResult BruteMotif(const std::vector<Series>& db, DistanceKind kind,
                       int band, const RotationOptions& rotation) {
  MotifResult best;
  best.distance = kInf;
  for (std::size_t i = 0; i < db.size(); ++i) {
    for (std::size_t j = i + 1; j < db.size(); ++j) {
      const double d =
          kind == DistanceKind::kEuclidean
              ? RotationInvariantEuclidean(db[i], db[j], rotation)
              : RotationInvariantDtw(db[i], db[j], band, rotation);
      if (d < best.distance) {
        best.distance = d;
        best.first = static_cast<int>(i);
        best.second = static_cast<int>(j);
      }
    }
  }
  return best;
}

TEST(MotifTest, FindsPlantedPairEuclidean) {
  Rng rng(1);
  const std::size_t n = 48;
  std::vector<Series> db;
  for (int i = 0; i < 20; ++i) db.push_back(RandomZSeries(&rng, n));
  // Plant: 13 is a slightly noisy rotation of 4.
  Series twin = RotateLeft(db[4], 17);
  for (double& v : twin) v += rng.Gaussian(0.0, 0.01);
  ZNormalize(&twin);
  db[13] = twin;

  const MotifResult r = FindMotifPair(db);
  EXPECT_EQ(std::min(r.first, r.second), 4);
  EXPECT_EQ(std::max(r.first, r.second), 13);
  EXPECT_LT(r.distance, 0.5);
}

class MotifExactnessTest : public ::testing::TestWithParam<int> {};

TEST_P(MotifExactnessTest, MatchesBruteForceEuclidean) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 71 + 13);
  const std::size_t n = 24 + rng.NextBounded(16);
  std::vector<Series> db;
  for (int i = 0; i < 12; ++i) db.push_back(RandomZSeries(&rng, n));

  const MotifResult fast = FindMotifPair(db);
  const MotifResult brute = BruteMotif(db, DistanceKind::kEuclidean, 0, {});
  EXPECT_NEAR(fast.distance, brute.distance, 1e-9);
  EXPECT_EQ(fast.first, brute.first);
  EXPECT_EQ(fast.second, brute.second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MotifExactnessTest, ::testing::Range(1, 7));

TEST(MotifTest, DtwModeMatchesBruteForce) {
  Rng rng(9);
  const std::size_t n = 24;
  std::vector<Series> db;
  for (int i = 0; i < 8; ++i) db.push_back(RandomZSeries(&rng, n));
  MiningOptions options;
  options.kind = DistanceKind::kDtw;
  options.band = 3;
  const MotifResult fast = FindMotifPair(db, options);
  const MotifResult brute = BruteMotif(db, DistanceKind::kDtw, 3, {});
  EXPECT_NEAR(fast.distance, brute.distance, 1e-9);
  EXPECT_EQ(fast.first, brute.first);
  EXPECT_EQ(fast.second, brute.second);
}

TEST(MotifTest, MirrorMotif) {
  Rng rng(10);
  const std::size_t n = 32;
  std::vector<Series> db;
  for (int i = 0; i < 10; ++i) db.push_back(RandomZSeries(&rng, n));
  db[7] = RotateLeft(Reversed(db[2]), 5);

  MiningOptions options;
  options.rotation.mirror = true;
  const MotifResult r = FindMotifPair(db, options);
  EXPECT_EQ(std::min(r.first, r.second), 2);
  EXPECT_EQ(std::max(r.first, r.second), 7);
  EXPECT_NEAR(r.distance, 0.0, 1e-9);
  EXPECT_TRUE(r.mirrored);
}

TEST(MotifTest, SignatureOrderingSavesWork) {
  // On clustered data the motif should be confirmed after evaluating only
  // a few pairs exactly.
  const std::vector<Series> db = MakeProjectilePointsDatabase(60, 64, 5);
  const MotifResult r = FindMotifPair(db);
  EXPECT_GE(r.first, 0);
  // Full brute force would be 60*59/2 * 64 * 64 steps ~ 7.2M.
  EXPECT_LT(r.counter.total_steps(), 3000000u);
}

TEST(DiscordTest, FindsPlantedOutlier) {
  // The ref [29] scenario: a database of similar light-curve-like series
  // plus one oddball; the discord must be the oddball.
  Rng rng(11);
  const std::size_t n = 48;
  const Series base = RandomZSeries(&rng, n);
  std::vector<Series> db;
  for (int i = 0; i < 15; ++i) {
    Series c = RotateLeft(base, static_cast<long>(rng.NextBounded(n)));
    for (double& v : c) v += rng.Gaussian(0.0, 0.05);
    ZNormalize(&c);
    db.push_back(std::move(c));
  }
  db[9] = RandomZSeries(&rng, n);  // the outlier

  const DiscordResult r = FindDiscord(db);
  EXPECT_EQ(r.index, 9);
  EXPECT_GT(r.distance, 1.0);
  EXPECT_NE(r.nearest_neighbor, 9);
}

TEST(DiscordTest, MatchesBruteForceDefinition) {
  Rng rng(12);
  const std::size_t n = 30;
  std::vector<Series> db;
  for (int i = 0; i < 10; ++i) db.push_back(RandomZSeries(&rng, n));

  const DiscordResult fast = FindDiscord(db);

  double best = -1.0;
  int expected = -1;
  for (std::size_t i = 0; i < db.size(); ++i) {
    double nn = kInf;
    for (std::size_t j = 0; j < db.size(); ++j) {
      if (i == j) continue;
      nn = std::min(nn, RotationInvariantEuclidean(db[i], db[j]));
    }
    if (nn > best) {
      best = nn;
      expected = static_cast<int>(i);
    }
  }
  EXPECT_EQ(fast.index, expected);
  EXPECT_NEAR(fast.distance, best, 1e-9);
}

TEST(PairwiseDistanceMatrixTest, MatchesDirectDistances) {
  Rng rng(13);
  const std::size_t n = 20;
  std::vector<Series> db;
  for (int i = 0; i < 7; ++i) db.push_back(RandomZSeries(&rng, n));
  const std::vector<double> condensed = PairwiseDistanceMatrix(db);
  ASSERT_EQ(condensed.size(), 21u);
  std::size_t pos = 0;
  for (std::size_t i = 0; i < db.size(); ++i) {
    for (std::size_t j = i + 1; j < db.size(); ++j) {
      EXPECT_NEAR(condensed[pos++],
                  RotationInvariantEuclidean(db[i], db[j]), 1e-9);
    }
  }
}

}  // namespace
}  // namespace rotind
