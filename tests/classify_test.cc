#include "src/eval/classify.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/datasets/synthetic.h"
#include "src/distance/euclidean.h"

namespace rotind {
namespace {

/// A trivially separable rotated dataset: two very different prototypes,
/// instances are rotations with tiny noise.
Dataset EasyRotatedDataset(std::size_t per_class, std::size_t n,
                           std::uint64_t seed) {
  Dataset ds;
  Rng rng(seed);
  Series proto_a(n), proto_b(n);
  for (std::size_t i = 0; i < n; ++i) {
    proto_a[i] = std::sin(2 * 3.14159265 * i / static_cast<double>(n));
    proto_b[i] = (i < n / 2) ? 1.0 : -1.0;  // square wave
  }
  for (int label = 0; label < 2; ++label) {
    const Series& proto = label == 0 ? proto_a : proto_b;
    for (std::size_t i = 0; i < per_class; ++i) {
      Series s = RotateLeft(proto, static_cast<long>(rng.NextBounded(n)));
      for (double& v : s) v += rng.Gaussian(0.0, 0.05);
      ZNormalize(&s);
      ds.items.push_back(s);
      ds.labels.push_back(label);
    }
  }
  return ds;
}

TEST(ClassifyTest, SeparableDatasetHasZeroErrorWithRotationInvariance) {
  const Dataset ds = EasyRotatedDataset(10, 64, 1);
  const ClassificationResult r = LeaveOneOutOneNnRotationInvariant(
      ds, DistanceKind::kEuclidean, 0);
  EXPECT_EQ(r.errors, 0);
  EXPECT_EQ(r.total, 20);
  EXPECT_DOUBLE_EQ(r.error_rate(), 0.0);
}

TEST(ClassifyTest, ThreadedClassificationBitIdenticalToSerial) {
  const Dataset ds = EasyRotatedDataset(12, 48, 7);
  for (DistanceKind kind : {DistanceKind::kEuclidean, DistanceKind::kDtw}) {
    const ClassificationResult serial =
        LeaveOneOutOneNnRotationInvariant(ds, kind, 4, {}, /*num_threads=*/1);
    const ClassificationResult parallel =
        LeaveOneOutOneNnRotationInvariant(ds, kind, 4, {}, /*num_threads=*/8);
    EXPECT_EQ(serial.errors, parallel.errors);
    EXPECT_EQ(serial.total, parallel.total);
    // Counters merge in query order, so totals match exactly too.
    EXPECT_EQ(serial.counter.steps, parallel.counter.steps);
    EXPECT_EQ(serial.counter.setup_steps, parallel.counter.setup_steps);
    EXPECT_EQ(serial.counter.full_evals, parallel.counter.full_evals);
  }
}

TEST(ClassifyTest, NaiveAlignedDistanceFailsWhereRotationInvariantSucceeds) {
  // The paper's yoga-dataset lesson: "unless we have the best rotation then
  // nothing else matters".
  const Dataset ds = EasyRotatedDataset(12, 64, 2);
  const ClassificationResult aligned = LeaveOneOutOneNn(
      ds, [](const Series& a, const Series& b) {
        return EuclideanDistance(a, b);
      });
  const ClassificationResult invariant = LeaveOneOutOneNnRotationInvariant(
      ds, DistanceKind::kEuclidean, 0);
  EXPECT_EQ(invariant.errors, 0);
  EXPECT_GT(aligned.errors, 0);
}

TEST(ClassifyTest, GenericAndWedgeBasedAgree) {
  const Dataset ds = MakeSyntheticShapeDataset([] {
    SyntheticDatasetSpec spec;
    spec.num_classes = 3;
    spec.instances_per_class = 6;
    spec.length = 40;
    spec.noise_sigma = 0.3;
    spec.seed = 5;
    return spec;
  }());
  const ClassificationResult generic = LeaveOneOutOneNn(
      ds, [](const Series& a, const Series& b) {
        return RotationInvariantEuclidean(a, b);
      });
  const ClassificationResult wedge = LeaveOneOutOneNnRotationInvariant(
      ds, DistanceKind::kEuclidean, 0);
  EXPECT_EQ(generic.errors, wedge.errors);
  EXPECT_EQ(generic.total, wedge.total);
}

TEST(ClassifyTest, DtwClassificationRunsAndBeatsOrMatchesEdOnWarpedData) {
  SyntheticDatasetSpec spec;
  spec.num_classes = 4;
  spec.instances_per_class = 8;
  spec.length = 64;
  spec.warp_strength = 0.08;
  spec.noise_sigma = 0.15;
  spec.amplitude_jitter = 0.02;
  spec.seed = 11;
  const Dataset ds = MakeSyntheticShapeDataset(spec);
  const ClassificationResult ed = LeaveOneOutOneNnRotationInvariant(
      ds, DistanceKind::kEuclidean, 0);
  const ClassificationResult dtw = LeaveOneOutOneNnRotationInvariant(
      ds, DistanceKind::kDtw, 6);
  EXPECT_LE(dtw.errors, ed.errors + 1);  // DTW should not be much worse
}

TEST(ClassifyTest, LearnBestBandReturnsCandidate) {
  const Dataset ds = EasyRotatedDataset(6, 48, 3);
  const int band = LearnBestBand(ds, {1, 2, 3});
  EXPECT_GE(band, 1);
  EXPECT_LE(band, 3);
}

TEST(ClassifyTest, ErrorRateOfEmptyDataset) {
  ClassificationResult r;
  EXPECT_DOUBLE_EQ(r.error_rate(), 0.0);
}

}  // namespace
}  // namespace rotind
