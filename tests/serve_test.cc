/// QueryServer + wire protocol: parsing is strict and crash-free on
/// arbitrary bytes, admission control sheds deterministically at the
/// queue bound, degradation narrows k HONESTLY (flagged, exact for the
/// reported k), deadlines are measured from admission, an 8-worker pool
/// drains leak-free, and the kill-switch unwinds stragglers typed.

#include "src/serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/core/flat_dataset.h"
#include "src/core/random.h"
#include "src/core/status.h"
#include "src/datasets/synthetic.h"
#include "src/search/engine.h"
#include "src/serve/protocol.h"

namespace rotind::serve {
namespace {

TEST(ProtocolTest, ParsesEveryOpWithAndWithoutDeadline) {
  auto nn = ParseRequest("nn 12");
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(static_cast<int>(nn->op), static_cast<int>(RequestOp::kNearest));
  EXPECT_EQ(nn->query_id, 12u);
  EXPECT_EQ(nn->deadline.count(), 0);

  auto knn = ParseRequest("knn 3 7 deadline_ms=2.5");
  ASSERT_TRUE(knn.ok());
  EXPECT_EQ(static_cast<int>(knn->op), static_cast<int>(RequestOp::kKnn));
  EXPECT_EQ(knn->query_id, 3u);
  EXPECT_EQ(knn->k, 7);
  EXPECT_EQ(knn->deadline, std::chrono::microseconds(2500));

  auto range = ParseRequest("range 0 1.25\r\n");
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(static_cast<int>(range->op),
            static_cast<int>(RequestOp::kRange));
  EXPECT_DOUBLE_EQ(range->radius, 1.25);
}

TEST(ProtocolTest, RejectsMalformedLinesTyped) {
  const char* bad[] = {
      "",                     // empty
      "teleport 3",           // unknown op
      "nn",                   // missing id
      "nn -1",                // negative id
      "nn 1 2",               // trailing garbage (not a deadline)
      "nn  1",                // double space
      " nn 1",                // leading space
      "knn 1",                // missing k
      "knn 1 0",              // k out of range
      "knn 1 99999999",       // k out of range
      "range 1 -2",           // negative radius
      "range 1 nan",          // non-finite radius
      "nn 1 deadline_ms=0",   // zero deadline
      "nn 1 deadline_ms=oops",
      "nn 1 deadline_ms=nan",     // NaN compares false to every bound
      "nn 1 deadline_ms=-nan",
      "nn 1 deadline_ms=inf",     // non-finite
      "nn 1 deadline_ms=-inf",
      "nn 1 deadline_ms=-5",      // negative
      "nn 1 deadline_ms=1e400",   // overflows double
      "nn 1 deadline_ms=1e9",     // beyond kMaxDeadlineMs
      "nn 1\x01",             // control byte
  };
  for (const char* line : bad) {
    const auto r = ParseRequest(line);
    EXPECT_FALSE(r.ok()) << "accepted: '" << line << "'";
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << line;
    }
  }
  EXPECT_FALSE(ParseRequest(std::string(5000, 'a')).ok());
}

TEST(ProtocolTest, ArbitraryBytesNeverCrashTheParser) {
  Rng rng(20260809);
  for (int i = 0; i < 2000; ++i) {
    std::string line;
    const std::size_t len = rng.NextBounded(40);
    for (std::size_t j = 0; j < len; ++j) {
      line.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    const auto r = ParseRequest(line);  // Must return, never crash.
    if (r.ok()) {
      // Anything accepted must round-trip through the formatter too.
      Response response;
      response.status = Status::Ok();
      response.effective_k = r->k;
      (void)FormatResponse(*r, response);
    }
  }
}

TEST(ProtocolTest, FormatsOkAndErrorResponses) {
  Request request;
  request.op = RequestOp::kKnn;
  request.query_id = 9;
  request.k = 5;
  Response response;
  response.status = Status::Ok();
  response.degraded = true;
  response.effective_k = 1;
  response.neighbors.push_back(Neighbor{4, 1.5, 3, true});
  response.latency = std::chrono::microseconds(250);
  const std::string ok = FormatResponse(request, response);
  EXPECT_EQ(ok,
            "OK op=knn id=9 k=5 effective_k=1 degraded=1 n=1 "
            "latency_us=250 results=4:1.5:3:1");

  response.status = Status::DeadlineExceeded("too slow");
  const std::string err = FormatResponse(request, response);
  EXPECT_EQ(err, "ERR DEADLINE_EXCEEDED op=knn id=9 msg=too slow");
}

TEST(ProtocolTest, AdminReloadLineParsesStrictly) {
  EXPECT_TRUE(IsAdminRequest("reload"));
  EXPECT_TRUE(IsAdminRequest("reload\r\n"));
  EXPECT_TRUE(IsAdminRequest("reload db.rman"));
  EXPECT_FALSE(IsAdminRequest("reloadx"));
  EXPECT_FALSE(IsAdminRequest(" reload"));
  EXPECT_FALSE(IsAdminRequest("RELOAD"));
  EXPECT_FALSE(IsAdminRequest("nn 1"));

  auto bare = ParseAdminRequest("reload\n");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(static_cast<int>(bare->op),
            static_cast<int>(AdminRequest::Op::kReload));
  EXPECT_TRUE(bare->path.empty());

  auto with_path = ParseAdminRequest("reload snapshots/db.rman\r\n");
  ASSERT_TRUE(with_path.ok());
  EXPECT_EQ(with_path->path, "snapshots/db.rman");

  // Same strictness as the query grammar: token count, control bytes,
  // and the line-length cap are all enforced.
  EXPECT_FALSE(ParseAdminRequest("reload a b").ok());
  std::string control_byte = "reload ";
  control_byte.push_back('\x01');
  control_byte += "bad";
  EXPECT_FALSE(ParseAdminRequest(control_byte).ok());
  EXPECT_FALSE(ParseAdminRequest("reload  two-spaces").ok());
  EXPECT_FALSE(ParseAdminRequest("reload " + std::string(5000, 'a')).ok());
}

/// Shared fixture: a small in-memory engine (the server contract needs a
/// backend, which the FlatDataset constructor provides).
class QueryServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::vector<Series> items =
        MakeProjectilePointsDatabase(60, 48, 515);
    flat_ = FlatDataset::FromItems(items);
    engine_ = std::make_unique<QueryEngine>(flat_, EngineOptions());
  }

  Request Nn(std::size_t id) {
    Request r;
    r.op = RequestOp::kNearest;
    r.query_id = id;
    return r;
  }

  Request Knn(std::size_t id, int k) {
    Request r;
    r.op = RequestOp::kKnn;
    r.query_id = id;
    r.k = k;
    return r;
  }

  FlatDataset flat_;
  std::unique_ptr<QueryEngine> engine_;
};

/// Submitting to a stopped server is the deterministic admission test:
/// the queue fills to exactly its capacity, then sheds typed.
TEST_F(QueryServerTest, AdmissionShedsExactlyAtCapacity) {
  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 4;
  QueryServer server(*engine_, options);

  std::atomic<int> callbacks{0};
  const auto done = [&](const Request&, const Response&) { ++callbacks; };
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(server.Submit(Nn(static_cast<std::size_t>(i)), done).ok());
  }
  EXPECT_EQ(server.queue_depth(), 4u);
  for (int i = 0; i < 3; ++i) {
    const Status s = server.Submit(Nn(0), done);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kOverloaded);
  }

  server.Start();
  EXPECT_TRUE(server.Shutdown());
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 7u);
  EXPECT_EQ(stats.admitted, 4u);
  EXPECT_EQ(stats.shed, 3u);
  EXPECT_EQ(stats.completed_ok, 4u);
  EXPECT_EQ(callbacks.load(), 4);
}

TEST_F(QueryServerTest, SubmitAfterBeginShutdownIsRejectedTyped) {
  QueryServer server(*engine_, ServerOptions());
  server.Start();
  server.BeginShutdown();
  const Status s = server.Submit(Nn(0), nullptr);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_TRUE(server.Shutdown());
  EXPECT_EQ(server.stats().rejected_draining, 1u);
}

/// Degradation honesty, deterministically: one worker dequeues a full
/// 8-deep queue whose depth decays 8,7,6,5,... — with the default 0.75
/// threshold exactly the first three k-NN requests are narrowed. Each
/// degraded response must carry the flag, report effective_k, and be
/// EXACT for that effective_k; the rest must be full exact answers.
TEST_F(QueryServerTest, DegradationNarrowsHonestlyUnderStandingLoad) {
  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 8;
  options.degraded_k = 1;
  QueryServer server(*engine_, options);

  std::mutex mutex;
  std::vector<std::pair<Request, Response>> outcomes;
  const auto done = [&](const Request& rq, const Response& rs) {
    std::lock_guard<std::mutex> lock(mutex);
    outcomes.emplace_back(rq, rs);
  };
  for (std::size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(server.Submit(Knn(i, 5), done).ok());
  }
  server.Start();
  ASSERT_TRUE(server.Shutdown());

  ASSERT_EQ(outcomes.size(), 8u);
  int degraded = 0;
  for (const auto& [rq, rs] : outcomes) {
    ASSERT_TRUE(rs.status.ok()) << rs.status.message();
    const Series query(flat_.data(rq.query_id),
                       flat_.data(rq.query_id) + flat_.length());
    const int want_k = rs.degraded ? 1 : 5;
    EXPECT_EQ(rs.effective_k, want_k);
    const std::vector<Neighbor> truth = engine_->Knn(query, want_k);
    ASSERT_EQ(rs.neighbors.size(), truth.size());
    for (std::size_t i = 0; i < truth.size(); ++i) {
      EXPECT_EQ(rs.neighbors[i].index, truth[i].index);
      EXPECT_EQ(rs.neighbors[i].distance, truth[i].distance);
    }
    if (rs.degraded) ++degraded;
  }
  EXPECT_EQ(degraded, 3) << "depths 8,7,6 are at or above 0.75 * 8";
  EXPECT_EQ(server.stats().degraded, 3u);
}

TEST_F(QueryServerTest, DegradationCanBeDisabled) {
  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 4;
  options.degrade_under_overload = false;
  QueryServer server(*engine_, options);
  std::atomic<int> degraded{0};
  const auto done = [&](const Request&, const Response& rs) {
    if (rs.degraded) ++degraded;
  };
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(server.Submit(Knn(i, 5), done).ok());
  }
  server.Start();
  ASSERT_TRUE(server.Shutdown());
  EXPECT_EQ(degraded.load(), 0);
}

/// Deadlines run from ADMISSION: a request that waits out its whole
/// budget in the queue fails typed without touching the engine.
TEST_F(QueryServerTest, QueueWaitCountsAgainstTheDeadline) {
  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 8;
  QueryServer server(*engine_, options);

  std::mutex mutex;
  std::vector<Response> responses;
  const auto done = [&](const Request&, const Response& rs) {
    std::lock_guard<std::mutex> lock(mutex);
    responses.push_back(rs);
  };
  Request rushed = Nn(1);
  rushed.deadline = std::chrono::nanoseconds(1);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(server.Submit(rushed, done).ok());
  server.Start();
  ASSERT_TRUE(server.Shutdown());

  ASSERT_EQ(responses.size(), 4u);
  for (const Response& rs : responses) {
    EXPECT_EQ(rs.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_TRUE(rs.neighbors.empty())
        << "an expired query must not carry a partial answer";
  }
  EXPECT_EQ(server.stats().deadline_exceeded, 4u);
}

TEST_F(QueryServerTest, OutOfRangeQueryIdFailsTyped) {
  QueryServer server(*engine_, ServerOptions());
  server.Start();
  std::atomic<int> out_of_range{0};
  const auto done = [&](const Request&, const Response& rs) {
    if (rs.status.code() == StatusCode::kOutOfRange) ++out_of_range;
  };
  ASSERT_TRUE(server.Submit(Nn(10'000), done).ok());
  ASSERT_TRUE(server.Shutdown());
  EXPECT_EQ(out_of_range.load(), 1);
  EXPECT_EQ(server.stats().failed, 1u);
}

/// The ASan/TSan drain target: 8 workers, continuous mixed submissions,
/// graceful shutdown. Every admitted request gets exactly one callback
/// and the terminal counters partition the admissions.
TEST_F(QueryServerTest, EightWorkerDrainIsLeakFreeAndAccountedExactly) {
  ServerOptions options;
  options.num_workers = 8;
  options.queue_capacity = 16;
  QueryServer server(*engine_, options);
  server.Start();

  std::atomic<std::uint64_t> callbacks{0};
  const auto done = [&](const Request&, const Response&) { ++callbacks; };
  Rng rng(99);
  std::uint64_t accepted = 0;
  for (int i = 0; i < 200; ++i) {
    Request request = rng.NextDouble() < 0.5
                          ? Nn(rng.NextBounded(flat_.size()))
                          : Knn(rng.NextBounded(flat_.size()), 3);
    if (server.Submit(request, done).ok()) ++accepted;
  }
  EXPECT_TRUE(server.Shutdown());

  const ServerStats stats = server.stats();
  EXPECT_EQ(callbacks.load(), stats.admitted);
  EXPECT_EQ(stats.admitted, accepted);
  EXPECT_EQ(stats.submitted, 200u);
  EXPECT_EQ(stats.submitted, stats.admitted + stats.shed);
  EXPECT_EQ(stats.admitted, stats.completed_ok + stats.deadline_exceeded +
                                stats.cancelled + stats.failed);
  EXPECT_EQ(stats.e2e_latency.count(), stats.admitted);
  EXPECT_TRUE(server.Shutdown()) << "Shutdown must be idempotent";
}

/// Drain deadline expiry flips the kill-switch: queued work unwinds with
/// kCancelled (typed, no partial answers), nothing deadlocks, and every
/// admitted request still gets its callback.
TEST_F(QueryServerTest, KillSwitchUnwindsStragglersTyped) {
  const std::vector<Series> big =
      MakeProjectilePointsDatabase(1500, 96, 717);
  const FlatDataset flat = FlatDataset::FromItems(big);
  const QueryEngine engine(flat, EngineOptions());

  ServerOptions options;
  options.num_workers = 2;
  options.queue_capacity = 64;
  options.drain_deadline = std::chrono::milliseconds(1);
  QueryServer server(engine, options);

  std::atomic<std::uint64_t> callbacks{0};
  std::atomic<std::uint64_t> cancelled{0};
  const auto done = [&](const Request&, const Response& rs) {
    ++callbacks;
    if (rs.status.code() == StatusCode::kCancelled) {
      ++cancelled;
    } else if (rs.status.ok()) {
      EXPECT_FALSE(rs.neighbors.empty());
    }
  };
  for (std::size_t i = 0; i < 64; ++i) {
    Request r;
    r.op = RequestOp::kNearest;
    r.query_id = i;
    ASSERT_TRUE(server.Submit(r, done).ok());
  }
  server.Start();
  // 64 queued queries over a 1500-object database cannot finish within
  // the 1 ms drain budget; the kill-switch must fire.
  EXPECT_FALSE(server.Shutdown());
  const ServerStats stats = server.stats();
  EXPECT_EQ(callbacks.load(), stats.admitted);
  EXPECT_GT(cancelled.load(), 0u);
  EXPECT_EQ(stats.cancelled, cancelled.load());
}

/// The atomic-swap contract under load: with queries streaming through a
/// 4-worker pool, SwapEngine flips to a new generation mid-stream and
/// EVERY successful answer is bit-exact for exactly one of the two
/// generations — no torn reads, no query spanning both engines. The old
/// generation's engine stays pinned by in-flight queries until their
/// callbacks fire, then the swap barrier releases the queue onto the new
/// one.
TEST_F(QueryServerTest, ReloadSwapsAtomicallyUnderLoad) {
  // Generation 2 is a "compacted" view: the first 30 rows of the same
  // database. Self-queries answer distance 0 under both generations, so
  // the discriminator is the SECOND-nearest neighbour's distance, which
  // changes whenever a query's runner-up lived in rows 30..59.
  const std::vector<Series> all = MakeProjectilePointsDatabase(60, 48, 515);
  const std::vector<Series> subset(all.begin(), all.begin() + 30);
  const FlatDataset flat2 = FlatDataset::FromItems(subset);
  auto eng1 = std::make_shared<const QueryEngine>(flat_, EngineOptions());
  auto eng2 = std::make_shared<const QueryEngine>(flat2, EngineOptions());

  std::vector<double> second_nn_gen1(30), second_nn_gen2(30);
  for (std::size_t q = 0; q < 30; ++q) {
    second_nn_gen1[q] = eng1->Knn(all[q], 2)[1].distance;
    second_nn_gen2[q] = eng2->Knn(all[q], 2)[1].distance;
  }

  ServerOptions options;
  options.num_workers = 4;
  options.queue_capacity = 32;
  // Degradation would narrow k under queue pressure; this test needs the
  // full k=2 answer to read the runner-up discriminator.
  options.degrade_under_overload = false;
  QueryServer server(eng1, options, 1);
  EXPECT_EQ(server.generation(), 1u);
  server.Start();

  std::atomic<std::uint64_t> callbacks{0};
  std::atomic<std::uint64_t> ok_answers{0};
  std::atomic<int> torn{0};
  const auto done = [&](const Request& rq, const Response& rs) {
    ++callbacks;
    if (!rs.status.ok()) return;
    ++ok_answers;
    ASSERT_EQ(rs.neighbors.size(), 2u);
    const double d = rs.neighbors[1].distance;
    const std::size_t q = rq.query_id;
    if (d != second_nn_gen1[q] && d != second_nn_gen2[q]) ++torn;
  };

  std::uint64_t accepted = 0;
  for (int i = 0; i < 300; ++i) {
    if (i == 150) {
      ASSERT_TRUE(server.SwapEngine(eng2, 2).ok());
      EXPECT_EQ(server.generation(), 2u);
    }
    if (server.Submit(Knn(static_cast<std::size_t>(i) % 30, 2), done).ok()) {
      ++accepted;
    }
  }
  EXPECT_TRUE(server.Shutdown());

  const ServerStats stats = server.stats();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(callbacks.load(), stats.admitted);
  EXPECT_EQ(stats.admitted, accepted);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_GT(ok_answers.load(), 0u);
  EXPECT_EQ(server.generation(), 2u);
}

/// Reload guard rails: generation rollback is refused typed (a stale
/// manifest must never replace a newer live one), a null engine is
/// refused, and a reload against a shut-down server is kCancelled.
TEST_F(QueryServerTest, ReloadRefusesRollbackNullAndShutdown) {
  auto next = std::make_shared<const QueryEngine>(flat_, EngineOptions());
  ServerOptions options;
  options.num_workers = 1;
  QueryServer server(
      std::make_shared<const QueryEngine>(flat_, EngineOptions()), options, 5);
  server.Start();

  EXPECT_EQ(server.SwapEngine(next, 5).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server.SwapEngine(next, 4).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server.SwapEngine(nullptr, 9).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(server.generation(), 5u);
  EXPECT_EQ(server.stats().reloads, 0u);

  ASSERT_TRUE(server.SwapEngine(next, 6).ok());
  EXPECT_EQ(server.generation(), 6u);
  EXPECT_EQ(server.stats().reloads, 1u);

  EXPECT_TRUE(server.Shutdown());
  EXPECT_EQ(server.SwapEngine(next, 7).code(), StatusCode::kCancelled);
  EXPECT_EQ(server.generation(), 6u);
}

TEST_F(QueryServerTest, ShutdownBeforeStartCancelsOrphansWithCallbacks) {
  ServerOptions options;
  options.queue_capacity = 4;
  QueryServer server(*engine_, options);
  std::atomic<int> cancelled{0};
  const auto done = [&](const Request&, const Response& rs) {
    if (rs.status.code() == StatusCode::kCancelled) ++cancelled;
  };
  ASSERT_TRUE(server.Submit(Nn(0), done).ok());
  ASSERT_TRUE(server.Submit(Nn(1), done).ok());
  EXPECT_TRUE(server.Shutdown());
  EXPECT_EQ(cancelled.load(), 2);
}

}  // namespace
}  // namespace rotind::serve
