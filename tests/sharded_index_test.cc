/// ShardedIndex: manifest-driven shard sets with online updates. Covers
/// open-time cross-checks, global-id routing across uneven shards, the
/// delta segment (inserts + tombstones) visible to queries without a
/// rebuild, compaction publishing a new generation (including crash
/// injection at the swap point — the previous generation must survive),
/// the background compactor, and concurrent queries during mutation.

#include "src/index/sharded_index.h"

#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "src/core/series.h"
#include "src/core/status.h"
#include "src/index/delta.h"
#include "src/index/index_io.h"
#include "src/storage/manifest.h"

namespace rotind {
namespace {

/// Each test gets its own directory so shard files never collide.
class ShardedIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/rotind_sharded_test." + std::to_string(::getpid()) + "." +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::string cmd = "rm -rf " + dir_ + " && mkdir -p " + dir_;
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }
  void TearDown() override {
    std::string cmd = "rm -rf " + dir_;
    (void)std::system(cmd.c_str());
  }

  std::string dir_;
};

Series MakeRow(std::size_t id, std::size_t length) {
  Series s(length);
  for (std::size_t j = 0; j < length; ++j) {
    s[j] = 0.5 * static_cast<double>(id) +
           1.25 * static_cast<double>((id + j) % 5) - 2.0;
  }
  return s;
}

Dataset MakeRows(std::size_t begin, std::size_t end, std::size_t length) {
  Dataset ds;
  for (std::size_t i = begin; i < end; ++i) {
    ds.items.push_back(MakeRow(i, length));
    ds.labels.push_back(static_cast<int>(i % 3));
  }
  return ds;
}

IndexBuildOptions SmallBuild() {
  IndexBuildOptions build;
  build.sig_dims = 4;
  build.paa_dims = 4;
  build.page_size_bytes = 512;
  return build;
}

/// Builds `counts` contiguous shards over rows [0, sum(counts)) plus a
/// generation-1 manifest, and returns the manifest path.
std::string BuildShardSet(const std::string& dir,
                          const std::vector<std::size_t>& counts,
                          std::size_t length) {
  storage::Manifest manifest;
  manifest.generation = 1;
  std::size_t row = 0;
  for (std::size_t s = 0; s < counts.size(); ++s) {
    const std::string file = "shard-" + std::to_string(s) + ".ridx";
    const Dataset part = MakeRows(row, row + counts[s], length);
    EXPECT_TRUE(BuildIndexFile(part, SmallBuild(), dir + "/" + file).ok());
    manifest.shards.push_back(storage::ManifestShard{
        file, static_cast<std::uint64_t>(counts[s]),
        static_cast<std::uint64_t>(length)});
    row += counts[s];
  }
  const std::string path = dir + "/db.rman";
  EXPECT_TRUE(storage::WriteManifest(manifest, path).ok());
  return path;
}

TEST_F(ShardedIndexTest, OpensUnevenShardSetAndRoutesGlobalIds) {
  const std::string path = BuildShardSet(dir_, {5, 2, 4}, 16);
  StatusOr<std::unique_ptr<ShardedIndex>> opened = ShardedIndex::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ShardedIndex& index = **opened;
  EXPECT_EQ(index.generation(), 1u);
  EXPECT_EQ(index.shard_count(), 3u);
  EXPECT_EQ(index.shard_total(), 11u);
  EXPECT_EQ(index.live_size(), 11u);
  EXPECT_EQ(index.length(), 16u);

  // Self-queries: row g's nearest neighbor is row g at distance 0, across
  // every shard boundary (global ids 0..4 | 5..6 | 7..10).
  for (std::size_t g : {0u, 4u, 5u, 6u, 7u, 10u}) {
    StatusOr<ScanResult> hit = index.Search(MakeRow(g, 16));
    ASSERT_TRUE(hit.ok()) << hit.status().ToString();
    EXPECT_EQ(hit->best_index, static_cast<int>(g)) << "global id " << g;
    EXPECT_NEAR(hit->best_distance, 0.0, 1e-12);
  }
}

TEST_F(ShardedIndexTest, OpenRejectsShardManifestMismatch) {
  const std::string path = BuildShardSet(dir_, {3, 3}, 16);
  // Lie about shard 1's count: the opened RIDX holds 3, the manifest says
  // 4 — a swapped-out shard file is a corruption, not a surprise.
  StatusOr<storage::Manifest> manifest = storage::LoadManifest(path);
  ASSERT_TRUE(manifest.ok());
  manifest->shards[1].count = 4;
  ASSERT_TRUE(storage::WriteManifest(*manifest, path).ok());
  StatusOr<std::unique_ptr<ShardedIndex>> opened = ShardedIndex::Open(path);
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruptHeader);
}

TEST_F(ShardedIndexTest, OpenRejectsMissingShardFile) {
  const std::string path = BuildShardSet(dir_, {3, 3}, 16);
  ASSERT_EQ(std::remove((dir_ + "/shard-1.ridx").c_str()), 0);
  EXPECT_FALSE(ShardedIndex::Open(path).ok());
}

TEST_F(ShardedIndexTest, DeltaInsertsAreQueryableWithoutRebuild) {
  const std::string path = BuildShardSet(dir_, {4, 4}, 16);
  StatusOr<std::unique_ptr<ShardedIndex>> opened = ShardedIndex::Open(path);
  ASSERT_TRUE(opened.ok());
  ShardedIndex& index = **opened;

  const Series fresh = MakeRow(100, 16);
  StatusOr<std::uint64_t> id = index.Insert(fresh, 1);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(*id, 8u);  // shard_total + delta ordinal 0
  EXPECT_EQ(index.live_size(), 9u);

  StatusOr<ScanResult> hit = index.Search(fresh);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->best_index, 8);
  EXPECT_NEAR(hit->best_distance, 0.0, 1e-12);

  // Insert validation: wrong length and non-finite values are typed.
  EXPECT_EQ(index.Insert(Series(7, 0.0)).status().code(),
            StatusCode::kInvalidArgument);
  Series poisoned = MakeRow(5, 16);
  poisoned[3] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(index.Insert(poisoned).status().code(), StatusCode::kBadValue);
}

TEST_F(ShardedIndexTest, TombstonesHideShardAndDeltaRows) {
  const std::string path = BuildShardSet(dir_, {4, 4}, 16);
  StatusOr<std::unique_ptr<ShardedIndex>> opened = ShardedIndex::Open(path);
  ASSERT_TRUE(opened.ok());
  ShardedIndex& index = **opened;

  // Hide shard row 2: its self-query must now find someone else.
  ASSERT_TRUE(index.Remove(2).ok());
  EXPECT_EQ(index.live_size(), 7u);
  StatusOr<ScanResult> hit = index.Search(MakeRow(2, 16));
  ASSERT_TRUE(hit.ok());
  EXPECT_NE(hit->best_index, 2);

  // Hide a delta row the same way.
  StatusOr<std::uint64_t> id = index.Insert(MakeRow(200, 16));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(index.Remove(*id).ok());
  EXPECT_EQ(index.live_size(), 7u);
  StatusOr<ScanResult> gone = index.Search(MakeRow(200, 16));
  ASSERT_TRUE(gone.ok());
  EXPECT_NE(gone->best_index, static_cast<int>(*id));

  // Out-of-range delta id is typed; shard tombstoning is idempotent.
  EXPECT_EQ(index.Remove(1000).code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(index.Remove(2).ok());
  EXPECT_EQ(index.live_size(), 7u);
}

TEST_F(ShardedIndexTest, CompactionFoldsDeltaAndRenumbers) {
  const std::string path = BuildShardSet(dir_, {4, 4}, 16);
  StatusOr<std::unique_ptr<ShardedIndex>> opened = ShardedIndex::Open(path);
  ASSERT_TRUE(opened.ok());
  ShardedIndex& index = **opened;

  ASSERT_TRUE(index.Insert(MakeRow(300, 16), 2).ok());
  ASSERT_TRUE(index.Remove(1).ok());

  StatusOr<std::uint64_t> generation = index.Compact(SmallBuild());
  ASSERT_TRUE(generation.ok()) << generation.status().ToString();
  EXPECT_EQ(*generation, 2u);
  EXPECT_EQ(index.generation(), 2u);
  EXPECT_EQ(index.shard_count(), 3u);  // old two + the delta shard
  EXPECT_EQ(index.shard_total(), 9u);  // 8 + 1 insert; tombstone retained
  EXPECT_EQ(index.live_size(), 8u);

  // The compacted delta row lives in the new shard (global id 8); the
  // delta segment itself is drained.
  StatusOr<ScanResult> hit = index.Search(MakeRow(300, 16));
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->best_index, 8);
  EXPECT_NEAR(hit->best_distance, 0.0, 1e-12);

  // The tombstoned row stays hidden across the generation bump.
  StatusOr<ScanResult> hidden = index.Search(MakeRow(1, 16));
  ASSERT_TRUE(hidden.ok());
  EXPECT_NE(hidden->best_index, 1);

  // A reader opening the published manifest fresh sees the same world.
  StatusOr<std::unique_ptr<ShardedIndex>> reopened =
      ShardedIndex::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->generation(), 2u);
  EXPECT_EQ((*reopened)->live_size(), 8u);
  StatusOr<ScanResult> rehit = (*reopened)->Search(MakeRow(300, 16));
  ASSERT_TRUE(rehit.ok());
  EXPECT_EQ(rehit->best_index, 8);
}

TEST_F(ShardedIndexTest, EmptyDeltaCompactionPublishesTrivialGeneration) {
  const std::string path = BuildShardSet(dir_, {4}, 16);
  StatusOr<std::unique_ptr<ShardedIndex>> opened = ShardedIndex::Open(path);
  ASSERT_TRUE(opened.ok());
  StatusOr<std::uint64_t> generation = (*opened)->Compact(SmallBuild());
  ASSERT_TRUE(generation.ok());
  EXPECT_EQ(*generation, 2u);
  EXPECT_EQ((*opened)->shard_count(), 1u);
  EXPECT_EQ((*opened)->live_size(), 4u);
}

/// Crash injection at the manifest swap point: the previous generation
/// must remain intact on disk AND the in-memory index must keep serving
/// it — including the staged delta, which must NOT be dropped.
TEST_F(ShardedIndexTest, CompactionCrashLeavesPreviousGenerationServing) {
  const std::string path = BuildShardSet(dir_, {4, 4}, 16);
  StatusOr<std::unique_ptr<ShardedIndex>> opened = ShardedIndex::Open(path);
  ASSERT_TRUE(opened.ok());
  ShardedIndex& index = **opened;
  ASSERT_TRUE(index.Insert(MakeRow(400, 16)).ok());

  for (const auto fault : {storage::ManifestWriteFault::kTornTempWrite,
                           storage::ManifestWriteFault::kCrashBeforeRename}) {
    StatusOr<std::uint64_t> crashed = index.Compact(SmallBuild(), fault);
    EXPECT_EQ(crashed.status().code(), StatusCode::kIoError);
    EXPECT_EQ(index.generation(), 1u);
    EXPECT_EQ(index.live_size(), 9u);  // delta row still staged
    StatusOr<ScanResult> hit = index.Search(MakeRow(400, 16));
    ASSERT_TRUE(hit.ok());
    EXPECT_EQ(hit->best_index, 8);
    StatusOr<storage::Manifest> on_disk = storage::LoadManifest(path);
    ASSERT_TRUE(on_disk.ok());
    EXPECT_EQ(on_disk->generation, 1u);
  }

  // Recovery: the same compaction without the fault publishes cleanly.
  StatusOr<std::uint64_t> recovered = index.Compact(SmallBuild());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(index.generation(), 2u);
  EXPECT_EQ(index.live_size(), 9u);
}

/// DropCompacted must carry a post-snapshot delete of a compacted row
/// into the new generation: the row went into the new shard as LIVE, so
/// the delete becomes a shard tombstone of its new global id
/// (new_shard_base + the row's live position in the snapshot).
TEST(DeltaSegmentTest, DropCompactedTranslatesPostSnapshotTombstones) {
  DeltaSegment delta(4);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(delta.Insert(Series(4, static_cast<double>(i))).ok());
  }
  ASSERT_TRUE(delta.TombstoneDeltaRow(1).ok());  // dead IN the snapshot
  std::shared_ptr<const DeltaSnapshot> snap = delta.Snapshot();
  ASSERT_EQ(snap->live_count(), 2u);  // ordinals {0, 2}

  // Race the compaction: after the snapshot is captured, delete the row
  // at live position 1 (ordinal 2) and insert a fresh one.
  ASSERT_TRUE(delta.TombstoneDeltaRow(2).ok());
  ASSERT_TRUE(delta.Insert(Series(4, 9.0)).ok());

  delta.DropCompacted(*snap, /*new_shard_base=*/100);
  std::shared_ptr<const DeltaSnapshot> after = delta.Snapshot();
  // The post-snapshot delete followed its row into the new shard...
  EXPECT_EQ(after->shard_tombstones, (std::vector<std::uint64_t>{101}));
  // ...and the post-snapshot insert survives at shifted ordinal 0.
  ASSERT_EQ(after->live_count(), 1u);
  EXPECT_EQ(after->ordinals[0], 0u);
}

/// A delete acknowledged while a compaction sits between its delta
/// snapshot and the generation swap must survive the compaction — the
/// lost-delete window: the row was carried into the new shard as live,
/// so resurrecting it would break the Remove() contract.
TEST_F(ShardedIndexTest, DeleteDuringCompactionIsNotResurrected) {
  const std::string path = BuildShardSet(dir_, {4}, 16);
  StatusOr<std::unique_ptr<ShardedIndex>> opened = ShardedIndex::Open(path);
  ASSERT_TRUE(opened.ok());
  ShardedIndex& index = **opened;
  ASSERT_TRUE(index.Insert(MakeRow(800, 16)).ok());
  StatusOr<std::uint64_t> doomed = index.Insert(MakeRow(801, 16));
  ASSERT_TRUE(doomed.ok());

  index.set_pause_after_snapshot_for_tests(
      [&] { ASSERT_TRUE(index.Remove(*doomed).ok()); });
  StatusOr<std::uint64_t> generation = index.Compact(SmallBuild());
  ASSERT_TRUE(generation.ok()) << generation.status().ToString();
  index.set_pause_after_snapshot_for_tests({});

  // 4 shard rows + the kept insert; row 801 sits in the new shard at
  // global id 5 but stays hidden behind its translated tombstone.
  EXPECT_EQ(index.live_size(), 5u);
  StatusOr<ScanResult> hit = index.Search(MakeRow(801, 16));
  ASSERT_TRUE(hit.ok());
  EXPECT_NE(hit->best_index, 5);

  // The next compaction absorbs the translated tombstone into the
  // manifest; a fresh reader of the published generation agrees.
  ASSERT_TRUE(index.Compact(SmallBuild()).ok());
  EXPECT_EQ(index.live_size(), 5u);
  StatusOr<std::unique_ptr<ShardedIndex>> reopened =
      ShardedIndex::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->live_size(), 5u);
  StatusOr<ScanResult> rehit = (*reopened)->Search(MakeRow(801, 16));
  ASSERT_TRUE(rehit.ok());
  EXPECT_NE(rehit->best_index, 5);
}

TEST_F(ShardedIndexTest, BackgroundCompactorCoalescesTriggers) {
  const std::string path = BuildShardSet(dir_, {4}, 16);
  StatusOr<std::unique_ptr<ShardedIndex>> opened = ShardedIndex::Open(path);
  ASSERT_TRUE(opened.ok());
  ShardedIndex& index = **opened;
  {
    BackgroundCompactor compactor(index, SmallBuild());
    ASSERT_TRUE(index.Insert(MakeRow(500, 16)).ok());
    compactor.Trigger();
    compactor.WaitIdle();
    EXPECT_TRUE(compactor.last_status().ok())
        << compactor.last_status().ToString();
    EXPECT_GE(compactor.passes(), 1u);
  }
  EXPECT_GE(index.generation(), 2u);
  StatusOr<ScanResult> hit = index.Search(MakeRow(500, 16));
  ASSERT_TRUE(hit.ok());
  EXPECT_NEAR(hit->best_distance, 0.0, 1e-12);
}

/// Queries keep answering (on their snapshot) while inserts and a
/// background compaction churn the index. Thread-sanitizer builds make
/// this a data-race probe; everywhere it is a correctness soak.
TEST_F(ShardedIndexTest, ConcurrentQueriesSurviveMutationAndCompaction) {
  const std::string path = BuildShardSet(dir_, {6, 5}, 16);
  StatusOr<std::unique_ptr<ShardedIndex>> opened = ShardedIndex::Open(path);
  ASSERT_TRUE(opened.ok());
  ShardedIndex& index = **opened;

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread reader([&] {
    while (!stop.load()) {
      StatusOr<ScanResult> hit = index.Search(MakeRow(3, 16));
      if (!hit.ok() || hit->best_index < 0) failures.fetch_add(1);
      StatusOr<std::vector<Neighbor>> knn = index.Knn(MakeRow(7, 16), 3);
      if (!knn.ok() || knn->size() != 3) failures.fetch_add(1);
      // Duplicate-visibility probe: a snapshot that ever saw compacted
      // rows both in the new shard and in the un-retired delta would
      // inflate the live count past 11 initial + 20 inserted rows.
      const std::size_t live = index.live_size();
      if (live < 11 || live > 31) failures.fetch_add(1);
    }
  });
  {
    BackgroundCompactor compactor(index, SmallBuild());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(index.Insert(MakeRow(600 + i, 16)).ok());
      if (i % 5 == 4) compactor.Trigger();
    }
    compactor.WaitIdle();
    EXPECT_TRUE(compactor.last_status().ok());
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(index.live_size(), 31u);
}

TEST_F(ShardedIndexTest, SnapshotEngineOutlivesCompaction) {
  const std::string path = BuildShardSet(dir_, {4, 3}, 16);
  StatusOr<std::unique_ptr<ShardedIndex>> opened = ShardedIndex::Open(path);
  ASSERT_TRUE(opened.ok());
  ShardedIndex& index = **opened;

  std::shared_ptr<const QueryEngine> engine = index.SnapshotEngine();
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->database_size(), 7u);

  ASSERT_TRUE(index.Insert(MakeRow(700, 16)).ok());
  ASSERT_TRUE(index.Compact(SmallBuild()).ok());

  // The pinned engine still answers over the OLD world (7 rows), even
  // though the index has moved on — exactly the reload-drain guarantee
  // the serve layer builds on.
  EXPECT_EQ(engine->database_size(), 7u);
  StatusOr<ScanResult> hit = engine->SearchChecked(MakeRow(2, 16));
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  EXPECT_EQ(hit->best_index, 2);

  std::shared_ptr<const QueryEngine> fresh = index.SnapshotEngine();
  EXPECT_EQ(fresh->database_size(), 8u);
}

}  // namespace
}  // namespace rotind
