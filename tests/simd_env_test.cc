/// Strict ROTIND_SIMD validation: the override either names a real tier
/// or is a typed kInvalidArgument that names the accepted values — never
/// a silent fallback that would run different kernels than the operator
/// asked for. The CLI maps the failure to exit code 2 (asserted by a CI
/// step: `ROTIND_SIMD=bogus rotind version`); these tests pin the parsing
/// and validation underneath, which EXPECT_DEATH on the memoized
/// ActiveTier() could not do reliably.

#include "src/simd/simd.h"

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "src/core/status.h"

namespace rotind::simd {
namespace {

/// Saves ROTIND_SIMD on construction and restores it on destruction, so
/// tests can mutate the process environment without leaking state into
/// whatever gtest runs next.
class ScopedSimdEnv {
 public:
  ScopedSimdEnv() {
    if (const char* prior = std::getenv("ROTIND_SIMD")) {
      had_prior_ = true;
      prior_ = prior;
    }
  }
  ScopedSimdEnv(const ScopedSimdEnv&) = delete;
  ScopedSimdEnv& operator=(const ScopedSimdEnv&) = delete;
  ~ScopedSimdEnv() {
    if (had_prior_) {
      ::setenv("ROTIND_SIMD", prior_.c_str(), /*overwrite=*/1);
    } else {
      ::unsetenv("ROTIND_SIMD");
    }
  }

 private:
  bool had_prior_ = false;
  std::string prior_;
};

TEST(TierFromNameTest, AcceptsTheTwoTierNames) {
  const StatusOr<Tier> scalar = TierFromName("scalar");
  ASSERT_TRUE(scalar.ok());
  EXPECT_EQ(*scalar, Tier::kScalar);
  const StatusOr<Tier> avx2 = TierFromName("avx2");
  ASSERT_TRUE(avx2.ok());
  EXPECT_EQ(*avx2, Tier::kAvx2);
}

TEST(TierFromNameTest, RejectsUnknownValuesWithATypedError) {
  for (const char* bad : {"bogus", "", "Scalar", "AVX2", "avx", "sse2"}) {
    const StatusOr<Tier> tier = TierFromName(bad);
    ASSERT_FALSE(tier.ok()) << "accepted \"" << bad << "\"";
    EXPECT_EQ(tier.status().code(), StatusCode::kInvalidArgument);
    // The message must carry the offending value and the accepted ones:
    // it is what the operator sees on stderr next to exit code 2.
    EXPECT_NE(tier.status().message().find(bad), std::string::npos);
    EXPECT_NE(tier.status().message().find("scalar"), std::string::npos);
    EXPECT_NE(tier.status().message().find("avx2"), std::string::npos);
  }
}

TEST(TierFromNameTest, RejectsNullWithoutCrashing) {
  const StatusOr<Tier> tier = TierFromName(nullptr);
  ASSERT_FALSE(tier.ok());
  EXPECT_EQ(tier.status().code(), StatusCode::kInvalidArgument);
}

TEST(ValidateEnvOverrideTest, UnsetEnvironmentIsOk) {
  const ScopedSimdEnv restore;
  ::unsetenv("ROTIND_SIMD");
  EXPECT_TRUE(ValidateEnvOverride().ok());
}

TEST(ValidateEnvOverrideTest, KnownTierNamesAreOk) {
  const ScopedSimdEnv restore;
  for (const char* good : {"scalar", "avx2"}) {
    ASSERT_EQ(::setenv("ROTIND_SIMD", good, /*overwrite=*/1), 0);
    EXPECT_TRUE(ValidateEnvOverride().ok()) << good;
  }
}

TEST(ValidateEnvOverrideTest, UnknownValueSurfacesTheParseError) {
  const ScopedSimdEnv restore;
  ASSERT_EQ(::setenv("ROTIND_SIMD", "turbo9000", /*overwrite=*/1), 0);
  const Status s = ValidateEnvOverride();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("turbo9000"), std::string::npos);
}

}  // namespace
}  // namespace rotind::simd
