#include "src/distance/lcss.h"

#include <gtest/gtest.h>

#include "src/core/random.h"

namespace rotind {
namespace {

Series RandomSeries(Rng* rng, std::size_t n) {
  Series s(n);
  for (double& v : s) v = rng->Gaussian(0.0, 1.0);
  return s;
}

TEST(LcssTest, IdenticalSeriesMatchFully) {
  const Series s = {1.0, 2.0, 3.0, 4.0};
  LcssOptions opts;
  opts.epsilon = 0.1;
  EXPECT_EQ(LcssLength(s.data(), s.data(), s.size(), opts), 4u);
  EXPECT_DOUBLE_EQ(LcssSimilarity(s, s, opts), 1.0);
  EXPECT_DOUBLE_EQ(LcssDistance(s, s, opts), 0.0);
}

TEST(LcssTest, CompletelyDifferentSeriesMatchNothing) {
  const Series a = {0.0, 0.0, 0.0};
  const Series b = {100.0, 100.0, 100.0};
  LcssOptions opts;
  opts.epsilon = 0.5;
  EXPECT_EQ(LcssLength(a.data(), b.data(), 3, opts), 0u);
  EXPECT_DOUBLE_EQ(LcssDistance(a, b, opts), 1.0);
}

TEST(LcssTest, LargeEpsilonMatchesEverything) {
  Rng rng(1);
  const Series a = RandomSeries(&rng, 20);
  const Series b = RandomSeries(&rng, 20);
  LcssOptions opts;
  opts.epsilon = 1e9;
  EXPECT_EQ(LcssLength(a.data(), b.data(), 20, opts), 20u);
}

TEST(LcssTest, ClassicSubsequence) {
  // q matches c at values 1, 3 (|diff| <= 0.1) in order.
  const Series q = {1.0, 2.0, 3.0};
  const Series c = {1.0, 3.0, 9.0};
  LcssOptions opts;
  opts.epsilon = 0.1;
  EXPECT_EQ(LcssLength(q.data(), c.data(), 3, opts), 2u);
}

TEST(LcssTest, DeltaWindowRestrictsMatching) {
  // The matching values sit 3 positions apart; delta=1 forbids the match.
  const Series q = {5.0, 0.0, 0.0, 0.0};
  const Series c = {9.0, 9.0, 9.0, 5.0};
  LcssOptions tight;
  tight.epsilon = 0.1;
  tight.delta = 1;
  EXPECT_EQ(LcssLength(q.data(), c.data(), 4, tight), 0u);
  LcssOptions loose = tight;
  loose.delta = 3;
  EXPECT_EQ(LcssLength(q.data(), c.data(), 4, loose), 1u);
}

TEST(LcssTest, RobustToOcclusion) {
  // LCSS's raison d'etre (paper Figure 14): deleting a chunk of the series
  // (a missing nose / broken tang) only costs the chunk itself.
  Rng rng(2);
  Series base = RandomSeries(&rng, 50);
  Series occluded = base;
  for (std::size_t i = 20; i < 30; ++i) occluded[i] = 50.0;  // "missing" part
  LcssOptions opts;
  opts.epsilon = 0.2;
  const std::size_t len =
      LcssLength(base.data(), occluded.data(), 50, opts);
  EXPECT_GE(len, 40u);
  EXPECT_LE(len, 50u);
}

TEST(LcssTest, MonotoneInEpsilon) {
  Rng rng(3);
  const Series a = RandomSeries(&rng, 40);
  const Series b = RandomSeries(&rng, 40);
  std::size_t prev = 0;
  for (double eps : {0.01, 0.1, 0.5, 1.0, 3.0}) {
    LcssOptions opts;
    opts.epsilon = eps;
    const std::size_t len = LcssLength(a.data(), b.data(), 40, opts);
    EXPECT_GE(len, prev);
    prev = len;
  }
}

TEST(LcssTest, MonotoneInDelta) {
  Rng rng(4);
  const Series a = RandomSeries(&rng, 40);
  const Series b = RandomSeries(&rng, 40);
  std::size_t prev = 0;
  for (int delta : {0, 1, 2, 5, 10, 39}) {
    LcssOptions opts;
    opts.epsilon = 0.5;
    opts.delta = delta;
    const std::size_t len = LcssLength(a.data(), b.data(), 40, opts);
    EXPECT_GE(len, prev) << "delta=" << delta;
    prev = len;
  }
}

TEST(LcssTest, SymmetricForEqualLengths) {
  Rng rng(5);
  const Series a = RandomSeries(&rng, 30);
  const Series b = RandomSeries(&rng, 30);
  LcssOptions opts;
  opts.epsilon = 0.4;
  opts.delta = 5;
  EXPECT_EQ(LcssLength(a.data(), b.data(), 30, opts),
            LcssLength(b.data(), a.data(), 30, opts));
}

TEST(LcssTest, DistanceInUnitInterval) {
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    const Series a = RandomSeries(&rng, 25);
    const Series b = RandomSeries(&rng, 25);
    LcssOptions opts;
    opts.epsilon = rng.Uniform(0.05, 1.0);
    const double d = LcssDistance(a, b, opts);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST(LcssTest, CounterCountsCells) {
  const Series a = {1.0, 2.0, 3.0};
  const Series b = {1.0, 2.0, 3.0};
  LcssOptions opts;
  opts.epsilon = 0.1;
  StepCounter counter;
  LcssLength(a.data(), b.data(), 3, opts, &counter);
  EXPECT_EQ(counter.steps, 9u);  // unconstrained: full 3x3 DP
  counter.Reset();
  opts.delta = 1;
  LcssLength(a.data(), b.data(), 3, opts, &counter);
  EXPECT_EQ(counter.steps, 7u);  // banded
}

}  // namespace
}  // namespace rotind
