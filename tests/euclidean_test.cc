#include "src/distance/euclidean.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/random.h"

namespace rotind {
namespace {

Series RandomSeries(Rng* rng, std::size_t n) {
  Series s(n);
  for (double& v : s) v = rng->Gaussian(0.0, 1.0);
  return s;
}

TEST(EuclideanTest, KnownDistance) {
  const Series a = {0.0, 0.0, 0.0};
  const Series b = {1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 3.0);
}

TEST(EuclideanTest, IdenticalSeriesZero) {
  const Series a = {1.5, -2.0, 3.25};
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, a), 0.0);
}

TEST(EuclideanTest, SquaredMatchesDistance) {
  Rng rng(1);
  const Series a = RandomSeries(&rng, 50);
  const Series b = RandomSeries(&rng, 50);
  const double d = EuclideanDistance(a, b);
  const double sq = SquaredEuclidean(a.data(), b.data(), a.size());
  EXPECT_NEAR(d * d, sq, 1e-9);
}

TEST(EuclideanTest, CounterChargesOneStepPerPoint) {
  StepCounter counter;
  const Series a = {1.0, 2.0, 3.0, 4.0};
  const Series b = {0.0, 0.0, 0.0, 0.0};
  EuclideanDistance(a, b, &counter);
  EXPECT_EQ(counter.steps, 4u);
}

TEST(EarlyAbandonEuclideanTest, NoAbandonWithInfiniteLimit) {
  Rng rng(2);
  const Series a = RandomSeries(&rng, 64);
  const Series b = RandomSeries(&rng, 64);
  const double full = EuclideanDistance(a, b);
  const double ea = EarlyAbandonEuclidean(
      a.data(), b.data(), a.size(), std::numeric_limits<double>::infinity());
  EXPECT_NEAR(ea, full, 1e-12);
}

TEST(EarlyAbandonEuclideanTest, AbandonsWhenLimitExceeded) {
  const Series a = {10.0, 0.0, 0.0};
  const Series b = {0.0, 0.0, 0.0};
  StepCounter counter;
  const double d = EarlyAbandonEuclidean(a.data(), b.data(), 3, 1.0, &counter);
  EXPECT_TRUE(std::isinf(d));
  EXPECT_EQ(counter.steps, 1u);  // abandoned after the first point
  EXPECT_EQ(counter.early_abandons, 1u);
}

TEST(EarlyAbandonEuclideanTest, ExactWhenBelowLimit) {
  const Series a = {1.0, 1.0};
  const Series b = {0.0, 0.0};
  const double d = EarlyAbandonEuclidean(a.data(), b.data(), 2, 10.0);
  EXPECT_NEAR(d, std::sqrt(2.0), 1e-12);
}

TEST(EarlyAbandonEuclideanTest, LimitEqualToDistanceDoesNotAbandon) {
  // Abandonment is strict (> limit^2), so distance == limit is returned.
  const Series a = {3.0, 4.0};
  const Series b = {0.0, 0.0};
  const double d = EarlyAbandonEuclidean(a.data(), b.data(), 2, 5.0);
  EXPECT_NEAR(d, 5.0, 1e-12);
}

class EarlyAbandonPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EarlyAbandonPropertyTest, AgreesWithFullComputationOrAbandonsCorrectly) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 8 + rng.NextBounded(120);
    const Series a = RandomSeries(&rng, n);
    const Series b = RandomSeries(&rng, n);
    const double full = EuclideanDistance(a, b);
    const double limit = rng.Uniform(0.0, 2.0 * full + 0.1);
    const double ea =
        EarlyAbandonEuclidean(a.data(), b.data(), n, limit);
    if (full > limit) {
      EXPECT_TRUE(std::isinf(ea)) << "full=" << full << " limit=" << limit;
    } else {
      EXPECT_NEAR(ea, full, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EarlyAbandonPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(EarlyAbandonEuclideanTest, SquaredVariantMatches) {
  Rng rng(3);
  const Series a = RandomSeries(&rng, 32);
  const Series b = RandomSeries(&rng, 32);
  const double sq = EarlyAbandonSquaredEuclidean(
      a.data(), b.data(), 32, std::numeric_limits<double>::infinity());
  EXPECT_NEAR(std::sqrt(sq), EuclideanDistance(a, b), 1e-12);
}

}  // namespace
}  // namespace rotind
