#include "src/stream/monitor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/random.h"

namespace rotind {
namespace {

Series RandomSeries(Rng* rng, std::size_t n) {
  Series s(n);
  for (double& v : s) v = rng->Gaussian(0.0, 1.0);
  return s;
}

TEST(StreamMonitorTest, NoHitsBeforeWindowFills) {
  Rng rng(1);
  StreamMonitor::Options options;
  StreamMonitor monitor({RandomSeries(&rng, 16)}, options);
  for (int i = 0; i < 15; ++i) {
    EXPECT_TRUE(monitor.Push(rng.NextDouble()).empty());
  }
  EXPECT_EQ(monitor.samples_seen(), 15);
  EXPECT_EQ(monitor.window_size(), 16u);
}

TEST(StreamMonitorTest, DetectsEmbeddedPattern) {
  Rng rng(2);
  const std::size_t n = 32;
  const Series pattern = RandomSeries(&rng, n);

  StreamMonitor::Options options;
  options.distance_threshold = 0.5;
  StreamMonitor monitor({pattern}, options);

  // Stream: noise, then the pattern, then noise.
  Series stream;
  for (int i = 0; i < 50; ++i) stream.push_back(rng.Gaussian(0.0, 1.0));
  Series z = ZNormalized(pattern);
  stream.insert(stream.end(), z.begin(), z.end());
  for (int i = 0; i < 30; ++i) stream.push_back(rng.Gaussian(0.0, 1.0));

  const auto hits = monitor.PushAll(stream);
  ASSERT_FALSE(hits.empty());
  bool found_exact = false;
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.pattern, 0);
    if (hit.end_position == 50 + static_cast<std::int64_t>(n) - 1 &&
        hit.distance < 1e-6) {
      found_exact = true;
    }
  }
  EXPECT_TRUE(found_exact);
}

TEST(StreamMonitorTest, MultiplePatternsReportedByIndex) {
  Rng rng(3);
  const std::size_t n = 24;
  std::vector<Series> patterns = {RandomSeries(&rng, n), RandomSeries(&rng, n),
                                  RandomSeries(&rng, n)};
  StreamMonitor::Options options;
  options.distance_threshold = 0.25;
  StreamMonitor monitor(patterns, options);

  Series stream;
  for (int i = 0; i < 30; ++i) stream.push_back(rng.Gaussian(0.0, 1.0));
  const Series z1 = ZNormalized(patterns[1]);
  stream.insert(stream.end(), z1.begin(), z1.end());

  const auto hits = monitor.PushAll(stream);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits.back().pattern, 1);
  EXPECT_LT(hits.back().distance, 1e-6);
}

TEST(StreamMonitorTest, RotationInvariantModeMatchesAnyPhase) {
  Rng rng(4);
  const std::size_t n = 40;
  const Series pattern = RandomSeries(&rng, n);

  StreamMonitor::Options plain;
  plain.distance_threshold = 0.5;
  StreamMonitor strict(std::vector<Series>{pattern}, plain);

  StreamMonitor::Options invariant = plain;
  invariant.rotation_invariant = true;
  StreamMonitor loose(std::vector<Series>{pattern}, invariant);

  // Insert a rotated copy of the pattern.
  Series stream;
  for (int i = 0; i < 25; ++i) stream.push_back(rng.Gaussian(0.0, 1.0));
  const Series rotated = RotateLeft(ZNormalized(pattern), 13);
  stream.insert(stream.end(), rotated.begin(), rotated.end());

  const auto strict_hits = strict.PushAll(stream);
  const auto loose_hits = loose.PushAll(stream);

  bool strict_exact = false;
  for (const auto& h : strict_hits) strict_exact |= h.distance < 1e-6;
  EXPECT_FALSE(strict_exact);  // a rotation is NOT a plain match

  bool loose_exact = false;
  int shift = -1;
  for (const auto& h : loose_hits) {
    if (h.distance < 1e-6) {
      loose_exact = true;
      shift = h.shift;
    }
  }
  EXPECT_TRUE(loose_exact);
  EXPECT_EQ(shift, 13);
}

TEST(StreamMonitorTest, DtwModeTolratesLocalWarping) {
  Rng rng(5);
  const std::size_t n = 48;
  // Smooth pattern so a small warp is meaningful.
  Series pattern(n);
  for (std::size_t i = 0; i < n; ++i) {
    pattern[i] = std::sin(2 * 3.14159265 * 3.0 * i / n);
  }

  StreamMonitor::Options dtw;
  dtw.distance_threshold = 0.8;
  dtw.dtw_band = 3;
  StreamMonitor monitor({pattern}, dtw);

  // A locally-stretched rendition of the pattern.
  Series warped(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double pos = i + 1.5 * std::sin(2 * 3.14159265 * i / n);
    const long j = std::lround(pos);
    warped[i] = pattern[static_cast<std::size_t>((j % n + n) % n)];
  }
  Series stream;
  for (int i = 0; i < 20; ++i) stream.push_back(rng.Gaussian(0.0, 1.0));
  const Series z = ZNormalized(warped);
  stream.insert(stream.end(), z.begin(), z.end());

  const auto hits = monitor.PushAll(stream);
  bool matched = false;
  for (const auto& h : hits) {
    matched |= h.end_position == 20 + static_cast<std::int64_t>(n) - 1;
  }
  EXPECT_TRUE(matched);
}

TEST(StreamMonitorTest, StepCountingAccumulates) {
  Rng rng(6);
  StreamMonitor::Options options;
  options.distance_threshold = 0.1;
  StreamMonitor monitor({RandomSeries(&rng, 16)}, options);
  StepCounter counter;
  monitor.PushAll(RandomSeries(&rng, 64), &counter);
  EXPECT_GT(counter.steps, 0u);
  EXPECT_GT(counter.early_abandons, 0u);  // noise windows abandon quickly
}

}  // namespace
}  // namespace rotind
