#include "src/core/random.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace rotind {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-3.5, 2.25);
    EXPECT_GE(v, -3.5);
    EXPECT_LT(v, 2.25);
  }
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.NextBounded(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(RngTest, BoundedOneAlwaysZero) {
  Rng rng(10);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParameters) {
  Rng rng(12);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, UniformCoversRangeRoughly) {
  Rng rng(13);
  int low_half = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextDouble() < 0.5) ++low_half;
  }
  EXPECT_NEAR(static_cast<double>(low_half) / n, 0.5, 0.02);
}

}  // namespace
}  // namespace rotind
