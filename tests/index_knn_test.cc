/// Exact k-NN on the disk-backed rotation-invariant index, validated
/// against directly computed distances.

#include <algorithm>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/datasets/synthetic.h"
#include "src/distance/rotation.h"
#include "src/index/candidate_scan.h"

namespace rotind {
namespace {

Series NoisyRotation(const Series& base, Rng* rng) {
  Series q = RotateLeft(base, static_cast<long>(rng->NextBounded(base.size())));
  for (double& v : q) v += rng->Gaussian(0.0, 0.05);
  ZNormalize(&q);
  return q;
}

class IndexKnnTest : public ::testing::TestWithParam<int> {};

TEST_P(IndexKnnTest, EuclideanKnnMatchesDirectComputation) {
  const int k = GetParam();
  const std::size_t n = 48;
  const std::vector<Series> db = MakeProjectilePointsDatabase(60, n, 31);
  RotationInvariantIndex::Options opts;
  opts.dims = 8;
  RotationInvariantIndex index(db, opts);

  Rng rng(static_cast<std::uint64_t>(k) * 5 + 3);
  for (int trial = 0; trial < 3; ++trial) {
    const Series q = NoisyRotation(db[rng.NextBounded(db.size())], &rng);

    std::vector<std::pair<double, int>> ref;
    for (std::size_t i = 0; i < db.size(); ++i) {
      ref.emplace_back(RotationInvariantEuclidean(q, db[i]),
                       static_cast<int>(i));
    }
    std::sort(ref.begin(), ref.end());

    RotationInvariantIndex::Result stats;
    const auto knn = index.KNearestNeighbors(q, k, &stats);
    ASSERT_EQ(knn.size(), static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) {
      EXPECT_NEAR(knn[static_cast<std::size_t>(i)].distance,
                  ref[static_cast<std::size_t>(i)].first, 1e-9)
          << "k=" << k << " i=" << i;
    }
    EXPECT_EQ(stats.best_index, knn[0].index);
    EXPECT_LE(stats.fetch_fraction, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, IndexKnnTest, ::testing::Values(1, 3, 7));

TEST(IndexKnnTest, DtwKnnMatchesDirectComputation) {
  const std::size_t n = 40;
  const int band = 3;
  const std::vector<Series> db = MakeProjectilePointsDatabase(40, n, 32);
  RotationInvariantIndex::Options opts;
  opts.dims = 8;
  opts.kind = DistanceKind::kDtw;
  opts.band = band;
  RotationInvariantIndex index(db, opts);

  Rng rng(7);
  const Series q = NoisyRotation(db[13], &rng);

  std::vector<std::pair<double, int>> ref;
  for (std::size_t i = 0; i < db.size(); ++i) {
    ref.emplace_back(RotationInvariantDtw(q, db[i], band),
                     static_cast<int>(i));
  }
  std::sort(ref.begin(), ref.end());

  const auto knn = index.KNearestNeighbors(q, 5);
  ASSERT_EQ(knn.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(knn[static_cast<std::size_t>(i)].distance,
                ref[static_cast<std::size_t>(i)].first, 1e-9);
  }
}

TEST(IndexKnnTest, KLargerThanDatabase) {
  const std::vector<Series> db = MakeProjectilePointsDatabase(5, 32, 33);
  RotationInvariantIndex::Options opts;
  opts.dims = 8;
  RotationInvariantIndex index(db, opts);
  const auto knn = index.KNearestNeighbors(db[0], 10);
  EXPECT_EQ(knn.size(), 5u);
  EXPECT_EQ(knn[0].index, 0);  // the object itself at distance 0
}

TEST(IndexKnnTest, KnnOneMatchesNearestNeighbor) {
  const std::vector<Series> db = MakeProjectilePointsDatabase(50, 40, 34);
  RotationInvariantIndex::Options opts;
  opts.dims = 8;
  RotationInvariantIndex index(db, opts);
  Rng rng(8);
  const Series q = NoisyRotation(db[21], &rng);
  const auto nn = index.NearestNeighbor(q);
  const auto knn = index.KNearestNeighbors(q, 1);
  ASSERT_EQ(knn.size(), 1u);
  EXPECT_EQ(knn[0].index, nn.best_index);
  EXPECT_NEAR(knn[0].distance, nn.best_distance, 1e-12);
}

}  // namespace
}  // namespace rotind
