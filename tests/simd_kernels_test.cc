/// Bit-parity property tests for the SIMD kernel layer: every kernel in
/// the AVX2 tier must return BIT-IDENTICAL results (values, abandonment
/// points, step counts) to its scalar reference on the same inputs — the
/// exactness contract documented in src/simd/simd.h. Sweeps odd lengths,
/// tails (n mod 8 != 0), reversed (mirror) series, and rotation offsets.
/// On machines without AVX2 the parity tests degenerate to scalar-vs-scalar
/// and pass trivially; the dispatch tests always run.

#include "src/simd/simd.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/flat_dataset.h"
#include "src/core/random.h"

namespace rotind {
namespace simd {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Bit-level equality: distinguishes +0.0 from -0.0, which EXPECT_EQ on
/// doubles does not. The min/max tie-breaking rules are exactly about this.
::testing::AssertionResult BitEqual(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " (0x" << std::hex << std::bit_cast<std::uint64_t>(a)
         << ") != " << std::dec << b << " (0x" << std::hex
         << std::bit_cast<std::uint64_t>(b) << ")";
}

/// Lengths chosen to hit every tail residue mod 8 (and mod 4 for the
/// 4-wide kernels), plus the paper's shape length 251.
const std::size_t kLengths[] = {1,  2,  3,  4,  5,  7,  8,   9,
                                15, 16, 17, 31, 33, 64, 100, 251};

std::vector<double> RandomSeries(Rng* rng, std::size_t n, double scale) {
  std::vector<double> s(n);
  for (double& v : s) v = rng->Gaussian(0.0, scale);
  return s;
}

std::vector<double> Reversed(const std::vector<double>& s) {
  return std::vector<double>(s.rbegin(), s.rend());
}

TEST(SimdDispatchTest, ScalarTierAlwaysAvailable) {
  EXPECT_TRUE(TierAvailable(Tier::kScalar));
  EXPECT_STREQ(TierName(Tier::kScalar), "scalar");
  EXPECT_STREQ(TierName(Tier::kAvx2), "avx2");
}

TEST(SimdDispatchTest, ActiveTierIsAvailableAndNamed) {
  const Tier tier = ActiveTier();
  EXPECT_TRUE(TierAvailable(tier));
  EXPECT_STREQ(ActiveTierName(), TierName(tier));
  const std::string name = ActiveTierName();
  EXPECT_TRUE(name == "scalar" || name == "avx2") << name;
}

TEST(SimdDispatchTest, TablesAreFullyPopulated) {
  for (Tier tier : {Tier::kScalar, Tier::kAvx2}) {
    const KernelTable& k = KernelsFor(tier);
    EXPECT_NE(k.lb_keogh_sq, nullptr);
    EXPECT_NE(k.lb_keogh_proj_sq, nullptr);
    EXPECT_NE(k.ed_block_full, nullptr);
    EXPECT_NE(k.ed_block_ea, nullptr);
    EXPECT_NE(k.env_merge, nullptr);
    EXPECT_NE(k.env_merge_series, nullptr);
    EXPECT_NE(k.dtw_row, nullptr);
  }
}

TEST(SimdDispatchTest, UnavailableTierDegradesToScalar) {
  if (TierAvailable(Tier::kAvx2)) {
    GTEST_SKIP() << "AVX2 available; nothing to degrade";
  }
  EXPECT_EQ(&KernelsFor(Tier::kAvx2), &KernelsFor(Tier::kScalar));
}

class SimdParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!TierAvailable(Tier::kAvx2)) {
      GTEST_SKIP() << "no AVX2 on this machine; scalar-vs-scalar parity is "
                      "vacuous";
    }
  }
  const KernelTable& scalar_ = KernelsFor(Tier::kScalar);
  const KernelTable& avx2_ = KernelsFor(Tier::kAvx2);
};

/// LB_Keogh: value, abandonment decision, AND abandonment index must all
/// match, across limits from "never abandons" to "abandons immediately"
/// (including the negative-limit edge where the scalar loop abandons after
/// the first, possibly zero, term).
TEST_F(SimdParityTest, LbKeoghMatchesBitForBit) {
  Rng rng(101);
  for (std::size_t n : kLengths) {
    const std::vector<double> s = RandomSeries(&rng, n, 1.0);
    const std::vector<double> a = RandomSeries(&rng, n, 1.0);
    const std::vector<double> b = RandomSeries(&rng, n, 1.0);
    std::vector<double> upper(n);
    std::vector<double> lower(n);
    for (std::size_t i = 0; i < n; ++i) {
      upper[i] = std::max(a[i], b[i]);
      lower[i] = std::min(a[i], b[i]);
    }
    // A wide envelope exercises the all-inside fast path; a collapsed one
    // (upper == lower) makes nearly every point contribute.
    for (double widen : {0.0, 0.5}) {
      std::vector<double> u = upper;
      std::vector<double> l = lower;
      for (std::size_t i = 0; i < n; ++i) {
        u[i] += widen;
        l[i] -= widen;
      }
      std::size_t ref_examined = 0;
      const double full =
          scalar_.lb_keogh_sq(s.data(), u.data(), l.data(), n, kInf,
                              &ref_examined);
      ASSERT_EQ(ref_examined, n);
      for (double limit : {kInf, full * 1.5, full, full * 0.5, full * 0.1,
                           0.0, -1.0}) {
        std::size_t se = 0;
        std::size_t ve = 0;
        const double sr = scalar_.lb_keogh_sq(s.data(), u.data(), l.data(),
                                              n, limit, &se);
        const double vr = avx2_.lb_keogh_sq(s.data(), u.data(), l.data(), n,
                                            limit, &ve);
        EXPECT_TRUE(BitEqual(sr, vr)) << "n=" << n << " limit=" << limit;
        EXPECT_EQ(se, ve) << "n=" << n << " limit=" << limit;
      }
    }
  }
}

/// LB_Keogh over rotation offsets and mirror (reversed) views — the inputs
/// the wedge cascade actually feeds it: pointers into a doubled buffer.
TEST_F(SimdParityTest, LbKeoghMatchesOnRotationsAndMirrors) {
  Rng rng(103);
  const std::size_t n = 37;
  FlatDataset db;
  db.Add(RandomSeries(&rng, n, 1.0));
  db.Add(Reversed(db.Materialize(0)));  // the mirror view, doubled too
  std::vector<double> upper(n);
  std::vector<double> lower(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.Gaussian(0.0, 1.0);
    const double b = rng.Gaussian(0.0, 1.0);
    upper[i] = std::max(a, b);
    lower[i] = std::min(a, b);
  }
  for (std::size_t item : {0u, 1u}) {
    for (std::size_t shift = 0; shift < n; shift += 5) {
      const double* rot = db.rotation(item, shift).data();
      for (double limit : {kInf, 1.0, 0.05}) {
        std::size_t se = 0;
        std::size_t ve = 0;
        const double sr = scalar_.lb_keogh_sq(rot, upper.data(),
                                              lower.data(), n, limit, &se);
        const double vr = avx2_.lb_keogh_sq(rot, upper.data(), lower.data(),
                                            n, limit, &ve);
        EXPECT_TRUE(BitEqual(sr, vr))
            << "item=" << item << " shift=" << shift << " limit=" << limit;
        EXPECT_EQ(se, ve)
            << "item=" << item << " shift=" << shift << " limit=" << limit;
      }
    }
  }
}

/// LB_Improved pass 1 (fused projection): the return value, abandonment
/// index, AND the projection prefix proj[0, examined) must all match the
/// scalar tier bit-for-bit — and the non-projection outputs must equal
/// plain lb_keogh_sq exactly, since the engine mixes the two kernels.
TEST_F(SimdParityTest, LbKeoghProjMatchesBitForBit) {
  Rng rng(109);
  for (std::size_t n : kLengths) {
    const std::vector<double> s = RandomSeries(&rng, n, 1.0);
    const std::vector<double> a = RandomSeries(&rng, n, 1.0);
    const std::vector<double> b = RandomSeries(&rng, n, 1.0);
    std::vector<double> upper(n);
    std::vector<double> lower(n);
    for (std::size_t i = 0; i < n; ++i) {
      upper[i] = std::max(a[i], b[i]);
      lower[i] = std::min(a[i], b[i]);
    }
    std::size_t ref_examined = 0;
    const double full = scalar_.lb_keogh_sq(s.data(), upper.data(),
                                            lower.data(), n, kInf,
                                            &ref_examined);
    for (double limit : {kInf, full, full * 0.5, 0.0, -1.0}) {
      std::size_t se = 0;
      std::size_t ve = 0;
      std::size_t pe = 0;
      std::vector<double> sproj(n, -7.0);
      std::vector<double> vproj(n, -7.0);
      const double sr = scalar_.lb_keogh_proj_sq(
          s.data(), upper.data(), lower.data(), sproj.data(), n, limit, &se);
      const double vr = avx2_.lb_keogh_proj_sq(
          s.data(), upper.data(), lower.data(), vproj.data(), n, limit, &ve);
      const double pr = scalar_.lb_keogh_sq(s.data(), upper.data(),
                                            lower.data(), n, limit, &pe);
      EXPECT_TRUE(BitEqual(sr, vr)) << "n=" << n << " limit=" << limit;
      EXPECT_EQ(se, ve) << "n=" << n << " limit=" << limit;
      // Fusion must not change what lb_keogh_sq would have computed.
      EXPECT_TRUE(BitEqual(sr, pr)) << "n=" << n << " limit=" << limit;
      EXPECT_EQ(se, pe) << "n=" << n << " limit=" << limit;
      for (std::size_t i = 0; i < se; ++i) {
        EXPECT_TRUE(BitEqual(sproj[i], vproj[i]))
            << "n=" << n << " limit=" << limit << " i=" << i;
        // The projection is the clamp of s onto [lower, upper].
        const double expect = s[i] > upper[i] ? upper[i]
                              : s[i] < lower[i] ? lower[i]
                                                : s[i];
        EXPECT_TRUE(BitEqual(sproj[i], expect))
            << "n=" << n << " limit=" << limit << " i=" << i;
      }
    }
  }
}

/// Signed-zero tie-breaking: a -0.0 point sitting exactly on a +/-0.0
/// envelope edge must keep the POINT's bits in both tiers (the documented
/// "ties keep s_i" rule — min/max return their second operand on ties).
TEST_F(SimdParityTest, LbKeoghProjPreservesSignedZeroTies) {
  const std::size_t n = 9;
  const std::vector<double> s = {-0.0, 0.0, -0.0, 0.0, -0.0,
                                 0.0,  -0.0, 0.0, -0.0};
  const std::vector<double> upper(n, 0.0);
  std::vector<double> lower(n, -0.0);
  for (const KernelTable* k : {&scalar_, &avx2_}) {
    std::size_t examined = 0;
    std::vector<double> proj(n, 99.0);
    const double r = k->lb_keogh_proj_sq(s.data(), upper.data(), lower.data(),
                                         proj.data(), n, kInf, &examined);
    EXPECT_TRUE(BitEqual(r, 0.0));
    ASSERT_EQ(examined, n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(BitEqual(proj[i], s[i])) << "i=" << i;
    }
  }
}

/// Builds an SoA tile (kBlockLanes candidates, possibly fewer valid — the
/// rest zero-padded) the way FlatDataset lays them out.
std::vector<double> MakeTile(Rng* rng, std::size_t n, std::size_t valid) {
  std::vector<double> tile(n * kBlockLanes, 0.0);
  for (std::size_t l = 0; l < valid; ++l) {
    for (std::size_t t = 0; t < n; ++t) {
      tile[t * kBlockLanes + l] = rng->Gaussian(0.0, 1.0);
    }
  }
  return tile;
}

TEST_F(SimdParityTest, EdBlockFullMatchesBitForBit) {
  Rng rng(107);
  for (std::size_t n : kLengths) {
    for (std::size_t valid : {std::size_t{1}, std::size_t{3}, kBlockLanes}) {
      const std::vector<double> q = RandomSeries(&rng, n, 1.0);
      const std::vector<double> tile = MakeTile(&rng, n, valid);
      double ss[kBlockLanes];
      double vs[kBlockLanes];
      scalar_.ed_block_full(q.data(), tile.data(), n, ss);
      avx2_.ed_block_full(q.data(), tile.data(), n, vs);
      for (std::size_t l = 0; l < kBlockLanes; ++l) {
        EXPECT_TRUE(BitEqual(ss[l], vs[l]))
            << "n=" << n << " valid=" << valid << " lane=" << l;
      }
      // Independent reference: the per-candidate time-order sum the lanes
      // must reproduce exactly.
      for (std::size_t l = 0; l < kBlockLanes; ++l) {
        double acc = 0.0;
        for (std::size_t t = 0; t < n; ++t) {
          const double d = q[t] - tile[t * kBlockLanes + l];
          acc += d * d;
        }
        EXPECT_TRUE(BitEqual(ss[l], acc)) << "n=" << n << " lane=" << l;
      }
    }
  }
}

TEST_F(SimdParityTest, EdBlockEarlyAbandonMatchesBitForBit) {
  Rng rng(109);
  for (std::size_t n : kLengths) {
    const std::vector<double> q = RandomSeries(&rng, n, 1.0);
    const std::vector<double> tile = MakeTile(&rng, n, kBlockLanes);
    double full[kBlockLanes];
    scalar_.ed_block_full(q.data(), tile.data(), n, full);
    // Per-lane limits spanning never-abandons to abandons-at-once, plus a
    // negative limit (lane 6) and an exact-sum limit (lane 3: surviving on
    // `>` being strict).
    const double scales[kBlockLanes] = {kInf, 1.5, 1.0, 1.0,
                                        0.5,  0.1, 0.0, 0.0};
    double limits[kBlockLanes];
    for (std::size_t l = 0; l < kBlockLanes; ++l) {
      limits[l] = std::isinf(scales[l]) ? kInf : full[l] * scales[l];
    }
    limits[6] = -1.0;
    double ss[kBlockLanes];
    double vs[kBlockLanes];
    std::uint64_t s_steps[kBlockLanes];
    std::uint64_t v_steps[kBlockLanes];
    unsigned s_ab = 0;
    unsigned v_ab = 0;
    scalar_.ed_block_ea(q.data(), tile.data(), n, limits, ss, s_steps,
                        &s_ab);
    avx2_.ed_block_ea(q.data(), tile.data(), n, limits, vs, v_steps, &v_ab);
    EXPECT_EQ(s_ab, v_ab) << "n=" << n;
    for (std::size_t l = 0; l < kBlockLanes; ++l) {
      EXPECT_TRUE(BitEqual(ss[l], vs[l])) << "n=" << n << " lane=" << l;
      EXPECT_EQ(s_steps[l], v_steps[l]) << "n=" << n << " lane=" << l;
    }
  }
}

/// Envelope merges, including the ±0.0 ties where vmaxpd/vminpd operand
/// order is the whole story: std::max(a, b) returns a on ties, and the
/// AVX2 kernel must reproduce that bit pattern.
TEST_F(SimdParityTest, EnvelopeMergeMatchesBitForBit) {
  Rng rng(113);
  for (std::size_t n : kLengths) {
    std::vector<double> s_upper = RandomSeries(&rng, n, 1.0);
    std::vector<double> s_lower(n);
    for (std::size_t i = 0; i < n; ++i) s_lower[i] = s_upper[i] - 0.5;
    std::vector<double> other_upper = RandomSeries(&rng, n, 1.0);
    std::vector<double> other_lower(n);
    for (std::size_t i = 0; i < n; ++i) {
      other_lower[i] = other_upper[i] - 0.5;
    }
    // Seed signed-zero ties and exact-equal ties at every residue mod 4.
    for (std::size_t i = 0; i < n; ++i) {
      switch (i % 4) {
        case 0: s_upper[i] = +0.0; other_upper[i] = -0.0; break;
        case 1: s_upper[i] = -0.0; other_upper[i] = +0.0; break;
        case 2: other_lower[i] = s_lower[i]; break;
        default: break;
      }
    }
    std::vector<double> su = s_upper;
    std::vector<double> sl = s_lower;
    std::vector<double> vu = s_upper;
    std::vector<double> vl = s_lower;
    scalar_.env_merge(su.data(), sl.data(), other_upper.data(),
                      other_lower.data(), n);
    avx2_.env_merge(vu.data(), vl.data(), other_upper.data(),
                    other_lower.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(BitEqual(su[i], vu[i])) << "n=" << n << " upper[" << i
                                          << "]";
      EXPECT_TRUE(BitEqual(sl[i], vl[i])) << "n=" << n << " lower[" << i
                                          << "]";
    }
  }
}

TEST_F(SimdParityTest, EnvelopeMergeSeriesMatchesBitForBit) {
  Rng rng(127);
  for (std::size_t n : kLengths) {
    std::vector<double> upper = RandomSeries(&rng, n, 1.0);
    std::vector<double> lower(n);
    for (std::size_t i = 0; i < n; ++i) lower[i] = upper[i] - 1.0;
    std::vector<double> s = RandomSeries(&rng, n, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (i % 3 == 0) s[i] = upper[i];          // exact tie with upper
      if (i % 5 == 0) { s[i] = -0.0; upper[i] = +0.0; }  // signed-zero tie
    }
    std::vector<double> su = upper;
    std::vector<double> sl = lower;
    std::vector<double> vu = upper;
    std::vector<double> vl = lower;
    scalar_.env_merge_series(su.data(), sl.data(), s.data(), n);
    avx2_.env_merge_series(vu.data(), vl.data(), s.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(BitEqual(su[i], vu[i])) << "n=" << n << " upper[" << i
                                          << "]";
      EXPECT_TRUE(BitEqual(sl[i], vl[i])) << "n=" << n << " lower[" << i
                                          << "]";
    }
  }
}

/// DTW band row: curr[] cells inside the band and the returned row minimum
/// must match across full rows, narrow bands, and band edges touching the
/// row ends — with the out-of-band +inf cells the caller prefills.
TEST_F(SimdParityTest, DtwRowMatchesBitForBit) {
  Rng rng(131);
  for (std::size_t n : kLengths) {
    const std::vector<double> c = RandomSeries(&rng, n, 1.0);
    std::vector<double> prev(n, kInf);
    // A plausible previous row: finite inside some band, +inf outside.
    const std::size_t p_lo = n >= 5 ? 1 : 0;
    const std::size_t p_hi = n - 1 - (n >= 7 ? 1 : 0);
    for (std::size_t j = p_lo; j <= p_hi; ++j) {
      prev[j] = std::abs(rng.Gaussian(1.0, 0.5));
    }
    const double qi = rng.Gaussian(0.0, 1.0);
    std::vector<std::pair<std::size_t, std::size_t>> bands = {{0, n - 1}};
    if (n >= 3) bands.push_back({1, n - 2});
    if (n >= 9) bands.push_back({3, 7});
    for (const auto& [j_lo, j_hi] : bands) {
      std::vector<double> s_curr(n, kInf);
      std::vector<double> v_curr(n, kInf);
      std::vector<double> scratch(n, 0.0);
      const double sr = scalar_.dtw_row(qi, c.data(), prev.data(),
                                        s_curr.data(), j_lo, j_hi,
                                        scratch.data());
      const double vr = avx2_.dtw_row(qi, c.data(), prev.data(),
                                      v_curr.data(), j_lo, j_hi,
                                      scratch.data());
      EXPECT_TRUE(BitEqual(sr, vr)) << "n=" << n << " band=[" << j_lo << ","
                                    << j_hi << "]";
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_TRUE(BitEqual(s_curr[j], v_curr[j]))
            << "n=" << n << " band=[" << j_lo << "," << j_hi << "] j=" << j;
      }
    }
  }
}

}  // namespace
}  // namespace simd
}  // namespace rotind
