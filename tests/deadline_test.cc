/// Cooperative cancellation: CancelToken semantics, and the engine's
/// Checked entry points under deadlines — for EVERY cascade composition,
/// an expired deadline yields kDeadlineExceeded and a racing deadline
/// yields either kDeadlineExceeded or the exact answer, never a partial
/// result presented as exact (the ISSUE 6 honesty rule at engine level).

#include "src/core/cancel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/core/flat_dataset.h"
#include "src/core/status.h"
#include "src/datasets/synthetic.h"
#include "src/search/engine.h"

namespace rotind {
namespace {

using std::chrono::steady_clock;

TEST(CancelTokenTest, DefaultTokenNeverFires) {
  const CancelToken token;
  EXPECT_TRUE(token.Check().ok());
  EXPECT_FALSE(token.Fired());
}

TEST(CancelTokenTest, ExpiredDeadlineFiresTyped) {
  const CancelToken token = CancelToken::WithDeadline(
      steady_clock::now() - std::chrono::milliseconds(1));
  const Status s = token.Check();
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(token.Fired());
}

TEST(CancelTokenTest, FutureDeadlinePassesThenExpires) {
  const CancelToken token =
      CancelToken::WithTimeout(std::chrono::milliseconds(5));
  EXPECT_TRUE(token.Check().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelTokenTest, LocalCancelFiresTyped) {
  CancelToken token;
  token.Cancel();
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, KillSwitchFiresTyped) {
  std::atomic<bool> kill{false};
  CancelToken token;
  token.AttachKillSwitch(&kill);
  EXPECT_TRUE(token.Check().ok());
  kill.store(true);
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, DeadlineWinsOverCancel) {
  // A query that is both expired and cancelled reports the deadline: the
  // caller set it first and it is the actionable signal (retry budget).
  CancelToken token = CancelToken::WithDeadline(
      steady_clock::now() - std::chrono::milliseconds(1));
  token.Cancel();
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
}

/// Every cascade composition the engine supports, exercised below under
/// deadlines. Filters are per-measure normalized, so the fft entries only
/// differ from their suffix under kEuclidean — which the fixture uses.
std::vector<CascadeSpec> AllCascades() {
  return {
      CascadeSpec{{StageKind::kWedge}},
      CascadeSpec{{StageKind::kExactScan}},
      CascadeSpec{{StageKind::kFullScan}},
      CascadeSpec{{StageKind::kFullScanBanded}},
      CascadeSpec{{StageKind::kFftMagnitude, StageKind::kWedge}},
      CascadeSpec{{StageKind::kFftMagnitude, StageKind::kExactScan}},
  };
}

class DeadlineCascadeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::vector<Series> items =
        MakeProjectilePointsDatabase(60, 48, 311);
    flat_ = FlatDataset::FromItems(items);
    query_.assign(flat_.data(7), flat_.data(7) + flat_.length());
  }

  QueryEngine Engine(const CascadeSpec& cascade) const {
    EngineOptions options;
    options.cascade = cascade;
    return QueryEngine(flat_, options);
  }

  FlatDataset flat_;
  Series query_;
};

TEST_F(DeadlineCascadeTest, ExpiredDeadlineIsTypedForEveryCascade) {
  for (const CascadeSpec& cascade : AllCascades()) {
    const QueryEngine engine = Engine(cascade);
    const CancelToken expired = CancelToken::WithDeadline(
        steady_clock::now() - std::chrono::milliseconds(1));

    const auto nn = engine.SearchChecked(query_, &expired);
    ASSERT_FALSE(nn.ok());
    EXPECT_EQ(nn.status().code(), StatusCode::kDeadlineExceeded);

    const auto knn = engine.KnnChecked(query_, 3, nullptr, &expired);
    ASSERT_FALSE(knn.ok());
    EXPECT_EQ(knn.status().code(), StatusCode::kDeadlineExceeded);

    const auto range =
        engine.RangeChecked(query_, 2.0, nullptr, &expired);
    ASSERT_FALSE(range.ok());
    EXPECT_EQ(range.status().code(), StatusCode::kDeadlineExceeded);
  }
}

TEST_F(DeadlineCascadeTest, GenerousDeadlineMatchesUncheckedExactly) {
  for (const CascadeSpec& cascade : AllCascades()) {
    const QueryEngine engine = Engine(cascade);
    const ScanResult truth = engine.Search(query_);
    const CancelToken token =
        CancelToken::WithTimeout(std::chrono::seconds(30));
    const auto checked = engine.SearchChecked(query_, &token);
    ASSERT_TRUE(checked.ok()) << checked.status().message();
    EXPECT_EQ(checked->best_index, truth.best_index);
    EXPECT_EQ(checked->best_distance, truth.best_distance);
  }
}

/// The core honesty property: sweep deadlines from "hopeless" to
/// "comfortable". Whatever the race outcome at each point, the result is
/// either the typed deadline error or the bit-exact answer — a partial
/// scan must never leak out as a result.
TEST_F(DeadlineCascadeTest, RacingDeadlineNeverYieldsAWrongNeighbor) {
  for (const CascadeSpec& cascade : AllCascades()) {
    const QueryEngine engine = Engine(cascade);
    const ScanResult nn_truth = engine.Search(query_);
    const std::vector<Neighbor> knn_truth = engine.Knn(query_, 4);
    for (const std::int64_t micros : {0, 1, 5, 20, 100, 1000, 5000000}) {
      const CancelToken token =
          CancelToken::WithTimeout(std::chrono::microseconds(micros));
      const auto nn = engine.SearchChecked(query_, &token);
      if (nn.ok()) {
        EXPECT_EQ(nn->best_index, nn_truth.best_index);
        EXPECT_EQ(nn->best_distance, nn_truth.best_distance);
      } else {
        EXPECT_EQ(nn.status().code(), StatusCode::kDeadlineExceeded);
      }
      const CancelToken token2 =
          CancelToken::WithTimeout(std::chrono::microseconds(micros));
      const auto knn = engine.KnnChecked(query_, 4, nullptr, &token2);
      if (knn.ok()) {
        ASSERT_EQ(knn->size(), knn_truth.size());
        for (std::size_t i = 0; i < knn_truth.size(); ++i) {
          EXPECT_EQ((*knn)[i].index, knn_truth[i].index);
          EXPECT_EQ((*knn)[i].distance, knn_truth[i].distance);
        }
      } else {
        EXPECT_EQ(knn.status().code(), StatusCode::kDeadlineExceeded);
      }
    }
  }
}

TEST_F(DeadlineCascadeTest, KillSwitchCancelsEveryCascade) {
  std::atomic<bool> kill{true};
  for (const CascadeSpec& cascade : AllCascades()) {
    const QueryEngine engine = Engine(cascade);
    CancelToken token;
    token.AttachKillSwitch(&kill);
    const auto nn = engine.SearchChecked(query_, &token);
    ASSERT_FALSE(nn.ok());
    EXPECT_EQ(nn.status().code(), StatusCode::kCancelled);
  }
}

/// Concurrent kill-switch flip while a query is in flight (the drain
/// path's hard-cancel). Run under TSan in CI: the only shared state is
/// the atomic. The result is the exact answer or kCancelled; the flip
/// must never corrupt it.
TEST_F(DeadlineCascadeTest, MidFlightKillSwitchIsExactOrCancelled) {
  const QueryEngine engine = Engine(CascadeSpec{{StageKind::kWedge}});
  const ScanResult truth = engine.Search(query_);
  for (int round = 0; round < 8; ++round) {
    std::atomic<bool> kill{false};
    CancelToken token;
    token.AttachKillSwitch(&kill);
    StatusOr<ScanResult> result = Status::Internal("not run");
    std::thread worker([&] { result = engine.SearchChecked(query_, &token); });
    kill.store(true);
    worker.join();
    if (result.ok()) {
      EXPECT_EQ(result->best_index, truth.best_index);
      EXPECT_EQ(result->best_distance, truth.best_distance);
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
    }
  }
}

TEST_F(DeadlineCascadeTest, NullTokenMeansNoCancellationOverhead) {
  const QueryEngine engine = Engine(CascadeSpec{{StageKind::kWedge}});
  const ScanResult truth = engine.Search(query_);
  const auto checked = engine.SearchChecked(query_, nullptr);
  ASSERT_TRUE(checked.ok());
  EXPECT_EQ(checked->best_index, truth.best_index);
  EXPECT_EQ(checked->best_distance, truth.best_distance);
}

}  // namespace
}  // namespace rotind
