/// The unified Measure interface: each kind agrees with its underlying
/// kernel, honors the early-abandon contract, and reports its envelope
/// band.

#include "src/distance/measure.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/core/random.h"
#include "src/core/series.h"
#include "src/distance/dtw.h"
#include "src/distance/euclidean.h"
#include "src/distance/lcss.h"

namespace rotind {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Series MakeSeries(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Series s(n);
  for (double& v : s) v = rng.Gaussian(0.0, 1.0);
  return s;
}

TEST(MeasureTest, KindNamesAreStable) {
  EXPECT_STREQ(DistanceKindName(DistanceKind::kEuclidean), "euclidean");
  EXPECT_STREQ(DistanceKindName(DistanceKind::kDtw), "dtw");
  EXPECT_STREQ(DistanceKindName(DistanceKind::kLcss), "lcss");
}

TEST(MeasureTest, FactoryReportsItsKind) {
  for (DistanceKind kind :
       {DistanceKind::kEuclidean, DistanceKind::kDtw, DistanceKind::kLcss}) {
    const auto m = MakeMeasure(kind, {});
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->kind(), kind);
  }
}

TEST(MeasureTest, EuclideanMatchesKernel) {
  const std::size_t n = 64;
  const Series a = MakeSeries(n, 1);
  const Series b = MakeSeries(n, 2);
  const auto m = MakeMeasure(DistanceKind::kEuclidean, {});
  EXPECT_DOUBLE_EQ(m->FullDistance(a.data(), b.data(), n, nullptr),
                   std::sqrt(SquaredEuclidean(a.data(), b.data(), n)));
  EXPECT_DOUBLE_EQ(m->Distance(a.data(), b.data(), n, kInf, nullptr),
                   m->FullDistance(a.data(), b.data(), n, nullptr));
}

TEST(MeasureTest, DtwMatchesKernel) {
  const std::size_t n = 64;
  const Series a = MakeSeries(n, 3);
  const Series b = MakeSeries(n, 4);
  MeasureParams params;
  params.band = 7;
  const auto m = MakeMeasure(DistanceKind::kDtw, params);
  EXPECT_DOUBLE_EQ(m->FullDistance(a.data(), b.data(), n, nullptr),
                   DtwDistance(a.data(), b.data(), n, 7));
}

TEST(MeasureTest, LcssIsOneMinusNormalizedLength) {
  const std::size_t n = 48;
  const Series a = MakeSeries(n, 5);
  const Series b = MakeSeries(n, 6);
  MeasureParams params;
  params.lcss.epsilon = 0.5;
  params.lcss.delta = 4;
  const auto m = MakeMeasure(DistanceKind::kLcss, params);
  const double len =
      static_cast<double>(LcssLength(a.data(), b.data(), n, params.lcss));
  EXPECT_DOUBLE_EQ(m->FullDistance(a.data(), b.data(), n, nullptr),
                   1.0 - len / static_cast<double>(n));
}

TEST(MeasureTest, SelfDistanceIsZero) {
  const std::size_t n = 32;
  const Series a = MakeSeries(n, 7);
  for (DistanceKind kind :
       {DistanceKind::kEuclidean, DistanceKind::kDtw, DistanceKind::kLcss}) {
    const auto m = MakeMeasure(kind, {});
    EXPECT_NEAR(m->FullDistance(a.data(), a.data(), n, nullptr), 0.0, 1e-12)
        << DistanceKindName(kind);
  }
}

/// The exactness contract: a value returned below the limit is exact; a
/// distance at or above the limit comes back as kAbandoned (+inf), never as
/// an underestimate.
TEST(MeasureTest, EarlyAbandonContract) {
  const std::size_t n = 96;
  const Series a = MakeSeries(n, 8);
  const Series b = MakeSeries(n, 9);
  for (DistanceKind kind : {DistanceKind::kEuclidean, DistanceKind::kDtw}) {
    const auto m = MakeMeasure(kind, {});
    const double exact = m->FullDistance(a.data(), b.data(), n, nullptr);
    // Generous limit: exact value comes back.
    EXPECT_DOUBLE_EQ(m->Distance(a.data(), b.data(), n, exact * 2.0, nullptr),
                     exact)
        << DistanceKindName(kind);
    // Tight limit: abandoned, reported as +inf.
    EXPECT_EQ(m->Distance(a.data(), b.data(), n, exact * 0.5, nullptr), kInf)
        << DistanceKindName(kind);
  }
}

TEST(MeasureTest, EnvelopeBandPerKind) {
  MeasureParams params;
  params.band = 9;
  params.lcss.delta = 3;
  EXPECT_EQ(MakeMeasure(DistanceKind::kEuclidean, params)->envelope_band(64),
            0);
  EXPECT_EQ(MakeMeasure(DistanceKind::kDtw, params)->envelope_band(64), 9);
  EXPECT_EQ(MakeMeasure(DistanceKind::kLcss, params)->envelope_band(64), 3);
}

TEST(MeasureTest, DistanceChargesSteps) {
  const std::size_t n = 40;
  const Series a = MakeSeries(n, 10);
  const Series b = MakeSeries(n, 11);
  for (DistanceKind kind :
       {DistanceKind::kEuclidean, DistanceKind::kDtw, DistanceKind::kLcss}) {
    StepCounter counter;
    MakeMeasure(kind, {})->Distance(a.data(), b.data(), n, kInf, &counter);
    EXPECT_GT(counter.total_steps(), 0u) << DistanceKindName(kind);
  }
}

}  // namespace
}  // namespace rotind
