/// RIDX on-disk format: write/read roundtrip fidelity (bytes, signatures,
/// labels), the header/section corruption taxonomy, and the two regression
/// cases the fuzzer found interesting enough to pin — a corrupted catalog
/// section and a data-page checksum mismatch, which must surface as Status
/// from the exact layer that detects them.

#include "src/storage/index_file.h"

#include <unistd.h>

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "src/core/series.h"
#include "src/core/status.h"
#include "src/fourier/spectral.h"
#include "src/index/index_io.h"
#include "src/index/paa.h"
#include "src/io/bytes.h"
#include "src/storage/backend.h"
#include "src/storage/manifest.h"

namespace rotind::storage {
namespace {

std::string TempPath(const char* tag) {
  return "/tmp/rotind_format_test." + std::to_string(::getpid()) + "." + tag +
         ".ridx";
}

Dataset MakeDataset(std::size_t count, std::size_t length) {
  Dataset ds;
  for (std::size_t i = 0; i < count; ++i) {
    Series s(length);
    for (std::size_t j = 0; j < length; ++j) {
      s[j] = 0.25 * static_cast<double>(i) -
             1.5 * static_cast<double>(j % 7) + 0.125;
    }
    ds.items.push_back(std::move(s));
    ds.labels.push_back(static_cast<int>(i % 3));
  }
  return ds;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Builds a small labelled index and returns its byte image.
std::string BuildImage(std::size_t count, std::size_t length,
                       std::size_t page_size) {
  const std::string path = TempPath("image");
  IndexBuildOptions build;
  build.sig_dims = 4;
  build.paa_dims = 4;
  build.page_size_bytes = page_size;
  const Status s = BuildIndexFile(MakeDataset(count, length), build, path);
  EXPECT_TRUE(s.ok()) << s.message();
  std::string image = ReadAll(path);
  std::remove(path.c_str());
  return image;
}

TEST(StorageFormatTest, RoundtripPreservesBytesSignaturesAndLabels) {
  const Dataset ds = MakeDataset(7, 40);
  const std::string path = TempPath("roundtrip");
  IndexBuildOptions build;
  build.sig_dims = 8;
  build.paa_dims = 5;
  build.page_size_bytes = 128;  // 40 doubles = 320 bytes: extents straddle
  ASSERT_TRUE(BuildIndexFile(ds, build, path).ok());

  auto file = IndexFile::Open(path);
  ASSERT_TRUE(file.ok()) << file.status().message();
  EXPECT_EQ((*file)->num_objects(), 7u);
  EXPECT_EQ((*file)->series_length(), 40u);
  EXPECT_EQ((*file)->sig_dims(), 8u);
  EXPECT_EQ((*file)->paa_dims(), 5u);
  ASSERT_TRUE((*file)->has_labels());
  EXPECT_EQ((*file)->labels(), ds.labels);

  // Resident signatures are exactly what the kernels produce.
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto sig = MakeSpectralSignature(ds.items[i], 8);
    const auto paa = PaaTransform(ds.items[i], 5);
    for (std::size_t d = 0; d < 8; ++d) {
      EXPECT_EQ((*file)->spectral_signatures()[i * 8 + d], sig.values[d]);
    }
    for (std::size_t d = 0; d < 5; ++d) {
      EXPECT_EQ((*file)->paa_summaries()[i * 5 + d], paa.values[d]);
    }
  }

  // Paged data section returns bit-identical series through the backend.
  auto backend = FileBackend::FromIndex(*std::move(file), 2,
                                        EvictionPolicy::kLru);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    FetchStats io;
    auto h = backend->TryFetch(i, &io);
    ASSERT_TRUE(h.ok()) << h.status().message();
    ASSERT_EQ(h->length(), 40u);
    for (std::size_t j = 0; j < 40; ++j) {
      EXPECT_EQ(h->data()[j], ds.items[i][j]) << "object " << i;
    }
  }
  EXPECT_TRUE(backend->error().ok());
}

TEST(StorageFormatTest, FromMemoryParsesTheSameImage) {
  const std::string image = BuildImage(5, 24, 64);
  auto file = IndexFile::FromMemory(image);
  ASSERT_TRUE(file.ok()) << file.status().message();
  EXPECT_EQ((*file)->num_objects(), 5u);
  EXPECT_EQ((*file)->series_length(), 24u);
}

TEST(StorageFormatTest, CorruptionTaxonomy) {
  const std::string image = BuildImage(5, 24, 64);

  {
    std::string bad = image;
    bad[0] = 'X';
    EXPECT_EQ(IndexFile::FromMemory(bad).status().code(),
              StatusCode::kBadMagic);
  }
  {
    std::string bad = image;
    bad[4] = 99;  // version field, checked before the header checksum
    EXPECT_EQ(IndexFile::FromMemory(bad).status().code(),
              StatusCode::kVersionMismatch);
  }
  {
    // Any header field flip past the version trips the header checksum.
    std::string bad = image;
    bad[16] = static_cast<char>(bad[16] ^ 0x01);  // count field
    EXPECT_EQ(IndexFile::FromMemory(bad).status().code(),
              StatusCode::kCorruptHeader);
  }
  {
    // Truncations anywhere must be kTruncated or another error — never a
    // success over missing bytes, never a crash.
    for (const std::size_t cut : {0u, 3u, 8u, 63u, 64u, 200u}) {
      if (cut >= image.size()) continue;
      const auto parsed = IndexFile::FromMemory(image.substr(0, cut));
      EXPECT_FALSE(parsed.ok()) << "cut at " << cut;
    }
    // Cutting inside the data section specifically reports truncation.
    const auto short_data =
        IndexFile::FromMemory(image.substr(0, image.size() - 1));
    EXPECT_EQ(short_data.status().code(), StatusCode::kTruncated);
  }
}

/// Regression: a flipped byte inside the catalog section must fail the
/// catalog checksum at parse time — before any extent is trusted.
TEST(StorageFormatTest, CorruptedCatalogSectionIsRejectedAtParse) {
  const std::string image = BuildImage(5, 24, 64);
  std::string bad = image;
  // BuildIndexFile writes RI signatures by default, so the image is a
  // version-2 container: the catalog starts after both 64-byte headers.
  const std::size_t catalog = kIndexHeaderBytes + kIndexExtHeaderBytes;
  bad[catalog + 3] = static_cast<char>(bad[catalog + 3] ^ 0x40);
  const auto parsed = IndexFile::FromMemory(bad);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kCorruptHeader);
  EXPECT_NE(parsed.status().message().find("catalog"), std::string::npos)
      << parsed.status().message();
}

/// Regression: bit rot inside a data page parses fine (pages are verified
/// lazily) but the first read of that page must fail its checksum, and the
/// failure must surface through every fetch layer — ReadPage, TryFetch,
/// and the unchecked Fetch's latched error().
TEST(StorageFormatTest, DataPageChecksumMismatchSurfacesOnRead) {
  const std::string image = BuildImage(5, 24, 64);
  auto clean = IndexFile::FromMemory(image);
  ASSERT_TRUE(clean.ok());
  const std::size_t page_size = (*clean)->page_size_bytes();
  const std::size_t num_pages = (*clean)->num_pages();
  // The strict total-size check means the data section is exactly the
  // image's tail.
  const std::size_t data_start = image.size() - num_pages * page_size;

  std::string bad = image;
  bad[data_start + 5] = static_cast<char>(bad[data_start + 5] ^ 0x10);
  auto file = IndexFile::FromMemory(bad);
  ASSERT_TRUE(file.ok()) << "data pages are verified on read, not parse";

  std::vector<char> buf(page_size);
  const Status read = (*file)->ReadPage(0, buf.data());
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.code(), StatusCode::kCorruptHeader);
  EXPECT_NE(read.message().find("checksum mismatch"), std::string::npos);

  auto backend = FileBackend::FromIndex(*std::move(file), 2,
                                        EvictionPolicy::kLru);
  FetchStats io;
  const auto fetched = backend->TryFetch(0, &io);
  ASSERT_FALSE(fetched.ok());
  EXPECT_EQ(fetched.status().code(), StatusCode::kCorruptHeader);

  // Unchecked fetch path: invalid handle + latched error.
  EXPECT_TRUE(backend->error().ok());
  const SeriesHandle h = backend->Fetch(0, &io);
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(backend->error().ok());
}

TEST(StorageFormatTest, WriterValidatesShapesAndPageSize) {
  const Dataset ds = MakeDataset(3, 16);
  const std::string path = TempPath("invalid");

  IndexBuildOptions tiny_pages;
  tiny_pages.page_size_bytes = 32;  // below kMinPageSize
  EXPECT_EQ(BuildIndexFile(ds, tiny_pages, path).code(),
            StatusCode::kInvalidArgument);

  IndexBuildOptions sig_too_wide;
  sig_too_wide.sig_dims = 9;  // only n/2 = 8 spectral coefficients exist
  EXPECT_EQ(BuildIndexFile(ds, sig_too_wide, path).code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(BuildIndexFile(Dataset{}, IndexBuildOptions{}, path).code(),
            StatusCode::kInvalidArgument);

  Dataset ragged = ds;
  ragged.items[1].pop_back();
  EXPECT_EQ(BuildIndexFile(ragged, IndexBuildOptions{}, path).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

/// Overwrites the little-endian u64 at `off`.
void PatchU64(std::string& image, std::size_t off, std::uint64_t v) {
  std::memcpy(&image[off], &v, sizeof v);
}

/// Recomputes the base-header checksum after a deliberate field edit, so a
/// test exercises the semantic check behind the checksum rather than the
/// checksum itself.
void FixBaseHeaderChecksum(std::string& image) {
  PatchU64(image, kIndexHeaderBytes - 8,
           Fnv1a64(image.data(), kIndexHeaderBytes - 8));
}

/// Same for the v2 extension header at bytes [64, 128).
void FixExtHeaderChecksum(std::string& image) {
  PatchU64(image, kIndexHeaderBytes + kIndexExtHeaderBytes - 8,
           Fnv1a64(image.data() + kIndexHeaderBytes,
                   kIndexExtHeaderBytes - 8));
}

TEST(StorageFormatTest, V2RoundtripPreservesRiSignatures) {
  const Dataset ds = MakeDataset(6, 24);
  const std::string path = TempPath("v2roundtrip");
  IndexBuildOptions build;
  build.sig_dims = 4;
  build.paa_dims = 4;
  build.ri_dims = 6;
  build.page_size_bytes = 64;
  ASSERT_TRUE(BuildIndexFile(ds, build, path).ok());
  const std::string image = ReadAll(path);
  std::remove(path.c_str());

  EXPECT_EQ(static_cast<unsigned char>(image[4]), kIndexVersion);
  auto file = IndexFile::FromMemory(image);
  ASSERT_TRUE(file.ok()) << file.status().message();
  ASSERT_EQ((*file)->ri_dims(), 6u);
  ASSERT_EQ((*file)->ri_signatures().size(), ds.size() * 6u);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const VecSignature ri = MakeVecSignature(ds.items[i], 6);
    for (std::size_t d = 0; d < 6; ++d) {
      EXPECT_EQ((*file)->ri_signatures()[i * 6 + d], ri.values[d])
          << "object " << i << " dim " << d;
    }
  }
}

/// The writer emits the OLDEST version that can represent the payload: no
/// RI section means a version-1 container whose resident region starts at
/// byte 64, exactly like files written before v2 existed.
TEST(StorageFormatTest, WriterWithoutRiSectionEmitsVersion1) {
  const std::string path = TempPath("v1compat");
  IndexBuildOptions build;
  build.sig_dims = 4;
  build.paa_dims = 4;
  build.ri_dims = 0;
  build.page_size_bytes = 64;
  ASSERT_TRUE(BuildIndexFile(MakeDataset(5, 24), build, path).ok());
  const std::string image = ReadAll(path);
  std::remove(path.c_str());

  EXPECT_EQ(static_cast<unsigned char>(image[4]), kIndexVersionV1);
  auto file = IndexFile::FromMemory(image);
  ASSERT_TRUE(file.ok()) << file.status().message();
  EXPECT_EQ((*file)->ri_dims(), 0u);
  EXPECT_TRUE((*file)->ri_signatures().empty());

  // v1 resident region starts right after the 64-byte header: a flip there
  // must land in the catalog, not in any extension header.
  std::string bad = image;
  bad[kIndexHeaderBytes + 3] =
      static_cast<char>(bad[kIndexHeaderBytes + 3] ^ 0x40);
  const auto parsed = IndexFile::FromMemory(bad);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("catalog"), std::string::npos)
      << parsed.status().message();
}

TEST(StorageFormatTest, BuilderClampsRiDimsToHalfLength) {
  const std::string path = TempPath("riclamp");
  IndexBuildOptions build;  // default ri_dims = 8, but n/2 = 4 here
  build.sig_dims = 4;
  build.paa_dims = 4;
  build.page_size_bytes = 64;
  ASSERT_TRUE(BuildIndexFile(MakeDataset(4, 8), build, path).ok());
  auto file = IndexFile::Open(path);
  std::remove(path.c_str());
  ASSERT_TRUE(file.ok()) << file.status().message();
  EXPECT_EQ((*file)->ri_dims(), 4u);
}

TEST(StorageFormatTest, ExtensionHeaderCorruptionTaxonomy) {
  const std::string image = BuildImage(5, 24, 64);  // v2: default ri_dims
  ASSERT_EQ(static_cast<unsigned char>(image[4]), kIndexVersion);

  {
    // Any byte flip inside the extension header trips its checksum.
    std::string bad = image;
    bad[kIndexHeaderBytes] = static_cast<char>(bad[kIndexHeaderBytes] ^ 0x01);
    const auto parsed = IndexFile::FromMemory(bad);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kCorruptHeader);
    EXPECT_NE(parsed.status().message().find("extension header checksum"),
              std::string::npos)
        << parsed.status().message();
  }
  {
    // A nonzero reserved byte is rejected even under a VALID checksum, so a
    // future version can assign the bytes meaning without v2 readers
    // silently accepting the result.
    std::string bad = image;
    bad[kIndexHeaderBytes + 8] = 1;
    FixExtHeaderChecksum(bad);
    const auto parsed = IndexFile::FromMemory(bad);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kCorruptHeader);
    EXPECT_NE(parsed.status().message().find("reserved"), std::string::npos)
        << parsed.status().message();
  }
  {
    // RI flag set but ri_dims zero: internally inconsistent.
    std::string bad = image;
    PatchU64(bad, kIndexHeaderBytes, 0);  // ri_dims field
    FixExtHeaderChecksum(bad);
    const auto parsed = IndexFile::FromMemory(bad);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kCorruptHeader);
    EXPECT_NE(parsed.status().message().find("disagree"), std::string::npos)
        << parsed.status().message();
  }
  {
    // Truncation inside the extension header is reported as such.
    const auto parsed =
        IndexFile::FromMemory(image.substr(0, kIndexHeaderBytes + 40));
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kTruncated);
  }
}

/// Flag bits are version-gated: a v1 header claiming the v2-only RI section
/// is exactly as corrupt as one claiming any other unknown bit, preserving
/// the pre-v2 reader's rejection behaviour bit-for-bit.
TEST(StorageFormatTest, V1HeaderWithRiFlagIsUnknownFlagCorruption) {
  const std::string path = TempPath("v1flag");
  IndexBuildOptions build;
  build.sig_dims = 4;
  build.paa_dims = 4;
  build.ri_dims = 0;
  build.page_size_bytes = 64;
  ASSERT_TRUE(BuildIndexFile(MakeDataset(5, 24), build, path).ok());
  std::string image = ReadAll(path);
  std::remove(path.c_str());
  ASSERT_EQ(static_cast<unsigned char>(image[4]), kIndexVersionV1);

  std::uint64_t flags = 0;
  std::memcpy(&flags, &image[48], sizeof flags);
  PatchU64(image, 48, flags | kIndexFlagHasRiSig);
  FixBaseHeaderChecksum(image);
  const auto parsed = IndexFile::FromMemory(image);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kCorruptHeader);
  EXPECT_NE(parsed.status().message().find("unknown flag"), std::string::npos)
      << parsed.status().message();
}

TEST(StorageFormatTest, RiSectionCorruptionIsDetected) {
  const std::string image = BuildImage(5, 24, 64);  // v2: default ri_dims
  auto clean = IndexFile::FromMemory(image);
  ASSERT_TRUE(clean.ok()) << clean.status().message();
  const IndexFile& f = **clean;
  ASSERT_GT(f.ri_dims(), 0u);

  // Walk the resident layout to the RI payload: headers, then catalog,
  // page-checksum table, FFT signatures, and PAA summaries, each carrying
  // a trailing u64 checksum.
  std::size_t off = kIndexHeaderBytes + kIndexExtHeaderBytes;
  off += f.num_objects() * 16 + 8;
  off += f.num_pages() * 8 + 8;
  off += f.num_objects() * f.sig_dims() * 8 + 8;
  off += f.num_objects() * f.paa_dims() * 8 + 8;
  const std::size_t payload = f.num_objects() * f.ri_dims() * 8;

  {
    // Bit rot inside the RI payload fails the section checksum at parse.
    std::string bad = image;
    bad[off + 3] = static_cast<char>(bad[off + 3] ^ 0x20);
    const auto parsed = IndexFile::FromMemory(bad);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kCorruptHeader);
    EXPECT_NE(parsed.status().message().find("RI signature section"),
              std::string::npos)
        << parsed.status().message();
  }
  {
    // A NaN row entry under a VALID section checksum is still rejected:
    // non-finite signatures would poison every lower-bound comparison.
    std::string bad = image;
    const double nan = std::numeric_limits<double>::quiet_NaN();
    std::memcpy(&bad[off], &nan, sizeof nan);
    PatchU64(bad, off + payload, Fnv1a64(bad.data() + off, payload));
    const auto parsed = IndexFile::FromMemory(bad);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kBadValue);
    EXPECT_NE(parsed.status().message().find("non-finite RI signature"),
              std::string::npos)
        << parsed.status().message();
  }
}

TEST(StorageFormatTest, OpenMissingFileIsNotFound) {
  const auto file = IndexFile::Open("/nonexistent/rotind.ridx");
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kNotFound);
}

/// The shard-set manifest (RMAN) rides on the same corruption-taxonomy
/// discipline as the RIDX format it points at: a torn or bit-flipped
/// manifest is a TYPED refusal, and the atomic-rename publication protocol
/// means a crash mid-swap leaves the previous generation byte-for-byte
/// loadable. (manifest_test.cc holds the exhaustive taxonomy; this is the
/// storage-format-level contract check.)
TEST(StorageFormatTest, ManifestSharesTheCorruptionTaxonomy) {
  Manifest m;
  m.generation = 3;
  m.shards.push_back(ManifestShard{"shard-0.ridx", 4, 8});
  m.shards.push_back(ManifestShard{"shard-1.ridx", 2, 8});
  const StatusOr<std::string> image = SerializeManifest(m);
  ASSERT_TRUE(image.ok());

  {  // Torn mid-header: kTruncated, same verdict family as RIDX.
    const auto parsed = ParseManifest(image->data(), 10);
    EXPECT_EQ(parsed.status().code(), StatusCode::kTruncated);
  }
  {  // RIDX magic in a manifest slot: kBadMagic, not a parse attempt.
    std::string bad = *image;
    std::memcpy(bad.data(), "RIDX", 4);
    const auto parsed = ParseManifest(bad.data(), bad.size());
    EXPECT_EQ(parsed.status().code(), StatusCode::kBadMagic);
  }
  {  // Body bit-flip: caught by the body checksum as kCorruptHeader.
    std::string bad = *image;
    bad[bad.size() - 12] = static_cast<char>(bad[bad.size() - 12] ^ 0x40);
    const auto parsed = ParseManifest(bad.data(), bad.size());
    EXPECT_EQ(parsed.status().code(), StatusCode::kCorruptHeader);
  }

  // Crash-mid-swap: generation 4's torn temp write must not disturb the
  // published generation 3 image.
  const std::string path = "/tmp/rotind_format_manifest." +
                           std::to_string(::getpid()) + ".rman";
  ASSERT_TRUE(WriteManifest(m, path).ok());
  Manifest next = m;
  next.generation = 4;
  EXPECT_EQ(WriteManifest(next, path, ManifestWriteFault::kTornTempWrite)
                .code(),
            StatusCode::kIoError);
  const StatusOr<Manifest> survivor = LoadManifest(path);
  ASSERT_TRUE(survivor.ok());
  EXPECT_EQ(survivor->generation, 3u);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

}  // namespace
}  // namespace rotind::storage
