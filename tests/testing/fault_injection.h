#ifndef ROTIND_TESTS_TESTING_FAULT_INJECTION_H_
#define ROTIND_TESTS_TESTING_FAULT_INJECTION_H_

#include <string>
#include <vector>

#include "src/core/series.h"
#include "src/core/status.h"

namespace rotind {
namespace testing {

/// One systematically corrupted file image plus the Status code the loader
/// is REQUIRED to reject it with. The expected code restates the loader's
/// documented error contract (serialize.h / DESIGN.md) independently, so
/// the fault-injection test cross-checks implementation against spec.
struct CorruptVariant {
  std::string name;          ///< e.g. "truncate@12", "inflate-count-absurd".
  std::string bytes;         ///< The corrupted file image.
  StatusCode expected_code;  ///< What ParseDataset* must return.
};

/// Serializes `ds` to the binary container format and returns the raw file
/// image (via a temp file; the file is removed). Aborts the calling test is
/// not possible here, so an empty string signals failure.
std::string BinaryImageOf(const Dataset& ds);

/// Produces corrupted variants of a valid binary container image:
/// truncation at (and inside) every section boundary, flipped magic, bumped
/// version, absurd/inflated/zeroed count and length fields, invalid flag
/// bytes, NaN/Inf payload values, an over-cap name length, and trailing
/// garbage. `image` must parse cleanly (checked internally; returns empty
/// on a non-parsing input).
std::vector<CorruptVariant> MakeBinaryCorruptions(const std::string& image);

/// Produces corrupted variants of a valid UCR text image: ragged rows,
/// non-numeric labels and fields, NaN/Inf values, a label-only line, an
/// empty file, and a blank-lines-only file. `text` must parse cleanly.
std::vector<CorruptVariant> MakeUcrCorruptions(const std::string& text);

/// Writes `bytes` to a unique temp file and returns its path.
std::string WriteTempFile(const std::string& name, const std::string& bytes);

}  // namespace testing
}  // namespace rotind

#endif  // ROTIND_TESTS_TESTING_FAULT_INJECTION_H_
