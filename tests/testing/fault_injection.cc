#include "tests/testing/fault_injection.h"

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>

#include "src/io/serialize.h"

namespace rotind {
namespace testing {
namespace {

// Binary container layout (mirrors src/io/serialize.cc — the harness
// restates the format on purpose, as an independent check).
constexpr std::size_t kMagicOffset = 0;
constexpr std::size_t kVersionOffset = 4;
constexpr std::size_t kCountOffset = 8;
constexpr std::size_t kLengthOffset = 16;
constexpr std::size_t kFlagsOffset = 24;
constexpr std::size_t kHeaderBytes = 26;

template <typename T>
T ReadAt(const std::string& image, std::size_t offset) {
  T v{};
  std::memcpy(&v, image.data() + offset, sizeof(T));
  return v;
}

template <typename T>
std::string WithValueAt(std::string image, std::size_t offset, T value) {
  std::memcpy(image.data() + offset, &value, sizeof(T));
  return image;
}

/// The loader's documented verdict for a file truncated to `cut` bytes —
/// the spec of serialize.cc's check order, restated. Headers whose counts
/// could not fit in the observed size AT ALL are corrupt; plausible headers
/// with missing payload/label/name bytes are truncated.
StatusCode ExpectedForTruncation(std::size_t cut, std::uint64_t count,
                                 std::uint64_t length) {
  if (cut < kHeaderBytes) return StatusCode::kTruncated;
  const std::uint64_t remaining = cut - kHeaderBytes;
  if (count == 0) return StatusCode::kEmptyDataset;
  if (length == 0) return StatusCode::kCorruptHeader;
  if (length > remaining / sizeof(double)) return StatusCode::kCorruptHeader;
  if (count > remaining / sizeof(double)) return StatusCode::kCorruptHeader;
  if (count * length * sizeof(double) > remaining) {
    return StatusCode::kTruncated;
  }
  return StatusCode::kTruncated;  // short label/name sections
}

}  // namespace

std::string BinaryImageOf(const Dataset& ds) {
  const std::string path = WriteTempFile("rotind_fi_image.bin", "");
  if (!SaveDatasetBinaryStatus(ds, path).ok()) return "";
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  return bytes;
}

std::vector<CorruptVariant> MakeBinaryCorruptions(const std::string& image) {
  std::vector<CorruptVariant> out;
  if (!ParseDatasetBinary(image.data(), image.size()).ok()) return out;

  const auto count = ReadAt<std::uint64_t>(image, kCountOffset);
  const auto length = ReadAt<std::uint64_t>(image, kLengthOffset);
  const auto has_labels = ReadAt<std::uint8_t>(image, kFlagsOffset);
  const auto has_names = ReadAt<std::uint8_t>(image, kFlagsOffset + 1);
  const std::size_t payload_end =
      kHeaderBytes + static_cast<std::size_t>(count * length * sizeof(double));
  const std::size_t labels_end =
      payload_end + (has_labels != 0 ? static_cast<std::size_t>(count) * 4 : 0);

  // --- Truncation at and inside every section boundary ------------------
  std::vector<std::size_t> cuts = {
      0,                              // empty file
      2,                              // mid-magic
      4,                              // after magic, no version
      6,                              // mid-version
      kCountOffset,                   // after version
      kCountOffset + 4,               // mid-count
      kLengthOffset,                  // after count
      kLengthOffset + 4,              // mid-length
      kFlagsOffset,                   // after length, no flags
      kFlagsOffset + 1,               // one flag byte short
      kHeaderBytes,                   // bare header, zero payload bytes
      kHeaderBytes + sizeof(double),  // one value of the first row
      kHeaderBytes +
          static_cast<std::size_t>(length) * sizeof(double),  // first row only
      kHeaderBytes + (payload_end - kHeaderBytes) / 2,        // mid-payload
      payload_end - 1,                // one byte short of full payload
      image.size() - 1,               // one byte short of the full file
  };
  if (has_labels != 0) {
    cuts.push_back(payload_end);      // payload complete, labels missing
    cuts.push_back(payload_end + 2);  // mid-label
  }
  if (has_names != 0) {
    cuts.push_back(labels_end);       // labels complete, names missing
    cuts.push_back(labels_end + 2);   // mid name-length field
  }
  for (std::size_t cut : cuts) {
    if (cut >= image.size()) continue;  // not a truncation of this image
    out.push_back({"truncate@" + std::to_string(cut), image.substr(0, cut),
                   ExpectedForTruncation(cut, count, length)});
  }

  // --- Header field corruption ------------------------------------------
  {
    std::string bytes = image;
    bytes[kMagicOffset] = 'X';
    out.push_back({"flip-magic", std::move(bytes), StatusCode::kBadMagic});
  }
  out.push_back({"version-bump",
                 WithValueAt<std::uint32_t>(
                     image, kVersionOffset,
                     ReadAt<std::uint32_t>(image, kVersionOffset) + 1),
                 StatusCode::kVersionMismatch});
  out.push_back({"inflate-count-absurd",
                 WithValueAt<std::uint64_t>(image, kCountOffset,
                                            std::uint64_t{1} << 60),
                 StatusCode::kCorruptHeader});
  out.push_back({"inflate-count-2x",
                 WithValueAt<std::uint64_t>(image, kCountOffset, count * 2),
                 StatusCode::kTruncated});
  out.push_back({"inflate-length-absurd",
                 WithValueAt<std::uint64_t>(image, kLengthOffset,
                                            std::uint64_t{1} << 60),
                 StatusCode::kCorruptHeader});
  out.push_back({"zero-length",
                 WithValueAt<std::uint64_t>(image, kLengthOffset, 0),
                 StatusCode::kCorruptHeader});
  out.push_back({"zero-count",
                 WithValueAt<std::uint64_t>(image, kCountOffset, 0),
                 StatusCode::kEmptyDataset});
  out.push_back({"invalid-flag",
                 WithValueAt<std::uint8_t>(image, kFlagsOffset, 7),
                 StatusCode::kCorruptHeader});

  // --- Payload corruption ------------------------------------------------
  out.push_back(
      {"nan-payload",
       WithValueAt<double>(image, kHeaderBytes,
                           std::numeric_limits<double>::quiet_NaN()),
       StatusCode::kBadValue});
  out.push_back({"inf-payload",
                 WithValueAt<double>(image, payload_end - sizeof(double),
                                     std::numeric_limits<double>::infinity()),
                 StatusCode::kBadValue});
  if (has_names != 0) {
    out.push_back({"name-length-overcap",
                   WithValueAt<std::uint32_t>(image, labels_end, 0x7FFFFFFFu),
                   StatusCode::kCorruptHeader});
  }
  out.push_back({"trailing-garbage", image + std::string(16, '\xAB'),
                 StatusCode::kCorruptHeader});
  return out;
}

std::vector<CorruptVariant> MakeUcrCorruptions(const std::string& text) {
  std::vector<CorruptVariant> out;
  StatusOr<Dataset> parsed = ParseDatasetUcr(text);
  if (!parsed.ok()) return out;
  const std::size_t width = parsed->length();

  // A row one value short of the established width.
  std::string short_row = "9";
  for (std::size_t i = 0; i + 1 < width; ++i) short_row += ",0.0";
  out.push_back({"ragged-row", text + short_row + "\n",
                 StatusCode::kRaggedRow});
  out.push_back({"non-numeric-label", text + "zebra,1.0\n",
                 StatusCode::kParseError});
  {
    // Garbage in a value field of an otherwise plausible row.
    std::string row = "9,zebra";
    for (std::size_t i = 0; i + 1 < width; ++i) row += ",0.0";
    out.push_back({"non-numeric-field", text + row + "\n",
                   StatusCode::kParseError});
  }
  {
    std::string row = "9,nan";
    for (std::size_t i = 0; i + 1 < width; ++i) row += ",0.0";
    out.push_back({"nan-value", text + row + "\n", StatusCode::kBadValue});
  }
  {
    std::string row = "9,-inf";
    for (std::size_t i = 0; i + 1 < width; ++i) row += ",0.0";
    out.push_back({"inf-value", text + row + "\n", StatusCode::kBadValue});
  }
  out.push_back({"nan-label", text + "nan,1.0\n", StatusCode::kBadValue});
  out.push_back({"label-only-line", text + "5\n", StatusCode::kParseError});
  out.push_back({"empty-file", "", StatusCode::kEmptyDataset});
  out.push_back({"blank-lines-only", "\n \n\t\n\r\n",
                 StatusCode::kEmptyDataset});
  return out;
}

std::string WriteTempFile(const std::string& name, const std::string& bytes) {
  // Uniquify per process and call: ctest runs test cases as parallel
  // processes, and a shared fixed path is a write/read race.
  static std::atomic<int> counter{0};
  const std::string unique =
      std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(counter.fetch_add(1)) + "." + name;
  const std::string path =
      (std::filesystem::temp_directory_path() / unique).string();
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return path;
}

}  // namespace testing
}  // namespace rotind
