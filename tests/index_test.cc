#include "src/index/candidate_scan.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/datasets/synthetic.h"
#include "src/distance/rotation.h"
#include "src/index/disk.h"

namespace rotind {
namespace {

TEST(SimulatedDiskTest, CountsFetchesAndPages) {
  SimulatedDisk disk(/*page_size_bytes=*/64);  // 8 doubles per page
  const int a = disk.Store(Series(8, 1.0));    // 1 page
  const int b = disk.Store(Series(20, 2.0));   // 3 pages (160 bytes)
  EXPECT_EQ(disk.num_objects(), 2u);

  disk.Fetch(a);
  EXPECT_EQ(disk.object_fetches(), 1u);
  EXPECT_EQ(disk.page_reads(), 1u);
  disk.Fetch(b);
  EXPECT_EQ(disk.object_fetches(), 2u);
  EXPECT_EQ(disk.page_reads(), 4u);
  EXPECT_DOUBLE_EQ(disk.FetchFraction(), 1.0);

  disk.ResetCounters();
  EXPECT_EQ(disk.object_fetches(), 0u);
  EXPECT_DOUBLE_EQ(disk.FetchFraction(), 0.0);
}

// Regression: PagesSpanned used to be computed from the series size alone
// (ceil(bytes / page_size)), ignoring where the object starts. A series
// whose byte range straddles a page boundary reads one page more than its
// size implies, exactly as a real paged store would.
TEST(SimulatedDiskTest, PagesSpannedIsOffsetAware) {
  SimulatedDisk disk(/*page_size_bytes=*/4096);
  // 300 doubles = 2400 bytes. Object 0 occupies [0, 2400): page 0 only.
  // Object 1 occupies [2400, 4800): straddles pages 0 and 1 — two pages,
  // where the size-alone formula says ceil(2400/4096) = 1.
  const int first = disk.Store(Series(300, 1.0));
  const int second = disk.Store(Series(300, 2.0));
  EXPECT_EQ(disk.PagesSpanned(first), 1u);
  EXPECT_EQ(disk.PagesSpanned(second), 2u);

  disk.Fetch(second);
  EXPECT_EQ(disk.page_reads(), 2u);
  EXPECT_EQ(disk.object_fetches(), 1u);
}

TEST(SimulatedDiskTest, PeekDoesNotCount) {
  SimulatedDisk disk;
  disk.Store(Series(4, 1.0));
  EXPECT_EQ(disk.Peek(0).size(), 4u);
  EXPECT_EQ(disk.object_fetches(), 0u);
}

// Regression: invalid ids used to be straight UB in release builds (the
// bounds assert compiles out). They must now be rejected (TryFetch/TryPeek)
// or degrade to a shared empty series (Fetch/Peek), with nothing counted.
TEST(SimulatedDiskTest, InvalidIdsAreRejectedNotUndefined) {
  SimulatedDisk disk;
  disk.Store(Series(4, 1.0));
  EXPECT_TRUE(disk.Contains(0));
  EXPECT_FALSE(disk.Contains(-1));
  EXPECT_FALSE(disk.Contains(1));

  EXPECT_EQ(disk.TryFetch(-1).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(disk.TryFetch(1).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(disk.TryPeek(99).status().code(), StatusCode::kOutOfRange);

  EXPECT_TRUE(disk.Fetch(-1).empty());
  EXPECT_TRUE(disk.Peek(1).empty());
  EXPECT_EQ(disk.object_fetches(), 0u);
  EXPECT_EQ(disk.page_reads(), 0u);

  EXPECT_EQ(disk.Fetch(0).size(), 4u);
  EXPECT_EQ(disk.object_fetches(), 1u);
}

class IndexExactnessTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IndexExactnessTest, EuclideanIndexMatchesBruteForce) {
  const std::size_t dims = GetParam();
  const std::size_t n = 64;
  const std::vector<Series> db = MakeProjectilePointsDatabase(80, n, 123);
  RotationInvariantIndex::Options opts;
  opts.dims = dims;
  opts.kind = DistanceKind::kEuclidean;
  RotationInvariantIndex index(db, opts);

  Rng rng(dims);
  for (int trial = 0; trial < 5; ++trial) {
    // Queries: noisy rotations of database members.
    Series q = RotateLeft(db[rng.NextBounded(db.size())],
                          static_cast<long>(rng.NextBounded(n)));
    for (double& v : q) v += rng.Gaussian(0.0, 0.05);
    ZNormalize(&q);

    const RotationInvariantIndex::Result r = index.NearestNeighbor(q);

    double best = std::numeric_limits<double>::infinity();
    int expected = -1;
    for (std::size_t i = 0; i < db.size(); ++i) {
      const double d = RotationInvariantEuclidean(q, db[i]);
      if (d < best) {
        best = d;
        expected = static_cast<int>(i);
      }
    }
    EXPECT_EQ(r.best_index, expected) << "dims=" << dims;
    EXPECT_NEAR(r.best_distance, best, 1e-9);
    EXPECT_LE(r.fetch_fraction, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, IndexExactnessTest,
                         ::testing::Values(4, 8, 16, 32));

TEST(IndexExactnessTest, DtwIndexMatchesBruteForce) {
  const std::size_t n = 48;
  const int band = 3;
  const std::vector<Series> db = MakeProjectilePointsDatabase(50, n, 321);
  RotationInvariantIndex::Options opts;
  opts.dims = 8;
  opts.kind = DistanceKind::kDtw;
  opts.band = band;
  RotationInvariantIndex index(db, opts);

  Rng rng(55);
  for (int trial = 0; trial < 4; ++trial) {
    Series q = RotateLeft(db[rng.NextBounded(db.size())],
                          static_cast<long>(rng.NextBounded(n)));
    for (double& v : q) v += rng.Gaussian(0.0, 0.05);
    ZNormalize(&q);

    const RotationInvariantIndex::Result r = index.NearestNeighbor(q);

    double best = std::numeric_limits<double>::infinity();
    int expected = -1;
    for (std::size_t i = 0; i < db.size(); ++i) {
      const double d = RotationInvariantDtw(q, db[i], band);
      if (d < best) {
        best = d;
        expected = static_cast<int>(i);
      }
    }
    EXPECT_EQ(r.best_index, expected);
    EXPECT_NEAR(r.best_distance, best, 1e-9);
  }
}

TEST(IndexTest, HigherDimsFetchLess) {
  // Figure 24's qualitative shape: fraction retrieved decreases with D.
  const std::size_t n = 64;
  const std::vector<Series> db = MakeProjectilePointsDatabase(300, n, 9);
  Rng rng(10);
  Series q = RotateLeft(db[17], 23);
  for (double& v : q) v += rng.Gaussian(0.0, 0.03);
  ZNormalize(&q);

  double prev_fraction = 1.1;
  int non_improvements = 0;
  for (std::size_t dims : {4u, 16u, 32u}) {
    RotationInvariantIndex::Options opts;
    opts.dims = dims;
    RotationInvariantIndex index(db, opts);
    const auto r = index.NearestNeighbor(q);
    EXPECT_EQ(r.best_index, 17);
    if (r.fetch_fraction > prev_fraction + 1e-12) ++non_improvements;
    prev_fraction = r.fetch_fraction;
  }
  // Allow one non-monotonic step (vantage-point luck), but the trend must
  // hold.
  EXPECT_LE(non_improvements, 1);
}

TEST(IndexTest, MirrorOptionSupported) {
  const std::size_t n = 40;
  std::vector<Series> db = MakeProjectilePointsDatabase(30, n, 77);
  Rng rng(20);
  Series q = Reversed(RotateLeft(db[11], 5));
  ZNormalize(&q);

  RotationInvariantIndex::Options opts;
  opts.dims = 8;
  opts.rotation.mirror = true;
  RotationInvariantIndex index(db, opts);
  const auto r = index.NearestNeighbor(q);
  EXPECT_EQ(r.best_index, 11);
  EXPECT_NEAR(r.best_distance, 0.0, 1e-9);
}

TEST(IndexTest, RepeatedQueriesResetCounters) {
  const std::vector<Series> db = MakeProjectilePointsDatabase(40, 32, 5);
  RotationInvariantIndex::Options opts;
  opts.dims = 8;
  RotationInvariantIndex index(db, opts);
  const auto r1 = index.NearestNeighbor(db[0]);
  const auto r2 = index.NearestNeighbor(db[0]);
  EXPECT_EQ(r1.object_fetches, r2.object_fetches);  // counters reset per query
}

/// Regression: the unchecked constructor silently clamps dims to the n/2
/// spectral coefficients that exist and mis-indexes on ragged databases.
/// Create() turns every such case into a hard kInvalidArgument.
TEST(IndexCreateTest, RejectsEmptyRaggedAndDegenerateDatabases) {
  RotationInvariantIndex::Options opts;
  opts.dims = 8;

  const auto empty = RotationInvariantIndex::Create({}, opts);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);

  std::vector<Series> ragged = MakeProjectilePointsDatabase(10, 32, 6);
  ragged[4].resize(20);
  const auto bad = RotationInvariantIndex::Create(ragged, opts);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("ragged"), std::string::npos);

  const auto tiny =
      RotationInvariantIndex::Create({Series{1.0}, Series{2.0}}, opts);
  EXPECT_FALSE(tiny.ok());
}

TEST(IndexCreateTest, RejectsDimsBeyondTheSpectralCoefficients) {
  const std::vector<Series> db = MakeProjectilePointsDatabase(10, 32, 7);
  RotationInvariantIndex::Options opts;
  opts.kind = DistanceKind::kEuclidean;
  opts.dims = 17;  // > n/2 = 16: the constructor would silently clamp
  const auto clamped = RotationInvariantIndex::Create(db, opts);
  ASSERT_FALSE(clamped.ok());
  EXPECT_EQ(clamped.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(clamped.status().message().find("clamp"), std::string::npos);

  opts.dims = 0;
  EXPECT_FALSE(RotationInvariantIndex::Create(db, opts).ok());
}

TEST(IndexCreateTest, ValidInputMatchesTheUncheckedConstructor) {
  const std::vector<Series> db = MakeProjectilePointsDatabase(30, 32, 8);
  RotationInvariantIndex::Options opts;
  opts.dims = 8;
  const auto created = RotationInvariantIndex::Create(db, opts);
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  RotationInvariantIndex direct(db, opts);
  const auto want = direct.NearestNeighbor(db[3]);
  const auto got = (*created)->NearestNeighbor(db[3]);
  EXPECT_EQ(got.best_index, want.best_index);
  EXPECT_EQ(got.best_distance, want.best_distance);
  EXPECT_EQ(got.counter.total_steps(), want.counter.total_steps());
}

}  // namespace
}  // namespace rotind
