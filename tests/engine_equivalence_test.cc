/// Cross-algorithm equivalence property (the paper's exactness claim,
/// Propositions 1-2): every ScanAlgorithm and every engine cascade
/// composition is EXACT, so on any database they must return the same
/// best distance (and, up to ties, the same index) as brute force — for
/// 1-NN, k-NN, and range queries, under Euclidean and DTW, with and
/// without mirror invariance, on shapes and on light curves.

#include <unistd.h>

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/flat_dataset.h"
#include "src/datasets/synthetic.h"
#include "src/index/index_io.h"
#include "src/index/sharded_index.h"
#include "src/lightcurve/lightcurve.h"
#include "src/search/engine.h"
#include "src/search/scan.h"
#include "src/storage/backend.h"
#include "src/storage/manifest.h"

namespace rotind {
namespace {

struct Workload {
  std::string name;
  std::vector<Series> items;
  std::vector<std::size_t> queries;
};

std::vector<Workload> MakeWorkloads() {
  std::vector<Workload> out;
  out.push_back({"shapes", MakeProjectilePointsDatabase(24, 40, 301),
                 {0, 7, 15}});
  out.push_back(
      {"lightcurves", MakeLightCurveDataset(6, 40, 302).items, {1, 9}});
  out.push_back({"heterogeneous", MakeHeterogeneousDatabase(20, 40, 303),
                 {2, 11}});
  return out;
}

/// All cascade compositions worth checking, beyond the legacy algorithm
/// set: the FFT filter in front of each terminal, including the novel
/// fft+wedge pipeline no ScanAlgorithm could express. Under DTW the
/// unbanded kFullScan computes a genuinely different (unconstrained)
/// distance, so the full-scan terminal is the banded one there.
std::vector<CascadeSpec> MakeCascades(DistanceKind kind) {
  std::vector<CascadeSpec> out;
  out.push_back({{kind == DistanceKind::kDtw ? StageKind::kFullScanBanded
                                             : StageKind::kFullScan}});
  out.push_back({{StageKind::kExactScan}});
  out.push_back({{StageKind::kWedge}});
  out.push_back({{StageKind::kFftMagnitude, StageKind::kExactScan}});
  out.push_back({{StageKind::kFftMagnitude, StageKind::kWedge}});
  // LB_Improved second-chance stage in front of each exact terminal.
  out.push_back({{StageKind::kLbImproved, StageKind::kExactScan}});
  out.push_back({{StageKind::kLbImproved, StageKind::kWedge}});
  // Vec-signature pre-filter (normalization drops it under DTW — the
  // degenerate cascades double as a check that the drop preserves
  // exactness), and the full four-stage pipeline.
  out.push_back({{StageKind::kVecSignature, StageKind::kExactScan}});
  out.push_back({{StageKind::kVecSignature, StageKind::kFftMagnitude,
                  StageKind::kLbImproved, StageKind::kExactScan}});
  if (kind == DistanceKind::kDtw) {
    out.push_back({{StageKind::kLbImproved, StageKind::kFullScanBanded}});
  }
  return out;
}

std::string CascadeName(const CascadeSpec& spec) {
  std::string name;
  for (StageKind s : spec.stages) {
    if (!name.empty()) name += "+";
    switch (s) {
      case StageKind::kFftMagnitude: name += "fft"; break;
      case StageKind::kVecSignature: name += "vecsig"; break;
      case StageKind::kLbImproved: name += "lbi"; break;
      case StageKind::kWedge: name += "wedge"; break;
      case StageKind::kExactScan: name += "ea"; break;
      case StageKind::kFullScan: name += "full"; break;
      case StageKind::kFullScanBanded: name += "full-banded"; break;
    }
  }
  return name;
}

bool HasStage(const CascadeSpec& spec, StageKind kind) {
  for (StageKind s : spec.stages) {
    if (s == kind) return true;
  }
  return false;
}

class EngineEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<DistanceKind, bool>> {};

TEST_P(EngineEquivalenceTest, AllCompositionsAgreeWithBruteForce) {
  const DistanceKind kind = std::get<0>(GetParam());
  const bool mirror = std::get<1>(GetParam());

  for (const Workload& w : MakeWorkloads()) {
    const FlatDataset flat = FlatDataset::FromItems(w.items);

    EngineOptions reference_options;
    reference_options.kind = kind;
    reference_options.band = 4;
    reference_options.rotation.mirror = mirror;
    reference_options.cascade.stages = {kind == DistanceKind::kDtw
                                            ? StageKind::kFullScanBanded
                                            : StageKind::kFullScan};
    const QueryEngine reference(flat, reference_options);

    for (std::size_t qi : w.queries) {
      const Series query = w.items[qi];
      const ScanResult ref = reference.SearchLeaveOneOut(query, qi);
      const auto ref_knn = reference.KnnLeaveOneOut(query, 3, qi);
      ASSERT_EQ(ref_knn.size(), 3u);
      const double radius = ref_knn.back().distance * 1.01;
      const auto ref_range = reference.Range(query, radius);

      for (const CascadeSpec& cascade : MakeCascades(kind)) {
        EngineOptions options = reference_options;
        options.cascade = cascade;
        const QueryEngine engine(flat, options);
        const std::string label = w.name + "/" + DistanceKindName(kind) +
                                  (mirror ? "/mirror" : "") + "/" +
                                  CascadeName(cascade) + "/q" +
                                  std::to_string(qi);

        // 1-NN: same best distance; same index unless tied.
        const ScanResult got = engine.SearchLeaveOneOut(query, qi);
        EXPECT_NEAR(got.best_distance, ref.best_distance, 1e-9) << label;
        // A different winner is only legal at (numerically) the same
        // distance — i.e. a tie; the distance assertion above covers it.

        // k-NN: same multiset of distances, rank by rank.
        const auto knn = engine.KnnLeaveOneOut(query, 3, qi);
        ASSERT_EQ(knn.size(), ref_knn.size()) << label;
        for (std::size_t r = 0; r < knn.size(); ++r) {
          EXPECT_NEAR(knn[r].distance, ref_knn[r].distance, 1e-9)
              << label << " rank " << r;
        }

        // Range: same hit count, same sorted distances.
        const auto range = engine.Range(query, radius);
        ASSERT_EQ(range.size(), ref_range.size()) << label;
        for (std::size_t r = 0; r < range.size(); ++r) {
          EXPECT_NEAR(range[r].distance, ref_range[r].distance, 1e-9)
              << label << " hit " << r;
        }
      }

      // Every legacy ScanAlgorithm, through the public adapter, on a
      // database with the query removed (the adapters' historical shape).
      std::vector<Series> rest;
      for (std::size_t i = 0; i < w.items.size(); ++i) {
        if (i != qi) rest.push_back(w.items[i]);
      }
      std::vector<ScanAlgorithm> algorithms = {
          ScanAlgorithm::kBruteForceBanded, ScanAlgorithm::kEarlyAbandon,
          ScanAlgorithm::kFftLowerBound, ScanAlgorithm::kWedge};
      if (kind != DistanceKind::kDtw) {
        // kBruteForce under DTW is the unconstrained warp — a different
        // value than the banded reference, exact for every other kind.
        algorithms.push_back(ScanAlgorithm::kBruteForce);
      }
      for (ScanAlgorithm algorithm : algorithms) {
        ScanOptions options;
        options.kind = kind;
        options.band = 4;
        options.rotation.mirror = mirror;
        const ScanResult got =
            SearchDatabase(rest, query, algorithm, options);
        EXPECT_NEAR(got.best_distance, ref.best_distance, 1e-9)
            << w.name << "/" << DistanceKindName(kind) << " algorithm "
            << static_cast<int>(algorithm);
      }
    }
  }
}

/// LCSS rides the same cascade: the wedge terminal (similarity-domain
/// pruning with the distance-threshold conversion) must agree with the
/// full rotation scan of 1 - LcssLength/n.
TEST(EngineEquivalenceLcssTest, WedgeCascadeMatchesFullScan) {
  for (bool mirror : {false, true}) {
    const std::vector<Series> items =
        MakeProjectilePointsDatabase(18, 36, 501);
    const FlatDataset flat = FlatDataset::FromItems(items);
    EngineOptions options;
    options.kind = DistanceKind::kLcss;
    options.lcss.epsilon = 0.3;
    options.lcss.delta = 4;
    options.rotation.mirror = mirror;

    EngineOptions full = options;
    full.cascade.stages = {StageKind::kFullScan};
    EngineOptions wedge = options;
    wedge.cascade.stages = {StageKind::kWedge};
    EngineOptions ea = options;
    ea.cascade.stages = {StageKind::kExactScan};

    const QueryEngine full_engine(flat, full);
    const QueryEngine wedge_engine(flat, wedge);
    const QueryEngine ea_engine(flat, ea);
    for (std::size_t qi : {0u, 5u, 11u}) {
      const Series& query = items[qi];
      const ScanResult ref = full_engine.SearchLeaveOneOut(query, qi);
      const ScanResult got_wedge = wedge_engine.SearchLeaveOneOut(query, qi);
      const ScanResult got_ea = ea_engine.SearchLeaveOneOut(query, qi);
      EXPECT_NEAR(got_wedge.best_distance, ref.best_distance, 1e-12)
          << "wedge q" << qi << (mirror ? " mirror" : "");
      EXPECT_NEAR(got_ea.best_distance, ref.best_distance, 1e-12)
          << "ea q" << qi << (mirror ? " mirror" : "");
    }
  }
}

/// Storage backends are invisible to exactness: for every cascade and
/// measure, engines fetching candidates from the simulated-disk backend
/// and from a real paged RIDX file return BIT-IDENTICAL results (same
/// indexes, same distances with ==, same step counts) as the default
/// in-memory borrow — for 1-NN, k-NN, and range queries. This is the
/// acceptance gate for the storage engine: a backend may change I/O
/// accounting, never answers.
class BackendEquivalenceTest
    : public ::testing::TestWithParam<DistanceKind> {};

TEST_P(BackendEquivalenceTest, AllBackendsReturnBitIdenticalResults) {
  const DistanceKind kind = GetParam();
  const std::vector<Series> items =
      MakeProjectilePointsDatabase(20, 36, 601);
  const FlatDataset flat = FlatDataset::FromItems(items);

  Dataset ds;
  ds.items = items;
  IndexBuildOptions build;
  build.sig_dims = 4;
  build.paa_dims = 4;
  build.page_size_bytes = 128;  // 36 doubles = 288 bytes: extents straddle
  const std::string path = "/tmp/rotind_equiv_test." +
                           std::to_string(::getpid()) + ".ridx";
  ASSERT_TRUE(BuildIndexFile(ds, build, path).ok());

  for (const CascadeSpec& cascade : MakeCascades(kind)) {
    EngineOptions options;
    options.kind = kind;
    options.band = 4;
    options.cascade = cascade;

    const QueryEngine memory(flat, options);

    EngineOptions sim_options = options;
    sim_options.storage.backend = storage::BackendKind::kSimulated;
    sim_options.storage.page_size_bytes = 128;
    auto simulated = QueryEngine::Open(sim_options, &flat);
    ASSERT_TRUE(simulated.ok()) << simulated.status().message();

    EngineOptions file_options = options;
    file_options.storage.backend = storage::BackendKind::kFile;
    file_options.storage.index_path = path;
    file_options.storage.pool_pages = 3;  // smaller than any working set
    auto file = QueryEngine::Open(file_options);
    ASSERT_TRUE(file.ok()) << file.status().message();

    const QueryEngine* engines[] = {simulated->get(), file->get()};
    for (const std::size_t qi : {0u, 9u, 17u}) {
      const Series& query = items[qi];
      const ScanResult ref = memory.SearchLeaveOneOut(query, qi);
      const auto ref_knn = memory.KnnLeaveOneOut(query, 3, qi);
      const double radius = ref_knn.back().distance * 1.01;
      const auto ref_range = memory.Range(query, radius);

      for (const QueryEngine* engine : engines) {
        const std::string label =
            std::string(DistanceKindName(kind)) + "/" +
            CascadeName(cascade) + "/" + engine->backend()->name() + "/q" +
            std::to_string(qi);

        const ScanResult got = engine->SearchLeaveOneOut(query, qi);
        EXPECT_EQ(got.best_index, ref.best_index) << label;
        EXPECT_EQ(got.best_distance, ref.best_distance) << label;
        // The vec-signature filter reads stored RIDX v2 rows on the file
        // backend (O(dims) per candidate) but embeds on the fly elsewhere
        // (one FFT per candidate): answers are bit-identical — the stored
        // rows hold the very doubles the embedding recomputes — but step
        // ACCOUNTING legitimately differs, so only that assert is gated.
        const bool steps_comparable =
            !HasStage(cascade, StageKind::kVecSignature);
        if (steps_comparable) {
          EXPECT_EQ(got.counter.total_steps(), ref.counter.total_steps())
              << label;
        }

        const auto knn = engine->KnnLeaveOneOut(query, 3, qi);
        ASSERT_EQ(knn.size(), ref_knn.size()) << label;
        for (std::size_t r = 0; r < knn.size(); ++r) {
          EXPECT_EQ(knn[r].index, ref_knn[r].index) << label << " rank " << r;
          EXPECT_EQ(knn[r].distance, ref_knn[r].distance)
              << label << " rank " << r;
        }

        const auto range = engine->Range(query, radius);
        ASSERT_EQ(range.size(), ref_range.size()) << label;
        for (std::size_t r = 0; r < range.size(); ++r) {
          EXPECT_EQ(range[r].index, ref_range[r].index)
              << label << " hit " << r;
          EXPECT_EQ(range[r].distance, ref_range[r].distance)
              << label << " hit " << r;
        }
      }
    }
  }
  std::remove(path.c_str());
}

/// Sharding is invisible to exactness: a ShardedIndex over ANY shard
/// split of the database — with or without a delta segment and
/// tombstones — answers 1-NN, k-NN, and range queries identically to one
/// monolithic in-memory engine over the same live rows, for every
/// cascade and measure, in both search modes. Serial mode is bit-exact
/// including step counts (one engine over the concatenated view);
/// parallel mode is bit-exact on answers (the SharedBound exchange only
/// tightens pruning) — its step counts legitimately differ with
/// interleaving, and its k-NN index choice could differ from the
/// monolithic heap's only under exact k-th-distance ties, which this
/// tie-free workload does not produce.
class ShardEquivalenceTest : public ::testing::TestWithParam<DistanceKind> {};

TEST_P(ShardEquivalenceTest, ShardedMatchesMonolithicOverLiveRows) {
  const DistanceKind kind = GetParam();
  const std::vector<Series> base = MakeProjectilePointsDatabase(21, 36, 701);
  const std::vector<Series> extra = MakeProjectilePointsDatabase(4, 36, 702);
  const std::string prefix = "/tmp/rotind_shardeq." +
                             std::to_string(::getpid()) + "." +
                             DistanceKindName(kind);
  IndexBuildOptions build;
  build.sig_dims = 4;
  build.paa_dims = 4;
  build.page_size_bytes = 256;

  std::vector<std::string> scratch_files;
  for (const std::size_t shard_count : {1u, 2u, 4u, 7u}) {
    // Uneven contiguous split: the first `extra_rows` shards take one more.
    const std::string manifest_path =
        prefix + ".s" + std::to_string(shard_count) + ".rman";
    scratch_files.push_back(manifest_path);
    storage::Manifest manifest;
    manifest.generation = 1;
    std::size_t row = 0;
    const std::size_t per = base.size() / shard_count;
    const std::size_t extra_rows = base.size() % shard_count;
    for (std::size_t s = 0; s < shard_count; ++s) {
      const std::size_t count = per + (s < extra_rows ? 1 : 0);
      const std::string file = "rotind_shardeq." + std::to_string(::getpid()) +
                               "." + std::string(DistanceKindName(kind)) +
                               ".s" + std::to_string(shard_count) + "." +
                               std::to_string(s) + ".ridx";
      Dataset part;
      part.items.assign(base.begin() + static_cast<std::ptrdiff_t>(row),
                        base.begin() +
                            static_cast<std::ptrdiff_t>(row + count));
      ASSERT_TRUE(BuildIndexFile(part, build, "/tmp/" + file).ok());
      scratch_files.push_back("/tmp/" + file);
      manifest.shards.push_back(storage::ManifestShard{
          file, static_cast<std::uint64_t>(count), 36});
      row += count;
    }
    ASSERT_TRUE(storage::WriteManifest(manifest, manifest_path).ok());

    for (const bool parallel : {false, true}) {
      for (const CascadeSpec& cascade : MakeCascades(kind)) {
        ShardedOptions options;
        options.parallel_search = parallel;
        options.num_threads = 3;
        options.pool_pages = 4;
        options.engine.kind = kind;
        options.engine.band = 4;
        options.engine.cascade = cascade;
        StatusOr<std::unique_ptr<ShardedIndex>> opened =
            ShardedIndex::Open(manifest_path, options);
        ASSERT_TRUE(opened.ok()) << opened.status().ToString();
        ShardedIndex& index = **opened;

        // Three cumulative mutation stages: pristine shards, plus delta
        // inserts, plus tombstones over both shard and delta rows.
        std::vector<Series> all_rows = base;
        std::vector<bool> dead(base.size(), false);
        for (int stage = 0; stage < 3; ++stage) {
          if (stage == 1) {
            for (const Series& s : extra) {
              ASSERT_TRUE(index.Insert(s).ok());
              all_rows.push_back(s);
              dead.push_back(false);
            }
          } else if (stage == 2) {
            for (const std::uint64_t id : {3u, 15u, 22u}) {
              ASSERT_TRUE(index.Remove(id).ok());
              dead[id] = true;
            }
          }

          // Monolithic reference over the live rows, ordinal order.
          std::vector<Series> live;
          std::vector<int> live_ids;
          for (std::size_t i = 0; i < all_rows.size(); ++i) {
            if (dead[i]) continue;
            live.push_back(all_rows[i]);
            live_ids.push_back(static_cast<int>(i));
          }
          const FlatDataset flat = FlatDataset::FromItems(live);
          const QueryEngine reference(flat, options.engine);

          for (const std::size_t qi : {2u, 13u}) {
            const Series& query = base[qi];
            const std::string label =
                std::string(DistanceKindName(kind)) + "/s" +
                std::to_string(shard_count) +
                (parallel ? "/parallel" : "/serial") + "/" +
                CascadeName(cascade) + "/stage" + std::to_string(stage) +
                "/q" + std::to_string(qi);

            const ScanResult ref = reference.Search(query);
            StatusOr<ScanResult> got = index.Search(query);
            ASSERT_TRUE(got.ok()) << label;
            ASSERT_GE(ref.best_index, 0) << label;
            EXPECT_EQ(got->best_index, live_ids[static_cast<std::size_t>(
                                           ref.best_index)])
                << label;
            EXPECT_EQ(got->best_distance, ref.best_distance) << label;
            if (!parallel) {
              EXPECT_EQ(got->counter.total_steps(),
                        ref.counter.total_steps())
                  << label;
            }

            const auto ref_knn = reference.Knn(query, 3);
            StatusOr<std::vector<Neighbor>> knn = index.Knn(query, 3);
            ASSERT_TRUE(knn.ok()) << label;
            ASSERT_EQ(knn->size(), ref_knn.size()) << label;
            for (std::size_t r = 0; r < knn->size(); ++r) {
              EXPECT_EQ((*knn)[r].index,
                        live_ids[static_cast<std::size_t>(ref_knn[r].index)])
                  << label << " rank " << r;
              EXPECT_EQ((*knn)[r].distance, ref_knn[r].distance)
                  << label << " rank " << r;
            }

            const double radius = ref_knn.back().distance * 1.01;
            const auto ref_range = reference.Range(query, radius);
            StatusOr<std::vector<Neighbor>> range =
                index.Range(query, radius);
            ASSERT_TRUE(range.ok()) << label;
            ASSERT_EQ(range->size(), ref_range.size()) << label;
            for (std::size_t r = 0; r < range->size(); ++r) {
              EXPECT_EQ((*range)[r].index,
                        live_ids[static_cast<std::size_t>(
                            ref_range[r].index)])
                  << label << " hit " << r;
              EXPECT_EQ((*range)[r].distance, ref_range[r].distance)
                  << label << " hit " << r;
            }
          }
        }
      }
    }
  }
  for (const std::string& path : scratch_files) std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Kinds, ShardEquivalenceTest,
                         ::testing::Values(DistanceKind::kEuclidean,
                                           DistanceKind::kDtw),
                         [](const ::testing::TestParamInfo<DistanceKind>& p) {
                           return std::string(DistanceKindName(p.param));
                         });

INSTANTIATE_TEST_SUITE_P(Kinds, BackendEquivalenceTest,
                         ::testing::Values(DistanceKind::kEuclidean,
                                           DistanceKind::kDtw),
                         [](const ::testing::TestParamInfo<DistanceKind>& p) {
                           return std::string(DistanceKindName(p.param));
                         });

INSTANTIATE_TEST_SUITE_P(
    KindsAndMirror, EngineEquivalenceTest,
    ::testing::Combine(::testing::Values(DistanceKind::kEuclidean,
                                         DistanceKind::kDtw),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<DistanceKind, bool>>& p) {
      std::string name = DistanceKindName(std::get<0>(p.param));
      name += std::get<1>(p.param) ? "_mirror" : "_plain";
      return name;
    });

}  // namespace
}  // namespace rotind
