#include "src/index/paa.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/distance/dtw.h"
#include "src/distance/euclidean.h"
#include "src/envelope/lower_bound.h"

namespace rotind {
namespace {

Series RandomSeries(Rng* rng, std::size_t n) {
  Series s(n);
  for (double& v : s) v = rng->Gaussian(0.0, 1.0);
  return s;
}

TEST(PaaTest, MeansOfEqualSegments) {
  const Series s = {1.0, 3.0, 5.0, 7.0};
  const PaaPoint p = PaaTransform(s, 2);
  ASSERT_EQ(p.dims(), 2u);
  EXPECT_DOUBLE_EQ(p.values[0], 2.0);
  EXPECT_DOUBLE_EQ(p.values[1], 6.0);
}

TEST(PaaTest, FullDimsIsIdentity) {
  const Series s = {1.0, -2.0, 3.5};
  const PaaPoint p = PaaTransform(s, 3);
  EXPECT_EQ(p.values, s);
}

TEST(PaaTest, UnevenSegmentsCoverAllPoints) {
  const Series s = {1.0, 2.0, 3.0, 4.0, 5.0};  // 5 points, 2 segments
  const PaaPoint p = PaaTransform(s, 2);
  // Segments [0,2) and [2,5).
  EXPECT_DOUBLE_EQ(p.values[0], 1.5);
  EXPECT_DOUBLE_EQ(p.values[1], 4.0);
}

TEST(PaaEnvelopeTest, SegmentExtremes) {
  Envelope env;
  env.upper = {1.0, 5.0, 2.0, 3.0};
  env.lower = {-1.0, 0.0, -4.0, 1.0};
  const PaaEnvelope reduced = PaaReduceEnvelope(env, 2);
  EXPECT_DOUBLE_EQ(reduced.upper[0], 5.0);
  EXPECT_DOUBLE_EQ(reduced.upper[1], 3.0);
  EXPECT_DOUBLE_EQ(reduced.lower[0], -1.0);
  EXPECT_DOUBLE_EQ(reduced.lower[1], -4.0);
  EXPECT_EQ(reduced.segment_sizes, (std::vector<std::size_t>{2, 2}));
}

/// The chain LB_PAA <= LB_Keogh <= ED/DTW must hold for every
/// dimensionality — this is what makes the DTW index path exact.
class LbPaaChainTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LbPaaChainTest, LbPaaBelowLbKeoghBelowEuclidean) {
  const std::size_t dims = GetParam();
  Rng rng(dims * 13 + 1);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = std::max<std::size_t>(dims, 16 + rng.NextBounded(80));
    Envelope env = Envelope::FromSeries(RandomSeries(&rng, n));
    for (int m = 0; m < 4; ++m) {
      env.MergeSeries(RandomSeries(&rng, n).data(), n);
    }
    const Series c = RandomSeries(&rng, n);
    const double lb_keogh = LbKeogh(c.data(), env);
    const double lb_paa = LbPaa(PaaTransform(c, dims),
                                PaaReduceEnvelope(env, dims));
    EXPECT_LE(lb_paa, lb_keogh + 1e-9) << "n=" << n << " dims=" << dims;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, LbPaaChainTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

TEST(LbPaaTest, LowerBoundsBandedDtwThroughExpandedEnvelope) {
  Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 24 + rng.NextBounded(40);
    const int band = 1 + static_cast<int>(rng.NextBounded(5));
    const Series member = RandomSeries(&rng, n);
    const Envelope env =
        Envelope::FromSeries(member).ExpandedForDtw(band);
    const Series c = RandomSeries(&rng, n);
    const double dtw = DtwDistance(c.data(), member.data(), n, band);
    for (std::size_t dims : {4u, 8u, 16u}) {
      const double lb =
          LbPaa(PaaTransform(c, dims), PaaReduceEnvelope(env, dims));
      EXPECT_LE(lb, dtw + 1e-9) << "dims=" << dims << " band=" << band;
    }
  }
}

TEST(LbPaaTest, ZeroInsideEnvelope) {
  Envelope env;
  env.upper = Series(16, 1.0);
  env.lower = Series(16, -1.0);
  const Series c(16, 0.0);
  EXPECT_DOUBLE_EQ(LbPaa(PaaTransform(c, 4), PaaReduceEnvelope(env, 4)), 0.0);
}

TEST(LbPaaTest, KnownValueOutsideEnvelope) {
  Envelope env;
  env.upper = Series(8, 1.0);
  env.lower = Series(8, -1.0);
  const Series c(8, 3.0);  // 2 above the upper everywhere
  // Each of 4 segments: 2 points * (3-1)^2 = 8; total 32; sqrt = ~5.657.
  EXPECT_NEAR(LbPaa(PaaTransform(c, 4), PaaReduceEnvelope(env, 4)),
              std::sqrt(32.0), 1e-12);
}

TEST(LbPaaTest, MoreDimsNeverLoosen) {
  Rng rng(10);
  const std::size_t n = 64;
  Envelope env = Envelope::FromSeries(RandomSeries(&rng, n));
  env.MergeSeries(RandomSeries(&rng, n).data(), n);
  const Series c = RandomSeries(&rng, n);
  double prev = 0.0;
  for (std::size_t dims : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const double lb =
        LbPaa(PaaTransform(c, dims), PaaReduceEnvelope(env, dims));
    EXPECT_GE(lb, prev - 1e-9) << "dims=" << dims;
    prev = lb;
  }
}

}  // namespace
}  // namespace rotind
