/// Shard-set manifest (RMAN): serialize/parse roundtrip fidelity, the
/// corruption taxonomy (truncation, bad magic, checksum, version, count
/// absurdities, trailing bytes), writer-side validation, and the
/// crash-safety contract of WriteManifest — a writer killed between the
/// temp write and the rename must leave the previous generation loadable.

#include "src/storage/manifest.h"

#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/status.h"
#include "src/io/bytes.h"

namespace rotind::storage {
namespace {

std::string TempPath(const char* tag) {
  return "/tmp/rotind_manifest_test." + std::to_string(::getpid()) + "." +
         tag + ".rman";
}

Manifest MakeManifest() {
  Manifest m;
  m.generation = 7;
  m.shards.push_back(ManifestShard{"shard-0.ridx", 5, 16});
  m.shards.push_back(ManifestShard{"shard-1.ridx", 3, 16});
  m.shards.push_back(ManifestShard{"shard-g6.ridx", 2, 16});
  m.tombstones = {0, 4, 9};
  return m;
}

std::string MustSerialize(const Manifest& m) {
  StatusOr<std::string> image = SerializeManifest(m);
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  return image.ok() ? *image : std::string();
}

TEST(ManifestTest, RoundtripPreservesEveryField) {
  const Manifest m = MakeManifest();
  const std::string image = MustSerialize(m);
  StatusOr<Manifest> parsed = ParseManifest(image.data(), image.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->generation, 7u);
  ASSERT_EQ(parsed->shards.size(), 3u);
  EXPECT_EQ(parsed->shards[0].file, "shard-0.ridx");
  EXPECT_EQ(parsed->shards[0].count, 5u);
  EXPECT_EQ(parsed->shards[2].file, "shard-g6.ridx");
  EXPECT_EQ(parsed->shards[2].length, 16u);
  EXPECT_EQ(parsed->tombstones, (std::vector<std::uint64_t>{0, 4, 9}));
  EXPECT_EQ(parsed->total_count(), 10u);
}

TEST(ManifestTest, EmptyTombstoneListRoundtrips) {
  Manifest m = MakeManifest();
  m.tombstones.clear();
  const std::string image = MustSerialize(m);
  StatusOr<Manifest> parsed = ParseManifest(image.data(), image.size());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->tombstones.empty());
}

/// Every proper prefix of a valid image must be a typed error — never a
/// crash, never a silently-parsed partial manifest.
TEST(ManifestTest, EveryTruncationIsTypedNeverAccepted) {
  const std::string image = MustSerialize(MakeManifest());
  for (std::size_t cut = 0; cut < image.size(); ++cut) {
    StatusOr<Manifest> parsed = ParseManifest(image.data(), cut);
    ASSERT_FALSE(parsed.ok()) << "prefix of " << cut << " bytes parsed";
    const StatusCode code = parsed.status().code();
    EXPECT_TRUE(code == StatusCode::kTruncated ||
                code == StatusCode::kBadMagic ||
                code == StatusCode::kCorruptHeader)
        << "prefix " << cut << ": " << parsed.status().ToString();
  }
}

TEST(ManifestTest, CorruptionTaxonomy) {
  const std::string image = MustSerialize(MakeManifest());

  {  // Wrong magic.
    std::string bad = image;
    bad[0] = 'X';
    StatusOr<Manifest> parsed = ParseManifest(bad.data(), bad.size());
    EXPECT_EQ(parsed.status().code(), StatusCode::kBadMagic);
  }
  {  // A flipped generation byte breaks the header checksum FIRST —
     // corruption must not masquerade as a plausible other generation.
    std::string bad = image;
    bad[8] = static_cast<char>(bad[8] ^ 0x01);
    StatusOr<Manifest> parsed = ParseManifest(bad.data(), bad.size());
    EXPECT_EQ(parsed.status().code(), StatusCode::kCorruptHeader);
  }
  {  // Version check runs under an intact checksum: rewrite version AND
     // recompute the checksum to isolate the version verdict.
    std::string bad = image;
    const std::uint32_t version = 99;
    std::memcpy(bad.data() + 4, &version, sizeof version);
    const std::uint64_t checksum =
        Fnv1a64(bad.data(), kManifestHeaderBytes - sizeof(std::uint64_t));
    std::memcpy(bad.data() + kManifestHeaderBytes - sizeof(std::uint64_t),
                &checksum, sizeof checksum);
    StatusOr<Manifest> parsed = ParseManifest(bad.data(), bad.size());
    EXPECT_EQ(parsed.status().code(), StatusCode::kVersionMismatch);
  }
  {  // Body corruption: flip a shard-name byte.
    std::string bad = image;
    bad[kManifestHeaderBytes + 5] =
        static_cast<char>(bad[kManifestHeaderBytes + 5] ^ 0xFF);
    StatusOr<Manifest> parsed = ParseManifest(bad.data(), bad.size());
    EXPECT_EQ(parsed.status().code(), StatusCode::kCorruptHeader);
  }
  {  // Trailing bytes after the body checksum.
    const std::string bad = image + "x";
    StatusOr<Manifest> parsed = ParseManifest(bad.data(), bad.size());
    EXPECT_EQ(parsed.status().code(), StatusCode::kCorruptHeader);
  }
  {  // Empty input.
    StatusOr<Manifest> parsed = ParseManifest(image.data(), 0);
    EXPECT_EQ(parsed.status().code(), StatusCode::kTruncated);
  }
}

/// Every single-byte flip anywhere in the image must be caught by one of
/// the two checksums (or an earlier structural check).
TEST(ManifestTest, EverySingleByteFlipIsDetected) {
  const std::string image = MustSerialize(MakeManifest());
  for (std::size_t i = 0; i < image.size(); ++i) {
    std::string bad = image;
    bad[i] = static_cast<char>(bad[i] ^ 0xFF);
    StatusOr<Manifest> parsed = ParseManifest(bad.data(), bad.size());
    EXPECT_FALSE(parsed.ok()) << "flip at byte " << i << " went undetected";
  }
}

/// A checksum-valid shard count the file cannot physically hold (each
/// entry costs at least 21 body bytes) must be rejected before the parser
/// reserves for it — a ~100-byte image must not drive a megabyte-scale
/// allocation.
TEST(ManifestTest, ShardCountBeyondFileSizeIsRejectedBeforeAllocation) {
  std::string image = MustSerialize(MakeManifest());
  const std::uint64_t huge = 1u << 19;  // under kMaxManifestShards
  std::memcpy(image.data() + 16, &huge, sizeof huge);
  const std::uint64_t checksum =
      Fnv1a64(image.data(), kManifestHeaderBytes - sizeof(std::uint64_t));
  std::memcpy(image.data() + kManifestHeaderBytes - sizeof(std::uint64_t),
              &checksum, sizeof checksum);
  StatusOr<Manifest> parsed = ParseManifest(image.data(), image.size());
  EXPECT_EQ(parsed.status().code(), StatusCode::kCorruptHeader);
}

TEST(ManifestTest, WriterRefusesInvalidManifests) {
  {  // Shard name with a path separator.
    Manifest m = MakeManifest();
    m.shards[1].file = "../escape.ridx";
    EXPECT_FALSE(SerializeManifest(m).ok());
  }
  {  // Zero-count shard.
    Manifest m = MakeManifest();
    m.shards[0].count = 0;
    EXPECT_FALSE(SerializeManifest(m).ok());
  }
  {  // Shards disagreeing on series length.
    Manifest m = MakeManifest();
    m.shards[2].length = 32;
    EXPECT_FALSE(SerializeManifest(m).ok());
  }
  {  // Tombstone outside the shard-row id space.
    Manifest m = MakeManifest();
    m.tombstones = {10};
    EXPECT_FALSE(SerializeManifest(m).ok());
  }
  {  // Tombstones not strictly ascending.
    Manifest m = MakeManifest();
    m.tombstones = {4, 4};
    EXPECT_FALSE(SerializeManifest(m).ok());
  }
}

TEST(ManifestTest, WriteLoadRoundtripThroughDisk) {
  const std::string path = TempPath("roundtrip");
  const Manifest m = MakeManifest();
  ASSERT_TRUE(WriteManifest(m, path).ok());
  StatusOr<Manifest> loaded = LoadManifest(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->generation, m.generation);
  EXPECT_EQ(loaded->shards.size(), m.shards.size());
  std::remove(path.c_str());
}

TEST(ManifestTest, LoadMissingFileIsNotFound) {
  StatusOr<Manifest> loaded = LoadManifest(TempPath("nonexistent"));
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

/// The crash-safety contract: a writer that dies mid-temp-write (torn
/// image in the .tmp file, rename never ran) leaves the previously
/// published generation byte-for-byte intact and loadable.
TEST(ManifestTest, TornTempWriteLeavesPreviousGenerationLoadable) {
  const std::string path = TempPath("torn");
  Manifest gen1 = MakeManifest();
  gen1.generation = 1;
  ASSERT_TRUE(WriteManifest(gen1, path).ok());

  Manifest gen2 = MakeManifest();
  gen2.generation = 2;
  const Status crashed =
      WriteManifest(gen2, path, ManifestWriteFault::kTornTempWrite);
  EXPECT_EQ(crashed.code(), StatusCode::kIoError);

  StatusOr<Manifest> survivor = LoadManifest(path);
  ASSERT_TRUE(survivor.ok()) << survivor.status().ToString();
  EXPECT_EQ(survivor->generation, 1u);
  // And the torn temp image itself must parse as a typed error, not a
  // manifest (a recovery scan must not adopt it).
  StatusOr<std::string> torn = ReadFileToString(path + ".tmp");
  ASSERT_TRUE(torn.ok());
  EXPECT_FALSE(ParseManifest(torn->data(), torn->size()).ok());
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

/// Crash AFTER the complete temp write but BEFORE the rename: the new
/// generation was never published; the old one still serves. A retry of
/// the same write (the recovery path) then publishes cleanly.
TEST(ManifestTest, CrashBeforeRenameNeverPublishesThenRetrySucceeds) {
  const std::string path = TempPath("prerename");
  Manifest gen1 = MakeManifest();
  gen1.generation = 1;
  ASSERT_TRUE(WriteManifest(gen1, path).ok());

  Manifest gen2 = MakeManifest();
  gen2.generation = 2;
  const Status crashed =
      WriteManifest(gen2, path, ManifestWriteFault::kCrashBeforeRename);
  EXPECT_EQ(crashed.code(), StatusCode::kIoError);

  StatusOr<Manifest> before_retry = LoadManifest(path);
  ASSERT_TRUE(before_retry.ok());
  EXPECT_EQ(before_retry->generation, 1u);

  ASSERT_TRUE(WriteManifest(gen2, path).ok());
  StatusOr<Manifest> after_retry = LoadManifest(path);
  ASSERT_TRUE(after_retry.ok());
  EXPECT_EQ(after_retry->generation, 2u);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

/// Durable-publication smoke test: the fsync'd write path and directory
/// sync succeed on a real filesystem, and a missing directory surfaces as
/// a typed error (power loss itself cannot be unit-tested; the contract
/// is that the sync syscalls are issued and their failures surface).
TEST(ManifestTest, DurableWriteAndDirectorySyncSucceed) {
  const std::string path = TempPath("durable");
  ASSERT_TRUE(
      WriteStringToFile(path, "payload", WriteDurability::kFsync).ok());
  EXPECT_TRUE(SyncDirectory("/tmp").ok());
  EXPECT_EQ(SyncDirectory(path + ".no-such-dir").code(),
            StatusCode::kIoError);
  std::remove(path.c_str());
}

/// First-ever publication (no previous generation on disk): a torn write
/// leaves NO manifest at `path` — absence, not garbage.
TEST(ManifestTest, TornFirstWriteLeavesNoManifest) {
  const std::string path = TempPath("first");
  Manifest m = MakeManifest();
  const Status crashed =
      WriteManifest(m, path, ManifestWriteFault::kTornTempWrite);
  EXPECT_EQ(crashed.code(), StatusCode::kIoError);
  EXPECT_EQ(LoadManifest(path).status().code(), StatusCode::kNotFound);
  std::remove((path + ".tmp").c_str());
}

}  // namespace
}  // namespace rotind::storage
