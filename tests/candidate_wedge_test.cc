#include "src/envelope/candidate_wedge.h"

#include <set>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/distance/dtw.h"
#include "src/distance/euclidean.h"

namespace rotind {
namespace {

Series RandomSeries(Rng* rng, std::size_t n) {
  Series s(n);
  for (double& v : s) v = rng->Gaussian(0.0, 1.0);
  return s;
}

std::vector<Series> RandomCandidates(Rng* rng, std::size_t count,
                                     std::size_t n) {
  std::vector<Series> out;
  for (std::size_t i = 0; i < count; ++i) out.push_back(RandomSeries(rng, n));
  return out;
}

TEST(CandidateWedgeSetTest, SingleCandidate) {
  Rng rng(1);
  StepCounter counter;
  CandidateWedgeSet set({RandomSeries(&rng, 16)}, 0, &counter);
  EXPECT_EQ(set.num_candidates(), 1u);
  EXPECT_EQ(set.num_nodes(), 1);
  EXPECT_EQ(set.WedgeSetForK(1), std::vector<int>{0});
}

TEST(CandidateWedgeSetTest, EnvelopesEncloseMembers) {
  Rng rng(2);
  StepCounter counter;
  const auto candidates = RandomCandidates(&rng, 12, 24);
  CandidateWedgeSet set(candidates, 0, &counter);
  // Root encloses everything.
  const Envelope& root = set.EnvelopeOf(set.root());
  for (const Series& c : candidates) {
    EXPECT_TRUE(root.Contains(c.data(), c.size(), 1e-12));
  }
}

TEST(CandidateWedgeSetTest, WedgeSetsPartition) {
  Rng rng(3);
  StepCounter counter;
  CandidateWedgeSet set(RandomCandidates(&rng, 10, 20), 0, &counter);
  for (int k = 1; k <= 10; ++k) {
    const std::vector<int> wedges = set.WedgeSetForK(k);
    EXPECT_EQ(static_cast<int>(wedges.size()), k);
    std::set<int> leaves;
    std::vector<int> stack(wedges.begin(), wedges.end());
    while (!stack.empty()) {
      const int id = stack.back();
      stack.pop_back();
      if (set.IsLeaf(id)) {
        leaves.insert(id);
      } else {
        stack.push_back(set.LeftChild(id));
        stack.push_back(set.RightChild(id));
      }
    }
    EXPECT_EQ(leaves.size(), 10u) << "k=" << k;
  }
}

TEST(CandidateWedgeSetTest, FilterMatchesBruteForceEuclidean) {
  Rng rng(4);
  StepCounter counter;
  const std::size_t n = 32;
  const auto candidates = RandomCandidates(&rng, 20, n);
  CandidateWedgeSet set(candidates, 0, &counter);

  for (int trial = 0; trial < 10; ++trial) {
    const Series q = RandomSeries(&rng, n);
    const double radius = rng.Uniform(4.0, 9.0);
    auto hits = set.FilterWithinRadius(q.data(), radius, set.WedgeSetForK(4));
    std::set<int> hit_ids;
    for (const auto& [id, dist] : hits) {
      hit_ids.insert(id);
      EXPECT_NEAR(dist,
                  EuclideanDistance(q, candidates[static_cast<std::size_t>(
                                           id)]),
                  1e-9);
    }
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const bool within = EuclideanDistance(q, candidates[i]) <= radius;
      EXPECT_EQ(hit_ids.count(static_cast<int>(i)) > 0, within)
          << "candidate " << i;
    }
  }
}

TEST(CandidateWedgeSetTest, FilterMatchesBruteForceDtw) {
  Rng rng(5);
  StepCounter counter;
  const std::size_t n = 24;
  const int band = 3;
  const auto candidates = RandomCandidates(&rng, 12, n);
  CandidateWedgeSet set(candidates, band, &counter);

  for (int trial = 0; trial < 6; ++trial) {
    const Series q = RandomSeries(&rng, n);
    const double radius = rng.Uniform(3.0, 7.0);
    auto hits = set.FilterWithinRadius(q.data(), radius, set.WedgeSetForK(3));
    std::set<int> hit_ids;
    for (const auto& [id, dist] : hits) {
      hit_ids.insert(id);
      EXPECT_NEAR(dist,
                  DtwDistance(candidates[static_cast<std::size_t>(id)], q,
                              band),
                  1e-9);
    }
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const bool within = DtwDistance(candidates[i], q, band) <= radius;
      EXPECT_EQ(hit_ids.count(static_cast<int>(i)) > 0, within);
    }
  }
}

TEST(CandidateWedgeSetTest, TightRadiusPrunesCheaply) {
  Rng rng(6);
  StepCounter setup;
  const std::size_t n = 64;
  // Clustered candidates: copies of one base with small jitter.
  const Series base = RandomSeries(&rng, n);
  std::vector<Series> candidates;
  for (int i = 0; i < 30; ++i) {
    Series c = base;
    for (double& v : c) v += rng.Gaussian(0.0, 0.05);
    candidates.push_back(std::move(c));
  }
  CandidateWedgeSet set(candidates, 0, &setup);

  Series far = base;
  for (double& v : far) v += 10.0;
  StepCounter counter;
  const auto hits =
      set.FilterWithinRadius(far.data(), 0.5, set.WedgeSetForK(1), &counter);
  EXPECT_TRUE(hits.empty());
  // One wedge evaluation killed all 30 candidates after ~1 point.
  EXPECT_LE(counter.steps, 4u);
}

}  // namespace
}  // namespace rotind
