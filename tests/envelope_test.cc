#include "src/envelope/envelope.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "src/core/random.h"

namespace rotind {
namespace {

Series RandomSeries(Rng* rng, std::size_t n) {
  Series s(n);
  for (double& v : s) v = rng->Gaussian(0.0, 1.0);
  return s;
}

Series NaiveSlidingMax(const Series& s, int band) {
  const int n = static_cast<int>(s.size());
  Series out(s.size());
  for (int i = 0; i < n; ++i) {
    double m = s[static_cast<std::size_t>(i)];
    for (int j = std::max(0, i - band); j <= std::min(n - 1, i + band); ++j) {
      m = std::max(m, s[static_cast<std::size_t>(j)]);
    }
    out[static_cast<std::size_t>(i)] = m;
  }
  return out;
}

TEST(EnvelopeTest, FromSeriesIsDegenerate) {
  const Series s = {1.0, -2.0, 3.0};
  const Envelope e = Envelope::FromSeries(s);
  EXPECT_EQ(e.upper, s);
  EXPECT_EQ(e.lower, s);
  EXPECT_DOUBLE_EQ(e.Area(), 0.0);
}

TEST(EnvelopeTest, MergeTakesPointwiseExtremes) {
  const Envelope a = Envelope::FromSeries({1.0, 5.0, 2.0});
  const Envelope b = Envelope::FromSeries({3.0, 0.0, 2.0});
  const Envelope m = Envelope::Merge(a, b);
  EXPECT_EQ(m.upper, (Series{3.0, 5.0, 2.0}));
  EXPECT_EQ(m.lower, (Series{1.0, 0.0, 2.0}));
  EXPECT_DOUBLE_EQ(m.Area(), 2.0 + 5.0 + 0.0);
}

TEST(EnvelopeTest, MergeSeriesEqualsMergeFromSeries) {
  Rng rng(1);
  const Series a = RandomSeries(&rng, 30);
  const Series b = RandomSeries(&rng, 30);
  Envelope via_series = Envelope::FromSeries(a);
  via_series.MergeSeries(b.data(), b.size());
  const Envelope via_env =
      Envelope::Merge(Envelope::FromSeries(a), Envelope::FromSeries(b));
  EXPECT_EQ(via_series.upper, via_env.upper);
  EXPECT_EQ(via_series.lower, via_env.lower);
}

TEST(EnvelopeTest, ContainsItsGenerators) {
  Rng rng(2);
  std::vector<Series> members;
  Envelope env = Envelope::FromSeries(RandomSeries(&rng, 40));
  members.push_back(env.upper);
  for (int i = 0; i < 10; ++i) {
    members.push_back(RandomSeries(&rng, 40));
    env.MergeSeries(members.back().data(), members.back().size());
  }
  for (const Series& m : members) {
    EXPECT_TRUE(env.Contains(m.data(), m.size()));
  }
}

TEST(EnvelopeTest, ContainsRejectsOutliers) {
  const Envelope env = Envelope::FromSeries({0.0, 0.0, 0.0});
  const Series outside = {0.0, 1.0, 0.0};
  EXPECT_FALSE(env.Contains(outside.data(), outside.size()));
  EXPECT_TRUE(env.Contains(outside.data(), outside.size(), /*tolerance=*/1.0));
}

TEST(EnvelopeTest, ContainsRejectsWrongLength) {
  const Envelope env = Envelope::FromSeries({0.0, 0.0});
  const Series s = {0.0};
  EXPECT_FALSE(env.Contains(s.data(), s.size()));
}

TEST(SlidingExtremumTest, MatchesNaive) {
  Rng rng(3);
  for (int band : {0, 1, 2, 5, 11, 100}) {
    const Series s = RandomSeries(&rng, 57);
    const Series fast_max = SlidingMax(s, band);
    const Series naive_max = NaiveSlidingMax(s, band);
    EXPECT_EQ(fast_max, naive_max) << "band=" << band;

    Series neg = s;
    for (double& v : neg) v = -v;
    Series expect_min = NaiveSlidingMax(neg, band);
    for (double& v : expect_min) v = -v;
    EXPECT_EQ(SlidingMin(s, band), expect_min) << "band=" << band;
  }
}

TEST(EnvelopeTest, DtwExpansionWidens) {
  Rng rng(4);
  Envelope env = Envelope::FromSeries(RandomSeries(&rng, 50));
  env.MergeSeries(RandomSeries(&rng, 50).data(), 50);
  const Envelope wide = env.ExpandedForDtw(4);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_GE(wide.upper[i], env.upper[i]);
    EXPECT_LE(wide.lower[i], env.lower[i]);
  }
  EXPECT_GE(wide.Area(), env.Area());
}

TEST(EnvelopeTest, DtwExpansionBandZeroIsIdentity) {
  Rng rng(5);
  const Envelope env = Envelope::FromSeries(RandomSeries(&rng, 20));
  const Envelope same = env.ExpandedForDtw(0);
  EXPECT_EQ(same.upper, env.upper);
  EXPECT_EQ(same.lower, env.lower);
}

TEST(EnvelopeTest, DtwExpansionContainsShiftedMembers) {
  // The expanded envelope of s must contain s shifted by up to `band`
  // samples (within the clamped window) — this is what makes Proposition 2
  // work.
  Rng rng(6);
  const Series s = RandomSeries(&rng, 30);
  const Envelope wide = Envelope::FromSeries(s).ExpandedForDtw(3);
  for (int shift = -3; shift <= 3; ++shift) {
    for (std::size_t i = 0; i < 30; ++i) {
      const long j = static_cast<long>(i) + shift;
      if (j < 0 || j >= 30) continue;  // clamped, non-circular window
      EXPECT_LE(s[static_cast<std::size_t>(j)], wide.upper[i] + 1e-12);
      EXPECT_GE(s[static_cast<std::size_t>(j)], wide.lower[i] - 1e-12);
    }
  }
}

/// Band values at and past the series length clamp to n-1 (the widest
/// meaningful window): ExpandedForDtw(n-1), (n), and (2n) must all produce
/// the same fully-degenerate envelope — constant global max / global min —
/// instead of overflowing the window arithmetic.
TEST(EnvelopeTest, DtwExpansionClampsOversizedBands) {
  Rng rng(7);
  for (const std::size_t n : {1u, 2u, 5u, 30u}) {
    Envelope env = Envelope::FromSeries(RandomSeries(&rng, n));
    env.MergeSeries(RandomSeries(&rng, n).data(), n);
    const int nn = static_cast<int>(n);
    const Envelope widest = env.ExpandedForDtw(nn - 1);
    for (const int band : {nn, 2 * nn}) {
      const Envelope e = env.ExpandedForDtw(band);
      EXPECT_EQ(e.upper, widest.upper) << "n=" << n << " band=" << band;
      EXPECT_EQ(e.lower, widest.lower) << "n=" << n << " band=" << band;
    }
    const double global_max =
        *std::max_element(env.upper.begin(), env.upper.end());
    const double global_min =
        *std::min_element(env.lower.begin(), env.lower.end());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(widest.upper[i], global_max) << "n=" << n << " i=" << i;
      EXPECT_EQ(widest.lower[i], global_min) << "n=" << n << " i=" << i;
    }
  }
}

/// Proposition 2 containment survives the clamp: a band past n still
/// yields an envelope enclosing the original wedge (the contract
/// ExpandedForDtw itself asserts), and LB_Keogh against it stays a valid
/// DTW bound at the equivalent clamped band.
TEST(EnvelopeTest, OversizedBandStillEnclosesTheWedge) {
  Rng rng(8);
  const std::size_t n = 24;
  Envelope env = Envelope::FromSeries(RandomSeries(&rng, n));
  env.MergeSeries(RandomSeries(&rng, n).data(), n);
  for (const int band : {static_cast<int>(n), 3 * static_cast<int>(n)}) {
    const Envelope wide = env.ExpandedForDtw(band);
    EXPECT_TRUE(wide.Encloses(env)) << "band=" << band;
  }
}

}  // namespace
}  // namespace rotind
