/// Storage fault injection and bounded retry: the seeded FaultSchedule is
/// reproducible, FileBackend's retry-with-backoff absorbs transient
/// bursts shorter than its attempt budget (and accounts for them in
/// FetchStats), permanent faults surface typed instead of being retried
/// forever, and the FaultInjectingBackend decorator drives the engine's
/// Checked entry points into typed failures — never silent wrong answers.

#include "src/storage/fault_injection.h"

#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/flat_dataset.h"
#include "src/core/status.h"
#include "src/datasets/synthetic.h"
#include "src/index/index_io.h"
#include "src/search/engine.h"
#include "src/storage/backend.h"

namespace rotind::storage {
namespace {

std::string TempPath(const char* tag) {
  return "/tmp/rotind_fault_test." + std::to_string(::getpid()) + "." + tag +
         ".ridx";
}

std::string WriteIndex(const std::vector<Series>& items, const char* tag) {
  Dataset ds;
  ds.items = items;
  IndexBuildOptions build;
  build.sig_dims = 4;
  build.paa_dims = 4;
  build.page_size_bytes = 256;  // Extents straddle pages.
  const std::string path = TempPath(tag);
  const Status s = BuildIndexFile(ds, build, path);
  EXPECT_TRUE(s.ok()) << s.message();
  return path;
}

RetryPolicy FastRetry(int attempts) {
  RetryPolicy retry;
  retry.max_attempts = attempts;
  retry.initial_backoff = std::chrono::microseconds(1);
  return retry;
}

TEST(FaultScheduleTest, SameSeedReplaysTheSameDecisions) {
  FaultScheduleSpec spec;
  spec.seed = 99;
  spec.transient_read_prob = 0.3;
  spec.torn_page_prob = 0.1;
  spec.latency_spike_prob = 0.1;
  spec.latency_spike = std::chrono::nanoseconds(0);
  FaultSchedule a(spec);
  FaultSchedule b(spec);
  for (std::uint64_t key = 0; key < 200; ++key) {
    EXPECT_EQ(static_cast<int>(a.Decide(key % 7).kind),
              static_cast<int>(b.Decide(key % 7).kind));
  }
  EXPECT_EQ(a.counters().total(), b.counters().total());
  EXPECT_GT(a.counters().total(), 0u);
}

TEST(FaultScheduleTest, DefaultSpecInjectsNothing) {
  const FaultScheduleSpec spec;
  EXPECT_FALSE(spec.enabled());
  FaultSchedule schedule(spec);
  for (std::uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(static_cast<int>(schedule.Decide(key).kind),
              static_cast<int>(FaultKind::kNone));
  }
  EXPECT_EQ(schedule.counters().total(), 0u);
}

TEST(FaultScheduleTest, TransientBurstsRunTheirConfiguredLength) {
  FaultScheduleSpec spec;
  spec.seed = 5;
  spec.transient_read_prob = 1.0;  // Every fresh draw starts a burst.
  spec.transient_burst = 3;
  FaultSchedule schedule(spec);
  // One key: 3-long bursts back to back, every decision a transient.
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(static_cast<int>(schedule.Decide(42).kind),
              static_cast<int>(FaultKind::kTransientRead));
  }
  EXPECT_EQ(schedule.counters().transient_errors, 9u);
}

TEST(FaultScheduleTest, PermanentKeyAlwaysFails) {
  FaultScheduleSpec spec;
  spec.permanent_fail_key = 3;
  FaultSchedule schedule(spec);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(static_cast<int>(schedule.Decide(3).kind),
              static_cast<int>(FaultKind::kTransientRead));
    EXPECT_EQ(static_cast<int>(schedule.Decide(4).kind),
              static_cast<int>(FaultKind::kNone));
  }
}

/// Trivial in-memory PageSource for driving the decorator directly.
class ZeroSource : public PageSource {
 public:
  ZeroSource(std::size_t page_size, std::size_t pages)
      : page_size_(page_size), pages_(pages) {}
  std::size_t page_size_bytes() const override { return page_size_; }
  std::size_t num_pages() const override { return pages_; }
  Status ReadPage(std::size_t /*page*/, char* out) const override {
    std::memset(out, 0, page_size_);
    return Status::Ok();
  }

 private:
  std::size_t page_size_;
  std::size_t pages_;
};

TEST(FaultInjectingSourceTest, TornPageSurfacesAsCorruptHeader) {
  const ZeroSource inner(64, 4);
  FaultScheduleSpec spec;
  spec.torn_page_prob = 1.0;
  FaultSchedule schedule(spec);
  const FaultInjectingSource source(inner, schedule);
  char buf[64];
  const Status torn = source.ReadPage(0, buf);
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.code(), StatusCode::kCorruptHeader)
      << "a torn page must look exactly like a real checksum mismatch";
  EXPECT_TRUE(IsRetryableStorageError(torn.code()))
      << "torn reads are single-shot; the re-read must be allowed";
  EXPECT_EQ(schedule.counters().torn_pages, 1u);
}

TEST(FaultInjectingSourceTest, TransientSurfacesAsIoError) {
  const ZeroSource inner(64, 4);
  FaultScheduleSpec spec;
  spec.transient_read_prob = 1.0;
  FaultSchedule schedule(spec);
  const FaultInjectingSource source(inner, schedule);
  char buf[64];
  const Status s = source.ReadPage(2, buf);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(FaultInjectingSourceTest, LatencySpikeSucceedsWithCorrectBytes) {
  const ZeroSource inner(64, 4);
  FaultScheduleSpec spec;
  spec.latency_spike_prob = 1.0;
  spec.latency_spike = std::chrono::nanoseconds(1);
  FaultSchedule schedule(spec);
  const FaultInjectingSource source(inner, schedule);
  char buf[64];
  std::memset(buf, 0x5a, sizeof(buf));
  ASSERT_TRUE(source.ReadPage(1, buf).ok());
  for (char c : buf) EXPECT_EQ(c, 0);
  EXPECT_EQ(schedule.counters().latency_spikes, 1u);
}

/// Retry absorption, end to end through the public FileBackend API: with
/// transient faults injected UNDER the BufferPool and a retry budget
/// longer than any burst this seed produces, every fetch succeeds, the
/// absorbed faults are visible in FetchStats, and no error is latched.
TEST(FileBackendRetryTest, TransientFaultsAreAbsorbedAndAccounted) {
  const std::vector<Series> items =
      MakeProjectilePointsDatabase(12, 40, 210);
  const std::string path = WriteIndex(items, "absorb");

  FileBackend::Tuning tuning;
  tuning.retry = FastRetry(8);
  tuning.faults.seed = 31;
  tuning.faults.transient_read_prob = 0.3;
  tuning.faults.transient_burst = 2;
  auto backend = FileBackend::Open(path, 2, EvictionPolicy::kLru, tuning);
  ASSERT_TRUE(backend.ok()) << backend.status().message();

  FetchStats stats;
  for (int round = 0; round < 3; ++round) {  // Pool of 2: constant misses.
    for (std::size_t i = 0; i < items.size(); ++i) {
      const auto h = (*backend)->TryFetch(i, &stats);
      ASSERT_TRUE(h.ok()) << "object " << i << ": "
                          << h.status().message();
      EXPECT_EQ(std::memcmp(h->data(), items[i].data(),
                            items[i].size() * sizeof(double)),
                0)
          << "retried read returned wrong bytes for object " << i;
    }
  }
  EXPECT_GT(stats.retries, 0u);
  EXPECT_GT(stats.faults_absorbed, 0u);
  EXPECT_GE(stats.retries, stats.faults_absorbed);
  EXPECT_GT((*backend)->fault_counters().transient_errors, 0u);
  EXPECT_TRUE((*backend)->error().ok())
      << "absorbed faults must not latch an error";
  std::remove(path.c_str());
}

/// A burst longer than the retry budget is NOT absorbed: the typed error
/// surfaces, and ClearError() restores the backend for later queries.
TEST(FileBackendRetryTest, BurstsBeyondTheBudgetSurfaceTyped) {
  const std::vector<Series> items = MakeProjectilePointsDatabase(6, 40, 77);
  const std::string path = WriteIndex(items, "surface");

  FileBackend::Tuning tuning;
  tuning.retry = FastRetry(2);
  tuning.faults.seed = 13;
  tuning.faults.transient_read_prob = 1.0;  // Endless bursts: unabsorbable.
  tuning.faults.transient_burst = 4;
  auto backend = FileBackend::Open(path, 4, EvictionPolicy::kLru, tuning);
  ASSERT_TRUE(backend.ok()) << backend.status().message();

  FetchStats stats;
  const auto h = (*backend)->TryFetch(0, &stats);
  ASSERT_FALSE(h.ok());
  EXPECT_EQ(h.status().code(), StatusCode::kIoError);
  EXPECT_EQ(stats.retries, 1u) << "budget of 2 attempts = 1 retry";

  // Unchecked Fetch latches; ClearError consumes the latch.
  FetchStats unchecked;
  const SeriesHandle bad = (*backend)->Fetch(0, &unchecked);
  EXPECT_FALSE(bad.valid());
  EXPECT_FALSE((*backend)->error().ok());
  (*backend)->ClearError();
  EXPECT_TRUE((*backend)->error().ok());
  std::remove(path.c_str());
}

TEST(FileBackendRetryTest, RetryDisabledFailsOnFirstFault) {
  const std::vector<Series> items = MakeProjectilePointsDatabase(6, 40, 78);
  const std::string path = WriteIndex(items, "noretry");

  FileBackend::Tuning tuning;  // retry.max_attempts = 1: off.
  tuning.faults.seed = 2;
  tuning.faults.transient_read_prob = 1.0;
  auto backend = FileBackend::Open(path, 4, EvictionPolicy::kLru, tuning);
  ASSERT_TRUE(backend.ok());
  FetchStats stats;
  const auto h = (*backend)->TryFetch(0, &stats);
  ASSERT_FALSE(h.ok());
  EXPECT_EQ(stats.retries, 0u);
  std::remove(path.c_str());
}

TEST(RetryableClassificationTest, OnlyIoAndChecksumErrorsRetry) {
  EXPECT_TRUE(IsRetryableStorageError(StatusCode::kIoError));
  EXPECT_TRUE(IsRetryableStorageError(StatusCode::kCorruptHeader));
  EXPECT_FALSE(IsRetryableStorageError(StatusCode::kOutOfRange));
  EXPECT_FALSE(IsRetryableStorageError(StatusCode::kNotFound));
  EXPECT_FALSE(IsRetryableStorageError(StatusCode::kOk));
}

/// The backend-level decorator: object-granular faults above the pool,
/// driving the engine's typed error path. The engine must NEVER return a
/// silently-short answer when a candidate fetch fails.
TEST(FaultInjectingBackendTest, PermanentObjectFaultSurfacesThroughEngine) {
  const std::vector<Series> items =
      MakeProjectilePointsDatabase(20, 32, 301);
  const FlatDataset flat = FlatDataset::FromItems(items);

  FaultScheduleSpec spec;
  spec.permanent_fail_key = 5;
  auto faulty = std::make_unique<FaultInjectingBackend>(
      std::make_unique<InMemoryBackend>(flat), spec);

  // Direct decorator contract first.
  FetchStats stats;
  EXPECT_FALSE(faulty->TryFetch(5, &stats).ok());
  EXPECT_TRUE(faulty->TryFetch(6, &stats).ok());
  EXPECT_TRUE(faulty->error().ok()) << "TryFetch must not latch";

  const QueryEngine engine(std::move(faulty));
  const Series query(flat.data(0), flat.data(0) + flat.length());
  const auto checked = engine.SearchChecked(query);
  ASSERT_FALSE(checked.ok())
      << "scan skipped a candidate but reported an exact answer";
  EXPECT_EQ(checked.status().code(), StatusCode::kIoError);
}

TEST(FaultInjectingBackendTest, CleanScheduleIsTransparent) {
  const std::vector<Series> items =
      MakeProjectilePointsDatabase(15, 32, 302);
  const FlatDataset flat = FlatDataset::FromItems(items);
  const Series query(flat.data(3), flat.data(3) + flat.length());

  const QueryEngine plain(flat);
  const ScanResult truth = plain.Search(query);

  auto faulty = std::make_unique<FaultInjectingBackend>(
      std::make_unique<InMemoryBackend>(flat), FaultScheduleSpec());
  const QueryEngine engine(std::move(faulty));
  const auto checked = engine.SearchChecked(query);
  ASSERT_TRUE(checked.ok()) << checked.status().message();
  EXPECT_EQ(checked->best_index, truth.best_index);
  EXPECT_EQ(checked->best_distance, truth.best_distance);
}

/// OpenBackend plumbs StorageOptions retry/fault tuning into the file
/// backend — the path `rotind serve --fault-*` and the load bench use.
TEST(OpenBackendTest, StorageOptionsCarryRetryAndFaults) {
  const std::vector<Series> items = MakeProjectilePointsDatabase(8, 40, 91);
  const std::string path = WriteIndex(items, "options");

  StorageOptions options;
  options.backend = BackendKind::kFile;
  options.index_path = path;
  options.pool_pages = 2;
  options.retry = FastRetry(8);
  options.faults.seed = 31;
  options.faults.transient_read_prob = 0.3;
  options.faults.transient_burst = 2;
  auto backend = OpenBackend(options, nullptr);
  ASSERT_TRUE(backend.ok()) << backend.status().message();

  FetchStats stats;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      ASSERT_TRUE((*backend)->TryFetch(i, &stats).ok());
    }
  }
  EXPECT_GT(stats.faults_absorbed, 0u);
  const auto* file = static_cast<const FileBackend*>(backend->get());
  EXPECT_EQ(file->retry_policy().max_attempts, 8);
  EXPECT_GT(file->fault_counters().total(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rotind::storage
