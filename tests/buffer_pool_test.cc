/// BufferPool behavior: capacity is a hard bound (property-tested), pinned
/// frames are never evicted, LRU and Clock pick sane victims, hit/miss/
/// eviction counters add up, and source failures surface as Status without
/// wedging the pool.

#include "src/storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/core/random.h"
#include "src/core/status.h"
#include "src/storage/fault_injection.h"

namespace rotind::storage {
namespace {

/// Deterministic in-memory page source: page p is filled with the byte
/// pattern f(p, i) so any stale or misrouted frame is detectable.
class PatternSource : public PageSource {
 public:
  PatternSource(std::size_t page_size, std::size_t pages)
      : page_size_(page_size), pages_(pages) {}

  std::size_t page_size_bytes() const override { return page_size_; }
  std::size_t num_pages() const override { return pages_; }
  Status ReadPage(std::size_t page, char* out) const override {
    if (page == failing_page_) {
      return Status::IoError("injected failure on page " +
                             std::to_string(page));
    }
    for (std::size_t i = 0; i < page_size_; ++i) {
      out[i] = static_cast<char>((page * 131 + i * 7) & 0xFF);
    }
    return Status::Ok();
  }

  void FailPage(std::size_t page) { failing_page_ = page; }
  void Heal() { failing_page_ = num_pages(); }

  bool PageBytesCorrect(std::size_t page, const char* data) const {
    for (std::size_t i = 0; i < page_size_; ++i) {
      if (data[i] != static_cast<char>((page * 131 + i * 7) & 0xFF)) {
        return false;
      }
    }
    return true;
  }

 private:
  std::size_t page_size_;
  std::size_t pages_;
  std::size_t failing_page_ = static_cast<std::size_t>(-1);
};

TEST(BufferPoolTest, MissThenHitWithCorrectBytes) {
  const PatternSource source(64, 8);
  BufferPool pool(source, 4, EvictionPolicy::kLru);

  BufferPool::PinOutcome first;
  auto a = pool.Pin(3, &first);
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(first.hit);
  EXPECT_EQ(first.bytes_read, 64u);
  EXPECT_TRUE(source.PageBytesCorrect(3, a->data()));

  BufferPool::PinOutcome second;
  auto b = pool.Pin(3, &second);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(second.bytes_read, 0u);
  EXPECT_EQ(a->data(), b->data());  // same frame, stable pointer

  const PoolCounters c = pool.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.evictions, 0u);
  EXPECT_EQ(c.bytes_read, 64u);
}

TEST(BufferPoolTest, PinFailsWhenEveryFrameIsPinnedAndRecovers) {
  const PatternSource source(64, 8);
  BufferPool pool(source, 2, EvictionPolicy::kLru);

  auto a = pool.Pin(0);
  auto b = pool.Pin(1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(pool.pinned_pages(), 2u);

  auto c = pool.Pin(2);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kInvalidArgument);

  a->Release();
  auto d = pool.Pin(2);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(source.PageBytesCorrect(2, d->data()));
  EXPECT_EQ(pool.counters().evictions, 1u);  // page 0's frame was recycled
}

TEST(BufferPoolTest, PinnedFramesAreNeverEvictedUnderEitherPolicy) {
  for (const EvictionPolicy policy :
       {EvictionPolicy::kLru, EvictionPolicy::kClock}) {
    const PatternSource source(64, 8);
    BufferPool pool(source, 2, policy);

    auto held = pool.Pin(0);  // stays pinned for the whole test
    ASSERT_TRUE(held.ok());
    for (std::size_t page = 1; page < 8; ++page) {
      auto p = pool.Pin(page);  // each one evicts the previous unpinned page
      ASSERT_TRUE(p.ok());
      EXPECT_TRUE(source.PageBytesCorrect(page, p->data()));
    }
    // Page 0 never left: pinning it again is a hit and the bytes survived
    // six evictions around it.
    BufferPool::PinOutcome outcome;
    auto again = pool.Pin(0, &outcome);
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(outcome.hit);
    EXPECT_TRUE(source.PageBytesCorrect(0, again->data()));
  }
}

TEST(BufferPoolTest, LruEvictsTheLeastRecentlyUsedPage) {
  const PatternSource source(64, 8);
  BufferPool pool(source, 2, EvictionPolicy::kLru);

  pool.Pin(0).value().Release();
  pool.Pin(1).value().Release();
  pool.Pin(0).value().Release();  // 0 is now more recent than 1
  pool.Pin(2).value().Release();  // must evict 1, not 0

  BufferPool::PinOutcome outcome;
  auto zero = pool.Pin(0, &outcome);
  ASSERT_TRUE(zero.ok());
  EXPECT_TRUE(outcome.hit) << "LRU evicted the recently-touched page";
  zero->Release();
  auto one = pool.Pin(1, &outcome);
  ASSERT_TRUE(one.ok());
  EXPECT_FALSE(outcome.hit);
}

TEST(BufferPoolTest, ClockClearsReferenceBitsAndEvictsInHandOrder) {
  const PatternSource source(64, 4);
  BufferPool pool(source, 2, EvictionPolicy::kClock);

  pool.Pin(0).value().Release();  // frame 0, referenced
  pool.Pin(1).value().Release();  // frame 1, referenced
  // Faulting page 2 sweeps from the hand at frame 0: both frames get
  // their second chance (reference bits cleared), then the second pass
  // evicts frame 0. Page 1 must still be resident afterwards.
  BufferPool::PinOutcome fault;
  pool.Pin(2, &fault).value().Release();
  EXPECT_FALSE(fault.hit);
  EXPECT_TRUE(fault.evicted);
  BufferPool::PinOutcome one_out;
  pool.Pin(1, &one_out).value().Release();
  EXPECT_TRUE(one_out.hit) << "the frame the sweep passed over was evicted";
  const PoolCounters c = pool.counters();
  EXPECT_EQ(c.evictions, 1u);
}

TEST(BufferPoolTest, OutOfRangePageIsRejected) {
  const PatternSource source(64, 4);
  BufferPool pool(source, 2, EvictionPolicy::kLru);
  auto p = pool.Pin(4);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(pool.counters().misses, 0u);
}

TEST(BufferPoolTest, SourceFailurePropagatesAndPoolStaysUsable) {
  PatternSource source(64, 4);
  BufferPool pool(source, 2, EvictionPolicy::kLru);

  source.FailPage(1);
  auto bad = pool.Pin(1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kIoError);

  source.Heal();
  auto good = pool.Pin(1);
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(source.PageBytesCorrect(1, good->data()));
}

TEST(BufferPoolTest, FailedReadsAreCountedAndNeverConsumeAFrame) {
  PatternSource source(64, 4);
  BufferPool pool(source, 2, EvictionPolicy::kLru);

  source.FailPage(3);
  for (int attempt = 0; attempt < 3; ++attempt) {
    EXPECT_FALSE(pool.Pin(3).ok());
  }
  const PoolCounters c = pool.counters();
  EXPECT_EQ(c.failed_reads, 3u);
  EXPECT_EQ(pool.resident_pages(), 0u)
      << "a failed read must not leave a frame claiming to hold the page";
}

/// Regression for the serve fault-injection path: a FaultInjectingSource
/// sits under the pool exactly where a real disk error would, and its
/// injected Status must propagate through Pin — typed, counted, and
/// without wedging the pool for healthy pages.
TEST(BufferPoolTest, InjectedPermanentFaultPropagatesThroughPin) {
  const PatternSource inner(64, 8);
  FaultScheduleSpec spec;
  spec.permanent_fail_key = 5;
  FaultSchedule schedule(spec);
  const FaultInjectingSource source(inner, schedule);
  BufferPool pool(source, 4, EvictionPolicy::kLru);

  for (int attempt = 0; attempt < 2; ++attempt) {
    auto bad = pool.Pin(5);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::kIoError);
  }
  EXPECT_EQ(pool.counters().failed_reads, 2u);

  // Healthy pages are unaffected before, between, and after the faults.
  for (const std::size_t page : {0u, 4u, 6u}) {
    auto good = pool.Pin(page);
    ASSERT_TRUE(good.ok()) << good.status().message();
    EXPECT_TRUE(inner.PageBytesCorrect(page, good->data()));
  }
}

TEST(BufferPoolTest, InjectedTornPageSurfacesAsCorruptHeaderThroughPin) {
  const PatternSource inner(64, 8);
  FaultScheduleSpec spec;
  spec.torn_page_prob = 1.0;
  FaultSchedule schedule(spec);
  const FaultInjectingSource source(inner, schedule);
  BufferPool pool(source, 4, EvictionPolicy::kLru);

  auto torn = pool.Pin(0);
  ASSERT_FALSE(torn.ok());
  // The checksum-mismatch taxonomy survives the pin path: torn pages keep
  // the same typed code IndexFile uses for a real checksum failure.
  EXPECT_EQ(torn.status().code(), StatusCode::kCorruptHeader);
  EXPECT_EQ(pool.counters().failed_reads, 1u);
  EXPECT_EQ(schedule.counters().torn_pages, 1u);
}

/// Property: across a random pin/hold/release workload far larger than the
/// pool, resident and pinned frame counts never exceed capacity, every pin
/// that succeeds serves bit-correct bytes, and the counter identities hold
/// (misses account for every byte read; evictions never exceed misses).
TEST(BufferPoolPropertyTest, CapacityIsAHardBoundUnderRandomWorkload) {
  const std::size_t kPages = 16;
  const std::size_t kCapacity = 4;
  const PatternSource source(64, kPages);
  BufferPool pool(source, kCapacity, EvictionPolicy::kLru);

  Rng rng(20060806);
  std::vector<BufferPool::Pinned> held;
  for (int step = 0; step < 2000; ++step) {
    const bool release = !held.empty() &&
                         (held.size() >= kCapacity - 1 ||
                          rng.NextBounded(3) == 0);
    if (release) {
      const std::size_t victim = rng.NextBounded(held.size());
      held[victim].Release();
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {
      const std::size_t page = rng.NextBounded(kPages);
      auto pin = pool.Pin(page);
      // With at most capacity-1 handles held, a pin can always succeed.
      ASSERT_TRUE(pin.ok()) << pin.status().message();
      ASSERT_TRUE(source.PageBytesCorrect(page, pin->data()));
      held.push_back(*std::move(pin));
    }
    ASSERT_LE(pool.resident_pages(), kCapacity);
    ASSERT_LE(pool.pinned_pages(), kCapacity);
    ASSERT_LE(pool.pinned_pages(), pool.resident_pages());
  }
  const PoolCounters c = pool.counters();
  EXPECT_EQ(c.bytes_read, c.misses * 64u);
  EXPECT_LE(c.evictions, c.misses);
  EXPECT_GT(c.hits, 0u);
  EXPECT_GT(c.evictions, 0u) << "workload was meant to overflow the pool";
}

}  // namespace
}  // namespace rotind::storage
