/// Engine-level observability properties over the equivalence corpus:
///
///  * zero-cost-when-null — instrumented and uninstrumented runs return
///    bit-identical results and step counts;
///  * exact attribution — per-stage steps + setup_steps sum to the legacy
///    StepCounter totals for every cascade composition;
///  * conserved candidate flow — entered == pruned + survived per stage,
///    and the first stage sees every leave-one-out candidate;
///  * deterministic batch merge — 1-thread and N-thread batches produce
///    identical merged counters (wall-clock and latency excepted);
///  * the disk index's signature/fetch/refine stages obey the same rules.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "src/core/flat_dataset.h"
#include "src/datasets/synthetic.h"
#include "src/index/candidate_scan.h"
#include "src/obs/metrics.h"
#include "src/search/engine.h"

namespace rotind {
namespace {

std::vector<CascadeSpec> MakeCascades(DistanceKind kind) {
  std::vector<CascadeSpec> out;
  out.push_back({{kind == DistanceKind::kDtw ? StageKind::kFullScanBanded
                                             : StageKind::kFullScan}});
  out.push_back({{StageKind::kExactScan}});
  out.push_back({{StageKind::kWedge}});
  out.push_back({{StageKind::kFftMagnitude, StageKind::kExactScan}});
  out.push_back({{StageKind::kFftMagnitude, StageKind::kWedge}});
  out.push_back({{StageKind::kLbImproved, StageKind::kExactScan}});
  out.push_back({{StageKind::kVecSignature, StageKind::kFftMagnitude,
                  StageKind::kLbImproved, StageKind::kExactScan}});
  return out;
}

std::string CascadeName(const CascadeSpec& spec) {
  std::string name;
  for (StageKind s : spec.stages) {
    if (!name.empty()) name += "+";
    switch (s) {
      case StageKind::kFftMagnitude: name += "fft"; break;
      case StageKind::kVecSignature: name += "vecsig"; break;
      case StageKind::kLbImproved: name += "lbi"; break;
      case StageKind::kWedge: name += "wedge"; break;
      case StageKind::kExactScan: name += "ea"; break;
      case StageKind::kFullScan: name += "full"; break;
      case StageKind::kFullScanBanded: name += "full-banded"; break;
    }
  }
  return name;
}

/// Asserts the deterministic (non-wall-clock) counters of two metrics
/// aggregates are identical.
void ExpectSameCounters(const obs::QueryMetrics& a, const obs::QueryMetrics& b,
                        const std::string& label) {
  EXPECT_EQ(a.queries, b.queries) << label;
  for (std::size_t i = 0; i < obs::kNumStages; ++i) {
    const obs::StageStats& sa = a.stages[i];
    const obs::StageStats& sb = b.stages[i];
    const std::string stage =
        label + "/" + obs::StageName(static_cast<obs::StageId>(i));
    EXPECT_EQ(sa.used, sb.used) << stage;
    EXPECT_EQ(sa.candidates_entered, sb.candidates_entered) << stage;
    EXPECT_EQ(sa.candidates_pruned, sb.candidates_pruned) << stage;
    EXPECT_EQ(sa.candidates_survived, sb.candidates_survived) << stage;
    EXPECT_EQ(sa.steps, sb.steps) << stage;
    EXPECT_EQ(sa.setup_steps, sb.setup_steps) << stage;
    EXPECT_EQ(sa.early_abandons, sb.early_abandons) << stage;
  }
  EXPECT_EQ(a.wedge.wedges_tested, b.wedge.wedges_tested) << label;
  EXPECT_EQ(a.wedge.wedges_pruned, b.wedge.wedges_pruned) << label;
  EXPECT_EQ(a.wedge.wedges_descended, b.wedge.wedges_descended) << label;
  EXPECT_EQ(a.wedge.leaves_evaluated, b.wedge.leaves_evaluated) << label;
  EXPECT_EQ(a.wedge.leaves_abandoned, b.wedge.leaves_abandoned) << label;
  EXPECT_EQ(a.wedge.adapt_probes, b.wedge.adapt_probes) << label;
  EXPECT_EQ(a.index.signature_evals, b.index.signature_evals) << label;
  EXPECT_EQ(a.index.object_fetches, b.index.object_fetches) << label;
  EXPECT_EQ(a.latency.count(), b.latency.count()) << label;
}

class ObsEngineTest : public ::testing::TestWithParam<DistanceKind> {};

TEST_P(ObsEngineTest, AttributionIsExactAndZeroCostWhenNull) {
  const DistanceKind kind = GetParam();
  const std::vector<Series> items = MakeHeterogeneousDatabase(22, 40, 303);
  const FlatDataset flat = FlatDataset::FromItems(items);

  for (const CascadeSpec& cascade : MakeCascades(kind)) {
    EngineOptions options;
    options.kind = kind;
    options.band = 4;
    options.cascade = cascade;
    const QueryEngine engine(flat, options);

    for (std::size_t qi : {0u, 7u, 15u}) {
      const std::string label = std::string(DistanceKindName(kind)) + "/" +
                                CascadeName(cascade) + "/q" +
                                std::to_string(qi);
      const Series& query = items[qi];

      const ScanResult plain = engine.SearchLeaveOneOut(query, qi);
      obs::QueryMetrics m;
      const ScanResult inst = engine.SearchLeaveOneOut(query, qi, &m);

      // Bit-identical results and cost with metrics attached.
      EXPECT_EQ(inst.best_index, plain.best_index) << label;
      EXPECT_EQ(inst.best_distance, plain.best_distance) << label;
      EXPECT_EQ(inst.counter.total_steps(), plain.counter.total_steps())
          << label;
      EXPECT_EQ(inst.counter.early_abandons, plain.counter.early_abandons)
          << label;

      // Exact attribution: the stage ledger accounts for every step.
      EXPECT_EQ(m.attributed_total_steps(), inst.counter.total_steps())
          << label;
      std::uint64_t stage_abandons = 0;
      bool any_used = false;
      std::uint64_t max_entered = 0;
      for (std::size_t i = 0; i < obs::kNumStages; ++i) {
        const obs::StageStats& s = m.stages[i];
        if (!s.used) continue;
        any_used = true;
        stage_abandons += s.early_abandons;
        EXPECT_EQ(s.candidates_entered,
                  s.candidates_pruned + s.candidates_survived)
            << label << " stage "
            << obs::StageName(static_cast<obs::StageId>(i));
        max_entered = std::max(max_entered, s.candidates_entered);
      }
      EXPECT_TRUE(any_used) << label;
      // Candidate flow is monotone along the pipeline and each candidate
      // enters each stage at most once, so the largest entered count across
      // used stages belongs to the cascade entry point: it must have seen
      // every leave-one-out candidate. (Numeric StageIds are append-only for
      // JSON-baseline stability, so enum order no longer tracks pipeline
      // order and cannot identify the entry stage.)
      EXPECT_EQ(max_entered, items.size() - 1) << label;
      EXPECT_EQ(stage_abandons, inst.counter.early_abandons) << label;
      EXPECT_EQ(m.queries, 1u) << label;
      EXPECT_EQ(m.latency.count(), 1u) << label;
    }
  }
}

TEST_P(ObsEngineTest, KnnAndRangeAttributeExactly) {
  const DistanceKind kind = GetParam();
  const std::vector<Series> items = MakeProjectilePointsDatabase(20, 36, 311);
  const FlatDataset flat = FlatDataset::FromItems(items);
  EngineOptions options;
  options.kind = kind;
  options.band = 4;
  options.cascade.stages = {StageKind::kWedge};
  const QueryEngine engine(flat, options);
  const Series& query = items[3];

  StepCounter knn_counter;
  obs::QueryMetrics knn_metrics;
  const auto knn = engine.Knn(query, 3, &knn_counter, &knn_metrics);
  ASSERT_EQ(knn.size(), 3u);
  EXPECT_EQ(knn_metrics.attributed_total_steps(), knn_counter.total_steps());

  StepCounter range_counter;
  obs::QueryMetrics range_metrics;
  const double radius = knn.back().distance * 1.01;
  const auto range =
      engine.Range(query, radius, &range_counter, &range_metrics);
  EXPECT_GE(range.size(), 3u);
  EXPECT_EQ(range_metrics.attributed_total_steps(),
            range_counter.total_steps());
}

TEST_P(ObsEngineTest, BatchMergeIsDeterministicAcrossThreadCounts) {
  const DistanceKind kind = GetParam();
  const std::vector<Series> items = MakeProjectilePointsDatabase(24, 36, 307);
  const FlatDataset flat = FlatDataset::FromItems(items);
  EngineOptions options;
  options.kind = kind;
  options.band = 4;
  options.cascade.stages = {StageKind::kWedge};
  const QueryEngine engine(flat, options);

  std::vector<Series> queries(items.begin(), items.begin() + 10);
  obs::QueryMetrics serial;
  obs::QueryMetrics parallel;
  const auto rs = engine.SearchBatch(queries, 1, nullptr, &serial);
  const auto rp = engine.SearchBatch(queries, 8, nullptr, &parallel);
  ASSERT_EQ(rs.size(), rp.size());
  for (std::size_t i = 0; i < rs.size(); ++i) {
    EXPECT_EQ(rs[i].best_index, rp[i].best_index);
    EXPECT_EQ(rs[i].best_distance, rp[i].best_distance);
  }
  ExpectSameCounters(serial, parallel, DistanceKindName(kind));
  EXPECT_EQ(serial.queries, queries.size());
}

INSTANTIATE_TEST_SUITE_P(Kinds, ObsEngineTest,
                         ::testing::Values(DistanceKind::kEuclidean,
                                           DistanceKind::kDtw),
                         [](const ::testing::TestParamInfo<DistanceKind>& i) {
                           return std::string(DistanceKindName(i.param));
                         });

class ObsIndexTest : public ::testing::TestWithParam<DistanceKind> {};

TEST_P(ObsIndexTest, IndexStagesObeyTheSameLedgerRules) {
  const DistanceKind kind = GetParam();
  const std::vector<Series> db = MakeProjectilePointsDatabase(30, 40, 404);
  RotationInvariantIndex::Options opts;
  opts.kind = kind;
  opts.dims = 8;
  opts.band = 4;
  auto created = RotationInvariantIndex::Create(db, opts);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  RotationInvariantIndex& index = **created;

  const Series query = db[5];
  const RotationInvariantIndex::Result plain = index.NearestNeighbor(query);
  obs::QueryMetrics m;
  const RotationInvariantIndex::Result inst =
      index.NearestNeighbor(query, &m);

  // Bit-identical with metrics attached.
  EXPECT_EQ(inst.best_index, plain.best_index);
  EXPECT_EQ(inst.best_distance, plain.best_distance);
  EXPECT_EQ(inst.counter.total_steps(), plain.counter.total_steps());
  EXPECT_EQ(inst.object_fetches, plain.object_fetches);

  // Exact attribution across signature/fetch/refine stages.
  EXPECT_EQ(m.attributed_total_steps(), inst.counter.total_steps());

  const obs::StageStats& sig = m.stage(obs::StageId::kSignatureFilter);
  const obs::StageStats& fetch = m.stage(obs::StageId::kDiskFetch);
  const obs::StageStats& refine = m.stage(obs::StageId::kRefine);
  EXPECT_TRUE(sig.used);
  EXPECT_TRUE(refine.used);
  EXPECT_EQ(sig.candidates_entered, db.size());
  EXPECT_EQ(sig.candidates_entered,
            sig.candidates_pruned + sig.candidates_survived);
  // Every signature-filter survivor is fetched exactly once and refined.
  EXPECT_EQ(sig.candidates_survived, fetch.candidates_entered);
  EXPECT_EQ(fetch.candidates_entered, inst.object_fetches);
  EXPECT_EQ(refine.candidates_entered, m.index.refinements);
  EXPECT_EQ(refine.candidates_entered,
            refine.candidates_pruned + refine.candidates_survived);
  EXPECT_EQ(m.index.object_fetches, inst.object_fetches);
  EXPECT_EQ(m.index.page_reads, inst.page_reads);
  EXPECT_EQ(m.index.candidates_pruned, sig.candidates_pruned);
  EXPECT_GT(m.index.signature_evals, 0u);
  EXPECT_EQ(m.queries, 1u);
  EXPECT_EQ(m.latency.count(), 1u);
}

TEST_P(ObsIndexTest, KnnAttributesExactly) {
  const DistanceKind kind = GetParam();
  const std::vector<Series> db = MakeProjectilePointsDatabase(26, 36, 405);
  RotationInvariantIndex::Options opts;
  opts.kind = kind;
  opts.dims = 8;
  opts.band = 4;
  auto created = RotationInvariantIndex::Create(db, opts);
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  RotationInvariantIndex::Result stats;
  obs::QueryMetrics m;
  const auto knn = (*created)->KNearestNeighbors(db[2], 3, &stats, &m);
  ASSERT_EQ(knn.size(), 3u);
  EXPECT_EQ(m.attributed_total_steps(), stats.counter.total_steps());
  EXPECT_EQ(m.index.object_fetches, stats.object_fetches);
  EXPECT_EQ(m.stage(obs::StageId::kSignatureFilter).candidates_entered,
            db.size());
}

INSTANTIATE_TEST_SUITE_P(Kinds, ObsIndexTest,
                         ::testing::Values(DistanceKind::kEuclidean,
                                           DistanceKind::kDtw),
                         [](const ::testing::TestParamInfo<DistanceKind>& i) {
                           return std::string(DistanceKindName(i.param));
                         });

}  // namespace
}  // namespace rotind
