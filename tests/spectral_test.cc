#include "src/fourier/spectral.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/distance/rotation.h"

namespace rotind {
namespace {

Series RandomZNormSeries(Rng* rng, std::size_t n) {
  Series s(n);
  for (double& v : s) v = rng->Gaussian(0.0, 1.0);
  ZNormalize(&s);
  return s;
}

TEST(SpectralTest, SignatureDims) {
  Rng rng(1);
  const Series s = RandomZNormSeries(&rng, 64);
  EXPECT_EQ(MakeSpectralSignature(s, 8).dims(), 8u);
  // Clamped to n/2.
  EXPECT_EQ(MakeSpectralSignature(s, 999).dims(), 32u);
}

TEST(SpectralTest, SignatureInvariantToRotation) {
  Rng rng(2);
  for (std::size_t n : {40u, 251u}) {
    const Series s = RandomZNormSeries(&rng, n);
    const SpectralSignature base = MakeSpectralSignature(s, 16);
    for (long shift : {3L, 11L, static_cast<long>(n - 1)}) {
      const SpectralSignature rot =
          MakeSpectralSignature(RotateLeft(s, shift), 16);
      EXPECT_NEAR(SignatureDistance(base, rot), 0.0, 1e-7);
    }
  }
}

TEST(SpectralTest, SignatureInvariantToMirror) {
  // Reversal preserves magnitudes too, so the bound also covers the
  // enantiomorphic candidates.
  Rng rng(3);
  const Series s = RandomZNormSeries(&rng, 48);
  const SpectralSignature a = MakeSpectralSignature(s, 12);
  const SpectralSignature b = MakeSpectralSignature(Reversed(s), 12);
  EXPECT_NEAR(SignatureDistance(a, b), 0.0, 1e-8);
}

/// The exactness-critical property (paper Section 4.2): signature distance
/// lower-bounds the rotation-invariant Euclidean distance, at every
/// dimensionality.
class SpectralLowerBoundTest : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(SpectralLowerBoundTest, LowerBoundsRotationInvariantEuclidean) {
  const std::size_t dims = GetParam();
  Rng rng(dims * 17 + 5);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 16 + rng.NextBounded(100);
    const Series q = RandomZNormSeries(&rng, n);
    const Series c = RandomZNormSeries(&rng, n);
    const SpectralSignature sq = MakeSpectralSignature(q, dims);
    const SpectralSignature sc = MakeSpectralSignature(c, dims);
    const double lb = SignatureDistance(sq, sc);
    const double red = RotationInvariantEuclidean(q, c);
    EXPECT_LE(lb, red + 1e-7) << "n=" << n << " dims=" << dims;

    // Mirror invariance: the same bound must hold for mirrored matching.
    RotationOptions mirror;
    mirror.mirror = true;
    EXPECT_LE(lb, RotationInvariantEuclidean(q, c, mirror) + 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, SpectralLowerBoundTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 512));

TEST(SpectralTest, MoreDimsTightenTheBound) {
  Rng rng(4);
  const std::size_t n = 128;
  const Series q = RandomZNormSeries(&rng, n);
  const Series c = RandomZNormSeries(&rng, n);
  double prev = 0.0;
  for (std::size_t dims : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const double lb = SignatureDistance(MakeSpectralSignature(q, dims),
                                        MakeSpectralSignature(c, dims));
    EXPECT_GE(lb, prev - 1e-9) << "dims=" << dims;
    prev = lb;
  }
}

TEST(SpectralTest, TriangleInequalityOnSignatures) {
  // Needed for VP-tree pruning: signature space must be a metric space.
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 32;
    const SpectralSignature a =
        MakeSpectralSignature(RandomZNormSeries(&rng, n), 8);
    const SpectralSignature b =
        MakeSpectralSignature(RandomZNormSeries(&rng, n), 8);
    const SpectralSignature c =
        MakeSpectralSignature(RandomZNormSeries(&rng, n), 8);
    EXPECT_LE(SignatureDistance(a, c),
              SignatureDistance(a, b) + SignatureDistance(b, c) + 1e-9);
    EXPECT_NEAR(SignatureDistance(a, b), SignatureDistance(b, a), 1e-12);
  }
}

TEST(SpectralTest, FftStepCostModel) {
  EXPECT_EQ(FftStepCost(1), 1u);
  EXPECT_EQ(FftStepCost(1024), 1024u * 10);
  // n log2 n rounded for non-powers of two.
  EXPECT_EQ(FftStepCost(251),
            static_cast<std::uint64_t>(std::llround(251 * std::log2(251.0))));
}

TEST(SpectralTest, CounterChargesDims) {
  Rng rng(6);
  const SpectralSignature a =
      MakeSpectralSignature(RandomZNormSeries(&rng, 64), 16);
  StepCounter counter;
  SignatureDistance(a, a, &counter);
  EXPECT_EQ(counter.steps, 16u);
}

/// Regression: SignatureDistance over signatures of differing dims used to
/// read past the shorter vector's heap buffer under NDEBUG (the assert
/// compiled away). The mismatch is now a hard error on every build type.
TEST(SpectralRegressionTest, SignatureDistanceDiesOnDimsMismatch) {
  Rng rng(7);
  const Series s = RandomZNormSeries(&rng, 64);
  const SpectralSignature a = MakeSpectralSignature(s, 8);
  const SpectralSignature b = MakeSpectralSignature(s, 4);
  EXPECT_DEATH(SignatureDistance(a, b), "dims mismatch");
}

TEST(SpectralRegressionTest, SignatureDistanceCheckedRejectsMismatch) {
  Rng rng(8);
  const Series s = RandomZNormSeries(&rng, 64);
  const SpectralSignature a = MakeSpectralSignature(s, 8);
  const SpectralSignature b = MakeSpectralSignature(s, 4);
  const StatusOr<double> bad = SignatureDistanceChecked(a, b);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  StepCounter counter;
  const StatusOr<double> good = SignatureDistanceChecked(a, a, &counter);
  ASSERT_TRUE(good.ok());
  EXPECT_NEAR(*good, 0.0, 1e-12);
  EXPECT_EQ(counter.steps, 8u);
}

/// Regression: MakeSpectralSignature silently clamps dims to n/2, so a
/// caller asking for 999 dims on a length-64 series got a 32-dim signature
/// with no signal. The checked factory surfaces the clamp as an error.
TEST(SpectralRegressionTest, CheckedFactoryRejectsTheSilentClamp) {
  Rng rng(9);
  const Series s = RandomZNormSeries(&rng, 64);
  const StatusOr<SpectralSignature> clamped =
      MakeSpectralSignatureChecked(s, 33);
  ASSERT_FALSE(clamped.ok());
  EXPECT_EQ(clamped.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(clamped.status().message().find("clamp"), std::string::npos);

  const StatusOr<SpectralSignature> tiny =
      MakeSpectralSignatureChecked(Series{1.0}, 1);
  EXPECT_FALSE(tiny.ok());

  const StatusOr<SpectralSignature> ok = MakeSpectralSignatureChecked(s, 32);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->dims(), 32u);
  // Agrees with the unchecked path when no clamp fires.
  const SpectralSignature direct = MakeSpectralSignature(s, 32);
  ASSERT_EQ(direct.dims(), ok->dims());
  for (std::size_t i = 0; i < direct.dims(); ++i) {
    EXPECT_EQ(ok->values[i], direct.values[i]);
  }
}

TEST(VecSignatureTest, InvariantToRotationAndMirror) {
  Rng rng(11);
  for (std::size_t n : {40u, 251u}) {
    const Series s = RandomZNormSeries(&rng, n);
    const VecSignature base = MakeVecSignature(s, 8);
    ASSERT_EQ(base.dims(), 8u);
    for (long shift : {1L, 7L, static_cast<long>(n - 1)}) {
      const VecSignature rot = MakeVecSignature(RotateLeft(s, shift), 8);
      EXPECT_NEAR(VecSignatureDistance(base, rot), 0.0, 1e-7);
    }
    const VecSignature mir = MakeVecSignature(Reversed(s), 8);
    EXPECT_NEAR(VecSignatureDistance(base, mir), 0.0, 1e-7);
  }
}

/// The exactness-critical property behind StageKind::kVecSignature:
/// ||v(Q) - v(C)|| <= RED(Q, C) at every pooled dimensionality, mirrors
/// included (the embedding is invariant to both, so one vector bounds the
/// whole rotation x mirror orbit).
class VecSignatureBoundTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VecSignatureBoundTest, LowerBoundsRotationInvariantEuclidean) {
  const std::size_t dims = GetParam();
  Rng rng(1000 + dims);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 16 + rng.NextBounded(64);
    const Series q = RandomZNormSeries(&rng, n);
    const Series c = RandomZNormSeries(&rng, n);
    const std::size_t d = std::min(dims, n / 2);
    const VecSignature vq = MakeVecSignature(q, d);
    const VecSignature vc = MakeVecSignature(c, d);
    const double lb = VecSignatureDistance(vq, vc);
    for (const bool mirror : {false, true}) {
      RotationOptions ropts;
      ropts.mirror = mirror;
      EXPECT_LE(lb, RotationInvariantEuclidean(q, c, ropts) + 1e-9)
          << "n=" << n << " dims=" << d << " mirror=" << mirror;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, VecSignatureBoundTest,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(VecSignatureTest, DistanceDiesOnDimsMismatch) {
  Rng rng(12);
  const Series s = RandomZNormSeries(&rng, 64);
  const VecSignature a = MakeVecSignature(s, 8);
  const VecSignature b = MakeVecSignature(s, 4);
  EXPECT_DEATH(VecSignatureDistance(a, b), "dims mismatch");
}

TEST(VecSignatureTest, CheckedVariantsRejectMisuse) {
  Rng rng(13);
  const Series s = RandomZNormSeries(&rng, 64);

  const StatusOr<VecSignature> clamped = MakeVecSignatureChecked(s, 33);
  ASSERT_FALSE(clamped.ok());
  EXPECT_EQ(clamped.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(MakeVecSignatureChecked(Series{1.0}, 1).ok());
  EXPECT_FALSE(MakeVecSignatureChecked(s, 0).ok());

  const StatusOr<double> bad = VecSignatureDistanceChecked(
      MakeVecSignature(s, 8), MakeVecSignature(s, 4));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  StepCounter counter;
  const VecSignature a = MakeVecSignature(s, 8);
  const StatusOr<double> good = VecSignatureDistanceChecked(a, a, &counter);
  ASSERT_TRUE(good.ok());
  EXPECT_NEAR(*good, 0.0, 1e-12);
  EXPECT_EQ(counter.steps, 8u);  // charges dims steps, like SignatureDistance
}

/// Pooling at dims == n/2 degenerates to one bin per band: the pooled
/// vector IS the |.|-weighted magnitude spectrum, so the two embeddings'
/// distances coincide there.
TEST(VecSignatureTest, FullDimsMatchesSpectralSignatureDistance) {
  Rng rng(14);
  const std::size_t n = 48;
  const Series q = RandomZNormSeries(&rng, n);
  const Series c = RandomZNormSeries(&rng, n);
  const VecSignature vq = MakeVecSignature(q, n / 2);
  const VecSignature vc = MakeVecSignature(c, n / 2);
  const SpectralSignature sq = MakeSpectralSignature(q, n / 2);
  const SpectralSignature sc = MakeSpectralSignature(c, n / 2);
  EXPECT_NEAR(VecSignatureDistance(vq, vc), SignatureDistance(sq, sc), 1e-9);
}

}  // namespace
}  // namespace rotind
