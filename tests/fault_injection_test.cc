#include "tests/testing/fault_injection.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "src/io/serialize.h"

namespace rotind {
namespace {

using ::rotind::testing::BinaryImageOf;
using ::rotind::testing::CorruptVariant;
using ::rotind::testing::MakeBinaryCorruptions;
using ::rotind::testing::MakeUcrCorruptions;
using ::rotind::testing::WriteTempFile;

/// A small dataset exercising every optional section (labels AND names).
Dataset SampleDataset() {
  Dataset ds;
  for (int i = 0; i < 5; ++i) {
    Series s;
    for (int j = 0; j < 8; ++j) s.push_back(0.25 * i + 0.5 * j);
    ds.items.push_back(std::move(s));
    ds.labels.push_back(i % 2);
    ds.names.push_back("item-" + std::to_string(i));
  }
  return ds;
}

std::string SampleUcrText() {
  return "1,0.5,1.5,2.5\n2,0.25,0.75,1.25\n0,-1.0,0.0,1.0\n";
}

TEST(FaultInjectionTest, ValidBinaryImageParses) {
  const std::string image = BinaryImageOf(SampleDataset());
  ASSERT_FALSE(image.empty());
  StatusOr<Dataset> parsed = ParseDatasetBinary(image.data(), image.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->size(), 5u);
  EXPECT_EQ(parsed->length(), 8u);
  EXPECT_EQ(parsed->names[4], "item-4");
}

TEST(FaultInjectionTest, EveryBinaryCorruptionIsRejectedWithItsCode) {
  const std::string image = BinaryImageOf(SampleDataset());
  ASSERT_FALSE(image.empty());
  const std::vector<CorruptVariant> variants = MakeBinaryCorruptions(image);
  // The harness must produce meaningful coverage, not a trivial list.
  ASSERT_GE(variants.size(), 20u);
  for (const CorruptVariant& v : variants) {
    StatusOr<Dataset> parsed =
        ParseDatasetBinary(v.bytes.data(), v.bytes.size());
    EXPECT_FALSE(parsed.ok()) << v.name << " was accepted";
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), v.expected_code)
          << v.name << ": got " << parsed.status().ToString();
      EXPECT_FALSE(parsed.status().message().empty()) << v.name;
    }
  }
}

/// The inflated-count/length headers must be rejected BEFORE any allocation
/// sized from the header. A multi-GB resize would either throw bad_alloc
/// (crashing the no-exceptions contract) or blow the test's address space;
/// merely completing these parses quickly is the regression signal, and the
/// harness pins the rejection to the header-sanity code.
TEST(FaultInjectionTest, InflatedHeadersRejectedWithoutAllocation) {
  const std::string image = BinaryImageOf(SampleDataset());
  ASSERT_FALSE(image.empty());
  for (const CorruptVariant& v : MakeBinaryCorruptions(image)) {
    if (v.name != "inflate-count-absurd" && v.name != "inflate-length-absurd") {
      continue;
    }
    StatusOr<Dataset> parsed =
        ParseDatasetBinary(v.bytes.data(), v.bytes.size());
    ASSERT_FALSE(parsed.ok()) << v.name;
    EXPECT_EQ(parsed.status().code(), StatusCode::kCorruptHeader) << v.name;
  }
}

TEST(FaultInjectionTest, EveryUcrCorruptionIsRejectedWithItsCode) {
  const std::string text = SampleUcrText();
  const std::vector<CorruptVariant> variants = MakeUcrCorruptions(text);
  ASSERT_GE(variants.size(), 8u);
  for (const CorruptVariant& v : variants) {
    StatusOr<Dataset> parsed = ParseDatasetUcr(v.bytes);
    EXPECT_FALSE(parsed.ok()) << v.name << " was accepted";
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), v.expected_code)
          << v.name << ": got " << parsed.status().ToString();
    }
  }
}

/// The file-path loaders surface the same codes as the in-memory parsers.
TEST(FaultInjectionTest, FileLoadersSurfaceParserCodes) {
  const std::string image = BinaryImageOf(SampleDataset());
  ASSERT_FALSE(image.empty());
  int checked = 0;
  for (const CorruptVariant& v : MakeBinaryCorruptions(image)) {
    if (v.name != "flip-magic" && v.name != "version-bump" &&
        v.name != "inflate-count-absurd") {
      continue;
    }
    const std::string path = WriteTempFile("rotind_fi_" + v.name, v.bytes);
    StatusOr<Dataset> loaded = LoadDatasetBinaryStatus(path);
    ASSERT_FALSE(loaded.ok()) << v.name;
    EXPECT_EQ(loaded.status().code(), v.expected_code) << v.name;
    std::remove(path.c_str());
    ++checked;
  }
  EXPECT_EQ(checked, 3);

  StatusOr<Dataset> missing = LoadDatasetBinaryStatus("/nonexistent/x.bin");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace rotind
