/// Regression tests for ParallelFor's exception contract: a throwing work
/// item used to escape a worker thread and terminate the whole process.
/// Now the first exception is captured, the remaining queue is drained
/// without running further items, workers are joined, and the exception is
/// rethrown to the caller. Suite name matters: CI runs `*ParallelFor*`
/// under TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>

#include "src/search/engine.h"

namespace rotind {
namespace {

TEST(ParallelForTest, RunsEveryItemAcrossThreads) {
  std::atomic<std::size_t> sum{0};
  ParallelFor(100, 8, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ParallelForTest, WorkerExceptionIsRethrownNotFatal) {
  std::atomic<int> ran{0};
  try {
    ParallelFor(200, 8, [&](std::size_t i) {
      if (i == 17) throw std::runtime_error("boom at 17");
      ++ran;
    });
    FAIL() << "expected the worker's exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "boom at 17");
  }
  // Workers stop claiming new items after the failure; some in-flight
  // items may have completed, but never the full queue.
  EXPECT_LT(ran.load(), 200);
}

TEST(ParallelForTest, EveryWorkerThrowingStillPropagatesExactlyOne) {
  try {
    ParallelFor(64, 8, [](std::size_t i) {
      throw std::runtime_error("item " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("item ", 0), 0u);
  }
}

TEST(ParallelForTest, InlinePathPropagatesAndStopsAtTheThrow) {
  int ran = 0;
  try {
    ParallelFor(10, 1, [&](std::size_t i) {
      if (i == 2) throw std::logic_error("inline failure");
      ++ran;
    });
    FAIL() << "expected the inline exception to propagate";
  } catch (const std::logic_error&) {
  }
  EXPECT_EQ(ran, 2);
}

TEST(ParallelForTest, NonStdExceptionAlsoPropagates) {
  EXPECT_THROW(ParallelFor(32, 4,
                           [](std::size_t i) {
                             if (i == 5) throw 42;
                           }),
               int);
}

}  // namespace
}  // namespace rotind
