#include "src/core/status.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace rotind {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("empty query");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "empty query");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: empty query");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kNotFound, StatusCode::kIoError, StatusCode::kInternal,
        StatusCode::kBadMagic, StatusCode::kVersionMismatch,
        StatusCode::kTruncated, StatusCode::kCorruptHeader,
        StatusCode::kBadValue, StatusCode::kRaggedRow, StatusCode::kParseError,
        StatusCode::kEmptyDataset}) {
    EXPECT_STRNE(StatusCodeName(code), "UNKNOWN");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::OutOfRange("id 9");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, SupportsMoveOnlyTypes) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(**v, 7);
  std::unique_ptr<int> taken = *std::move(v);
  EXPECT_EQ(*taken, 7);
}

TEST(StatusOrTest, OkStatusWithoutValueDegradesToInternal) {
  StatusOr<int> v{Status::Ok()};
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace rotind
