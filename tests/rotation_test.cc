#include "src/distance/rotation.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/distance/dtw.h"
#include "src/distance/euclidean.h"

namespace rotind {
namespace {

Series RandomSeries(Rng* rng, std::size_t n) {
  Series s(n);
  for (double& v : s) v = rng->Gaussian(0.0, 1.0);
  return s;
}

TEST(RotationSetTest, EnumeratesAllRotations) {
  const Series s = {1.0, 2.0, 3.0, 4.0};
  RotationSet rots(s, {});
  EXPECT_EQ(rots.count(), 4u);
  EXPECT_EQ(rots.length(), 4u);
  for (std::size_t r = 0; r < rots.count(); ++r) {
    const Series expected = RotateLeft(s, rots.shift_of(r));
    const double* p = rots.rotation(r);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(p[i], expected[i]) << "r=" << r << " i=" << i;
    }
  }
}

TEST(RotationSetTest, MirrorDoublesTheCandidates) {
  const Series s = {1.0, 2.0, 3.0};
  RotationOptions opts;
  opts.mirror = true;
  RotationSet rots(s, opts);
  EXPECT_EQ(rots.count(), 6u);
  int mirrored = 0;
  for (std::size_t r = 0; r < rots.count(); ++r) {
    if (rots.mirrored_of(r)) ++mirrored;
  }
  EXPECT_EQ(mirrored, 3);
}

TEST(RotationSetTest, MirroredCandidatesAreRotationsOfReversal) {
  const Series s = {1.0, 5.0, 2.0, 8.0};
  RotationOptions opts;
  opts.mirror = true;
  RotationSet rots(s, opts);
  const Series rev = Reversed(s);
  for (std::size_t r = 0; r < rots.count(); ++r) {
    if (!rots.mirrored_of(r)) continue;
    const Series expected = RotateLeft(rev, rots.shift_of(r));
    EXPECT_EQ(rots.Materialize(r), expected);
  }
}

TEST(RotationSetTest, MaxShiftLimitsCandidates) {
  const Series s = Series(12, 0.0);
  RotationOptions opts;
  opts.max_shift = 2;
  RotationSet rots(s, opts);
  // Shifts 0, 1, 2, 10, 11 have circular displacement <= 2.
  EXPECT_EQ(rots.count(), 5u);
  for (std::size_t r = 0; r < rots.count(); ++r) {
    const int k = rots.shift_of(r);
    EXPECT_LE(std::min(k, 12 - k), 2);
  }
}

TEST(RotationSetTest, MaxShiftZeroKeepsIdentityOnly) {
  const Series s = Series(8, 1.0);
  RotationOptions opts;
  opts.max_shift = 0;
  RotationSet rots(s, opts);
  EXPECT_EQ(rots.count(), 1u);
  EXPECT_EQ(rots.shift_of(0), 0);
}

TEST(RotationInvariantEuclideanTest, FindsPlantedRotation) {
  Rng rng(1);
  const Series q = RandomSeries(&rng, 32);
  const Series c = RotateLeft(q, 7);
  EXPECT_NEAR(RotationInvariantEuclidean(q, c), 0.0, 1e-12);
}

TEST(RotationInvariantEuclideanTest, InvariantToRotationOfEitherSide) {
  Rng rng(2);
  const Series q = RandomSeries(&rng, 24);
  const Series c = RandomSeries(&rng, 24);
  const double base = RotationInvariantEuclidean(q, c);
  for (long k : {1L, 5L, 13L}) {
    EXPECT_NEAR(RotationInvariantEuclidean(q, RotateLeft(c, k)), base, 1e-9);
    EXPECT_NEAR(RotationInvariantEuclidean(RotateLeft(q, k), c), base, 1e-9);
  }
}

TEST(RotationInvariantEuclideanTest, NeverExceedsAlignedDistance) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const Series q = RandomSeries(&rng, 20);
    const Series c = RandomSeries(&rng, 20);
    EXPECT_LE(RotationInvariantEuclidean(q, c),
              EuclideanDistance(q, c) + 1e-12);
  }
}

TEST(RotationInvariantEuclideanTest, MirrorFindsReversedMatch) {
  Rng rng(4);
  const Series q = RandomSeries(&rng, 30);
  const Series c = RotateLeft(Reversed(q), 11);
  RotationOptions no_mirror;
  RotationOptions with_mirror;
  with_mirror.mirror = true;
  EXPECT_GT(RotationInvariantEuclidean(q, c, no_mirror), 0.5);
  EXPECT_NEAR(RotationInvariantEuclidean(q, c, with_mirror), 0.0, 1e-12);
}

TEST(RotationInvariantEuclideanTest, RotationLimitedMissesFarRotation) {
  Rng rng(5);
  const Series q = RandomSeries(&rng, 40);
  const Series c = RotateLeft(q, 20);  // opposite side of the circle
  RotationOptions limited;
  limited.max_shift = 3;
  EXPECT_GT(RotationInvariantEuclidean(q, c, limited), 0.1);
  limited.max_shift = 20;
  EXPECT_NEAR(RotationInvariantEuclidean(q, c, limited), 0.0, 1e-12);
}

TEST(EarlyAbandonRotationEuclideanTest, MatchesFullScan) {
  Rng rng(6);
  for (int trial = 0; trial < 15; ++trial) {
    const Series q = RandomSeries(&rng, 28);
    const Series c = RandomSeries(&rng, 28);
    RotationSet rots(q, {});
    const RotationMatch full = RotationInvariantEuclidean(rots, c.data());
    const RotationMatch ea = EarlyAbandonRotationEuclidean(
        rots, c.data(), std::numeric_limits<double>::infinity());
    ASSERT_FALSE(ea.abandoned);
    EXPECT_NEAR(ea.distance, full.distance, 1e-9);
  }
}

TEST(EarlyAbandonRotationEuclideanTest, AbandonsWhenBestSoFarIsBetter) {
  Rng rng(7);
  const Series q = RandomSeries(&rng, 28);
  const Series c = RandomSeries(&rng, 28);
  RotationSet rots(q, {});
  const double full = RotationInvariantEuclidean(rots, c.data()).distance;
  const RotationMatch ea =
      EarlyAbandonRotationEuclidean(rots, c.data(), full * 0.5);
  EXPECT_TRUE(ea.abandoned);
  EXPECT_TRUE(std::isinf(ea.distance));
}

TEST(RotationInvariantDtwTest, FindsPlantedRotationUnderWarping) {
  Rng rng(8);
  Series q = RandomSeries(&rng, 48);
  // Smooth the series so small warps are meaningful.
  for (int pass = 0; pass < 3; ++pass) {
    Series sm = q;
    for (std::size_t i = 0; i < q.size(); ++i) {
      sm[i] = (q[i] + q[(i + 1) % q.size()] + q[(i + 47) % q.size()]) / 3.0;
    }
    q = sm;
  }
  const Series c = RotateLeft(q, 13);
  EXPECT_NEAR(RotationInvariantDtw(q, c, 3), 0.0, 1e-9);
}

TEST(RotationInvariantDtwTest, LessOrEqualRotationEuclidean) {
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const Series q = RandomSeries(&rng, 24);
    const Series c = RandomSeries(&rng, 24);
    EXPECT_LE(RotationInvariantDtw(q, c, 4),
              RotationInvariantEuclidean(q, c) + 1e-9);
  }
}

TEST(EarlyAbandonRotationDtwTest, MatchesFullScan) {
  Rng rng(10);
  for (int trial = 0; trial < 8; ++trial) {
    const Series q = RandomSeries(&rng, 32);
    const Series c = RandomSeries(&rng, 32);
    RotationSet rots(q, {});
    const RotationMatch full =
        RotationInvariantDtw(rots, c.data(), /*band=*/4);
    const RotationMatch ea = EarlyAbandonRotationDtw(
        rots, c.data(), 4, std::numeric_limits<double>::infinity());
    ASSERT_FALSE(ea.abandoned);
    EXPECT_NEAR(ea.distance, full.distance, 1e-9);
  }
}

TEST(RotationInvariantLcssTest, PerfectMatchUnderRotation) {
  Rng rng(11);
  const Series q = RandomSeries(&rng, 30);
  const Series c = RotateLeft(q, 9);
  LcssOptions opts;
  opts.epsilon = 1e-9;
  RotationSet rots(q, {});
  const RotationMatch m = RotationInvariantLcss(rots, c.data(), opts);
  EXPECT_NEAR(m.distance, 0.0, 1e-12);
  EXPECT_EQ(rots.shift_of(m.rotation_index), 9);
}

TEST(RotationInvariantEuclideanTest, StepCountIsRotationsTimesLength) {
  const std::size_t n = 16;
  Rng rng(12);
  const Series q = RandomSeries(&rng, n);
  const Series c = RandomSeries(&rng, n);
  StepCounter counter;
  RotationInvariantEuclidean(q, c, {}, &counter);
  EXPECT_EQ(counter.steps, n * n);
}

}  // namespace
}  // namespace rotind
