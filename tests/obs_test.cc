/// Unit tests for the observability layer: histogram percentiles and
/// merges, stage/wedge/index accounting, JSON schema, registry ordering,
/// and the attribution scope helpers.

#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/core/status.h"
#include "src/core/step_counter.h"

namespace rotind::obs {
namespace {

TEST(ObsStageTest, StageNamesAreStable) {
  EXPECT_STREQ(StageName(StageId::kFftFilter), "fft_filter");
  EXPECT_STREQ(StageName(StageId::kWedge), "wedge");
  EXPECT_STREQ(StageName(StageId::kExactScan), "exact_scan");
  EXPECT_STREQ(StageName(StageId::kFullScanBanded), "full_scan_banded");
  EXPECT_STREQ(StageName(StageId::kSignatureFilter), "signature_filter");
  EXPECT_STREQ(StageName(StageId::kDiskFetch), "disk_fetch");
  EXPECT_STREQ(StageName(StageId::kRefine), "refine");
}

TEST(ObsStageTest, StageStatsAccumulate) {
  StageStats a;
  a.candidates_entered = 10;
  a.candidates_pruned = 7;
  a.candidates_survived = 3;
  a.steps = 100;
  a.setup_steps = 5;
  a.early_abandons = 2;
  a.used = true;
  StageStats b;
  b.candidates_entered = 1;
  b.steps = 11;
  b += a;
  EXPECT_EQ(b.candidates_entered, 11u);
  EXPECT_EQ(b.candidates_pruned, 7u);
  EXPECT_EQ(b.candidates_survived, 3u);
  EXPECT_EQ(b.steps, 111u);
  EXPECT_EQ(b.setup_steps, 5u);
  EXPECT_EQ(b.early_abandons, 2u);
  EXPECT_EQ(b.total_steps(), 116u);
  EXPECT_TRUE(b.used);
}

TEST(ObsHistogramTest, EmptyHistogramIsAllZero) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.total_nanos(), 0u);
  EXPECT_EQ(h.min_nanos(), 0u);
  EXPECT_EQ(h.max_nanos(), 0u);
  EXPECT_EQ(h.PercentileNanos(50.0), 0u);
  EXPECT_EQ(h.PercentileNanos(99.0), 0u);
}

TEST(ObsHistogramTest, SingleSamplePercentilesClampToObservedMax) {
  LatencyHistogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.total_nanos(), 1000u);
  EXPECT_EQ(h.min_nanos(), 1000u);
  EXPECT_EQ(h.max_nanos(), 1000u);
  // Bucket upper edge for 1000ns is 1024ns; the clamp reports the true max.
  EXPECT_EQ(h.PercentileNanos(50.0), 1000u);
  EXPECT_EQ(h.PercentileNanos(99.0), 1000u);
}

TEST(ObsHistogramTest, PercentilesAreMonotone) {
  LatencyHistogram h;
  for (std::uint64_t v :
       {10u, 20u, 100u, 500u, 1000u, 5000u, 10000u, 100000u, 1000000u}) {
    h.Record(v);
  }
  const std::uint64_t p50 = h.PercentileNanos(50.0);
  const std::uint64_t p95 = h.PercentileNanos(95.0);
  const std::uint64_t p99 = h.PercentileNanos(99.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max_nanos());
  EXPECT_GE(p50, h.min_nanos());
}

TEST(ObsHistogramTest, OverflowLandsInLastBucket) {
  LatencyHistogram h;
  const std::uint64_t huge = std::uint64_t{1} << 62;  // way past 2^39 ns
  h.Record(huge);
  EXPECT_EQ(h.buckets()[LatencyHistogram::kBuckets - 1], 1u);
  EXPECT_EQ(h.max_nanos(), huge);
  EXPECT_EQ(h.PercentileNanos(99.0), huge);  // clamped to observed max
}

TEST(ObsHistogramTest, MergeIsElementwiseSum) {
  LatencyHistogram a;
  a.Record(100);
  a.Record(200);
  LatencyHistogram b;
  b.Record(50);
  b.Record(400000);
  a += b;
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.total_nanos(), 100u + 200u + 50u + 400000u);
  EXPECT_EQ(a.min_nanos(), 50u);
  EXPECT_EQ(a.max_nanos(), 400000u);
}

TEST(ObsWedgeTest, TrajectoryIsCappedButProbeCountIsNot) {
  WedgeStats w;
  for (int i = 0; i < 300; ++i) w.RecordK(i);
  EXPECT_EQ(w.adapt_probes, 300u);
  EXPECT_EQ(w.k_trajectory.size(), WedgeStats::kMaxTrajectory);
  EXPECT_EQ(w.k_trajectory.front(), 0);
}

TEST(ObsWedgeTest, MergeAppendsTrajectoryUpToCap) {
  WedgeStats a;
  a.RecordK(5);
  a.wedges_tested = 10;
  WedgeStats b;
  b.RecordK(7);
  b.wedges_pruned = 3;
  a += b;
  EXPECT_EQ(a.wedges_tested, 10u);
  EXPECT_EQ(a.wedges_pruned, 3u);
  EXPECT_EQ(a.adapt_probes, 2u);
  ASSERT_EQ(a.k_trajectory.size(), 2u);
  EXPECT_EQ(a.k_trajectory[0], 5);
  EXPECT_EQ(a.k_trajectory[1], 7);
}

TEST(ObsQueryMetricsTest, AttributedTotalSumsAllStages) {
  QueryMetrics m;
  m.stage(StageId::kFftFilter).steps = 100;
  m.stage(StageId::kFftFilter).setup_steps = 10;
  m.stage(StageId::kWedge).steps = 1000;
  m.stage(StageId::kRefine).setup_steps = 5;
  EXPECT_EQ(m.attributed_total_steps(), 1115u);
}

TEST(ObsQueryMetricsTest, MergeFoldsEveryComponent) {
  QueryMetrics a;
  a.queries = 1;
  a.stage(StageId::kWedge).steps = 10;
  a.stage(StageId::kWedge).used = true;
  a.wedge.wedges_tested = 4;
  a.index.object_fetches = 2;
  a.latency.Record(100);
  QueryMetrics b;
  b.queries = 2;
  b.stage(StageId::kWedge).steps = 20;
  b.stage(StageId::kWedge).used = true;
  b.wedge.wedges_tested = 6;
  b.index.object_fetches = 1;
  b.latency.Record(300);
  a += b;
  EXPECT_EQ(a.queries, 3u);
  EXPECT_EQ(a.stage(StageId::kWedge).steps, 30u);
  EXPECT_EQ(a.wedge.wedges_tested, 10u);
  EXPECT_EQ(a.index.object_fetches, 3u);
  EXPECT_EQ(a.latency.count(), 2u);
}

TEST(ObsQueryMetricsTest, ToJsonEmitsOnlyUsedStages) {
  QueryMetrics m;
  m.stage(StageId::kWedge).used = true;
  m.stage(StageId::kWedge).steps = 42;
  const std::string json = m.ToJson();
  EXPECT_NE(json.find("\"stage\": \"wedge\""), std::string::npos);
  EXPECT_EQ(json.find("fft_filter"), std::string::npos);
  EXPECT_EQ(json.find("signature_filter"), std::string::npos);
}

TEST(ObsQueryMetricsTest, ToJsonHasTheSchemaKeys) {
  QueryMetrics m;
  m.stage(StageId::kExactScan).used = true;
  m.latency.Record(512);
  const std::string json = m.ToJson();
  for (const char* key :
       {"queries", "attributed_total_steps", "stages", "candidates_entered",
        "candidates_pruned", "candidates_survived", "steps", "setup_steps",
        "early_abandons", "wall_nanos", "wedge", "k_trajectory", "index",
        "signature_evals", "latency", "p50_nanos", "p95_nanos", "p99_nanos"}) {
    EXPECT_NE(json.find(std::string("\"") + key + "\""), std::string::npos)
        << "missing key: " << key;
  }
}

TEST(ObsScopeTest, StageScopeAttributesCounterDeltas) {
  StageStats stats;
  StepCounter counter;
  counter.steps = 100;
  counter.setup_steps = 10;
  counter.early_abandons = 1;
  {
    const StageScope scope(&stats, &counter);
    counter.steps += 40;
    counter.setup_steps += 3;
    counter.early_abandons += 2;
  }
  EXPECT_TRUE(stats.used);
  EXPECT_EQ(stats.steps, 40u);
  EXPECT_EQ(stats.setup_steps, 3u);
  EXPECT_EQ(stats.early_abandons, 2u);
  // The counter itself was only read.
  EXPECT_EQ(counter.steps, 140u);
}

TEST(ObsScopeTest, NullStatsIsANoop) {
  StepCounter counter;
  {
    const StageScope scope(nullptr, &counter);
    counter.steps += 7;
  }
  EXPECT_EQ(counter.steps, 7u);
}

TEST(ObsScopeTest, QueryLatencyScopeRecordsOneSample) {
  QueryMetrics m;
  { const QueryLatencyScope scope(&m); }
  EXPECT_EQ(m.queries, 1u);
  EXPECT_EQ(m.latency.count(), 1u);
}

TEST(ObsRegistryTest, GetInsertsOrFindsPreservingOrder) {
  MetricsRegistry registry;
  registry.Get("beta").queries = 1;
  registry.Get("alpha").queries = 2;
  registry.Get("beta").queries += 10;
  ASSERT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.entries()[0].first, "beta");
  EXPECT_EQ(registry.entries()[0].second.queries, 11u);
  EXPECT_EQ(registry.entries()[1].first, "alpha");
  const std::string json = registry.ToJson();
  EXPECT_LT(json.find("\"beta\""), json.find("\"alpha\""));
}

TEST(ObsRegistryTest, WriteJsonFileRoundTripsAndReportsIoErrors) {
  MetricsRegistry registry;
  registry.Get("run").stage(StageId::kWedge).used = true;
  const std::string path =
      ::testing::TempDir() + "/obs_registry_roundtrip.json";
  ASSERT_TRUE(registry.WriteJsonFile(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text(1 << 12, '\0');
  text.resize(std::fread(text.data(), 1, text.size(), f));
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(text.find("\"metrics\""), std::string::npos);
  EXPECT_NE(text.find("\"run\""), std::string::npos);

  const Status bad =
      registry.WriteJsonFile("/nonexistent-dir-rotind/metrics.json");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace rotind::obs
