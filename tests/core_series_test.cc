#include "src/core/series.h"

#include <cmath>

#include <gtest/gtest.h>

namespace rotind {
namespace {

TEST(SeriesTest, MeanAndStdDev) {
  const Series s = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(s), 2.5);
  EXPECT_NEAR(StdDev(s), std::sqrt(1.25), 1e-12);
}

TEST(SeriesTest, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({}), 0.0);
}

TEST(SeriesTest, ZNormalizeProducesZeroMeanUnitVariance) {
  Series s = {3.0, 7.0, -2.0, 10.0, 0.5};
  ZNormalize(&s);
  EXPECT_NEAR(Mean(s), 0.0, 1e-12);
  EXPECT_NEAR(StdDev(s), 1.0, 1e-12);
}

TEST(SeriesTest, ZNormalizeFlatSeriesShiftsToZero) {
  Series s = {4.0, 4.0, 4.0};
  ZNormalize(&s);
  for (double v : s) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(SeriesTest, ZNormalizeNullIsSafe) { ZNormalize(nullptr); }

TEST(SeriesTest, ZNormalizedLeavesInputIntact) {
  const Series s = {1.0, 2.0, 3.0};
  const Series z = ZNormalized(s);
  EXPECT_EQ(s[0], 1.0);
  EXPECT_NEAR(Mean(z), 0.0, 1e-12);
}

TEST(SeriesTest, RotateLeftBasic) {
  const Series s = {0.0, 1.0, 2.0, 3.0};
  EXPECT_EQ(RotateLeft(s, 1), (Series{1.0, 2.0, 3.0, 0.0}));
  EXPECT_EQ(RotateLeft(s, 0), s);
  EXPECT_EQ(RotateLeft(s, 4), s);
}

TEST(SeriesTest, RotateLeftNegativeShiftRotatesRight) {
  const Series s = {0.0, 1.0, 2.0, 3.0};
  EXPECT_EQ(RotateLeft(s, -1), (Series{3.0, 0.0, 1.0, 2.0}));
  EXPECT_EQ(RotateLeft(s, -5), (Series{3.0, 0.0, 1.0, 2.0}));
}

TEST(SeriesTest, RotateLeftLargeShiftWraps) {
  const Series s = {0.0, 1.0, 2.0};
  EXPECT_EQ(RotateLeft(s, 7), RotateLeft(s, 1));
}

TEST(SeriesTest, RotateEmptySeries) {
  EXPECT_TRUE(RotateLeft({}, 3).empty());
}

TEST(SeriesTest, ReversedReverses) {
  EXPECT_EQ(Reversed({1.0, 2.0, 3.0}), (Series{3.0, 2.0, 1.0}));
}

TEST(SeriesTest, DoubledConcatenates) {
  const Series d = Doubled({1.0, 2.0});
  EXPECT_EQ(d, (Series{1.0, 2.0, 1.0, 2.0}));
}

TEST(SeriesTest, DoubledWindowsAreRotations) {
  const Series s = {5.0, 1.0, 9.0, 2.0};
  const Series d = Doubled(s);
  for (std::size_t k = 0; k < s.size(); ++k) {
    const Series rot = RotateLeft(s, static_cast<long>(k));
    for (std::size_t i = 0; i < s.size(); ++i) {
      EXPECT_DOUBLE_EQ(d[k + i], rot[i]) << "k=" << k << " i=" << i;
    }
  }
}

TEST(SeriesTest, ResampleSameLengthIsIdentity) {
  const Series s = {1.0, 5.0, 2.0};
  EXPECT_EQ(ResampleLinear(s, 3), s);
}

TEST(SeriesTest, ResampleUpInterpolatesPeriodically) {
  const Series s = {0.0, 1.0};
  const Series r = ResampleLinear(s, 4);
  ASSERT_EQ(r.size(), 4u);
  EXPECT_DOUBLE_EQ(r[0], 0.0);
  EXPECT_DOUBLE_EQ(r[1], 0.5);
  EXPECT_DOUBLE_EQ(r[2], 1.0);
  EXPECT_DOUBLE_EQ(r[3], 0.5);  // wraps back toward s[0]
}

TEST(SeriesTest, ResampleDownKeepsRange) {
  Series s(100);
  for (std::size_t i = 0; i < s.size(); ++i) {
    s[i] = std::sin(2 * 3.14159265358979 * i / 100.0);
  }
  const Series r = ResampleLinear(s, 25);
  ASSERT_EQ(r.size(), 25u);
  for (double v : r) {
    EXPECT_LE(v, 1.0 + 1e-9);
    EXPECT_GE(v, -1.0 - 1e-9);
  }
}

TEST(SeriesTest, ResampleEmptyOrZero) {
  EXPECT_TRUE(ResampleLinear({}, 5).empty());
  EXPECT_TRUE(ResampleLinear({1.0}, 0).empty());
}

TEST(DatasetTest, LengthAndSize) {
  Dataset ds;
  EXPECT_TRUE(ds.empty());
  EXPECT_EQ(ds.length(), 0u);
  ds.items.push_back({1.0, 2.0, 3.0});
  ds.items.push_back({4.0, 5.0, 6.0});
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.length(), 3u);
}

}  // namespace
}  // namespace rotind
