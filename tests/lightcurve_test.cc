#include "src/lightcurve/lightcurve.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/distance/euclidean.h"
#include "src/distance/rotation.h"

namespace rotind {
namespace {

TEST(LightCurveTest, TemplatesAreZNormalised) {
  for (auto cls : {VariableStarClass::kEclipsingBinary,
                   VariableStarClass::kRrLyrae,
                   VariableStarClass::kCepheid}) {
    const Series t = LightCurveTemplate(cls, 256);
    ASSERT_EQ(t.size(), 256u);
    EXPECT_NEAR(Mean(t), 0.0, 1e-9) << ToString(cls);
    EXPECT_NEAR(StdDev(t), 1.0, 1e-9) << ToString(cls);
  }
}

TEST(LightCurveTest, TemplatesAreMutuallyDistinct) {
  const std::size_t n = 128;
  const Series eb =
      LightCurveTemplate(VariableStarClass::kEclipsingBinary, n);
  const Series rr = LightCurveTemplate(VariableStarClass::kRrLyrae, n);
  const Series cep = LightCurveTemplate(VariableStarClass::kCepheid, n);
  // Even under best rotation alignment the classes stay well separated.
  EXPECT_GT(RotationInvariantEuclidean(eb, rr), 3.0);
  EXPECT_GT(RotationInvariantEuclidean(eb, cep), 3.0);
  EXPECT_GT(RotationInvariantEuclidean(rr, cep), 3.0);
}

TEST(LightCurveTest, GeneratedCurveNearItsTemplateUnderRotation) {
  Rng rng(1);
  LightCurveOptions opts;
  opts.noise_sigma = 0.05;
  opts.shape_jitter = 0.02;
  const std::size_t n = 128;
  for (auto cls : {VariableStarClass::kEclipsingBinary,
                   VariableStarClass::kRrLyrae,
                   VariableStarClass::kCepheid}) {
    const Series curve = GenerateLightCurve(cls, n, &rng, opts);
    const Series tmpl = LightCurveTemplate(cls, n);
    // The random phase makes the ALIGNED distance large but the
    // rotation-invariant distance small — the core premise of Section 2.4.
    EXPECT_LT(RotationInvariantEuclidean(curve, tmpl), 4.0) << ToString(cls);
  }
}

TEST(LightCurveTest, RandomPhaseActuallyShifts) {
  Rng rng(2);
  LightCurveOptions opts;
  opts.noise_sigma = 0.0;
  opts.shape_jitter = 0.0;
  const std::size_t n = 256;
  // With many draws, at least one should be visibly misaligned from the
  // template even though rotation-invariant distance is ~0.
  bool some_misaligned = false;
  const Series tmpl = LightCurveTemplate(VariableStarClass::kRrLyrae, n);
  for (int i = 0; i < 8; ++i) {
    const Series c =
        GenerateLightCurve(VariableStarClass::kRrLyrae, n, &rng, opts);
    if (EuclideanDistance(c, tmpl) > 1.0) some_misaligned = true;
    EXPECT_LT(RotationInvariantEuclidean(c, tmpl), 0.5);
  }
  EXPECT_TRUE(some_misaligned);
}

TEST(LightCurveDatasetTest, SizesAndLabels) {
  const Dataset ds = MakeLightCurveDataset(10, 64, 123);
  EXPECT_EQ(ds.size(), 30u);
  EXPECT_EQ(ds.length(), 64u);
  ASSERT_EQ(ds.labels.size(), 30u);
  int counts[3] = {0, 0, 0};
  for (int label : ds.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LE(label, 2);
    ++counts[label];
  }
  EXPECT_EQ(counts[0], 10);
  EXPECT_EQ(counts[1], 10);
  EXPECT_EQ(counts[2], 10);
  EXPECT_EQ(ds.names.size(), 30u);
}

TEST(LightCurveDatasetTest, DeterministicForSeed) {
  const Dataset a = MakeLightCurveDataset(5, 32, 7);
  const Dataset b = MakeLightCurveDataset(5, 32, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.items[i], b.items[i]);
  }
}

TEST(ToStringTest, Names) {
  EXPECT_EQ(ToString(VariableStarClass::kEclipsingBinary), "EclipsingBinary");
  EXPECT_EQ(ToString(VariableStarClass::kRrLyrae), "RRLyrae");
  EXPECT_EQ(ToString(VariableStarClass::kCepheid), "Cepheid");
}

}  // namespace
}  // namespace rotind
