/// Lock-order / deadlock stress for the annotated sync layer: 8 threads
/// hammer a 4-frame BufferPool through FileBackend's retry path while
/// transient faults and torn pages fire underneath, driving the full
/// ranked-mutex chain (backend error latch > buffer pool > fault
/// schedule) concurrently. In contract-enabled builds every acquisition
/// is checked against the thread's held ranks, so this test completing at
/// all proves the documented hierarchy holds under contention — and the
/// assertions prove the pool stays consistent: no frame leaks, counters
/// monotone, bytes bit-exact whenever a fetch succeeds.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/status.h"
#include "src/datasets/synthetic.h"
#include "src/index/index_io.h"
#include "src/storage/backend.h"
#include "src/storage/fault_injection.h"

namespace rotind::storage {
namespace {

std::string TempPath(const char* tag) {
  return "/tmp/rotind_sync_stress." + std::to_string(::getpid()) + "." +
         tag + ".ridx";
}

std::string WriteIndex(const std::vector<Series>& items, const char* tag) {
  Dataset ds;
  ds.items = items;
  IndexBuildOptions build;
  build.sig_dims = 4;
  build.paa_dims = 4;
  build.page_size_bytes = 256;  // Series straddle pages: multi-pin fetches.
  const std::string path = TempPath(tag);
  const Status s = BuildIndexFile(ds, build, path);
  EXPECT_TRUE(s.ok()) << s.message();
  return path;
}

TEST(SyncStressTest, ContendedPoolUnderFaultsStaysConsistent) {
  const std::vector<Series> items =
      MakeProjectilePointsDatabase(24, 40, 404);
  const std::string path = WriteIndex(items, "contended");

  FileBackend::Tuning tuning;
  tuning.retry.max_attempts = 4;
  tuning.retry.initial_backoff = std::chrono::microseconds(1);
  tuning.faults.seed = 7;
  tuning.faults.transient_read_prob = 0.2;
  tuning.faults.transient_burst = 2;  // Shorter than the attempt budget.
  tuning.faults.torn_page_prob = 0.05;
  auto backend = FileBackend::Open(path, 4, EvictionPolicy::kLru, tuning);
  ASSERT_TRUE(backend.ok()) << backend.status().message();
  const std::size_t capacity = (*backend)->pool().capacity_pages();
  ASSERT_EQ(capacity, 4u);

  constexpr int kThreads = 8;
  constexpr int kIters = 300;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> successes{0};
  std::atomic<std::uint64_t> capacity_rejections{0};
  std::atomic<std::uint64_t> io_failures{0};
  std::atomic<int> bad_outcomes{0};  // gtest macros are not thread-safe.
  std::vector<FetchStats> stats(kThreads);

  // Sampler: concurrently reads the pool's counter snapshot (taking the
  // pool mutex against 8 writers) and checks monotonicity + occupancy.
  std::atomic<int> sampler_violations{0};
  std::thread sampler([&] {
    PoolCounters prev;
    while (!stop.load(std::memory_order_relaxed)) {
      const PoolCounters now = (*backend)->pool().counters();
      const bool monotone = now.hits >= prev.hits &&
                            now.misses >= prev.misses &&
                            now.evictions >= prev.evictions &&
                            now.bytes_read >= prev.bytes_read &&
                            now.failed_reads >= prev.failed_reads;
      if (!monotone ||
          (*backend)->pool().resident_pages() > capacity) {
        sampler_violations.fetch_add(1, std::memory_order_relaxed);
      }
      prev = now;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::size_t idx =
            (static_cast<std::size_t>(t) * 131 + static_cast<std::size_t>(i)) %
            items.size();
        const auto h = (*backend)->TryFetch(idx, &stats[t]);
        if (h.ok()) {
          successes.fetch_add(1, std::memory_order_relaxed);
          if (std::memcmp(h->data(), items[idx].data(),
                          items[idx].size() * sizeof(double)) != 0) {
            bad_outcomes.fetch_add(1, std::memory_order_relaxed);
          }
          continue;
        }
        // 8 concurrent multi-page pins against 4 frames legitimately
        // exhaust capacity, and a burst can outlive the retry budget —
        // both must surface typed, nothing else is acceptable.
        switch (h.status().code()) {
          case StatusCode::kInvalidArgument:
            capacity_rejections.fetch_add(1, std::memory_order_relaxed);
            break;
          case StatusCode::kIoError:
          case StatusCode::kCorruptHeader:
            io_failures.fetch_add(1, std::memory_order_relaxed);
            break;
          default:
            bad_outcomes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  sampler.join();

  EXPECT_EQ(bad_outcomes.load(), 0)
      << "wrong bytes or an untyped failure escaped under contention";
  EXPECT_EQ(sampler_violations.load(), 0)
      << "pool counters regressed or residency exceeded capacity";
  EXPECT_GT(successes.load(), 0u);

  // Every handle was dropped: no pinned frame leaked through any retry,
  // eviction, or error path.
  EXPECT_EQ((*backend)->pool().pinned_pages(), 0u);
  EXPECT_LE((*backend)->pool().resident_pages(), capacity);

  std::uint64_t absorbed = 0;
  std::uint64_t retries = 0;
  for (const FetchStats& s : stats) {
    absorbed += s.faults_absorbed;
    retries += s.retries;
  }
  EXPECT_GT(absorbed, 0u) << "the schedule injected nothing: stress vacuous";
  EXPECT_GE(retries, absorbed);
  EXPECT_GT((*backend)->fault_counters().total(), 0u);

  const PoolCounters final_counters = (*backend)->pool().counters();
  EXPECT_GT(final_counters.misses, 0u);
  EXPECT_GT(final_counters.evictions, 0u) << "4 frames, 24 objects: must evict";
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rotind::storage
