#include "src/search/scan.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/datasets/synthetic.h"
#include "src/distance/rotation.h"

namespace rotind {
namespace {

std::vector<Series> RandomDatabase(Rng* rng, std::size_t m, std::size_t n) {
  std::vector<Series> db(m);
  for (Series& s : db) {
    s.resize(n);
    for (double& v : s) v = rng->Gaussian(0.0, 1.0);
    ZNormalize(&s);
  }
  return db;
}

Series RandomQuery(Rng* rng, std::size_t n) {
  Series q(n);
  for (double& v : q) v = rng->Gaussian(0.0, 1.0);
  ZNormalize(&q);
  return q;
}

TEST(ScanTest, AllEuclideanRivalsAgree) {
  Rng rng(1);
  const std::size_t n = 32;
  const std::vector<Series> db = RandomDatabase(&rng, 40, n);
  ScanOptions options;
  options.kind = DistanceKind::kEuclidean;

  for (int trial = 0; trial < 5; ++trial) {
    const Series q = RandomQuery(&rng, n);
    const ScanResult brute =
        SearchDatabase(db, q, ScanAlgorithm::kBruteForce, options);
    for (ScanAlgorithm algo :
         {ScanAlgorithm::kEarlyAbandon, ScanAlgorithm::kFftLowerBound,
          ScanAlgorithm::kWedge}) {
      const ScanResult r = SearchDatabase(db, q, algo, options);
      EXPECT_NEAR(r.best_distance, brute.best_distance, 1e-9)
          << "algo=" << static_cast<int>(algo);
      EXPECT_EQ(r.best_index, brute.best_index);
    }
  }
}

TEST(ScanTest, AllDtwRivalsAgree) {
  Rng rng(2);
  const std::size_t n = 24;
  const std::vector<Series> db = RandomDatabase(&rng, 25, n);
  ScanOptions options;
  options.kind = DistanceKind::kDtw;
  options.band = 3;

  for (int trial = 0; trial < 3; ++trial) {
    const Series q = RandomQuery(&rng, n);
    const ScanResult banded =
        SearchDatabase(db, q, ScanAlgorithm::kBruteForceBanded, options);
    for (ScanAlgorithm algo :
         {ScanAlgorithm::kEarlyAbandon, ScanAlgorithm::kWedge}) {
      const ScanResult r = SearchDatabase(db, q, algo, options);
      EXPECT_NEAR(r.best_distance, banded.best_distance, 1e-9);
      EXPECT_EQ(r.best_index, banded.best_index);
    }
  }
}

TEST(ScanTest, FindsPlantedRotatedMatch) {
  Rng rng(3);
  const std::size_t n = 40;
  std::vector<Series> db = RandomDatabase(&rng, 30, n);
  const Series q = RandomQuery(&rng, n);
  db[17] = RotateLeft(q, 9);
  ScanOptions options;
  for (ScanAlgorithm algo :
       {ScanAlgorithm::kBruteForce, ScanAlgorithm::kEarlyAbandon,
        ScanAlgorithm::kFftLowerBound, ScanAlgorithm::kWedge}) {
    const ScanResult r = SearchDatabase(db, q, algo, options);
    EXPECT_EQ(r.best_index, 17) << "algo=" << static_cast<int>(algo);
    EXPECT_NEAR(r.best_distance, 0.0, 1e-9);
  }
}

TEST(ScanTest, WedgeReportsWinningShift) {
  Rng rng(4);
  const std::size_t n = 36;
  std::vector<Series> db = RandomDatabase(&rng, 10, n);
  const Series q = RandomQuery(&rng, n);
  db[3] = RotateLeft(q, 11);
  const ScanResult r =
      SearchDatabase(db, q, ScanAlgorithm::kWedge, ScanOptions{});
  EXPECT_EQ(r.best_index, 3);
  EXPECT_EQ(r.best_shift, 11);
  EXPECT_FALSE(r.best_mirrored);
}

TEST(ScanTest, MirrorQueryFindsReversedObject) {
  Rng rng(5);
  const std::size_t n = 30;
  std::vector<Series> db = RandomDatabase(&rng, 12, n);
  const Series q = RandomQuery(&rng, n);
  db[7] = RotateLeft(Reversed(q), 4);
  ScanOptions options;
  options.rotation.mirror = true;
  for (ScanAlgorithm algo : {ScanAlgorithm::kEarlyAbandon,
                             ScanAlgorithm::kWedge}) {
    const ScanResult r = SearchDatabase(db, q, algo, options);
    EXPECT_EQ(r.best_index, 7);
    EXPECT_NEAR(r.best_distance, 0.0, 1e-9);
    EXPECT_TRUE(r.best_mirrored);
  }
}

TEST(ScanTest, WedgeIsCheaperThanBruteForceOnRealisticData) {
  // The headline claim, in miniature: on a shape database, wedge search
  // needs far fewer steps than the brute-force scan.
  const std::size_t n = 64;
  const std::vector<Series> db = MakeProjectilePointsDatabase(200, n, 77);
  Rng rng(6);
  const Series q = db[rng.NextBounded(200)];
  std::vector<Series> rest = db;
  rest.erase(rest.begin() + 50);

  ScanOptions options;
  const ScanResult brute =
      SearchDatabase(rest, q, ScanAlgorithm::kBruteForce, options);
  const ScanResult wedge =
      SearchDatabase(rest, q, ScanAlgorithm::kWedge, options);
  EXPECT_NEAR(wedge.best_distance, brute.best_distance, 1e-9);
  EXPECT_LT(wedge.counter.total_steps(), brute.counter.total_steps() / 5);
}

TEST(ScanTest, AnalyticBruteForceStepsMatchActualCounter) {
  Rng rng(7);
  const std::size_t n = 20;
  const std::size_t m = 15;
  const std::vector<Series> db = RandomDatabase(&rng, m, n);
  const Series q = RandomQuery(&rng, n);

  ScanOptions options;
  const ScanResult ed =
      SearchDatabase(db, q, ScanAlgorithm::kBruteForce, options);
  EXPECT_EQ(ed.counter.total_steps(),
            AnalyticBruteForceSteps(m, n, n, DistanceKind::kEuclidean, 0));

  options.kind = DistanceKind::kDtw;
  options.band = 3;
  const ScanResult dtw =
      SearchDatabase(db, q, ScanAlgorithm::kBruteForceBanded, options);
  EXPECT_EQ(dtw.counter.total_steps(),
            AnalyticBruteForceSteps(m, n, n, DistanceKind::kDtw, 3));

  const ScanResult dtw_full =
      SearchDatabase(db, q, ScanAlgorithm::kBruteForce, options);
  EXPECT_EQ(dtw_full.counter.total_steps(),
            AnalyticBruteForceSteps(m, n, n, DistanceKind::kDtw, -1));
}

TEST(KnnSearchTest, MatchesBruteForceOrdering) {
  Rng rng(8);
  const std::size_t n = 28;
  const std::vector<Series> db = RandomDatabase(&rng, 30, n);
  const Series q = RandomQuery(&rng, n);

  // Reference: compute all rotation-invariant distances directly.
  std::vector<std::pair<double, int>> ref;
  for (std::size_t i = 0; i < db.size(); ++i) {
    ref.emplace_back(RotationInvariantEuclidean(q, db[i]),
                     static_cast<int>(i));
  }
  std::sort(ref.begin(), ref.end());

  for (ScanAlgorithm algo : {ScanAlgorithm::kBruteForce,
                             ScanAlgorithm::kEarlyAbandon,
                             ScanAlgorithm::kWedge}) {
    const std::vector<Neighbor> knn =
        KnnSearchDatabase(db, q, 5, algo, ScanOptions{});
    ASSERT_EQ(knn.size(), 5u);
    for (int i = 0; i < 5; ++i) {
      EXPECT_NEAR(knn[static_cast<std::size_t>(i)].distance,
                  ref[static_cast<std::size_t>(i)].first, 1e-9)
          << "algo=" << static_cast<int>(algo) << " i=" << i;
    }
  }
}

TEST(KnnSearchTest, KLargerThanDatabase) {
  Rng rng(9);
  const std::vector<Series> db = RandomDatabase(&rng, 4, 16);
  const Series q = RandomQuery(&rng, 16);
  const std::vector<Neighbor> knn =
      KnnSearchDatabase(db, q, 10, ScanAlgorithm::kWedge, ScanOptions{});
  EXPECT_EQ(knn.size(), 4u);
}

TEST(RangeSearchTest, MatchesBruteForceSet) {
  Rng rng(10);
  const std::size_t n = 24;
  const std::vector<Series> db = RandomDatabase(&rng, 40, n);
  const Series q = RandomQuery(&rng, n);

  std::vector<double> dists;
  for (const Series& c : db) {
    dists.push_back(RotationInvariantEuclidean(q, c));
  }
  std::vector<double> sorted = dists;
  std::sort(sorted.begin(), sorted.end());
  const double radius = sorted[10];  // include exactly 11 objects (ties rare)

  for (ScanAlgorithm algo : {ScanAlgorithm::kBruteForce,
                             ScanAlgorithm::kEarlyAbandon,
                             ScanAlgorithm::kWedge}) {
    const std::vector<Neighbor> in_range =
        RangeSearchDatabase(db, q, radius, algo, ScanOptions{});
    std::size_t expected = 0;
    for (double d : dists) {
      if (d <= radius) ++expected;
    }
    EXPECT_EQ(in_range.size(), expected) << "algo=" << static_cast<int>(algo);
    for (const Neighbor& nb : in_range) {
      EXPECT_LE(nb.distance, radius + 1e-12);
      EXPECT_NEAR(nb.distance, dists[static_cast<std::size_t>(nb.index)],
                  1e-9);
    }
  }
}

TEST(ScanTest, EmptyDatabase) {
  const Series q = {1.0, 2.0, 3.0};
  const ScanResult r =
      SearchDatabase({}, q, ScanAlgorithm::kWedge, ScanOptions{});
  EXPECT_EQ(r.best_index, -1);
  EXPECT_TRUE(std::isinf(r.best_distance));
}

}  // namespace
}  // namespace rotind
