/// Property tests for the paper's lower-bound invariants — the contracts
/// that `ROTIND_CONTRACT` asserts inline (src/core/contracts.h) are here
/// verified directly over randomized datasets, so the sandwich
///
///   LB_Keogh(C, W)  <=  min_s Measure(Q_rot_s, C)
///
/// (Propositions 1-2) is checked in EVERY build type, not only when
/// contracts are compiled in. The death test at the bottom additionally
/// proves the inline contracts have teeth: a deliberately corrupted
/// envelope must abort the process in contract-enabled builds.

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/contracts.h"
#include "src/core/random.h"
#include "src/core/series.h"
#include "src/distance/dtw.h"
#include "src/distance/euclidean.h"
#include "src/distance/rotation.h"
#include "src/envelope/envelope.h"
#include "src/envelope/lower_bound.h"
#include "src/envelope/wedge_tree.h"
#include "src/search/hmerge.h"

namespace rotind {
namespace {

Series RandomSeries(Rng* rng, std::size_t n) {
  Series s(n);
  for (double& v : s) v = rng->Gaussian(0.0, 1.0);
  return s;
}

/// L <= U pointwise survives any sequence of merges (Proposition 1's
/// structural precondition).
TEST(ContractPropertyTest, EnvelopeStaysOrderedUnderMerges) {
  Rng rng(2006);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 8 + rng.NextBounded(64);
    Envelope env = Envelope::FromSeries(RandomSeries(&rng, n));
    ASSERT_TRUE(env.IsOrdered());
    for (int m = 0; m < 6; ++m) {
      if (m % 2 == 0) {
        env.MergeSeries(RandomSeries(&rng, n).data(), n);
      } else {
        env.MergeInPlace(Envelope::FromSeries(RandomSeries(&rng, n)));
      }
      EXPECT_TRUE(env.IsOrdered()) << "n=" << n << " merge=" << m;
    }
  }
}

/// Proposition 2 containment: the band-widened envelope encloses the
/// unwidened one, and widening is monotone in the band.
TEST(ContractPropertyTest, DtwExpansionContainsEuclideanEnvelope) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 12 + rng.NextBounded(48);
    Envelope env = Envelope::FromSeries(RandomSeries(&rng, n));
    for (int m = 0; m < 3; ++m) {
      env.MergeSeries(RandomSeries(&rng, n).data(), n);
    }
    Envelope prev = env;
    for (int band : {1, 2, 5, 9}) {
      const Envelope widened = env.ExpandedForDtw(band);
      EXPECT_TRUE(widened.Encloses(env)) << "band=" << band;
      EXPECT_TRUE(widened.Encloses(prev)) << "band=" << band;
      prev = widened;
    }
  }
}

/// Hierarchal nesting (paper Figure 7): every internal wedge of a
/// WedgeTree encloses the wedges — and, transitively, the raw rotations —
/// beneath it, for both hierarchies and both measures.
TEST(ContractPropertyTest, WedgeTreeChildrenNestInsideParents) {
  Rng rng(11);
  for (const WedgeHierarchy hierarchy :
       {WedgeHierarchy::kClustered, WedgeHierarchy::kContiguous}) {
    for (const int band : {0, 4}) {
      const std::size_t n = 20 + rng.NextBounded(20);
      const Series query = RandomSeries(&rng, n);
      RotationOptions rotation;
      rotation.mirror = (band == 0);
      const WedgeTree tree(query, rotation, band, Linkage::kAverage,
                           hierarchy, nullptr);
      const int count = static_cast<int>(tree.num_rotations());
      for (int id = count; id < tree.num_nodes(); ++id) {
        const double* pu = tree.Upper(id);
        const double* pl = tree.Lower(id);
        for (const int child : {tree.LeftChild(id), tree.RightChild(id)}) {
          const double* cu = tree.Upper(child);
          const double* cl = tree.Lower(child);
          for (std::size_t i = 0; i < n; ++i) {
            EXPECT_LE(cu[i], pu[i]) << "node=" << id << " i=" << i;
            EXPECT_GE(cl[i], pl[i]) << "node=" << id << " i=" << i;
          }
        }
      }
    }
  }
}

/// The paper's headline exactness sandwich, sampled over random data: for
/// every wedge W in the tree and every rotation s under W,
/// LB_Keogh(C, W) <= ED(Q_rot_s, C) (Proposition 1) and, with band
/// expansion, LB_Keogh(C, W) <= DTW_band(Q_rot_s, C) (Proposition 2).
TEST(ContractPropertyTest, LbKeoghLowerBoundsEveryRotationDistance) {
  Rng rng(13);
  for (const int band : {0, 3}) {
    for (int trial = 0; trial < 8; ++trial) {
      const std::size_t n = 16 + rng.NextBounded(24);
      const Series query = RandomSeries(&rng, n);
      RotationOptions rotation;
      const WedgeTree tree(query, rotation, band, nullptr);
      const Series c = RandomSeries(&rng, n);

      // Exact per-rotation distances under the configured measure.
      std::vector<double> exact(tree.num_rotations());
      for (std::size_t s = 0; s < tree.num_rotations(); ++s) {
        const double* rot = tree.rotations().rotation(s);
        exact[s] = band == 0 ? EuclideanDistance(
                                   Series(rot, rot + n), c)
                             : DtwDistance(rot, c.data(), n, band);
      }

      // Every wedge set the dynamic-K controller could pick.
      for (int k = 1; k <= tree.max_k(); k += 1 + tree.max_k() / 7) {
        for (const int id : tree.WedgeSetForK(k)) {
          Envelope wedge;
          wedge.upper.assign(tree.Upper(id), tree.Upper(id) + n);
          wedge.lower.assign(tree.Lower(id), tree.Lower(id) + n);
          const double lb = LbKeogh(c.data(), wedge);
          // Collect the rotations under this node (leaves of its subtree).
          std::vector<int> stack = {id};
          while (!stack.empty()) {
            const int node = stack.back();
            stack.pop_back();
            if (tree.IsLeaf(node)) {
              EXPECT_LE(lb, exact[static_cast<std::size_t>(node)] + 1e-9)
                  << "band=" << band << " k=" << k << " wedge=" << id
                  << " rotation=" << node;
              continue;
            }
            stack.push_back(tree.LeftChild(node));
            stack.push_back(tree.RightChild(node));
          }
        }
      }
    }
  }
}

/// H-Merge's result equals the brute-force min over rotations whenever it
/// does not abandon — exactness end to end on random data.
TEST(ContractPropertyTest, HMergeMatchesBruteForceMinOverRotations) {
  Rng rng(17);
  for (const int band : {0, 3}) {
    for (int trial = 0; trial < 10; ++trial) {
      const std::size_t n = 16 + rng.NextBounded(16);
      const Series query = RandomSeries(&rng, n);
      RotationOptions rotation;
      const WedgeTree tree(query, rotation, band, nullptr);
      const Series c = RandomSeries(&rng, n);

      double brute = kAbandoned;
      for (std::size_t s = 0; s < tree.num_rotations(); ++s) {
        const double* rot = tree.rotations().rotation(s);
        const double d = band == 0
                             ? EuclideanDistance(Series(rot, rot + n), c)
                             : DtwDistance(rot, c.data(), n, band);
        brute = std::min(brute, d);
      }

      const std::vector<int> wedge_set = {tree.root()};
      const HMergeResult r =
          HMerge(c.data(), tree, wedge_set, kAbandoned, nullptr, nullptr);
      ASSERT_FALSE(r.abandoned);
      EXPECT_NEAR(r.distance, brute, 1e-9) << "band=" << band;
    }
  }
}

#if ROTIND_CONTRACTS_ENABLED

using ContractDeathTest = ::testing::Test;

/// A deliberately corrupted envelope (L > U somewhere) must trip
/// ROTIND_CONTRACT loudly rather than silently degrade exact search into
/// approximate search.
TEST(ContractDeathTest, CorruptedEnvelopeTripsLbKeoghContract) {
  Rng rng(23);
  const std::size_t n = 32;
  Envelope env = Envelope::FromSeries(RandomSeries(&rng, n));
  env.MergeSeries(RandomSeries(&rng, n).data(), n);
  // Corrupt: swap U and L where they differ — L > U afterwards.
  std::swap(env.upper, env.lower);
  const Series c = RandomSeries(&rng, n);
  EXPECT_DEATH((void)LbKeogh(c.data(), env), "ROTIND_CONTRACT");
}

TEST(ContractDeathTest, CorruptedEnvelopeTripsMergeContract) {
  Rng rng(29);
  const std::size_t n = 16;
  Envelope good = Envelope::FromSeries(RandomSeries(&rng, n));
  Envelope bad = Envelope::FromSeries(RandomSeries(&rng, n));
  bad.MergeSeries(RandomSeries(&rng, n).data(), n);
  std::swap(bad.upper, bad.lower);
  EXPECT_DEATH(good.MergeInPlace(bad), "ROTIND_CONTRACT");
}

#endif  // ROTIND_CONTRACTS_ENABLED

}  // namespace
}  // namespace rotind
