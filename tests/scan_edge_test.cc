/// Edge-case and option-combination coverage for the scan layer, beyond
/// the rival-agreement suites in scan_test.cc.

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/core/step_counter.h"
#include "src/search/scan.h"

namespace rotind {
namespace {

std::vector<Series> RandomDatabase(Rng* rng, std::size_t m, std::size_t n) {
  std::vector<Series> db(m);
  for (Series& s : db) {
    s.resize(n);
    for (double& v : s) v = rng->Gaussian(0.0, 1.0);
    ZNormalize(&s);
  }
  return db;
}

TEST(ScanEdgeTest, FftAlgorithmUnderDtwIsStillExact) {
  // FFT magnitudes do not bound DTW; the scan must degrade gracefully to
  // an exact scan rather than silently using the Euclidean bound.
  Rng rng(1);
  const std::size_t n = 24;
  const auto db = RandomDatabase(&rng, 20, n);
  ScanOptions options;
  options.kind = DistanceKind::kDtw;
  options.band = 3;
  for (int trial = 0; trial < 3; ++trial) {
    Series q = RandomDatabase(&rng, 1, n)[0];
    const ScanResult reference =
        SearchDatabase(db, q, ScanAlgorithm::kBruteForceBanded, options);
    const ScanResult fft =
        SearchDatabase(db, q, ScanAlgorithm::kFftLowerBound, options);
    EXPECT_EQ(fft.best_index, reference.best_index);
    EXPECT_NEAR(fft.best_distance, reference.best_distance, 1e-9);
  }
}

TEST(ScanEdgeTest, SingleObjectDatabase) {
  Rng rng(2);
  const auto db = RandomDatabase(&rng, 1, 16);
  const Series q = RandomDatabase(&rng, 1, 16)[0];
  for (ScanAlgorithm algo :
       {ScanAlgorithm::kBruteForce, ScanAlgorithm::kEarlyAbandon,
        ScanAlgorithm::kFftLowerBound, ScanAlgorithm::kWedge}) {
    const ScanResult r = SearchDatabase(db, q, algo, ScanOptions{});
    EXPECT_EQ(r.best_index, 0);
    EXPECT_TRUE(std::isfinite(r.best_distance));
  }
}

TEST(ScanEdgeTest, KnnWithKOneMatchesSearch) {
  Rng rng(3);
  const auto db = RandomDatabase(&rng, 25, 20);
  const Series q = RandomDatabase(&rng, 1, 20)[0];
  const ScanResult nn =
      SearchDatabase(db, q, ScanAlgorithm::kWedge, ScanOptions{});
  const auto knn =
      KnnSearchDatabase(db, q, 1, ScanAlgorithm::kWedge, ScanOptions{});
  ASSERT_EQ(knn.size(), 1u);
  EXPECT_EQ(knn[0].index, nn.best_index);
  EXPECT_NEAR(knn[0].distance, nn.best_distance, 1e-9);
}

TEST(ScanEdgeTest, RangeSearchRadiusZeroFindsExactDuplicates) {
  Rng rng(4);
  auto db = RandomDatabase(&rng, 10, 24);
  const Series q = RandomDatabase(&rng, 1, 24)[0];
  db[6] = RotateLeft(q, 5);  // exact rotated duplicate
  const auto hits =
      RangeSearchDatabase(db, q, 0.0, ScanAlgorithm::kWedge, ScanOptions{});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].index, 6);
  EXPECT_NEAR(hits[0].distance, 0.0, 1e-12);
}

TEST(ScanEdgeTest, RangeSearchHugeRadiusReturnsEverything) {
  Rng rng(5);
  const auto db = RandomDatabase(&rng, 12, 16);
  const Series q = RandomDatabase(&rng, 1, 16)[0];
  const auto hits = RangeSearchDatabase(db, q, 1e6, ScanAlgorithm::kWedge,
                                        ScanOptions{});
  EXPECT_EQ(hits.size(), db.size());
  // Sorted ascending.
  for (std::size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LE(hits[i - 1].distance, hits[i].distance);
  }
}

TEST(ScanEdgeTest, MirrorPlusRotationLimitedCombination) {
  Rng rng(6);
  const std::size_t n = 36;
  auto db = RandomDatabase(&rng, 15, n);
  const Series q = RandomDatabase(&rng, 1, n)[0];
  // A mirrored copy at a small shift: findable only with BOTH options.
  db[8] = RotateLeft(Reversed(q), 2);

  ScanOptions options;
  options.rotation.mirror = true;
  options.rotation.max_shift = 3;
  for (ScanAlgorithm algo : {ScanAlgorithm::kBruteForce,
                             ScanAlgorithm::kEarlyAbandon,
                             ScanAlgorithm::kWedge}) {
    const ScanResult r = SearchDatabase(db, q, algo, options);
    EXPECT_EQ(r.best_index, 8) << static_cast<int>(algo);
    EXPECT_NEAR(r.best_distance, 0.0, 1e-9);
    EXPECT_TRUE(r.best_mirrored);
  }
}

TEST(ScanEdgeTest, AllAlgorithmsAgreeUnderRotationLimit) {
  Rng rng(7);
  const std::size_t n = 30;
  const auto db = RandomDatabase(&rng, 20, n);
  ScanOptions options;
  options.rotation.max_shift = 4;
  const Series q = RandomDatabase(&rng, 1, n)[0];
  const ScanResult brute =
      SearchDatabase(db, q, ScanAlgorithm::kBruteForce, options);
  for (ScanAlgorithm algo : {ScanAlgorithm::kEarlyAbandon,
                             ScanAlgorithm::kFftLowerBound,
                             ScanAlgorithm::kWedge}) {
    const ScanResult r = SearchDatabase(db, q, algo, options);
    EXPECT_EQ(r.best_index, brute.best_index);
    EXPECT_NEAR(r.best_distance, brute.best_distance, 1e-9);
  }
}

TEST(StepCounterTest, AggregationAndReset) {
  StepCounter a;
  a.steps = 10;
  a.setup_steps = 5;
  a.lower_bound_evals = 2;
  a.full_evals = 1;
  a.early_abandons = 3;
  StepCounter b;
  b.steps = 1;
  b.setup_steps = 2;
  b += a;
  EXPECT_EQ(b.steps, 11u);
  EXPECT_EQ(b.setup_steps, 7u);
  EXPECT_EQ(b.total_steps(), 18u);
  EXPECT_EQ(b.lower_bound_evals, 2u);
  b.Reset();
  EXPECT_EQ(b.total_steps(), 0u);

  AddSteps(nullptr, 5);       // null-safe
  AddSetupSteps(nullptr, 5);  // null-safe
}

TEST(ScanEdgeTest, DeterministicAcrossRuns) {
  Rng rng(8);
  const auto db = RandomDatabase(&rng, 30, 24);
  const Series q = RandomDatabase(&rng, 1, 24)[0];
  const ScanResult a =
      SearchDatabase(db, q, ScanAlgorithm::kWedge, ScanOptions{});
  const ScanResult b =
      SearchDatabase(db, q, ScanAlgorithm::kWedge, ScanOptions{});
  EXPECT_EQ(a.best_index, b.best_index);
  EXPECT_EQ(a.counter.total_steps(), b.counter.total_steps());
}

}  // namespace
}  // namespace rotind
