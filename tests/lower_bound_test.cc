#include "src/envelope/lower_bound.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/distance/dtw.h"
#include "src/distance/euclidean.h"

namespace rotind {
namespace {

Series RandomSeries(Rng* rng, std::size_t n) {
  Series s(n);
  for (double& v : s) v = rng->Gaussian(0.0, 1.0);
  return s;
}

TEST(LbKeoghTest, ZeroInsideTheWedge) {
  Envelope env = Envelope::FromSeries({0.0, 0.0, 0.0});
  env.MergeSeries(Series{2.0, 2.0, 2.0}.data(), 3);
  const Series q = {1.0, 0.5, 1.5};  // entirely inside [0, 2]
  EXPECT_DOUBLE_EQ(LbKeogh(q.data(), env), 0.0);
}

TEST(LbKeoghTest, DegenerateWedgeEqualsEuclidean) {
  Rng rng(1);
  const Series c = RandomSeries(&rng, 40);
  const Series q = RandomSeries(&rng, 40);
  const Envelope env = Envelope::FromSeries(c);
  EXPECT_NEAR(LbKeogh(q.data(), env), EuclideanDistance(q, c), 1e-12);
}

TEST(LbKeoghTest, KnownValue) {
  Envelope env;
  env.upper = {1.0, 1.0, 1.0};
  env.lower = {-1.0, -1.0, -1.0};
  const Series q = {3.0, 0.0, -2.0};  // exceed by 2, inside, below by 1
  EXPECT_NEAR(LbKeogh(q.data(), env), std::sqrt(4.0 + 0.0 + 1.0), 1e-12);
}

/// The paper's Proposition 1, tested on randomized wedges: the bound must
/// never exceed the true distance to ANY member.
class Proposition1Test : public ::testing::TestWithParam<int> {};

TEST_P(Proposition1Test, LowerBoundsEveryMember) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 8 + rng.NextBounded(60);
    const std::size_t members = 1 + rng.NextBounded(10);
    std::vector<Series> cs;
    Envelope env;
    for (std::size_t m = 0; m < members; ++m) {
      cs.push_back(RandomSeries(&rng, n));
      if (m == 0) {
        env = Envelope::FromSeries(cs.back());
      } else {
        env.MergeSeries(cs.back().data(), n);
      }
    }
    const Series q = RandomSeries(&rng, n);
    const double lb = LbKeogh(q.data(), env);
    for (const Series& c : cs) {
      EXPECT_LE(lb, EuclideanDistance(q, c) + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Proposition1Test, ::testing::Range(1, 9));

/// The paper's Proposition 2: the band-expanded wedge lower-bounds the
/// banded DTW distance to every member.
class Proposition2Test : public ::testing::TestWithParam<int> {};

TEST_P(Proposition2Test, LowerBoundsBandedDtwToEveryMember) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 3);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 10 + rng.NextBounded(40);
    const int band = 1 + static_cast<int>(rng.NextBounded(6));
    const std::size_t members = 1 + rng.NextBounded(6);
    std::vector<Series> cs;
    Envelope env;
    for (std::size_t m = 0; m < members; ++m) {
      cs.push_back(RandomSeries(&rng, n));
      if (m == 0) {
        env = Envelope::FromSeries(cs.back());
      } else {
        env.MergeSeries(cs.back().data(), n);
      }
    }
    const Envelope dtw_env = env.ExpandedForDtw(band);
    const Series q = RandomSeries(&rng, n);
    const double lb = LbKeogh(q.data(), dtw_env);
    for (const Series& c : cs) {
      EXPECT_LE(lb, DtwDistance(q.data(), c.data(), n, band) + 1e-9)
          << "n=" << n << " band=" << band;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Proposition2Test, ::testing::Range(1, 7));

TEST(EarlyAbandonLbKeoghTest, MatchesFullWhenNotAbandoned) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 16 + rng.NextBounded(30);
    Envelope env = Envelope::FromSeries(RandomSeries(&rng, n));
    env.MergeSeries(RandomSeries(&rng, n).data(), n);
    const Series q = RandomSeries(&rng, n);
    const double full = LbKeogh(q.data(), env);
    const double ea = EarlyAbandonLbKeogh(
        q.data(), env, std::numeric_limits<double>::infinity());
    EXPECT_NEAR(ea, full, 1e-12);
  }
}

TEST(EarlyAbandonLbKeoghTest, AbandonsCorrectly) {
  Rng rng(6);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 16 + rng.NextBounded(30);
    Envelope env = Envelope::FromSeries(RandomSeries(&rng, n));
    const Series q = RandomSeries(&rng, n);
    const double full = LbKeogh(q.data(), env);
    const double limit = rng.Uniform(0.0, 2.0 * full + 0.01);
    const double ea = EarlyAbandonLbKeogh(q.data(), env, limit);
    if (full > limit) {
      EXPECT_TRUE(std::isinf(ea));
    } else {
      EXPECT_NEAR(ea, full, 1e-9);
    }
  }
}

TEST(EarlyAbandonLbKeoghTest, CountsPartialSteps) {
  Envelope env;
  env.upper = Series(100, 0.0);
  env.lower = Series(100, 0.0);
  Series q(100, 5.0);  // each point contributes 25
  StepCounter counter;
  EarlyAbandonLbKeoghSquared(q.data(), env.upper.data(), env.lower.data(),
                             100, 100.0, &counter);
  // 25 + 25 + 25 + 25 = 100 is not > 100; the 5th point pushes past.
  EXPECT_EQ(counter.steps, 5u);
  EXPECT_EQ(counter.early_abandons, 1u);
}

/// Pins the abandonment sentinel contract documented in lower_bound.h:
/// kAbandoned IS +infinity (one value, not two sentinels), every
/// early-abandoning entry point returns exactly it, and std::isinf is a
/// valid abandonment test for both squared and unsquared variants.
TEST(AbandonSentinelTest, KAbandonedIsPositiveInfinityEverywhere) {
  EXPECT_EQ(kAbandoned, std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isinf(kAbandoned));
  EXPECT_GT(kAbandoned, 0.0);

  // An impossible limit forces abandonment in every variant.
  Envelope env;
  env.upper = Series(8, 0.0);
  env.lower = Series(8, 0.0);
  const Series q(8, 5.0);
  const double sq = EarlyAbandonLbKeoghSquared(q.data(), env.upper.data(),
                                               env.lower.data(), 8, 1.0);
  EXPECT_EQ(sq, kAbandoned);
  const double lb = EarlyAbandonLbKeogh(q.data(), env, 1.0);
  EXPECT_EQ(lb, kAbandoned);
  const double lbi = LbImproved(q.data(), env, 0, 1.0);
  EXPECT_EQ(lbi, kAbandoned);
  const Envelope expanded = env.ExpandedForDtw(2);
  const double lbi_sq = LbImprovedSquared(q.data(), env, expanded, 2, 1.0);
  EXPECT_EQ(lbi_sq, kAbandoned);
}

TEST(LbKeoghTest, TighterWedgeGivesTighterBound) {
  // Paper Figure 8: merging more sequences (larger area) can only lower
  // the bound.
  Rng rng(7);
  const std::size_t n = 30;
  Envelope narrow = Envelope::FromSeries(RandomSeries(&rng, n));
  Envelope wide = narrow;
  for (int i = 0; i < 5; ++i) wide.MergeSeries(RandomSeries(&rng, n).data(), n);
  for (int trial = 0; trial < 20; ++trial) {
    const Series q = RandomSeries(&rng, n);
    EXPECT_GE(LbKeogh(q.data(), narrow) + 1e-12, LbKeogh(q.data(), wide));
  }
}

}  // namespace
}  // namespace rotind
