/// StorageBackend contract tests: the three backends serve bit-identical
/// bytes for the same database, SimulatedBackend reproduces SimulatedDisk's
/// paper-parity page accounting exactly, OpenBackend wires EngineOptions
/// to the right implementation, and a FileBackend's BufferPool survives an
/// 8-way SearchBatch with bit-identical results (the TSan target).

#include "src/storage/backend.h"

#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/flat_dataset.h"
#include "src/core/series.h"
#include "src/core/status.h"
#include "src/datasets/synthetic.h"
#include "src/index/index_io.h"
#include "src/search/engine.h"

namespace rotind::storage {
namespace {

std::string TempPath(const char* tag) {
  return "/tmp/rotind_backend_test." + std::to_string(::getpid()) + "." +
         tag + ".ridx";
}

/// An index file over `items`, small pages so extents straddle pages.
std::string WriteIndex(const std::vector<Series>& items, const char* tag,
                       std::size_t page_size = 256) {
  Dataset ds;
  ds.items = items;
  IndexBuildOptions build;
  build.sig_dims = 4;
  build.paa_dims = 4;
  build.page_size_bytes = page_size;
  const std::string path = TempPath(tag);
  const Status s = BuildIndexFile(ds, build, path);
  EXPECT_TRUE(s.ok()) << s.message();
  return path;
}

TEST(StorageBackendTest, AllBackendsServeBitIdenticalBytes) {
  const std::vector<Series> items =
      MakeProjectilePointsDatabase(12, 40, 811);
  const FlatDataset flat = FlatDataset::FromItems(items);
  const std::string path = WriteIndex(items, "bytes");

  const InMemoryBackend memory(flat);
  const SimulatedBackend simulated(items, 256);
  auto file = FileBackend::Open(path, 3, EvictionPolicy::kLru);
  ASSERT_TRUE(file.ok()) << file.status().message();

  const StorageBackend* backends[] = {&memory, &simulated, file->get()};
  for (const StorageBackend* b : backends) {
    ASSERT_EQ(b->size(), items.size()) << b->name();
    ASSERT_EQ(b->length(), 40u) << b->name();
    for (std::size_t i = 0; i < items.size(); ++i) {
      FetchStats io;
      const SeriesHandle h = b->Fetch(i, &io);
      ASSERT_TRUE(h.valid()) << b->name() << " object " << i;
      ASSERT_EQ(h.length(), items[i].size());
      EXPECT_EQ(std::memcmp(h.data(), items[i].data(),
                            items[i].size() * sizeof(double)),
                0)
          << b->name() << " object " << i;
      EXPECT_EQ(io.object_fetches, 1u);
    }
    EXPECT_TRUE(b->error().ok()) << b->name();
  }
  std::remove(path.c_str());
}

/// SimulatedBackend is an adapter, not a reimplementation: its per-fetch
/// accounting must equal SimulatedDisk's own counters on the same fetch
/// trace — including the offset-aware page spans for straddling series.
TEST(StorageBackendTest, SimulatedBackendMatchesSimulatedDiskAccounting) {
  // 300 doubles = 2400 bytes: objects tile 4096-byte pages unevenly, so
  // some fetches span one page and others two.
  const std::vector<Series> items = MakeHeterogeneousDatabase(9, 300, 77);
  const SimulatedBackend backend(items, 4096);

  SimulatedDisk disk(4096);
  disk.StoreAll(items);

  const std::size_t trace[] = {0, 3, 1, 3, 8, 2, 7};
  FetchStats total;
  for (const std::size_t i : trace) {
    FetchStats io;
    (void)backend.Fetch(i, &io);
    const std::uint64_t pages = disk.PagesSpanned(static_cast<int>(i));
    EXPECT_EQ(io.page_reads, pages) << "object " << i;
    EXPECT_EQ(io.bytes_read, pages * 4096u) << "object " << i;
    total += io;
    (void)disk.Fetch(static_cast<int>(i));
  }
  EXPECT_EQ(total.object_fetches, disk.object_fetches());
  EXPECT_EQ(total.page_reads, disk.page_reads());
  EXPECT_EQ(backend.disk().num_objects(), disk.num_objects());
}

TEST(StorageBackendTest, TryFetchIsBoundsCheckedEverywhere) {
  const std::vector<Series> items = MakeProjectilePointsDatabase(4, 24, 5);
  const FlatDataset flat = FlatDataset::FromItems(items);
  const std::string path = WriteIndex(items, "bounds", 64);

  const InMemoryBackend memory(flat);
  const SimulatedBackend simulated(items, 64);
  auto file = FileBackend::Open(path, 2, EvictionPolicy::kLru);
  ASSERT_TRUE(file.ok());
  const StorageBackend* backends[] = {&memory, &simulated, file->get()};
  for (const StorageBackend* b : backends) {
    FetchStats io;
    const auto out = b->TryFetch(4, &io);
    ASSERT_FALSE(out.ok()) << b->name();
    EXPECT_EQ(out.status().code(), StatusCode::kOutOfRange) << b->name();
    EXPECT_TRUE(b->error().ok()) << b->name()
                                 << ": TryFetch must not latch";
  }
  std::remove(path.c_str());
}

TEST(StorageBackendTest, OpenBackendSelectsAndValidates) {
  const std::vector<Series> items = MakeProjectilePointsDatabase(5, 24, 6);
  const FlatDataset flat = FlatDataset::FromItems(items);

  StorageOptions in_memory;
  auto memory = OpenBackend(in_memory, &flat);
  ASSERT_TRUE(memory.ok());
  EXPECT_EQ((*memory)->backend_kind(), BackendKind::kInMemory);

  StorageOptions simulated;
  simulated.backend = BackendKind::kSimulated;
  simulated.page_size_bytes = 128;
  auto sim = OpenBackend(simulated, &flat);
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ((*sim)->backend_kind(), BackendKind::kSimulated);

  // A source-less in-memory request cannot be satisfied.
  EXPECT_FALSE(OpenBackend(in_memory, nullptr).ok());

  StorageOptions missing;
  missing.backend = BackendKind::kFile;
  missing.index_path = "/nonexistent/rotind.ridx";
  const auto file = OpenBackend(missing, nullptr);
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kNotFound);
}

/// The TSan target: 8 workers hammering one FileBackend whose BufferPool
/// is far smaller than the working set, so hits, misses, and evictions
/// interleave across threads. Results must be bit-identical to the serial
/// run (the SearchBatch determinism contract extends to paged storage).
TEST(StorageBackendTest, EightThreadBatchOverSharedPoolIsBitIdentical) {
  const std::vector<Series> items =
      MakeProjectilePointsDatabase(48, 64, 909);
  const std::string path = WriteIndex(items, "batch", 256);

  EngineOptions options;
  options.storage.backend = BackendKind::kFile;
  options.storage.index_path = path;
  // 48 objects x 512 bytes span 96 pages; 12 frames force eviction churn
  // while still exceeding the worker count (each fetch holds one pin at a
  // time, so capacity must be >= the 8 concurrent pinners).
  options.storage.pool_pages = 12;
  auto engine = QueryEngine::Open(options);
  ASSERT_TRUE(engine.ok()) << engine.status().message();

  std::vector<Series> queries;
  for (std::size_t i = 0; i < 16; ++i) queries.push_back(items[i * 3]);

  const auto serial = (*engine)->SearchBatch(queries, 1);
  const auto parallel = (*engine)->SearchBatch(queries, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].best_index, parallel[i].best_index) << "query " << i;
    EXPECT_EQ(serial[i].best_distance, parallel[i].best_distance)
        << "query " << i;
    EXPECT_EQ(serial[i].counter.total_steps(),
              parallel[i].counter.total_steps())
        << "query " << i;
  }

  const auto& file_backend =
      static_cast<const FileBackend&>(*(*engine)->backend());
  const PoolCounters c = file_backend.pool().counters();
  EXPECT_GT(c.misses, 0u);
  EXPECT_GT(c.evictions, 0u) << "pool was sized to force eviction churn";
  EXPECT_TRUE(file_backend.error().ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rotind::storage
