file(REMOVE_RECURSE
  "CMakeFiles/table8_classification.dir/table8_classification.cc.o"
  "CMakeFiles/table8_classification.dir/table8_classification.cc.o.d"
  "table8_classification"
  "table8_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
