# Empty compiler generated dependencies file for table8_classification.
# This may be replaced when dependencies are built.
