# Empty dependencies file for fig21_heterogeneous.
# This may be replaced when dependencies are built.
