file(REMOVE_RECURSE
  "CMakeFiles/fig21_heterogeneous.dir/fig21_heterogeneous.cc.o"
  "CMakeFiles/fig21_heterogeneous.dir/fig21_heterogeneous.cc.o.d"
  "fig21_heterogeneous"
  "fig21_heterogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
