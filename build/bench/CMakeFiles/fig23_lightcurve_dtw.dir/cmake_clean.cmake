file(REMOVE_RECURSE
  "CMakeFiles/fig23_lightcurve_dtw.dir/fig23_lightcurve_dtw.cc.o"
  "CMakeFiles/fig23_lightcurve_dtw.dir/fig23_lightcurve_dtw.cc.o.d"
  "fig23_lightcurve_dtw"
  "fig23_lightcurve_dtw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_lightcurve_dtw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
