# Empty compiler generated dependencies file for fig23_lightcurve_dtw.
# This may be replaced when dependencies are built.
