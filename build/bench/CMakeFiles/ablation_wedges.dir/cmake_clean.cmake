file(REMOVE_RECURSE
  "CMakeFiles/ablation_wedges.dir/ablation_wedges.cc.o"
  "CMakeFiles/ablation_wedges.dir/ablation_wedges.cc.o.d"
  "ablation_wedges"
  "ablation_wedges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wedges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
