# Empty compiler generated dependencies file for ablation_wedges.
# This may be replaced when dependencies are built.
