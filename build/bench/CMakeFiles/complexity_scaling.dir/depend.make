# Empty dependencies file for complexity_scaling.
# This may be replaced when dependencies are built.
