file(REMOVE_RECURSE
  "CMakeFiles/complexity_scaling.dir/complexity_scaling.cc.o"
  "CMakeFiles/complexity_scaling.dir/complexity_scaling.cc.o.d"
  "complexity_scaling"
  "complexity_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complexity_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
