# Empty compiler generated dependencies file for fig22_lightcurve_euclidean.
# This may be replaced when dependencies are built.
