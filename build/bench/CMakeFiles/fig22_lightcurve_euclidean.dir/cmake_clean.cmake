file(REMOVE_RECURSE
  "CMakeFiles/fig22_lightcurve_euclidean.dir/fig22_lightcurve_euclidean.cc.o"
  "CMakeFiles/fig22_lightcurve_euclidean.dir/fig22_lightcurve_euclidean.cc.o.d"
  "fig22_lightcurve_euclidean"
  "fig22_lightcurve_euclidean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_lightcurve_euclidean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
