# Empty dependencies file for fig19_projectile_euclidean.
# This may be replaced when dependencies are built.
