file(REMOVE_RECURSE
  "CMakeFiles/fig19_projectile_euclidean.dir/fig19_projectile_euclidean.cc.o"
  "CMakeFiles/fig19_projectile_euclidean.dir/fig19_projectile_euclidean.cc.o.d"
  "fig19_projectile_euclidean"
  "fig19_projectile_euclidean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_projectile_euclidean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
