file(REMOVE_RECURSE
  "CMakeFiles/fig24_disk_access.dir/fig24_disk_access.cc.o"
  "CMakeFiles/fig24_disk_access.dir/fig24_disk_access.cc.o.d"
  "fig24_disk_access"
  "fig24_disk_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_disk_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
