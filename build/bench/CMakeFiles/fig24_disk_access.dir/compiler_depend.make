# Empty compiler generated dependencies file for fig24_disk_access.
# This may be replaced when dependencies are built.
