# Empty dependencies file for fig20_projectile_dtw.
# This may be replaced when dependencies are built.
