file(REMOVE_RECURSE
  "CMakeFiles/fig20_projectile_dtw.dir/fig20_projectile_dtw.cc.o"
  "CMakeFiles/fig20_projectile_dtw.dir/fig20_projectile_dtw.cc.o.d"
  "fig20_projectile_dtw"
  "fig20_projectile_dtw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_projectile_dtw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
