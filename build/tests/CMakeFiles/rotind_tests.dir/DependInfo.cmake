
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/candidate_wedge_test.cc" "tests/CMakeFiles/rotind_tests.dir/candidate_wedge_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/candidate_wedge_test.cc.o.d"
  "/root/repo/tests/classify_test.cc" "tests/CMakeFiles/rotind_tests.dir/classify_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/classify_test.cc.o.d"
  "/root/repo/tests/cluster_test.cc" "tests/CMakeFiles/rotind_tests.dir/cluster_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/cluster_test.cc.o.d"
  "/root/repo/tests/core_random_test.cc" "tests/CMakeFiles/rotind_tests.dir/core_random_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/core_random_test.cc.o.d"
  "/root/repo/tests/core_series_test.cc" "tests/CMakeFiles/rotind_tests.dir/core_series_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/core_series_test.cc.o.d"
  "/root/repo/tests/cross_feature_test.cc" "tests/CMakeFiles/rotind_tests.dir/cross_feature_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/cross_feature_test.cc.o.d"
  "/root/repo/tests/datasets_test.cc" "tests/CMakeFiles/rotind_tests.dir/datasets_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/datasets_test.cc.o.d"
  "/root/repo/tests/dtw_test.cc" "tests/CMakeFiles/rotind_tests.dir/dtw_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/dtw_test.cc.o.d"
  "/root/repo/tests/envelope_test.cc" "tests/CMakeFiles/rotind_tests.dir/envelope_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/envelope_test.cc.o.d"
  "/root/repo/tests/euclidean_test.cc" "tests/CMakeFiles/rotind_tests.dir/euclidean_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/euclidean_test.cc.o.d"
  "/root/repo/tests/fft_test.cc" "tests/CMakeFiles/rotind_tests.dir/fft_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/fft_test.cc.o.d"
  "/root/repo/tests/hmerge_test.cc" "tests/CMakeFiles/rotind_tests.dir/hmerge_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/hmerge_test.cc.o.d"
  "/root/repo/tests/index_knn_test.cc" "tests/CMakeFiles/rotind_tests.dir/index_knn_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/index_knn_test.cc.o.d"
  "/root/repo/tests/index_test.cc" "tests/CMakeFiles/rotind_tests.dir/index_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/index_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/rotind_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/lcss_search_test.cc" "tests/CMakeFiles/rotind_tests.dir/lcss_search_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/lcss_search_test.cc.o.d"
  "/root/repo/tests/lcss_test.cc" "tests/CMakeFiles/rotind_tests.dir/lcss_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/lcss_test.cc.o.d"
  "/root/repo/tests/lightcurve_test.cc" "tests/CMakeFiles/rotind_tests.dir/lightcurve_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/lightcurve_test.cc.o.d"
  "/root/repo/tests/lower_bound_test.cc" "tests/CMakeFiles/rotind_tests.dir/lower_bound_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/lower_bound_test.cc.o.d"
  "/root/repo/tests/mining_test.cc" "tests/CMakeFiles/rotind_tests.dir/mining_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/mining_test.cc.o.d"
  "/root/repo/tests/paa_test.cc" "tests/CMakeFiles/rotind_tests.dir/paa_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/paa_test.cc.o.d"
  "/root/repo/tests/rotation_test.cc" "tests/CMakeFiles/rotind_tests.dir/rotation_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/rotation_test.cc.o.d"
  "/root/repo/tests/scan_edge_test.cc" "tests/CMakeFiles/rotind_tests.dir/scan_edge_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/scan_edge_test.cc.o.d"
  "/root/repo/tests/scan_test.cc" "tests/CMakeFiles/rotind_tests.dir/scan_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/scan_test.cc.o.d"
  "/root/repo/tests/serialize_test.cc" "tests/CMakeFiles/rotind_tests.dir/serialize_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/serialize_test.cc.o.d"
  "/root/repo/tests/shape_test.cc" "tests/CMakeFiles/rotind_tests.dir/shape_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/shape_test.cc.o.d"
  "/root/repo/tests/spectral_test.cc" "tests/CMakeFiles/rotind_tests.dir/spectral_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/spectral_test.cc.o.d"
  "/root/repo/tests/stream_monitor_test.cc" "tests/CMakeFiles/rotind_tests.dir/stream_monitor_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/stream_monitor_test.cc.o.d"
  "/root/repo/tests/vptree_test.cc" "tests/CMakeFiles/rotind_tests.dir/vptree_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/vptree_test.cc.o.d"
  "/root/repo/tests/wedge_tree_test.cc" "tests/CMakeFiles/rotind_tests.dir/wedge_tree_test.cc.o" "gcc" "tests/CMakeFiles/rotind_tests.dir/wedge_tree_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rotind.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
