# Empty compiler generated dependencies file for rotind_tests.
# This may be replaced when dependencies are built.
