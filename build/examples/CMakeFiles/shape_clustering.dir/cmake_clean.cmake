file(REMOVE_RECURSE
  "CMakeFiles/shape_clustering.dir/shape_clustering.cpp.o"
  "CMakeFiles/shape_clustering.dir/shape_clustering.cpp.o.d"
  "shape_clustering"
  "shape_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shape_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
