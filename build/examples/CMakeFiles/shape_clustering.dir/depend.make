# Empty dependencies file for shape_clustering.
# This may be replaced when dependencies are built.
