# Empty compiler generated dependencies file for stream_monitoring.
# This may be replaced when dependencies are built.
