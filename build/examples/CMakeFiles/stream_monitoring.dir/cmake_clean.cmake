file(REMOVE_RECURSE
  "CMakeFiles/stream_monitoring.dir/stream_monitoring.cpp.o"
  "CMakeFiles/stream_monitoring.dir/stream_monitoring.cpp.o.d"
  "stream_monitoring"
  "stream_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
