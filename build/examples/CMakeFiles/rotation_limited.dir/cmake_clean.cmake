file(REMOVE_RECURSE
  "CMakeFiles/rotation_limited.dir/rotation_limited.cpp.o"
  "CMakeFiles/rotation_limited.dir/rotation_limited.cpp.o.d"
  "rotation_limited"
  "rotation_limited.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rotation_limited.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
