# Empty dependencies file for rotation_limited.
# This may be replaced when dependencies are built.
