file(REMOVE_RECURSE
  "CMakeFiles/lightcurve_search.dir/lightcurve_search.cpp.o"
  "CMakeFiles/lightcurve_search.dir/lightcurve_search.cpp.o.d"
  "lightcurve_search"
  "lightcurve_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightcurve_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
