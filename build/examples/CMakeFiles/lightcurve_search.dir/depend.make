# Empty dependencies file for lightcurve_search.
# This may be replaced when dependencies are built.
