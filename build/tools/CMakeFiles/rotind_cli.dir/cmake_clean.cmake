file(REMOVE_RECURSE
  "CMakeFiles/rotind_cli.dir/rotind_cli.cc.o"
  "CMakeFiles/rotind_cli.dir/rotind_cli.cc.o.d"
  "rotind"
  "rotind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rotind_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
