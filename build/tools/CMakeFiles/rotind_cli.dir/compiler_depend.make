# Empty compiler generated dependencies file for rotind_cli.
# This may be replaced when dependencies are built.
