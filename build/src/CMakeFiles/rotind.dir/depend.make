# Empty dependencies file for rotind.
# This may be replaced when dependencies are built.
