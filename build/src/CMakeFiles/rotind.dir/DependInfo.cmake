
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/linkage.cc" "src/CMakeFiles/rotind.dir/cluster/linkage.cc.o" "gcc" "src/CMakeFiles/rotind.dir/cluster/linkage.cc.o.d"
  "/root/repo/src/core/random.cc" "src/CMakeFiles/rotind.dir/core/random.cc.o" "gcc" "src/CMakeFiles/rotind.dir/core/random.cc.o.d"
  "/root/repo/src/core/series.cc" "src/CMakeFiles/rotind.dir/core/series.cc.o" "gcc" "src/CMakeFiles/rotind.dir/core/series.cc.o.d"
  "/root/repo/src/datasets/synthetic.cc" "src/CMakeFiles/rotind.dir/datasets/synthetic.cc.o" "gcc" "src/CMakeFiles/rotind.dir/datasets/synthetic.cc.o.d"
  "/root/repo/src/distance/dtw.cc" "src/CMakeFiles/rotind.dir/distance/dtw.cc.o" "gcc" "src/CMakeFiles/rotind.dir/distance/dtw.cc.o.d"
  "/root/repo/src/distance/euclidean.cc" "src/CMakeFiles/rotind.dir/distance/euclidean.cc.o" "gcc" "src/CMakeFiles/rotind.dir/distance/euclidean.cc.o.d"
  "/root/repo/src/distance/lcss.cc" "src/CMakeFiles/rotind.dir/distance/lcss.cc.o" "gcc" "src/CMakeFiles/rotind.dir/distance/lcss.cc.o.d"
  "/root/repo/src/distance/rotation.cc" "src/CMakeFiles/rotind.dir/distance/rotation.cc.o" "gcc" "src/CMakeFiles/rotind.dir/distance/rotation.cc.o.d"
  "/root/repo/src/envelope/candidate_wedge.cc" "src/CMakeFiles/rotind.dir/envelope/candidate_wedge.cc.o" "gcc" "src/CMakeFiles/rotind.dir/envelope/candidate_wedge.cc.o.d"
  "/root/repo/src/envelope/envelope.cc" "src/CMakeFiles/rotind.dir/envelope/envelope.cc.o" "gcc" "src/CMakeFiles/rotind.dir/envelope/envelope.cc.o.d"
  "/root/repo/src/envelope/wedge_tree.cc" "src/CMakeFiles/rotind.dir/envelope/wedge_tree.cc.o" "gcc" "src/CMakeFiles/rotind.dir/envelope/wedge_tree.cc.o.d"
  "/root/repo/src/eval/classify.cc" "src/CMakeFiles/rotind.dir/eval/classify.cc.o" "gcc" "src/CMakeFiles/rotind.dir/eval/classify.cc.o.d"
  "/root/repo/src/fourier/fft.cc" "src/CMakeFiles/rotind.dir/fourier/fft.cc.o" "gcc" "src/CMakeFiles/rotind.dir/fourier/fft.cc.o.d"
  "/root/repo/src/fourier/spectral.cc" "src/CMakeFiles/rotind.dir/fourier/spectral.cc.o" "gcc" "src/CMakeFiles/rotind.dir/fourier/spectral.cc.o.d"
  "/root/repo/src/index/candidate_scan.cc" "src/CMakeFiles/rotind.dir/index/candidate_scan.cc.o" "gcc" "src/CMakeFiles/rotind.dir/index/candidate_scan.cc.o.d"
  "/root/repo/src/index/disk.cc" "src/CMakeFiles/rotind.dir/index/disk.cc.o" "gcc" "src/CMakeFiles/rotind.dir/index/disk.cc.o.d"
  "/root/repo/src/index/paa.cc" "src/CMakeFiles/rotind.dir/index/paa.cc.o" "gcc" "src/CMakeFiles/rotind.dir/index/paa.cc.o.d"
  "/root/repo/src/index/vptree.cc" "src/CMakeFiles/rotind.dir/index/vptree.cc.o" "gcc" "src/CMakeFiles/rotind.dir/index/vptree.cc.o.d"
  "/root/repo/src/io/serialize.cc" "src/CMakeFiles/rotind.dir/io/serialize.cc.o" "gcc" "src/CMakeFiles/rotind.dir/io/serialize.cc.o.d"
  "/root/repo/src/lightcurve/lightcurve.cc" "src/CMakeFiles/rotind.dir/lightcurve/lightcurve.cc.o" "gcc" "src/CMakeFiles/rotind.dir/lightcurve/lightcurve.cc.o.d"
  "/root/repo/src/mining/motif.cc" "src/CMakeFiles/rotind.dir/mining/motif.cc.o" "gcc" "src/CMakeFiles/rotind.dir/mining/motif.cc.o.d"
  "/root/repo/src/search/hmerge.cc" "src/CMakeFiles/rotind.dir/search/hmerge.cc.o" "gcc" "src/CMakeFiles/rotind.dir/search/hmerge.cc.o.d"
  "/root/repo/src/search/lcss_search.cc" "src/CMakeFiles/rotind.dir/search/lcss_search.cc.o" "gcc" "src/CMakeFiles/rotind.dir/search/lcss_search.cc.o.d"
  "/root/repo/src/search/lower_bound.cc" "src/CMakeFiles/rotind.dir/search/lower_bound.cc.o" "gcc" "src/CMakeFiles/rotind.dir/search/lower_bound.cc.o.d"
  "/root/repo/src/search/scan.cc" "src/CMakeFiles/rotind.dir/search/scan.cc.o" "gcc" "src/CMakeFiles/rotind.dir/search/scan.cc.o.d"
  "/root/repo/src/shape/bitmap.cc" "src/CMakeFiles/rotind.dir/shape/bitmap.cc.o" "gcc" "src/CMakeFiles/rotind.dir/shape/bitmap.cc.o.d"
  "/root/repo/src/shape/contour.cc" "src/CMakeFiles/rotind.dir/shape/contour.cc.o" "gcc" "src/CMakeFiles/rotind.dir/shape/contour.cc.o.d"
  "/root/repo/src/shape/generate.cc" "src/CMakeFiles/rotind.dir/shape/generate.cc.o" "gcc" "src/CMakeFiles/rotind.dir/shape/generate.cc.o.d"
  "/root/repo/src/shape/profile.cc" "src/CMakeFiles/rotind.dir/shape/profile.cc.o" "gcc" "src/CMakeFiles/rotind.dir/shape/profile.cc.o.d"
  "/root/repo/src/stream/monitor.cc" "src/CMakeFiles/rotind.dir/stream/monitor.cc.o" "gcc" "src/CMakeFiles/rotind.dir/stream/monitor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
