file(REMOVE_RECURSE
  "librotind.a"
)
