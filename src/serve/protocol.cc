#include "src/serve/protocol.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace rotind::serve {
namespace {

constexpr std::size_t kMaxLineBytes = 4096;
constexpr int kMaxK = 1 << 20;
constexpr double kMaxDeadlineMs = 86'400'000.0;  // one day

/// Splits `line` into space-separated tokens. Exactly one space between
/// tokens; leading/trailing spaces are rejected by the empty-token check.
Status Tokenize(std::string_view line, std::vector<std::string_view>* out) {
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == ' ') {
      if (i == start) {
        return Status::InvalidArgument("empty token (stray space?)");
      }
      out->push_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  return Status::Ok();
}

Status ParseSize(std::string_view token, const char* what,
                 std::size_t* out) {
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Status::InvalidArgument(std::string(what) + " '" +
                                   std::string(token) +
                                   "' is not a valid non-negative integer");
  }
  *out = value;
  return Status::Ok();
}

Status ParseDouble(std::string_view token, const char* what, double* out) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size() ||
      !std::isfinite(value)) {
    return Status::InvalidArgument(std::string(what) + " '" +
                                   std::string(token) +
                                   "' is not a finite number");
  }
  *out = value;
  return Status::Ok();
}

/// Parses the optional trailing `deadline_ms=<float>` token.
Status ParseDeadline(std::string_view token, Request* request) {
  constexpr std::string_view kPrefix = "deadline_ms=";
  if (token.substr(0, kPrefix.size()) != kPrefix) {
    return Status::InvalidArgument("unexpected token '" + std::string(token) +
                                   "' (want deadline_ms=<float>)");
  }
  double ms = 0.0;
  Status s = ParseDouble(token.substr(kPrefix.size()), "deadline_ms", &ms);
  if (!s.ok()) return s;
  // Positive phrasing: every comparison with NaN is false, so a NaN that
  // slips past upstream validation is rejected here instead of silently
  // converting to a nonsense deadline. The negated form (`ms <= 0.0 ||
  // ms > kMax`) accepts NaN — both disjuncts are false.
  if (!(ms > 0.0 && ms <= kMaxDeadlineMs)) {
    return Status::InvalidArgument("deadline_ms must be in (0, " +
                                   std::to_string(kMaxDeadlineMs) + "]");
  }
  request->deadline = std::chrono::nanoseconds(
      static_cast<std::int64_t>(ms * 1'000'000.0));
  return Status::Ok();
}

void AppendNeighbor(std::string* out, const Neighbor& n) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%d:%.17g:%d:%d", n.index, n.distance,
                n.shift, n.mirrored ? 1 : 0);
  *out += buf;
}

}  // namespace

const char* OpName(RequestOp op) {
  switch (op) {
    case RequestOp::kNearest: return "nn";
    case RequestOp::kKnn: return "knn";
    case RequestOp::kRange: return "range";
  }
  return "unknown";
}

StatusOr<Request> ParseRequest(std::string_view line) {
  if (line.size() > kMaxLineBytes) {
    return Status::InvalidArgument("request line exceeds " +
                                   std::to_string(kMaxLineBytes) + " bytes");
  }
  // Strip one trailing CR or LF pair (teleconsole-friendly), then reject
  // any remaining control bytes — this is a single-line protocol.
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  if (line.empty()) return Status::InvalidArgument("empty request line");
  for (char c : line) {
    if (static_cast<unsigned char>(c) < 0x20 || c == 0x7f) {
      return Status::InvalidArgument("control byte in request line");
    }
  }

  std::vector<std::string_view> tokens;
  Status split = Tokenize(line, &tokens);
  if (!split.ok()) return split;

  Request request;
  std::size_t positional = 0;  // tokens after the op, before deadline_ms
  if (tokens[0] == "nn") {
    request.op = RequestOp::kNearest;
    positional = 1;
  } else if (tokens[0] == "knn") {
    request.op = RequestOp::kKnn;
    positional = 2;
  } else if (tokens[0] == "range") {
    request.op = RequestOp::kRange;
    positional = 2;
  } else {
    return Status::InvalidArgument("unknown op '" + std::string(tokens[0]) +
                                   "' (want nn | knn | range)");
  }
  if (tokens.size() < 1 + positional || tokens.size() > 2 + positional) {
    return Status::InvalidArgument(std::string("op '") + OpName(request.op) +
                                   "' takes " + std::to_string(positional) +
                                   " arguments plus an optional deadline");
  }

  Status s = ParseSize(tokens[1], "query_id", &request.query_id);
  if (!s.ok()) return s;
  if (request.op == RequestOp::kKnn) {
    std::size_t k = 0;
    s = ParseSize(tokens[2], "k", &k);
    if (!s.ok()) return s;
    if (k < 1 || k > static_cast<std::size_t>(kMaxK)) {
      return Status::InvalidArgument("k must be in [1, " +
                                     std::to_string(kMaxK) + "]");
    }
    request.k = static_cast<int>(k);
  } else if (request.op == RequestOp::kRange) {
    s = ParseDouble(tokens[2], "radius", &request.radius);
    if (!s.ok()) return s;
    if (request.radius < 0.0) {
      return Status::InvalidArgument("radius must be >= 0");
    }
  }
  if (tokens.size() == 2 + positional) {
    s = ParseDeadline(tokens[1 + positional], &request);
    if (!s.ok()) return s;
  }
  return request;
}

bool IsAdminRequest(std::string_view line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  return line == "reload" || line.substr(0, 7) == "reload ";
}

StatusOr<AdminRequest> ParseAdminRequest(std::string_view line) {
  if (line.size() > kMaxLineBytes) {
    return Status::InvalidArgument("request line exceeds " +
                                   std::to_string(kMaxLineBytes) + " bytes");
  }
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  if (line.empty()) return Status::InvalidArgument("empty admin line");
  for (char c : line) {
    if (static_cast<unsigned char>(c) < 0x20 || c == 0x7f) {
      return Status::InvalidArgument("control byte in admin line");
    }
  }

  std::vector<std::string_view> tokens;
  Status split = Tokenize(line, &tokens);
  if (!split.ok()) return split;

  if (tokens[0] != "reload") {
    return Status::InvalidArgument("unknown admin verb '" +
                                   std::string(tokens[0]) +
                                   "' (want reload)");
  }
  if (tokens.size() > 2) {
    return Status::InvalidArgument(
        "reload takes at most one argument (a manifest path)");
  }
  AdminRequest admin;
  admin.op = AdminRequest::Op::kReload;
  if (tokens.size() == 2) admin.path = std::string(tokens[1]);
  return admin;
}

std::string FormatResponse(const Request& request, const Response& response) {
  std::string out;
  out.reserve(64 + response.neighbors.size() * 32);
  if (!response.status.ok()) {
    out += "ERR ";
    out += StatusCodeName(response.status.code());
    out += " op=";
    out += OpName(request.op);
    out += " id=" + std::to_string(request.query_id);
    out += " msg=" + response.status.message();
    return out;
  }
  out += "OK op=";
  out += OpName(request.op);
  out += " id=" + std::to_string(request.query_id);
  if (request.op == RequestOp::kKnn) {
    out += " k=" + std::to_string(request.k);
    out += " effective_k=" + std::to_string(response.effective_k);
    out += " degraded=";
    out += response.degraded ? '1' : '0';
  }
  out += " n=" + std::to_string(response.neighbors.size());
  out += " latency_us=" +
         std::to_string(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 response.latency)
                 .count());
  out += " results=";
  for (std::size_t i = 0; i < response.neighbors.size(); ++i) {
    if (i > 0) out += ',';
    AppendNeighbor(&out, response.neighbors[i]);
  }
  return out;
}

}  // namespace rotind::serve
