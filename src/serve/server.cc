#include "src/serve/server.h"

#include <utility>

#include "src/core/contracts.h"

namespace rotind::serve {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t NanosToMicros(std::uint64_t nanos) { return nanos / 1000; }

void AppendU64(std::string* out, const std::string& pad, const char* key,
               std::uint64_t value, bool comma) {
  *out += pad + "\"" + key + "\": " + std::to_string(value) +
          (comma ? ",\n" : "\n");
}

}  // namespace

std::string ServerStats::ToJson(int indent) const {
  const std::string p0(indent, ' ');
  const std::string p1(indent + 2, ' ');
  const std::string p2(indent + 4, ' ');
  std::string out = p0 + "{\n";
  AppendU64(&out, p1, "submitted", submitted, true);
  AppendU64(&out, p1, "admitted", admitted, true);
  AppendU64(&out, p1, "shed", shed, true);
  AppendU64(&out, p1, "rejected_draining", rejected_draining, true);
  AppendU64(&out, p1, "completed_ok", completed_ok, true);
  AppendU64(&out, p1, "degraded", degraded, true);
  AppendU64(&out, p1, "deadline_exceeded", deadline_exceeded, true);
  AppendU64(&out, p1, "cancelled", cancelled, true);
  AppendU64(&out, p1, "failed", failed, true);
  AppendU64(&out, p1, "reloads", reloads, true);
  out += p1 + "\"e2e_latency\": {\n";
  AppendU64(&out, p2, "count", e2e_latency.count(), true);
  AppendU64(&out, p2, "p50_us",
            NanosToMicros(e2e_latency.PercentileNanos(50.0)), true);
  AppendU64(&out, p2, "p95_us",
            NanosToMicros(e2e_latency.PercentileNanos(95.0)), true);
  AppendU64(&out, p2, "p99_us",
            NanosToMicros(e2e_latency.PercentileNanos(99.0)), true);
  AppendU64(&out, p2, "max_us", NanosToMicros(e2e_latency.max_nanos()),
            false);
  out += p1 + "},\n";
  out += p1 + "\"engine\":\n";
  out += engine_metrics.ToJson(indent + 2);
  out += "\n" + p0 + "}";
  return out;
}

QueryServer::QueryServer(const QueryEngine& engine,
                         const ServerOptions& options)
    // Non-owning alias: an empty control block with a raw pointer — the
    // caller's lifetime promise is unchanged from the pre-reload API.
    : QueryServer(std::shared_ptr<const QueryEngine>(
                      std::shared_ptr<const QueryEngine>(), &engine),
                  options, 0) {}

QueryServer::QueryServer(std::shared_ptr<const QueryEngine> engine,
                         const ServerOptions& options,
                         std::uint64_t generation)
    : options_(options), engine_(std::move(engine)),
      generation_(generation) {
  ROTIND_CONTRACT(engine_ != nullptr && engine_->backend() != nullptr,
                  "QueryServer needs an engine with a StorageBackend; the "
                  "legacy vector adapter is not servable");
  ROTIND_CONTRACT(options.num_workers >= 1, "num_workers must be >= 1");
  ROTIND_CONTRACT(options.queue_capacity >= 1,
                  "queue_capacity must be >= 1");
}

QueryServer::~QueryServer() { (void)Shutdown(); }

void QueryServer::Start() {
  MutexLock lock(mutex_);
  if (started_) return;
  started_ = true;
  workers_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Status QueryServer::Submit(const Request& request, ResponseCallback done) {
  {
    MutexLock stats_lock(stats_mutex_);
    ++stats_.submitted;
  }
  Item item;
  item.request = request;
  item.done = std::move(done);
  item.admitted = Clock::now();
  const std::chrono::nanoseconds budget =
      request.deadline.count() > 0 ? request.deadline
                                   : options_.default_deadline;
  if (budget.count() > 0) {
    item.deadline = item.admitted + budget;
    item.has_deadline = true;
  }
  {
    // stats_mutex_ (kServeStats) nests inside mutex_ (kServeQueue) here —
    // the one sanctioned nesting in the serve layer.
    MutexLock lock(mutex_);
    if (draining_) {
      MutexLock stats_lock(stats_mutex_);
      ++stats_.rejected_draining;
      return Status::Cancelled("server is draining; admission stopped");
    }
    if (queue_.size() >= options_.queue_capacity) {
      // Load shedding: fail FAST and typed, do not queue beyond capacity.
      MutexLock stats_lock(stats_mutex_);
      ++stats_.shed;
      return Status::Overloaded(
          "request queue full (" + std::to_string(options_.queue_capacity) +
          " deep); retry later");
    }
    queue_.push_back(std::move(item));
    MutexLock stats_lock(stats_mutex_);
    ++stats_.admitted;
  }
  work_cv_.NotifyOne();
  return Status::Ok();
}

void QueryServer::BeginShutdown() {
  {
    MutexLock lock(mutex_);
    draining_ = true;
  }
  work_cv_.NotifyAll();
}

bool QueryServer::Drain(std::chrono::nanoseconds deadline) {
  std::deque<Item> orphans;
  {
    MutexLock lock(mutex_);
    if (started_) {
      const auto until = Clock::now() + deadline;
      bool timed_out = false;
      while (!IdleLocked() && !timed_out) {
        timed_out = !drain_cv_.WaitUntil(mutex_, until);
      }
      if (IdleLocked()) return true;
      // Drain deadline expired: hard-cancel. Every in-flight query
      // observes the kill-switch at its next cascade stage boundary and
      // unwinds with a typed status; queued items fail their
      // admission-time token check.
      kill_switch_.store(true, std::memory_order_relaxed);
      while (!IdleLocked()) drain_cv_.Wait(mutex_);
      return false;
    }
    // No workers to drain through: complete queued items as cancelled so
    // every admitted request still gets exactly one callback. Callbacks
    // and stats run after the swap, outside the queue mutex.
    orphans.swap(queue_);
  }
  for (Item& item : orphans) {
    Response response;
    response.status =
        Status::Cancelled("server stopped before the request ran");
    response.latency = std::chrono::duration_cast<std::chrono::nanoseconds>(
        Clock::now() - item.admitted);
    if (item.done) item.done(item.request, response);
    RecordOutcome(item, response, obs::QueryMetrics());
  }
  return true;
}

bool QueryServer::Shutdown() {
  BeginShutdown();
  const bool clean = Drain(options_.drain_deadline);
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_cv_.NotifyAll();
  std::vector<std::thread> workers;
  {
    MutexLock lock(mutex_);
    if (joined_) return clean;
    joined_ = true;
    // Swap the pool out under the mutex that Start() mutates it under —
    // joining workers_ in place raced a concurrent Start() — then join
    // outside the lock: exiting workers take mutex_ for their final
    // drain notification.
    workers.swap(workers_);
  }
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
  return clean;
}

ServerStats QueryServer::stats() const {
  MutexLock lock(stats_mutex_);
  return stats_;
}

std::size_t QueryServer::queue_depth() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

bool QueryServer::draining() const {
  MutexLock lock(mutex_);
  return draining_;
}

std::uint64_t QueryServer::generation() const {
  MutexLock lock(engine_mutex_);
  return generation_;
}

Status QueryServer::SwapEngine(std::shared_ptr<const QueryEngine> next,
                               std::uint64_t generation) {
  if (next == nullptr || next->backend() == nullptr) {
    return Status::InvalidArgument(
        "SwapEngine needs an engine with a StorageBackend");
  }
  {
    MutexLock lock(mutex_);
    if (draining_ || stopping_) {
      return Status::Cancelled("server is shutting down; reload refused");
    }
    if (reloading_) {
      return Status::Overloaded("another reload is already in progress");
    }
    {
      // engine_mutex_ (kEngineGen) nests inside mutex_ (kServeQueue).
      MutexLock engine_lock(engine_mutex_);
      if (generation <= generation_) {
        return Status::InvalidArgument(
            "reload generation " + std::to_string(generation) +
            " does not advance live generation " +
            std::to_string(generation_) + "; rollback refused");
      }
    }
    // Barrier up: workers park instead of dequeuing, then the in-flight
    // set drains. Queued requests are RETAINED — they resume against the
    // new generation once the barrier drops.
    reloading_ = true;
    while (in_flight_ > 0) drain_cv_.Wait(mutex_);
    {
      MutexLock engine_lock(engine_mutex_);
      engine_ = std::move(next);
      generation_ = generation;
    }
    reloading_ = false;
    MutexLock stats_lock(stats_mutex_);
    ++stats_.reloads;
  }
  work_cv_.NotifyAll();
  return Status::Ok();
}

void QueryServer::WorkerLoop() {
  for (;;) {
    Item item;
    std::size_t depth_at_dequeue = 0;
    {
      MutexLock lock(mutex_);
      // A raised reload barrier parks the worker even when work is
      // queued: dequeuing would re-grow the in-flight set SwapEngine is
      // waiting to drain.
      while (reloading_ || (!stopping_ && queue_.empty())) {
        work_cv_.Wait(mutex_);
      }
      if (queue_.empty()) return;  // stopping_, and nothing left to run.
      depth_at_dequeue = queue_.size();
      item = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    // Pin the live engine snapshot for this item. The shared_ptr keeps a
    // swapped-out generation alive until its last in-flight query ends.
    std::shared_ptr<const QueryEngine> engine;
    {
      MutexLock engine_lock(engine_mutex_);
      engine = engine_;
    }
    obs::QueryMetrics metrics;
    const Response response =
        Execute(*engine, item, depth_at_dequeue, &metrics);
    if (item.done) item.done(item.request, response);
    RecordOutcome(item, response, metrics);
    {
      MutexLock lock(mutex_);
      --in_flight_;
      // The reload barrier waits on in_flight_ alone (the queue may be
      // non-empty behind it), so notify on that, not on IdleLocked().
      if (in_flight_ == 0) drain_cv_.NotifyAll();
    }
  }
}

Response QueryServer::Execute(const QueryEngine& engine, const Item& item,
                              std::size_t depth_at_dequeue,
                              obs::QueryMetrics* metrics) const {
  const Request& request = item.request;
  Response response;
  response.effective_k = request.k;

  // Graceful degradation, decided at dequeue time: sustained overload
  // shows up as standing queue depth. The honesty rule: the narrowed k is
  // reported in the response, never silently substituted.
  if (options_.degrade_under_overload && request.op == RequestOp::kKnn &&
      request.k > options_.degraded_k &&
      depth_at_dequeue >=
          static_cast<std::size_t>(options_.degrade_depth_fraction *
                                   static_cast<double>(
                                       options_.queue_capacity))) {
    response.effective_k = options_.degraded_k;
    response.degraded = true;
  }

  CancelToken token = item.has_deadline
                          ? CancelToken::WithDeadline(item.deadline)
                          : CancelToken();
  token.AttachKillSwitch(&kill_switch_);

  const auto finish = [&](Status status) {
    response.status = std::move(status);
    response.latency = std::chrono::duration_cast<std::chrono::nanoseconds>(
        Clock::now() - item.admitted);
    // A failed query may have latched an error on the shared backend;
    // consume it so one transient fault cannot poison later queries.
    if (!response.status.ok()) engine.backend()->ClearError();
    return response;
  };

  // A request that waited out its whole deadline in the queue fails here
  // without touching the engine (and a kill-switch drain unwinds the
  // entire queue this way).
  Status pre = token.Check();
  if (!pre.ok()) return finish(std::move(pre));

  if (request.query_id >= engine.database_size()) {
    return finish(Status::OutOfRange(
        "query_id " + std::to_string(request.query_id) + " not in [0, " +
        std::to_string(engine.database_size()) + ")"));
  }
  StatusOr<storage::SeriesHandle> handle =
      engine.backend()->TryFetch(request.query_id, nullptr);
  if (!handle.ok()) return finish(handle.status());
  const Series query(handle->data(), handle->data() + handle->length());

  switch (request.op) {
    case RequestOp::kNearest: {
      StatusOr<ScanResult> result =
          engine.SearchChecked(query, &token, metrics);
      if (!result.ok()) return finish(result.status());
      if (result->best_index >= 0) {
        response.neighbors.push_back(Neighbor{result->best_index,
                                              result->best_distance,
                                              result->best_shift,
                                              result->best_mirrored});
      }
      return finish(Status::Ok());
    }
    case RequestOp::kKnn: {
      StatusOr<std::vector<Neighbor>> result = engine.KnnChecked(
          query, response.effective_k, nullptr, &token, metrics);
      if (!result.ok()) return finish(result.status());
      response.neighbors = *std::move(result);
      return finish(Status::Ok());
    }
    case RequestOp::kRange: {
      StatusOr<std::vector<Neighbor>> result = engine.RangeChecked(
          query, request.radius, nullptr, &token, metrics);
      if (!result.ok()) return finish(result.status());
      response.neighbors = *std::move(result);
      return finish(Status::Ok());
    }
  }
  return finish(Status::Internal("unhandled request op"));
}

void QueryServer::RecordOutcome(const Item& item, const Response& response,
                                const obs::QueryMetrics& metrics) {
  (void)item;
  MutexLock lock(stats_mutex_);
  stats_.engine_metrics += metrics;
  stats_.e2e_latency.Record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(response.latency)
          .count()));
  switch (response.status.code()) {
    case StatusCode::kOk:
      ++stats_.completed_ok;
      if (response.degraded) ++stats_.degraded;
      break;
    case StatusCode::kDeadlineExceeded:
      ++stats_.deadline_exceeded;
      break;
    case StatusCode::kCancelled:
      ++stats_.cancelled;
      break;
    default:
      ++stats_.failed;
      break;
  }
}

}  // namespace rotind::serve
