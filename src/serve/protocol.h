#ifndef ROTIND_SERVE_PROTOCOL_H_
#define ROTIND_SERVE_PROTOCOL_H_

#include <chrono>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/status.h"
#include "src/search/scan.h"

namespace rotind::serve {

/// The server's wire protocol: one request per line, one response per
/// line. Text on purpose — it is debuggable with a terminal, testable
/// with a heredoc, and its parser is a first-class fuzz target (any byte
/// string must map to a Request or a Status, never a crash).
///
/// Request grammar (fields separated by single spaces):
///
///   nn <query_id> [deadline_ms=<float>]
///   knn <query_id> <k> [deadline_ms=<float>]
///   range <query_id> <radius> [deadline_ms=<float>]
///
/// `query_id` names a database object (the query series is fetched from
/// the engine's own backend, so a request is a few bytes, not a series).
///
/// Response grammar:
///
///   OK op=<op> id=<id> [k=<k> effective_k=<k> degraded=<0|1>]
///     n=<count> latency_us=<int> results=<idx>:<dist>:<shift>:<m>,...
///   ERR <STATUS_CODE> op=<op> id=<id> msg=<text>
///
/// Every non-OK outcome is explicitly typed by its STATUS_CODE
/// (DEADLINE_EXCEEDED, OVERLOADED, CANCELLED, IO_ERROR, ...): a degraded
/// or aborted query is never presented as a full exact answer.
enum class RequestOp { kNearest, kKnn, kRange };

/// Stable wire name: "nn" / "knn" / "range".
const char* OpName(RequestOp op);

struct Request {
  RequestOp op = RequestOp::kNearest;
  std::size_t query_id = 0;
  int k = 1;              ///< kKnn only.
  double radius = 0.0;    ///< kRange only.
  /// Per-query deadline measured from admission; zero means "use the
  /// server default" (and if that is zero too, no deadline).
  std::chrono::nanoseconds deadline{0};
};

struct Response {
  Status status;  ///< kOk, or the typed reason no answer is given.
  /// Honesty bits: set when admission control narrowed the request.
  /// `effective_k` is the k actually answered (== request k when not
  /// degraded); a degraded response is exact FOR THAT effective_k.
  bool degraded = false;
  int effective_k = 0;
  std::vector<Neighbor> neighbors;
  /// End-to-end latency (admission to completion, queue wait included).
  std::chrono::nanoseconds latency{0};
};

/// Parses one request line. Strict: unknown ops, malformed or
/// out-of-range numbers, trailing garbage, embedded NUL or control
/// bytes, and over-long lines (> 4096 bytes) are all typed errors.
/// Never throws.
[[nodiscard]] StatusOr<Request> ParseRequest(std::string_view line);

/// Renders one response line (no trailing newline).
std::string FormatResponse(const Request& request, const Response& response);

/// Admin verbs ride the same line protocol but never reach the query
/// queue — the CLI intercepts them before ParseRequest. Grammar:
///
///   reload [<manifest_path>]
///
/// omitting the path re-opens the manifest the server was started with
/// (picking up whatever generation compaction has since published).
/// Response: `OK op=reload generation=<g>` or `ERR <CODE> op=reload
/// msg=<text>`.
struct AdminRequest {
  enum class Op { kReload };
  Op op = Op::kReload;
  std::string path;  ///< Empty: reload the manifest already being served.
};

/// True iff `line` starts with an admin verb (after CR/LF stripping) —
/// the dispatch test, deliberately cheap and never failing.
[[nodiscard]] bool IsAdminRequest(std::string_view line);

/// Parses one admin line with the same strictness as ParseRequest
/// (length cap, control-byte rejection, exact token arity). Fuzz-fed
/// alongside ParseRequest: any byte string maps to an AdminRequest or a
/// typed Status, never a crash.
[[nodiscard]] StatusOr<AdminRequest> ParseAdminRequest(std::string_view line);

}  // namespace rotind::serve

#endif  // ROTIND_SERVE_PROTOCOL_H_
