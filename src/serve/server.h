#ifndef ROTIND_SERVE_SERVER_H_
#define ROTIND_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/cancel.h"
#include "src/core/status.h"
#include "src/core/sync.h"
#include "src/obs/metrics.h"
#include "src/search/engine.h"
#include "src/serve/protocol.h"

namespace rotind::serve {

/// Server configuration: the robustness knobs of ISSUE 6.
struct ServerOptions {
  /// Worker threads draining the request queue.
  int num_workers = 4;
  /// Bounded queue depth; a Submit beyond it is shed with kOverloaded.
  std::size_t queue_capacity = 64;
  /// Deadline applied to requests that carry none (zero = no deadline).
  std::chrono::nanoseconds default_deadline{0};
  /// How long Shutdown lets in-flight + queued work finish before the
  /// kill-switch hard-cancels the remainder.
  std::chrono::nanoseconds drain_deadline{std::chrono::seconds(5)};
  /// Graceful degradation under sustained overload: when a k-NN request
  /// is dequeued while queue depth >= degrade_depth_fraction * capacity,
  /// its k is narrowed to degraded_k. The response carries degraded=1 and
  /// the effective k — the answer is exact FOR THAT k and is never
  /// presented as the full answer (the honesty rule).
  bool degrade_under_overload = true;
  double degrade_depth_fraction = 0.75;
  int degraded_k = 1;
};

/// Cumulative server accounting. Every admitted request ends in exactly
/// one terminal counter (ok / deadline_exceeded / cancelled / failed);
/// shed requests never enter the queue.
struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;               ///< kOverloaded fast-rejects.
  std::uint64_t rejected_draining = 0;  ///< Submits after BeginShutdown.
  std::uint64_t completed_ok = 0;
  std::uint64_t degraded = 0;           ///< OK responses with narrowed k.
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;             ///< I/O or validation failures.
  std::uint64_t reloads = 0;            ///< Completed engine swaps.
  /// Merged per-stage engine metrics (cascade attribution, storage I/O
  /// with retry counters, engine-side latency).
  obs::QueryMetrics engine_metrics;
  /// End-to-end latency: admission to completion, queue wait included.
  obs::LatencyHistogram e2e_latency;

  /// {"submitted": ..., "e2e_latency_p99_us": ..., "engine": {...}}
  [[nodiscard]] std::string ToJson(int indent = 0) const;
};

/// A long-running concurrent query server over one QueryEngine.
///
/// Lifecycle: construct -> (optionally Submit while stopped, for
/// deterministic tests) -> Start() -> Submit()/callbacks -> Shutdown().
/// Submit is thread-safe and non-blocking: it either enqueues (bounded
/// queue) or fast-rejects with kOverloaded / kCancelled. Worker threads
/// dequeue, run the query through the engine's Checked entry points with
/// a per-query CancelToken (deadline measured from ADMISSION, so queue
/// wait counts), and invoke the completion callback from the worker.
///
/// Shutdown(): stops admission, drains under drain_deadline, then flips
/// the shared kill-switch so stragglers abort at their next cascade
/// stage boundary with a typed status. Returns true for a clean drain.
/// The engine must outlive the server and have a StorageBackend (the
/// legacy vector adapter is not servable).
///
/// Online reload (ISSUE 10): the engine is held as a generation-stamped
/// shared_ptr swapped by SwapEngine. A swap is a barrier, not a restart:
/// admission stays open (requests queue behind the reload), workers stop
/// dequeuing, in-flight queries drain, the pointer flips atomically
/// under engine_mutex_, and the queue resumes against the new
/// generation. Queued requests are therefore answered by whichever
/// generation is live when they are DEQUEUED — never by a mix.
class QueryServer {
 public:
  /// Completion callback; runs on a worker thread. Must not call back
  /// into the server (Submit from a callback would deadlock on drain).
  using ResponseCallback =
      std::function<void(const Request&, const Response&)>;

  /// Legacy non-owning binding: the caller keeps the engine alive for
  /// the server's lifetime. SwapEngine still works (the swapped-in
  /// engine is owned; the original is simply released unobserved).
  QueryServer(const QueryEngine& engine, const ServerOptions& options);
  /// Owning binding for reloadable deployments; `generation` stamps the
  /// initial snapshot (a later SwapEngine must advance past it).
  QueryServer(std::shared_ptr<const QueryEngine> engine,
              const ServerOptions& options, std::uint64_t generation = 0);
  ~QueryServer();
  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Launches the worker pool. Idempotent.
  void Start() ROTIND_EXCLUDES(mutex_);

  /// Admission control. OK: enqueued, `done` will run exactly once.
  /// kOverloaded: queue full, request shed, `done` never runs.
  /// kCancelled: server is draining, `done` never runs.
  [[nodiscard]] Status Submit(const Request& request, ResponseCallback done)
      ROTIND_EXCLUDES(mutex_, stats_mutex_);

  /// Stops admission; queued and in-flight work continues.
  void BeginShutdown() ROTIND_EXCLUDES(mutex_);

  /// Waits for the queue and in-flight set to empty. If `deadline`
  /// passes first, sets the kill-switch (in-flight queries return
  /// kCancelled at their next stage boundary) and waits for the fast
  /// unwind. Returns true iff the drain completed without the
  /// kill-switch.
  bool Drain(std::chrono::nanoseconds deadline)
      ROTIND_EXCLUDES(mutex_, stats_mutex_);

  /// BeginShutdown + Drain(options.drain_deadline) + worker join.
  /// Returns Drain's verdict. Idempotent.
  bool Shutdown() ROTIND_EXCLUDES(mutex_, stats_mutex_);

  /// Atomic engine swap: rejects generation rollbacks (kInvalidArgument)
  /// and swaps during shutdown (kCancelled); a concurrent swap returns
  /// kOverloaded. Otherwise pauses dequeuing, waits for in-flight work
  /// to drain (queued requests are retained), flips the engine pointer
  /// + generation, and wakes the workers. Blocks the caller for at most
  /// the tail latency of the in-flight set. `next` must have a
  /// StorageBackend, like the constructor argument.
  [[nodiscard]] Status SwapEngine(std::shared_ptr<const QueryEngine> next,
                                  std::uint64_t generation)
      ROTIND_EXCLUDES(mutex_, stats_mutex_, engine_mutex_);

  /// Generation stamp of the live engine.
  [[nodiscard]] std::uint64_t generation() const
      ROTIND_EXCLUDES(engine_mutex_);

  [[nodiscard]] ServerStats stats() const ROTIND_EXCLUDES(stats_mutex_);
  [[nodiscard]] std::size_t queue_depth() const ROTIND_EXCLUDES(mutex_);
  [[nodiscard]] bool draining() const ROTIND_EXCLUDES(mutex_);

 private:
  struct Item {
    Request request;
    ResponseCallback done;
    std::chrono::steady_clock::time_point admitted;
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
  };

  void WorkerLoop() ROTIND_EXCLUDES(mutex_, stats_mutex_, engine_mutex_);
  /// Runs one admitted request through `engine` and fills the response.
  /// The worker pins the engine snapshot it dequeued under, so a swap
  /// completing mid-query cannot pull the engine out from under it.
  /// `depth_at_dequeue` drives the degradation decision; per-query
  /// engine metrics land in `*metrics` for the stats merge.
  Response Execute(const QueryEngine& engine, const Item& item,
                   std::size_t depth_at_dequeue,
                   obs::QueryMetrics* metrics) const;
  void RecordOutcome(const Item& item, const Response& response,
                     const obs::QueryMetrics& metrics)
      ROTIND_EXCLUDES(stats_mutex_);
  /// The drain condition: nothing queued, nothing running.
  [[nodiscard]] bool IdleLocked() const ROTIND_REQUIRES(mutex_) {
    return queue_.empty() && in_flight_ == 0;
  }

  const ServerOptions options_;

  /// kEngineGen nests inside kServeQueue (SwapEngine holds mutex_ across
  /// the drain barrier and flips the pointer under both) and inside
  /// nothing else: workers copy the shared_ptr with only engine_mutex_
  /// held, then run the query lock-free.
  mutable Mutex engine_mutex_{LockRank::kEngineGen};
  std::shared_ptr<const QueryEngine> engine_ ROTIND_GUARDED_BY(engine_mutex_);
  std::uint64_t generation_ ROTIND_GUARDED_BY(engine_mutex_) = 0;

  /// kServeQueue is the top of the lock-order hierarchy: Submit holds it
  /// while taking stats_mutex_, and workers reach storage-layer mutexes
  /// only after releasing it.
  mutable Mutex mutex_{LockRank::kServeQueue};
  CondVar work_cv_;   ///< Queue became non-empty / stop / reload done.
  CondVar drain_cv_;  ///< In-flight hit zero (drain + reload barrier).
  std::deque<Item> queue_ ROTIND_GUARDED_BY(mutex_);
  std::size_t in_flight_ ROTIND_GUARDED_BY(mutex_) = 0;
  /// Admission stopped.
  bool draining_ ROTIND_GUARDED_BY(mutex_) = false;
  /// A SwapEngine barrier is up: workers park instead of dequeuing.
  bool reloading_ ROTIND_GUARDED_BY(mutex_) = false;
  /// Workers exit once the queue is empty.
  bool stopping_ ROTIND_GUARDED_BY(mutex_) = false;
  bool started_ ROTIND_GUARDED_BY(mutex_) = false;
  bool joined_ ROTIND_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_ ROTIND_GUARDED_BY(mutex_);

  /// Shared hard-cancel flag, attached to every in-flight CancelToken.
  /// SYNC-EXEMPT: lock-free by design — workers poll it at cascade stage
  /// boundaries without taking mutex_; relaxed flag, no ordering needed.
  std::atomic<bool> kill_switch_{false};

  /// kServeStats nests INSIDE mutex_ (Submit's admission accounting), so
  /// it ranks strictly below kServeQueue.
  mutable Mutex stats_mutex_{LockRank::kServeStats};
  ServerStats stats_ ROTIND_GUARDED_BY(stats_mutex_);
};

}  // namespace rotind::serve

#endif  // ROTIND_SERVE_SERVER_H_
