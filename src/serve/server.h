#ifndef ROTIND_SERVE_SERVER_H_
#define ROTIND_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/cancel.h"
#include "src/core/status.h"
#include "src/obs/metrics.h"
#include "src/search/engine.h"
#include "src/serve/protocol.h"

namespace rotind::serve {

/// Server configuration: the robustness knobs of ISSUE 6.
struct ServerOptions {
  /// Worker threads draining the request queue.
  int num_workers = 4;
  /// Bounded queue depth; a Submit beyond it is shed with kOverloaded.
  std::size_t queue_capacity = 64;
  /// Deadline applied to requests that carry none (zero = no deadline).
  std::chrono::nanoseconds default_deadline{0};
  /// How long Shutdown lets in-flight + queued work finish before the
  /// kill-switch hard-cancels the remainder.
  std::chrono::nanoseconds drain_deadline{std::chrono::seconds(5)};
  /// Graceful degradation under sustained overload: when a k-NN request
  /// is dequeued while queue depth >= degrade_depth_fraction * capacity,
  /// its k is narrowed to degraded_k. The response carries degraded=1 and
  /// the effective k — the answer is exact FOR THAT k and is never
  /// presented as the full answer (the honesty rule).
  bool degrade_under_overload = true;
  double degrade_depth_fraction = 0.75;
  int degraded_k = 1;
};

/// Cumulative server accounting. Every admitted request ends in exactly
/// one terminal counter (ok / deadline_exceeded / cancelled / failed);
/// shed requests never enter the queue.
struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;               ///< kOverloaded fast-rejects.
  std::uint64_t rejected_draining = 0;  ///< Submits after BeginShutdown.
  std::uint64_t completed_ok = 0;
  std::uint64_t degraded = 0;           ///< OK responses with narrowed k.
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;             ///< I/O or validation failures.
  /// Merged per-stage engine metrics (cascade attribution, storage I/O
  /// with retry counters, engine-side latency).
  obs::QueryMetrics engine_metrics;
  /// End-to-end latency: admission to completion, queue wait included.
  obs::LatencyHistogram e2e_latency;

  /// {"submitted": ..., "e2e_latency_p99_us": ..., "engine": {...}}
  std::string ToJson(int indent = 0) const;
};

/// A long-running concurrent query server over one QueryEngine.
///
/// Lifecycle: construct -> (optionally Submit while stopped, for
/// deterministic tests) -> Start() -> Submit()/callbacks -> Shutdown().
/// Submit is thread-safe and non-blocking: it either enqueues (bounded
/// queue) or fast-rejects with kOverloaded / kCancelled. Worker threads
/// dequeue, run the query through the engine's Checked entry points with
/// a per-query CancelToken (deadline measured from ADMISSION, so queue
/// wait counts), and invoke the completion callback from the worker.
///
/// Shutdown(): stops admission, drains under drain_deadline, then flips
/// the shared kill-switch so stragglers abort at their next cascade
/// stage boundary with a typed status. Returns true for a clean drain.
/// The engine must outlive the server and have a StorageBackend (the
/// legacy vector adapter is not servable).
class QueryServer {
 public:
  /// Completion callback; runs on a worker thread. Must not call back
  /// into the server (Submit from a callback would deadlock on drain).
  using ResponseCallback =
      std::function<void(const Request&, const Response&)>;

  QueryServer(const QueryEngine& engine, const ServerOptions& options);
  ~QueryServer();
  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Launches the worker pool. Idempotent.
  void Start();

  /// Admission control. OK: enqueued, `done` will run exactly once.
  /// kOverloaded: queue full, request shed, `done` never runs.
  /// kCancelled: server is draining, `done` never runs.
  [[nodiscard]] Status Submit(const Request& request, ResponseCallback done);

  /// Stops admission; queued and in-flight work continues.
  void BeginShutdown();

  /// Waits for the queue and in-flight set to empty. If `deadline`
  /// passes first, sets the kill-switch (in-flight queries return
  /// kCancelled at their next stage boundary) and waits for the fast
  /// unwind. Returns true iff the drain completed without the
  /// kill-switch.
  bool Drain(std::chrono::nanoseconds deadline);

  /// BeginShutdown + Drain(options.drain_deadline) + worker join.
  /// Returns Drain's verdict. Idempotent.
  bool Shutdown();

  ServerStats stats() const;
  std::size_t queue_depth() const;
  bool draining() const;

 private:
  struct Item {
    Request request;
    ResponseCallback done;
    std::chrono::steady_clock::time_point admitted;
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
  };

  void WorkerLoop();
  /// Runs one admitted request through the engine and fills the
  /// response. `depth_at_dequeue` drives the degradation decision;
  /// per-query engine metrics land in `*metrics` for the stats merge.
  Response Execute(const Item& item, std::size_t depth_at_dequeue,
                   obs::QueryMetrics* metrics) const;
  void RecordOutcome(const Item& item, const Response& response,
                     const obs::QueryMetrics& metrics);

  const QueryEngine& engine_;
  const ServerOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< Queue became non-empty / stop.
  std::condition_variable drain_cv_;  ///< Queue + in-flight hit zero.
  std::deque<Item> queue_;
  std::size_t in_flight_ = 0;
  bool draining_ = false;  ///< Admission stopped.
  bool stopping_ = false;  ///< Workers exit once the queue is empty.
  bool started_ = false;
  bool joined_ = false;
  std::vector<std::thread> workers_;

  /// Shared hard-cancel flag, attached to every in-flight CancelToken.
  std::atomic<bool> kill_switch_{false};

  mutable std::mutex stats_mutex_;
  ServerStats stats_;
};

}  // namespace rotind::serve

#endif  // ROTIND_SERVE_SERVER_H_
