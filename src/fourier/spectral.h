#ifndef ROTIND_FOURIER_SPECTRAL_H_
#define ROTIND_FOURIER_SPECTRAL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/series.h"
#include "src/core/status.h"
#include "src/core/step_counter.h"

namespace rotind {

/// Rotation-invariant spectral signatures (paper Section 4.2 and refs
/// [4][38]).
///
/// A circular shift of a series multiplies each DFT coefficient by a unit
/// phase, leaving magnitudes unchanged. By Parseval,
///
///   ED^2(Q_rot_j, C) = (1/n) * sum_k |Q_k e^{i phi_k} - C_k|^2
///                   >= (1/n) * sum_{k in S} (|Q_k| - |C_k|)^2
///
/// for ANY subset S of bins and ANY rotation j. The signature stores
/// w_k * |X_k| with w_k = sqrt(weight_k / n) (weight 2 for conjugate-pair
/// bins of a real signal, 1 for DC/Nyquist), so the plain L2 distance
/// between two signatures:
///   * lower-bounds RED(Q, C)  (exactness: no false dismissals), and
///   * is a true metric on signature space (enables VP-tree pruning).
struct SpectralSignature {
  std::vector<double> values;

  std::size_t dims() const { return values.size(); }
};

/// Builds the D-dimensional magnitude signature of `s` using bins
/// k = 1 .. D (bin 0 is skipped: z-normalised series have zero DC, and
/// keeping low frequencies first retains most energy, paper Section 5.4).
///
/// CONTRACT: `dims` is CLAMPED to n/2 (the conjugate-pair weighting is only
/// valid for D <= n/2), so the returned signature may have fewer dimensions
/// than requested. On a heterogeneous-length dataset this produces
/// mixed-dimensionality signatures that are NOT mutually comparable —
/// callers building signature sets over many series must either guarantee a
/// uniform length or use MakeSpectralSignatureChecked, which makes the
/// clamp an error instead. Requires n >= 2.
SpectralSignature MakeSpectralSignature(const Series& s, std::size_t dims);

/// Validated variant: kInvalidArgument when n < 2 or `dims` would be
/// clamped (dims > n/2) — the footgun path that silently produced
/// mixed-dimensionality signature sets. Never clamps.
[[nodiscard]]
StatusOr<SpectralSignature> MakeSpectralSignatureChecked(const Series& s,
                                                         std::size_t dims);

/// L2 distance between signatures; a lower bound on RED(Q, C) and, for DTW
/// callers, NOT a bound (see index/candidate_scan.h for the DTW path).
/// Charges `dims` steps.
///
/// Signatures of differing dimensionality are incomparable; passing them is
/// a hard error on ALL build types (message + abort — never the silent heap
/// over-read the old NDEBUG assert allowed). Use SignatureDistanceChecked
/// when the mismatch must be recoverable.
double SignatureDistance(const SpectralSignature& a,
                         const SpectralSignature& b,
                         StepCounter* counter = nullptr);

/// Validated variant: kInvalidArgument (naming both dimensionalities)
/// instead of aborting on a dims mismatch.
[[nodiscard]]
StatusOr<double> SignatureDistanceChecked(const SpectralSignature& a,
                                          const SpectralSignature& b,
                                          StepCounter* counter = nullptr);

/// The paper's cost model charges n*log2(n) steps per FFT lower-bound use
/// (Section 5.3). Benches call this to account a transform.
std::uint64_t FftStepCost(std::size_t n);

/// Band-pooled rotation/mirror-invariant vector embedding (in the spirit
/// of the Shafieasl & Phillips rotation-invariant vectorization): the FULL
/// weighted magnitude spectrum x (all n/2 bins of SpectralSignature, so no
/// high-frequency energy is discarded) is partitioned into `dims`
/// contiguous frequency bands and each band stores its L2 energy,
/// v_b = ||x restricted to band b||_2. Per band, the reverse triangle
/// inequality gives |v_b(Q) - v_b(C)| <= ||x_b(Q) - x_b(C)||, so
///
///   ||v(Q) - v(C)||_2 <= ||x(Q) - x(C)||_2 <= RED(Q, C)
///
/// — a Euclidean-only lower bound on the rotation-invariant distance that
/// is invariant under BOTH circular shifts and mirroring (DFT magnitudes
/// are unchanged by either), so one stored vector per object prunes the
/// whole rotation x mirror orbit. A deliberately distinct type from
/// SpectralSignature: the two embeddings live in different spaces and
/// comparing them across kinds is meaningless.
struct VecSignature {
  std::vector<double> values;

  std::size_t dims() const { return values.size(); }
};

/// Builds the `dims`-band pooled signature. CONTRACT: `dims` is clamped to
/// n/2 (a band needs at least one spectrum bin) and must be >= 1; requires
/// n >= 2. The clamp has the same heterogeneous-length footgun as
/// MakeSpectralSignature — use the Checked variant to make it an error.
VecSignature MakeVecSignature(const Series& s, std::size_t dims);

/// Validated variant: kInvalidArgument when n < 2, dims == 0, or dims
/// would be clamped (dims > n/2). Never clamps.
[[nodiscard]]
StatusOr<VecSignature> MakeVecSignatureChecked(const Series& s,
                                               std::size_t dims);

/// L2 distance between pooled signatures; a lower bound on RED(Q, C)
/// (Euclidean only — NOT a DTW bound). Charges `dims` steps. Mismatched
/// dimensionalities are a hard error on all build types, exactly like
/// SignatureDistance.
double VecSignatureDistance(const VecSignature& a, const VecSignature& b,
                            StepCounter* counter = nullptr);

/// Validated variant: kInvalidArgument instead of aborting on a mismatch.
[[nodiscard]]
StatusOr<double> VecSignatureDistanceChecked(const VecSignature& a,
                                             const VecSignature& b,
                                             StepCounter* counter = nullptr);

}  // namespace rotind

#endif  // ROTIND_FOURIER_SPECTRAL_H_
