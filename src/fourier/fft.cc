#include "src/fourier/fft.h"

#include <cmath>

namespace rotind {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// In-place iterative radix-2 Cooley-Tukey. `invert` flips the transform
/// direction (without the 1/n scale; callers apply it).
void FftRadix2(std::vector<Complex>* a, bool invert) {
  const std::size_t n = a->size();
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap((*a)[i], (*a)[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = kTwoPi / static_cast<double>(len) * (invert ? 1 : -1);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = (*a)[i + k];
        const Complex v = (*a)[i + k + len / 2] * w;
        (*a)[i + k] = u + v;
        (*a)[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::size_t NextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Bluestein's chirp-z transform: expresses an arbitrary-length DFT as a
/// convolution, evaluated with power-of-two FFTs.
std::vector<Complex> FftBluestein(const std::vector<Complex>& input,
                                  bool invert) {
  const std::size_t n = input.size();
  const double sign = invert ? 1.0 : -1.0;

  // Chirp c_k = exp(sign * pi * I * k^2 / n). Index k^2 is reduced mod 2n to
  // keep the trig argument small (k^2 mod 2n preserves the chirp's value).
  std::vector<Complex> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t k2 = static_cast<std::size_t>(
        (static_cast<unsigned long long>(k) * k) % (2 * n));
    const double ang = kTwoPi / 2.0 * static_cast<double>(k2) /
                       static_cast<double>(n) * sign;
    chirp[k] = Complex(std::cos(ang), std::sin(ang));
  }

  const std::size_t m = NextPowerOfTwo(2 * n - 1);
  std::vector<Complex> a(m, Complex(0, 0));
  std::vector<Complex> b(m, Complex(0, 0));
  for (std::size_t k = 0; k < n; ++k) a[k] = input[k] * chirp[k];
  b[0] = std::conj(chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = b[m - k] = std::conj(chirp[k]);
  }

  FftRadix2(&a, false);
  FftRadix2(&b, false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  FftRadix2(&a, true);
  const double scale = 1.0 / static_cast<double>(m);

  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * scale * chirp[k];
  return out;
}

std::vector<Complex> Transform(const std::vector<Complex>& input,
                               bool invert) {
  if (input.size() <= 1) return input;
  if (IsPowerOfTwo(input.size())) {
    std::vector<Complex> a = input;
    FftRadix2(&a, invert);
    return a;
  }
  return FftBluestein(input, invert);
}

}  // namespace

bool IsPowerOfTwo(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::vector<Complex> Fft(const std::vector<Complex>& input) {
  return Transform(input, /*invert=*/false);
}

std::vector<Complex> InverseFft(const std::vector<Complex>& input) {
  std::vector<Complex> out = Transform(input, /*invert=*/true);
  const double scale =
      input.empty() ? 1.0 : 1.0 / static_cast<double>(input.size());
  for (Complex& v : out) v *= scale;
  return out;
}

std::vector<Complex> FftReal(const Series& input) {
  std::vector<Complex> c(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) c[i] = Complex(input[i], 0.0);
  return Fft(c);
}

std::vector<Complex> NaiveDft(const std::vector<Complex>& input) {
  const std::size_t n = input.size();
  std::vector<Complex> out(n, Complex(0, 0));
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const double ang =
          -kTwoPi * static_cast<double>(i) * static_cast<double>(k) /
          static_cast<double>(n);
      out[k] += input[i] * Complex(std::cos(ang), std::sin(ang));
    }
  }
  return out;
}

}  // namespace rotind
