#ifndef ROTIND_FOURIER_FFT_H_
#define ROTIND_FOURIER_FFT_H_

#include <complex>
#include <cstddef>
#include <vector>

#include "src/core/series.h"

namespace rotind {

using Complex = std::complex<double>;

/// Discrete Fourier transform X_k = sum_i x_i * exp(-2*pi*I*i*k/n), computed
/// with an iterative radix-2 Cooley-Tukey FFT when n is a power of two and
/// Bluestein's chirp-z algorithm otherwise (so arbitrary series lengths such
/// as the paper's n = 251 projectile points work without padding tricks).
/// No external FFT library is used.
std::vector<Complex> Fft(const std::vector<Complex>& input);

/// Inverse DFT, x_i = (1/n) sum_k X_k * exp(+2*pi*I*i*k/n).
std::vector<Complex> InverseFft(const std::vector<Complex>& input);

/// Forward DFT of a real series.
std::vector<Complex> FftReal(const Series& input);

/// O(n^2) reference DFT used by the test suite to validate the FFT.
std::vector<Complex> NaiveDft(const std::vector<Complex>& input);

/// True if n is a power of two (n >= 1).
bool IsPowerOfTwo(std::size_t n);

}  // namespace rotind

#endif  // ROTIND_FOURIER_FFT_H_
