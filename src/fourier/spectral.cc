#include "src/fourier/spectral.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/fourier/fft.h"

namespace rotind {

SpectralSignature MakeSpectralSignature(const Series& s, std::size_t dims) {
  const std::size_t n = s.size();
  assert(n >= 2);
  dims = std::min(dims, n / 2);  // documented clamp; Checked variant errors
  const std::vector<Complex> spectrum = FftReal(s);

  SpectralSignature sig;
  sig.values.resize(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    const std::size_t k = d + 1;  // skip DC (zero for z-normalised input)
    // Conjugate pair k and n-k both appear in Parseval's sum; the Nyquist
    // bin (k == n/2 for even n) has no distinct pair.
    const double weight = (2 * k == n) ? 1.0 : 2.0;
    sig.values[d] =
        std::abs(spectrum[k]) * std::sqrt(weight / static_cast<double>(n));
  }
  return sig;
}

StatusOr<SpectralSignature> MakeSpectralSignatureChecked(const Series& s,
                                                         std::size_t dims) {
  const std::size_t n = s.size();
  if (n < 2) {
    return Status::InvalidArgument(
        "series length " + std::to_string(n) +
        " is too short for a spectral signature (need >= 2)");
  }
  if (dims > n / 2) {
    return Status::InvalidArgument(
        "signature dims " + std::to_string(dims) + " exceeds n/2 = " +
        std::to_string(n / 2) + " for series length " + std::to_string(n) +
        "; a clamped signature would not be comparable to full-dims ones");
  }
  return MakeSpectralSignature(s, dims);
}

double SignatureDistance(const SpectralSignature& a,
                         const SpectralSignature& b, StepCounter* counter) {
  if (a.dims() != b.dims()) {
    // Incomparable signatures mean the caller's signature set is broken
    // (typically a silently clamped dims on a heterogeneous-length
    // dataset). Proceeding would read past the shorter buffer, so this is
    // fatal on every build type, not just under assert.
    std::fprintf(
        stderr, "rotind: SignatureDistance: %s\n",
        Status::InvalidArgument("signature dims mismatch: " +
                                std::to_string(a.dims()) + " vs " +
                                std::to_string(b.dims()))
            .ToString()
            .c_str());
    std::abort();
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    const double d = a.values[i] - b.values[i];
    acc += d * d;
  }
  AddSteps(counter, a.values.size());
  return std::sqrt(acc);
}

StatusOr<double> SignatureDistanceChecked(const SpectralSignature& a,
                                          const SpectralSignature& b,
                                          StepCounter* counter) {
  if (a.dims() != b.dims()) {
    return Status::InvalidArgument(
        "signature dims mismatch: " + std::to_string(a.dims()) + " vs " +
        std::to_string(b.dims()));
  }
  return SignatureDistance(a, b, counter);
}

VecSignature MakeVecSignature(const Series& s, std::size_t dims) {
  const std::size_t n = s.size();
  assert(n >= 2);
  assert(dims >= 1);
  const std::size_t bins = n / 2;
  dims = std::min(std::max<std::size_t>(dims, 1), bins);
  // Pool the FULL weighted magnitude spectrum: bin j (0-based over the n/2
  // signature bins) lands in band floor(j * dims / bins), so bands are
  // contiguous, cover every bin, and are non-empty (dims <= bins).
  const SpectralSignature full = MakeSpectralSignature(s, bins);
  VecSignature sig;
  sig.values.assign(dims, 0.0);
  for (std::size_t j = 0; j < bins; ++j) {
    const std::size_t band = j * dims / bins;
    sig.values[band] += full.values[j] * full.values[j];
  }
  for (std::size_t b = 0; b < dims; ++b) {
    sig.values[b] = std::sqrt(sig.values[b]);
  }
  return sig;
}

StatusOr<VecSignature> MakeVecSignatureChecked(const Series& s,
                                               std::size_t dims) {
  const std::size_t n = s.size();
  if (n < 2) {
    return Status::InvalidArgument(
        "series length " + std::to_string(n) +
        " is too short for a vec signature (need >= 2)");
  }
  if (dims == 0) {
    return Status::InvalidArgument("vec signature dims must be >= 1");
  }
  if (dims > n / 2) {
    return Status::InvalidArgument(
        "vec signature dims " + std::to_string(dims) + " exceeds n/2 = " +
        std::to_string(n / 2) + " for series length " + std::to_string(n) +
        "; a clamped signature would not be comparable to full-dims ones");
  }
  return MakeVecSignature(s, dims);
}

double VecSignatureDistance(const VecSignature& a, const VecSignature& b,
                            StepCounter* counter) {
  if (a.dims() != b.dims()) {
    std::fprintf(
        stderr, "rotind: VecSignatureDistance: %s\n",
        Status::InvalidArgument("vec signature dims mismatch: " +
                                std::to_string(a.dims()) + " vs " +
                                std::to_string(b.dims()))
            .ToString()
            .c_str());
    std::abort();
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    const double d = a.values[i] - b.values[i];
    acc += d * d;
  }
  AddSteps(counter, a.values.size());
  return std::sqrt(acc);
}

StatusOr<double> VecSignatureDistanceChecked(const VecSignature& a,
                                             const VecSignature& b,
                                             StepCounter* counter) {
  if (a.dims() != b.dims()) {
    return Status::InvalidArgument(
        "vec signature dims mismatch: " + std::to_string(a.dims()) + " vs " +
        std::to_string(b.dims()));
  }
  return VecSignatureDistance(a, b, counter);
}

std::uint64_t FftStepCost(std::size_t n) {
  if (n <= 1) return 1;
  const double cost =
      static_cast<double>(n) * std::log2(static_cast<double>(n));
  return static_cast<std::uint64_t>(std::llround(cost));
}

}  // namespace rotind
