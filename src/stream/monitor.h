#ifndef ROTIND_STREAM_MONITOR_H_
#define ROTIND_STREAM_MONITOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/step_counter.h"
#include "src/distance/rotation.h"
#include "src/envelope/candidate_wedge.h"

namespace rotind {

/// Streaming query filtering ("Atomic Wedgie", the paper's reference [40]
/// and one of the flagship adoptions of LB_Keogh wedges): a set of pattern
/// series is monitored against a live stream; every incoming sample slides
/// an n-point window, and the hierarchal wedge filter reports every
/// pattern within a distance threshold of the current window — exactly,
/// at a fraction of the cost of comparing each pattern individually.
///
/// With `rotation_invariant` set, every circular shift of every pattern is
/// enclosed in the wedge hierarchy, so hits are phase-independent (useful
/// when the monitored quantity is periodic, e.g. light curves arriving
/// with unknown phase).
class StreamMonitor {
 public:
  struct Options {
    /// Report a pattern when its (windowed) distance to the current window
    /// is <= threshold.
    double distance_threshold = 1.0;
    /// Sakoe-Chiba band for DTW matching; 0 = Euclidean.
    int dtw_band = 0;
    /// Enclose all rotations of each pattern.
    bool rotation_invariant = false;
    RotationOptions rotation;
    /// Wedge-set size used by the filter (dendrogram cut).
    int wedges = 4;
    /// Z-normalise each window before matching (patterns must be stored
    /// z-normalised too, which the constructor enforces).
    bool znormalize_windows = true;
  };

  /// All patterns must share one length n (the window size).
  StreamMonitor(std::vector<Series> patterns, const Options& options);

  /// One reported match.
  struct Hit {
    std::int64_t end_position;  ///< stream index of the window's last sample
    int pattern;                ///< index into the constructor's patterns
    int shift;                  ///< winning rotation (0 unless invariant)
    double distance;
  };

  /// Feeds one sample; returns the hits for the window ending here (empty
  /// until n samples have arrived).
  std::vector<Hit> Push(double value, StepCounter* counter = nullptr);

  /// Feeds a batch, concatenating hits.
  std::vector<Hit> PushAll(const Series& values,
                           StepCounter* counter = nullptr);

  std::size_t window_size() const { return window_size_; }
  std::int64_t samples_seen() const { return samples_seen_; }

 private:
  struct CandidateOrigin {
    int pattern;
    int shift;
  };

  Options options_;
  std::size_t window_size_ = 0;
  std::unique_ptr<CandidateWedgeSet> wedges_;
  std::vector<int> wedge_set_;
  std::vector<CandidateOrigin> origins_;

  /// Ring buffer of the last n samples.
  Series ring_;
  std::size_t ring_pos_ = 0;
  std::int64_t samples_seen_ = 0;
  /// Scratch: the linearised, optionally z-normalised current window.
  Series window_;
};

}  // namespace rotind

#endif  // ROTIND_STREAM_MONITOR_H_
