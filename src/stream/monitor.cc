#include "src/stream/monitor.h"

#include <cassert>

namespace rotind {

StreamMonitor::StreamMonitor(std::vector<Series> patterns,
                             const Options& options)
    : options_(options) {
  assert(!patterns.empty());
  window_size_ = patterns[0].size();
  ring_.assign(window_size_, 0.0);
  window_.assign(window_size_, 0.0);

  // Expand patterns into the candidate set (plus rotations when the
  // monitor is rotation-invariant), remembering where each came from.
  std::vector<Series> candidates;
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    assert(patterns[p].size() == window_size_);
    Series base = patterns[p];
    if (options_.znormalize_windows) ZNormalize(&base);
    if (options_.rotation_invariant) {
      RotationSet rots(base, options_.rotation);
      for (std::size_t r = 0; r < rots.count(); ++r) {
        candidates.push_back(rots.Materialize(r));
        origins_.push_back({static_cast<int>(p), rots.shift_of(r)});
      }
    } else {
      candidates.push_back(std::move(base));
      origins_.push_back({static_cast<int>(p), 0});
    }
  }

  StepCounter setup;
  wedges_ = std::make_unique<CandidateWedgeSet>(std::move(candidates),
                                                options_.dtw_band, &setup);
  wedge_set_ = wedges_->WedgeSetForK(options_.wedges);
}

std::vector<StreamMonitor::Hit> StreamMonitor::Push(double value,
                                                    StepCounter* counter) {
  ring_[ring_pos_] = value;
  ring_pos_ = (ring_pos_ + 1) % window_size_;
  ++samples_seen_;

  std::vector<Hit> hits;
  if (samples_seen_ < static_cast<std::int64_t>(window_size_)) return hits;

  // Linearise the ring (oldest first) and normalise if requested.
  for (std::size_t i = 0; i < window_size_; ++i) {
    window_[i] = ring_[(ring_pos_ + i) % window_size_];
  }
  if (options_.znormalize_windows) ZNormalize(&window_);

  const auto matches = wedges_->FilterWithinRadius(
      window_.data(), options_.distance_threshold, wedge_set_, counter);
  hits.reserve(matches.size());
  for (const auto& [candidate, distance] : matches) {
    const CandidateOrigin& origin =
        origins_[static_cast<std::size_t>(candidate)];
    hits.push_back(
        Hit{samples_seen_ - 1, origin.pattern, origin.shift, distance});
  }
  return hits;
}

std::vector<StreamMonitor::Hit> StreamMonitor::PushAll(const Series& values,
                                                       StepCounter* counter) {
  std::vector<Hit> all;
  for (double v : values) {
    std::vector<Hit> hits = Push(v, counter);
    all.insert(all.end(), hits.begin(), hits.end());
  }
  return all;
}

}  // namespace rotind
