#include "src/mining/motif.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/fourier/spectral.h"

namespace rotind {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

MotifResult FindMotifPairEuclidean(const std::vector<Series>& db,
                                   const MiningOptions& options) {
  MotifResult result;
  const std::size_t m = db.size();
  const std::size_t n = db[0].size();

  // Rotation-invariant lower bounds for every pair from FFT-magnitude
  // signatures, then exact evaluation in ascending-bound order until the
  // next bound cannot beat the best exact distance.
  std::vector<SpectralSignature> sigs;
  sigs.reserve(m);
  for (const Series& s : db) {
    sigs.push_back(MakeSpectralSignature(s, options.signature_dims));
    AddSetupSteps(&result.counter, FftStepCost(n));
  }

  struct Pair {
    double bound;
    int a;
    int b;
  };
  std::vector<Pair> pairs;
  pairs.reserve(m * (m - 1) / 2);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      pairs.push_back({SignatureDistance(sigs[i], sigs[j], &result.counter),
                       static_cast<int>(i), static_cast<int>(j)});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& x, const Pair& y) { return x.bound < y.bound; });

  double best = kInf;
  for (const Pair& pair : pairs) {
    if (pair.bound >= best) break;  // all remaining bounds are larger
    RotationSet rots(db[static_cast<std::size_t>(pair.a)], options.rotation);
    const RotationMatch match = EarlyAbandonRotationEuclidean(
        rots, db[static_cast<std::size_t>(pair.b)].data(), best,
        &result.counter);
    if (!match.abandoned && match.distance < best) {
      best = match.distance;
      result.first = pair.a;
      result.second = pair.b;
      result.distance = match.distance;
      result.shift = rots.shift_of(match.rotation_index);
      result.mirrored = rots.mirrored_of(match.rotation_index);
    }
  }
  return result;
}

MotifResult FindMotifPairDtw(const std::vector<Series>& db,
                             const MiningOptions& options) {
  MotifResult result;
  const std::size_t m = db.size();

  WedgeSearchOptions wopts;
  wopts.kind = DistanceKind::kDtw;
  wopts.band = options.band;
  wopts.rotation = options.rotation;

  double best = kInf;
  for (std::size_t i = 0; i + 1 < m; ++i) {
    WedgeSearcher searcher(db[i], wopts, &result.counter);
    for (std::size_t j = i + 1; j < m; ++j) {
      const HMergeResult r =
          searcher.Distance(db[j].data(), best, &result.counter);
      if (!r.abandoned && r.distance < best) {
        best = r.distance;
        result.first = static_cast<int>(i);
        result.second = static_cast<int>(j);
        result.distance = r.distance;
        const RotationSet& rots = searcher.tree().rotations();
        result.shift = rots.shift_of(r.rotation_index);
        result.mirrored = rots.mirrored_of(r.rotation_index);
        searcher.AdaptK(db[j].data(), best, &result.counter);
      }
    }
  }
  return result;
}

}  // namespace

MotifResult FindMotifPair(const std::vector<Series>& db,
                          const MiningOptions& options) {
  assert(db.size() >= 2);
  return options.kind == DistanceKind::kEuclidean
             ? FindMotifPairEuclidean(db, options)
             : FindMotifPairDtw(db, options);
}

DiscordResult FindDiscord(const std::vector<Series>& db,
                          const MiningOptions& options) {
  assert(db.size() >= 2);
  DiscordResult result;
  const std::size_t m = db.size();

  WedgeSearchOptions wopts;
  wopts.kind = options.kind;
  wopts.band = options.band;
  wopts.rotation = options.rotation;

  double best_discord = -1.0;
  for (std::size_t i = 0; i < m; ++i) {
    WedgeSearcher searcher(db[i], wopts, &result.counter);
    double nn = kInf;
    int nn_index = -1;
    bool alive = true;
    for (std::size_t j = 0; j < m && alive; ++j) {
      if (j == i) continue;
      const HMergeResult r =
          searcher.Distance(db[j].data(), nn, &result.counter);
      if (!r.abandoned && r.distance < nn) {
        nn = r.distance;
        nn_index = static_cast<int>(j);
        // Classic discord pruning: once some neighbour is closer than the
        // best discord distance so far, candidate i cannot be the discord.
        if (nn <= best_discord) alive = false;
      }
    }
    if (alive && nn > best_discord && nn_index >= 0) {
      best_discord = nn;
      result.index = static_cast<int>(i);
      result.distance = nn;
      result.nearest_neighbor = nn_index;
    }
  }
  return result;
}

std::vector<double> PairwiseDistanceMatrix(const std::vector<Series>& db,
                                           const MiningOptions& options,
                                           StepCounter* counter) {
  const std::size_t m = db.size();
  std::vector<double> condensed(m * (m - 1) / 2, 0.0);

  WedgeSearchOptions wopts;
  wopts.kind = options.kind;
  wopts.band = options.band;
  wopts.rotation = options.rotation;

  std::size_t pos = 0;
  for (std::size_t i = 0; i + 1 < m; ++i) {
    WedgeSearcher searcher(db[i], wopts, counter);
    for (std::size_t j = i + 1; j < m; ++j) {
      const HMergeResult r = searcher.Distance(db[j].data(), kInf, counter);
      condensed[pos++] = r.distance;
    }
  }
  return condensed;
}

}  // namespace rotind
