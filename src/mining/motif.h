#ifndef ROTIND_MINING_MOTIF_H_
#define ROTIND_MINING_MOTIF_H_

#include <cstddef>
#include <vector>

#include "src/core/series.h"
#include "src/core/step_counter.h"
#include "src/distance/rotation.h"
#include "src/search/hmerge.h"

namespace rotind {

/// Shape data mining on top of the rotation-invariant machinery — the
/// applications the paper motivates: motif discovery (Section 6 future
/// work: "cluster, classify and discover motifs in ... anthropological
/// datasets") and discord/outlier discovery (Section 2.4 and ref [29]:
/// "researchers discover unusual light curves ... by finding the examples
/// with the least similarity to other objects"). Both are EXACT.

/// The closest pair of objects under the rotation-invariant distance.
struct MotifResult {
  int first = -1;
  int second = -1;
  double distance = 0.0;
  /// Rotation aligning `first` onto `second`.
  int shift = 0;
  bool mirrored = false;
  StepCounter counter;
};

struct MiningOptions {
  DistanceKind kind = DistanceKind::kEuclidean;
  int band = 5;                  ///< Sakoe-Chiba band for kDtw
  RotationOptions rotation;
  /// Spectral signature dimensionality for the Euclidean pair-ordering
  /// bound (ignored for DTW).
  std::size_t signature_dims = 16;
};

/// Finds the motif pair. Euclidean mode orders candidate pairs by the
/// rotation-invariant FFT-magnitude lower bound and stops as soon as the
/// bound of the next pair reaches the best exact distance (no false
/// dismissals: the bound never overestimates). DTW mode runs one wedge
/// searcher per object with global best-so-far propagation.
MotifResult FindMotifPair(const std::vector<Series>& db,
                          const MiningOptions& options = {});

/// The discord: the object whose rotation-invariant nearest-neighbour
/// distance is LARGEST (the "most unusual" object, ref [29]).
struct DiscordResult {
  int index = -1;
  /// Its nearest-neighbour distance.
  double distance = 0.0;
  int nearest_neighbor = -1;
  StepCounter counter;
};

/// Exact discord discovery with best-so-far pruning: a candidate is
/// abandoned as soon as any neighbour lands closer than the best discord
/// distance found so far (the classic discord-search optimisation).
DiscordResult FindDiscord(const std::vector<Series>& db,
                          const MiningOptions& options = {});

/// All-pairs rotation-invariant distance matrix (condensed, row-major
/// upper triangle) — building block for the clustering sanity checks and
/// external tools. O(m^2) exact distances; wedge-accelerated per row.
std::vector<double> PairwiseDistanceMatrix(const std::vector<Series>& db,
                                           const MiningOptions& options = {},
                                           StepCounter* counter = nullptr);

}  // namespace rotind

#endif  // ROTIND_MINING_MOTIF_H_
