#include "src/datasets/synthetic.h"

#include <algorithm>
#include <cmath>

#include "src/core/random.h"
#include "src/lightcurve/lightcurve.h"
#include "src/shape/generate.h"

namespace rotind {
namespace {

Series FinishInstance(Series s, Rng* rng, double warp_strength,
                      double noise_sigma) {
  if (warp_strength > 0.0) s = SmoothTimeWarp(s, rng, warp_strength);
  s = AddNoise(s, rng, noise_sigma);
  s = RotateLeft(s, static_cast<long>(rng->NextBounded(s.size())));
  ZNormalize(&s);
  return s;
}

}  // namespace

Dataset MakeSyntheticShapeDataset(const SyntheticDatasetSpec& spec) {
  Dataset ds;
  Rng rng(spec.seed);
  for (int label = 0; label < spec.num_classes; ++label) {
    const RadialShapeSpec prototype =
        RandomShapeSpec(&rng, spec.harmonics, spec.amp_scale, spec.amp_decay);
    for (int i = 0; i < spec.instances_per_class; ++i) {
      const RadialShapeSpec variant = PerturbSpec(
          prototype, &rng, spec.amplitude_jitter, spec.phase_jitter);
      Series s = RadialProfile(variant, spec.length);
      ds.items.push_back(
          FinishInstance(std::move(s), &rng, spec.warp_strength,
                         spec.noise_sigma));
      ds.labels.push_back(label);
      ds.names.push_back(spec.name + "/c" + std::to_string(label) + "-" +
                         std::to_string(i));
    }
  }
  return ds;
}

std::vector<SyntheticDatasetSpec> Table8Specs(double instance_scale) {
  // (name, classes, paper instance count, warp, noise, jitter): warp drives
  // the ED-vs-DTW gap; noise+jitter drive the absolute error level.
  struct Row {
    const char* name;
    int classes;
    int paper_instances;
    double warp;
    double noise;
    double amp_jitter;
    double phase_jitter;
  };
  // Calibrated against the paper's reported error levels. Amplitude jitter
  // is the DTW-neutral difficulty knob (structural intra-class variation
  // that warping cannot absorb — used for the rows where the paper reports
  // ED ~ DTW); warp sets the ED-vs-DTW gap (large for the leaf rows);
  // per-point noise is kept small because DTW "sees through" i.i.d. noise.
  const Row rows[] = {
      //                 cls  m     warp   noise  ajit   pjit
      {"Face",            16, 2240, 0.008, 0.020, 0.020, 0.03},
      {"SwedishLeaves",   15, 1125, 0.012, 0.020, 0.032, 0.04},
      {"Chicken",          5,  446, 0.000, 0.030, 0.060, 0.05},
      {"MixedBag",         9,  160, 0.000, 0.020, 0.028, 0.03},
      {"OSULeaves",        6,  442, 0.040, 0.080, 0.025, 0.05},
      {"Diatoms",         37,  781, 0.000, 0.020, 0.040, 0.04},
      {"Aircraft",         7,  210, 0.012, 0.015, 0.010, 0.02},
      {"Fish",             7,  350, 0.012, 0.020, 0.035, 0.04},
      {"LightCurve",       3,  954, 0.000, 0.000, 0.000, 0.00},
      {"Yoga",             2, 3300, 0.000, 0.030, 0.100, 0.08},
  };
  std::vector<SyntheticDatasetSpec> specs;
  std::uint64_t seed = 20060901;  // stable per-row seeds
  for (const Row& row : rows) {
    SyntheticDatasetSpec spec;
    spec.name = row.name;
    spec.num_classes = row.classes;
    const int per_class = std::max(
        4, static_cast<int>(std::lround(instance_scale * row.paper_instances /
                                        row.classes)));
    spec.instances_per_class = per_class;
    spec.length = 128;
    spec.harmonics = 8;
    spec.warp_strength = row.warp;
    spec.noise_sigma = row.noise;
    spec.amplitude_jitter = row.amp_jitter;
    spec.phase_jitter = row.phase_jitter;
    spec.seed = seed++;
    specs.push_back(spec);
  }
  return specs;
}

Dataset MakeTable8Dataset(const SyntheticDatasetSpec& spec) {
  if (spec.name == "LightCurve") {
    LightCurveOptions opts;
    opts.noise_sigma = 0.22;
    opts.shape_jitter = 0.42;
    return MakeLightCurveDataset(
        static_cast<std::size_t>(spec.instances_per_class), spec.length,
        spec.seed, opts);
  }
  return MakeSyntheticShapeDataset(spec);
}

std::vector<Series> MakeProjectilePointsDatabase(std::size_t m, std::size_t n,
                                                 std::uint64_t seed) {
  // Real projectile-point collections contain thousands of specimens of a
  // few dozen types (Edwards, Langtry, Golondrina, ... — paper Figure 15),
  // so nearest neighbours are close and pruning thresholds get tight. Model
  // that: a fixed pool of type templates, each instance a jittered copy.
  constexpr std::size_t kTypes = 60;
  std::vector<Series> db;
  db.reserve(m);
  Rng rng(seed);
  std::vector<RadialShapeSpec> types;
  types.reserve(kTypes);
  for (std::size_t t = 0; t < kTypes; ++t) {
    types.push_back(ProjectilePointSpec(&rng));
  }
  for (std::size_t i = 0; i < m; ++i) {
    const RadialShapeSpec& type = types[rng.NextBounded(kTypes)];
    const RadialShapeSpec variant = PerturbSpec(type, &rng, 0.015, 0.03);
    Series s = RadialProfile(variant, n);
    s = AddNoise(s, &rng, 0.02);
    s = RotateLeft(s, static_cast<long>(rng.NextBounded(n)));
    ZNormalize(&s);
    db.push_back(std::move(s));
  }
  return db;
}

std::vector<Series> MakeHeterogeneousDatabase(std::size_t m, std::size_t n,
                                              std::uint64_t seed) {
  std::vector<Series> db;
  db.reserve(m);
  Rng rng(seed);
  const VariableStarClass star_classes[] = {
      VariableStarClass::kEclipsingBinary, VariableStarClass::kRrLyrae,
      VariableStarClass::kCepheid};
  for (std::size_t i = 0; i < m; ++i) {
    Series s;
    switch (i % 5) {
      case 0:
        s = RadialProfile(ProjectilePointSpec(&rng), n);
        break;
      case 1:
        s = RadialProfile(
            SkullSpec(&rng, rng.Uniform(0.15, 0.3), rng.Uniform(0.2, 0.4)),
            n);
        break;
      case 2:
        s = RadialProfile(ButterflySpec(&rng, rng.Uniform(0.0, 0.1)), n);
        break;
      case 3:
        s = RadialProfile(RandomShapeSpec(&rng, 10, 0.3, 1.2), n);
        break;
      default: {
        LightCurveOptions opts;
        opts.noise_sigma = 0.0;  // noise added uniformly below
        opts.random_phase = false;
        s = GenerateLightCurve(star_classes[(i / 5) % 3], n, &rng, opts);
        break;
      }
    }
    s = AddNoise(s, &rng, 0.05);
    s = RotateLeft(s, static_cast<long>(rng.NextBounded(n)));
    ZNormalize(&s);
    db.push_back(std::move(s));
  }
  return db;
}

std::vector<Series> MakeLightCurveDatabase(std::size_t m, std::size_t n,
                                           std::uint64_t seed) {
  const std::size_t per_class = (m + 2) / 3;
  // Survey databases contain many near-identical folded curves per class
  // (same physics, modest photometric noise); keep noise/jitter low so
  // nearest neighbours are close, as in the Harvard TSC data.
  LightCurveOptions options;
  options.noise_sigma = 0.02;
  options.shape_jitter = 0.04;
  Dataset ds = MakeLightCurveDataset(per_class, n, seed, options);
  ds.items.resize(std::min(ds.items.size(), m));
  return std::move(ds.items);
}

}  // namespace rotind
