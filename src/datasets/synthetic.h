#ifndef ROTIND_DATASETS_SYNTHETIC_H_
#define ROTIND_DATASETS_SYNTHETIC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/series.h"

namespace rotind {

/// Recipe for one synthetic class-structured shape dataset: per class, a
/// random radius-Fourier template; per instance, template jitter + local
/// time warping + noise + a random rotation (circular shift). See
/// DESIGN.md's substitution table — these stand in for the paper's image
/// datasets, preserving the knobs that drive every reported effect.
struct SyntheticDatasetSpec {
  std::string name;
  int num_classes = 4;
  int instances_per_class = 30;
  std::size_t length = 128;
  std::size_t harmonics = 8;
  double amp_scale = 0.3;       ///< template amplitude scale
  double amp_decay = 1.3;       ///< harmonic roll-off (smoothness)
  double amplitude_jitter = 0.02;  ///< intra-class amplitude jitter
  double phase_jitter = 0.05;      ///< intra-class phase jitter
  double warp_strength = 0.0;   ///< local warping — the DTW-vs-ED knob
  double noise_sigma = 0.05;
  std::uint64_t seed = 1;
};

/// Generates the dataset. Every instance is z-normalised and randomly
/// rotated; labels are 0..num_classes-1.
Dataset MakeSyntheticShapeDataset(const SyntheticDatasetSpec& spec);

/// Specs standing in for the paper's Table 8 datasets (Face, Swedish
/// Leaves, Chicken, MixedBag, OSU Leaves, Diatoms, Aircraft, Fish,
/// Light-Curve, Yoga). Class counts match the paper; instance counts are
/// the paper's scaled by `instance_scale` (1.0 = paper size) and floored at
/// 4 per class. Warp/noise parameters are calibrated so the ED-vs-DTW
/// relationship has the paper's shape (DTW helps most on the leaf-like and
/// light-curve rows, is neutral elsewhere).
std::vector<SyntheticDatasetSpec> Table8Specs(double instance_scale);

/// Builds the dataset for one Table8Specs row. Most rows go through
/// MakeSyntheticShapeDataset; the "LightCurve" row dispatches to the
/// light-curve generator (3 star classes), matching the paper's use of real
/// astronomical data for that row.
Dataset MakeTable8Dataset(const SyntheticDatasetSpec& spec);

/// The homogeneous benchmark database: m projectile-point-like shapes,
/// paper length n = 251 (Figures 19, 20, 24).
std::vector<Series> MakeProjectilePointsDatabase(std::size_t m, std::size_t n,
                                                 std::uint64_t seed);

/// The heterogeneous benchmark database: a mixture of all shape families
/// plus light curves, paper length n = 1024 (Figures 21, 24).
std::vector<Series> MakeHeterogeneousDatabase(std::size_t m, std::size_t n,
                                              std::uint64_t seed);

/// Unlabelled light-curve database for Figures 22/23 (wraps
/// MakeLightCurveDataset).
std::vector<Series> MakeLightCurveDatabase(std::size_t m, std::size_t n,
                                           std::uint64_t seed);

}  // namespace rotind

#endif  // ROTIND_DATASETS_SYNTHETIC_H_
