#include "src/index/candidate_scan.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/fourier/spectral.h"

namespace rotind {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

RotationInvariantIndex::RotationInvariantIndex(const std::vector<Series>& db,
                                               const Options& options)
    : options_(options), disk_(options.page_size_bytes) {
  disk_.StoreAll(db);
  if (options_.kind == DistanceKind::kEuclidean) {
    spectral_signatures_.reserve(db.size());
    for (const Series& s : db) {
      spectral_signatures_.push_back(
          MakeSpectralSignature(s, options_.dims).values);
    }
    vptree_ = std::make_unique<VpTree>(spectral_signatures_, options_.seed);
  } else {
    paa_signatures_.reserve(db.size());
    for (const Series& s : db) {
      paa_signatures_.push_back(PaaTransform(s, options_.dims));
    }
  }
}

RotationInvariantIndex::Result RotationInvariantIndex::NearestNeighbor(
    const Series& query) {
  disk_.ResetCounters();
  return options_.kind == DistanceKind::kEuclidean
             ? NearestNeighborEuclidean(query)
             : NearestNeighborDtw(query);
}

std::vector<RotationInvariantIndex::KnnEntry>
RotationInvariantIndex::KNearestNeighbors(const Series& query, int k,
                                          Result* stats) {
  disk_.ResetCounters();
  Result local;
  Result* out = stats != nullptr ? stats : &local;
  *out = Result{};

  WedgeSearchOptions wopts;
  wopts.kind = options_.kind;
  wopts.band = options_.band;
  wopts.rotation = options_.rotation;
  WedgeSearcher searcher(query, wopts, &out->counter);

  std::vector<KnnEntry> neighbors;
  if (options_.kind == DistanceKind::kEuclidean) {
    const SpectralSignature qsig =
        MakeSpectralSignature(query, options_.dims);
    AddSetupSteps(&out->counter, FftStepCost(query.size()));
    auto refine = [&](int id, double threshold) -> double {
      const Series& c = disk_.Fetch(id);
      const HMergeResult r =
          searcher.Distance(c.data(), threshold, &out->counter);
      return r.abandoned ? kInf : r.distance;
    };
    const VpTree::KnnResult knn =
        vptree_->KNearestNeighbors(qsig.values, k, refine, &out->counter);
    for (const auto& [id, distance] : knn.neighbors) {
      neighbors.push_back({id, distance});
    }
  } else {
    // DTW path: LB-ordered scan with the k-th best as the threshold.
    const WedgeTree& tree = searcher.tree();
    const std::vector<int> wedge_ids =
        tree.WedgeSetForK(std::max(1, options_.lower_bound_wedges));
    std::vector<PaaEnvelope> envelopes;
    for (int id : wedge_ids) {
      Envelope env;
      env.upper.assign(tree.Upper(id), tree.Upper(id) + tree.length());
      env.lower.assign(tree.Lower(id), tree.Lower(id) + tree.length());
      envelopes.push_back(PaaReduceEnvelope(env, options_.dims));
    }
    const std::size_t m = paa_signatures_.size();
    std::vector<std::pair<double, int>> order(m);
    for (std::size_t i = 0; i < m; ++i) {
      double lb = kInf;
      for (const PaaEnvelope& env : envelopes) {
        lb = std::min(lb, LbPaa(paa_signatures_[i], env, &out->counter));
      }
      order[i] = {lb, static_cast<int>(i)};
    }
    std::sort(order.begin(), order.end());

    // Max-heap of the best k by true distance.
    std::vector<std::pair<double, int>> heap;
    auto threshold = [&]() {
      return static_cast<int>(heap.size()) < k ? kInf : heap.front().first;
    };
    for (const auto& [lb, id] : order) {
      if (lb >= threshold()) break;
      const Series& c = disk_.Fetch(id);
      const HMergeResult r =
          searcher.Distance(c.data(), threshold(), &out->counter);
      if (r.abandoned || r.distance >= threshold()) continue;
      heap.emplace_back(r.distance, id);
      std::push_heap(heap.begin(), heap.end());
      if (static_cast<int>(heap.size()) > k) {
        std::pop_heap(heap.begin(), heap.end());
        heap.pop_back();
      }
    }
    std::sort(heap.begin(), heap.end());
    for (const auto& [distance, id] : heap) neighbors.push_back({id, distance});
  }

  out->object_fetches = disk_.object_fetches();
  out->page_reads = disk_.page_reads();
  out->fetch_fraction = disk_.FetchFraction();
  if (!neighbors.empty()) {
    out->best_index = neighbors[0].index;
    out->best_distance = neighbors[0].distance;
  }
  return neighbors;
}

RotationInvariantIndex::Result
RotationInvariantIndex::NearestNeighborEuclidean(const Series& query) {
  Result result;
  WedgeSearchOptions wopts;
  wopts.kind = DistanceKind::kEuclidean;
  wopts.rotation = options_.rotation;
  WedgeSearcher searcher(query, wopts, &result.counter);

  const SpectralSignature qsig = MakeSpectralSignature(query, options_.dims);
  AddSetupSteps(&result.counter, FftStepCost(query.size()));

  auto refine = [&](int id, double threshold) -> double {
    const Series& c = disk_.Fetch(id);
    const HMergeResult r =
        searcher.Distance(c.data(), threshold, &result.counter);
    if (r.abandoned) return kInf;
    searcher.AdaptK(c.data(), r.distance, &result.counter);
    return r.distance;
  };

  const VpTree::Result vp =
      vptree_->NearestNeighbor(qsig.values, refine, &result.counter);
  result.best_index = vp.best_id;
  result.best_distance = vp.best_distance;
  result.object_fetches = disk_.object_fetches();
  result.page_reads = disk_.page_reads();
  result.fetch_fraction = disk_.FetchFraction();
  return result;
}

RotationInvariantIndex::Result RotationInvariantIndex::NearestNeighborDtw(
    const Series& query) {
  Result result;
  WedgeSearchOptions wopts;
  wopts.kind = DistanceKind::kDtw;
  wopts.band = options_.band;
  wopts.rotation = options_.rotation;
  WedgeSearcher searcher(query, wopts, &result.counter);

  // PAA-reduce the band-expanded envelopes of a small wedge set over the
  // query's rotations. LB(object) = min over wedges of LB_PAA, which
  // lower-bounds the rotation-invariant DTW distance (refs [16][37]).
  const WedgeTree& tree = searcher.tree();
  const std::vector<int> wedge_ids = tree.WedgeSetForK(
      std::max(1, options_.lower_bound_wedges));
  std::vector<PaaEnvelope> envelopes;
  envelopes.reserve(wedge_ids.size());
  for (int id : wedge_ids) {
    Envelope env;
    env.upper.assign(tree.Upper(id), tree.Upper(id) + tree.length());
    env.lower.assign(tree.Lower(id), tree.Lower(id) + tree.length());
    envelopes.push_back(PaaReduceEnvelope(env, options_.dims));
  }

  // Lower bounds for every object, visited in ascending order.
  const std::size_t m = paa_signatures_.size();
  std::vector<std::pair<double, int>> order(m);
  for (std::size_t i = 0; i < m; ++i) {
    double lb = kInf;
    for (const PaaEnvelope& env : envelopes) {
      lb = std::min(lb, LbPaa(paa_signatures_[i], env, &result.counter));
    }
    order[i] = {lb, static_cast<int>(i)};
  }
  std::sort(order.begin(), order.end());

  double best = kInf;
  for (const auto& [lb, id] : order) {
    if (lb >= best) break;  // every further bound is at least as large
    const Series& c = disk_.Fetch(id);
    const HMergeResult r = searcher.Distance(c.data(), best, &result.counter);
    if (!r.abandoned && r.distance < best) {
      best = r.distance;
      result.best_index = id;
      searcher.AdaptK(c.data(), best, &result.counter);
    }
  }
  result.best_distance = best;
  result.object_fetches = disk_.object_fetches();
  result.page_reads = disk_.page_reads();
  result.fetch_fraction = disk_.FetchFraction();
  return result;
}

}  // namespace rotind
