#include "src/index/candidate_scan.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>

#include "src/fourier/spectral.h"

namespace rotind {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Attributes to `outer` the remainder of a shared-counter region after
/// subtracting whatever nested StageScopes attributed to the `inner` stages
/// while the region ran. This is how the signature-space stage is carved
/// out of a VP-tree search whose refine callback does kDiskFetch/kRefine
/// work against the same StepCounter: outer = total delta - inner deltas,
/// so the per-stage sum still equals the counter's totals exactly.
class RemainderScope {
 public:
  RemainderScope(obs::StageStats* outer, const StepCounter* counter,
                 const obs::StageStats* inner_a, const obs::StageStats* inner_b)
      : outer_(outer), counter_(counter), inner_a_(inner_a), inner_b_(inner_b) {
    if (outer_ == nullptr) return;
    outer_->used = true;
    steps0_ = counter_->steps;
    setup0_ = counter_->setup_steps;
    abandons0_ = counter_->early_abandons;
    inner0_ = InnerSnapshot();
    t0_ = std::chrono::steady_clock::now();
  }

  ~RemainderScope() {
    if (outer_ == nullptr) return;
    const Snapshot inner = InnerSnapshot();
    outer_->steps +=
        (counter_->steps - steps0_) - (inner.steps - inner0_.steps);
    outer_->setup_steps +=
        (counter_->setup_steps - setup0_) - (inner.setup - inner0_.setup);
    outer_->early_abandons += (counter_->early_abandons - abandons0_) -
                              (inner.abandons - inner0_.abandons);
    const std::uint64_t wall = obs::NanosSince(t0_);
    const std::uint64_t inner_wall = inner.wall - inner0_.wall;
    outer_->wall_nanos += wall > inner_wall ? wall - inner_wall : 0;
  }

  RemainderScope(const RemainderScope&) = delete;
  RemainderScope& operator=(const RemainderScope&) = delete;

 private:
  struct Snapshot {
    std::uint64_t steps = 0;
    std::uint64_t setup = 0;
    std::uint64_t abandons = 0;
    std::uint64_t wall = 0;
  };

  Snapshot InnerSnapshot() const {
    Snapshot s;
    for (const obs::StageStats* in : {inner_a_, inner_b_}) {
      if (in == nullptr) continue;
      s.steps += in->steps;
      s.setup += in->setup_steps;
      s.abandons += in->early_abandons;
      s.wall += in->wall_nanos;
    }
    return s;
  }

  obs::StageStats* outer_;
  const StepCounter* counter_;
  const obs::StageStats* inner_a_;
  const obs::StageStats* inner_b_;
  std::uint64_t steps0_ = 0;
  std::uint64_t setup0_ = 0;
  std::uint64_t abandons0_ = 0;
  Snapshot inner0_;
  std::chrono::steady_clock::time_point t0_;
};

/// Folds a query's accumulated backend I/O into the observability layer:
/// object/page totals into IndexStats, pool activity into the kDiskFetch
/// stage (so --metrics-json attributes real I/O per query stage).
void FoldFetchIo(const storage::FetchStats& io, obs::StageStats* fetch_stats,
                 obs::QueryMetrics* metrics) {
  if (metrics != nullptr) {
    metrics->index.object_fetches += io.object_fetches;
    metrics->index.page_reads += io.page_reads;
  }
  if (fetch_stats != nullptr) {
    fetch_stats->pool_hits += io.pool_hits;
    fetch_stats->pages_read += io.page_reads;
    fetch_stats->pool_evictions += io.pool_evictions;
    fetch_stats->io_bytes += io.bytes_read;
  }
}

}  // namespace

RotationInvariantIndex::RotationInvariantIndex(const std::vector<Series>& db,
                                               const Options& options)
    : options_(options),
      backend_(std::make_unique<storage::SimulatedBackend>(
          db, options.page_size_bytes)) {
  if (options_.kind == DistanceKind::kEuclidean) {
    spectral_signatures_.reserve(db.size());
    for (const Series& s : db) {
      spectral_signatures_.push_back(
          MakeSpectralSignature(s, options_.dims).values);
    }
    vptree_ = std::make_unique<VpTree>(spectral_signatures_, options_.seed);
  } else {
    paa_signatures_.reserve(db.size());
    for (const Series& s : db) {
      paa_signatures_.push_back(PaaTransform(s, options_.dims));
    }
  }
}

StatusOr<std::unique_ptr<RotationInvariantIndex>>
RotationInvariantIndex::Create(const std::vector<Series>& db,
                               const Options& options) {
  if (db.empty()) {
    return Status::InvalidArgument("database is empty");
  }
  const std::size_t n = db[0].size();
  for (std::size_t i = 1; i < db.size(); ++i) {
    if (db[i].size() != n) {
      return Status::InvalidArgument(
          "database is ragged: object " + std::to_string(i) + " has length " +
          std::to_string(db[i].size()) + ", expected " + std::to_string(n));
    }
  }
  if (n < 2) {
    return Status::InvalidArgument("objects must have length >= 2, got " +
                                   std::to_string(n));
  }
  if (options.dims < 1) {
    return Status::InvalidArgument("signature dims must be >= 1");
  }
  if (options.kind == DistanceKind::kEuclidean && options.dims > n / 2) {
    return Status::InvalidArgument(
        "signature dims " + std::to_string(options.dims) +
        " exceeds the " + std::to_string(n / 2) +
        " spectral coefficients of length-" + std::to_string(n) +
        " objects (the unchecked constructor would silently clamp)");
  }
  return std::make_unique<RotationInvariantIndex>(db, options);
}

StatusOr<std::unique_ptr<RotationInvariantIndex>>
RotationInvariantIndex::OpenFromFile(const std::string& path,
                                     const Options& options,
                                     std::size_t pool_pages,
                                     storage::EvictionPolicy eviction) {
  StatusOr<std::unique_ptr<storage::FileBackend>> backend =
      storage::FileBackend::Open(path, pool_pages, eviction);
  if (!backend.ok()) return backend.status();
  const storage::IndexFile& file = (*backend)->file();
  const std::size_t count = file.num_objects();

  Options opts = options;
  if (opts.kind == DistanceKind::kEuclidean) {
    if (file.sig_dims() == 0) {
      return Status::InvalidArgument(
          path + " was built without FFT signatures; the Euclidean path "
                 "needs them (rebuild with --dims > 0)");
    }
    opts.dims = file.sig_dims();
  } else {
    if (file.paa_dims() == 0) {
      return Status::InvalidArgument(
          path + " was built without PAA summaries; the DTW path needs "
                 "them (rebuild with --paa-dims > 0)");
    }
    opts.dims = file.paa_dims();
  }

  // The signatures were computed at build time and live in the file's
  // resident section — reusing them (instead of re-deriving from the
  // series) is the whole point: opening the index reads no data pages.
  std::unique_ptr<RotationInvariantIndex> index(
      std::make_unique<RotationInvariantIndex>(OpenKey{}, opts));
  if (opts.kind == DistanceKind::kEuclidean) {
    const std::vector<double>& flat = file.spectral_signatures();
    index->spectral_signatures_.assign(count,
                                       std::vector<double>(opts.dims));
    for (std::size_t i = 0; i < count; ++i) {
      std::copy(flat.begin() + static_cast<std::ptrdiff_t>(i * opts.dims),
                flat.begin() + static_cast<std::ptrdiff_t>((i + 1) * opts.dims),
                index->spectral_signatures_[i].begin());
    }
    index->vptree_ =
        std::make_unique<VpTree>(index->spectral_signatures_, opts.seed);
  } else {
    const std::vector<double>& flat = file.paa_summaries();
    index->paa_signatures_.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      index->paa_signatures_[i].values.assign(
          flat.begin() + static_cast<std::ptrdiff_t>(i * opts.dims),
          flat.begin() + static_cast<std::ptrdiff_t>((i + 1) * opts.dims));
    }
  }
  index->backend_ = *std::move(backend);
  return index;
}

RotationInvariantIndex::Result RotationInvariantIndex::NearestNeighbor(
    const Series& query, obs::QueryMetrics* metrics) {
  const obs::QueryLatencyScope latency(metrics);
  return options_.kind == DistanceKind::kEuclidean
             ? NearestNeighborEuclidean(query, metrics)
             : NearestNeighborDtw(query, metrics);
}

std::vector<RotationInvariantIndex::KnnEntry>
RotationInvariantIndex::KNearestNeighbors(const Series& query, int k,
                                          Result* stats,
                                          obs::QueryMetrics* metrics) {
  const obs::QueryLatencyScope latency(metrics);
  Result local;
  Result* out = stats != nullptr ? stats : &local;
  *out = Result{};

  obs::StageStats* sig_stats =
      metrics != nullptr ? &metrics->stage(obs::StageId::kSignatureFilter)
                         : nullptr;
  obs::StageStats* fetch_stats =
      metrics != nullptr ? &metrics->stage(obs::StageId::kDiskFetch) : nullptr;
  obs::StageStats* refine_stats =
      metrics != nullptr ? &metrics->stage(obs::StageId::kRefine) : nullptr;
  obs::WedgeStats* wedge_stats =
      metrics != nullptr ? &metrics->wedge : nullptr;
  storage::FetchStats fetch_io;

  WedgeSearchOptions wopts;
  wopts.kind = options_.kind;
  wopts.band = options_.band;
  wopts.rotation = options_.rotation;
  // The wedge tree is refinement machinery: its construction is kRefine
  // setup, exactly as the engine charges terminal setup to the terminal.
  std::optional<WedgeSearcher> searcher;
  {
    const obs::StageScope scope(refine_stats, &out->counter);
    searcher.emplace(query, wopts, &out->counter);
  }

  auto refine = [&](int id, double threshold) -> double {
    storage::SeriesHandle c;
    {
      const obs::StageScope scope(fetch_stats, &out->counter);
      c = backend_->Fetch(static_cast<std::size_t>(id), &fetch_io);
    }
    if (fetch_stats != nullptr) {
      ++fetch_stats->candidates_entered;
      ++fetch_stats->candidates_survived;
    }
    const obs::StageScope scope(refine_stats, &out->counter);
    const HMergeResult r =
        searcher->Distance(c.data(), threshold, &out->counter, wedge_stats);
    if (refine_stats != nullptr) {
      ++refine_stats->candidates_entered;
      ++(r.abandoned ? refine_stats->candidates_pruned
                     : refine_stats->candidates_survived);
    }
    return r.abandoned ? kInf : r.distance;
  };

  const std::size_t m = backend_->size();
  std::vector<KnnEntry> neighbors;
  if (options_.kind == DistanceKind::kEuclidean) {
    SpectralSignature qsig;
    {
      // The query's signature transform is signature-space setup.
      const obs::StageScope scope(sig_stats, &out->counter);
      qsig = MakeSpectralSignature(query, options_.dims);
      AddSetupSteps(&out->counter, FftStepCost(query.size()));
    }
    VpTree::KnnResult knn;
    {
      const RemainderScope scope(sig_stats, &out->counter, fetch_stats,
                                 refine_stats);
      knn = vptree_->KNearestNeighbors(qsig.values, k, refine, &out->counter);
    }
    if (sig_stats != nullptr) {
      sig_stats->candidates_entered += m;
      sig_stats->candidates_survived += knn.refine_calls;
      sig_stats->candidates_pruned += m - knn.refine_calls;
    }
    if (metrics != nullptr) {
      metrics->index.signature_evals += knn.metric_evals;
      metrics->index.candidates_pruned += m - knn.refine_calls;
      metrics->index.refinements += knn.refine_calls;
    }
    for (const auto& [id, distance] : knn.neighbors) {
      neighbors.push_back({id, distance});
    }
  } else {
    // DTW path: LB-ordered scan with the k-th best as the threshold.
    const WedgeTree& tree = searcher->tree();
    const std::size_t num_objects = paa_signatures_.size();
    std::vector<std::pair<double, int>> order(num_objects);
    std::size_t lb_evals = 0;
    {
      const obs::StageScope scope(sig_stats, &out->counter);
      const std::vector<int> wedge_ids =
          tree.WedgeSetForK(std::max(1, options_.lower_bound_wedges));
      std::vector<PaaEnvelope> envelopes;
      for (int id : wedge_ids) {
        Envelope env;
        env.upper.assign(tree.Upper(id), tree.Upper(id) + tree.length());
        env.lower.assign(tree.Lower(id), tree.Lower(id) + tree.length());
        envelopes.push_back(PaaReduceEnvelope(env, options_.dims));
      }
      for (std::size_t i = 0; i < num_objects; ++i) {
        double lb = kInf;
        for (const PaaEnvelope& env : envelopes) {
          lb = std::min(lb, LbPaa(paa_signatures_[i], env, &out->counter));
        }
        order[i] = {lb, static_cast<int>(i)};
      }
      std::sort(order.begin(), order.end());
      lb_evals = num_objects * envelopes.size();
    }

    // Max-heap of the best k by true distance.
    std::vector<std::pair<double, int>> heap;
    auto threshold = [&]() {
      return static_cast<int>(heap.size()) < k ? kInf : heap.front().first;
    };
    std::uint64_t refined = 0;
    for (const auto& [lb, id] : order) {
      if (lb >= threshold()) break;
      ++refined;
      const double d = refine(id, threshold());
      if (std::isinf(d) || d >= threshold()) continue;
      heap.emplace_back(d, id);
      std::push_heap(heap.begin(), heap.end());
      if (static_cast<int>(heap.size()) > k) {
        std::pop_heap(heap.begin(), heap.end());
        heap.pop_back();
      }
    }
    if (sig_stats != nullptr) {
      sig_stats->candidates_entered += m;
      sig_stats->candidates_survived += refined;
      sig_stats->candidates_pruned += m - refined;
    }
    if (metrics != nullptr) {
      metrics->index.signature_evals += lb_evals;
      metrics->index.candidates_pruned += m - refined;
      metrics->index.refinements += refined;
    }
    std::sort(heap.begin(), heap.end());
    for (const auto& [distance, id] : heap) neighbors.push_back({id, distance});
  }

  out->object_fetches = fetch_io.object_fetches;
  out->page_reads = fetch_io.page_reads;
  out->fetch_fraction =
      m == 0 ? 0.0
             : static_cast<double>(fetch_io.object_fetches) /
                   static_cast<double>(m);
  FoldFetchIo(fetch_io, fetch_stats, metrics);
  if (!neighbors.empty()) {
    out->best_index = neighbors[0].index;
    out->best_distance = neighbors[0].distance;
  }
  return neighbors;
}

RotationInvariantIndex::Result
RotationInvariantIndex::NearestNeighborEuclidean(const Series& query,
                                                 obs::QueryMetrics* metrics) {
  Result result;
  obs::StageStats* sig_stats =
      metrics != nullptr ? &metrics->stage(obs::StageId::kSignatureFilter)
                         : nullptr;
  obs::StageStats* fetch_stats =
      metrics != nullptr ? &metrics->stage(obs::StageId::kDiskFetch) : nullptr;
  obs::StageStats* refine_stats =
      metrics != nullptr ? &metrics->stage(obs::StageId::kRefine) : nullptr;
  obs::WedgeStats* wedge_stats =
      metrics != nullptr ? &metrics->wedge : nullptr;
  storage::FetchStats fetch_io;

  WedgeSearchOptions wopts;
  wopts.kind = DistanceKind::kEuclidean;
  wopts.rotation = options_.rotation;
  std::optional<WedgeSearcher> searcher;
  {
    const obs::StageScope scope(refine_stats, &result.counter);
    searcher.emplace(query, wopts, &result.counter);
  }

  SpectralSignature qsig;
  {
    const obs::StageScope scope(sig_stats, &result.counter);
    qsig = MakeSpectralSignature(query, options_.dims);
    AddSetupSteps(&result.counter, FftStepCost(query.size()));
  }

  auto refine = [&](int id, double threshold) -> double {
    storage::SeriesHandle c;
    {
      const obs::StageScope scope(fetch_stats, &result.counter);
      c = backend_->Fetch(static_cast<std::size_t>(id), &fetch_io);
    }
    if (fetch_stats != nullptr) {
      ++fetch_stats->candidates_entered;
      ++fetch_stats->candidates_survived;
    }
    const obs::StageScope scope(refine_stats, &result.counter);
    const HMergeResult r =
        searcher->Distance(c.data(), threshold, &result.counter, wedge_stats);
    if (refine_stats != nullptr) {
      ++refine_stats->candidates_entered;
      ++(r.abandoned ? refine_stats->candidates_pruned
                     : refine_stats->candidates_survived);
    }
    if (r.abandoned) return kInf;
    searcher->AdaptK(c.data(), r.distance, &result.counter, wedge_stats);
    return r.distance;
  };

  VpTree::Result vp;
  {
    const RemainderScope scope(sig_stats, &result.counter, fetch_stats,
                               refine_stats);
    vp = vptree_->NearestNeighbor(qsig.values, refine, &result.counter);
  }
  const std::size_t m = backend_->size();
  if (sig_stats != nullptr) {
    sig_stats->candidates_entered += m;
    sig_stats->candidates_survived += vp.refine_calls;
    sig_stats->candidates_pruned += m - vp.refine_calls;
  }
  if (metrics != nullptr) {
    metrics->index.signature_evals += vp.metric_evals;
    metrics->index.candidates_pruned += m - vp.refine_calls;
    metrics->index.refinements += vp.refine_calls;
  }
  result.best_index = vp.best_id;
  result.best_distance = vp.best_distance;
  result.object_fetches = fetch_io.object_fetches;
  result.page_reads = fetch_io.page_reads;
  result.fetch_fraction =
      m == 0 ? 0.0
             : static_cast<double>(fetch_io.object_fetches) /
                   static_cast<double>(m);
  FoldFetchIo(fetch_io, fetch_stats, metrics);
  return result;
}

RotationInvariantIndex::Result RotationInvariantIndex::NearestNeighborDtw(
    const Series& query, obs::QueryMetrics* metrics) {
  Result result;
  obs::StageStats* sig_stats =
      metrics != nullptr ? &metrics->stage(obs::StageId::kSignatureFilter)
                         : nullptr;
  obs::StageStats* fetch_stats =
      metrics != nullptr ? &metrics->stage(obs::StageId::kDiskFetch) : nullptr;
  obs::StageStats* refine_stats =
      metrics != nullptr ? &metrics->stage(obs::StageId::kRefine) : nullptr;
  obs::WedgeStats* wedge_stats =
      metrics != nullptr ? &metrics->wedge : nullptr;
  storage::FetchStats fetch_io;

  WedgeSearchOptions wopts;
  wopts.kind = DistanceKind::kDtw;
  wopts.band = options_.band;
  wopts.rotation = options_.rotation;
  std::optional<WedgeSearcher> searcher;
  {
    const obs::StageScope scope(refine_stats, &result.counter);
    searcher.emplace(query, wopts, &result.counter);
  }

  // PAA-reduce the band-expanded envelopes of a small wedge set over the
  // query's rotations. LB(object) = min over wedges of LB_PAA, which
  // lower-bounds the rotation-invariant DTW distance (refs [16][37]).
  const std::size_t m = paa_signatures_.size();
  std::vector<std::pair<double, int>> order(m);
  std::size_t lb_evals = 0;
  {
    const obs::StageScope scope(sig_stats, &result.counter);
    const WedgeTree& tree = searcher->tree();
    const std::vector<int> wedge_ids =
        tree.WedgeSetForK(std::max(1, options_.lower_bound_wedges));
    std::vector<PaaEnvelope> envelopes;
    envelopes.reserve(wedge_ids.size());
    for (int id : wedge_ids) {
      Envelope env;
      env.upper.assign(tree.Upper(id), tree.Upper(id) + tree.length());
      env.lower.assign(tree.Lower(id), tree.Lower(id) + tree.length());
      envelopes.push_back(PaaReduceEnvelope(env, options_.dims));
    }

    // Lower bounds for every object, visited in ascending order.
    for (std::size_t i = 0; i < m; ++i) {
      double lb = kInf;
      for (const PaaEnvelope& env : envelopes) {
        lb = std::min(lb, LbPaa(paa_signatures_[i], env, &result.counter));
      }
      order[i] = {lb, static_cast<int>(i)};
    }
    std::sort(order.begin(), order.end());
    lb_evals = m * envelopes.size();
  }

  double best = kInf;
  std::uint64_t refined = 0;
  for (const auto& [lb, id] : order) {
    if (lb >= best) break;  // every further bound is at least as large
    ++refined;
    storage::SeriesHandle c;
    {
      const obs::StageScope scope(fetch_stats, &result.counter);
      c = backend_->Fetch(static_cast<std::size_t>(id), &fetch_io);
    }
    if (fetch_stats != nullptr) {
      ++fetch_stats->candidates_entered;
      ++fetch_stats->candidates_survived;
    }
    const obs::StageScope scope(refine_stats, &result.counter);
    const HMergeResult r =
        searcher->Distance(c.data(), best, &result.counter, wedge_stats);
    if (refine_stats != nullptr) {
      ++refine_stats->candidates_entered;
      ++(r.abandoned ? refine_stats->candidates_pruned
                     : refine_stats->candidates_survived);
    }
    if (!r.abandoned && r.distance < best) {
      best = r.distance;
      result.best_index = id;
      searcher->AdaptK(c.data(), best, &result.counter, wedge_stats);
    }
  }
  if (sig_stats != nullptr) {
    sig_stats->candidates_entered += m;
    sig_stats->candidates_survived += refined;
    sig_stats->candidates_pruned += m - refined;
  }
  if (metrics != nullptr) {
    metrics->index.signature_evals += lb_evals;
    metrics->index.candidates_pruned += m - refined;
    metrics->index.refinements += refined;
  }
  result.best_distance = best;
  result.object_fetches = fetch_io.object_fetches;
  result.page_reads = fetch_io.page_reads;
  result.fetch_fraction =
      m == 0 ? 0.0
             : static_cast<double>(fetch_io.object_fetches) /
                   static_cast<double>(m);
  FoldFetchIo(fetch_io, fetch_stats, metrics);
  return result;
}

}  // namespace rotind
