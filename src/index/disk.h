#ifndef ROTIND_INDEX_DISK_H_
#define ROTIND_INDEX_DISK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/series.h"
#include "src/core/status.h"

namespace rotind {

/// A simulated paged object store. The paper's Section 5.4 measures "the
/// fraction of items that must be retrieved from disk"; this class is the
/// accounting substrate: full time series live "on disk", indexes keep only
/// compressed signatures in memory, and every Fetch is tallied (object
/// fetches and the page reads they imply, assuming series are stored
/// contiguously in `page_size_bytes` pages).
class SimulatedDisk {
 public:
  explicit SimulatedDisk(std::size_t page_size_bytes = 4096);

  /// Stores a series; returns its object id (dense, starting at 0).
  int Store(const Series& s);

  /// Stores a whole database in order.
  void StoreAll(const std::vector<Series>& db);

  /// Whether `id` names a stored object.
  bool Contains(int id) const {
    return id >= 0 && static_cast<std::size_t>(id) < objects_.size();
  }

  /// Reads an object back, counting the access. Returns kOutOfRange for an
  /// invalid id (no access is counted).
  [[nodiscard]] StatusOr<const Series*> TryFetch(int id);

  /// Reads without counting (for test verification / setup).
  [[nodiscard]] StatusOr<const Series*> TryPeek(int id) const;

  /// Reference-returning conveniences for callers that already validated
  /// `id` (internal index code fetches only ids it stored). Bounds-checked:
  /// an invalid id returns a reference to a shared empty Series and counts
  /// nothing — defined behavior, never UB.
  const Series& Fetch(int id);
  const Series& Peek(int id) const;

  std::size_t num_objects() const { return objects_.size(); }

  std::uint64_t object_fetches() const { return object_fetches_; }
  std::uint64_t page_reads() const { return page_reads_; }

  /// Fraction of stored objects fetched so far — Figure 24's y-axis.
  /// (Counts fetches, not distinct objects; search algorithms fetch each
  /// object at most once.)
  double FetchFraction() const;

  void ResetCounters();

 private:
  std::size_t page_size_bytes_;
  std::vector<Series> objects_;
  std::uint64_t object_fetches_ = 0;
  std::uint64_t page_reads_ = 0;
};

}  // namespace rotind

#endif  // ROTIND_INDEX_DISK_H_
