#ifndef ROTIND_INDEX_DISK_H_
#define ROTIND_INDEX_DISK_H_

// SimulatedDisk moved to the storage layer (src/storage/simulated_disk.h)
// when the real paged storage engine landed: the simulated accounting is
// now one StorageBackend among three (in-memory, simulated, file). This
// forwarding header keeps existing includes and the unqualified
// rotind::SimulatedDisk spelling working.

#include "src/storage/simulated_disk.h"

namespace rotind {
using storage::SimulatedDisk;
}  // namespace rotind

#endif  // ROTIND_INDEX_DISK_H_
