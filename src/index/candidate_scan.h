#ifndef ROTIND_INDEX_CANDIDATE_SCAN_H_
#define ROTIND_INDEX_CANDIDATE_SCAN_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/series.h"
#include "src/core/status.h"
#include "src/core/step_counter.h"
#include "src/index/paa.h"
#include "src/index/vptree.h"
#include "src/obs/metrics.h"
#include "src/search/hmerge.h"
#include "src/storage/backend.h"

namespace rotind {

/// Disk-aware exact rotation-invariant index (paper Section 4.2 / 5.4).
///
/// Full series live behind a storage::StorageBackend (the paper-parity
/// SimulatedBackend by default; a real paged FileBackend via OpenFromFile);
/// only D-dimensional signatures stay in memory. A query is answered by
/// (a) pruning in signature space with a lower bound of the true
/// rotation-invariant distance, and (b) fetching and refining the
/// survivors with H-Merge. Both paths are exact (no false dismissals):
///
///  * Euclidean: FFT-magnitude signatures (rotation-invariant, metric, and
///    a lower bound of RED) pruned with a VP-tree — the paper's Table 7.
///  * DTW: FFT magnitudes do NOT lower-bound DTW, so this path uses the
///    classic exact-DTW-indexing machinery the paper cites ([16][37]): PAA
///    signatures of the objects against PAA-reduced, band-expanded wedge
///    envelopes of the query, visited in ascending lower-bound order.
class RotationInvariantIndex {
 public:
  struct Options {
    /// Signature dimensionality D. CONTRACT: for the Euclidean path the
    /// spectral transform only yields n/2 coefficients for length-n
    /// objects, and the unchecked constructor silently CLAMPS dims to that
    /// ceiling (see MakeSpectralSignature). Use Create() to get a hard
    /// kInvalidArgument instead of a silent clamp.
    std::size_t dims = 16;
    DistanceKind kind = DistanceKind::kEuclidean;
    int band = 5;  ///< Sakoe-Chiba band for kDtw
    RotationOptions rotation;
    std::size_t page_size_bytes = 4096;
    std::uint64_t seed = 42;
    /// Number of wedges whose PAA envelopes are used for the DTW lower
    /// bound (min over wedges). More wedges = tighter bound, more bound
    /// evaluations.
    int lower_bound_wedges = 64;
  };

  /// Unchecked constructor. Preconditions (validated by Create): non-empty
  /// db of uniform-length series with length >= 2 and dims >= 1. On the
  /// Euclidean path, dims > n/2 is silently clamped to n/2.
  RotationInvariantIndex(const std::vector<Series>& db, const Options& options);

  /// Validated factory: rejects an empty or ragged database, objects
  /// shorter than 2 samples, dims < 1, and (Euclidean path) dims beyond the
  /// n/2 spectral coefficients that exist — the cases the constructor would
  /// silently clamp or mis-index on.
  [[nodiscard]] static StatusOr<std::unique_ptr<RotationInvariantIndex>> Create(
      const std::vector<Series>& db, const Options& options);

  /// Opens a paged RIDX index file (written by BuildIndexFile /
  /// `rotind index build`) and serves queries through a FileBackend: the
  /// file's resident FFT/PAA signature sections feed the in-memory pruning
  /// structures, and every refinement fetch goes through a BufferPool of
  /// `pool_pages` frames. `options.dims` is taken from the file (the
  /// signatures are already computed); kind/band/rotation still apply.
  [[nodiscard]] static StatusOr<std::unique_ptr<RotationInvariantIndex>>
  OpenFromFile(
      const std::string& path, const Options& options, std::size_t pool_pages,
      storage::EvictionPolicy eviction = storage::EvictionPolicy::kLru);

  struct Result {
    int best_index = -1;
    double best_distance = 0.0;
    /// Objects fetched from disk for refinement.
    std::uint64_t object_fetches = 0;
    /// object_fetches / database size — Figure 24's y-axis.
    double fetch_fraction = 0.0;
    std::uint64_t page_reads = 0;
    StepCounter counter;
  };

  /// Exact rotation-invariant 1-NN. `metrics` (nullable, zero-cost when
  /// null) receives stage-attributed accounting: signature-space pruning →
  /// kSignatureFilter, disk I/O → kDiskFetch, H-Merge refinement (including
  /// wedge-tree setup) → kRefine, plus IndexStats and the per-query latency
  /// sample. The per-stage steps sum exactly to Result::counter's totals.
  Result NearestNeighbor(const Series& query,
                         obs::QueryMetrics* metrics = nullptr);

  /// One entry of a k-NN result.
  struct KnnEntry {
    int index = -1;
    double distance = 0.0;
  };

  /// Exact rotation-invariant k-NN (ascending by distance; fewer than k
  /// entries when the database is smaller). `stats`, if given, receives
  /// the same accounting fields as NearestNeighbor's Result.
  std::vector<KnnEntry> KNearestNeighbors(const Series& query, int k,
                                          Result* stats = nullptr,
                                          obs::QueryMetrics* metrics = nullptr);

  std::size_t size() const { return backend_->size(); }
  /// The storage behind refinement fetches (simulated unless OpenFromFile).
  const storage::StorageBackend& backend() const { return *backend_; }

  /// Passkey for the OpenFromFile construction path: only the class can
  /// mint an OpenKey, so this ctor (which wires no storage or signatures)
  /// stays unusable from outside while remaining make_unique-friendly.
  class OpenKey {
    friend class RotationInvariantIndex;
    OpenKey() = default;
  };
  RotationInvariantIndex(OpenKey, const Options& options)
      : options_(options) {}

 private:
  Result NearestNeighborEuclidean(const Series& query,
                                  obs::QueryMetrics* metrics);
  Result NearestNeighborDtw(const Series& query, obs::QueryMetrics* metrics);

  Options options_;
  std::unique_ptr<storage::StorageBackend> backend_;
  /// Euclidean path: spectral signatures + VP-tree.
  std::unique_ptr<VpTree> vptree_;
  std::vector<std::vector<double>> spectral_signatures_;
  /// DTW path: PAA signatures.
  std::vector<PaaPoint> paa_signatures_;
};

}  // namespace rotind

#endif  // ROTIND_INDEX_CANDIDATE_SCAN_H_
