#ifndef ROTIND_INDEX_VPTREE_H_
#define ROTIND_INDEX_VPTREE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/core/step_counter.h"

namespace rotind {

/// A vantage-point tree over D-dimensional points under the L2 metric
/// (paper Table 7, adapted from reference [38]). The points are compressed
/// in-memory signatures (FFT magnitudes); the *true* rotation-invariant
/// distance is only available by fetching the full object from disk, which
/// the caller provides as a `refine` callback.
///
/// Exactness contract: the L2 metric between signatures must lower-bound
/// the true distance. Then any subtree whose metric lower bound (via the
/// triangle inequality around its vantage point) reaches best-so-far can be
/// pruned without false dismissals.
class VpTree {
 public:
  /// Builds the tree over `points` (object id = position). `seed` drives
  /// vantage-point selection; `leaf_size` bounds bucket size.
  VpTree(std::vector<std::vector<double>> points, std::uint64_t seed = 42,
         std::size_t leaf_size = 8);

  struct Result {
    int best_id = -1;
    double best_distance = 0.0;
    /// Signature-metric evaluations performed.
    std::uint64_t metric_evals = 0;
    /// Refine calls issued (== objects fetched from disk by the caller).
    std::uint64_t refine_calls = 0;
  };

  /// Exact nearest neighbor under the caller's true distance.
  /// `refine(id, threshold)` must return the exact true distance of object
  /// `id` when it is < threshold, or +infinity otherwise (early abandoning
  /// inside refine is fine). `counter`, if given, is charged `dims` steps
  /// per metric evaluation.
  Result NearestNeighbor(
      const std::vector<double>& query,
      const std::function<double(int, double)>& refine,
      StepCounter* counter = nullptr) const;

  struct KnnResult {
    /// Ascending by distance; fewer than k entries when size() < k.
    std::vector<std::pair<int, double>> neighbors;
    std::uint64_t metric_evals = 0;
    std::uint64_t refine_calls = 0;
  };

  /// Exact k-nearest-neighbors; the k-th best true distance plays the
  /// pruning role best-so-far plays for k = 1.
  KnnResult KNearestNeighbors(
      const std::vector<double>& query, int k,
      const std::function<double(int, double)>& refine,
      StepCounter* counter = nullptr) const;

  std::size_t size() const { return points_.size(); }
  std::size_t dims() const { return points_.empty() ? 0 : points_[0].size(); }

 private:
  struct Node {
    int vantage = -1;      ///< object id of the vantage point
    double median = 0.0;   ///< split radius
    int left = -1;         ///< subtree of points with d(vp, p) <= median
    int right = -1;        ///< subtree of points with d(vp, p) > median
    std::vector<int> bucket;  ///< leaf entries (empty for internal nodes)
    bool is_leaf = false;
  };

  int BuildRecursive(std::vector<int>* ids, std::size_t lo, std::size_t hi,
                     class Rng* rng);
  void SearchRecursive(int node_id, const std::vector<double>& query,
                       const std::function<double(int, double)>& refine,
                       int k, struct KnnState* state, StepCounter* counter)
      const;
  double Metric(const std::vector<double>& a, const std::vector<double>& b,
                struct KnnState* state, StepCounter* counter) const;

  std::vector<std::vector<double>> points_;
  std::vector<Node> nodes_;
  int root_ = -1;
  std::size_t leaf_size_;
};

}  // namespace rotind

#endif  // ROTIND_INDEX_VPTREE_H_
