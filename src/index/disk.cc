#include "src/index/disk.h"

#include <string>

namespace rotind {
namespace {

const Series& EmptySeries() {
  static const Series empty;
  return empty;
}

}  // namespace

SimulatedDisk::SimulatedDisk(std::size_t page_size_bytes)
    : page_size_bytes_(page_size_bytes == 0 ? 4096 : page_size_bytes) {}

int SimulatedDisk::Store(const Series& s) {
  objects_.push_back(s);
  return static_cast<int>(objects_.size()) - 1;
}

void SimulatedDisk::StoreAll(const std::vector<Series>& db) {
  objects_.reserve(objects_.size() + db.size());
  for (const Series& s : db) objects_.push_back(s);
}

StatusOr<const Series*> SimulatedDisk::TryFetch(int id) {
  if (!Contains(id)) {
    return Status::OutOfRange("object id " + std::to_string(id) +
                              " not in [0, " + std::to_string(objects_.size()) +
                              ")");
  }
  const Series& s = objects_[static_cast<std::size_t>(id)];
  ++object_fetches_;
  const std::size_t bytes = s.size() * sizeof(double);
  page_reads_ += (bytes + page_size_bytes_ - 1) / page_size_bytes_;
  return &s;
}

StatusOr<const Series*> SimulatedDisk::TryPeek(int id) const {
  if (!Contains(id)) {
    return Status::OutOfRange("object id " + std::to_string(id) +
                              " not in [0, " + std::to_string(objects_.size()) +
                              ")");
  }
  return &objects_[static_cast<std::size_t>(id)];
}

const Series& SimulatedDisk::Fetch(int id) {
  StatusOr<const Series*> s = TryFetch(id);
  return s.ok() ? **s : EmptySeries();
}

const Series& SimulatedDisk::Peek(int id) const {
  StatusOr<const Series*> s = TryPeek(id);
  return s.ok() ? **s : EmptySeries();
}

double SimulatedDisk::FetchFraction() const {
  if (objects_.empty()) return 0.0;
  return static_cast<double>(object_fetches_) /
         static_cast<double>(objects_.size());
}

void SimulatedDisk::ResetCounters() {
  object_fetches_ = 0;
  page_reads_ = 0;
}

}  // namespace rotind
