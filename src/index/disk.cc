#include "src/index/disk.h"

#include <cassert>

namespace rotind {

SimulatedDisk::SimulatedDisk(std::size_t page_size_bytes)
    : page_size_bytes_(page_size_bytes == 0 ? 4096 : page_size_bytes) {}

int SimulatedDisk::Store(const Series& s) {
  objects_.push_back(s);
  return static_cast<int>(objects_.size()) - 1;
}

void SimulatedDisk::StoreAll(const std::vector<Series>& db) {
  objects_.reserve(objects_.size() + db.size());
  for (const Series& s : db) objects_.push_back(s);
}

const Series& SimulatedDisk::Fetch(int id) {
  assert(id >= 0 && static_cast<std::size_t>(id) < objects_.size());
  const Series& s = objects_[static_cast<std::size_t>(id)];
  ++object_fetches_;
  const std::size_t bytes = s.size() * sizeof(double);
  page_reads_ += (bytes + page_size_bytes_ - 1) / page_size_bytes_;
  return s;
}

double SimulatedDisk::FetchFraction() const {
  if (objects_.empty()) return 0.0;
  return static_cast<double>(object_fetches_) /
         static_cast<double>(objects_.size());
}

void SimulatedDisk::ResetCounters() {
  object_fetches_ = 0;
  page_reads_ = 0;
}

}  // namespace rotind
