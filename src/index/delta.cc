#include "src/index/delta.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

namespace rotind {

DeltaSegment::DeltaSegment(std::size_t length) : length_(length) {}

StatusOr<std::size_t> DeltaSegment::Insert(const Series& values, int label) {
  if (values.size() != length_) {
    return Status::InvalidArgument(
        "delta insert has length " + std::to_string(values.size()) +
        ", the shard set's series length is " + std::to_string(length_));
  }
  for (std::size_t j = 0; j < values.size(); ++j) {
    if (!std::isfinite(values[j])) {
      return Status(StatusCode::kBadValue,
                    "delta insert value " + std::to_string(j) +
                        " is NaN or Inf");
    }
  }
  MutexLock lock(mutex_);
  rows_.push_back(values);
  labels_.push_back(label);
  dead_.push_back(false);
  ++epoch_;
  return rows_.size() - 1;
}

Status DeltaSegment::TombstoneDeltaRow(std::size_t ordinal) {
  MutexLock lock(mutex_);
  if (ordinal >= rows_.size()) {
    return Status::OutOfRange("delta ordinal " + std::to_string(ordinal) +
                              " not in [0, " + std::to_string(rows_.size()) +
                              ")");
  }
  if (!dead_[ordinal]) {
    dead_[ordinal] = true;
    ++epoch_;
  }
  return Status::Ok();
}

void DeltaSegment::TombstoneShardRow(std::uint64_t global_row) {
  MutexLock lock(mutex_);
  if (shard_tombstones_.insert(global_row).second) ++epoch_;
}

std::size_t DeltaSegment::live_count() const {
  MutexLock lock(mutex_);
  std::size_t live = 0;
  for (bool dead : dead_) {
    if (!dead) ++live;
  }
  return live;
}

std::shared_ptr<const DeltaSnapshot> DeltaSegment::Snapshot() const {
  MutexLock lock(mutex_);
  if (cached_ != nullptr && cached_->epoch == epoch_) return cached_;
  auto snapshot = std::make_shared<DeltaSnapshot>();
  snapshot->length = length_;
  snapshot->epoch = epoch_;
  snapshot->rows_seen = rows_.size();
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (dead_[i]) continue;
    snapshot->values.insert(snapshot->values.end(), rows_[i].begin(),
                            rows_[i].end());
    snapshot->labels.push_back(labels_[i]);
    snapshot->ordinals.push_back(i);
  }
  snapshot->shard_tombstones.assign(shard_tombstones_.begin(),
                                    shard_tombstones_.end());
  cached_ = std::move(snapshot);
  return cached_;
}

void DeltaSegment::DropCompacted(const DeltaSnapshot& compacted,
                                 std::uint64_t new_shard_base) {
  MutexLock lock(mutex_);
  // A row live in the snapshot went into the new shard as live. If it was
  // tombstoned here AFTER the snapshot was captured, the delete must
  // follow it: its new global id is new_shard_base + its live position.
  for (std::size_t i = 0; i < compacted.ordinals.size(); ++i) {
    const std::size_t ordinal = compacted.ordinals[i];
    if (ordinal < dead_.size() && dead_[ordinal]) {
      shard_tombstones_.insert(new_shard_base + i);
    }
  }
  const std::size_t drop =
      std::min(compacted.rows_seen, rows_.size());
  rows_.erase(rows_.begin(),
              rows_.begin() + static_cast<std::ptrdiff_t>(drop));
  labels_.erase(labels_.begin(),
                labels_.begin() + static_cast<std::ptrdiff_t>(drop));
  dead_.erase(dead_.begin(),
              dead_.begin() + static_cast<std::ptrdiff_t>(drop));
  for (std::uint64_t t : compacted.shard_tombstones) {
    shard_tombstones_.erase(t);
  }
  ++epoch_;
  cached_.reset();
}

}  // namespace rotind
