#ifndef ROTIND_INDEX_INDEX_IO_H_
#define ROTIND_INDEX_INDEX_IO_H_

#include <cstddef>
#include <string>

#include "src/core/series.h"
#include "src/core/status.h"

namespace rotind {

/// Build-time parameters for a paged RIDX index file. Both signature
/// families are written by default so one file serves the Euclidean path
/// (FFT magnitudes, Table 7) and the DTW path (PAA summaries, refs
/// [16][37]); set a dims field to 0 to omit that section.
struct IndexBuildOptions {
  std::size_t sig_dims = 16;   ///< FFT magnitude signature dimensionality.
  std::size_t paa_dims = 16;   ///< PAA summary dimensionality.
  /// Rotation-invariant pooled VecSignature dimensionality (the RIDX v2
  /// section feeding the engine's vec-signature pre-filter). Unlike
  /// sig_dims this is CLAMPED to n/2 rather than rejected: every row in one
  /// file shares the same length, so a per-file clamp cannot produce the
  /// mixed-dimensionality footgun, and the default keeps working on short
  /// series. 0 omits the section and the file stays a version-1 container.
  std::size_t ri_dims = 8;
  std::size_t page_size_bytes = 4096;
};

/// Computes the resident signature sections for every series in `db` (FFT
/// magnitudes via MakeSpectralSignature, PAA summaries via PaaTransform)
/// and writes the paged index container to `path` via
/// storage::WriteIndexFile. Labels are carried over when `db` has them.
///
/// Validates what the signature kernels would otherwise silently clamp:
/// empty or ragged datasets, objects shorter than 2 samples, and sig_dims
/// beyond the n/2 spectral coefficients that exist all fail with
/// kInvalidArgument. I/O failures surface the writer's kIoError.
[[nodiscard]] Status BuildIndexFile(const Dataset& db,
                                    const IndexBuildOptions& options,
                                    const std::string& path);

}  // namespace rotind

#endif  // ROTIND_INDEX_INDEX_IO_H_
