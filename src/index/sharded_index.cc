#include "src/index/sharded_index.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>
#include <queue>
#include <string>
#include <utility>

#include "src/core/contracts.h"

namespace rotind {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::size_t kNoHoldout = std::numeric_limits<std::size_t>::max();

/// Directory prefix of `path` ("." when the path has no separator), so
/// manifest-relative shard names resolve beside the manifest.
std::string DirOf(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Sorted-ascending union of two sorted-ascending tombstone lists
/// (duplicates collapse — a row deleted both in the manifest and in the
/// delta is dead once).
std::vector<std::uint64_t> MergeTombstones(
    const std::vector<std::uint64_t>& a, const std::vector<std::uint64_t>& b) {
  std::vector<std::uint64_t> merged;
  merged.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(merged));
  return merged;
}

/// A non-empty part of a snapshot's live-ordinal space.
struct PartRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

std::vector<PartRange> NonEmptyParts(const ShardedSnapshot& snap) {
  std::vector<PartRange> parts;
  for (std::size_t p = 0; p + 1 < snap.part_offsets.size(); ++p) {
    if (snap.part_offsets[p + 1] > snap.part_offsets[p]) {
      parts.push_back({snap.part_offsets[p], snap.part_offsets[p + 1]});
    }
  }
  return parts;
}

/// Replays the union of per-part k-NN results (already mapped to live
/// ordinals, already sorted by ordinal — the monolithic scan order)
/// through the exact acceptance rule QueryEngine's KnnCollector uses: a
/// max-heap of size k, strict-< admission against the k-th-best distance.
/// The distance multiset is provably the global top k (any candidate
/// missing from its part's local top k is at or beyond the local k-th
/// distance, which is at or beyond the global k-th). When distinct rows
/// TIE exactly at the k-th distance, which tied ROW is reported may
/// differ from the serial scan (heap eviction among equal keys is
/// structural) — distances never do.
std::vector<Neighbor> ReplayKnn(std::vector<Neighbor> by_ordinal, int k) {
  struct FurtherFirst {
    bool operator()(const Neighbor& a, const Neighbor& b) const {
      return a.distance < b.distance;
    }
  };
  std::priority_queue<Neighbor, std::vector<Neighbor>, FurtherFirst> heap;
  for (const Neighbor& n : by_ordinal) {
    const double threshold =
        static_cast<int>(heap.size()) < k ? kInf : heap.top().distance;
    if (n.distance >= threshold) continue;
    heap.push(n);
    if (static_cast<int>(heap.size()) > k) heap.pop();
  }
  std::vector<Neighbor> out;
  out.reserve(heap.size());
  while (!heap.empty()) {
    out.push_back(heap.top());
    heap.pop();
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// SnapshotView

SnapshotView::SnapshotView(std::shared_ptr<const ShardedSnapshot> snapshot,
                           std::size_t begin, std::size_t end)
    : snapshot_(std::move(snapshot)), begin_(begin), end_(end) {
  ROTIND_CONTRACT(snapshot_ != nullptr, "SnapshotView over a null snapshot");
  ROTIND_CONTRACT(begin_ <= end_ && end_ <= snapshot_->live_total(),
                  "SnapshotView range outside the snapshot's live ordinals");
}

std::size_t SnapshotView::PartOf(std::size_t ordinal) const {
  const auto& offsets = snapshot_->part_offsets;
  // upper_bound lands one past the part whose [offset, next) holds the
  // ordinal; empty parts (equal adjacent offsets) are skipped naturally.
  const auto it =
      std::upper_bound(offsets.begin(), offsets.end(), ordinal);
  return static_cast<std::size_t>(it - offsets.begin()) - 1;
}

storage::SeriesHandle SnapshotView::Fetch(std::size_t i,
                                          storage::FetchStats* stats) const {
  const std::size_t ordinal = begin_ + i;
  const std::size_t part = PartOf(ordinal);
  const std::size_t at = ordinal - snapshot_->part_offsets[part];
  if (part < snapshot_->shards.size()) {
    return snapshot_->shards[part]->Fetch(snapshot_->shard_live[part][at],
                                          stats);
  }
  // Delta rows live in the snapshot's flattened buffer, which this view
  // keeps alive — a zero-copy borrow, no I/O to account.
  return storage::SeriesHandle::Borrowed(snapshot_->delta->row(at),
                                         snapshot_->length);
}

int SnapshotView::label(std::size_t i) const {
  const std::size_t ordinal = begin_ + i;
  const std::size_t part = PartOf(ordinal);
  const std::size_t at = ordinal - snapshot_->part_offsets[part];
  if (part < snapshot_->shards.size()) {
    return snapshot_->shards[part]->label(snapshot_->shard_live[part][at]);
  }
  return snapshot_->delta->labels[at];
}

Status SnapshotView::error() const {
  for (const auto& shard : snapshot_->shards) {
    Status s = shard->error();
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

void SnapshotView::ClearError() const {
  for (const auto& shard : snapshot_->shards) shard->ClearError();
}

// ---------------------------------------------------------------------------
// ShardedIndex

ShardedIndex::ShardedIndex(
    Private, std::string manifest_path, std::string dir,
    const ShardedOptions& options, storage::Manifest manifest,
    std::vector<std::shared_ptr<storage::FileBackend>> shards)
    : manifest_path_(std::move(manifest_path)),
      dir_(std::move(dir)),
      options_(options),
      length_(manifest.shards.front().length),
      delta_(length_),
      manifest_(std::move(manifest)),
      shards_(std::move(shards)) {}

StatusOr<std::unique_ptr<ShardedIndex>> ShardedIndex::Open(
    const std::string& manifest_path, const ShardedOptions& options) {
  StatusOr<storage::Manifest> manifest = storage::LoadManifest(manifest_path);
  if (!manifest.ok()) return manifest.status();
  if (manifest->shards.empty()) {
    return Status::InvalidArgument(
        "manifest " + manifest_path +
        " names no shards; a sharded index needs at least one");
  }
  const std::string dir = DirOf(manifest_path);
  std::vector<std::shared_ptr<storage::FileBackend>> shards;
  shards.reserve(manifest->shards.size());
  for (const storage::ManifestShard& entry : manifest->shards) {
    StatusOr<std::unique_ptr<storage::FileBackend>> backend =
        storage::FileBackend::Open(dir + "/" + entry.file, options.pool_pages,
                                   options.eviction, options.tuning);
    if (!backend.ok()) return backend.status();
    // The manifest is the source of truth; a shard that disagrees with its
    // entry is a torn deployment, not a smaller index.
    if ((*backend)->size() != entry.count ||
        (*backend)->length() != entry.length) {
      return Status(StatusCode::kCorruptHeader,
                    "shard " + entry.file + " holds " +
                        std::to_string((*backend)->size()) + " x " +
                        std::to_string((*backend)->length()) +
                        ", manifest says " + std::to_string(entry.count) +
                        " x " + std::to_string(entry.length));
    }
    shards.push_back(std::move(*backend));
  }
  return std::make_unique<ShardedIndex>(Private{}, manifest_path, dir,
                                        options, *std::move(manifest),
                                        std::move(shards));
}

std::uint64_t ShardedIndex::generation() const {
  MutexLock lock(view_mutex_);
  return manifest_.generation;
}

std::size_t ShardedIndex::shard_count() const {
  MutexLock lock(view_mutex_);
  return shards_.size();
}

std::uint64_t ShardedIndex::shard_total() const {
  MutexLock lock(view_mutex_);
  return manifest_.total_count();
}

std::size_t ShardedIndex::live_size() const { return Snapshot()->live_total(); }

StatusOr<std::uint64_t> ShardedIndex::Insert(const Series& values, int label) {
  // One critical section for the append AND the id computation: a
  // compaction swap completing in between would shift the delta ordinal
  // and the shard total out from under the sum, returning an id that
  // names a different row.
  MutexLock lock(view_mutex_);
  StatusOr<std::size_t> ordinal = delta_.Insert(values, label);
  if (!ordinal.ok()) return ordinal.status();
  return manifest_.total_count() + *ordinal;
}

Status ShardedIndex::Remove(std::uint64_t global_id) {
  MutexLock lock(view_mutex_);
  const std::uint64_t total = manifest_.total_count();
  if (global_id < total) {
    delta_.TombstoneShardRow(global_id);
    return Status::Ok();
  }
  return delta_.TombstoneDeltaRow(static_cast<std::size_t>(global_id - total));
}

std::shared_ptr<const ShardedSnapshot> ShardedIndex::Snapshot() const {
  MutexLock lock(view_mutex_);
  std::shared_ptr<const DeltaSnapshot> delta = delta_.Snapshot();
  if (cached_ != nullptr && cached_->generation == manifest_.generation &&
      cached_->delta == delta) {
    return cached_;
  }
  auto snap = std::make_shared<ShardedSnapshot>();
  snap->generation = manifest_.generation;
  snap->length = length_;
  snap->shards = shards_;
  snap->delta = delta;
  const std::vector<std::uint64_t> dead =
      MergeTombstones(manifest_.tombstones, delta->shard_tombstones);
  snap->shard_live.resize(shards_.size());
  snap->part_offsets.assign(1, 0);
  std::uint64_t base = 0;
  std::size_t dead_pos = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::uint64_t count = manifest_.shards[s].count;
    std::vector<std::size_t>& live = snap->shard_live[s];
    live.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t r = 0; r < count; ++r) {
      const std::uint64_t gid = base + r;
      while (dead_pos < dead.size() && dead[dead_pos] < gid) ++dead_pos;
      if (dead_pos < dead.size() && dead[dead_pos] == gid) continue;
      live.push_back(static_cast<std::size_t>(r));
      snap->global_ids.push_back(gid);
    }
    snap->part_offsets.push_back(snap->part_offsets.back() + live.size());
    base += count;
  }
  for (std::size_t i = 0; i < delta->live_count(); ++i) {
    snap->global_ids.push_back(base + delta->ordinals[i]);
  }
  snap->part_offsets.push_back(snap->part_offsets.back() +
                               delta->live_count());
  cached_ = std::move(snap);
  return cached_;
}

std::shared_ptr<const QueryEngine> ShardedIndex::SnapshotEngine() const {
  std::shared_ptr<const ShardedSnapshot> snap = Snapshot();
  const std::size_t total = snap->live_total();
  return std::make_shared<const QueryEngine>(
      std::make_unique<SnapshotView>(std::move(snap), 0, total),
      options_.engine);
}

Status ShardedIndex::TakeShardError(const ShardedSnapshot& snap) const {
  for (const auto& shard : snap.shards) {
    Status s = shard->error();
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

StatusOr<ScanResult> ShardedIndex::Search(const Series& query,
                                          obs::QueryMetrics* metrics) const {
  std::shared_ptr<const ShardedSnapshot> snap = Snapshot();
  if (options_.parallel_search) return SearchParallel(snap, query, metrics);
  QueryEngine engine(
      std::make_unique<SnapshotView>(snap, 0, snap->live_total()),
      options_.engine);
  StatusOr<ScanResult> result = engine.SearchChecked(query, nullptr, metrics);
  if (!result.ok()) return result.status();
  ScanResult mapped = *std::move(result);
  if (mapped.best_index >= 0) {
    mapped.best_index = static_cast<int>(
        snap->global_ids[static_cast<std::size_t>(mapped.best_index)]);
  }
  return mapped;
}

StatusOr<std::vector<Neighbor>> ShardedIndex::Knn(
    const Series& query, int k, StepCounter* counter,
    obs::QueryMetrics* metrics) const {
  std::shared_ptr<const ShardedSnapshot> snap = Snapshot();
  if (options_.parallel_search) {
    return KnnParallel(snap, query, k, counter, metrics);
  }
  QueryEngine engine(
      std::make_unique<SnapshotView>(snap, 0, snap->live_total()),
      options_.engine);
  StatusOr<std::vector<Neighbor>> result =
      engine.KnnChecked(query, k, counter, nullptr, metrics);
  if (!result.ok()) return result.status();
  for (Neighbor& n : *result) {
    n.index =
        static_cast<int>(snap->global_ids[static_cast<std::size_t>(n.index)]);
  }
  return result;
}

StatusOr<std::vector<Neighbor>> ShardedIndex::Range(
    const Series& query, double radius, StepCounter* counter,
    obs::QueryMetrics* metrics) const {
  std::shared_ptr<const ShardedSnapshot> snap = Snapshot();
  if (options_.parallel_search) {
    return RangeParallel(snap, query, radius, counter, metrics);
  }
  QueryEngine engine(
      std::make_unique<SnapshotView>(snap, 0, snap->live_total()),
      options_.engine);
  StatusOr<std::vector<Neighbor>> result =
      engine.RangeChecked(query, radius, counter, nullptr, metrics);
  if (!result.ok()) return result.status();
  for (Neighbor& n : *result) {
    n.index =
        static_cast<int>(snap->global_ids[static_cast<std::size_t>(n.index)]);
  }
  return result;
}

StatusOr<ScanResult> ShardedIndex::SearchParallel(
    const std::shared_ptr<const ShardedSnapshot>& snap, const Series& query,
    obs::QueryMetrics* metrics) const {
  const std::vector<PartRange> parts = NonEmptyParts(*snap);
  // Validation parity with the serial path: same engine, same messages.
  QueryEngine probe(
      std::make_unique<SnapshotView>(snap, 0, snap->live_total()),
      options_.engine);
  Status valid = probe.ValidateQuery(query);
  if (!valid.ok()) return valid;
  if (parts.empty()) return ScanResult{};

  std::vector<std::unique_ptr<QueryEngine>> engines;
  engines.reserve(parts.size());
  for (const PartRange& part : parts) {
    engines.push_back(std::make_unique<QueryEngine>(
        std::make_unique<SnapshotView>(snap, part.begin, part.end),
        options_.engine));
  }
  SharedBound shared;
  std::vector<ScanResult> results(parts.size());
  std::vector<obs::QueryMetrics> part_metrics(
      metrics != nullptr ? parts.size() : 0);
  ParallelFor(parts.size(), options_.num_threads, [&](std::size_t i) {
    results[i] = engines[i]->SearchShared(
        query, kNoHoldout, &shared,
        metrics != nullptr ? &part_metrics[i] : nullptr);
  });
  Status io = TakeShardError(*snap);
  if (!io.ok()) return io;

  // Deterministic merge: replay part winners in part order under the same
  // strict-< rule BestCollector uses. Parts cover ascending ordinal
  // ranges, so the first part attaining the global minimum holds the
  // monolithic scan's winner — bit-identical, ties included (a foreign
  // bound only ever pruned candidates strictly worse than the winner).
  ScanResult merged;
  double best = kInf;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    merged.counter += results[i].counter;
    if (results[i].best_index >= 0 && results[i].best_distance < best) {
      best = results[i].best_distance;
      merged.best_index = static_cast<int>(
          snap->global_ids[parts[i].begin +
                           static_cast<std::size_t>(results[i].best_index)]);
      merged.best_distance = results[i].best_distance;
      merged.best_shift = results[i].best_shift;
      merged.best_mirrored = results[i].best_mirrored;
    }
  }
  if (metrics != nullptr) {
    for (const obs::QueryMetrics& m : part_metrics) *metrics += m;
  }
  return merged;
}

StatusOr<std::vector<Neighbor>> ShardedIndex::KnnParallel(
    const std::shared_ptr<const ShardedSnapshot>& snap, const Series& query,
    int k, StepCounter* counter, obs::QueryMetrics* metrics) const {
  QueryEngine probe(
      std::make_unique<SnapshotView>(snap, 0, snap->live_total()),
      options_.engine);
  Status valid = probe.ValidateQuery(query);
  if (!valid.ok()) return valid;
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1, got " + std::to_string(k));
  }
  const std::vector<PartRange> parts = NonEmptyParts(*snap);
  if (parts.empty()) return std::vector<Neighbor>{};

  std::vector<std::unique_ptr<QueryEngine>> engines;
  engines.reserve(parts.size());
  for (const PartRange& part : parts) {
    engines.push_back(std::make_unique<QueryEngine>(
        std::make_unique<SnapshotView>(snap, part.begin, part.end),
        options_.engine));
  }
  SharedBound shared;
  std::vector<std::vector<Neighbor>> results(parts.size());
  std::vector<StepCounter> counters(parts.size());
  std::vector<obs::QueryMetrics> part_metrics(
      metrics != nullptr ? parts.size() : 0);
  ParallelFor(parts.size(), options_.num_threads, [&](std::size_t i) {
    results[i] = engines[i]->KnnShared(
        query, k, kNoHoldout, &shared, &counters[i],
        metrics != nullptr ? &part_metrics[i] : nullptr);
  });
  Status io = TakeShardError(*snap);
  if (!io.ok()) return io;

  // Union of the per-part top k, restored to live-ordinal (= monolithic
  // scan) order, replayed through the collector's exact acceptance rule.
  std::vector<Neighbor> pool;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (counter != nullptr) *counter += counters[i];
    for (const Neighbor& n : results[i]) {
      Neighbor mapped = n;
      mapped.index =
          static_cast<int>(parts[i].begin + static_cast<std::size_t>(n.index));
      pool.push_back(mapped);
    }
  }
  std::sort(pool.begin(), pool.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.index < b.index;
            });
  std::vector<Neighbor> merged = ReplayKnn(std::move(pool), k);
  for (Neighbor& n : merged) {
    n.index =
        static_cast<int>(snap->global_ids[static_cast<std::size_t>(n.index)]);
  }
  if (metrics != nullptr) {
    for (const obs::QueryMetrics& m : part_metrics) *metrics += m;
  }
  return merged;
}

StatusOr<std::vector<Neighbor>> ShardedIndex::RangeParallel(
    const std::shared_ptr<const ShardedSnapshot>& snap, const Series& query,
    double radius, StepCounter* counter, obs::QueryMetrics* metrics) const {
  QueryEngine probe(
      std::make_unique<SnapshotView>(snap, 0, snap->live_total()),
      options_.engine);
  Status valid = probe.ValidateQuery(query);
  if (!valid.ok()) return valid;
  if (!std::isfinite(radius) || radius < 0.0) {
    return Status::InvalidArgument("radius must be finite and >= 0, got " +
                                   std::to_string(radius));
  }
  const std::vector<PartRange> parts = NonEmptyParts(*snap);
  if (parts.empty()) return std::vector<Neighbor>{};

  std::vector<std::unique_ptr<QueryEngine>> engines;
  engines.reserve(parts.size());
  for (const PartRange& part : parts) {
    engines.push_back(std::make_unique<QueryEngine>(
        std::make_unique<SnapshotView>(snap, part.begin, part.end),
        options_.engine));
  }
  // A radius is a fixed threshold — nothing improves, nothing to share.
  std::vector<std::vector<Neighbor>> results(parts.size());
  std::vector<StepCounter> counters(parts.size());
  std::vector<obs::QueryMetrics> part_metrics(
      metrics != nullptr ? parts.size() : 0);
  ParallelFor(parts.size(), options_.num_threads, [&](std::size_t i) {
    results[i] = engines[i]->Range(
        query, radius, &counters[i],
        metrics != nullptr ? &part_metrics[i] : nullptr);
  });
  Status io = TakeShardError(*snap);
  if (!io.ok()) return io;

  // Restore monolithic scan order (live-ordinal), then apply the exact
  // sort RangeCollector::Take applies — same comparator over the same
  // sequence, so the result is bit-identical to the serial path.
  std::vector<Neighbor> merged;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (counter != nullptr) *counter += counters[i];
    for (const Neighbor& n : results[i]) {
      Neighbor mapped = n;
      mapped.index =
          static_cast<int>(parts[i].begin + static_cast<std::size_t>(n.index));
      merged.push_back(mapped);
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.index < b.index;
            });
  std::sort(merged.begin(), merged.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.distance < b.distance;
            });
  for (Neighbor& n : merged) {
    n.index =
        static_cast<int>(snap->global_ids[static_cast<std::size_t>(n.index)]);
  }
  if (metrics != nullptr) {
    for (const obs::QueryMetrics& m : part_metrics) *metrics += m;
  }
  return merged;
}

StatusOr<std::uint64_t> ShardedIndex::Compact(const IndexBuildOptions& build,
                                              storage::ManifestWriteFault
                                                  fault) {
  {
    MutexLock lock(view_mutex_);
    if (compacting_) {
      return Status::InvalidArgument("a compaction is already running");
    }
    compacting_ = true;
  }

  // Everything below runs lock-free against queries: they keep scanning
  // their snapshots while the new shard is built and the manifest swapped.
  std::shared_ptr<const DeltaSnapshot> delta = delta_.Snapshot();
  if (pause_after_snapshot_for_tests_) pause_after_snapshot_for_tests_();
  storage::Manifest next;
  {
    MutexLock lock(view_mutex_);
    next = manifest_;
  }
  next.generation += 1;
  next.tombstones = MergeTombstones(next.tombstones, delta->shard_tombstones);

  StatusOr<std::uint64_t> outcome = next.generation;
  std::shared_ptr<storage::FileBackend> opened;
  if (delta->live_count() > 0) {
    Dataset db;
    db.items.reserve(delta->live_count());
    db.labels = delta->labels;
    for (std::size_t i = 0; i < delta->live_count(); ++i) {
      const double* row = delta->row(i);
      db.items.emplace_back(row, row + delta->length);
    }
    const std::string shard_file =
        "shard-g" + std::to_string(next.generation) + ".ridx";
    const std::string shard_path = dir_ + "/" + shard_file;
    Status built = BuildIndexFile(db, build, shard_path);
    if (built.ok()) {
      StatusOr<std::unique_ptr<storage::FileBackend>> backend =
          storage::FileBackend::Open(shard_path, options_.pool_pages,
                                     options_.eviction, options_.tuning);
      if (backend.ok()) {
        opened = std::move(*backend);
        next.shards.push_back(
            {shard_file, delta->live_count(), delta->length});
      } else {
        outcome = backend.status();
      }
    } else {
      outcome = built;
    }
  }
  if (outcome.ok()) {
    // The publication point: temp write + atomic rename. On failure (or
    // an injected crash) the manifest on disk still names the PREVIOUS
    // generation, which stays fully queryable.
    Status wrote = storage::WriteManifest(next, manifest_path_, fault);
    if (!wrote.ok()) outcome = wrote;
  }
  if (outcome.ok()) {
    // Swap and retire ATOMICALLY under view_mutex_ (kShardView nests over
    // kDeltaSegment): a Snapshot() taken at any instant sees either the
    // old manifest with the full delta or the new manifest with the delta
    // drained — never the new shard PLUS the un-retired delta rows it was
    // built from, which would double-count every compacted row. Rows
    // inserted and deletes issued after the snapshot survive in the delta
    // with shifted ordinals; everything the new generation absorbed is
    // retired, and a post-snapshot delete of a compacted row follows it
    // into the new shard as a tombstone of its new global id.
    MutexLock lock(view_mutex_);
    const std::uint64_t new_shard_base = manifest_.total_count();
    manifest_ = std::move(next);
    if (opened != nullptr) shards_.push_back(std::move(opened));
    cached_.reset();
    delta_.DropCompacted(*delta, new_shard_base);
  }
  {
    MutexLock lock(view_mutex_);
    compacting_ = false;
  }
  return outcome;
}

// ---------------------------------------------------------------------------
// BackgroundCompactor

BackgroundCompactor::BackgroundCompactor(ShardedIndex& index,
                                         const IndexBuildOptions& build)
    : index_(index), build_(build), worker_([this] { Loop(); }) {}

BackgroundCompactor::~BackgroundCompactor() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
    wake_.NotifyAll();
  }
  worker_.join();
}

void BackgroundCompactor::Trigger() {
  MutexLock lock(mutex_);
  pending_ = true;
  wake_.NotifyAll();
}

void BackgroundCompactor::WaitIdle() {
  MutexLock lock(mutex_);
  while (pending_ || running_) idle_.Wait(mutex_);
}

Status BackgroundCompactor::last_status() const {
  MutexLock lock(mutex_);
  return last_;
}

std::uint64_t BackgroundCompactor::passes() const {
  MutexLock lock(mutex_);
  return passes_;
}

void BackgroundCompactor::Loop() {
  for (;;) {
    {
      MutexLock lock(mutex_);
      while (!pending_ && !stopping_) wake_.Wait(mutex_);
      if (!pending_ && stopping_) return;
      pending_ = false;
      running_ = true;
    }
    // The pass runs with no compactor lock held: Trigger() stays
    // non-blocking and coalesces into `pending_` for a follow-up pass.
    StatusOr<std::uint64_t> pass = index_.Compact(build_);
    {
      MutexLock lock(mutex_);
      running_ = false;
      last_ = pass.ok() ? Status::Ok() : pass.status();
      ++passes_;
      if (!pending_) idle_.NotifyAll();
      if (stopping_ && !pending_) return;
    }
  }
}

}  // namespace rotind
