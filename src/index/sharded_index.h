#ifndef ROTIND_INDEX_SHARDED_INDEX_H_
#define ROTIND_INDEX_SHARDED_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/series.h"
#include "src/core/status.h"
#include "src/core/step_counter.h"
#include "src/core/sync.h"
#include "src/index/delta.h"
#include "src/index/index_io.h"
#include "src/obs/metrics.h"
#include "src/search/engine.h"
#include "src/search/scan.h"
#include "src/storage/backend.h"
#include "src/storage/manifest.h"

namespace rotind {

/// Knobs for a ShardedIndex beyond what the manifest dictates.
struct ShardedOptions {
  /// BufferPool capacity PER SHARD (each shard is its own paged file with
  /// its own pool, so shards never evict each other's hot pages).
  std::size_t pool_pages = 64;
  storage::EvictionPolicy eviction = storage::EvictionPolicy::kLru;
  storage::FileBackend::Tuning tuning;
  /// Cascade / measure configuration for every query. The `storage` field
  /// is ignored — storage is what the manifest names.
  EngineOptions engine;
  /// Worker threads for the parallel shard search.
  int num_threads = 4;
  /// Search mode. Parallel searches every part (shard or delta)
  /// concurrently with a SharedBound best-so-far exchange and merges
  /// deterministically; serial runs ONE engine over the concatenated live
  /// view, bit-identical (answers AND total_steps) to a monolithic engine
  /// over the same live rows.
  bool parallel_search = true;
};

/// An immutable, self-contained view of one (generation, delta epoch)
/// instant of a ShardedIndex. shared_ptr-owned: queries resolve one
/// snapshot up front and are unaffected by concurrent inserts, deletes, or
/// a compaction publishing a new generation.
///
/// Live-ordinal space: the live (not tombstoned) rows of every part,
/// concatenated in part order — shards in manifest order, then the delta
/// segment. `part_offsets` maps parts to ordinal ranges; `global_ids`
/// maps each live ordinal back to the stable global id callers speak
/// (shard rows number 0..total-1 in manifest order; delta row with
/// ordinal d is total + d). Compaction renumbers: delta rows move into a
/// new shard and tombstoned ids vanish, so global ids are stable only
/// within a generation.
struct ShardedSnapshot {
  std::uint64_t generation = 0;
  std::size_t length = 0;
  /// Shard backends, manifest order. Shared with the owning ShardedIndex —
  /// a snapshot taken just before a compaction keeps pre-compaction shards
  /// alive for queries still running against them.
  std::vector<std::shared_ptr<storage::FileBackend>> shards;
  /// Per shard: the live PHYSICAL rows (ascending). shard_live[s][i] is
  /// the shard-local row behind live ordinal part_offsets[s] + i.
  std::vector<std::vector<std::size_t>> shard_live;
  /// The delta state this snapshot saw (never null; may be empty).
  std::shared_ptr<const DeltaSnapshot> delta;
  /// Part -> first live ordinal; size parts() + 1, last entry = total
  /// live rows. Parts are the shards plus one trailing delta part.
  std::vector<std::size_t> part_offsets;
  /// Live ordinal -> global id, ascending within each part.
  std::vector<std::uint64_t> global_ids;

  std::size_t parts() const { return shards.size() + 1; }
  std::size_t live_total() const {
    return part_offsets.empty() ? 0 : part_offsets.back();
  }
};

/// StorageBackend over a contiguous live-ordinal range [begin, end) of a
/// ShardedSnapshot: shard rows are fetched through the shard's paged
/// FileBackend, delta rows are zero-copy borrows from the snapshot's
/// flattened values. This is what lets ONE unmodified QueryEngine search
/// "all live rows" (serial mode) or "one part" (parallel mode) — the
/// engine never learns the database is sharded.
///
/// Keeps its snapshot alive via shared_ptr, so borrowed delta pointers and
/// shard backends outlive every handle. Thread-safe like every backend
/// (routing state is immutable; shard backends synchronize internally).
class SnapshotView final : public storage::StorageBackend {
 public:
  SnapshotView(std::shared_ptr<const ShardedSnapshot> snapshot,
               std::size_t begin, std::size_t end);

  storage::BackendKind backend_kind() const override {
    return storage::BackendKind::kFile;
  }
  const char* name() const override { return "sharded"; }
  std::size_t size() const override { return end_ - begin_; }
  std::size_t length() const override { return snapshot_->length; }
  storage::SeriesHandle Fetch(std::size_t i,
                              storage::FetchStats* stats) const override;
  int label(std::size_t i) const override;
  /// First latched error across the shard backends (delta fetches cannot
  /// fail).
  [[nodiscard]] Status error() const override;
  void ClearError() const override;

  const ShardedSnapshot& snapshot() const { return *snapshot_; }

 private:
  /// The part holding live ordinal `ordinal`.
  std::size_t PartOf(std::size_t ordinal) const;

  const std::shared_ptr<const ShardedSnapshot> snapshot_;
  const std::size_t begin_;
  const std::size_t end_;
};

/// The tentpole: a manifest-driven shard set with online updates. N
/// immutable RIDX shards (paged FileBackends) plus one mutable DeltaSegment
/// are searched together — serially through one engine over the
/// concatenated live view, or in parallel with a SharedBound best-so-far
/// exchange across parts — and compaction folds the delta into a new shard
/// under a new manifest generation, published by atomic rename.
///
/// Exactness: both modes return exactly the answers a monolithic engine
/// over the live rows would. Serial mode IS that engine (same collector,
/// same scan order, same step counts — bit-identical by construction).
/// Parallel mode re-derives the monolithic result from per-part results
/// by deterministic replay: part-order strict-< for 1-NN and
/// ordinal-then-distance sort for range are bit-identical ties included
/// (a foreign bound prunes only candidates strictly worse than the
/// winner — see SharedBound); k-NN replays the union of per-part top-k in
/// ordinal order, which is distance-exact always, and index-exact except
/// when distinct rows tie exactly at the k-th distance (heap eviction
/// among equal keys is structural, so WHICH tied row is reported may
/// differ from the serial scan).
///
/// Thread-safety: all methods are safe to call concurrently. Queries are
/// wait-free with respect to mutations (they run on snapshots); Compact
/// serializes against itself — a concurrent Compact is rejected with
/// kInvalidArgument rather than queued.
class ShardedIndex {
 public:
  /// Passkey: constructors are usable only through Open().
  struct Private {
    explicit Private() = default;
  };

  /// Opens every shard the manifest at `manifest_path` names (relative to
  /// the manifest's directory) and cross-checks each RIDX against its
  /// manifest entry (count and length must match; kCorruptHeader
  /// otherwise). The manifest must name at least one shard.
  [[nodiscard]] static StatusOr<std::unique_ptr<ShardedIndex>> Open(
      const std::string& manifest_path, const ShardedOptions& options = {});

  const std::string& manifest_path() const { return manifest_path_; }
  const ShardedOptions& options() const { return options_; }
  /// Common series length (fixed for the index's lifetime).
  std::size_t length() const { return length_; }

  std::uint64_t generation() const;
  std::size_t shard_count() const;
  /// Total rows named by the manifest (live + tombstoned), excluding delta.
  std::uint64_t shard_total() const;
  /// Live rows visible to a query right now (shards minus tombstones, plus
  /// live delta rows).
  std::size_t live_size() const;

  /// Appends a row to the delta segment; returns its global id under the
  /// CURRENT generation (shard_total() + delta ordinal). kInvalidArgument
  /// on length mismatch, kBadValue on non-finite values.
  [[nodiscard]] StatusOr<std::uint64_t> Insert(const Series& values,
                                               int label = 0);

  /// Tombstones the row with global id `global_id` (shard or delta row).
  /// Idempotent for shard rows; kOutOfRange for ids beyond the delta.
  [[nodiscard]] Status Remove(std::uint64_t global_id);

  /// The current (generation, delta epoch) view; cached — cheap when
  /// nothing changed since the last call.
  [[nodiscard]] std::shared_ptr<const ShardedSnapshot> Snapshot() const;

  /// A self-contained engine over the full live view of the current
  /// snapshot, for callers that drive QueryEngine directly (the serve
  /// layer swaps these atomically on reload). The engine owns its
  /// SnapshotView, which owns the snapshot — safe to outlive this index's
  /// next compaction.
  [[nodiscard]] std::shared_ptr<const QueryEngine> SnapshotEngine() const;

  /// 1-NN over all live rows. result.best_index is a GLOBAL id (or -1 on
  /// an empty index). result.counter carries total_steps: in serial mode
  /// bit-identical to the monolithic engine; in parallel mode the sum over
  /// parts (pruning differs by interleaving, answers do not).
  [[nodiscard]] StatusOr<ScanResult> Search(
      const Series& query, obs::QueryMetrics* metrics = nullptr) const;

  /// k-NN over all live rows, ascending by distance, global ids.
  [[nodiscard]] StatusOr<std::vector<Neighbor>> Knn(
      const Series& query, int k, StepCounter* counter = nullptr,
      obs::QueryMetrics* metrics = nullptr) const;

  /// Range query over all live rows, ascending by distance, global ids.
  [[nodiscard]] StatusOr<std::vector<Neighbor>> Range(
      const Series& query, double radius, StepCounter* counter = nullptr,
      obs::QueryMetrics* metrics = nullptr) const;

  /// Folds the current delta snapshot into a new RIDX shard
  /// (`shard-g<gen+1>.ridx` beside the manifest, built by BuildIndexFile),
  /// publishes manifest generation gen+1 (old shards + the new one, delta
  /// shard-tombstones absorbed into the manifest tombstone list) by atomic
  /// temp-write + rename, then swaps the new shard set in and retires the
  /// compacted delta prefix in ONE critical section — a concurrent
  /// Snapshot() never sees the compacted rows both in the new shard and in
  /// the delta. Mutations racing the compaction are preserved: inserts and
  /// deletes landing after the delta snapshot was captured carry over into
  /// the new generation (a delete of a row the compaction absorbed becomes
  /// a tombstone of that row's new global id). With an empty delta and no
  /// new tombstones this
  /// still publishes a (trivial) new generation. Returns the new
  /// generation. On any failure the previous generation remains intact and
  /// fully queryable. `fault` injects a crash at the manifest swap point
  /// (tests only).
  [[nodiscard]] StatusOr<std::uint64_t> Compact(
      const IndexBuildOptions& build,
      storage::ManifestWriteFault fault = storage::ManifestWriteFault::kNone);

  ShardedIndex(Private, std::string manifest_path, std::string dir,
               const ShardedOptions& options, storage::Manifest manifest,
               std::vector<std::shared_ptr<storage::FileBackend>> shards);

  /// Test-only: runs inside Compact right after the delta snapshot is
  /// captured, with no locks held — the window where online mutations race
  /// the compaction. Set before any compaction is triggered (unsynchronized
  /// by design; it is test scaffolding, not API).
  void set_pause_after_snapshot_for_tests(std::function<void()> hook) {
    pause_after_snapshot_for_tests_ = std::move(hook);
  }

 private:
  /// Parallel-mode cores (serial mode drives one engine directly).
  [[nodiscard]] StatusOr<ScanResult> SearchParallel(
      const std::shared_ptr<const ShardedSnapshot>& snap, const Series& query,
      obs::QueryMetrics* metrics) const;
  [[nodiscard]] StatusOr<std::vector<Neighbor>> KnnParallel(
      const std::shared_ptr<const ShardedSnapshot>& snap, const Series& query,
      int k, StepCounter* counter, obs::QueryMetrics* metrics) const;
  [[nodiscard]] StatusOr<std::vector<Neighbor>> RangeParallel(
      const std::shared_ptr<const ShardedSnapshot>& snap, const Series& query,
      double radius, StepCounter* counter, obs::QueryMetrics* metrics) const;

  /// First latched error across `snap`'s shards.
  [[nodiscard]] Status TakeShardError(const ShardedSnapshot& snap) const;

  const std::string manifest_path_;
  /// Directory shard file names resolve against.
  const std::string dir_;
  const ShardedOptions options_;
  const std::size_t length_;
  /// SYNC-EXEMPT: internally synchronized (LockRank::kDeltaSegment).
  DeltaSegment delta_;

  mutable Mutex view_mutex_{LockRank::kShardView};
  storage::Manifest manifest_ ROTIND_GUARDED_BY(view_mutex_);
  std::vector<std::shared_ptr<storage::FileBackend>> shards_
      ROTIND_GUARDED_BY(view_mutex_);
  /// Rejects a second concurrent Compact.
  bool compacting_ ROTIND_GUARDED_BY(view_mutex_) = false;
  /// SYNC-EXEMPT: test scaffolding, set once before compactions start.
  std::function<void()> pause_after_snapshot_for_tests_;
  mutable std::shared_ptr<const ShardedSnapshot> cached_
      ROTIND_GUARDED_BY(view_mutex_);
};

/// Owns a worker thread that runs ShardedIndex::Compact when triggered —
/// the "background compaction" half of the online-update story. One
/// compaction runs at a time; triggers during a run coalesce into one
/// follow-up pass. The destructor drains and joins.
class BackgroundCompactor {
 public:
  /// `index` must outlive the compactor.
  BackgroundCompactor(ShardedIndex& index, const IndexBuildOptions& build);
  ~BackgroundCompactor();

  BackgroundCompactor(const BackgroundCompactor&) = delete;
  BackgroundCompactor& operator=(const BackgroundCompactor&) = delete;

  /// Requests a compaction pass; returns immediately.
  void Trigger();

  /// Blocks until no pass is running and no trigger is pending.
  void WaitIdle();

  /// Status of the most recent completed pass (Ok before the first).
  [[nodiscard]] Status last_status() const;
  /// Completed passes.
  [[nodiscard]] std::uint64_t passes() const;

 private:
  void Loop();

  /// SYNC-EXEMPT: ShardedIndex is internally synchronized; the reference
  /// itself is set once in the constructor and never reseated.
  ShardedIndex& index_;
  const IndexBuildOptions build_;

  mutable Mutex mutex_{LockRank::kLeaf};
  CondVar wake_;  ///< Trigger arrived / stopping.
  CondVar idle_;  ///< Pass finished with nothing pending.
  bool pending_ ROTIND_GUARDED_BY(mutex_) = false;
  bool running_ ROTIND_GUARDED_BY(mutex_) = false;
  bool stopping_ ROTIND_GUARDED_BY(mutex_) = false;
  Status last_ ROTIND_GUARDED_BY(mutex_);
  std::uint64_t passes_ ROTIND_GUARDED_BY(mutex_) = 0;
  /// SYNC-EXEMPT: joined in the destructor, touched by no one else.
  std::thread worker_;
};

}  // namespace rotind

#endif  // ROTIND_INDEX_SHARDED_INDEX_H_
