#ifndef ROTIND_INDEX_PAA_H_
#define ROTIND_INDEX_PAA_H_

#include <cstddef>
#include <vector>

#include "src/core/series.h"
#include "src/core/step_counter.h"
#include "src/envelope/envelope.h"

namespace rotind {

/// Piecewise Aggregate Approximation: the series is divided into `dims`
/// equal-width segments and each segment is replaced by its mean. This is
/// the dimensionality-reduction used by the exact DTW-indexing machinery of
/// the paper's references [16] and [37], which the paper invokes for its
/// index-space lower bound under DTW.
struct PaaPoint {
  std::vector<double> values;
  std::size_t dims() const { return values.size(); }
};

/// Segment boundaries used by all PAA routines: segment d covers
/// [d*n/dims, (d+1)*n/dims).
PaaPoint PaaTransform(const Series& s, std::size_t dims);

/// PAA reduction of an envelope: per segment, the max of U (upper) and the
/// min of L (lower). Applied to a band-expanded wedge envelope this yields
/// a D-dimensional envelope that still encloses every candidate rotation.
struct PaaEnvelope {
  std::vector<double> upper;
  std::vector<double> lower;
  /// Number of raw points in each segment (needed by the bound).
  std::vector<std::size_t> segment_sizes;
  std::size_t dims() const { return upper.size(); }
};

PaaEnvelope PaaReduceEnvelope(const Envelope& env, std::size_t dims);

/// LB_PAA (refs [16][37]): for a candidate PAA point c and a reduced
/// envelope {Û, L̂},
///
///   LB_PAA(c, env)^2 = sum_d |seg_d| * ( (c_d - Û_d)^2 if c_d > Û_d
///                                        (c_d - L̂_d)^2 if c_d < L̂_d
///                                        0 otherwise )
///
/// lower-bounds LB_Keogh (and hence ED / banded DTW) between the raw series
/// and every sequence inside the raw envelope. Charges `dims` steps.
double LbPaa(const PaaPoint& c, const PaaEnvelope& env,
             StepCounter* counter = nullptr);

}  // namespace rotind

#endif  // ROTIND_INDEX_PAA_H_
