#include "src/index/paa.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rotind {
namespace {

/// Start of segment d for an n-point series split into `dims` segments.
std::size_t SegmentStart(std::size_t n, std::size_t dims, std::size_t d) {
  return d * n / dims;
}

}  // namespace

PaaPoint PaaTransform(const Series& s, std::size_t dims) {
  const std::size_t n = s.size();
  assert(dims >= 1 && dims <= n);
  PaaPoint out;
  out.values.resize(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    const std::size_t lo = SegmentStart(n, dims, d);
    const std::size_t hi = SegmentStart(n, dims, d + 1);
    double acc = 0.0;
    for (std::size_t i = lo; i < hi; ++i) acc += s[i];
    out.values[d] = acc / static_cast<double>(hi - lo);
  }
  return out;
}

PaaEnvelope PaaReduceEnvelope(const Envelope& env, std::size_t dims) {
  const std::size_t n = env.size();
  assert(dims >= 1 && dims <= n);
  PaaEnvelope out;
  out.upper.resize(dims);
  out.lower.resize(dims);
  out.segment_sizes.resize(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    const std::size_t lo = SegmentStart(n, dims, d);
    const std::size_t hi = SegmentStart(n, dims, d + 1);
    double u = env.upper[lo];
    double l = env.lower[lo];
    for (std::size_t i = lo + 1; i < hi; ++i) {
      u = std::max(u, env.upper[i]);
      l = std::min(l, env.lower[i]);
    }
    out.upper[d] = u;
    out.lower[d] = l;
    out.segment_sizes[d] = hi - lo;
  }
  return out;
}

double LbPaa(const PaaPoint& c, const PaaEnvelope& env, StepCounter* counter) {
  assert(c.dims() == env.dims());
  double acc = 0.0;
  for (std::size_t d = 0; d < c.values.size(); ++d) {
    const double v = c.values[d];
    double diff = 0.0;
    if (v > env.upper[d]) {
      diff = v - env.upper[d];
    } else if (v < env.lower[d]) {
      diff = v - env.lower[d];
    }
    acc += static_cast<double>(env.segment_sizes[d]) * diff * diff;
  }
  AddSteps(counter, c.values.size());
  if (counter != nullptr) ++counter->lower_bound_evals;
  return std::sqrt(acc);
}

}  // namespace rotind
