#ifndef ROTIND_INDEX_DELTA_H_
#define ROTIND_INDEX_DELTA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "src/core/series.h"
#include "src/core/status.h"
#include "src/core/sync.h"

namespace rotind {

/// Immutable view of a DeltaSegment at one instant: the LIVE delta rows
/// flattened into contiguous storage (so a search can borrow row pointers
/// zero-copy for the snapshot's lifetime), plus the shard-row tombstones
/// accumulated since the last compaction. Snapshots are shared_ptr-owned
/// and self-contained — a query or compaction holding one is unaffected by
/// concurrent inserts, deletes, or a DropCompacted.
struct DeltaSnapshot {
  std::size_t length = 0;  ///< Common series length.
  /// Mutation counter at capture time; two equal epochs mean identical
  /// contents, which is what lets callers cache derived state per epoch.
  std::uint64_t epoch = 0;
  /// Total delta rows EVER inserted (live + tombstoned) at capture time —
  /// the prefix a compaction built from this snapshot consumes.
  std::size_t rows_seen = 0;
  std::vector<double> values;  ///< live_count() x length, row-major.
  std::vector<int> labels;     ///< One per live row.
  /// live row -> its delta ordinal (insertion position), ascending.
  std::vector<std::size_t> ordinals;
  /// Deleted global shard-row ids, strictly ascending.
  std::vector<std::uint64_t> shard_tombstones;

  std::size_t live_count() const { return labels.size(); }
  const double* row(std::size_t i) const {
    return values.data() + i * length;
  }
};

/// The mutable in-memory segment of a sharded index: accepts inserts and
/// tombstone deletes between compactions, and is searched alongside the
/// immutable RIDX shards via an exact scan over its snapshot. Internally
/// synchronized (LockRank::kDeltaSegment); all methods are safe to call
/// concurrently, and Snapshot() is cheap when nothing changed (the built
/// snapshot is cached per epoch).
///
/// Ids: a delta row is named by its ORDINAL — its insertion position,
/// counted from the last compaction. ShardedIndex maps ordinals into its
/// global id space (shard rows first, delta rows after).
class DeltaSegment {
 public:
  /// `length` is the series length every insert must match (the shard
  /// set's common length).
  explicit DeltaSegment(std::size_t length);

  std::size_t length() const { return length_; }

  /// Appends a row; returns its delta ordinal. kInvalidArgument on a
  /// length mismatch, kBadValue on non-finite values.
  [[nodiscard]] StatusOr<std::size_t> Insert(const Series& values,
                                             int label = 0);

  /// Tombstones delta row `ordinal`. kOutOfRange for unknown ordinals;
  /// tombstoning an already-dead row is a harmless no-op.
  [[nodiscard]] Status TombstoneDeltaRow(std::size_t ordinal);

  /// Tombstones a global SHARD row (validated against the shard set by the
  /// caller — the segment just accumulates the set for the next manifest).
  /// Idempotent.
  void TombstoneShardRow(std::uint64_t global_row);

  /// Number of live (not tombstoned) delta rows.
  [[nodiscard]] std::size_t live_count() const;

  /// Captures the current contents. Cached: repeated calls without an
  /// intervening mutation return the same shared_ptr.
  [[nodiscard]] std::shared_ptr<const DeltaSnapshot> Snapshot() const;

  /// Retires state a compaction consumed: the first `compacted.rows_seen`
  /// delta rows (now either in the new shard or gone) and the shard
  /// tombstones the new manifest absorbed. Rows inserted and tombstones
  /// added AFTER the snapshot was captured survive, with their ordinals
  /// shifted down by rows_seen — except a post-snapshot tombstone on a
  /// row the compaction carried into the new shard, which is translated
  /// into a shard tombstone of that row's new global id
  /// (`new_shard_base` + its live position in the snapshot) so an
  /// acknowledged delete is never silently resurrected.
  void DropCompacted(const DeltaSnapshot& compacted,
                     std::uint64_t new_shard_base);

 private:
  const std::size_t length_;

  mutable Mutex mutex_{LockRank::kDeltaSegment};
  std::vector<Series> rows_ ROTIND_GUARDED_BY(mutex_);
  std::vector<int> labels_ ROTIND_GUARDED_BY(mutex_);
  std::vector<bool> dead_ ROTIND_GUARDED_BY(mutex_);
  std::set<std::uint64_t> shard_tombstones_ ROTIND_GUARDED_BY(mutex_);
  std::uint64_t epoch_ ROTIND_GUARDED_BY(mutex_) = 0;
  mutable std::shared_ptr<const DeltaSnapshot> cached_
      ROTIND_GUARDED_BY(mutex_);
};

}  // namespace rotind

#endif  // ROTIND_INDEX_DELTA_H_
