#include "src/index/index_io.h"

#include <algorithm>
#include <string>
#include <vector>

#include "src/fourier/spectral.h"
#include "src/index/paa.h"
#include "src/storage/index_file.h"

namespace rotind {

Status BuildIndexFile(const Dataset& db, const IndexBuildOptions& options,
                      const std::string& path) {
  if (db.empty()) {
    return Status::InvalidArgument("cannot build an index of 0 objects");
  }
  const std::size_t n = db.items[0].size();
  for (std::size_t i = 1; i < db.size(); ++i) {
    if (db.items[i].size() != n) {
      return Status::InvalidArgument(
          "database is ragged: object " + std::to_string(i) + " has length " +
          std::to_string(db.items[i].size()) + ", expected " +
          std::to_string(n));
    }
  }
  if (n < 2) {
    return Status::InvalidArgument("objects must have length >= 2, got " +
                                   std::to_string(n));
  }
  if (options.sig_dims > n / 2) {
    return Status::InvalidArgument(
        "sig_dims " + std::to_string(options.sig_dims) + " exceeds the " +
        std::to_string(n / 2) + " spectral coefficients of length-" +
        std::to_string(n) + " objects");
  }
  if (options.paa_dims > n) {
    return Status::InvalidArgument(
        "paa_dims " + std::to_string(options.paa_dims) +
        " exceeds the object length " + std::to_string(n));
  }
  if (!db.labels.empty() && db.labels.size() != db.size()) {
    return Status::InvalidArgument(
        "labels/items mismatch: " + std::to_string(db.labels.size()) +
        " labels for " + std::to_string(db.size()) + " objects");
  }

  storage::IndexBuildData extras;
  extras.sig_dims = options.sig_dims;
  extras.paa_dims = options.paa_dims;
  // ri_dims clamps instead of rejecting (see IndexBuildOptions): all rows
  // of one file share n, so the clamp stays uniform within the file.
  extras.ri_dims = std::min(options.ri_dims, n / 2);
  extras.labels = db.labels;
  extras.signatures.reserve(db.size() * options.sig_dims);
  extras.paa.reserve(db.size() * options.paa_dims);
  extras.ri_signatures.reserve(db.size() * extras.ri_dims);
  for (const Series& s : db.items) {
    if (options.sig_dims > 0) {
      const SpectralSignature sig = MakeSpectralSignature(s, options.sig_dims);
      extras.signatures.insert(extras.signatures.end(), sig.values.begin(),
                               sig.values.end());
    }
    if (options.paa_dims > 0) {
      const PaaPoint paa = PaaTransform(s, options.paa_dims);
      extras.paa.insert(extras.paa.end(), paa.values.begin(),
                        paa.values.end());
    }
    if (extras.ri_dims > 0) {
      const VecSignature ri = MakeVecSignature(s, extras.ri_dims);
      extras.ri_signatures.insert(extras.ri_signatures.end(),
                                  ri.values.begin(), ri.values.end());
    }
  }
  return storage::WriteIndexFile(db, extras, options.page_size_bytes, path);
}

}  // namespace rotind
