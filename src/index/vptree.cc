#include "src/index/vptree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "src/core/random.h"

namespace rotind {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Mixed-dimensionality points would make this loop read past the shorter
/// buffer; the constructor and the query entry points reject them on all
/// build types, so equal sizes are an established invariant here.
double L2(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

[[noreturn]] void DieDimsMismatch(const char* what, std::size_t got,
                                  std::size_t want) {
  std::fprintf(stderr,
               "rotind: VpTree: %s has %zu dimensions, tree points have %zu; "
               "mixed-dimensionality points are not comparable\n",
               what, got, want);
  std::abort();
}

}  // namespace

VpTree::VpTree(std::vector<std::vector<double>> points, std::uint64_t seed,
               std::size_t leaf_size)
    : points_(std::move(points)),
      leaf_size_(std::max<std::size_t>(1, leaf_size)) {
  if (points_.empty()) return;
  // Hard invariant on every build type (the L2 metric reads both buffers up
  // to the first one's size): all points share one dimensionality.
  for (const std::vector<double>& p : points_) {
    if (p.size() != points_[0].size()) {
      DieDimsMismatch("a point", p.size(), points_[0].size());
    }
  }
  std::vector<int> ids(points_.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int>(i);
  Rng rng(seed);
  root_ = BuildRecursive(&ids, 0, ids.size(), &rng);
}

int VpTree::BuildRecursive(std::vector<int>* ids, std::size_t lo,
                           std::size_t hi, Rng* rng) {
  Node node;
  const std::size_t count = hi - lo;
  if (count <= leaf_size_) {
    node.is_leaf = true;
    node.bucket.assign(ids->begin() + static_cast<long>(lo),
                       ids->begin() + static_cast<long>(hi));
    nodes_.push_back(std::move(node));
    return static_cast<int>(nodes_.size()) - 1;
  }

  // Pick a random vantage point and move it to the front.
  const std::size_t pick = lo + rng->NextBounded(count);
  std::swap((*ids)[lo], (*ids)[pick]);
  const int vp = (*ids)[lo];

  // Partition the remainder by distance to the vantage point.
  const std::size_t mid = lo + 1 + (count - 1) / 2;
  std::nth_element(ids->begin() + static_cast<long>(lo) + 1,
                   ids->begin() + static_cast<long>(mid),
                   ids->begin() + static_cast<long>(hi), [&](int a, int b) {
                     return L2(points_[static_cast<std::size_t>(a)],
                               points_[static_cast<std::size_t>(vp)]) <
                            L2(points_[static_cast<std::size_t>(b)],
                               points_[static_cast<std::size_t>(vp)]);
                   });
  node.vantage = vp;
  node.median = L2(points_[static_cast<std::size_t>((*ids)[mid])],
                   points_[static_cast<std::size_t>(vp)]);

  const int self = static_cast<int>(nodes_.size());
  nodes_.push_back(node);
  const int left = BuildRecursive(ids, lo + 1, mid + 1, rng);
  const int right = (mid + 1 < hi) ? BuildRecursive(ids, mid + 1, hi, rng)
                                   : -1;
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

/// Shared search state: a bounded max-heap of the best k (true-distance)
/// hits plus work counters.
struct KnnState {
  std::vector<std::pair<double, int>> heap;  // max-heap on distance
  int k = 1;
  std::uint64_t metric_evals = 0;
  std::uint64_t refine_calls = 0;

  double threshold() const {
    return static_cast<int>(heap.size()) < k
               ? std::numeric_limits<double>::infinity()
               : heap.front().first;
  }
  void Offer(double distance, int id) {
    if (distance >= threshold()) return;
    heap.emplace_back(distance, id);
    std::push_heap(heap.begin(), heap.end());
    if (static_cast<int>(heap.size()) > k) {
      std::pop_heap(heap.begin(), heap.end());
      heap.pop_back();
    }
  }
};

double VpTree::Metric(const std::vector<double>& a,
                      const std::vector<double>& b, KnnState* state,
                      StepCounter* counter) const {
  ++state->metric_evals;
  AddSteps(counter, a.size());
  return L2(a, b);
}

VpTree::Result VpTree::NearestNeighbor(
    const std::vector<double>& query,
    const std::function<double(int, double)>& refine,
    StepCounter* counter) const {
  const KnnResult knn = KNearestNeighbors(query, 1, refine, counter);
  Result result;
  result.metric_evals = knn.metric_evals;
  result.refine_calls = knn.refine_calls;
  if (knn.neighbors.empty()) {
    result.best_distance = kInf;
    return result;
  }
  result.best_id = knn.neighbors[0].first;
  result.best_distance = knn.neighbors[0].second;
  return result;
}

VpTree::KnnResult VpTree::KNearestNeighbors(
    const std::vector<double>& query, int k,
    const std::function<double(int, double)>& refine,
    StepCounter* counter) const {
  KnnResult result;
  if (root_ < 0 || k < 1) return result;
  if (query.size() != dims()) {
    DieDimsMismatch("the query", query.size(), dims());
  }
  KnnState state;
  state.k = k;
  SearchRecursive(root_, query, refine, k, &state, counter);
  result.metric_evals = state.metric_evals;
  result.refine_calls = state.refine_calls;
  std::sort(state.heap.begin(), state.heap.end());
  result.neighbors.reserve(state.heap.size());
  for (const auto& [distance, id] : state.heap) {
    result.neighbors.emplace_back(id, distance);
  }
  return result;
}

void VpTree::SearchRecursive(
    int node_id, const std::vector<double>& query,
    const std::function<double(int, double)>& refine, int k, KnnState* state,
    StepCounter* counter) const {
  if (node_id < 0) return;
  const Node& node = nodes_[static_cast<std::size_t>(node_id)];

  if (node.is_leaf) {
    // Table 7 leaf handling: compute signature lower bounds, visit in
    // ascending order, and refine only entries whose bound beats the
    // current k-th best.
    std::vector<std::pair<double, int>> order;
    order.reserve(node.bucket.size());
    for (int id : node.bucket) {
      order.emplace_back(
          Metric(points_[static_cast<std::size_t>(id)], query, state,
                 counter),
          id);
    }
    std::sort(order.begin(), order.end());
    for (const auto& [lb, id] : order) {
      if (lb >= state->threshold()) break;
      ++state->refine_calls;
      state->Offer(refine(id, state->threshold()), id);
    }
    return;
  }

  const double d_vp =
      Metric(points_[static_cast<std::size_t>(node.vantage)], query, state,
             counter);
  if (d_vp < state->threshold()) {
    ++state->refine_calls;
    state->Offer(refine(node.vantage, state->threshold()), node.vantage);
  }

  // Triangle-inequality pruning via |d_vp - d(vp, p)|: the near side is
  // always reachable (bound 0); the far side only if the query sits within
  // threshold of the splitting shell. Since the metric lower-bounds the
  // true distance, a pruned subtree cannot improve the result set.
  const bool near_left = d_vp <= node.median;
  const int first = near_left ? node.left : node.right;
  const int second = near_left ? node.right : node.left;
  const double second_bound =
      near_left ? node.median - d_vp : d_vp - node.median;

  SearchRecursive(first, query, refine, k, state, counter);
  if (second_bound < state->threshold()) {
    SearchRecursive(second, query, refine, k, state, counter);
  }
}

}  // namespace rotind
