#include "src/search/lcss_search.h"

#include <algorithm>
#include <cmath>

namespace rotind {

std::size_t LcssMatchUpperBound(const double* q, const double* upper,
                                const double* lower, std::size_t n,
                                double epsilon,
                                std::size_t required_matches,
                                StepCounter* counter) {
  if (counter != nullptr) ++counter->lower_bound_evals;
  std::size_t misses = 0;
  const std::size_t allowed_misses =
      required_matches > n ? 0 : n - required_matches;
  for (std::size_t i = 0; i < n; ++i) {
    if (q[i] > upper[i] + epsilon || q[i] < lower[i] - epsilon) {
      ++misses;
      if (misses > allowed_misses) {
        if (counter != nullptr) {
          counter->steps += i + 1;
          ++counter->early_abandons;
        }
        return 0;  // cannot reach required_matches
      }
    }
  }
  AddSteps(counter, n);
  return n - misses;
}

LcssMatchResult HMergeLcss(const double* c, const WedgeTree& tree,
                           const std::vector<int>& wedge_set,
                           const LcssOptions& options,
                           std::size_t best_so_far_length,
                           StepCounter* counter) {
  const std::size_t n = tree.length();
  LcssMatchResult result;
  // To be reported, a rotation must STRICTLY beat the best so far.
  std::size_t required = best_so_far_length + 1;

  std::vector<int> stack(wedge_set.begin(), wedge_set.end());
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();

    const std::size_t bound =
        LcssMatchUpperBound(c, tree.Upper(id), tree.Lower(id), n,
                            options.epsilon, required, counter);
    if (bound < required) continue;  // the whole wedge is pruned

    if (!tree.IsLeaf(id)) {
      stack.push_back(tree.LeftChild(id));
      stack.push_back(tree.RightChild(id));
      continue;
    }

    const std::size_t len =
        LcssLength(tree.LeafSeries(id), c, n, options, counter);
    if (len >= required) {
      required = len + 1;
      result.length = len;
      result.rotation_index = static_cast<std::size_t>(id);
      result.pruned = false;
    }
  }
  return result;
}

LcssWedgeSearcher::LcssWedgeSearcher(const Series& query,
                                     const LcssOptions& lcss,
                                     const RotationOptions& rotation,
                                     StepCounter* counter)
    : lcss_(lcss),
      // The delta window expansion of the wedge envelopes reuses the DTW
      // band machinery (identical sliding-extremum semantics).
      tree_(query, rotation,
            lcss.delta < 0 ? static_cast<int>(query.size()) - 1 : lcss.delta,
            Linkage::kAverage, WedgeHierarchy::kClustered, counter) {
  wedge_set_ = tree_.WedgeSetForK(
      std::max(2, static_cast<int>(tree_.max_k()) / 16));
}

LcssMatchResult LcssWedgeSearcher::Match(const double* c,
                                         std::size_t best_so_far_length,
                                         StepCounter* counter) const {
  return HMergeLcss(c, tree_, wedge_set_, lcss_, best_so_far_length, counter);
}

LcssScanResult LcssSearchDatabase(const std::vector<Series>& db,
                                  const Series& query,
                                  const LcssOptions& options,
                                  const RotationOptions& rotation,
                                  bool use_wedges) {
  LcssScanResult result;
  const std::size_t n = query.size();

  if (use_wedges) {
    LcssWedgeSearcher searcher(query, options, rotation, &result.counter);
    const RotationSet& rots = searcher.tree().rotations();
    std::size_t best = 0;
    for (std::size_t i = 0; i < db.size(); ++i) {
      const LcssMatchResult m =
          searcher.Match(db[i].data(), best, &result.counter);
      if (!m.pruned && m.length > best) {
        best = m.length;
        result.best_index = static_cast<int>(i);
        result.best_length = m.length;
        result.best_shift = rots.shift_of(m.rotation_index);
        result.best_mirrored = rots.mirrored_of(m.rotation_index);
      }
    }
  } else {
    RotationSet rots(query, rotation);
    std::size_t best = 0;
    for (std::size_t i = 0; i < db.size(); ++i) {
      const RotationMatch m =
          RotationInvariantLcss(rots, db[i].data(), options, &result.counter);
      const std::size_t len = static_cast<std::size_t>(
          std::llround((1.0 - m.distance) * static_cast<double>(n)));
      if (len > best) {
        best = len;
        result.best_index = static_cast<int>(i);
        result.best_length = len;
        result.best_shift = rots.shift_of(m.rotation_index);
        result.best_mirrored = rots.mirrored_of(m.rotation_index);
      }
    }
  }
  result.best_similarity =
      n == 0 ? 0.0
             : static_cast<double>(result.best_length) /
                   static_cast<double>(n);
  return result;
}

}  // namespace rotind
