#include "src/search/engine.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <exception>
#include <limits>
#include <memory>
#include <queue>
#include <thread>

#include "src/core/contracts.h"
#include "src/core/sync.h"
#include "src/distance/euclidean.h"
#include "src/envelope/lower_bound.h"
#include "src/fourier/spectral.h"
#include "src/search/lcss_search.h"
#include "src/simd/simd.h"

namespace rotind {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// The blocked drivers hand FlatDataset tiles straight to the blocked ED
// kernels; the two lane widths are one constant seen from two layers.
static_assert(FlatDataset::kTileLanes == simd::kBlockLanes,
              "SoA tile width must match the simd kernel lane width");

bool IsTerminal(StageKind kind) {
  return kind != StageKind::kFftMagnitude &&
         kind != StageKind::kVecSignature && kind != StageKind::kLbImproved;
}

/// Observability bucket for each cascade stage.
obs::StageId StageIdFor(StageKind kind) {
  switch (kind) {
    case StageKind::kFftMagnitude: return obs::StageId::kFftFilter;
    case StageKind::kVecSignature: return obs::StageId::kVecSignature;
    case StageKind::kLbImproved: return obs::StageId::kLbImproved;
    case StageKind::kWedge: return obs::StageId::kWedge;
    case StageKind::kExactScan: return obs::StageId::kExactScan;
    case StageKind::kFullScan: return obs::StageId::kFullScan;
    case StageKind::kFullScanBanded: return obs::StageId::kFullScanBanded;
  }
  return obs::StageId::kExactScan;
}

using obs::QueryLatencyScope;
using obs::StageScope;

/// Per-candidate outcome of one cascade pass, in the thresholded contract
/// the drivers expect: found implies distance < the threshold passed in.
struct CandidateMatch {
  double distance = kInf;
  int shift = 0;
  bool mirrored = false;
  bool found = false;
};

/// A cheap lower-bound filter: returns true when the candidate provably
/// cannot beat `threshold`. `index` is the candidate's database position —
/// filters backed by resident per-object sections (stored RIDX v2
/// signature rows) key off it; purely computational filters ignore it.
class FilterStage {
 public:
  virtual ~FilterStage() = default;
  virtual bool Prune(std::size_t index, const double* c, double threshold,
                     StepCounter* counter) const = 0;
  /// The observability bucket this filter's work and candidate flow land
  /// in, so a multi-filter cascade attributes pruning power per stage.
  virtual obs::StageId stage_id() const = 0;
};

/// Rotation-invariant FFT-magnitude lower bound (paper Sections 4.2/5.3):
/// charged n*log2(n) steps per use; sound for Euclidean only.
class FftMagnitudeFilter final : public FilterStage {
 public:
  FftMagnitudeFilter(const Series& query, StepCounter* counter)
      : n_(query.size()),
        signature_(MakeSpectralSignature(query, query.size() / 2)) {
    AddSetupSteps(counter, FftStepCost(n_));
  }

  bool Prune(std::size_t /*index*/, const double* c, double threshold,
             StepCounter* counter) const override {
    AddSteps(counter, FftStepCost(n_));
    if (counter != nullptr) ++counter->lower_bound_evals;
    const SpectralSignature sig =
        MakeSpectralSignature(Series(c, c + n_), n_ / 2);
    return SignatureDistance(signature_, sig, nullptr) >= threshold;
  }

  obs::StageId stage_id() const override { return obs::StageId::kFftFilter; }

 private:
  std::size_t n_;
  SpectralSignature signature_;
};

/// Band-pooled rotation/mirror-invariant vector pre-filter (the VecSignature
/// embedding): ||v(Q) - v(C)||_2 <= RED(Q, C), sound for Euclidean only.
/// Two candidate paths with bit-identical distances: stored RIDX v2 rows
/// (an O(dims) resident lookup) or an on-the-fly embedding (one FFT) —
/// identical because the stored rows were produced by the same
/// MakeVecSignature over the same candidate bytes.
class VecSignatureFilter final : public FilterStage {
 public:
  VecSignatureFilter(const Series& query, std::size_t dims,
                     const double* stored_rows, std::size_t stored_dims,
                     StepCounter* counter)
      : n_(query.size()), rows_(stored_rows) {
    if (n_ < 2) return;  // no spectrum to pool; Prune never fires
    // The stored dimensionality is authoritative when rows exist — both
    // sides of the distance must live in the same pooled space.
    dims_ = rows_ != nullptr
                ? stored_dims
                : std::min(std::max<std::size_t>(dims, 1), n_ / 2);
    signature_ = MakeVecSignature(query, dims_);
    AddSetupSteps(counter, FftStepCost(n_));
  }

  bool Prune(std::size_t index, const double* c, double threshold,
             StepCounter* counter) const override {
    if (counter != nullptr) ++counter->lower_bound_evals;
    if (n_ < 2) return false;
    double d;
    if (rows_ != nullptr) {
      // Same accumulation order as VecSignatureDistance (query minus
      // candidate, ascending band), so the two paths agree bit-for-bit.
      const double* row = rows_ + index * dims_;
      double acc = 0.0;
      for (std::size_t b = 0; b < dims_; ++b) {
        const double diff = signature_.values[b] - row[b];
        acc += diff * diff;
      }
      AddSteps(counter, dims_);
      d = std::sqrt(acc);
    } else {
      AddSteps(counter, FftStepCost(n_));
      const VecSignature sig = MakeVecSignature(Series(c, c + n_), dims_);
      d = VecSignatureDistance(signature_, sig, nullptr);
    }
    return d >= threshold;
  }

  obs::StageId stage_id() const override {
    return obs::StageId::kVecSignature;
  }

 private:
  std::size_t n_;
  const double* rows_ = nullptr;  ///< count x dims_ resident matrix or null.
  std::size_t dims_ = 0;
  VecSignature signature_;
};

/// Two-pass LB_Improved second-chance filter (see envelope/lower_bound.h):
/// pass 1 is LB_Keogh of the candidate against the band-expanded rotation
/// wedge, pass 2 adds the gap between the UNexpanded wedge and the sliding
/// envelope of the candidate's projection. Tightness ordering makes it a
/// strict second chance: every candidate LB_Keogh would prune, this prunes
/// too, plus some LB_Keogh misses. Sound for kEuclidean (band 0) and for
/// banded DTW terminals; CascadeSpec::Normalized drops the unsound
/// compositions.
class LbImprovedFilter final : public FilterStage {
 public:
  LbImprovedFilter(const Series& query, const EngineOptions& options,
                   StepCounter* counter) {
    const RotationSet rots(query, options.rotation);
    const std::size_t n = rots.length();
    if (options.kind == DistanceKind::kDtw) {
      // A negative band means the terminal warps without constraint; the
      // full-width band keeps the bound sound there (DTW_{n-1} is the
      // unconstrained distance), and ExpandedForDtw clamps oversized bands.
      band_ = options.band < 0 ? static_cast<int>(n == 0 ? 0 : n - 1)
                               : options.band;
    }
    if (n == 0 || rots.count() == 0) return;  // nothing to bound
    // The wedge encloses EVERY rotation (and mirror) the terminal will
    // consider, so one envelope bounds the whole orbit (paper Section 4.1).
    wedge_ = Envelope::FromSeries(rots.rotation(0), n);
    for (std::size_t r = 1; r < rots.count(); ++r) {
      wedge_.MergeSeries(rots.rotation(r), n);
    }
    AddSetupSteps(counter, rots.count() * n);
    expanded_ = wedge_.ExpandedForDtw(band_);
    AddSetupSteps(counter, 2 * n);
  }

  bool Prune(std::size_t /*index*/, const double* c, double threshold,
             StepCounter* counter) const override {
    if (wedge_.size() == 0) return false;
    const double sq_threshold =
        std::isinf(threshold) ? threshold : threshold * threshold;
    const double sq =
        LbImprovedSquared(c, wedge_, expanded_, band_, sq_threshold, counter);
    // kAbandoned means the accumulator tripped the limit mid-pass; a
    // finite result prunes on >= exactly like the other filters.
    return std::isinf(sq) || sq >= sq_threshold;
  }

  obs::StageId stage_id() const override {
    return obs::StageId::kLbImproved;
  }

 private:
  int band_ = 0;
  Envelope wedge_;
  Envelope expanded_;
};

/// The exact terminal evaluator at the end of every cascade.
class TerminalStage {
 public:
  virtual ~TerminalStage() = default;
  virtual CandidateMatch Evaluate(const double* c, double threshold,
                                  StepCounter* counter) = 0;
  /// Hook fired by the driver when the collector's threshold improves
  /// (dynamic-K re-probing for wedges; no-op otherwise).
  virtual void NotifyImproved(const double* trigger, double best,
                              StepCounter* counter) {
    (void)trigger;
    (void)best;
    (void)counter;
  }

  /// Whether this terminal can score a whole SoA tile group at once under
  /// the given driver options. Default: per-candidate only.
  virtual bool SupportsBlocked(const SimdOptions& simd) const {
    (void)simd;
    return false;
  }
  /// Scores the first `valid` lanes of one tile (FlatDataset::tile).
  /// out[l].distance must be the lane's exact distance (or kAbandoned for
  /// an early-abandoned lane) with shift/mirrored resolved; out[l].found is
  /// left false — the DRIVER resolves it against the live threshold so the
  /// stats attribution matches the per-candidate path exactly.
  virtual void EvaluateBlock(const double* tile, std::size_t valid,
                             double threshold, CandidateMatch* out,
                             StepCounter* counter) {
    (void)tile;
    (void)valid;
    (void)threshold;
    (void)out;
    (void)counter;
  }
};

/// LB_Keogh wedge H-Merge for ED/DTW (the paper's contribution).
class WedgeTerminal final : public TerminalStage {
 public:
  WedgeTerminal(const Series& query, const EngineOptions& options,
                StepCounter* counter, obs::WedgeStats* wedge_stats)
      : wedge_stats_(wedge_stats),
        searcher_(query, MakeWedgeOptions(options), counter) {}

  static WedgeSearchOptions MakeWedgeOptions(const EngineOptions& options) {
    WedgeSearchOptions w;
    static_cast<WedgePolicy&>(w) = options.wedge;
    w.kind = options.kind;
    w.band = options.band;
    w.rotation = options.rotation;
    return w;
  }

  CandidateMatch Evaluate(const double* c, double threshold,
                          StepCounter* counter) override {
    CandidateMatch out;
    const HMergeResult r =
        searcher_.Distance(c, threshold, counter, wedge_stats_);
    if (!r.abandoned) {
      const RotationSet& rots = searcher_.tree().rotations();
      out.distance = r.distance;
      out.shift = rots.shift_of(r.rotation_index);
      out.mirrored = rots.mirrored_of(r.rotation_index);
      out.found = true;
    }
    return out;
  }

  void NotifyImproved(const double* trigger, double best,
                      StepCounter* counter) override {
    searcher_.AdaptK(trigger, best, counter, wedge_stats_);
  }

 private:
  obs::WedgeStats* wedge_stats_;
  WedgeSearcher searcher_;
};

/// Wedge pruning in the LCSS similarity domain (paper Section 4.3): the
/// engine's distance threshold 1 - L/n converts to a required match count,
/// and the envelope bound prunes wedges that cannot reach it.
class LcssWedgeTerminal final : public TerminalStage {
 public:
  LcssWedgeTerminal(const Series& query, const LcssOptions& lcss,
                    const RotationOptions& rotation, StepCounter* counter)
      : n_(query.size()),
        lcss_(lcss),
        searcher_(query, lcss, rotation, counter) {}

  CandidateMatch Evaluate(const double* c, double threshold,
                          StepCounter* counter) override {
    CandidateMatch out;
    const double n = static_cast<double>(n_ == 0 ? 1 : n_);
    // Largest length whose distance is still >= threshold: Match must only
    // find lengths strictly beyond it. Guard the floor against FP rounding
    // at integer boundaries using the exact distance expression.
    long bound = -1;
    if (threshold <= 1.0) {
      bound = static_cast<long>(std::floor(n * (1.0 - threshold)));
      bound = std::clamp(bound, -1L, static_cast<long>(n_));
      while (bound >= 0 && 1.0 - static_cast<double>(bound) / n < threshold) {
        --bound;
      }
      while (bound < static_cast<long>(n_) &&
             1.0 - static_cast<double>(bound + 1) / n >= threshold) {
        ++bound;
      }
    }
    if (bound < 0) {
      // Even a zero-length match (distance exactly 1.0) beats the
      // threshold, so nothing can be pruned: every rotation ties at
      // distance <= 1.0 and an exact scan settles which wins.
      const RotationMatch m = RotationInvariantLcss(
          searcher_.tree().rotations(), c, lcss_, counter);
      out.distance = m.distance;
      out.shift = searcher_.tree().rotations().shift_of(m.rotation_index);
      out.mirrored =
          searcher_.tree().rotations().mirrored_of(m.rotation_index);
      out.found = m.distance < threshold;
      return out;
    }
    const LcssMatchResult r = searcher_.Match(
        c, static_cast<std::size_t>(bound), counter);
    if (!r.pruned) {
      const RotationSet& rots = searcher_.tree().rotations();
      out.distance = 1.0 - static_cast<double>(r.length) / n;
      out.shift = rots.shift_of(r.rotation_index);
      out.mirrored = rots.mirrored_of(r.rotation_index);
      out.found = true;
    }
    return out;
  }

 private:
  std::size_t n_;
  LcssOptions lcss_;
  LcssWedgeSearcher searcher_;
};

/// Rotation-scan terminal: full or early-abandoning evaluation of every
/// candidate rotation, dispatched through the unified Measure layer (with
/// the specialized ED/DTW kernels kept on the hot path for step parity
/// with the paper's Tables 1-3).
class ScanTerminal final : public TerminalStage {
 public:
  enum class Mode { kEarlyAbandon, kFull, kFullBanded };

  ScanTerminal(const Series& query, const EngineOptions& options, Mode mode)
      : mode_(mode),
        kind_(options.kind),
        band_(options.band),
        rotations_(query, options.rotation) {
    MeasureParams params;
    params.band = options.band;
    params.lcss = options.lcss;
    measure_ = MakeMeasure(options.kind, params);
  }

  CandidateMatch Evaluate(const double* c, double threshold,
                          StepCounter* counter) override {
    RotationMatch match;
    switch (kind_) {
      case DistanceKind::kEuclidean:
        match = mode_ == Mode::kEarlyAbandon
                    ? EarlyAbandonRotationEuclidean(rotations_, c, threshold,
                                                    counter)
                    : RotationInvariantEuclidean(rotations_, c, counter);
        break;
      case DistanceKind::kDtw:
        switch (mode_) {
          case Mode::kEarlyAbandon:
            match = EarlyAbandonRotationDtw(rotations_, c, band_, threshold,
                                            counter);
            break;
          case Mode::kFull:
            match = RotationInvariantDtw(rotations_, c, /*band=*/-1, counter);
            break;
          case Mode::kFullBanded:
            match = RotationInvariantDtw(rotations_, c, band_, counter);
            break;
        }
        break;
      case DistanceKind::kLcss:
        match = mode_ == Mode::kEarlyAbandon
                    ? MeasureRotationScan(c, threshold, counter)
                    : MeasureFullScan(c, counter);
        break;
    }

    // Full (non-abandoning) modes report any distance; translate into the
    // thresholded contract the drivers expect.
    CandidateMatch out;
    if (!match.abandoned && match.distance < threshold) {
      out.distance = match.distance;
      out.shift = rotations_.shift_of(match.rotation_index);
      out.mirrored = rotations_.mirrored_of(match.rotation_index);
      out.found = true;
    }
    return out;
  }

  bool SupportsBlocked(const SimdOptions& simd) const override {
    if (kind_ != DistanceKind::kEuclidean) return false;
    return mode_ == Mode::kEarlyAbandon ? simd.blocked_early_abandon
                                        : simd.blocked_full_scan;
  }

  // Blocked ED over one SoA tile, per-lane identical to the scalar
  // rotation drivers in src/distance/rotation.cc: each lane tracks its own
  // best SQUARED distance across rotations (strict <, first rotation wins
  // ties) and takes one sqrt at the end. Vectorizing across candidates
  // instead of within one keeps every lane's accumulation chain in scalar
  // order, so distances — and therefore answers — are bit-identical.
  void EvaluateBlock(const double* tile, std::size_t valid, double threshold,
                     CandidateMatch* out, StepCounter* counter) override {
    const std::size_t n = rotations_.length();
    double sq_best[simd::kBlockLanes];
    std::size_t best_r[simd::kBlockLanes];
    bool lane_found[simd::kBlockLanes];
    double out_sq[simd::kBlockLanes];
    const bool ea = mode_ == Mode::kEarlyAbandon;
    const double sq_threshold =
        std::isinf(threshold) ? kInf : threshold * threshold;
    for (std::size_t l = 0; l < simd::kBlockLanes; ++l) {
      sq_best[l] = ea ? sq_threshold : kInf;
      best_r[l] = 0;
      lane_found[l] = false;
    }
    for (std::size_t r = 0; r < rotations_.count(); ++r) {
      const double* rot = rotations_.rotation(r);
      if (ea) {
        // Per-lane limits tighten as the lane's own best improves —
        // exactly EarlyAbandonRotationEuclidean with this tile group's
        // entry threshold as best-so-far.
        EarlyAbandonSquaredEuclideanBlock(rot, tile, n, valid, sq_best,
                                          out_sq, counter);
      } else {
        SquaredEuclideanBlock(rot, tile, n, valid, out_sq, counter);
        if (counter != nullptr) counter->full_evals += valid;
      }
      for (std::size_t l = 0; l < simd::kBlockLanes; ++l) {
        if (out_sq[l] < sq_best[l]) {
          sq_best[l] = out_sq[l];
          best_r[l] = r;
          lane_found[l] = true;
        }
      }
    }
    for (std::size_t l = 0; l < simd::kBlockLanes; ++l) {
      out[l] = CandidateMatch{};
      if (ea && !lane_found[l]) continue;  // distance stays kAbandoned/kInf
      out[l].distance = std::sqrt(sq_best[l]);
      out[l].shift = rotations_.shift_of(best_r[l]);
      out[l].mirrored = rotations_.mirrored_of(best_r[l]);
    }
  }

 private:
  /// Generic early-abandoning scan over the Measure interface: the path a
  /// new distance measure gets for free.
  RotationMatch MeasureRotationScan(const double* c, double best_so_far,
                                    StepCounter* counter) const {
    RotationMatch best{best_so_far, 0, true};
    double limit = best_so_far;
    for (std::size_t r = 0; r < rotations_.count(); ++r) {
      const double d = measure_->Distance(rotations_.rotation(r), c,
                                          rotations_.length(), limit, counter);
      if (!std::isinf(d) && d < limit) {
        limit = d;
        best.distance = d;
        best.rotation_index = r;
        best.abandoned = false;
      }
    }
    if (best.abandoned) best.distance = kAbandoned;
    return best;
  }

  RotationMatch MeasureFullScan(const double* c, StepCounter* counter) const {
    RotationMatch best{kInf, 0, false};
    for (std::size_t r = 0; r < rotations_.count(); ++r) {
      const double d = measure_->FullDistance(
          rotations_.rotation(r), c, rotations_.length(), counter);
      if (d < best.distance) {
        best.distance = d;
        best.rotation_index = r;
      }
    }
    return best;
  }

  Mode mode_;
  DistanceKind kind_;
  int band_;
  RotationSet rotations_;
  std::unique_ptr<Measure> measure_;
};

/// A compiled per-query cascade: ordered filters then one terminal. When
/// `metrics` is non-null, every stage's candidate flow, step-count delta,
/// early abandons, and wall time are attributed to its obs::StageId —
/// including setup charged during construction — so the per-stage totals
/// sum exactly to the query's StepCounter.
class QueryCascade {
 public:
  /// `stored_vec_sigs`/`stored_vec_sig_dims` feed the kVecSignature filter
  /// its resident RIDX v2 rows (nullptr/0 → embed candidates on the fly).
  QueryCascade(const Series& query, const EngineOptions& options,
               StepCounter* counter, obs::QueryMetrics* metrics = nullptr,
               const CancelToken* cancel = nullptr,
               const double* stored_vec_sigs = nullptr,
               std::size_t stored_vec_sig_dims = 0)
      : metrics_(metrics), cancel_(cancel) {
    for (StageKind kind : options.cascade.stages) {
      if (IsTerminal(kind)) {
        terminal_id_ = StageIdFor(kind);
        StageScope scope(StatsFor(terminal_id_), counter);
        switch (kind) {
          case StageKind::kWedge:
            if (options.kind == DistanceKind::kLcss) {
              terminal_ = std::make_unique<LcssWedgeTerminal>(
                  query, options.lcss, options.rotation, counter);
            } else {
              terminal_ = std::make_unique<WedgeTerminal>(
                  query, options, counter,
                  metrics_ != nullptr ? &metrics_->wedge : nullptr);
            }
            break;
          case StageKind::kExactScan:
            terminal_ = std::make_unique<ScanTerminal>(
                query, options, ScanTerminal::Mode::kEarlyAbandon);
            break;
          case StageKind::kFullScan:
            terminal_ = std::make_unique<ScanTerminal>(
                query, options, ScanTerminal::Mode::kFull);
            break;
          case StageKind::kFullScanBanded:
            terminal_ = std::make_unique<ScanTerminal>(
                query, options, ScanTerminal::Mode::kFullBanded);
            break;
          case StageKind::kFftMagnitude:
          case StageKind::kVecSignature:
          case StageKind::kLbImproved:
            break;  // not terminal
        }
        break;  // normalization guarantees the terminal is last
      }
      switch (kind) {
        case StageKind::kFftMagnitude: {
          StageScope scope(StatsFor(obs::StageId::kFftFilter), counter);
          filters_.push_back(
              std::make_unique<FftMagnitudeFilter>(query, counter));
          break;
        }
        case StageKind::kVecSignature: {
          StageScope scope(StatsFor(obs::StageId::kVecSignature), counter);
          filters_.push_back(std::make_unique<VecSignatureFilter>(
              query, options.vec_sig_dims, stored_vec_sigs,
              stored_vec_sig_dims, counter));
          break;
        }
        case StageKind::kLbImproved: {
          StageScope scope(StatsFor(obs::StageId::kLbImproved), counter);
          filters_.push_back(
              std::make_unique<LbImprovedFilter>(query, options, counter));
          break;
        }
        default:
          break;  // terminals handled above
      }
    }
    assert(terminal_ != nullptr && "cascade must be normalized");
  }

  CandidateMatch Compare(std::size_t index, const double* c, double threshold,
                         StepCounter* counter) {
    // Cooperative cancellation: the token is polled at every stage
    // boundary — before each filter and before the terminal — so a fired
    // deadline stops the cascade within one stage's work. Once fired, the
    // cascade stays cancelled and every later Compare is a no-op; the
    // driver checks cancelled() and abandons the scan.
    if (CheckCancelBoundary()) return CandidateMatch{};
    for (const auto& filter : filters_) {
      obs::StageStats* stats = StatsFor(filter->stage_id());
      bool pruned;
      {
        StageScope scope(stats, counter);
        pruned = filter->Prune(index, c, threshold, counter);
      }
      if (stats != nullptr) {
        ++stats->candidates_entered;
        ++(pruned ? stats->candidates_pruned : stats->candidates_survived);
      }
      if (pruned) return CandidateMatch{};
      if (CheckCancelBoundary()) return CandidateMatch{};
    }
    obs::StageStats* stats = StatsFor(terminal_id_);
    CandidateMatch m;
    {
      StageScope scope(stats, counter);
      m = terminal_->Evaluate(c, threshold, counter);
    }
    if (stats != nullptr) {
      ++stats->candidates_entered;
      ++(m.found ? stats->candidates_survived : stats->candidates_pruned);
    }
    return m;
  }

  /// Whether the whole cascade can score SoA tile groups: no filter stages
  /// (a blocked pass would bypass them) and a terminal that opted in.
  bool SupportsBlocked(const SimdOptions& simd) const {
    return filters_.empty() && terminal_->SupportsBlocked(simd);
  }

  /// Blocked counterpart of Compare for one tile group. Cancellation is
  /// polled once per group (the per-candidate path polls per candidate; a
  /// fired token still stops within one group's work). Stats attribution:
  /// step deltas land on the terminal stage here, and the DRIVER calls
  /// RecordTerminalOutcome per lane once it resolves found against the
  /// live threshold — summing to exactly the per-candidate totals.
  void CompareBlock(const double* tile, std::size_t valid, double threshold,
                    CandidateMatch* out, StepCounter* counter) {
    if (CheckCancelBoundary()) return;
    StageScope scope(StatsFor(terminal_id_), counter);
    terminal_->EvaluateBlock(tile, valid, threshold, out, counter);
  }

  /// Candidate-flow bookkeeping for one blocked-scored lane.
  void RecordTerminalOutcome(bool found) {
    obs::StageStats* stats = StatsFor(terminal_id_);
    if (stats != nullptr) {
      ++stats->candidates_entered;
      ++(found ? stats->candidates_survived : stats->candidates_pruned);
    }
  }

  /// True once the token has fired; stays true (the scan result is void).
  bool cancelled() const { return !cancel_status_.ok(); }
  const Status& cancel_status() const { return cancel_status_; }

  void NotifyImproved(const double* trigger, double best,
                      StepCounter* counter) {
    StageScope scope(StatsFor(terminal_id_), counter);
    terminal_->NotifyImproved(trigger, best, counter);
  }

 private:
  obs::StageStats* StatsFor(obs::StageId id) {
    return metrics_ != nullptr ? &metrics_->stage(id) : nullptr;
  }

  /// Polls the token (if any), latches the first failure, and reports
  /// whether the cascade is (now) cancelled.
  bool CheckCancelBoundary() {
    if (cancel_ != nullptr && cancel_status_.ok()) {
      Status s = cancel_->Check();
      if (!s.ok()) cancel_status_ = std::move(s);
    }
    return !cancel_status_.ok();
  }

  obs::QueryMetrics* metrics_;
  const CancelToken* cancel_;
  Status cancel_status_;
  obs::StageId terminal_id_ = obs::StageId::kExactScan;
  std::vector<std::unique_ptr<FilterStage>> filters_;
  std::unique_ptr<TerminalStage> terminal_;
};

constexpr std::size_t kNoHoldout = std::numeric_limits<std::size_t>::max();

/// Folds a query's accumulated backend I/O into the observability layer:
/// object/page totals into IndexStats, pool activity into the kDiskFetch
/// stage. Called only for backends that do real I/O, so in-memory runs
/// keep their exact metrics shape.
void FoldFetchIo(const storage::FetchStats& io, obs::StageStats* fetch_stats,
                 obs::QueryMetrics* metrics) {
  if (metrics != nullptr) {
    metrics->index.object_fetches += io.object_fetches;
    metrics->index.page_reads += io.page_reads;
  }
  if (fetch_stats != nullptr) {
    fetch_stats->candidates_entered += io.object_fetches;
    fetch_stats->candidates_survived += io.object_fetches;
    fetch_stats->pool_hits += io.pool_hits;
    fetch_stats->pages_read += io.page_reads;
    fetch_stats->pool_evictions += io.pool_evictions;
    fetch_stats->io_bytes += io.bytes_read;
    fetch_stats->io_retries += io.retries;
    fetch_stats->io_faults_absorbed += io.faults_absorbed;
  }
}

/// The one generic driver behind 1-NN, k-NN, and range search. `Fetch`
/// maps a database index to a storage::SeriesHandle (fetched exactly once
/// per candidate and held alive across the cascade pass plus the improve
/// hook); `Collector` supplies the pruning threshold and absorbs accepted
/// matches:
///   double threshold() const;
///   bool Offer(std::size_t index, const CandidateMatch&);  // true -> improved
template <typename Fetch, typename Collector>
void RunScan(std::size_t db_size, const Fetch& fetch, std::size_t holdout,
             QueryCascade& cascade, Collector& collector,
             StepCounter* counter) {
  for (std::size_t i = 0; i < db_size; ++i) {
    if (i == holdout) continue;
    const storage::SeriesHandle h = fetch(i);
    // An invalid handle means a storage I/O failure; the backend has
    // latched the Status (surfaced by the Checked entry points).
    if (!h.valid()) continue;
    const CandidateMatch m =
        cascade.Compare(i, h.data(), collector.threshold(), counter);
    // A fired cancellation token voids the whole scan: stop immediately,
    // leaving whatever partial state the collector holds for the caller to
    // DISCARD (the Checked entry points return the typed cancel Status).
    if (cascade.cancelled()) return;
    if (m.found && collector.Offer(i, m)) {
      cascade.NotifyImproved(h.data(), collector.threshold(), counter);
    }
  }
}

/// Blocked driver: scores SoA tile groups 8 candidates at a time against
/// the cascade terminal, used when the candidates live in an in-memory
/// FlatDataset (fetches are free borrows there, so skipping them is
/// observationally identical) and the cascade opted in. Lane outcomes are
/// resolved against the LIVE collector threshold in candidate order, so
/// answers, counters, and per-stage stats match RunScan exactly for the
/// full-scan terminals (see SimdOptions for the early-abandon caveat).
template <typename Collector>
void RunBlockedScan(const FlatDataset& flat, std::size_t holdout,
                    QueryCascade& cascade, Collector& collector,
                    StepCounter* counter) {
  constexpr std::size_t kLanes = FlatDataset::kTileLanes;
  const std::size_t db_size = flat.size();
  for (std::size_t g = 0; g < flat.tile_groups(); ++g) {
    const std::size_t base = g * kLanes;
    const std::size_t valid = std::min(kLanes, db_size - base);
    if (holdout >= base && holdout < base + valid) {
      // The held-out candidate shares this tile group: score its
      // groupmates through the per-candidate path (the reference
      // semantics) rather than teaching the kernels about gaps.
      for (std::size_t i = base; i < base + valid; ++i) {
        if (i == holdout) continue;
        const CandidateMatch m =
            cascade.Compare(i, flat.data(i), collector.threshold(), counter);
        if (cascade.cancelled()) return;
        if (m.found && collector.Offer(i, m)) {
          cascade.NotifyImproved(flat.data(i), collector.threshold(),
                                 counter);
        }
      }
      continue;
    }
    CandidateMatch block[kLanes];
    cascade.CompareBlock(flat.tile(g), valid, collector.threshold(), block,
                         counter);
    if (cascade.cancelled()) return;
    for (std::size_t l = 0; l < valid; ++l) {
      CandidateMatch m = block[l];
      // Resolve found against the LIVE threshold (a lane earlier in this
      // group may have improved it), exactly as the per-candidate terminal
      // would have compared.
      m.found = m.distance < collector.threshold();
      cascade.RecordTerminalOutcome(m.found);
      if (m.found && collector.Offer(base + l, m)) {
        cascade.NotifyImproved(flat.data(base + l), collector.threshold(),
                               counter);
      }
    }
  }
}

/// Best-so-far collector (1-NN).
class BestCollector {
 public:
  explicit BestCollector(ScanResult* result) : result_(result) {}

  double threshold() const { return best_; }

  bool Offer(std::size_t index, const CandidateMatch& m) {
    if (m.distance >= best_) return false;
    best_ = m.distance;
    result_->best_index = static_cast<int>(index);
    result_->best_distance = m.distance;
    result_->best_shift = m.shift;
    result_->best_mirrored = m.mirrored;
    return true;
  }

 private:
  ScanResult* result_;
  double best_ = kInf;
};

/// k-th-best heap collector (k-NN): a max-heap whose top is the current
/// k-th best distance, playing best-so-far's pruning role.
class KnnCollector {
 public:
  explicit KnnCollector(int k) : k_(k) {}

  double threshold() const {
    return static_cast<int>(heap_.size()) < k_ ? kInf : heap_.top().distance;
  }

  bool Offer(std::size_t index, const CandidateMatch& m) {
    if (m.distance >= threshold()) return false;
    heap_.push(Neighbor{static_cast<int>(index), m.distance, m.shift,
                        m.mirrored});
    if (static_cast<int>(heap_.size()) > k_) heap_.pop();
    return static_cast<int>(heap_.size()) == k_;
  }

  std::vector<Neighbor> Take() {
    std::vector<Neighbor> out;
    out.reserve(heap_.size());
    while (!heap_.empty()) {
      out.push_back(heap_.top());
      heap_.pop();
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

 private:
  struct FurtherFirst {
    bool operator()(const Neighbor& a, const Neighbor& b) const {
      return a.distance < b.distance;
    }
  };

  int k_;
  std::priority_queue<Neighbor, std::vector<Neighbor>, FurtherFirst> heap_;
};

/// Wraps a collector so its pruning threshold also honors a cross-engine
/// SharedBound (ShardedIndex's parallel shard search). The effective
/// threshold is min(inner, nextafter(shared, +inf)): the one-ulp outward
/// nudge means a candidate EQUAL to a foreign bound still reaches the
/// inner collector, so tie-breaking stays local-scan-order and sharded
/// answers replay to the monolithic result exactly (see SharedBound).
/// Acceptance and result bookkeeping are delegated untouched; every inner
/// improvement is published.
template <typename Inner>
class SharedBoundCollector {
 public:
  SharedBoundCollector(Inner& inner, SharedBound* shared)
      : inner_(inner), shared_(shared) {}

  double threshold() const {
    // nextafter(+inf, +inf) == +inf, so an unpublished bound is a no-op.
    return std::min(inner_.threshold(),
                    std::nextafter(shared_->load(), kInf));
  }

  bool Offer(std::size_t index, const CandidateMatch& m) {
    const bool improved = inner_.Offer(index, m);
    if (improved) shared_->Publish(inner_.threshold());
    return improved;
  }

 private:
  Inner& inner_;
  SharedBound* shared_;
};

/// Radius collector (range search): fixed threshold, never "improves".
class RangeCollector {
 public:
  explicit RangeCollector(double radius)
      : radius_(radius),
        // Distances exactly equal to the radius must be reported; pruning
        // kernels use strict comparisons, so nudge the threshold one ulp
        // outward. The floor keeps the SQUARED threshold from underflowing
        // to zero for tiny radii (a radius-0 query must still report exact
        // duplicates).
        threshold_(std::max(std::nextafter(radius, kInf), 1e-150)) {}

  double threshold() const { return threshold_; }

  bool Offer(std::size_t index, const CandidateMatch& m) {
    if (m.distance <= radius_) {
      out_.push_back(Neighbor{static_cast<int>(index), m.distance, m.shift,
                              m.mirrored});
    }
    return false;
  }

  std::vector<Neighbor> Take() {
    std::sort(out_.begin(), out_.end(),
              [](const Neighbor& a, const Neighbor& b) {
                return a.distance < b.distance;
              });
    return std::move(out_);
  }

 private:
  double radius_;
  double threshold_;
  std::vector<Neighbor> out_;
};

}  // namespace

CascadeSpec CascadeSpec::ForAlgorithm(ScanAlgorithm algorithm,
                                      DistanceKind kind) {
  CascadeSpec spec;
  switch (algorithm) {
    case ScanAlgorithm::kBruteForce:
      spec.stages = {StageKind::kFullScan};
      break;
    case ScanAlgorithm::kBruteForceBanded:
      spec.stages = {StageKind::kFullScanBanded};
      break;
    case ScanAlgorithm::kEarlyAbandon:
      spec.stages = {StageKind::kExactScan};
      break;
    case ScanAlgorithm::kFftLowerBound:
      // Sound for Euclidean only; other measures degrade to the
      // early-abandoning scan (the legacy behavior, now explicit).
      spec.stages = {StageKind::kFftMagnitude, StageKind::kExactScan};
      break;
    case ScanAlgorithm::kWedge:
      spec.stages = {StageKind::kWedge};
      break;
  }
  return spec.Normalized(kind);
}

CascadeSpec CascadeSpec::Normalized(DistanceKind kind) const {
  CascadeSpec out;
  out.stages.clear();
  for (StageKind stage : stages) {
    if (!IsTerminal(stage)) {
      switch (stage) {
        case StageKind::kFftMagnitude:
        case StageKind::kVecSignature:
          // Magnitude-spectrum bounds hold for Euclidean distance only.
          if (kind != DistanceKind::kEuclidean) continue;
          break;
        case StageKind::kLbImproved:
          // LCSS similarity is not bounded by envelope gap sums.
          if (kind == DistanceKind::kLcss) continue;
          break;
        default:
          break;
      }
      out.stages.push_back(stage);
      continue;
    }
    out.stages.push_back(stage);  // first terminal ends the cascade
    break;
  }
  if (out.stages.empty() || !IsTerminal(out.stages.back())) {
    out.stages.push_back(StageKind::kExactScan);
  }
  // A BANDED lower bound does not lower-bound UNCONSTRAINED DTW (the
  // kFullScan terminal computes band -1): keeping kLbImproved there would
  // falsely dismiss true matches. kFullScanBanded and the other DTW
  // terminals warp inside the configured band, where the bound is exact.
  if (kind == DistanceKind::kDtw &&
      out.stages.back() == StageKind::kFullScan) {
    out.stages.erase(std::remove(out.stages.begin(), out.stages.end(),
                                 StageKind::kLbImproved),
                     out.stages.end());
  }
  return out;
}

EngineOptions EngineOptionsFrom(const ScanOptions& options,
                                ScanAlgorithm algorithm) {
  EngineOptions out;
  out.kind = options.kind;
  out.band = options.band;
  out.lcss = options.lcss;
  out.rotation = options.rotation;
  out.wedge = options.wedge;
  out.cascade = CascadeSpec::ForAlgorithm(algorithm, options.kind);
  return out;
}

void ParallelFor(std::size_t count, int num_threads,
                 const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // The 256 cap bounds thread-stack memory and creation cost when a caller
  // passes an absurd thread count; it is documented in engine.h and
  // mirrored by the CLI's --threads validation.
  const int workers = std::max(
      1, std::min(num_threads, static_cast<int>(std::min(
                                   count, static_cast<std::size_t>(256)))));
  if (workers == 1) {
    // Inline path: an exception from fn propagates directly.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // A throwing fn must never escape a worker thread (that would
  // std::terminate the process). Capture the first exception, let every
  // worker drain the remaining queue without running further items, join,
  // and rethrow on the calling thread.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  Mutex error_mutex;  // kLeaf: nothing else is acquired under it.
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
           i < count; i = next.fetch_add(1, std::memory_order_relaxed)) {
        if (failed.load(std::memory_order_relaxed)) break;
        try {
          fn(i);
        } catch (...) {
          {
            MutexLock lock(error_mutex);
            if (first_error == nullptr) {
              first_error = std::current_exception();
            }
          }
          failed.store(true, std::memory_order_relaxed);
          break;
        }
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

QueryEngine::QueryEngine(const FlatDataset& db, const EngineOptions& options)
    : options_(options) {
  options_.cascade = options.cascade.Normalized(options.kind);
  ROTIND_CONTRACT(
      options_.storage.backend != storage::BackendKind::kFile,
      "opening an index file can fail; the borrowing constructor cannot "
      "report it — use QueryEngine::Open for the file backend");
  StatusOr<std::unique_ptr<storage::StorageBackend>> opened =
      storage::OpenBackend(options_.storage, &db);
  // In-memory and simulated kinds cannot fail with a non-null source; the
  // release-build escape hatch for a (contract-violating) file request is
  // the zero-copy default.
  backend_ = opened.ok() ? *std::move(opened)
                         : std::make_unique<storage::InMemoryBackend>(db);
}

QueryEngine::QueryEngine(const std::vector<Series>& db,
                         const EngineOptions& options)
    : vec_(&db), options_(options) {
  options_.cascade = options.cascade.Normalized(options.kind);
}

QueryEngine::QueryEngine(std::unique_ptr<storage::StorageBackend> backend,
                         const EngineOptions& options)
    : backend_(std::move(backend)), options_(options) {
  options_.cascade = options.cascade.Normalized(options.kind);
  ROTIND_CONTRACT(backend_ != nullptr,
                  "the backend-owning constructor needs a backend");
}

StatusOr<std::unique_ptr<QueryEngine>> QueryEngine::Open(
    const EngineOptions& options, const FlatDataset* in_memory_source) {
  StatusOr<std::unique_ptr<storage::StorageBackend>> backend =
      storage::OpenBackend(options.storage, in_memory_source);
  if (!backend.ok()) return backend.status();
  return std::make_unique<QueryEngine>(*std::move(backend), options);
}

std::size_t QueryEngine::database_size() const {
  return vec_ != nullptr ? vec_->size() : backend_->size();
}

std::size_t QueryEngine::database_length() const {
  if (vec_ != nullptr) return vec_->empty() ? 0 : (*vec_)[0].size();
  return backend_->length();
}

const FlatDataset* QueryEngine::BlockedSource() const {
  if (vec_ != nullptr) return nullptr;
  // Only the plain in-memory borrow qualifies: its fetches charge nothing,
  // so reading tiles directly is observationally identical. A
  // dynamic_cast, not a kind check — FaultInjectingBackend forwards the
  // inner backend_kind() while its fetches inject faults, and those must
  // keep flowing through FetchCandidate.
  const auto* mem =
      dynamic_cast<const storage::InMemoryBackend*>(backend_.get());
  return mem != nullptr ? mem->flat() : nullptr;
}

storage::SeriesHandle QueryEngine::FetchCandidate(
    std::size_t i, storage::FetchStats* io) const {
  if (vec_ != nullptr) {
    return storage::SeriesHandle::Borrowed((*vec_)[i].data(),
                                           (*vec_)[i].size());
  }
  return backend_->Fetch(i, io);
}

bool QueryEngine::BackendDoesIo() const {
  return backend_ != nullptr &&
         backend_->backend_kind() != storage::BackendKind::kInMemory;
}

void QueryEngine::ResolveStoredVecSigs(std::size_t query_length,
                                       const double** rows,
                                       std::size_t* dims) const {
  *rows = nullptr;
  *dims = 0;
  // dynamic_cast, not a kind check: FaultInjectingBackend forwards the
  // inner backend_kind() but its fetches inject faults; its candidates
  // must be embedded from the fetched bytes, not trusted resident rows.
  const auto* fb = dynamic_cast<const storage::FileBackend*>(backend_.get());
  if (fb == nullptr) return;
  const storage::IndexFile& file = fb->file();
  if (file.ri_dims() == 0) return;
  // The stored dimensionality must fit the query's pooled space
  // (dims <= n/2) or the two embedding sides would be incomparable.
  if (query_length < 2 || file.ri_dims() > query_length / 2) return;
  *rows = file.ri_signatures().data();
  *dims = file.ri_dims();
}

ScanResult QueryEngine::Search(const Series& query,
                               obs::QueryMetrics* metrics) const {
  return SearchLeaveOneOut(query, kNoHoldout, metrics);
}

ScanResult QueryEngine::SearchLeaveOneOut(const Series& query,
                                          std::size_t holdout,
                                          obs::QueryMetrics* metrics) const {
  return SearchImpl(query, holdout, metrics, nullptr, nullptr, nullptr,
                    nullptr);
}

ScanResult QueryEngine::SearchShared(const Series& query, std::size_t holdout,
                                     SharedBound* shared,
                                     obs::QueryMetrics* metrics) const {
  ROTIND_CONTRACT(shared != nullptr, "SearchShared needs a SharedBound");
  return SearchImpl(query, holdout, metrics, nullptr, nullptr, nullptr,
                    shared);
}

ScanResult QueryEngine::SearchImpl(const Series& query, std::size_t holdout,
                                   obs::QueryMetrics* metrics,
                                   const CancelToken* cancel,
                                   Status* interrupted,
                                   bool* fetch_failed,
                                   SharedBound* shared) const {
  ScanResult result;
  result.best_distance = kInf;
  const QueryLatencyScope latency(metrics);
  const double* vec_sig_rows = nullptr;
  std::size_t vec_sig_dims = 0;
  ResolveStoredVecSigs(query.size(), &vec_sig_rows, &vec_sig_dims);
  QueryCascade cascade(query, options_, &result.counter, metrics, cancel,
                       vec_sig_rows, vec_sig_dims);
  BestCollector inner(&result);
  storage::FetchStats fetch_io;
  obs::StageStats* fetch_stats =
      metrics != nullptr && BackendDoesIo()
          ? &metrics->stage(obs::StageId::kDiskFetch)
          : nullptr;
  const FlatDataset* blocked = BlockedSource();
  const auto drive = [&](auto& collector) {
    if (blocked != nullptr && blocked->length() == query.size() &&
        cascade.SupportsBlocked(options_.simd)) {
      RunBlockedScan(*blocked, holdout, cascade, collector, &result.counter);
    } else {
      RunScan(
          database_size(),
          [&](std::size_t i) {
            const StageScope scope(fetch_stats, &result.counter);
            storage::SeriesHandle h = FetchCandidate(i, &fetch_io);
            if (!h.valid() && fetch_failed != nullptr) *fetch_failed = true;
            return h;
          },
          holdout, cascade, collector, &result.counter);
    }
  };
  if (shared != nullptr) {
    SharedBoundCollector<BestCollector> wrapped(inner, shared);
    drive(wrapped);
  } else {
    drive(inner);
  }
  if (BackendDoesIo()) FoldFetchIo(fetch_io, fetch_stats, metrics);
  if (interrupted != nullptr && cascade.cancelled()) {
    *interrupted = cascade.cancel_status();
  }
  return result;
}

std::vector<Neighbor> QueryEngine::Knn(const Series& query, int k,
                                       StepCounter* counter,
                                       obs::QueryMetrics* metrics) const {
  return KnnLeaveOneOut(query, k, kNoHoldout, counter, metrics);
}

std::vector<Neighbor> QueryEngine::KnnLeaveOneOut(
    const Series& query, int k, std::size_t holdout, StepCounter* counter,
    obs::QueryMetrics* metrics) const {
  return KnnImpl(query, k, holdout, counter, metrics, nullptr, nullptr,
                 nullptr, nullptr);
}

std::vector<Neighbor> QueryEngine::KnnShared(
    const Series& query, int k, std::size_t holdout, SharedBound* shared,
    StepCounter* counter, obs::QueryMetrics* metrics) const {
  ROTIND_CONTRACT(shared != nullptr, "KnnShared needs a SharedBound");
  return KnnImpl(query, k, holdout, counter, metrics, nullptr, nullptr,
                 nullptr, shared);
}

std::vector<Neighbor> QueryEngine::KnnImpl(const Series& query, int k,
                                           std::size_t holdout,
                                           StepCounter* counter,
                                           obs::QueryMetrics* metrics,
                                           const CancelToken* cancel,
                                           Status* interrupted,
                                           bool* fetch_failed,
                                           SharedBound* shared) const {
  StepCounter local;
  StepCounter* cnt = counter != nullptr ? counter : &local;
  const QueryLatencyScope latency(metrics);
  const double* vec_sig_rows = nullptr;
  std::size_t vec_sig_dims = 0;
  ResolveStoredVecSigs(query.size(), &vec_sig_rows, &vec_sig_dims);
  QueryCascade cascade(query, options_, cnt, metrics, cancel, vec_sig_rows,
                       vec_sig_dims);
  KnnCollector inner(k);
  storage::FetchStats fetch_io;
  obs::StageStats* fetch_stats =
      metrics != nullptr && BackendDoesIo()
          ? &metrics->stage(obs::StageId::kDiskFetch)
          : nullptr;
  const FlatDataset* blocked = BlockedSource();
  const auto drive = [&](auto& collector) {
    if (blocked != nullptr && blocked->length() == query.size() &&
        cascade.SupportsBlocked(options_.simd)) {
      RunBlockedScan(*blocked, holdout, cascade, collector, cnt);
    } else {
      RunScan(
          database_size(),
          [&](std::size_t i) {
            const StageScope scope(fetch_stats, cnt);
            storage::SeriesHandle h = FetchCandidate(i, &fetch_io);
            if (!h.valid() && fetch_failed != nullptr) *fetch_failed = true;
            return h;
          },
          holdout, cascade, collector, cnt);
    }
  };
  if (shared != nullptr) {
    SharedBoundCollector<KnnCollector> wrapped(inner, shared);
    drive(wrapped);
  } else {
    drive(inner);
  }
  if (BackendDoesIo()) FoldFetchIo(fetch_io, fetch_stats, metrics);
  if (interrupted != nullptr && cascade.cancelled()) {
    *interrupted = cascade.cancel_status();
  }
  return inner.Take();
}

std::vector<Neighbor> QueryEngine::Range(const Series& query, double radius,
                                         StepCounter* counter,
                                         obs::QueryMetrics* metrics) const {
  return RangeImpl(query, radius, counter, metrics, nullptr, nullptr,
                   nullptr);
}

std::vector<Neighbor> QueryEngine::RangeImpl(const Series& query,
                                             double radius,
                                             StepCounter* counter,
                                             obs::QueryMetrics* metrics,
                                             const CancelToken* cancel,
                                             Status* interrupted,
                                             bool* fetch_failed) const {
  StepCounter local;
  StepCounter* cnt = counter != nullptr ? counter : &local;
  const QueryLatencyScope latency(metrics);
  const double* vec_sig_rows = nullptr;
  std::size_t vec_sig_dims = 0;
  ResolveStoredVecSigs(query.size(), &vec_sig_rows, &vec_sig_dims);
  QueryCascade cascade(query, options_, cnt, metrics, cancel, vec_sig_rows,
                       vec_sig_dims);
  RangeCollector collector(radius);
  storage::FetchStats fetch_io;
  obs::StageStats* fetch_stats =
      metrics != nullptr && BackendDoesIo()
          ? &metrics->stage(obs::StageId::kDiskFetch)
          : nullptr;
  const FlatDataset* blocked = BlockedSource();
  if (blocked != nullptr && blocked->length() == query.size() &&
      cascade.SupportsBlocked(options_.simd)) {
    RunBlockedScan(*blocked, kNoHoldout, cascade, collector, cnt);
  } else {
    RunScan(
        database_size(),
        [&](std::size_t i) {
          const StageScope scope(fetch_stats, cnt);
          storage::SeriesHandle h = FetchCandidate(i, &fetch_io);
          if (!h.valid() && fetch_failed != nullptr) *fetch_failed = true;
          return h;
        },
        kNoHoldout, cascade, collector, cnt);
  }
  if (BackendDoesIo()) FoldFetchIo(fetch_io, fetch_stats, metrics);
  if (interrupted != nullptr && cascade.cancelled()) {
    *interrupted = cascade.cancel_status();
  }
  return collector.Take();
}

Status QueryEngine::ValidateQuery(const Series& query) const {
  if (query.empty()) {
    return Status::InvalidArgument("query is empty");
  }
  for (std::size_t j = 0; j < query.size(); ++j) {
    if (!std::isfinite(query[j])) {
      return Status::InvalidArgument("query value " + std::to_string(j) +
                                     " is NaN or Inf");
    }
  }
  if (vec_ != nullptr) {
    // Legacy storage may be ragged; name the offending item.
    for (std::size_t i = 0; i < vec_->size(); ++i) {
      if ((*vec_)[i].size() != query.size()) {
        return Status::InvalidArgument(
            "db item " + std::to_string(i) + " has length " +
            std::to_string((*vec_)[i].size()) + ", query has length " +
            std::to_string(query.size()));
      }
    }
  } else if (database_size() > 0 && database_length() != query.size()) {
    return Status::InvalidArgument(
        "query has length " + std::to_string(query.size()) +
        ", database items have length " + std::to_string(database_length()));
  }
  return Status::Ok();
}

StatusOr<ScanResult> QueryEngine::SearchChecked(
    const Series& query, const CancelToken* cancel,
    obs::QueryMetrics* metrics) const {
  Status valid = ValidateQuery(query);
  if (!valid.ok()) return valid;
  if (cancel != nullptr) {
    // An already-fired token must not pay for cascade setup (the wedge
    // tree build is real work).
    Status early = cancel->Check();
    if (!early.ok()) return early;
  }
  Status interrupted;
  bool fetch_failed = false;
  ScanResult result = SearchImpl(query, kNoHoldout, metrics, cancel,
                                 &interrupted, &fetch_failed, nullptr);
  if (!interrupted.ok()) return interrupted;
  // A storage failure mid-scan silently skips candidates in the unchecked
  // path; here it must invalidate the result. The per-query flag is
  // authoritative (the shared latch can be cleared by a concurrent
  // query's error handling); the latch is kept as a fallback detail.
  if (fetch_failed) {
    Status io = backend_ != nullptr ? backend_->error() : Status::Ok();
    if (io.ok()) io = Status::IoError("candidate fetch failed during scan");
    return io;
  }
  if (backend_ != nullptr) {
    Status io = backend_->error();
    if (!io.ok()) return io;
  }
  return result;
}

StatusOr<std::vector<Neighbor>> QueryEngine::KnnChecked(
    const Series& query, int k, StepCounter* counter,
    const CancelToken* cancel, obs::QueryMetrics* metrics) const {
  Status valid = ValidateQuery(query);
  if (!valid.ok()) return valid;
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1, got " + std::to_string(k));
  }
  if (cancel != nullptr) {
    Status early = cancel->Check();
    if (!early.ok()) return early;
  }
  Status interrupted;
  bool fetch_failed = false;
  std::vector<Neighbor> result = KnnImpl(query, k, kNoHoldout, counter,
                                         metrics, cancel, &interrupted,
                                         &fetch_failed, nullptr);
  if (!interrupted.ok()) return interrupted;
  if (fetch_failed) {
    Status io = backend_ != nullptr ? backend_->error() : Status::Ok();
    if (io.ok()) io = Status::IoError("candidate fetch failed during scan");
    return io;
  }
  if (backend_ != nullptr) {
    Status io = backend_->error();
    if (!io.ok()) return io;
  }
  return result;
}

StatusOr<std::vector<Neighbor>> QueryEngine::RangeChecked(
    const Series& query, double radius, StepCounter* counter,
    const CancelToken* cancel, obs::QueryMetrics* metrics) const {
  Status valid = ValidateQuery(query);
  if (!valid.ok()) return valid;
  if (!std::isfinite(radius) || radius < 0.0) {
    return Status::InvalidArgument("radius must be finite and >= 0, got " +
                                   std::to_string(radius));
  }
  if (cancel != nullptr) {
    Status early = cancel->Check();
    if (!early.ok()) return early;
  }
  Status interrupted;
  bool fetch_failed = false;
  std::vector<Neighbor> result =
      RangeImpl(query, radius, counter, metrics, cancel, &interrupted,
                &fetch_failed);
  if (!interrupted.ok()) return interrupted;
  if (fetch_failed) {
    Status io = backend_ != nullptr ? backend_->error() : Status::Ok();
    if (io.ok()) io = Status::IoError("candidate fetch failed during scan");
    return io;
  }
  if (backend_ != nullptr) {
    Status io = backend_->error();
    if (!io.ok()) return io;
  }
  return result;
}

std::vector<ScanResult> QueryEngine::SearchBatch(
    const std::vector<Series>& queries, int num_threads, StepCounter* merged,
    obs::QueryMetrics* metrics) const {
  std::vector<ScanResult> results(queries.size());
  // Thread-local per-query metrics, folded back in query order below: the
  // merged aggregate is independent of which worker ran which query.
  std::vector<obs::QueryMetrics> query_metrics(
      metrics != nullptr ? queries.size() : 0);
  ParallelFor(queries.size(), num_threads, [&](std::size_t qi) {
    results[qi] = Search(queries[qi],
                         metrics != nullptr ? &query_metrics[qi] : nullptr);
  });
  if (merged != nullptr) {
    for (const ScanResult& r : results) *merged += r.counter;
  }
  if (metrics != nullptr) {
    for (const obs::QueryMetrics& m : query_metrics) *metrics += m;
  }
  return results;
}

std::vector<std::vector<Neighbor>> QueryEngine::KnnSearchBatch(
    const std::vector<Series>& queries, int k, int num_threads,
    StepCounter* merged, obs::QueryMetrics* metrics) const {
  std::vector<std::vector<Neighbor>> results(queries.size());
  std::vector<StepCounter> counters(queries.size());
  std::vector<obs::QueryMetrics> query_metrics(
      metrics != nullptr ? queries.size() : 0);
  ParallelFor(queries.size(), num_threads, [&](std::size_t qi) {
    results[qi] = Knn(queries[qi], k, &counters[qi],
                      metrics != nullptr ? &query_metrics[qi] : nullptr);
  });
  if (merged != nullptr) {
    for (const StepCounter& c : counters) *merged += c;
  }
  if (metrics != nullptr) {
    for (const obs::QueryMetrics& m : query_metrics) *metrics += m;
  }
  return results;
}

std::vector<std::vector<Neighbor>> QueryEngine::RangeSearchBatch(
    const std::vector<Series>& queries, double radius, int num_threads,
    StepCounter* merged, obs::QueryMetrics* metrics) const {
  std::vector<std::vector<Neighbor>> results(queries.size());
  std::vector<StepCounter> counters(queries.size());
  std::vector<obs::QueryMetrics> query_metrics(
      metrics != nullptr ? queries.size() : 0);
  ParallelFor(queries.size(), num_threads, [&](std::size_t qi) {
    results[qi] = Range(queries[qi], radius, &counters[qi],
                        metrics != nullptr ? &query_metrics[qi] : nullptr);
  });
  if (merged != nullptr) {
    for (const StepCounter& c : counters) *merged += c;
  }
  if (metrics != nullptr) {
    for (const obs::QueryMetrics& m : query_metrics) *metrics += m;
  }
  return results;
}

}  // namespace rotind
