#include "src/search/scan.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <memory>
#include <queue>

#include "src/distance/dtw.h"
#include "src/distance/euclidean.h"
#include "src/fourier/spectral.h"

namespace rotind {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-object comparison result shared by the scan drivers.
struct ObjectMatch {
  double distance = kInf;
  int shift = 0;
  bool mirrored = false;
  bool found = false;
};

/// Runs one rival algorithm against a single object. `threshold` is the
/// pruning bound (best-so-far or k-th best or range radius).
class ObjectComparator {
 public:
  ObjectComparator(const Series& query, ScanAlgorithm algorithm,
                   const ScanOptions& options, StepCounter* counter)
      : algorithm_(algorithm), options_(options), n_(query.size()) {
    if (algorithm == ScanAlgorithm::kWedge) {
      WedgeSearchOptions w = options.wedge;
      w.kind = options.kind;
      w.band = options.band;
      w.rotation = options.rotation;
      searcher_ = std::make_unique<WedgeSearcher>(query, w, counter);
    } else {
      rotations_ = std::make_unique<RotationSet>(query, options.rotation);
      if (algorithm == ScanAlgorithm::kFftLowerBound) {
        query_signature_ = MakeSpectralSignature(query, n_ / 2);
        AddSetupSteps(counter, FftStepCost(n_));
      }
    }
  }

  ObjectMatch Compare(const double* c, double threshold,
                      StepCounter* counter) {
    ObjectMatch out;
    if (algorithm_ == ScanAlgorithm::kWedge) {
      const HMergeResult r = searcher_->Distance(c, threshold, counter);
      if (!r.abandoned) {
        const RotationSet& rots = searcher_->tree().rotations();
        out.distance = r.distance;
        out.shift = rots.shift_of(r.rotation_index);
        out.mirrored = rots.mirrored_of(r.rotation_index);
        out.found = true;
      }
      return out;
    }

    RotationMatch match;
    switch (algorithm_) {
      case ScanAlgorithm::kBruteForce:
        match = options_.kind == DistanceKind::kEuclidean
                    ? RotationInvariantEuclidean(*rotations_, c, counter)
                    : RotationInvariantDtw(*rotations_, c, /*band=*/-1,
                                           counter);
        break;
      case ScanAlgorithm::kBruteForceBanded:
        match = RotationInvariantDtw(*rotations_, c, options_.band, counter);
        break;
      case ScanAlgorithm::kEarlyAbandon:
        match = options_.kind == DistanceKind::kEuclidean
                    ? EarlyAbandonRotationEuclidean(*rotations_, c, threshold,
                                                    counter)
                    : EarlyAbandonRotationDtw(*rotations_, c, options_.band,
                                              threshold, counter);
        break;
      case ScanAlgorithm::kFftLowerBound: {
        // FFT magnitudes lower-bound the rotation-invariant EUCLIDEAN
        // distance only (DTW can undercut any spectral bound); under DTW
        // this algorithm degrades to the early-abandoning scan.
        if (options_.kind == DistanceKind::kDtw) {
          match = EarlyAbandonRotationDtw(*rotations_, c, options_.band,
                                          threshold, counter);
          break;
        }
        // Paper Section 5.3 cost model: the FFT lower bound is charged
        // n*log2(n) steps per comparison; if it fails to prune, the
        // early-abandoning rotation scan runs.
        AddSteps(counter, FftStepCost(n_));
        if (counter != nullptr) ++counter->lower_bound_evals;
        const SpectralSignature sig = MakeSpectralSignature(
            Series(c, c + n_), n_ / 2);
        const double lb = SignatureDistance(query_signature_, sig, nullptr);
        if (lb >= threshold) {
          match.abandoned = true;
          match.distance = kAbandoned;
          break;
        }
        match = EarlyAbandonRotationEuclidean(*rotations_, c, threshold,
                                              counter);
        break;
      }
      case ScanAlgorithm::kWedge:
        break;  // handled above
    }

    // Full (non-abandoning) rivals report any distance; translate into the
    // thresholded contract the drivers expect.
    if (!match.abandoned && match.distance < threshold) {
      out.distance = match.distance;
      out.shift = rotations_->shift_of(match.rotation_index);
      out.mirrored = rotations_->mirrored_of(match.rotation_index);
      out.found = true;
    }
    return out;
  }

  void NotifyImproved(const double* trigger, double best, StepCounter* counter) {
    if (searcher_ != nullptr) searcher_->AdaptK(trigger, best, counter);
  }

 private:
  ScanAlgorithm algorithm_;
  ScanOptions options_;
  std::size_t n_;
  std::unique_ptr<WedgeSearcher> searcher_;
  std::unique_ptr<RotationSet> rotations_;
  SpectralSignature query_signature_;
};

}  // namespace

ScanResult SearchDatabase(const std::vector<Series>& db, const Series& query,
                          ScanAlgorithm algorithm,
                          const ScanOptions& options) {
  ScanResult result;
  result.best_distance = kInf;
  ObjectComparator comparator(query, algorithm, options, &result.counter);

  double best_so_far = kInf;
  for (std::size_t i = 0; i < db.size(); ++i) {
    assert(db[i].size() == query.size());
    const ObjectMatch m =
        comparator.Compare(db[i].data(), best_so_far, &result.counter);
    if (m.found && m.distance < best_so_far) {
      best_so_far = m.distance;
      result.best_index = static_cast<int>(i);
      result.best_distance = m.distance;
      result.best_shift = m.shift;
      result.best_mirrored = m.mirrored;
      comparator.NotifyImproved(db[i].data(), best_so_far, &result.counter);
    }
  }
  return result;
}

std::vector<Neighbor> KnnSearchDatabase(const std::vector<Series>& db,
                                        const Series& query, int k,
                                        ScanAlgorithm algorithm,
                                        const ScanOptions& options,
                                        StepCounter* counter) {
  StepCounter local;
  StepCounter* cnt = counter != nullptr ? counter : &local;
  ObjectComparator comparator(query, algorithm, options, cnt);

  // Max-heap on distance: top() is the current k-th best, which plays the
  // pruning role of best-so-far.
  auto cmp = [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance;
  };
  std::priority_queue<Neighbor, std::vector<Neighbor>, decltype(cmp)> heap(cmp);

  for (std::size_t i = 0; i < db.size(); ++i) {
    const double threshold =
        static_cast<int>(heap.size()) < k ? kInf : heap.top().distance;
    const ObjectMatch m = comparator.Compare(db[i].data(), threshold, cnt);
    if (!m.found || m.distance >= threshold) continue;
    heap.push(Neighbor{static_cast<int>(i), m.distance, m.shift, m.mirrored});
    if (static_cast<int>(heap.size()) > k) heap.pop();
    if (static_cast<int>(heap.size()) == k) {
      comparator.NotifyImproved(db[i].data(), heap.top().distance, cnt);
    }
  }

  std::vector<Neighbor> out;
  out.reserve(heap.size());
  while (!heap.empty()) {
    out.push_back(heap.top());
    heap.pop();
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<Neighbor> RangeSearchDatabase(const std::vector<Series>& db,
                                          const Series& query, double radius,
                                          ScanAlgorithm algorithm,
                                          const ScanOptions& options,
                                          StepCounter* counter) {
  StepCounter local;
  StepCounter* cnt = counter != nullptr ? counter : &local;
  ObjectComparator comparator(query, algorithm, options, cnt);

  // Distances exactly equal to the radius must be reported; pruning kernels
  // use strict comparisons, so nudge the threshold one ulp outward. The
  // floor keeps the SQUARED threshold from underflowing to zero for tiny
  // radii (a radius-0 query must still report exact duplicates).
  const double threshold = std::max(std::nextafter(radius, kInf), 1e-150);

  std::vector<Neighbor> out;
  for (std::size_t i = 0; i < db.size(); ++i) {
    const ObjectMatch m = comparator.Compare(db[i].data(), threshold, cnt);
    if (m.found && m.distance <= radius) {
      out.push_back(
          Neighbor{static_cast<int>(i), m.distance, m.shift, m.mirrored});
    }
  }
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance;
  });
  return out;
}

Status ValidateScanInputs(const std::vector<Series>& db, const Series& query,
                          const ScanOptions& options) {
  (void)options;  // All option values currently have defined semantics.
  if (query.empty()) {
    return Status::InvalidArgument("query is empty");
  }
  for (std::size_t j = 0; j < query.size(); ++j) {
    if (!std::isfinite(query[j])) {
      return Status::InvalidArgument("query value " + std::to_string(j) +
                                     " is NaN or Inf");
    }
  }
  for (std::size_t i = 0; i < db.size(); ++i) {
    if (db[i].size() != query.size()) {
      return Status::InvalidArgument(
          "db item " + std::to_string(i) + " has length " +
          std::to_string(db[i].size()) + ", query has length " +
          std::to_string(query.size()));
    }
  }
  return Status::Ok();
}

StatusOr<ScanResult> SearchDatabaseChecked(const std::vector<Series>& db,
                                           const Series& query,
                                           ScanAlgorithm algorithm,
                                           const ScanOptions& options) {
  Status valid = ValidateScanInputs(db, query, options);
  if (!valid.ok()) return valid;
  return SearchDatabase(db, query, algorithm, options);
}

StatusOr<std::vector<Neighbor>> KnnSearchDatabaseChecked(
    const std::vector<Series>& db, const Series& query, int k,
    ScanAlgorithm algorithm, const ScanOptions& options,
    StepCounter* counter) {
  Status valid = ValidateScanInputs(db, query, options);
  if (!valid.ok()) return valid;
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1, got " + std::to_string(k));
  }
  return KnnSearchDatabase(db, query, k, algorithm, options, counter);
}

StatusOr<std::vector<Neighbor>> RangeSearchDatabaseChecked(
    const std::vector<Series>& db, const Series& query, double radius,
    ScanAlgorithm algorithm, const ScanOptions& options,
    StepCounter* counter) {
  Status valid = ValidateScanInputs(db, query, options);
  if (!valid.ok()) return valid;
  if (!std::isfinite(radius) || radius < 0.0) {
    return Status::InvalidArgument("radius must be finite and >= 0, got " +
                                   std::to_string(radius));
  }
  return RangeSearchDatabase(db, query, radius, algorithm, options, counter);
}

std::uint64_t AnalyticBruteForceSteps(std::uint64_t num_objects,
                                      std::size_t length,
                                      std::uint64_t rotations_per_object,
                                      DistanceKind kind, int band) {
  const std::uint64_t per_rotation =
      kind == DistanceKind::kEuclidean
          ? static_cast<std::uint64_t>(length)
          : DtwCellCount(length, band);
  return num_objects * rotations_per_object * per_rotation;
}

}  // namespace rotind
