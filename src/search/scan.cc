#include "src/search/scan.h"

#include <cmath>

#include "src/distance/dtw.h"
#include "src/search/engine.h"

namespace rotind {

// The legacy scan API is a set of thin adapters: each ScanAlgorithm maps to
// its pruning-cascade composition (CascadeSpec::ForAlgorithm) and runs
// through QueryEngine's generic driver. The three formerly-duplicated
// 1-NN / k-NN / range loops live in one place now (engine.cc's RunScan).

ScanResult SearchDatabase(const std::vector<Series>& db, const Series& query,
                          ScanAlgorithm algorithm,
                          const ScanOptions& options) {
  return QueryEngine(db, EngineOptionsFrom(options, algorithm)).Search(query);
}

std::vector<Neighbor> KnnSearchDatabase(const std::vector<Series>& db,
                                        const Series& query, int k,
                                        ScanAlgorithm algorithm,
                                        const ScanOptions& options,
                                        StepCounter* counter) {
  return QueryEngine(db, EngineOptionsFrom(options, algorithm))
      .Knn(query, k, counter);
}

std::vector<Neighbor> RangeSearchDatabase(const std::vector<Series>& db,
                                          const Series& query, double radius,
                                          ScanAlgorithm algorithm,
                                          const ScanOptions& options,
                                          StepCounter* counter) {
  return QueryEngine(db, EngineOptionsFrom(options, algorithm))
      .Range(query, radius, counter);
}

Status ValidateScanInputs(const std::vector<Series>& db, const Series& query,
                          const ScanOptions& options) {
  (void)options;  // All option values currently have defined semantics.
  return QueryEngine(db).ValidateQuery(query);
}

StatusOr<ScanResult> SearchDatabaseChecked(const std::vector<Series>& db,
                                           const Series& query,
                                           ScanAlgorithm algorithm,
                                           const ScanOptions& options) {
  return QueryEngine(db, EngineOptionsFrom(options, algorithm))
      .SearchChecked(query);
}

StatusOr<std::vector<Neighbor>> KnnSearchDatabaseChecked(
    const std::vector<Series>& db, const Series& query, int k,
    ScanAlgorithm algorithm, const ScanOptions& options,
    StepCounter* counter) {
  return QueryEngine(db, EngineOptionsFrom(options, algorithm))
      .KnnChecked(query, k, counter);
}

StatusOr<std::vector<Neighbor>> RangeSearchDatabaseChecked(
    const std::vector<Series>& db, const Series& query, double radius,
    ScanAlgorithm algorithm, const ScanOptions& options,
    StepCounter* counter) {
  return QueryEngine(db, EngineOptionsFrom(options, algorithm))
      .RangeChecked(query, radius, counter);
}

std::uint64_t AnalyticBruteForceSteps(std::uint64_t num_objects,
                                      std::size_t length,
                                      std::uint64_t rotations_per_object,
                                      DistanceKind kind, int band) {
  const std::uint64_t per_rotation =
      kind == DistanceKind::kEuclidean
          ? static_cast<std::uint64_t>(length)
          : DtwCellCount(length, band);
  return num_objects * rotations_per_object * per_rotation;
}

}  // namespace rotind
