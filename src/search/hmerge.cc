#include "src/search/hmerge.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/core/contracts.h"
#include "src/distance/dtw.h"
#include "src/distance/euclidean.h"
#include "src/envelope/lower_bound.h"

namespace rotind {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

HMergeResult HMerge(const double* c, const WedgeTree& tree,
                    const std::vector<int>& wedge_set, double best_so_far,
                    StepCounter* counter, obs::WedgeStats* stats) {
  const std::size_t n = tree.length();
  const int band = tree.dtw_band();

  HMergeResult result;
  double limit = best_so_far;
  double squared_limit = std::isinf(limit) ? kInf : limit * limit;

  std::vector<int> stack(wedge_set.begin(), wedge_set.end());
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();

    if (stats != nullptr) ++stats->wedges_tested;
    // The LB_Keogh leaf kernel dispatches through simd::Kernels() inside
    // EarlyAbandonLbKeoghSquared; both tiers are bit- and step-exact, so the
    // wedge walk (prune/descend decisions, counter totals) is identical
    // whichever tier the process dispatched at startup.
    const double lb_sq = EarlyAbandonLbKeoghSquared(
        c, tree.Upper(id), tree.Lower(id), n, squared_limit, counter);
    if (std::isinf(lb_sq)) {  // the whole wedge is pruned
      if (stats != nullptr) ++stats->wedges_pruned;
      continue;
    }

    if (!tree.IsLeaf(id)) {
      if (stats != nullptr) ++stats->wedges_descended;
      stack.push_back(tree.LeftChild(id));
      stack.push_back(tree.RightChild(id));
      continue;
    }

    if (stats != nullptr) ++stats->leaves_evaluated;
    double dist_sq;
    if (band == 0) {
      // Degenerate wedge: the lower bound IS the squared Euclidean distance.
      dist_sq = lb_sq;
    } else {
      const double d =
          EarlyAbandonDtw(tree.LeafSeries(id), c, n, band, limit, counter);
      if (std::isinf(d)) {
        if (stats != nullptr) ++stats->leaves_abandoned;
        continue;
      }
      dist_sq = d * d;
      // Both sides were computed to completion (neither abandoned), so the
      // lower-bound sandwich is directly observable here.
      ROTIND_CONTRACT(lb_sq <= dist_sq * (1.0 + 1e-9) + 1e-9,
                      "Proposition 2: LB_Keogh on the band-widened leaf "
                      "wedge must never exceed the exact banded DTW");
    }
    if (dist_sq < squared_limit) {
      squared_limit = dist_sq;
      limit = std::sqrt(dist_sq);
      result.distance = limit;
      result.rotation_index = static_cast<std::size_t>(id);
      result.abandoned = false;
    }
  }
  if (result.abandoned) result.distance = kAbandoned;
  return result;
}

StatusOr<HMergeResult> HMergeChecked(const double* c, std::size_t c_length,
                                     const WedgeTree& tree,
                                     const std::vector<int>& wedge_set,
                                     double best_so_far,
                                     StepCounter* counter) {
  if (c == nullptr) {
    return Status::InvalidArgument("candidate pointer is null");
  }
  if (c_length != tree.length()) {
    return Status::InvalidArgument(
        "candidate has length " + std::to_string(c_length) +
        ", wedge tree expects " + std::to_string(tree.length()));
  }
  for (int id : wedge_set) {
    if (id < 0 || id >= tree.num_nodes()) {
      return Status::OutOfRange("wedge id " + std::to_string(id) +
                                " not in [0, " +
                                std::to_string(tree.num_nodes()) + ")");
    }
  }
  if (std::isnan(best_so_far)) {
    return Status::InvalidArgument("best_so_far is NaN");
  }
  return HMerge(c, tree, wedge_set, best_so_far, counter);
}

Status ValidateWedgeQuery(const Series& query,
                          const WedgeSearchOptions& options) {
  (void)options;  // Every knob is clamped to a sane range by SetK/AdaptK.
  if (query.empty()) {
    return Status::InvalidArgument("query is empty");
  }
  for (std::size_t j = 0; j < query.size(); ++j) {
    if (!std::isfinite(query[j])) {
      return Status::InvalidArgument("query value " + std::to_string(j) +
                                     " is NaN or Inf");
    }
  }
  return Status::Ok();
}

StatusOr<std::unique_ptr<WedgeSearcher>> WedgeSearcher::Create(
    const Series& query, const WedgeSearchOptions& options,
    StepCounter* counter) {
  Status valid = ValidateWedgeQuery(query, options);
  if (!valid.ok()) return valid;
  return std::make_unique<WedgeSearcher>(query, options, counter);
}

WedgeSearcher::WedgeSearcher(const Series& query,
                             const WedgeSearchOptions& options,
                             StepCounter* counter)
    : options_(options),
      tree_(query, options.rotation,
            options.kind == DistanceKind::kDtw ? std::max(1, options.band) : 0,
            options.linkage, options.hierarchy, counter) {
  SetK(options_.dynamic_k ? options_.initial_k : options_.fixed_k);
}

void WedgeSearcher::SetK(int k) {
  k = std::max(1, std::min(k, tree_.max_k()));
  current_k_ = k;
  wedge_set_ = tree_.WedgeSetForK(k);
}

HMergeResult WedgeSearcher::Distance(const double* c, double best_so_far,
                                     StepCounter* counter,
                                     obs::WedgeStats* stats) {
  // Reservoir of typical objects for dynamic-K probing: sample sparsely so
  // the copies are negligible next to the distance work.
  if (options_.dynamic_k && (distance_calls_ % kReservoirSampleEvery) == 0) {
    Series copy(c, c + tree_.length());
    if (probe_reservoir_.size() < kReservoirSize) {
      probe_reservoir_.push_back(std::move(copy));
    } else {
      probe_reservoir_[(distance_calls_ / kReservoirSampleEvery) %
                       kReservoirSize] = std::move(copy);
    }
  }
  ++distance_calls_;
  return HMerge(c, tree_, wedge_set_, best_so_far, counter, stats);
}

void WedgeSearcher::AdaptK(const double* trigger_object, double best_so_far,
                           StepCounter* counter, obs::WedgeStats* stats) {
  if (!options_.dynamic_k) return;
  // Throttle: the optimal K shifts with the magnitude of the threshold, not
  // with every small improvement. Re-probing only when best-so-far has
  // dropped by >=10% keeps probe overhead logarithmic in practice while
  // tracking the same schedule (bestSoFar changes ~log(m) times anyway).
  if (last_probe_best_ > 0.0 && best_so_far > 0.9 * last_probe_best_) return;
  last_probe_best_ = best_so_far;
  const int max_k = tree_.max_k();
  const int intervals = std::max(1, options_.probe_intervals);

  // Candidate Ks: even divisions of [1, current_K] and [current_K, max_K].
  std::vector<int> candidates;
  auto add_range = [&](int lo, int hi) {
    for (int i = 0; i <= intervals; ++i) {
      const int k = lo + (hi - lo) * i / intervals;
      candidates.push_back(std::max(1, std::min(k, max_k)));
    }
  };
  add_range(1, current_k_);
  add_range(current_k_, max_k);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  // Probe workload: the reservoir of typical objects (falling back to the
  // trigger when nothing has been sampled yet).
  std::vector<const double*> probes;
  for (const Series& s : probe_reservoir_) probes.push_back(s.data());
  if (probes.empty()) probes.push_back(trigger_object);

  int best_k = current_k_;
  std::uint64_t best_steps = std::numeric_limits<std::uint64_t>::max();
  for (int k : candidates) {
    StepCounter probe;
    const std::vector<int> wedge_set = tree_.WedgeSetForK(k);
    for (const double* c : probes) {
      HMerge(c, tree_, wedge_set, best_so_far, &probe);
    }
    if (probe.steps < best_steps) {
      best_steps = probe.steps;
      best_k = k;
    }
    // The paper includes the adaptation overhead in all reported counts.
    if (counter != nullptr) counter->steps += probe.steps;
  }
  SetK(best_k);
  if (stats != nullptr) stats->RecordK(current_k_);
}

}  // namespace rotind
