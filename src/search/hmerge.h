#ifndef ROTIND_SEARCH_HMERGE_H_
#define ROTIND_SEARCH_HMERGE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "src/core/series.h"
#include "src/core/status.h"
#include "src/core/step_counter.h"
#include "src/distance/measure.h"
#include "src/envelope/wedge_tree.h"
#include "src/obs/metrics.h"

namespace rotind {

/// Result of comparing one database object against a query's wedge set.
struct HMergeResult {
  /// Exact rotation-invariant distance, or kAbandoned (+inf) when every
  /// wedge/rotation was pruned against best_so_far.
  double distance = 0.0;
  /// Index (into the WedgeTree's RotationSet) of the winning rotation.
  std::size_t rotation_index = 0;
  bool abandoned = true;
};

/// The paper's H-Merge (Table 6), generalised over ED and DTW by the tree's
/// dtw_band. Pops wedges off a stack; each is tested with early-abandoning
/// LB_Keogh against the current threshold. A pruned wedge discards every
/// rotation under it in one evaluation; a surviving internal wedge pushes
/// its children; a surviving leaf yields an exact distance (for ED the
/// degenerate-wedge LB *is* the Euclidean distance; for DTW an
/// early-abandoning banded DTW runs against the raw rotation). The
/// threshold tightens as better rotations are found.
///
/// Returns the exact min-over-rotations distance if it is < best_so_far,
/// otherwise an abandoned result. Exactness: LB_Keogh never overestimates
/// (Propositions 1 and 2), so no rotation that could beat best_so_far is
/// ever discarded.
///
/// `stats`, when non-null, records how the hierarchy was walked (wedges
/// tested / pruned / descended, leaves evaluated / abandoned); nullptr
/// skips all recording (the StepCounter contract).
HMergeResult HMerge(const double* c, const WedgeTree& tree,
                    const std::vector<int>& wedge_set, double best_so_far,
                    StepCounter* counter = nullptr,
                    obs::WedgeStats* stats = nullptr);

/// Validated H-Merge entry point: rejects a null candidate, a candidate
/// length differing from the tree's, and wedge ids outside the tree, with a
/// Status instead of undefined behavior. `c_length` is the number of doubles
/// readable at `c`.
[[nodiscard]]
StatusOr<HMergeResult> HMergeChecked(const double* c, std::size_t c_length,
                                     const WedgeTree& tree,
                                     const std::vector<int>& wedge_set,
                                     double best_so_far,
                                     StepCounter* counter = nullptr);

/// Wedge-only tuning knobs. Deliberately EXCLUDES the distance kind, band,
/// and rotation options: those are single-sourced by whoever drives the
/// search (QueryEngine's config or WedgeSearchOptions below), so a policy
/// cannot carry settings that contradict its context.
struct WedgePolicy {
  Linkage linkage = Linkage::kAverage;
  WedgeHierarchy hierarchy = WedgeHierarchy::kClustered;
  /// Adapt K on every best-so-far improvement (paper Section 4.1). When
  /// false, `fixed_k` is used throughout (ablation).
  bool dynamic_k = true;
  int initial_k = 2;
  /// Number of intervals probed on each side of the current K. The paper
  /// uses 5 and reports <4% sensitivity anywhere in [3, 20].
  int probe_intervals = 5;
  int fixed_k = 2;
};

/// Full option set for driving a WedgeSearcher directly (the policy plus
/// the distance/rotation context it runs under).
struct WedgeSearchOptions : WedgePolicy {
  DistanceKind kind = DistanceKind::kEuclidean;
  /// Sakoe-Chiba band for kDtw (ignored for kEuclidean).
  int band = 5;
  RotationOptions rotation;
};

/// Per-query engine: owns the wedge tree over the query's rotations and the
/// dynamically adapted wedge set. Intended use, mirroring the paper's
/// Table 3 driver:
///
///   WedgeSearcher searcher(query, options, &counter);
///   for each database object C:
///     auto r = searcher.Distance(C.data(), best_so_far, &counter);
///     if (!r.abandoned) { best_so_far = r.distance; searcher.AdaptK(C.data(),
///                         best_so_far, &counter); }
/// Validates a query/options pair before WedgeSearcher construction: the
/// query must be non-empty with finite values (an empty query makes the
/// rotation set, and therefore the wedge tree, degenerate). Option knobs are
/// clamped by the searcher itself and need no validation.
[[nodiscard]] Status ValidateWedgeQuery(const Series& query,
                          const WedgeSearchOptions& options);

class WedgeSearcher {
 public:
  /// Builds the rotation set, hierarchy, and envelopes; setup cost is
  /// charged to counter->setup_steps.
  WedgeSearcher(const Series& query, const WedgeSearchOptions& options,
                StepCounter* counter);

  /// Validated factory: the library's checked entry point for building a
  /// per-query wedge engine. Returns kInvalidArgument instead of invoking
  /// the constructor's (asserted) preconditions on bad input.
  [[nodiscard]] static StatusOr<std::unique_ptr<WedgeSearcher>> Create(
      const Series& query, const WedgeSearchOptions& options,
      StepCounter* counter);

  /// Exact rotation-invariant distance to `c` (length() doubles), pruned
  /// against best_so_far. Also feeds the dynamic-K probe reservoir (a small
  /// sample of recently seen objects). `stats` (nullable) receives the
  /// wedge-walk accounting of this one H-Merge pass.
  HMergeResult Distance(const double* c, double best_so_far,
                        StepCounter* counter,
                        obs::WedgeStats* stats = nullptr);

  /// Dynamic-K re-probe (paper Section 4.1): evaluates candidate K values
  /// that evenly divide [1, K] and [K, max_K] into probe_intervals pieces by
  /// replaying a small reservoir of recently seen objects (typical, mostly
  /// prunable work — probing only the triggering near-match would optimise
  /// for the rare case), and adopts the cheapest K. Probe steps are charged
  /// to `counter` — the paper includes this overhead in all its experiments.
  /// `stats` (nullable) records the adopted K in the dynamic-K trajectory;
  /// probe-internal wedge walks are deliberately NOT recorded, so the wedge
  /// stats describe the real candidate stream only.
  void AdaptK(const double* trigger_object, double best_so_far,
              StepCounter* counter, obs::WedgeStats* stats = nullptr);

  int current_k() const { return current_k_; }
  const WedgeTree& tree() const { return tree_; }
  std::size_t length() const { return tree_.length(); }
  const std::vector<int>& wedge_set() const { return wedge_set_; }

 private:
  void SetK(int k);

  WedgeSearchOptions options_;
  WedgeTree tree_;
  std::vector<int> wedge_set_;
  int current_k_ = 1;

  /// Reservoir of recently compared objects used by AdaptK probes.
  static constexpr std::size_t kReservoirSize = 3;
  static constexpr std::size_t kReservoirSampleEvery = 16;
  std::vector<Series> probe_reservoir_;
  std::size_t distance_calls_ = 0;
  /// Best-so-far at the last probe; re-probe only after a >=10% drop.
  double last_probe_best_ = 0.0;
};

}  // namespace rotind

#endif  // ROTIND_SEARCH_HMERGE_H_
