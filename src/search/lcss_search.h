#ifndef ROTIND_SEARCH_LCSS_SEARCH_H_
#define ROTIND_SEARCH_LCSS_SEARCH_H_

#include <cstddef>
#include <vector>

#include "src/core/series.h"
#include "src/core/step_counter.h"
#include "src/distance/lcss.h"
#include "src/distance/rotation.h"
#include "src/envelope/wedge_tree.h"

namespace rotind {

/// Wedge-accelerated rotation-invariant LCSS (paper Section 4.3 + ref
/// [37]). LCSS is a SIMILARITY (larger = better), so the envelope bound is
/// an upper bound and search prunes wedges whose bound cannot beat the
/// best-so-far similarity. "The minor changes include reversing some
/// inequality signs" — this module is those changes, spelled out.

/// Upper bound on LCSS match count between `q` and every sequence enclosed
/// by `delta_envelope` (an envelope already expanded by the LCSS window
/// delta, exactly like the DTW band expansion): a point q_i can only match
/// if it lies within [L_i - epsilon, U_i + epsilon]. Counts one step per
/// point examined; abandons (returning 0) once the number of unmatchable
/// points makes beating `required_matches` impossible.
std::size_t LcssMatchUpperBound(const double* q, const double* upper,
                                const double* lower, std::size_t n,
                                double epsilon,
                                std::size_t required_matches,
                                StepCounter* counter = nullptr);

/// Result of a rotation-invariant LCSS comparison via wedges.
struct LcssMatchResult {
  /// Best LCSS length over all candidate rotations (0 when pruned).
  std::size_t length = 0;
  std::size_t rotation_index = 0;
  /// True when no rotation could beat the required threshold.
  bool pruned = true;

  double similarity(std::size_t n) const {
    return n == 0 ? 0.0
                  : static_cast<double>(length) / static_cast<double>(n);
  }
};

/// H-Merge for LCSS: descends the wedge hierarchy, pruning nodes whose
/// match upper bound does not EXCEED `best_so_far_length`, and evaluating
/// exact LCSS at surviving leaves. The wedge tree must be built with
/// dtw_band == the LCSS delta (the same sliding-extremum expansion serves
/// both).
LcssMatchResult HMergeLcss(const double* c, const WedgeTree& tree,
                           const std::vector<int>& wedge_set,
                           const LcssOptions& options,
                           std::size_t best_so_far_length,
                           StepCounter* counter = nullptr);

/// Per-query engine mirroring WedgeSearcher, for LCSS.
class LcssWedgeSearcher {
 public:
  LcssWedgeSearcher(const Series& query, const LcssOptions& lcss,
                    const RotationOptions& rotation, StepCounter* counter);

  /// Best LCSS length of any query rotation against `c`, pruned against
  /// the caller's best-so-far length.
  LcssMatchResult Match(const double* c, std::size_t best_so_far_length,
                        StepCounter* counter) const;

  const WedgeTree& tree() const { return tree_; }
  std::size_t length() const { return tree_.length(); }

 private:
  LcssOptions lcss_;
  WedgeTree tree_;
  std::vector<int> wedge_set_;
};

/// Whole-database rotation-invariant LCSS 1-NN (highest similarity wins).
struct LcssScanResult {
  int best_index = -1;
  std::size_t best_length = 0;
  double best_similarity = 0.0;
  int best_shift = 0;
  bool best_mirrored = false;
  StepCounter counter;
};

LcssScanResult LcssSearchDatabase(const std::vector<Series>& db,
                                  const Series& query,
                                  const LcssOptions& options,
                                  const RotationOptions& rotation = {},
                                  bool use_wedges = true);

}  // namespace rotind

#endif  // ROTIND_SEARCH_LCSS_SEARCH_H_
