#ifndef ROTIND_SEARCH_ENGINE_H_
#define ROTIND_SEARCH_ENGINE_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "src/core/cancel.h"
#include "src/core/flat_dataset.h"
#include "src/core/series.h"
#include "src/core/status.h"
#include "src/core/step_counter.h"
#include "src/distance/measure.h"
#include "src/distance/rotation.h"
#include "src/obs/metrics.h"
#include "src/search/hmerge.h"
#include "src/search/scan.h"
#include "src/storage/backend.h"

namespace rotind {

/// One stage of the pruning cascade. A cascade is an ordered list of
/// filters followed by one terminal (exact) evaluator: each filter is a
/// cheap lower bound that discards candidates provably at or above the
/// current threshold (Lemire's two-pass principle: bounds compose as
/// increasingly tight filters), and the terminal stage computes the exact
/// thresholded distance. Because every filter is a true lower bound
/// (Propositions 1-2), any composition returns exactly the same matches as
/// brute force — only the work differs.
enum class StageKind {
  /// Filter: rotation-invariant FFT-magnitude lower bound (paper Section
  /// 4.2). Sound for kEuclidean only; dropped for other measures.
  kFftMagnitude,
  /// Filter: band-pooled rotation/mirror-invariant vector embedding
  /// (fourier::VecSignature) — cheaper per candidate than the FFT filter
  /// when the database carries a RIDX v2 signature section (the stored
  /// rows are compared directly; otherwise candidates are embedded on the
  /// fly). Sound for kEuclidean only; dropped for other measures.
  kVecSignature,
  /// Filter: two-pass LB_Improved (Lemire) against the query's rotation
  /// wedge — the second-chance stage after LB_Keogh fails to prune. Sound
  /// for kEuclidean (band 0) and banded kDtw; dropped for kLcss and for
  /// the unconstrained-DTW terminal (kFullScan under kDtw), which a banded
  /// bound does not lower-bound.
  kLbImproved,
  /// Terminal: hierarchal LB_Keogh wedges + H-Merge + dynamic K (the
  /// paper's contribution). Exact.
  kWedge,
  /// Terminal: early-abandoning rotation scan (paper Table 2/3).
  kExactScan,
  /// Terminal: full evaluation of every rotation, no abandoning
  /// (unconstrained DTW for kDtw).
  kFullScan,
  /// Terminal: full evaluation with the Sakoe-Chiba band (kDtw); same as
  /// kFullScan for other measures.
  kFullScanBanded,
};

/// An ordered pruning pipeline. Invalid compositions are normalized, never
/// silently misinterpreted: filters that are unsound for the configured
/// measure are dropped, everything after the first terminal stage is
/// ignored, and a filter-only cascade gets kExactScan appended.
struct CascadeSpec {
  std::vector<StageKind> stages = {StageKind::kWedge};

  /// The composition equivalent to one legacy ScanAlgorithm under `kind`
  /// (e.g. kFftLowerBound + kEuclidean -> {kFftMagnitude, kExactScan}).
  static CascadeSpec ForAlgorithm(ScanAlgorithm algorithm, DistanceKind kind);

  /// Returns the normalized form described above.
  CascadeSpec Normalized(DistanceKind kind) const;
};

/// Blocked (structure-of-arrays, 8-candidates-at-a-time) scoring knobs for
/// the cascade terminals, fed by FlatDataset's aligned SoA tiles and the
/// src/simd/ kernels. Which kernel tier runs (AVX2 vs scalar) is a separate,
/// process-wide decision (simd::ActiveTier, ROTIND_SIMD) — these flags
/// choose the DRIVER shape, and every tier/driver combination returns
/// identical query answers.
struct SimdOptions {
  /// Blocked full-scan ED terminals (kFullScan/kFullScanBanded under
  /// kEuclidean). Observationally identical to the per-candidate path —
  /// same answers, same step counts, same per-stage attribution — so on by
  /// default.
  bool blocked_full_scan = true;
  /// Blocked early-abandoning ED terminal (kExactScan under kEuclidean).
  /// Answers are identical, but lanes abandon against the block-entry
  /// threshold instead of the live one, so step counts can drift from the
  /// scalar reference. Off by default to keep counter parity (benches,
  /// step-count tests); opt in where only answers and wall time matter.
  bool blocked_early_abandon = false;
};

/// Full engine configuration. Distance kind, band, and rotation options are
/// single-sourced here — the wedge policy cannot carry contradictory
/// copies (see WedgePolicy).
struct EngineOptions {
  DistanceKind kind = DistanceKind::kEuclidean;
  /// Sakoe-Chiba band for kDtw.
  int band = 5;
  /// LCSS knobs for kLcss (delta plays the band's role).
  LcssOptions lcss;
  RotationOptions rotation;
  WedgePolicy wedge;
  CascadeSpec cascade;
  SimdOptions simd;
  /// Dimensionality of the kVecSignature filter's pooled embedding when the
  /// backend has no stored RIDX v2 rows (clamped to n/2 per query). A
  /// file backend with a signature section overrides this: the stored
  /// dimensionality is authoritative, since both sides must agree.
  std::size_t vec_sig_dims = 8;
  /// Where candidate series live: in-memory borrow (default), the paper's
  /// simulated-disk accounting, or a paged RIDX index file behind a
  /// BufferPool (file selection requires QueryEngine::Open — the borrowing
  /// constructors cannot report an open failure).
  storage::StorageOptions storage;
};

/// Maps a legacy (algorithm, options) pair onto the engine configuration
/// that reproduces it exactly. Used by the scan.h adapters, benches, and
/// the CLI during migration.
EngineOptions EngineOptionsFrom(const ScanOptions& options,
                                ScanAlgorithm algorithm);

/// Runs fn(i) for every i in [0, count) across a small worker pool of
/// `num_threads` threads (clamped to [1, count], and additionally capped at
/// 256 — a std::thread costs a stack, and beyond the machine's core count
/// extra workers only add scheduling overhead; the CLI exposes the same
/// bound on --threads). Work items must be independent and write only to
/// per-index slots; completion order is unspecified. With num_threads <= 1
/// the loop runs inline, bit-identical to the threaded path by
/// construction.
///
/// Exception safety: if fn throws, the FIRST exception (by capture order)
/// is caught, the remaining queue is drained without running further items,
/// all workers are joined, and the exception is rethrown to the caller —
/// the process is never terminated by a worker-thread exception. Items
/// after the failure may or may not have run; their output slots are
/// unspecified.
void ParallelFor(std::size_t count, int num_threads,
                 const std::function<void(std::size_t)>& fn);

/// A best-so-far threshold shared across engines scanning DISJOINT
/// partitions of one database concurrently (ShardedIndex's parallel shard
/// search). Each worker publishes its local pruning threshold as it
/// improves; every worker's cascade prunes against
/// min(local, nextafter(shared, +inf)).
///
/// Exactness: a published value is always the distance of a REAL candidate
/// (or a k-th-best over real candidates), so it is >= the true global
/// answer d*. A candidate pruned against nextafter(shared) has
/// distance >= nextafter(shared) > shared >= d* — strictly worse than the
/// winner even under ties — so cross-partition pruning can never discard a
/// correct result. The one-ulp outward nudge keeps a candidate whose
/// distance EQUALS the foreign bound alive: local collectors break ties by
/// scan order, and a foreign tie carries no order information.
///
/// Lock-free by design (a mutex here would serialize the scans this class
/// exists to parallelize): one atomic double, monotonically non-increasing
/// under a CAS loop, relaxed ordering — the value is a pruning HINT whose
/// staleness only costs work, never correctness.
class SharedBound {
 public:
  SharedBound() = default;
  SharedBound(const SharedBound&) = delete;
  SharedBound& operator=(const SharedBound&) = delete;

  /// Current bound; +inf until the first Publish.
  double load() const { return bound_.load(std::memory_order_relaxed); }

  /// Monotonic CAS-min: the bound only ever tightens, regardless of the
  /// interleaving of concurrent publishers.
  void Publish(double candidate) {
    double current = bound_.load(std::memory_order_relaxed);
    while (candidate < current &&
           !bound_.compare_exchange_weak(current, candidate,
                                         std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<double> bound_{std::numeric_limits<double>::infinity()};
};

/// The layered query engine: FlatDataset storage -> Measure -> pruning
/// cascade -> one generic driver (parameterized by a result collector:
/// best-so-far, k-th-best heap, or radius) -> batch execution.
///
/// Observability: every search method also takes a nullable
/// `obs::QueryMetrics*`. When non-null, the engine attributes candidate
/// flow, step counts, early abandons, and wall time to each cascade stage,
/// records wedge-level H-Merge behavior and the dynamic-K trajectory, and
/// adds one end-to-end latency sample per query. Passing nullptr (the
/// default) skips all of it and reproduces the uninstrumented results
/// bit-for-bit — the same zero-cost-when-null contract StepCounter has.
/// Stage attribution is exact: per-stage steps + setup_steps sum to the
/// query's StepCounter::total_steps().
///
/// Candidate series are fetched through a storage::StorageBackend: a
/// zero-copy in-memory borrow by default, the paper's simulated-disk
/// accounting, or a real paged index file behind a BufferPool — selected by
/// EngineOptions::storage. The borrowed source (FlatDataset or legacy
/// vector<Series>) must outlive the engine. All search methods are const
/// and thread-compatible: concurrent calls on one engine are safe because
/// per-query state (rotation sets, wedge trees, signatures) is built per
/// call and the backends are internally synchronized — this is what
/// SearchBatch relies on.
class QueryEngine {
 public:
  /// Engine over contiguous storage (the fast path). Honors
  /// options.storage for the in-memory and simulated backends; asking for
  /// the file backend here is a contract violation (open can fail) — use
  /// Open().
  explicit QueryEngine(const FlatDataset& db,
                       const EngineOptions& options = {});

  /// Non-owning adapter over legacy storage; no copy is made. Prefer
  /// FlatDataset for cache-friendly scans. Always direct borrows
  /// (options.storage is ignored — ragged legacy storage predates the
  /// backend abstraction).
  explicit QueryEngine(const std::vector<Series>& db,
                       const EngineOptions& options = {});

  /// Engine owning an explicit backend (the composition root for tests and
  /// Open()).
  QueryEngine(std::unique_ptr<storage::StorageBackend> backend,
              const EngineOptions& options = {});

  /// Builds the backend options.storage asks for and the engine over it.
  /// This is the only way to get a file-backed engine: opening the index
  /// can fail (kNotFound, kBadMagic, ...) and the Status must reach the
  /// caller. `in_memory_source` feeds the in-memory/simulated kinds and is
  /// ignored for kFile.
  [[nodiscard]] static StatusOr<std::unique_ptr<QueryEngine>> Open(
      const EngineOptions& options,
      const FlatDataset* in_memory_source = nullptr);

  /// Borrowing a temporary database would dangle immediately; forbidden.
  explicit QueryEngine(FlatDataset&&, const EngineOptions& = {}) = delete;
  explicit QueryEngine(std::vector<Series>&&, const EngineOptions& = {}) =
      delete;

  const EngineOptions& options() const { return options_; }
  /// The storage candidates are fetched from (null only for the legacy
  /// vector<Series> adapter).
  const storage::StorageBackend* backend() const { return backend_.get(); }
  std::size_t database_size() const;
  /// Common series length of the database (0 when empty).
  std::size_t database_length() const;

  /// 1-NN: the rotation-invariant nearest neighbor of `query`.
  ScanResult Search(const Series& query,
                    obs::QueryMetrics* metrics = nullptr) const;

  /// 1-NN skipping database index `holdout` (leave-one-out protocols:
  /// classification, the benches' query-from-database methodology).
  /// Result indexes refer to the full database. holdout >= size() skips
  /// nothing.
  ScanResult SearchLeaveOneOut(const Series& query, std::size_t holdout,
                               obs::QueryMetrics* metrics = nullptr) const;

  /// k-NN, ascending by distance; the k-th best distance prunes.
  std::vector<Neighbor> Knn(const Series& query, int k,
                            StepCounter* counter = nullptr,
                            obs::QueryMetrics* metrics = nullptr) const;

  /// k-NN skipping database index `holdout` (see SearchLeaveOneOut).
  std::vector<Neighbor> KnnLeaveOneOut(const Series& query, int k,
                                       std::size_t holdout,
                                       StepCounter* counter = nullptr,
                                       obs::QueryMetrics* metrics = nullptr)
      const;

  /// Range query: every object within `radius`, ascending by distance.
  std::vector<Neighbor> Range(const Series& query, double radius,
                              StepCounter* counter = nullptr,
                              obs::QueryMetrics* metrics = nullptr) const;

  /// 1-NN with a cross-partition best-so-far exchange: behaves exactly
  /// like SearchLeaveOneOut over THIS engine's database, but additionally
  /// prunes against `shared` (one ulp outward, so foreign ties never
  /// displace a local winner) and publishes local improvements into it.
  /// Used by ShardedIndex to search disjoint shards in parallel with
  /// GLOBAL pruning power; with a fresh SharedBound it degenerates to
  /// SearchLeaveOneOut bit-for-bit. `shared` must be non-null.
  ScanResult SearchShared(const Series& query, std::size_t holdout,
                          SharedBound* shared,
                          obs::QueryMetrics* metrics = nullptr) const;

  /// k-NN variant of SearchShared: publishes the local k-th-best distance
  /// (a sound global bound — any candidate outside its own partition's
  /// top k is outside the global top k).
  std::vector<Neighbor> KnnShared(const Series& query, int k,
                                  std::size_t holdout, SharedBound* shared,
                                  StepCounter* counter = nullptr,
                                  obs::QueryMetrics* metrics = nullptr) const;

  /// Validates a query against this engine's database: non-empty, finite,
  /// and length-matching.
  [[nodiscard]] Status ValidateQuery(const Series& query) const;

  /// Checked variants: the validated public entry points. `cancel`, when
  /// non-null, is polled cooperatively at every cascade stage boundary
  /// (fetch / filter / terminal, per candidate); a fired token aborts the
  /// scan and the call returns the token's typed Status (kDeadlineExceeded
  /// or kCancelled) — NEVER a partial result presented as exact. `metrics`
  /// has the same contract as on the unchecked entry points.
  [[nodiscard]] StatusOr<ScanResult> SearchChecked(
      const Series& query, const CancelToken* cancel = nullptr,
      obs::QueryMetrics* metrics = nullptr) const;
  [[nodiscard]] StatusOr<std::vector<Neighbor>> KnnChecked(
      const Series& query, int k, StepCounter* counter = nullptr,
      const CancelToken* cancel = nullptr,
      obs::QueryMetrics* metrics = nullptr) const;
  [[nodiscard]] StatusOr<std::vector<Neighbor>> RangeChecked(
      const Series& query, double radius, StepCounter* counter = nullptr,
      const CancelToken* cancel = nullptr,
      obs::QueryMetrics* metrics = nullptr) const;

  /// Batch 1-NN over a worker pool. Results (including each per-query
  /// StepCounter) are BIT-IDENTICAL to running Search sequentially: queries
  /// are independent, each runs single-threaded, and `merged` accumulates
  /// per-query counters in query order regardless of which worker ran them.
  /// `metrics`, when given, is merged the same way (thread-local per-query
  /// metrics, folded in query order), so every count except wall time and
  /// latency is independent of the thread count.
  std::vector<ScanResult> SearchBatch(const std::vector<Series>& queries,
                                      int num_threads,
                                      StepCounter* merged = nullptr,
                                      obs::QueryMetrics* metrics = nullptr)
      const;

  /// Batch k-NN; same determinism guarantee as SearchBatch.
  std::vector<std::vector<Neighbor>> KnnSearchBatch(
      const std::vector<Series>& queries, int k, int num_threads,
      StepCounter* merged = nullptr,
      obs::QueryMetrics* metrics = nullptr) const;

  /// Batch range search; same determinism guarantee as SearchBatch.
  std::vector<std::vector<Neighbor>> RangeSearchBatch(
      const std::vector<Series>& queries, double radius, int num_threads,
      StepCounter* merged = nullptr,
      obs::QueryMetrics* metrics = nullptr) const;

 private:
  /// Scan cores shared by the unchecked entry points (cancel == nullptr)
  /// and the Checked ones. When `cancel` fires mid-scan its typed Status
  /// lands in `*interrupted` and the (partial, meaningless) value result
  /// must be discarded by the caller. `fetch_failed`, when non-null, is
  /// set if any candidate fetch of THIS query returned an invalid handle
  /// — a per-query signal, unlike the backend's shared error latch, so
  /// concurrent queries on one backend cannot mask each other's skipped
  /// candidates.
  /// `shared`, when non-null, wires the collector into a cross-partition
  /// best-so-far exchange (see SharedBound); null reproduces the
  /// single-engine behavior exactly.
  ScanResult SearchImpl(const Series& query, std::size_t holdout,
                        obs::QueryMetrics* metrics, const CancelToken* cancel,
                        Status* interrupted, bool* fetch_failed,
                        SharedBound* shared) const;
  std::vector<Neighbor> KnnImpl(const Series& query, int k,
                                std::size_t holdout, StepCounter* counter,
                                obs::QueryMetrics* metrics,
                                const CancelToken* cancel,
                                Status* interrupted,
                                bool* fetch_failed,
                                SharedBound* shared) const;
  std::vector<Neighbor> RangeImpl(const Series& query, double radius,
                                  StepCounter* counter,
                                  obs::QueryMetrics* metrics,
                                  const CancelToken* cancel,
                                  Status* interrupted,
                                  bool* fetch_failed) const;

  /// The FlatDataset whose SoA tiles the blocked drivers may scan
  /// directly, or nullptr when candidates must go through per-candidate
  /// fetches (legacy vector storage, simulated/file/fault-injecting
  /// backends — anything whose Fetch does accountable work).
  const FlatDataset* BlockedSource() const;

  /// One candidate fetch: a borrow for legacy vector storage, a backend
  /// fetch (with I/O accounting into `io`) otherwise.
  storage::SeriesHandle FetchCandidate(std::size_t i,
                                       storage::FetchStats* io) const;
  /// True when fetches do attributable I/O (simulated or file backend) —
  /// gates the kDiskFetch stage so purely in-memory runs keep their
  /// metrics shape.
  bool BackendDoesIo() const;

  /// Resolves the RIDX v2 rotation-invariant signature rows for the
  /// kVecSignature filter: points `*rows` at the file backend's resident
  /// count x *dims matrix when one exists (and its dimensionality fits the
  /// query length), else nullptr/0 — the filter then embeds candidates on
  /// the fly, which returns bit-identical distances since the stored rows
  /// were produced by the same MakeVecSignature over the same bytes.
  void ResolveStoredVecSigs(std::size_t query_length, const double** rows,
                            std::size_t* dims) const;

  const std::vector<Series>* vec_ = nullptr;
  std::unique_ptr<storage::StorageBackend> backend_;
  EngineOptions options_;
};

}  // namespace rotind

#endif  // ROTIND_SEARCH_ENGINE_H_
