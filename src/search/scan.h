#ifndef ROTIND_SEARCH_SCAN_H_
#define ROTIND_SEARCH_SCAN_H_

#include <cstdint>
#include <vector>

#include "src/core/series.h"
#include "src/core/status.h"
#include "src/core/step_counter.h"
#include "src/search/hmerge.h"

namespace rotind {

/// The rival whole-database search algorithms compared throughout the
/// paper's Section 5 (Figures 19-23). All are EXACT: they return the same
/// best match (up to distance ties) — only the work differs.
enum class ScanAlgorithm {
  /// Test every rotation of every object in full, no early abandoning.
  /// For DTW this is the unconstrained full-matrix "Brute force" line.
  kBruteForce,
  /// DTW only: full evaluation with the Sakoe-Chiba band but no
  /// abandoning ("Brute force, R=5" in Figures 20/21/23).
  kBruteForceBanded,
  /// Paper Table 3: early-abandoning distance per rotation with
  /// best-so-far propagation.
  kEarlyAbandon,
  /// Euclidean only: rotation-invariant FFT-magnitude lower bound first
  /// (charged n*log2(n) steps per comparison as in Section 5.3), falling
  /// back to the early-abandoning rotation scan when the bound fails.
  kFftLowerBound,
  /// The paper's contribution: hierarchal wedges + H-Merge + dynamic K.
  kWedge,
};

/// Parameters shared by all scan algorithms.
struct ScanOptions {
  DistanceKind kind = DistanceKind::kEuclidean;
  /// Sakoe-Chiba band for DTW rivals other than kBruteForce.
  int band = 5;
  RotationOptions rotation;
  /// LCSS knobs, used only when kind == kLcss.
  LcssOptions lcss;
  /// Wedge-specific knobs. This is a WedgePolicy, not a WedgeSearchOptions:
  /// kind/band/rotation live only in the outer fields above, so a
  /// contradictory inner setting is a compile error rather than silently
  /// overridden.
  WedgePolicy wedge;
};

/// Outcome of a 1-nearest-neighbor database scan.
struct ScanResult {
  int best_index = -1;
  double best_distance = 0.0;
  /// Shift of the winning rotation, in [0, n).
  int best_shift = 0;
  /// Whether the winning alignment was against the mirrored query.
  bool best_mirrored = false;
  /// Work done, including setup (wedge build / query FFT).
  StepCounter counter;
};

/// Finds the rotation-invariant nearest neighbor of `query` in `db`
/// (paper Table 3 generalised over rival algorithms).
///
/// The Search/Knn/Range functions below are thin adapters over the layered
/// QueryEngine (src/search/engine.h): each ScanAlgorithm maps to a pruning
/// cascade via CascadeSpec::ForAlgorithm and runs through the engine's one
/// generic driver. New code should use QueryEngine directly.
ScanResult SearchDatabase(const std::vector<Series>& db, const Series& query,
                          ScanAlgorithm algorithm, const ScanOptions& options);

/// One neighbor of a k-NN / range result set.
struct Neighbor {
  int index = -1;
  double distance = 0.0;
  int shift = 0;
  bool mirrored = false;
};

/// k-nearest-neighbor scan (ascending by distance). Supported for
/// kBruteForce, kEarlyAbandon, and kWedge; the k-th best distance plays the
/// pruning role best-so-far plays in 1-NN.
std::vector<Neighbor> KnnSearchDatabase(const std::vector<Series>& db,
                                        const Series& query, int k,
                                        ScanAlgorithm algorithm,
                                        const ScanOptions& options,
                                        StepCounter* counter = nullptr);

/// Range query: every object within `radius` (ascending by distance).
std::vector<Neighbor> RangeSearchDatabase(const std::vector<Series>& db,
                                          const Series& query, double radius,
                                          ScanAlgorithm algorithm,
                                          const ScanOptions& options,
                                          StepCounter* counter = nullptr);

/// Validates the structural preconditions every scan shares: non-empty
/// query with finite values, and every database item matching the query's
/// length. Returns kInvalidArgument with an actionable message otherwise.
/// O(m + n); database VALUES are not scanned (a NaN payload yields defined
/// but meaningless distances — loaders reject NaN at the file boundary).
[[nodiscard]]
Status ValidateScanInputs(const std::vector<Series>& db, const Series& query,
                          const ScanOptions& options);

/// Checked variants of the scans below: the library's validated public
/// entry points. The unchecked functions document their preconditions and
/// assert them in debug builds; these return a Status instead, making
/// malformed input a recoverable error rather than undefined behavior.
[[nodiscard]]
StatusOr<ScanResult> SearchDatabaseChecked(const std::vector<Series>& db,
                                           const Series& query,
                                           ScanAlgorithm algorithm,
                                           const ScanOptions& options);

/// Also requires k >= 1.
[[nodiscard]] StatusOr<std::vector<Neighbor>> KnnSearchDatabaseChecked(
    const std::vector<Series>& db, const Series& query, int k,
    ScanAlgorithm algorithm, const ScanOptions& options,
    StepCounter* counter = nullptr);

/// Also requires a finite radius >= 0.
[[nodiscard]] StatusOr<std::vector<Neighbor>> RangeSearchDatabaseChecked(
    const std::vector<Series>& db, const Series& query, double radius,
    ScanAlgorithm algorithm, const ScanOptions& options,
    StepCounter* counter = nullptr);

/// Closed-form step counts of the deterministic (data-independent) rivals.
/// Brute force evaluates every cell of every rotation of every object, so
/// its `num_steps` needs no execution; benches use this to cost the
/// brute-force lines at paper scale without running hours of DP.
std::uint64_t AnalyticBruteForceSteps(std::uint64_t num_objects,
                                      std::size_t length,
                                      std::uint64_t rotations_per_object,
                                      DistanceKind kind, int band);

}  // namespace rotind

#endif  // ROTIND_SEARCH_SCAN_H_
