#include "src/distance/euclidean.h"

#include <cassert>
#include <cmath>

namespace rotind {

double SquaredEuclidean(const double* a, const double* b, std::size_t n,
                        StepCounter* counter) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  AddSteps(counter, n);
  return acc;
}

double EuclideanDistance(const Series& a, const Series& b,
                         StepCounter* counter) {
  assert(a.size() == b.size());
  return std::sqrt(SquaredEuclidean(a.data(), b.data(), a.size(), counter));
}

double EarlyAbandonSquaredEuclidean(const double* q, const double* c,
                                    std::size_t n, double squared_limit,
                                    StepCounter* counter) {
  if (counter != nullptr) ++counter->full_evals;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = q[i] - c[i];
    acc += d * d;
    if (acc > squared_limit) {
      if (counter != nullptr) {
        counter->steps += i + 1;
        ++counter->early_abandons;
      }
      return kAbandoned;
    }
  }
  AddSteps(counter, n);
  return acc;
}

double EarlyAbandonEuclidean(const double* q, const double* c, std::size_t n,
                             double limit, StepCounter* counter) {
  const double squared_limit =
      std::isinf(limit) ? limit : limit * limit;
  const double acc =
      EarlyAbandonSquaredEuclidean(q, c, n, squared_limit, counter);
  return std::isinf(acc) ? kAbandoned : std::sqrt(acc);
}

}  // namespace rotind
