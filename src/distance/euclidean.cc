#include "src/distance/euclidean.h"

#include <cassert>
#include <cmath>
#include <cstdint>

#include "src/simd/simd.h"

namespace rotind {

double SquaredEuclidean(const double* a, const double* b, std::size_t n,
                        StepCounter* counter) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  AddSteps(counter, n);
  return acc;
}

double EuclideanDistance(const Series& a, const Series& b,
                         StepCounter* counter) {
  assert(a.size() == b.size());
  return std::sqrt(SquaredEuclidean(a.data(), b.data(), a.size(), counter));
}

double EarlyAbandonSquaredEuclidean(const double* q, const double* c,
                                    std::size_t n, double squared_limit,
                                    StepCounter* counter) {
  if (counter != nullptr) ++counter->full_evals;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = q[i] - c[i];
    acc += d * d;
    if (acc > squared_limit) {
      if (counter != nullptr) {
        counter->steps += i + 1;
        ++counter->early_abandons;
      }
      return kAbandoned;
    }
  }
  AddSteps(counter, n);
  return acc;
}

void SquaredEuclideanBlock(const double* q, const double* tile, std::size_t n,
                           std::size_t valid, double* out_sq,
                           StepCounter* counter) {
  simd::Kernels().ed_block_full(q, tile, n, out_sq);
  AddSteps(counter, valid * n);
}

void EarlyAbandonSquaredEuclideanBlock(const double* q, const double* tile,
                                       std::size_t n, std::size_t valid,
                                       const double* sq_limits, double* out_sq,
                                       StepCounter* counter) {
  std::uint64_t lane_steps[simd::kBlockLanes];
  unsigned abandoned = 0;
  simd::Kernels().ed_block_ea(q, tile, n, sq_limits, out_sq, lane_steps,
                              &abandoned);
  if (counter != nullptr) {
    counter->full_evals += valid;
    for (std::size_t l = 0; l < valid; ++l) {
      counter->steps += lane_steps[l];
      if ((abandoned >> l) & 1u) ++counter->early_abandons;
    }
  }
}

double EarlyAbandonEuclidean(const double* q, const double* c, std::size_t n,
                             double limit, StepCounter* counter) {
  const double squared_limit =
      std::isinf(limit) ? limit : limit * limit;
  const double acc =
      EarlyAbandonSquaredEuclidean(q, c, n, squared_limit, counter);
  return std::isinf(acc) ? kAbandoned : std::sqrt(acc);
}

}  // namespace rotind
