#ifndef ROTIND_DISTANCE_LCSS_H_
#define ROTIND_DISTANCE_LCSS_H_

#include <cstddef>

#include "src/core/series.h"
#include "src/core/step_counter.h"

namespace rotind {

/// Longest Common SubSequence matching for real-valued series (paper
/// Section 4.3). Unlike DTW, LCSS may leave points unmatched, making it
/// robust to occlusions and missing parts (the paper's Skhul V skull and
/// broken projectile points). Two points q_i and c_j match when
/// |q_i - c_j| <= epsilon and |i - j| <= delta.
struct LcssOptions {
  /// Value-matching threshold. The paper notes tuning it is non-trivial; a
  /// common default for z-normalised data is a fraction of sigma.
  double epsilon = 0.5;
  /// Temporal matching window (same role as the DTW band). Negative =
  /// unconstrained.
  int delta = -1;
};

/// Length of the longest common subsequence (an integer count, returned as
/// std::size_t). Charges one step per DP cell (each performs one real-value
/// subtraction for the epsilon test).
std::size_t LcssLength(const double* q, const double* c, std::size_t n,
                       const LcssOptions& options,
                       StepCounter* counter = nullptr);

/// LCSS similarity in [0, 1]: LcssLength / n.
double LcssSimilarity(const Series& q, const Series& c,
                      const LcssOptions& options,
                      StepCounter* counter = nullptr);

/// LCSS distance in [0, 1]: 1 - similarity. This is the form used when LCSS
/// stands in for a distance measure in search (smaller is better).
double LcssDistance(const Series& q, const Series& c,
                    const LcssOptions& options,
                    StepCounter* counter = nullptr);

}  // namespace rotind

#endif  // ROTIND_DISTANCE_LCSS_H_
