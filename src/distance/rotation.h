#ifndef ROTIND_DISTANCE_ROTATION_H_
#define ROTIND_DISTANCE_ROTATION_H_

#include <cstddef>
#include <vector>

#include "src/core/series.h"
#include "src/core/status.h"
#include "src/core/step_counter.h"
#include "src/distance/lcss.h"

namespace rotind {

/// Which invariances a rotation-invariant query should respect (paper
/// Section 3, "Mirror Image Invariance" and "Rotation-Limited Invariance").
struct RotationOptions {
  /// Also match enantiomorphic (mirror-image) shapes: the candidate set
  /// additionally contains every rotation of the reversed series.
  bool mirror = false;
  /// Rotation-limited queries: only shifts with circular displacement
  /// min(k, n-k) <= max_shift are considered ("find the best match allowing
  /// a maximum rotation of 15 degrees" maps to max_shift = n*15/360).
  /// Negative means unlimited (all n rotations).
  int max_shift = -1;
};

/// The matrix C of the paper's Section 3: every rotation (circular shift) of
/// one series, optionally extended with mirror images and/or restricted to a
/// shift budget. Rotations are materialised zero-copy as windows into a
/// doubled buffer, so a RotationSet costs O(n) memory, not O(n^2).
class RotationSet {
 public:
  RotationSet(const Series& s, const RotationOptions& options);

  /// Length n of the underlying series.
  std::size_t length() const { return n_; }

  /// Number of candidate rotations (n, 2n with mirror, fewer when limited).
  std::size_t count() const { return items_.size(); }

  /// Pointer to the idx-th candidate: n contiguous doubles.
  const double* rotation(std::size_t idx) const;

  /// Left-shift amount of the idx-th candidate, in [0, n).
  int shift_of(std::size_t idx) const { return items_[idx].shift; }

  /// Whether the idx-th candidate comes from the mirrored series.
  bool mirrored_of(std::size_t idx) const { return items_[idx].mirrored; }

  /// Materialises the idx-th candidate as an owned Series (for callers that
  /// need a value, e.g. reporting the aligned match).
  Series Materialize(std::size_t idx) const;

 private:
  struct Item {
    int shift;
    bool mirrored;
  };

  std::size_t n_;
  Series doubled_;         ///< s ++ s
  Series doubled_mirror_;  ///< reverse(s) ++ reverse(s); empty unless mirror
  std::vector<Item> items_;
};

/// Result of a rotation-invariant comparison: the minimal distance and the
/// rotation (index into the RotationSet) that achieved it.
struct RotationMatch {
  double distance = 0.0;
  std::size_t rotation_index = 0;
  /// True when the comparison was abandoned against a best-so-far and the
  /// reported distance is only a lower bound witness (distance=kAbandoned).
  bool abandoned = false;
};

/// Brute-force rotation-invariant Euclidean distance, RED(Q, C) of the paper
/// (Table 2 without early abandoning): min over all candidates in `rots` of
/// ED(candidate, c).
RotationMatch RotationInvariantEuclidean(const RotationSet& rots,
                                         const double* c,
                                         StepCounter* counter = nullptr);

/// Paper Table 2: tests all rotations with early abandoning against
/// `best_so_far` (the calling scan's best match so far). Returns
/// abandoned=true when no rotation beat best_so_far.
RotationMatch EarlyAbandonRotationEuclidean(const RotationSet& rots,
                                            const double* c,
                                            double best_so_far,
                                            StepCounter* counter = nullptr);

/// Brute-force rotation-invariant DTW (full evaluation of every rotation).
RotationMatch RotationInvariantDtw(const RotationSet& rots, const double* c,
                                   int band, StepCounter* counter = nullptr);

/// Rotation-invariant DTW with early abandoning inside each DTW evaluation
/// and best-so-far propagation across rotations.
RotationMatch EarlyAbandonRotationDtw(const RotationSet& rots, const double* c,
                                      int band, double best_so_far,
                                      StepCounter* counter = nullptr);

/// Brute-force rotation-invariant LCSS distance (1 - max similarity over
/// rotations).
RotationMatch RotationInvariantLcss(const RotationSet& rots, const double* c,
                                    const LcssOptions& options,
                                    StepCounter* counter = nullptr);

/// Convenience one-shot wrappers on owned series.
double RotationInvariantEuclidean(const Series& q, const Series& c,
                                  const RotationOptions& options = {},
                                  StepCounter* counter = nullptr);
double RotationInvariantDtw(const Series& q, const Series& c, int band,
                            const RotationOptions& options = {},
                            StepCounter* counter = nullptr);
double RotationInvariantLcss(const Series& q, const Series& c,
                             const LcssOptions& lcss,
                             const RotationOptions& options = {},
                             StepCounter* counter = nullptr);

/// Validates a rotation-invariant comparison pair: both series non-empty
/// and of equal length. The convenience wrappers above assert this in debug
/// builds; the Checked variants below return kInvalidArgument instead.
[[nodiscard]] Status ValidateRotationPair(const Series& q, const Series& c);

/// Validated public entry points over the one-shot wrappers.
[[nodiscard]] StatusOr<double> RotationInvariantEuclideanChecked(
    const Series& q, const Series& c, const RotationOptions& options = {},
    StepCounter* counter = nullptr);
[[nodiscard]] StatusOr<double> RotationInvariantDtwChecked(
    const Series& q, const Series& c, int band,
    const RotationOptions& options = {}, StepCounter* counter = nullptr);
[[nodiscard]] StatusOr<double> RotationInvariantLcssChecked(
    const Series& q, const Series& c, const LcssOptions& lcss,
    const RotationOptions& options = {}, StepCounter* counter = nullptr);

}  // namespace rotind

#endif  // ROTIND_DISTANCE_ROTATION_H_
