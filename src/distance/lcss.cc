#include "src/distance/lcss.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace rotind {

std::size_t LcssLength(const double* q, const double* c, std::size_t n,
                       const LcssOptions& options, StepCounter* counter) {
  if (n == 0) return 0;
  const int delta = options.delta < 0 ? static_cast<int>(n)
                                      : std::min<int>(options.delta,
                                                      static_cast<int>(n));
  if (counter != nullptr) ++counter->full_evals;

  // DP over rows i with columns restricted to |i - j| <= delta. Rows are
  // stored full-width (n+1) for simplicity; cells outside the band keep the
  // value carried over from the nearest in-band cell so the recurrence
  // max(left, up) stays correct at band edges.
  std::vector<std::size_t> prev(n + 1, 0);
  std::vector<std::size_t> curr(n + 1, 0);
  std::uint64_t cells = 0;

  for (std::size_t i = 1; i <= n; ++i) {
    const std::size_t j_lo =
        (static_cast<long>(i) - delta > 1)
            ? i - static_cast<std::size_t>(delta)
            : 1;
    const std::size_t j_hi = std::min(n, i + static_cast<std::size_t>(delta));
    curr[j_lo - 1] = prev[j_lo - 1];
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const double d = q[i - 1] - c[j - 1];
      ++cells;
      if (std::fabs(d) <= options.epsilon) {
        curr[j] = prev[j - 1] + 1;
      } else {
        curr[j] = std::max(prev[j], curr[j - 1]);
      }
    }
    // Propagate the last in-band value rightwards so row i+1's band edge
    // sees a consistent "best so far" prefix maximum.
    for (std::size_t j = j_hi + 1; j <= n; ++j) curr[j] = curr[j_hi];
    std::swap(prev, curr);
  }
  AddSteps(counter, cells);
  return prev[n];
}

double LcssSimilarity(const Series& q, const Series& c,
                      const LcssOptions& options, StepCounter* counter) {
  assert(q.size() == c.size());
  if (q.empty()) return 1.0;
  return static_cast<double>(
             LcssLength(q.data(), c.data(), q.size(), options, counter)) /
         static_cast<double>(q.size());
}

double LcssDistance(const Series& q, const Series& c,
                    const LcssOptions& options, StepCounter* counter) {
  return 1.0 - LcssSimilarity(q, c, options, counter);
}

}  // namespace rotind
