#include "src/distance/rotation.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/distance/dtw.h"
#include "src/distance/euclidean.h"

namespace rotind {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Circular displacement of a left-shift k on length-n series.
int CircularDisplacement(int shift, std::size_t n) {
  const int k = shift;
  return std::min(k, static_cast<int>(n) - k);
}

}  // namespace

RotationSet::RotationSet(const Series& s, const RotationOptions& options)
    : n_(s.size()), doubled_(Doubled(s)) {
  if (options.mirror) {
    doubled_mirror_ = Doubled(Reversed(s));
  }
  const int n = static_cast<int>(n_);
  for (int shift = 0; shift < n; ++shift) {
    if (options.max_shift >= 0 &&
        CircularDisplacement(shift, n_) > options.max_shift) {
      continue;
    }
    items_.push_back({shift, false});
    if (options.mirror) items_.push_back({shift, true});
  }
}

const double* RotationSet::rotation(std::size_t idx) const {
  const Item& item = items_[idx];
  const Series& buf = item.mirrored ? doubled_mirror_ : doubled_;
  return buf.data() + item.shift;
}

Series RotationSet::Materialize(std::size_t idx) const {
  const double* p = rotation(idx);
  return Series(p, p + n_);
}

RotationMatch RotationInvariantEuclidean(const RotationSet& rots,
                                         const double* c,
                                         StepCounter* counter) {
  RotationMatch best{kInf, 0, false};
  for (std::size_t r = 0; r < rots.count(); ++r) {
    const double sq =
        SquaredEuclidean(rots.rotation(r), c, rots.length(), counter);
    if (counter != nullptr) ++counter->full_evals;
    if (sq < best.distance) {
      best.distance = sq;
      best.rotation_index = r;
    }
  }
  best.distance = std::sqrt(best.distance);
  return best;
}

RotationMatch EarlyAbandonRotationEuclidean(const RotationSet& rots,
                                            const double* c,
                                            double best_so_far,
                                            StepCounter* counter) {
  // Paper Table 2: bestSoFar starts at the caller's r and shrinks as better
  // rotations are found, feeding back into the early-abandon threshold.
  RotationMatch best{best_so_far, 0, true};
  double squared_best =
      std::isinf(best_so_far) ? kInf : best_so_far * best_so_far;
  for (std::size_t r = 0; r < rots.count(); ++r) {
    const double sq = EarlyAbandonSquaredEuclidean(
        rots.rotation(r), c, rots.length(), squared_best, counter);
    if (sq < squared_best) {
      squared_best = sq;
      best.distance = std::sqrt(sq);
      best.rotation_index = r;
      best.abandoned = false;
    }
  }
  if (best.abandoned) best.distance = kAbandoned;
  return best;
}

RotationMatch RotationInvariantDtw(const RotationSet& rots, const double* c,
                                   int band, StepCounter* counter) {
  RotationMatch best{kInf, 0, false};
  for (std::size_t r = 0; r < rots.count(); ++r) {
    const double d =
        DtwDistance(rots.rotation(r), c, rots.length(), band, counter);
    if (d < best.distance) {
      best.distance = d;
      best.rotation_index = r;
    }
  }
  return best;
}

RotationMatch EarlyAbandonRotationDtw(const RotationSet& rots, const double* c,
                                      int band, double best_so_far,
                                      StepCounter* counter) {
  RotationMatch best{best_so_far, 0, true};
  for (std::size_t r = 0; r < rots.count(); ++r) {
    const double d = EarlyAbandonDtw(rots.rotation(r), c, rots.length(), band,
                                     best.abandoned ? best_so_far
                                                    : best.distance,
                                     counter);
    if (!std::isinf(d) &&
        d < (best.abandoned ? best_so_far : best.distance)) {
      best.distance = d;
      best.rotation_index = r;
      best.abandoned = false;
    }
  }
  if (best.abandoned) best.distance = kAbandoned;
  return best;
}

RotationMatch RotationInvariantLcss(const RotationSet& rots, const double* c,
                                    const LcssOptions& options,
                                    StepCounter* counter) {
  RotationMatch best{kInf, 0, false};
  const std::size_t n = rots.length();
  for (std::size_t r = 0; r < rots.count(); ++r) {
    const std::size_t len =
        LcssLength(rots.rotation(r), c, n, options, counter);
    const double d =
        1.0 - static_cast<double>(len) / static_cast<double>(n == 0 ? 1 : n);
    if (d < best.distance) {
      best.distance = d;
      best.rotation_index = r;
    }
  }
  return best;
}

Status ValidateRotationPair(const Series& q, const Series& c) {
  if (q.empty() || c.empty()) {
    return Status::InvalidArgument("series must be non-empty");
  }
  if (q.size() != c.size()) {
    return Status::InvalidArgument(
        "length mismatch: q has " + std::to_string(q.size()) + ", c has " +
        std::to_string(c.size()));
  }
  return Status::Ok();
}

StatusOr<double> RotationInvariantEuclideanChecked(
    const Series& q, const Series& c, const RotationOptions& options,
    StepCounter* counter) {
  Status valid = ValidateRotationPair(q, c);
  if (!valid.ok()) return valid;
  return RotationInvariantEuclidean(q, c, options, counter);
}

StatusOr<double> RotationInvariantDtwChecked(const Series& q, const Series& c,
                                             int band,
                                             const RotationOptions& options,
                                             StepCounter* counter) {
  Status valid = ValidateRotationPair(q, c);
  if (!valid.ok()) return valid;
  return RotationInvariantDtw(q, c, band, options, counter);
}

StatusOr<double> RotationInvariantLcssChecked(const Series& q, const Series& c,
                                              const LcssOptions& lcss,
                                              const RotationOptions& options,
                                              StepCounter* counter) {
  Status valid = ValidateRotationPair(q, c);
  if (!valid.ok()) return valid;
  return RotationInvariantLcss(q, c, lcss, options, counter);
}

double RotationInvariantEuclidean(const Series& q, const Series& c,
                                  const RotationOptions& options,
                                  StepCounter* counter) {
  assert(q.size() == c.size());
  RotationSet rots(q, options);
  return RotationInvariantEuclidean(rots, c.data(), counter).distance;
}

double RotationInvariantDtw(const Series& q, const Series& c, int band,
                            const RotationOptions& options,
                            StepCounter* counter) {
  assert(q.size() == c.size());
  RotationSet rots(q, options);
  return RotationInvariantDtw(rots, c.data(), band, counter).distance;
}

double RotationInvariantLcss(const Series& q, const Series& c,
                             const LcssOptions& lcss,
                             const RotationOptions& options,
                             StepCounter* counter) {
  assert(q.size() == c.size());
  RotationSet rots(q, options);
  return RotationInvariantLcss(rots, c.data(), lcss, counter).distance;
}

}  // namespace rotind
