#ifndef ROTIND_DISTANCE_DTW_H_
#define ROTIND_DISTANCE_DTW_H_

#include <cstddef>
#include <cstdint>

#include "src/core/series.h"
#include "src/core/step_counter.h"

namespace rotind {

/// Sakoe-Chiba banded Dynamic Time Warping.
///
/// The warping matrix element (i, j) holds d(q_i, c_j) = (q_i - c_j)^2 and
/// the path is constrained to |i - j| <= band (paper Figure 12). The
/// returned distance is the square root of the minimal cumulative path cost,
/// making it directly comparable to Euclidean distance (band 0 degenerates
/// to exactly the Euclidean distance).
///
/// `band >= n - 1` gives unconstrained (full-matrix) DTW.

/// Full banded DTW with no early abandoning. Charges one step per matrix
/// cell evaluated (each cell performs one real-value subtraction), matching
/// the paper's cost model.
double DtwDistance(const double* q, const double* c, std::size_t n, int band,
                   StepCounter* counter = nullptr);

/// Convenience overload for equal-length series.
double DtwDistance(const Series& q, const Series& c, int band,
                   StepCounter* counter = nullptr);

/// Early-abandoning banded DTW (iterative implementation, paper Section 4.3
/// footnote: the iterative form can abandon with as few as ~band steps).
/// After each row, if the minimum cumulative cost in the row already exceeds
/// `limit`^2 the computation aborts and returns kAbandoned, because every
/// warping path must pass through at least one cell of every row and cell
/// costs are non-negative.
double EarlyAbandonDtw(const double* q, const double* c, std::size_t n,
                       int band, double limit, StepCounter* counter = nullptr);

/// Number of matrix cells a non-abandoning banded DTW of length-n series
/// evaluates. This is the exact, data-independent `num_steps` of
/// DtwDistance; benches use it to cost brute-force rivals in closed form.
std::uint64_t DtwCellCount(std::size_t n, int band);

/// Clamps a band parameter into [0, n-1].
int ClampBand(std::size_t n, int band);

}  // namespace rotind

#endif  // ROTIND_DISTANCE_DTW_H_
