#ifndef ROTIND_DISTANCE_EUCLIDEAN_H_
#define ROTIND_DISTANCE_EUCLIDEAN_H_

#include <cstddef>
#include <limits>

#include "src/core/series.h"
#include "src/core/step_counter.h"

namespace rotind {

/// Sentinel distance returned by early-abandoning kernels when the true
/// distance provably exceeds the abandonment threshold (paper Table 1).
inline constexpr double kAbandoned = std::numeric_limits<double>::infinity();

/// Sum of squared differences over `n` aligned points. Charges `n` steps.
double SquaredEuclidean(const double* a, const double* b, std::size_t n,
                        StepCounter* counter = nullptr);

/// Plain Euclidean distance between equal-length series.
double EuclideanDistance(const Series& a, const Series& b,
                         StepCounter* counter = nullptr);

/// Early-abandoning Euclidean distance (paper Definition 1 / Table 1).
/// Accumulates squared differences and aborts as soon as the running sum
/// exceeds `limit`^2, returning kAbandoned; otherwise returns the exact
/// distance. `limit` may be +infinity (never abandons). Charges one step per
/// point examined, which is the paper's `num_steps`.
double EarlyAbandonEuclidean(const double* q, const double* c, std::size_t n,
                             double limit, StepCounter* counter = nullptr);

/// Early-abandoning squared Euclidean: same abandonment rule, but compares
/// against and returns squared values. Hot-path building block (avoids the
/// sqrt/square round-trips when callers carry squared thresholds).
double EarlyAbandonSquaredEuclidean(const double* q, const double* c,
                                    std::size_t n, double squared_limit,
                                    StepCounter* counter = nullptr);

/// Blocked counterparts: score one query against simd::kBlockLanes
/// candidates stored as a 64-byte-aligned SoA tile (FlatDataset::tile).
/// All lanes are computed, but only the first `valid` lanes are charged to
/// the counter (tail lanes of a partial tile group are zero padding).
/// Per-lane results are bit-identical to the per-candidate scalar kernels.

/// out_sq[l] = squared ED of lane l. Charges n steps per valid lane; does
/// NOT touch full_evals (mirrors SquaredEuclidean, where the rotation
/// driver attributes the eval).
void SquaredEuclideanBlock(const double* q, const double* tile, std::size_t n,
                           std::size_t valid, double* out_sq,
                           StepCounter* counter = nullptr);

/// Early-abandoning blocked squared ED with per-lane limits: lane l yields
/// kAbandoned as soon as its running sum exceeds sq_limits[l], else its
/// exact squared sum. Charges, per valid lane, one full_eval plus steps for
/// the points that lane examined, and one early_abandon per abandoned valid
/// lane — exactly the scalar EarlyAbandonSquaredEuclidean accounting.
void EarlyAbandonSquaredEuclideanBlock(const double* q, const double* tile,
                                       std::size_t n, std::size_t valid,
                                       const double* sq_limits, double* out_sq,
                                       StepCounter* counter = nullptr);

}  // namespace rotind

#endif  // ROTIND_DISTANCE_EUCLIDEAN_H_
