#include "src/distance/measure.h"

#include <algorithm>
#include <cmath>

#include "src/distance/dtw.h"
#include "src/distance/euclidean.h"

namespace rotind {
namespace {

class EuclideanMeasure final : public Measure {
 public:
  DistanceKind kind() const override { return DistanceKind::kEuclidean; }

  double Distance(const double* q, const double* c, std::size_t n,
                  double limit, StepCounter* counter) const override {
    return EarlyAbandonEuclidean(q, c, n, limit, counter);
  }

  double FullDistance(const double* q, const double* c, std::size_t n,
                      StepCounter* counter) const override {
    const double sq = SquaredEuclidean(q, c, n, counter);
    if (counter != nullptr) ++counter->full_evals;
    return std::sqrt(sq);
  }

  int envelope_band(std::size_t) const override { return 0; }
};

class DtwMeasure final : public Measure {
 public:
  explicit DtwMeasure(int band) : band_(band) {}

  DistanceKind kind() const override { return DistanceKind::kDtw; }

  double Distance(const double* q, const double* c, std::size_t n,
                  double limit, StepCounter* counter) const override {
    return EarlyAbandonDtw(q, c, n, band_, limit, counter);
  }

  double FullDistance(const double* q, const double* c, std::size_t n,
                      StepCounter* counter) const override {
    return DtwDistance(q, c, n, band_, counter);
  }

  int envelope_band(std::size_t n) const override {
    return std::max(1, ClampBand(n, band_));
  }

 private:
  int band_;
};

class LcssMeasure final : public Measure {
 public:
  explicit LcssMeasure(const LcssOptions& options) : options_(options) {}

  DistanceKind kind() const override { return DistanceKind::kLcss; }

  double Distance(const double* q, const double* c, std::size_t n,
                  double limit, StepCounter* counter) const override {
    // The LCSS DP has no row-wise abandoning analogue (matches can appear in
    // any row), so the full length is computed and thresholded.
    const double d = FullDistance(q, c, n, counter);
    return d < limit ? d : kAbandoned;
  }

  double FullDistance(const double* q, const double* c, std::size_t n,
                      StepCounter* counter) const override {
    const std::size_t len = LcssLength(q, c, n, options_, counter);
    if (counter != nullptr) ++counter->full_evals;
    return 1.0 -
           static_cast<double>(len) / static_cast<double>(n == 0 ? 1 : n);
  }

  int envelope_band(std::size_t n) const override {
    // Unconstrained delta expands the envelope to the global extrema.
    return options_.delta < 0 ? static_cast<int>(n) : options_.delta;
  }

 private:
  LcssOptions options_;
};

}  // namespace

const char* DistanceKindName(DistanceKind kind) {
  switch (kind) {
    case DistanceKind::kEuclidean:
      return "euclidean";
    case DistanceKind::kDtw:
      return "dtw";
    case DistanceKind::kLcss:
      return "lcss";
  }
  return "unknown";
}

std::unique_ptr<Measure> MakeMeasure(DistanceKind kind,
                                     const MeasureParams& params) {
  switch (kind) {
    case DistanceKind::kEuclidean:
      return std::make_unique<EuclideanMeasure>();
    case DistanceKind::kDtw:
      return std::make_unique<DtwMeasure>(params.band);
    case DistanceKind::kLcss:
      return std::make_unique<LcssMeasure>(params.lcss);
  }
  return nullptr;
}

}  // namespace rotind
