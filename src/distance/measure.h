#ifndef ROTIND_DISTANCE_MEASURE_H_
#define ROTIND_DISTANCE_MEASURE_H_

#include <cstddef>
#include <memory>

#include "src/core/step_counter.h"
#include "src/distance/lcss.h"

namespace rotind {

/// Which exact distance a rotation-invariant search is computing. The
/// paper's central claim is that LB_Keogh wedges index shapes under
/// *arbitrary* distance measures; this enum names the measures the engine
/// ships with, and `Measure` below is the seam a new one plugs into.
enum class DistanceKind {
  kEuclidean,
  kDtw,
  /// LCSS as a distance in [0, 1]: 1 - LcssLength/n (paper Section 4.3).
  kLcss,
};

/// Human-readable name ("euclidean", "dtw", "lcss") for logs and benches.
const char* DistanceKindName(DistanceKind kind);

/// Measure-specific knobs, single-sourced so every layer (wedge tree,
/// cascade stages, exact kernels) reads the same values.
struct MeasureParams {
  /// Sakoe-Chiba band for kDtw (ignored by kEuclidean; kLcss uses
  /// lcss.delta for the same role).
  int band = 5;
  LcssOptions lcss;
};

/// One early-abandoning pairwise distance measure. All measures are
/// DISTANCES here (smaller is better); LCSS similarity is wrapped as
/// 1 - similarity so search code never branches on direction.
///
/// Exactness contract shared with the paper's lower-bound machinery:
/// `Distance` returns the exact value when it is < limit and kAbandoned
/// otherwise — it never misreports a value below the limit, so search built
/// on top cannot false-dismiss.
class Measure {
 public:
  virtual ~Measure() = default;

  virtual DistanceKind kind() const = 0;

  /// Early-abandoning distance between two length-n series. Returns the
  /// exact distance if it is < limit, kAbandoned (+inf) otherwise. `limit`
  /// may be +inf (never abandons). Charges steps per the paper's model.
  virtual double Distance(const double* q, const double* c, std::size_t n,
                          double limit, StepCounter* counter) const = 0;

  /// Full distance, no abandoning (brute-force rivals and reporting).
  virtual double FullDistance(const double* q, const double* c, std::size_t n,
                              StepCounter* counter) const = 0;

  /// The DTW-band-like envelope expansion radius this measure requires of a
  /// wedge tree (Proposition 2): 0 for Euclidean, the band for DTW, the
  /// delta for LCSS.
  virtual int envelope_band(std::size_t n) const = 0;
};

/// Factory over the built-in kinds.
std::unique_ptr<Measure> MakeMeasure(DistanceKind kind,
                                     const MeasureParams& params);

}  // namespace rotind

#endif  // ROTIND_DISTANCE_MEASURE_H_
