#include "src/distance/dtw.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

#include "src/distance/euclidean.h"
#include "src/simd/simd.h"

namespace rotind {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Shared DP core. When `squared_limit` is finite, abandons once a whole row
/// exceeds it. Returns the squared DTW cost, or kInf when abandoned.
double DtwCore(const double* q, const double* c, std::size_t n, int band,
               double squared_limit, StepCounter* counter) {
  if (n == 0) return 0.0;
  band = ClampBand(n, band);

  // Two rolling rows over j in [0, n), padded with +inf outside the band,
  // plus kernel scratch for the row-update's min(prev[j], prev[j-1]) pass.
  std::vector<double> prev(n, kInf);
  std::vector<double> curr(n, kInf);
  std::vector<double> scratch(n);
  const simd::KernelTable& kernels = simd::Kernels();
  std::uint64_t cells = 0;

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j_lo =
        (static_cast<long>(i) - band > 0) ? i - static_cast<std::size_t>(band)
                                          : 0;
    const std::size_t j_hi =
        std::min(n - 1, i + static_cast<std::size_t>(band));
    double row_min;
    if (i == 0) {
      // Base row keeps the (0, 0) anchor special case inline.
      row_min = kInf;
      for (std::size_t j = j_lo; j <= j_hi; ++j) {
        const double d = q[0] - c[j];
        const double cost = d * d;
        double best;
        if (j == 0) {
          best = 0.0;
        } else {
          best = prev[j];                      // insertion (i-1, j)
          best = std::min(best, curr[j - 1]);  // deletion (i, j-1)
          best = std::min(best, prev[j - 1]);  // match (i-1, j-1)
        }
        curr[j] = best + cost;
        row_min = std::min(row_min, curr[j]);
      }
    } else {
      row_min = kernels.dtw_row(q[i], c, prev.data(), curr.data(), j_lo, j_hi,
                                scratch.data());
    }
    cells += j_hi - j_lo + 1;
    if (row_min > squared_limit) {
      if (counter != nullptr) {
        counter->steps += cells;
        ++counter->early_abandons;
      }
      return kInf;
    }
    std::swap(prev, curr);
    std::fill(curr.begin(), curr.end(), kInf);
  }
  AddSteps(counter, cells);
  // Row minima can stay under the limit while the corner cell exceeds it;
  // enforce the contract that any result above the limit reads as abandoned.
  if (prev[n - 1] > squared_limit) {
    if (counter != nullptr) ++counter->early_abandons;
    return kInf;
  }
  return prev[n - 1];
}

}  // namespace

int ClampBand(std::size_t n, int band) {
  if (n == 0) return 0;
  const int max_band = static_cast<int>(n) - 1;
  if (band < 0) return max_band;  // negative = unconstrained
  return std::min(band, max_band);
}

double DtwDistance(const double* q, const double* c, std::size_t n, int band,
                   StepCounter* counter) {
  if (counter != nullptr) ++counter->full_evals;
  return std::sqrt(DtwCore(q, c, n, band, kInf, counter));
}

double DtwDistance(const Series& q, const Series& c, int band,
                   StepCounter* counter) {
  assert(q.size() == c.size());
  return DtwDistance(q.data(), c.data(), q.size(), band, counter);
}

double EarlyAbandonDtw(const double* q, const double* c, std::size_t n,
                       int band, double limit, StepCounter* counter) {
  if (counter != nullptr) ++counter->full_evals;
  const double squared_limit = std::isinf(limit) ? kInf : limit * limit;
  const double sq = DtwCore(q, c, n, band, squared_limit, counter);
  return std::isinf(sq) ? kAbandoned : std::sqrt(sq);
}

std::uint64_t DtwCellCount(std::size_t n, int band) {
  band = ClampBand(n, band);
  std::uint64_t cells = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j_lo =
        (static_cast<long>(i) - band > 0) ? i - static_cast<std::size_t>(band)
                                          : 0;
    const std::size_t j_hi =
        std::min(n - 1, i + static_cast<std::size_t>(band));
    cells += j_hi - j_lo + 1;
  }
  return cells;
}

}  // namespace rotind
