#include "src/envelope/envelope.h"

#include <algorithm>
#include <cassert>
#include <deque>

#include "src/core/contracts.h"
#include "src/simd/simd.h"

namespace rotind {

Envelope Envelope::FromSeries(const double* s, std::size_t n) {
  Envelope e;
  e.upper.assign(s, s + n);
  e.lower.assign(s, s + n);
  return e;
}

Envelope Envelope::Merge(const Envelope& a, const Envelope& b) {
  Envelope out = a;
  out.MergeInPlace(b);
  return out;
}

void Envelope::MergeInPlace(const Envelope& other) {
  assert(size() == other.size());
  ROTIND_CONTRACT(IsOrdered() && other.IsOrdered(),
                  "wedge invariant L <= U (Proposition 1 presupposes every "
                  "operand of a merge is a valid envelope)");
  simd::Kernels().env_merge(upper.data(), lower.data(), other.upper.data(),
                            other.lower.data(), upper.size());
}

void Envelope::MergeSeries(const double* s, std::size_t n) {
  assert(size() == n);
  ROTIND_CONTRACT(IsOrdered(),
                  "wedge invariant L <= U (Proposition 1 presupposes a "
                  "valid envelope before widening by a series)");
  simd::Kernels().env_merge_series(upper.data(), lower.data(), s, n);
}

double Envelope::Area() const {
  double area = 0.0;
  for (std::size_t i = 0; i < upper.size(); ++i) area += upper[i] - lower[i];
  return area;
}

bool Envelope::Contains(const double* s, std::size_t n,
                        double tolerance) const {
  if (n != size()) return false;
  for (std::size_t i = 0; i < n; ++i) {
    if (s[i] > upper[i] + tolerance || s[i] < lower[i] - tolerance) {
      return false;
    }
  }
  return true;
}

bool Envelope::IsOrdered(double tolerance) const {
  if (lower.size() != upper.size()) return false;
  for (std::size_t i = 0; i < upper.size(); ++i) {
    if (lower[i] > upper[i] + tolerance) return false;
  }
  return true;
}

bool Envelope::Encloses(const Envelope& inner, double tolerance) const {
  if (inner.size() != size()) return false;
  for (std::size_t i = 0; i < upper.size(); ++i) {
    if (inner.upper[i] > upper[i] + tolerance ||
        inner.lower[i] < lower[i] - tolerance) {
      return false;
    }
  }
  return true;
}

namespace {

enum class Extremum { kMax, kMin };

Series SlidingExtremum(const Series& s, int band, Extremum which) {
  const std::size_t n = s.size();
  if (band <= 0 || n == 0) return s;
  // A window radius of n-1 already covers the whole array from any i, so
  // clamp larger bands up front. This keeps the window arithmetic below
  // (`i + band` as size_t, `i - band` as long) inside the ranges the deque
  // logic assumes even for band values near INT_MAX, instead of relying on
  // each call site to pass a sane radius.
  if (static_cast<std::size_t>(band) >= n) {
    band = static_cast<int>(n - 1);
    if (band == 0) return s;  // n == 1: the window is the single element.
  }
  Series out(n);
  // Monotonic deque of indices; front always holds the extremum of the
  // current window [i-band, i+band] (clamped).
  std::deque<std::size_t> dq;
  auto beats = [&](double a, double b) {
    return which == Extremum::kMax ? a >= b : a <= b;
  };
  std::size_t next_in = 0;  // next index to admit into the deque
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t win_hi =
        std::min(n - 1, i + static_cast<std::size_t>(band));
    while (next_in <= win_hi) {
      while (!dq.empty() && beats(s[next_in], s[dq.back()])) dq.pop_back();
      dq.push_back(next_in);
      ++next_in;
    }
    const std::size_t win_lo =
        (static_cast<long>(i) - band > 0) ? i - static_cast<std::size_t>(band)
                                          : 0;
    while (!dq.empty() && dq.front() < win_lo) dq.pop_front();
    out[i] = s[dq.front()];
  }
  return out;
}

}  // namespace

Series SlidingMax(const Series& s, int band) {
  return SlidingExtremum(s, band, Extremum::kMax);
}

Series SlidingMin(const Series& s, int band) {
  return SlidingExtremum(s, band, Extremum::kMin);
}

Envelope Envelope::ExpandedForDtw(int band) const {
  ROTIND_CONTRACT(band >= 0,
                  "ExpandedForDtw: the Sakoe-Chiba band radius cannot be "
                  "negative; a negative band silently degenerates to a "
                  "copy and breaks the Proposition 2 containment proof");
  ROTIND_CONTRACT(IsOrdered(),
                  "ExpandedForDtw: the source wedge must satisfy L <= U; "
                  "sliding max/min of a crossed envelope is not a wedge");
  Envelope out;
  out.upper = SlidingMax(upper, band);
  out.lower = SlidingMin(lower, band);
  ROTIND_CONTRACT(out.Encloses(*this),
                  "Proposition 2: the band-widened DTW envelope must "
                  "contain the Euclidean envelope it was derived from");
  return out;
}

}  // namespace rotind
