#ifndef ROTIND_ENVELOPE_ENVELOPE_H_
#define ROTIND_ENVELOPE_ENVELOPE_H_

#include <cstddef>

#include "src/core/series.h"

namespace rotind {

/// A time-series wedge W = {U, L} (paper Section 4.1, Figure 6): the
/// smallest bounding envelope enclosing a set of candidate sequences from
/// above (U) and below (L), i.e. for every member C of the set and every i,
/// L_i <= C_i <= U_i.
struct Envelope {
  Series upper;
  Series lower;

  std::size_t size() const { return upper.size(); }

  /// Degenerate wedge of a single sequence (U = L = s).
  static Envelope FromSeries(const double* s, std::size_t n);
  static Envelope FromSeries(const Series& s) {
    return FromSeries(s.data(), s.size());
  }

  /// Smallest wedge containing both operands (paper's hierarchal nesting,
  /// Figure 7: W((1,2),3) from W(1,2) and W3).
  static Envelope Merge(const Envelope& a, const Envelope& b);

  /// Pointwise widening by another envelope.
  void MergeInPlace(const Envelope& other);

  /// Pointwise widening by a raw series (cheaper than FromSeries + Merge).
  void MergeSeries(const double* s, std::size_t n);

  /// sum_i (U_i - L_i): the paper's utility heuristic — wedges with small
  /// area retain pruning power, "fat" wedges do not (Figure 8).
  double Area() const;

  /// True when L_i <= s_i <= U_i for all i (used by tests and debug checks).
  bool Contains(const double* s, std::size_t n, double tolerance = 0.0) const;

  /// Structural sanity of a wedge: L_i <= U_i + tolerance for all i. Every
  /// LB_Keogh proof (Propositions 1-2) presupposes this ordering; the
  /// ROTIND_CONTRACT checks assert it wherever envelopes are combined.
  bool IsOrdered(double tolerance = 0.0) const;

  /// True when `inner` fits inside this wedge pointwise:
  /// L_i <= inner.L_i and inner.U_i <= U_i (+/- tolerance) for all i.
  /// This is the hierarchal-nesting invariant (paper Figure 7) and the
  /// Proposition 2 containment (band-widened wedge encloses the original).
  bool Encloses(const Envelope& inner, double tolerance = 0.0) const;

  /// The DTW envelope of Proposition 2: DTW_U_i = max(U_{i-band..i+band}),
  /// DTW_L_i = min(L_{i-band..i+band}) (clamped at the ends, matching the
  /// Sakoe-Chiba constraint |i-j| <= band; indices do not wrap). Computed in
  /// O(n) with monotonic deques. band = 0 returns a copy.
  Envelope ExpandedForDtw(int band) const;
};

/// Sliding-window maximum of `s` with window [i-band, i+band] clamped to the
/// array. O(n) monotonic-deque implementation, exposed for reuse/testing.
Series SlidingMax(const Series& s, int band);

/// Sliding-window minimum, same window semantics.
Series SlidingMin(const Series& s, int band);

}  // namespace rotind

#endif  // ROTIND_ENVELOPE_ENVELOPE_H_
