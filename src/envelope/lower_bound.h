#ifndef ROTIND_ENVELOPE_LOWER_BOUND_H_
#define ROTIND_ENVELOPE_LOWER_BOUND_H_

#include <cstddef>

#include "src/core/step_counter.h"
#include "src/envelope/envelope.h"

namespace rotind {

/// LB_Keogh (paper Section 4.1):
///
///   LB_Keogh(Q, W) = sqrt( sum_i  (q_i - U_i)^2  if q_i > U_i
///                                 (q_i - L_i)^2  if q_i < L_i
///                                 0              otherwise )
///
/// For a wedge W enclosing candidate sequences C_1..C_k,
/// LB_Keogh(Q, W) <= ED(Q, C_s) for every s (Proposition 1). With a
/// band-expanded wedge (Envelope::ExpandedForDtw) the same function
/// lower-bounds DTW (Proposition 2). When W is degenerate (U = L = C) it
/// equals the Euclidean distance exactly.
///
/// Abandonment sentinel contract: every early-abandoning function in this
/// header signals abandonment by returning kAbandoned (defined in
/// src/distance/euclidean.h as +infinity — the two names are ONE value,
/// not two sentinels). The squared variants return it for the squared
/// bound, the unsquared for the bound itself; a caller may test either
/// with std::isinf. tests/lower_bound_test.cc pins this contract.

/// Full LB_Keogh; charges n steps.
double LbKeogh(const double* q, const Envelope& wedge,
               StepCounter* counter = nullptr);

/// Early-abandoning squared LB_Keogh against raw envelope pointers (paper
/// Table 5): aborts returning kAbandoned (+infinity) once the accumulator
/// exceeds `squared_limit`; otherwise returns the squared lower bound.
/// Charges one step per point examined.
double EarlyAbandonLbKeoghSquared(const double* q, const double* upper,
                                  const double* lower, std::size_t n,
                                  double squared_limit,
                                  StepCounter* counter = nullptr);

/// Early-abandoning LB_Keogh (unsquared convenience): returns kAbandoned
/// (+infinity) on abandonment or the exact lower bound.
double EarlyAbandonLbKeogh(const double* q, const Envelope& wedge,
                           double limit, StepCounter* counter = nullptr);

/// LB_Improved (Lemire, "Faster Retrieval with a Two-Pass Dynamic-Time-
/// Warping Lower Bound", arXiv:0811.3301) generalized from single series
/// to rotation wedges. Pass 1 is LB_Keogh of candidate C against the
/// band-EXPANDED wedge (Proposition 2). When it fails to prune, C is
/// projected onto that envelope, H_i = clamp(c_i, L^e_i, U^e_i), and pass
/// 2 adds the squared gap, at every index j, between the ORIGINAL wedge
/// interval [L_j, U_j] and the sliding min/max envelope of H with the same
/// band — the LB_Keogh of the projection seen from the wedge's side. For
/// every path step (i, j) inside the Sakoe-Chiba band, q_j lies in
/// [L^e_i, U^e_i], so (c_i - q_j)^2 >= (c_i - h_i)^2 + (h_i - q_j)^2;
/// summing over any warping path yields, for EVERY series Q enclosed by
/// the wedge (every rotation, mirrors included):
///
///   LB_Keogh(C, W^band)^2 <= LbImprovedSquared(C, W, ...) <= DTW_band(C, Q)^2
///
/// band = 0 is the Euclidean specialization (ED on the right). The first
/// inequality is exact in floating point, not just in the reals: pass 2
/// only adds non-negative terms to the pass-1 accumulator.

/// Two-pass squared bound with early abandonment: returns kAbandoned
/// (+infinity) as soon as the running sum exceeds `squared_limit`,
/// otherwise the squared bound. `expanded` must be wedge.ExpandedForDtw(
/// band) computed once per query (contract-checked). Charges one step per
/// point examined in each pass plus 2n for the projection envelope build.
double LbImprovedSquared(const double* c, const Envelope& wedge,
                         const Envelope& expanded, int band,
                         double squared_limit,
                         StepCounter* counter = nullptr);

/// Unsquared convenience that builds the expanded wedge itself: returns
/// kAbandoned (+infinity) on abandonment or the exact lower bound.
double LbImproved(const double* c, const Envelope& wedge, int band,
                  double limit, StepCounter* counter = nullptr);

}  // namespace rotind

#endif  // ROTIND_ENVELOPE_LOWER_BOUND_H_
