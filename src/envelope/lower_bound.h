#ifndef ROTIND_ENVELOPE_LOWER_BOUND_H_
#define ROTIND_ENVELOPE_LOWER_BOUND_H_

#include <cstddef>

#include "src/core/step_counter.h"
#include "src/envelope/envelope.h"

namespace rotind {

/// LB_Keogh (paper Section 4.1):
///
///   LB_Keogh(Q, W) = sqrt( sum_i  (q_i - U_i)^2  if q_i > U_i
///                                 (q_i - L_i)^2  if q_i < L_i
///                                 0              otherwise )
///
/// For a wedge W enclosing candidate sequences C_1..C_k,
/// LB_Keogh(Q, W) <= ED(Q, C_s) for every s (Proposition 1). With a
/// band-expanded wedge (Envelope::ExpandedForDtw) the same function
/// lower-bounds DTW (Proposition 2). When W is degenerate (U = L = C) it
/// equals the Euclidean distance exactly.

/// Full LB_Keogh; charges n steps.
double LbKeogh(const double* q, const Envelope& wedge,
               StepCounter* counter = nullptr);

/// Early-abandoning squared LB_Keogh against raw envelope pointers (paper
/// Table 5): aborts returning +infinity once the accumulator exceeds
/// `squared_limit`; otherwise returns the squared lower bound. Charges one
/// step per point examined.
double EarlyAbandonLbKeoghSquared(const double* q, const double* upper,
                                  const double* lower, std::size_t n,
                                  double squared_limit,
                                  StepCounter* counter = nullptr);

/// Early-abandoning LB_Keogh (unsquared convenience): returns kAbandoned or
/// the exact lower bound.
double EarlyAbandonLbKeogh(const double* q, const Envelope& wedge,
                           double limit, StepCounter* counter = nullptr);

}  // namespace rotind

#endif  // ROTIND_ENVELOPE_LOWER_BOUND_H_
