#include "src/envelope/candidate_wedge.h"

#include <cassert>
#include <cmath>

#include "src/core/contracts.h"
#include "src/distance/dtw.h"
#include "src/distance/euclidean.h"
#include "src/envelope/lower_bound.h"

namespace rotind {

CandidateWedgeSet::CandidateWedgeSet(std::vector<Series> candidates,
                                     int dtw_band, StepCounter* counter)
    : candidates_(std::move(candidates)), dtw_band_(dtw_band) {
  assert(!candidates_.empty());
  length_ = candidates_[0].size();
  for (const Series& c : candidates_) {
    assert(c.size() == length_);
    (void)c;
  }

  const int count = static_cast<int>(candidates_.size());
  if (count == 1) {
    dendrogram_.num_leaves = 1;
    dendrogram_.nodes.resize(1);
  } else {
    // Group-average clustering on true pairwise Euclidean distances.
    // O(P^2) distance evaluations of n steps each; charged as setup.
    dendrogram_ = AgglomerativeCluster(
        count,
        [&](int i, int j) {
          return EuclideanDistance(candidates_[static_cast<std::size_t>(i)],
                                   candidates_[static_cast<std::size_t>(j)]);
        },
        Linkage::kAverage);
    AddSetupSteps(counter, static_cast<std::uint64_t>(count) * (count - 1) /
                               2 * length_);
  }

  // Envelopes bottom-up; children always precede parents.
  envelopes_.resize(dendrogram_.nodes.size());
  for (int id = 0; id < count; ++id) {
    Envelope env = Envelope::FromSeries(
        candidates_[static_cast<std::size_t>(id)]);
    envelopes_[static_cast<std::size_t>(id)] =
        dtw_band_ > 0 ? env.ExpandedForDtw(dtw_band_) : std::move(env);
  }
  for (std::size_t id = static_cast<std::size_t>(count);
       id < dendrogram_.nodes.size(); ++id) {
    const auto& node = dendrogram_.nodes[id];
    envelopes_[id] = Envelope::Merge(
        envelopes_[static_cast<std::size_t>(node.left)],
        envelopes_[static_cast<std::size_t>(node.right)]);
    ROTIND_CONTRACT(
        envelopes_[id].Encloses(
            envelopes_[static_cast<std::size_t>(node.left)]) &&
            envelopes_[id].Encloses(
                envelopes_[static_cast<std::size_t>(node.right)]),
        "hierarchal nesting: a merged candidate wedge must enclose both "
        "children, or subtree pruning discards reachable matches");
  }
}

int CandidateWedgeSet::LeftChild(int id) const {
  return dendrogram_.nodes[static_cast<std::size_t>(id)].left;
}

int CandidateWedgeSet::RightChild(int id) const {
  return dendrogram_.nodes[static_cast<std::size_t>(id)].right;
}

std::vector<int> CandidateWedgeSet::WedgeSetForK(int k) const {
  return dendrogram_.CutIntoK(k);
}

std::vector<std::pair<int, double>> CandidateWedgeSet::FilterWithinRadius(
    const double* q, double radius, const std::vector<int>& wedge_set,
    StepCounter* counter) const {
  std::vector<std::pair<int, double>> hits;
  const double squared_radius = radius * radius;

  std::vector<int> stack(wedge_set.begin(), wedge_set.end());
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();

    const Envelope& env = EnvelopeOf(id);
    const double lb_sq = EarlyAbandonLbKeoghSquared(
        q, env.upper.data(), env.lower.data(), length_, squared_radius,
        counter);
    if (std::isinf(lb_sq)) continue;

    if (!IsLeaf(id)) {
      stack.push_back(LeftChild(id));
      stack.push_back(RightChild(id));
      continue;
    }

    double dist;
    if (dtw_band_ > 0) {
      dist = EarlyAbandonDtw(CandidateOf(id).data(), q, length_, dtw_band_,
                             radius, counter);
      if (std::isinf(dist)) continue;
      ROTIND_CONTRACT(lb_sq <= dist * dist * (1.0 + 1e-9) + 1e-9,
                      "Proposition 2: LB_Keogh on a band-widened wedge "
                      "must never exceed the exact banded DTW");
    } else {
      dist = std::sqrt(lb_sq);  // degenerate wedge: LB IS the distance
    }
    if (dist <= radius) hits.emplace_back(id, dist);
  }
  return hits;
}

}  // namespace rotind
