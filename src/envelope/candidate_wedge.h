#ifndef ROTIND_ENVELOPE_CANDIDATE_WEDGE_H_
#define ROTIND_ENVELOPE_CANDIDATE_WEDGE_H_

#include <cstddef>
#include <vector>

#include "src/cluster/linkage.h"
#include "src/core/series.h"
#include "src/core/step_counter.h"
#include "src/envelope/envelope.h"

namespace rotind {

/// A hierarchal wedge structure over an ARBITRARY set of candidate
/// sequences — the paper's Section 4.1 in its full generality (the
/// WedgeTree class specialises this to the rotations of one query, where
/// the lag trick makes construction O(n^2); this class handles the general
/// case used for multi-pattern stream filtering, ref [40] "Atomic
/// Wedgie"). Candidates are clustered with group-average linkage on
/// Euclidean distance; every node stores the merged envelope.
class CandidateWedgeSet {
 public:
  /// Builds the hierarchy over `candidates` (all the same length).
  /// `dtw_band` > 0 additionally expands every envelope for DTW/LCSS-style
  /// windowed matching. Pairwise-distance construction cost (O(P^2 n) for
  /// P candidates) is charged to counter->setup_steps.
  CandidateWedgeSet(std::vector<Series> candidates, int dtw_band,
                    StepCounter* counter);

  std::size_t length() const { return length_; }
  std::size_t num_candidates() const { return candidates_.size(); }
  int num_nodes() const { return static_cast<int>(envelopes_.size()); }
  int root() const { return num_nodes() - 1; }

  bool IsLeaf(int id) const {
    return id < static_cast<int>(candidates_.size());
  }
  int LeftChild(int id) const;
  int RightChild(int id) const;
  const Envelope& EnvelopeOf(int id) const {
    return envelopes_[static_cast<std::size_t>(id)];
  }
  const Series& CandidateOf(int id) const {
    return candidates_[static_cast<std::size_t>(id)];
  }

  /// The wedge set of size k (nested dendrogram cuts, paper Figure 10).
  std::vector<int> WedgeSetForK(int k) const;

  /// Range filter: returns every candidate within `radius` of `q` (exact;
  /// wedges whose early-abandoning LB_Keogh exceeds the radius discard all
  /// their members at once). Pairs are (candidate index, distance).
  std::vector<std::pair<int, double>> FilterWithinRadius(
      const double* q, double radius, const std::vector<int>& wedge_set,
      StepCounter* counter = nullptr) const;

 private:
  std::size_t length_ = 0;
  std::vector<Series> candidates_;
  int dtw_band_ = 0;
  Dendrogram dendrogram_;
  std::vector<Envelope> envelopes_;
};

}  // namespace rotind

#endif  // ROTIND_ENVELOPE_CANDIDATE_WEDGE_H_
