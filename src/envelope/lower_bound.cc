#include "src/envelope/lower_bound.h"

#include <cmath>
#include <limits>

#include "src/core/contracts.h"
#include "src/distance/euclidean.h"
#include "src/simd/simd.h"

namespace rotind {

double LbKeogh(const double* q, const Envelope& wedge, StepCounter* counter) {
  ROTIND_CONTRACT(wedge.IsOrdered(),
                  "LB_Keogh requires a valid wedge (L <= U pointwise); a "
                  "crossed envelope silently breaks Proposition 1");
  const std::size_t n = wedge.size();
  // The never-abandoning case of the dispatched kernel: an infinite limit
  // makes it accumulate all n points, exactly the old branchy loop.
  std::size_t examined = 0;
  const double acc = simd::Kernels().lb_keogh_sq(
      q, wedge.upper.data(), wedge.lower.data(), n,
      std::numeric_limits<double>::infinity(), &examined);
  AddSteps(counter, n);
  if (counter != nullptr) ++counter->lower_bound_evals;
  return std::sqrt(acc);
}

double EarlyAbandonLbKeoghSquared(const double* q, const double* upper,
                                  const double* lower, std::size_t n,
                                  double squared_limit,
                                  StepCounter* counter) {
  if (counter != nullptr) ++counter->lower_bound_evals;
#if ROTIND_CONTRACTS_ENABLED
  // The dispatched kernels are branchless on L <= U, so check the whole
  // envelope up front in contract builds (strictly stronger than the old
  // per-visited-point check).
  for (std::size_t i = 0; i < n; ++i) {
    ROTIND_DCHECK(lower[i] <= upper[i]);
  }
#endif
  // Each point performs (at most) one real-value subtraction that feeds
  // the accumulator; the comparisons against U/L mirror the paper's
  // Table 5 structure. The kernel reports how many points it consumed
  // before abandoning — that is the step charge.
  std::size_t examined = 0;
  const double acc =
      simd::Kernels().lb_keogh_sq(q, upper, lower, n, squared_limit, &examined);
  // Abandoned iff the accumulator tripped the limit; an accumulator that
  // legitimately reaches +inf under an infinite limit (overflow) is a
  // survivor, exactly as `acc > limit` decided in the scalar loop.
  if (std::isinf(acc) && acc > squared_limit) {
    if (counter != nullptr) {
      counter->steps += examined;
      ++counter->early_abandons;
    }
    return std::numeric_limits<double>::infinity();
  }
  AddSteps(counter, n);
  return acc;
}

double EarlyAbandonLbKeogh(const double* q, const Envelope& wedge,
                           double limit, StepCounter* counter) {
  const double squared_limit =
      std::isinf(limit) ? limit : limit * limit;
  const double sq = EarlyAbandonLbKeoghSquared(
      q, wedge.upper.data(), wedge.lower.data(), wedge.size(), squared_limit,
      counter);
  return std::isinf(sq) ? kAbandoned : std::sqrt(sq);
}

}  // namespace rotind
