#include "src/envelope/lower_bound.h"

#include <cmath>
#include <limits>

#include "src/core/contracts.h"
#include "src/distance/euclidean.h"
#include "src/simd/simd.h"

namespace rotind {

double LbKeogh(const double* q, const Envelope& wedge, StepCounter* counter) {
  ROTIND_CONTRACT(wedge.IsOrdered(),
                  "LB_Keogh requires a valid wedge (L <= U pointwise); a "
                  "crossed envelope silently breaks Proposition 1");
  const std::size_t n = wedge.size();
  // The never-abandoning case of the dispatched kernel: an infinite limit
  // makes it accumulate all n points, exactly the old branchy loop.
  std::size_t examined = 0;
  const double acc = simd::Kernels().lb_keogh_sq(
      q, wedge.upper.data(), wedge.lower.data(), n,
      std::numeric_limits<double>::infinity(), &examined);
  AddSteps(counter, n);
  if (counter != nullptr) ++counter->lower_bound_evals;
  return std::sqrt(acc);
}

double EarlyAbandonLbKeoghSquared(const double* q, const double* upper,
                                  const double* lower, std::size_t n,
                                  double squared_limit,
                                  StepCounter* counter) {
  if (counter != nullptr) ++counter->lower_bound_evals;
#if ROTIND_CONTRACTS_ENABLED
  // The dispatched kernels are branchless on L <= U, so check the whole
  // envelope up front in contract builds (strictly stronger than the old
  // per-visited-point check).
  for (std::size_t i = 0; i < n; ++i) {
    ROTIND_DCHECK(lower[i] <= upper[i]);
  }
#endif
  // Each point performs (at most) one real-value subtraction that feeds
  // the accumulator; the comparisons against U/L mirror the paper's
  // Table 5 structure. The kernel reports how many points it consumed
  // before abandoning — that is the step charge.
  std::size_t examined = 0;
  const double acc =
      simd::Kernels().lb_keogh_sq(q, upper, lower, n, squared_limit, &examined);
  // Abandoned iff the accumulator tripped the limit; an accumulator that
  // legitimately reaches +inf under an infinite limit (overflow) is a
  // survivor, exactly as `acc > limit` decided in the scalar loop.
  if (std::isinf(acc) && acc > squared_limit) {
    if (counter != nullptr) {
      counter->steps += examined;
      ++counter->early_abandons;
    }
    return std::numeric_limits<double>::infinity();
  }
  AddSteps(counter, n);
  return acc;
}

double EarlyAbandonLbKeogh(const double* q, const Envelope& wedge,
                           double limit, StepCounter* counter) {
  const double squared_limit =
      std::isinf(limit) ? limit : limit * limit;
  const double sq = EarlyAbandonLbKeoghSquared(
      q, wedge.upper.data(), wedge.lower.data(), wedge.size(), squared_limit,
      counter);
  return std::isinf(sq) ? kAbandoned : std::sqrt(sq);
}

double LbImprovedSquared(const double* c, const Envelope& wedge,
                         const Envelope& expanded, int band,
                         double squared_limit, StepCounter* counter) {
  ROTIND_CONTRACT(wedge.size() == expanded.size(),
                  "LB_Improved: the expanded wedge must be the band "
                  "expansion of the original (sizes differ)");
  ROTIND_CONTRACT(expanded.Encloses(wedge),
                  "LB_Improved: pass 1 runs against ExpandedForDtw(band) "
                  "of the wedge; a non-enclosing 'expansion' voids the "
                  "per-path-step inequality (Proposition 2)");
  const std::size_t n = wedge.size();
  if (counter != nullptr) ++counter->lower_bound_evals;

  // Pass 1: LB_Keogh of the candidate against the band-expanded wedge,
  // fused with the projection H_i = clamp(c_i, L^e_i, U^e_i). Identical
  // accumulation/abandonment to EarlyAbandonLbKeoghSquared — the FP
  // guarantee LB_Keogh <= LB_Improved rests on pass 2 only ADDING to this
  // exact pass-1 sum.
  Series proj(n);
  std::size_t examined = 0;
  const double pass1 = simd::Kernels().lb_keogh_proj_sq(
      c, expanded.upper.data(), expanded.lower.data(), proj.data(), n,
      squared_limit, &examined);
  if (std::isinf(pass1) && pass1 > squared_limit) {
    if (counter != nullptr) {
      counter->steps += examined;
      ++counter->early_abandons;
    }
    return kAbandoned;
  }
  AddSteps(counter, n);

  // Pass 2: the projection's own sliding envelope under the same band,
  // then the per-index interval gap against the UNexpanded wedge. Every
  // enclosed rotation q has q_j in [L_j, U_j] and its path partners h_i in
  // [LH_j, UH_j], so each gap term lower-bounds that column's warping
  // cost in DTW(H, Q).
  const Series proj_upper = SlidingMax(proj, band);
  const Series proj_lower = SlidingMin(proj, band);
  AddSteps(counter, 2 * n);
  double acc = pass1;
  for (std::size_t j = 0; j < n; ++j) {
    const double below = wedge.lower[j] - proj_upper[j];
    const double above = proj_lower[j] - wedge.upper[j];
    const double gap = std::max(std::max(below, above), 0.0);
    acc += gap * gap;
    if (acc > squared_limit) {
      if (counter != nullptr) {
        counter->steps += j + 1;
        ++counter->early_abandons;
      }
      return kAbandoned;
    }
  }
  AddSteps(counter, n);
  return acc;
}

double LbImproved(const double* c, const Envelope& wedge, int band,
                  double limit, StepCounter* counter) {
  const Envelope expanded = wedge.ExpandedForDtw(band);
  const double squared_limit =
      std::isinf(limit) ? limit : limit * limit;
  const double sq =
      LbImprovedSquared(c, wedge, expanded, band, squared_limit, counter);
  return std::isinf(sq) ? kAbandoned : std::sqrt(sq);
}

}  // namespace rotind
