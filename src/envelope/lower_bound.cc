#include "src/envelope/lower_bound.h"

#include <cmath>
#include <limits>

#include "src/core/contracts.h"
#include "src/distance/euclidean.h"

namespace rotind {

double LbKeogh(const double* q, const Envelope& wedge, StepCounter* counter) {
  ROTIND_CONTRACT(wedge.IsOrdered(),
                  "LB_Keogh requires a valid wedge (L <= U pointwise); a "
                  "crossed envelope silently breaks Proposition 1");
  const std::size_t n = wedge.size();
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (q[i] > wedge.upper[i]) {
      const double d = q[i] - wedge.upper[i];
      acc += d * d;
    } else if (q[i] < wedge.lower[i]) {
      const double d = q[i] - wedge.lower[i];
      acc += d * d;
    }
  }
  AddSteps(counter, n);
  if (counter != nullptr) ++counter->lower_bound_evals;
  return std::sqrt(acc);
}

double EarlyAbandonLbKeoghSquared(const double* q, const double* upper,
                                  const double* lower, std::size_t n,
                                  double squared_limit,
                                  StepCounter* counter) {
  if (counter != nullptr) ++counter->lower_bound_evals;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ROTIND_DCHECK(lower[i] <= upper[i]);
    // Each point performs (at most) one real-value subtraction that feeds
    // the accumulator; the comparisons against U/L mirror the paper's
    // Table 5 structure.
    if (q[i] > upper[i]) {
      const double d = q[i] - upper[i];
      acc += d * d;
    } else if (q[i] < lower[i]) {
      const double d = q[i] - lower[i];
      acc += d * d;
    }
    if (acc > squared_limit) {
      if (counter != nullptr) {
        counter->steps += i + 1;
        ++counter->early_abandons;
      }
      return std::numeric_limits<double>::infinity();
    }
  }
  AddSteps(counter, n);
  return acc;
}

double EarlyAbandonLbKeogh(const double* q, const Envelope& wedge,
                           double limit, StepCounter* counter) {
  const double squared_limit =
      std::isinf(limit) ? limit : limit * limit;
  const double sq = EarlyAbandonLbKeoghSquared(
      q, wedge.upper.data(), wedge.lower.data(), wedge.size(), squared_limit,
      counter);
  return std::isinf(sq) ? kAbandoned : std::sqrt(sq);
}

}  // namespace rotind
