#ifndef ROTIND_ENVELOPE_WEDGE_TREE_H_
#define ROTIND_ENVELOPE_WEDGE_TREE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "src/cluster/linkage.h"
#include "src/core/step_counter.h"
#include "src/distance/rotation.h"
#include "src/envelope/envelope.h"

namespace rotind {

/// How the wedge hierarchy over the rotations is derived.
enum class WedgeHierarchy {
  /// Agglomerative clustering of the rotations (the paper's method,
  /// Section 4.1 / Figure 9). Exploits the lag-distance trick: pairwise
  /// distances between rotations of the same series depend only on the
  /// shift difference, so the whole distance structure costs O(n^2) steps.
  kClustered,
  /// Balanced binary merging of contiguous shift ranges (ablation baseline:
  /// adjacent rotations are usually the most similar, so this is a cheap
  /// heuristic hierarchy; benches compare it against kClustered).
  kContiguous,
};

/// A hierarchy of wedges over every candidate rotation of a query series
/// (paper Section 4.1). Node ids follow the dendrogram convention: ids
/// [0, count) are leaves (one per candidate rotation), higher ids are
/// merges; the last id is the root enclosing all rotations.
///
/// In Euclidean mode (dtw_band == 0) leaf "envelopes" are the rotations
/// themselves, accessed zero-copy from the RotationSet: LB_Keogh against a
/// degenerate wedge IS the Euclidean distance, so H-Merge's leaf evaluation
/// doubles as the exact distance computation. In DTW mode (dtw_band > 0)
/// every node's envelope, including leaves, is pre-expanded by the band
/// (Proposition 2), and exact DTW runs against the raw rotation.
class WedgeTree {
 public:
  /// Builds the tree. Charges the O(n^2) lag-distance setup to
  /// `counter->setup_steps` — this is the startup cost the paper includes
  /// in its Section 5.3 accounting.
  WedgeTree(const Series& query, const RotationOptions& rotation_options,
            int dtw_band, Linkage linkage, WedgeHierarchy hierarchy,
            StepCounter* counter);

  /// Convenience: clustered, group-average hierarchy.
  WedgeTree(const Series& query, const RotationOptions& rotation_options,
            int dtw_band, StepCounter* counter)
      : WedgeTree(query, rotation_options, dtw_band, Linkage::kAverage,
                  WedgeHierarchy::kClustered, counter) {}

  std::size_t length() const { return rotations_.length(); }
  std::size_t num_rotations() const { return rotations_.count(); }
  int num_nodes() const { return static_cast<int>(counts_.size()); }
  int root() const { return num_nodes() - 1; }
  int dtw_band() const { return dtw_band_; }
  const RotationSet& rotations() const { return rotations_; }

  bool IsLeaf(int id) const {
    return id < static_cast<int>(rotations_.count());
  }
  int LeftChild(int id) const { return left_[static_cast<std::size_t>(id)]; }
  int RightChild(int id) const { return right_[static_cast<std::size_t>(id)]; }
  /// Number of rotations enclosed by node `id` (cardinality in Table 6).
  int CountUnder(int id) const { return counts_[static_cast<std::size_t>(id)]; }

  /// Upper envelope of node `id` (n contiguous doubles).
  const double* Upper(int id) const;
  /// Lower envelope of node `id`.
  const double* Lower(int id) const;
  /// The raw (un-expanded) rotation series backing leaf `id`.
  const double* LeafSeries(int id) const { return rotations_.rotation(id); }

  /// The wedge set W of size k: node ids partitioning all rotations (paper
  /// Figure 10 — nested cuts of the dendrogram). k clamps to
  /// [1, num_rotations()].
  std::vector<int> WedgeSetForK(int k) const;

  int max_k() const { return static_cast<int>(rotations_.count()); }

  /// Envelope area of node `id` (pruning-utility heuristic; exposed for the
  /// ablation benches and tests).
  double AreaOf(int id) const;

 private:
  void BuildEnvelopes();

  RotationSet rotations_;
  int dtw_band_ = 0;
  Dendrogram dendrogram_;
  std::vector<int> left_;
  std::vector<int> right_;
  std::vector<int> counts_;
  /// Envelopes for internal nodes always; for leaves only in DTW mode.
  std::vector<Envelope> envelopes_;
};

}  // namespace rotind

#endif  // ROTIND_ENVELOPE_WEDGE_TREE_H_
