#include "src/envelope/wedge_tree.h"

#include <cassert>
#include <cmath>
#include <functional>

#include "src/core/contracts.h"

namespace rotind {
namespace {

/// Lag tables: pairwise Euclidean distances between rotations of one series
/// depend only on the shift difference (and, with mirrors, the chirality
/// pair), so the full O(count^2) distance structure is captured by O(n)
/// values computed in O(n^2) steps. This is the wedge-construction startup
/// cost the paper's Section 5.3 accounts for.
struct LagTables {
  /// same[l] = ED(s, RotateLeft(s, l)); also covers mirrored-vs-mirrored.
  Series same;
  /// cross[c] = ED(rotation(a, plain), rotation(b, mirrored)) where
  /// c = (a - b - 1) mod n. Empty when mirrors are disabled.
  Series cross;
};

LagTables ComputeLagTables(const Series& s, bool mirror,
                           StepCounter* counter) {
  const std::size_t n = s.size();
  LagTables t;
  t.same.resize(n, 0.0);
  for (std::size_t lag = 0; lag < n; ++lag) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = s[i] - s[(i + lag) % n];
      acc += d * d;
    }
    t.same[lag] = std::sqrt(acc);
  }
  AddSetupSteps(counter, static_cast<std::uint64_t>(n) * n);
  if (mirror) {
    t.cross.resize(n, 0.0);
    for (std::size_t c = 0; c < n; ++c) {
      double acc = 0.0;
      for (std::size_t u = 0; u < n; ++u) {
        const double d = s[u] - s[(c + n - u) % n];
        acc += d * d;
      }
      t.cross[c] = std::sqrt(acc);
    }
    AddSetupSteps(counter, static_cast<std::uint64_t>(n) * n);
  }
  return t;
}

/// Balanced binary hierarchy over contiguous item ranges (ablation
/// baseline). Heights are set to the range size so that CutIntoK always
/// splits the largest remaining range.
Dendrogram ContiguousHierarchy(int count) {
  Dendrogram dg;
  dg.num_leaves = count;
  dg.nodes.resize(static_cast<std::size_t>(count));
  if (count <= 1) return dg;
  // Post-order recursive build; children always get smaller ids.
  std::function<int(int, int)> build = [&](int lo, int hi) -> int {
    if (hi - lo == 1) return lo;
    const int mid = lo + (hi - lo) / 2;
    const int l = build(lo, mid);
    const int r = build(mid, hi);
    Dendrogram::Node node;
    node.left = l;
    node.right = r;
    node.size = hi - lo;
    node.height = static_cast<double>(hi - lo);
    dg.nodes.push_back(node);
    return static_cast<int>(dg.nodes.size()) - 1;
  };
  build(0, count);
  return dg;
}

}  // namespace

WedgeTree::WedgeTree(const Series& query,
                     const RotationOptions& rotation_options, int dtw_band,
                     Linkage linkage, WedgeHierarchy hierarchy,
                     StepCounter* counter)
    : rotations_(query, rotation_options),
      dtw_band_(dtw_band) {
  assert(!query.empty());
  const int count = static_cast<int>(rotations_.count());
  const std::size_t n = rotations_.length();

  if (hierarchy == WedgeHierarchy::kContiguous || count <= 2) {
    dendrogram_ = ContiguousHierarchy(count);
  } else {
    const LagTables tables =
        ComputeLagTables(query, rotation_options.mirror, counter);
    auto dist = [&](int i, int j) -> double {
      const int si = rotations_.shift_of(static_cast<std::size_t>(i));
      const int sj = rotations_.shift_of(static_cast<std::size_t>(j));
      const bool mi = rotations_.mirrored_of(static_cast<std::size_t>(i));
      const bool mj = rotations_.mirrored_of(static_cast<std::size_t>(j));
      const int in = static_cast<int>(n);
      if (mi == mj) {
        return tables.same[static_cast<std::size_t>(((sj - si) % in + in) %
                                                    in)];
      }
      // One plain (shift a), one mirrored (shift b): c = (a - b - 1) mod n.
      const int a = mi ? sj : si;
      const int b = mi ? si : sj;
      return tables.cross[static_cast<std::size_t>(((a - b - 1) % in + in) %
                                                   in)];
    };
    dendrogram_ = AgglomerativeCluster(count, dist, linkage);
  }

  const int num_nodes = static_cast<int>(dendrogram_.nodes.size());
  left_.resize(static_cast<std::size_t>(num_nodes));
  right_.resize(static_cast<std::size_t>(num_nodes));
  counts_.resize(static_cast<std::size_t>(num_nodes));
  for (int id = 0; id < num_nodes; ++id) {
    const auto& node = dendrogram_.nodes[static_cast<std::size_t>(id)];
    left_[static_cast<std::size_t>(id)] = node.left;
    right_[static_cast<std::size_t>(id)] = node.right;
    counts_[static_cast<std::size_t>(id)] = node.size;
  }
  BuildEnvelopes();
}

void WedgeTree::BuildEnvelopes() {
  const int count = static_cast<int>(rotations_.count());
  const int num_nodes = this->num_nodes();
  const std::size_t n = rotations_.length();
  envelopes_.resize(static_cast<std::size_t>(num_nodes));

  if (dtw_band_ > 0) {
    // DTW mode: leaves get band-expanded degenerate wedges.
    for (int id = 0; id < count; ++id) {
      const double* rot = rotations_.rotation(static_cast<std::size_t>(id));
      envelopes_[static_cast<std::size_t>(id)] =
          Envelope::FromSeries(rot, n).ExpandedForDtw(dtw_band_);
    }
  }

  // Internal nodes: children always have smaller ids, so one forward pass
  // suffices.
  for (int id = count; id < num_nodes; ++id) {
    const int l = LeftChild(id);
    const int r = RightChild(id);
    Envelope& env = envelopes_[static_cast<std::size_t>(id)];
    auto absorb = [&](int child) {
      if (dtw_band_ == 0 && IsLeaf(child)) {
        const double* s = rotations_.rotation(static_cast<std::size_t>(child));
        if (env.size() == 0) {
          env = Envelope::FromSeries(s, n);
        } else {
          env.MergeSeries(s, n);
        }
      } else {
        const Envelope& ce = envelopes_[static_cast<std::size_t>(child)];
        if (env.size() == 0) {
          env = ce;
        } else {
          env.MergeInPlace(ce);
        }
      }
    };
    absorb(l);
    absorb(r);
    // Hierarchal nesting (paper Figure 7): every child wedge — an envelope
    // for internal nodes / DTW leaves, the raw rotation for ED leaves —
    // must sit inside its parent, or H-Merge's subtree pruning is unsound.
    ROTIND_CONTRACT(
        ([&] {
          for (int child : {l, r}) {
            const double* cu = Upper(child);
            const double* cl = Lower(child);
            for (std::size_t i = 0; i < n; ++i) {
              if (cu[i] > env.upper[i] || cl[i] < env.lower[i]) return false;
            }
          }
          return true;
        }()),
        "H-Merge hierarchy: child wedges must nest inside their parent");
  }
}

const double* WedgeTree::Upper(int id) const {
  if (dtw_band_ == 0 && IsLeaf(id)) {
    return rotations_.rotation(static_cast<std::size_t>(id));
  }
  return envelopes_[static_cast<std::size_t>(id)].upper.data();
}

const double* WedgeTree::Lower(int id) const {
  if (dtw_band_ == 0 && IsLeaf(id)) {
    return rotations_.rotation(static_cast<std::size_t>(id));
  }
  return envelopes_[static_cast<std::size_t>(id)].lower.data();
}

std::vector<int> WedgeTree::WedgeSetForK(int k) const {
  return dendrogram_.CutIntoK(k);
}

double WedgeTree::AreaOf(int id) const {
  if (dtw_band_ == 0 && IsLeaf(id)) return 0.0;
  return envelopes_[static_cast<std::size_t>(id)].Area();
}

}  // namespace rotind
