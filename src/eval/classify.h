#ifndef ROTIND_EVAL_CLASSIFY_H_
#define ROTIND_EVAL_CLASSIFY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/core/series.h"
#include "src/core/step_counter.h"
#include "src/distance/rotation.h"
#include "src/search/hmerge.h"

namespace rotind {

/// Outcome of a leave-one-out one-nearest-neighbour evaluation — the
/// paper's Table 8 protocol.
struct ClassificationResult {
  int errors = 0;
  int total = 0;
  double error_rate() const {
    return total == 0 ? 0.0 : static_cast<double>(errors) / total;
  }
  /// Work done across all queries (useful for speed comparisons).
  StepCounter counter;
};

/// Generic LOO 1-NN with an arbitrary pairwise distance.
ClassificationResult LeaveOneOutOneNn(
    const Dataset& dataset,
    const std::function<double(const Series&, const Series&)>& distance);

/// Rotation-invariant LOO 1-NN through the QueryEngine's wedge cascade
/// (exact, fast): each held-out item becomes a query whose wedge set scans
/// the rest, over contiguous FlatDataset storage. `num_threads > 1` fans
/// queries out over a worker pool; results (including the merged
/// StepCounter) are bit-identical to the single-threaded run.
ClassificationResult LeaveOneOutOneNnRotationInvariant(
    const Dataset& dataset, DistanceKind kind, int band,
    const RotationOptions& rotation = {}, int num_threads = 1);

/// Picks the best DTW band from `candidates` by LOO error on `train`
/// (ties broken toward the smaller band, as the paper learns R "by looking
/// only at the training data").
int LearnBestBand(const Dataset& train, const std::vector<int>& candidates,
                  const RotationOptions& rotation = {});

}  // namespace rotind

#endif  // ROTIND_EVAL_CLASSIFY_H_
