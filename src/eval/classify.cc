#include "src/eval/classify.h"

#include <cassert>
#include <limits>

#include "src/core/flat_dataset.h"
#include "src/search/engine.h"

namespace rotind {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

ClassificationResult LeaveOneOutOneNn(
    const Dataset& dataset,
    const std::function<double(const Series&, const Series&)>& distance) {
  ClassificationResult result;
  const std::size_t m = dataset.size();
  assert(dataset.labels.size() == m);
  for (std::size_t q = 0; q < m; ++q) {
    double best = kInf;
    int best_label = -1;
    for (std::size_t c = 0; c < m; ++c) {
      if (c == q) continue;
      const double d = distance(dataset.items[q], dataset.items[c]);
      if (d < best) {
        best = d;
        best_label = dataset.labels[c];
      }
    }
    ++result.total;
    if (best_label != dataset.labels[q]) ++result.errors;
  }
  return result;
}

ClassificationResult LeaveOneOutOneNnRotationInvariant(
    const Dataset& dataset, DistanceKind kind, int band,
    const RotationOptions& rotation, int num_threads) {
  ClassificationResult result;
  const std::size_t m = dataset.size();
  assert(dataset.labels.size() == m);

  // Contiguous storage + the engine's wedge cascade; each held-out item
  // becomes a query whose leave-one-out 1-NN scans the rest.
  const FlatDataset flat = FlatDataset::FromDataset(dataset);
  EngineOptions options;
  options.kind = kind;
  options.band = band;
  options.rotation = rotation;
  options.cascade.stages = {StageKind::kWedge};
  const QueryEngine engine(flat, options);

  std::vector<ScanResult> scans(m);
  ParallelFor(m, num_threads, [&](std::size_t q) {
    scans[q] = engine.SearchLeaveOneOut(flat.Materialize(q), q);
  });

  for (std::size_t q = 0; q < m; ++q) {
    result.counter += scans[q].counter;
    const int best_label =
        scans[q].best_index >= 0 ? dataset.labels[scans[q].best_index] : -1;
    ++result.total;
    if (best_label != dataset.labels[q]) ++result.errors;
  }
  return result;
}

int LearnBestBand(const Dataset& train, const std::vector<int>& candidates,
                  const RotationOptions& rotation) {
  assert(!candidates.empty());
  int best_band = candidates.front();
  double best_error = kInf;
  for (int band : candidates) {
    const ClassificationResult r = LeaveOneOutOneNnRotationInvariant(
        train, DistanceKind::kDtw, band, rotation);
    if (r.error_rate() < best_error) {
      best_error = r.error_rate();
      best_band = band;
    }
  }
  return best_band;
}

}  // namespace rotind
