#include "src/io/bytes.h"

#include <fstream>
#include <sstream>

namespace rotind {

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed on " + path);
  return std::move(buf).str();
}

Status WriteStringToFile(const std::string& path,
                         const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) return Status::IoError("short write to " + path);
  return Status::Ok();
}

std::uint64_t Fnv1a64Seeded(const void* data, std::size_t n,
                            std::uint64_t seed) {
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= kPrime;
  }
  return hash;
}

std::uint64_t Fnv1a64(const void* data, std::size_t n) {
  return Fnv1a64Seeded(data, n, kFnv1aOffset);
}

}  // namespace rotind
