#include "src/io/bytes.h"

#include <fcntl.h>
#include <unistd.h>

#include <fstream>
#include <sstream>

namespace rotind {
namespace {

/// fsyncs `path` through a fresh read-only descriptor (fsync flushes the
/// inode's dirty pages regardless of the fd's access mode).
Status FsyncPath(const std::string& path, int open_flags) {
  const int fd = ::open(path.c_str(), open_flags | O_CLOEXEC);
  if (fd < 0) return Status::IoError("cannot open " + path + " for fsync");
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IoError("fsync failed on " + path);
  return Status::Ok();
}

}  // namespace

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed on " + path);
  return std::move(buf).str();
}

Status WriteStringToFile(const std::string& path, const std::string& content,
                         WriteDurability durability) {
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open " + path + " for writing");
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) return Status::IoError("short write to " + path);
  }
  if (durability == WriteDurability::kFsync) {
    return FsyncPath(path, O_RDONLY);
  }
  return Status::Ok();
}

Status SyncDirectory(const std::string& dir) {
  return FsyncPath(dir, O_RDONLY | O_DIRECTORY);
}

std::uint64_t Fnv1a64Seeded(const void* data, std::size_t n,
                            std::uint64_t seed) {
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= kPrime;
  }
  return hash;
}

std::uint64_t Fnv1a64(const void* data, std::size_t n) {
  return Fnv1a64Seeded(data, n, kFnv1aOffset);
}

}  // namespace rotind
