#include "src/io/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

namespace rotind {
namespace {

constexpr char kMagic[4] = {'R', 'I', 'N', 'D'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

void WriteString(std::ostream& out, const std::string& s) {
  WritePod(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadString(std::istream& in, std::string* s) {
  std::uint32_t size = 0;
  if (!ReadPod(in, &size)) return false;
  if (size > (1u << 20)) return false;  // sanity cap on name length
  s->resize(size);
  in.read(s->data(), size);
  return static_cast<bool>(in);
}

}  // namespace

bool SaveDatasetBinary(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  WritePod(out, static_cast<std::uint64_t>(dataset.size()));
  WritePod(out, static_cast<std::uint64_t>(dataset.length()));
  const std::uint8_t has_labels = dataset.labels.empty() ? 0 : 1;
  const std::uint8_t has_names = dataset.names.empty() ? 0 : 1;
  WritePod(out, has_labels);
  WritePod(out, has_names);
  for (const Series& s : dataset.items) {
    if (s.size() != dataset.length()) return false;
    out.write(reinterpret_cast<const char*>(s.data()),
              static_cast<std::streamsize>(s.size() * sizeof(double)));
  }
  if (has_labels != 0) {
    for (int label : dataset.labels) {
      WritePod(out, static_cast<std::int32_t>(label));
    }
  }
  if (has_names != 0) {
    for (const std::string& name : dataset.names) WriteString(out, name);
  }
  return static_cast<bool>(out);
}

bool LoadDatasetBinary(const std::string& path, Dataset* out) {
  if (out == nullptr) return false;
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return false;
  std::uint32_t version = 0;
  if (!ReadPod(in, &version) || version != kVersion) return false;
  std::uint64_t count = 0;
  std::uint64_t length = 0;
  std::uint8_t has_labels = 0;
  std::uint8_t has_names = 0;
  if (!ReadPod(in, &count) || !ReadPod(in, &length) ||
      !ReadPod(in, &has_labels) || !ReadPod(in, &has_names)) {
    return false;
  }

  Dataset ds;
  ds.items.resize(count, Series(length));
  for (Series& s : ds.items) {
    in.read(reinterpret_cast<char*>(s.data()),
            static_cast<std::streamsize>(length * sizeof(double)));
    if (!in) return false;
  }
  if (has_labels != 0) {
    ds.labels.resize(count);
    for (int& label : ds.labels) {
      std::int32_t v = 0;
      if (!ReadPod(in, &v)) return false;
      label = v;
    }
  }
  if (has_names != 0) {
    ds.names.resize(count);
    for (std::string& name : ds.names) {
      if (!ReadString(in, &name)) return false;
    }
  }
  *out = std::move(ds);
  return true;
}

bool SaveDatasetUcr(const Dataset& dataset, const std::string& path,
                    char delimiter) {
  std::ofstream out(path);
  if (!out) return false;
  out.precision(17);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const int label = i < dataset.labels.size() ? dataset.labels[i] : 0;
    out << label;
    for (double v : dataset.items[i]) out << delimiter << v;
    out << '\n';
  }
  return static_cast<bool>(out);
}

bool LoadDatasetUcr(const std::string& path, Dataset* out) {
  if (out == nullptr) return false;
  std::ifstream in(path);
  if (!in) return false;

  Dataset ds;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // Normalise separators: commas and tabs become spaces.
    for (char& c : line) {
      if (c == ',' || c == '\t' || c == '\r') c = ' ';
    }
    std::istringstream fields(line);
    double label = 0.0;
    if (!(fields >> label)) return false;  // malformed line
    Series s;
    double v = 0.0;
    while (fields >> v) s.push_back(v);
    if (s.empty()) return false;
    if (!ds.items.empty() && s.size() != ds.length()) return false;
    ds.items.push_back(std::move(s));
    ds.labels.push_back(static_cast<int>(label));
  }
  if (ds.items.empty()) return false;
  *out = std::move(ds);
  return true;
}

}  // namespace rotind
