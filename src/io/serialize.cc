#include "src/io/serialize.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/io/bytes.h"

namespace rotind {
namespace {

constexpr char kMagic[4] = {'R', 'I', 'N', 'D'};
constexpr std::uint32_t kVersion = 1;
/// Fixed-size binary header: magic, version, count, length, two flag bytes.
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8 + 1 + 1;
/// Per-item name strings longer than this are considered corrupt.
constexpr std::uint32_t kMaxNameBytes = 1u << 20;

void WriteString(std::ostream& out, const std::string& s) {
  WritePod(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

Status ValidateDatasetForSave(const Dataset& dataset) {
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    if (dataset.items[i].size() != dataset.length()) {
      return Status::InvalidArgument(
          "dataset is ragged: item " + std::to_string(i) + " has length " +
          std::to_string(dataset.items[i].size()) + ", expected " +
          std::to_string(dataset.length()));
    }
    for (double v : dataset.items[i]) {
      if (!std::isfinite(v)) {
        return Status(StatusCode::kBadValue,
                      "item " + std::to_string(i) +
                          " contains a non-finite value; refusing to save");
      }
    }
  }
  return Status::Ok();
}

/// Quote an untrusted token for an error message: cap the length and
/// escape non-printable bytes, so a corrupt file cannot inject megabytes
/// of binary garbage into the Status (and thence a terminal or log).
std::string QuoteForError(const std::string& token) {
  constexpr std::size_t kMaxEcho = 40;
  std::string quoted = "'";
  const std::size_t n = std::min(token.size(), kMaxEcho);
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned char c = static_cast<unsigned char>(token[i]);
    if (c >= 0x20 && c < 0x7F) {
      quoted += static_cast<char>(c);
    } else {
      char hex[5];
      std::snprintf(hex, sizeof(hex), "\\x%02X", c);
      quoted += hex;
    }
  }
  quoted += '\'';
  if (token.size() > kMaxEcho) {
    quoted += " (truncated, " + std::to_string(token.size()) + " bytes)";
  }
  return quoted;
}

/// strtod over exactly one token; fails unless the whole token parses.
bool ParseDouble(const std::string& token, double* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size();
}

}  // namespace

Status SaveDatasetBinaryStatus(const Dataset& dataset,
                               const std::string& path) {
  Status valid = ValidateDatasetForSave(dataset);
  if (!valid.ok()) return valid;
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  WritePod(out, static_cast<std::uint64_t>(dataset.size()));
  WritePod(out, static_cast<std::uint64_t>(dataset.length()));
  const std::uint8_t has_labels = dataset.labels.empty() ? 0 : 1;
  const std::uint8_t has_names = dataset.names.empty() ? 0 : 1;
  WritePod(out, has_labels);
  WritePod(out, has_names);
  for (const Series& s : dataset.items) {
    out.write(reinterpret_cast<const char*>(s.data()),
              static_cast<std::streamsize>(s.size() * sizeof(double)));
  }
  if (has_labels != 0) {
    for (int label : dataset.labels) {
      WritePod(out, static_cast<std::int32_t>(label));
    }
  }
  if (has_names != 0) {
    for (const std::string& name : dataset.names) WriteString(out, name);
  }
  if (!out) return Status::IoError("write failed on " + path);
  return Status::Ok();
}

StatusOr<Dataset> ParseDatasetBinary(const char* data, std::size_t size) {
  BufferReader reader(data, size);

  char magic[4];
  if (!reader.ReadBytes(magic, sizeof(magic))) {
    return Status(StatusCode::kTruncated, "file too small to hold the magic");
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status(StatusCode::kBadMagic, "file does not start with 'RIND'");
  }
  std::uint32_t version = 0;
  if (!reader.Read(&version)) {
    return Status(StatusCode::kTruncated, "file ends inside the version field");
  }
  if (version != kVersion) {
    return Status(StatusCode::kVersionMismatch,
                  "container version " + std::to_string(version) +
                      "; this build reads version " + std::to_string(kVersion));
  }
  std::uint64_t count = 0;
  std::uint64_t length = 0;
  std::uint8_t has_labels = 0;
  std::uint8_t has_names = 0;
  if (!reader.Read(&count) || !reader.Read(&length) ||
      !reader.Read(&has_labels) || !reader.Read(&has_names)) {
    return Status(StatusCode::kTruncated, "file ends inside the header");
  }
  if (has_labels > 1 || has_names > 1) {
    return Status(StatusCode::kCorruptHeader,
                  "flag bytes must be 0 or 1");
  }
  if (count == 0) {
    return Status(StatusCode::kEmptyDataset, "container holds zero series");
  }
  if (length == 0) {
    return Status(StatusCode::kCorruptHeader,
                  "zero series length with nonzero count");
  }

  // Sanity caps derived from the ACTUAL file size, checked BEFORE any
  // allocation. A header that no file of this size could satisfy — more
  // rows/elements than remaining bytes, or count*length overflowing — is
  // corrupt outright; a plausible header whose payload merely falls short
  // is a truncation.
  const std::uint64_t remaining = reader.remaining();
  if (length > remaining / sizeof(double)) {
    return Status(StatusCode::kCorruptHeader,
                  "series length " + std::to_string(length) +
                      " cannot fit in a file with " +
                      std::to_string(remaining) + " payload bytes");
  }
  if (count > remaining / sizeof(double)) {
    return Status(StatusCode::kCorruptHeader,
                  "series count " + std::to_string(count) +
                      " cannot fit in a file with " +
                      std::to_string(remaining) + " payload bytes");
  }
  // count, length <= remaining/8 makes count*length*8 overflow-free for any
  // real file (remaining < 2^61), but guard explicitly for completeness.
  if (count != 0 && length > UINT64_MAX / (count * sizeof(double))) {
    return Status(StatusCode::kCorruptHeader, "count*length overflows");
  }
  const std::uint64_t payload_bytes = count * length * sizeof(double);
  if (payload_bytes > remaining) {
    return Status(StatusCode::kTruncated,
                  "payload needs " + std::to_string(payload_bytes) +
                      " bytes but only " + std::to_string(remaining) +
                      " remain");
  }

  Dataset ds;
  ds.items.resize(static_cast<std::size_t>(count),
                  Series(static_cast<std::size_t>(length)));
  for (std::size_t i = 0; i < ds.items.size(); ++i) {
    Series& s = ds.items[i];
    reader.ReadBytes(s.data(), s.size() * sizeof(double));  // proven to fit
    for (std::size_t j = 0; j < s.size(); ++j) {
      if (!std::isfinite(s[j])) {
        return Status(StatusCode::kBadValue,
                      "series " + std::to_string(i) + " value " +
                          std::to_string(j) + " is NaN or Inf");
      }
    }
  }
  if (has_labels != 0) {
    ds.labels.resize(static_cast<std::size_t>(count));
    for (int& label : ds.labels) {
      std::int32_t v = 0;
      if (!reader.Read(&v)) {
        return Status(StatusCode::kTruncated,
                      "file ends inside the label section");
      }
      label = v;
    }
  }
  if (has_names != 0) {
    ds.names.resize(static_cast<std::size_t>(count));
    for (std::string& name : ds.names) {
      std::uint32_t name_len = 0;
      if (!reader.Read(&name_len)) {
        return Status(StatusCode::kTruncated,
                      "file ends inside the name section");
      }
      if (name_len > kMaxNameBytes) {
        return Status(StatusCode::kCorruptHeader,
                      "name length " + std::to_string(name_len) +
                          " exceeds the " + std::to_string(kMaxNameBytes) +
                          "-byte cap");
      }
      if (name_len > reader.remaining()) {
        return Status(StatusCode::kTruncated,
                      "file ends inside a name string");
      }
      name.resize(name_len);
      reader.ReadBytes(name.data(), name_len);
    }
  }
  if (reader.remaining() != 0) {
    return Status(StatusCode::kCorruptHeader,
                  std::to_string(reader.remaining()) +
                      " trailing bytes after the final section");
  }
  return ds;
}

StatusOr<Dataset> LoadDatasetBinaryStatus(const std::string& path) {
  StatusOr<std::string> bytes = ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  return ParseDatasetBinary(bytes->data(), bytes->size());
}

Status SaveDatasetUcrStatus(const Dataset& dataset, const std::string& path,
                            char delimiter) {
  Status valid = ValidateDatasetForSave(dataset);
  if (!valid.ok()) return valid;
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.precision(17);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const int label = i < dataset.labels.size() ? dataset.labels[i] : 0;
    out << label;
    for (double v : dataset.items[i]) out << delimiter << v;
    out << '\n';
  }
  if (!out) return Status::IoError("write failed on " + path);
  return Status::Ok();
}

StatusOr<Dataset> ParseDatasetUcr(std::string_view text) {
  Dataset ds;
  std::size_t line_number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string line(text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos));
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_number;

    // Normalise separators: commas, tabs, and stray CRs become spaces.
    for (char& c : line) {
      if (c == ',' || c == '\t' || c == '\r') c = ' ';
    }
    std::vector<std::string> tokens;
    std::istringstream fields(line);
    std::string token;
    while (fields >> token) tokens.push_back(std::move(token));
    if (tokens.empty()) continue;  // blank line (incl. trailing newline)

    const std::string where = "line " + std::to_string(line_number);
    double label = 0.0;
    if (!ParseDouble(tokens[0], &label)) {
      return Status(StatusCode::kParseError,
                    where + ": label " + QuoteForError(tokens[0]) +
                        " is not a number");
    }
    if (!std::isfinite(label)) {
      return Status(StatusCode::kBadValue, where + ": label is NaN or Inf");
    }
    if (label < static_cast<double>(INT32_MIN) ||
        label > static_cast<double>(INT32_MAX)) {
      return Status(StatusCode::kParseError,
                    where + ": label out of integer range");
    }
    if (tokens.size() < 2) {
      return Status(StatusCode::kParseError, where + ": no values after label");
    }
    Series s;
    s.reserve(tokens.size() - 1);
    for (std::size_t t = 1; t < tokens.size(); ++t) {
      double v = 0.0;
      if (!ParseDouble(tokens[t], &v)) {
        return Status(StatusCode::kParseError,
                      where + ": field " + QuoteForError(tokens[t]) +
                          " is not a number");
      }
      if (!std::isfinite(v)) {
        return Status(StatusCode::kBadValue,
                      where + ": value " + std::to_string(t) +
                          " is NaN or Inf");
      }
      s.push_back(v);
    }
    if (!ds.items.empty() && s.size() != ds.length()) {
      return Status(StatusCode::kRaggedRow,
                    where + ": row has " + std::to_string(s.size()) +
                        " values, expected " + std::to_string(ds.length()));
    }
    ds.items.push_back(std::move(s));
    ds.labels.push_back(static_cast<int>(label));
  }
  if (ds.items.empty()) {
    return Status(StatusCode::kEmptyDataset, "file holds zero series");
  }
  return ds;
}

StatusOr<Dataset> LoadDatasetUcrStatus(const std::string& path) {
  StatusOr<std::string> bytes = ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  return ParseDatasetUcr(*bytes);
}

// ---------------------------------------------------------------------------
// Legacy boolean wrappers.

bool SaveDatasetBinary(const Dataset& dataset, const std::string& path) {
  return SaveDatasetBinaryStatus(dataset, path).ok();
}

bool LoadDatasetBinary(const std::string& path, Dataset* out) {
  if (out == nullptr) return false;
  StatusOr<Dataset> ds = LoadDatasetBinaryStatus(path);
  if (!ds.ok()) return false;
  *out = *std::move(ds);
  return true;
}

bool SaveDatasetUcr(const Dataset& dataset, const std::string& path,
                    char delimiter) {
  return SaveDatasetUcrStatus(dataset, path, delimiter).ok();
}

bool LoadDatasetUcr(const std::string& path, Dataset* out) {
  if (out == nullptr) return false;
  StatusOr<Dataset> ds = LoadDatasetUcrStatus(path);
  if (!ds.ok()) return false;
  *out = *std::move(ds);
  return true;
}

}  // namespace rotind
