#ifndef ROTIND_IO_BYTES_H_
#define ROTIND_IO_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <ostream>
#include <string>

#include "src/core/status.h"

namespace rotind {

/// Low-level binary I/O building blocks shared by the dataset container
/// (src/io/serialize) and the paged index-file format (src/storage). These
/// are the only primitives that touch raw bytes; every format on top of
/// them inherits the same bounds discipline.

/// Bounds-checked cursor over an untrusted in-memory file image. Every read
/// is validated against the remaining byte count; nothing is allocated on
/// behalf of header fields until they have been proven to fit.
class BufferReader {
 public:
  BufferReader(const char* data, std::size_t size) : data_(data), size_(size) {}

  std::size_t remaining() const { return size_ - pos_; }
  std::size_t position() const { return pos_; }

  template <typename T>
  bool Read(T* out) {
    if (remaining() < sizeof(T)) return false;
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadBytes(void* out, std::size_t n) {
    if (remaining() < n) return false;
    if (n != 0) std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  /// Advances the cursor without copying. Fails (and leaves the cursor in
  /// place) when fewer than `n` bytes remain.
  bool Skip(std::size_t n) {
    if (remaining() < n) return false;
    pos_ += n;
    return true;
  }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Writes the raw object representation of a trivially-copyable value.
template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Slurps a whole file into memory. kNotFound when it cannot be opened,
/// kIoError when the read fails partway.
[[nodiscard]] StatusOr<std::string> ReadFileToString(const std::string& path);

/// Durability a WriteStringToFile call guarantees on success.
enum class WriteDurability {
  /// Flushed to the OS: the bytes survive a process crash, but after a
  /// power loss the file may be empty or torn. The default — right for
  /// artifacts a rebuild can regenerate.
  kFlush,
  /// fsync'd before returning: the bytes are on stable storage. For an
  /// atomically-published file (temp write + rename), pair with
  /// SyncDirectory on the parent so the rename itself survives power loss.
  kFsync,
};

/// Writes `content` to `path`, replacing any existing file. kIoError when
/// the file cannot be opened or the write/flush/fsync fails partway. This
/// is the sanctioned file-mutation primitive for layers above io/storage —
/// rotind_lint bans direct fopen/rename outside those two directories, so
/// every ad-hoc writer inherits one error contract instead of growing its
/// own stdio handling.
[[nodiscard]] Status WriteStringToFile(
    const std::string& path, const std::string& content,
    WriteDurability durability = WriteDurability::kFlush);

/// fsyncs the directory `dir` so renames/creates inside it are on stable
/// storage — the second half of a power-loss-durable atomic publication.
[[nodiscard]] Status SyncDirectory(const std::string& dir);

/// 64-bit FNV-1a over a byte range. Used as the integrity checksum of the
/// index-file header, catalog, resident sections, and data pages. Not
/// cryptographic — it detects truncation and bit flips, not adversaries.
std::uint64_t Fnv1a64(const void* data, std::size_t n);

/// Chained variant for checksumming discontiguous ranges: pass the previous
/// result as `seed`. `Fnv1a64(p, n) == Fnv1a64Seeded(p, n, kFnv1aOffset)`.
inline constexpr std::uint64_t kFnv1aOffset = 0xcbf29ce484222325ull;
std::uint64_t Fnv1a64Seeded(const void* data, std::size_t n,
                            std::uint64_t seed);

}  // namespace rotind

#endif  // ROTIND_IO_BYTES_H_
