#ifndef ROTIND_IO_SERIALIZE_H_
#define ROTIND_IO_SERIALIZE_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "src/core/series.h"
#include "src/core/status.h"

namespace rotind {

/// Dataset persistence. Two formats:
///
///  * Binary: a compact versioned container (magic "RIND", version,
///    counts, raw doubles). Fast; intended for caches and tools.
///  * UCR text: the de-facto standard exchange format of the UCR time
///    series archive — one series per line, class label first, values
///    separated by commas (or whitespace). Loading this format means the
///    paper's REAL datasets (Face, Yoga, ...) can be used with this
///    library wherever the synthetic stand-ins appear; see DESIGN.md.
///
/// Loaders are a TRUST BOUNDARY: file contents are untrusted input. Every
/// structural defect maps to a distinct StatusCode (see src/core/status.h
/// and the "Error handling contract" section of DESIGN.md):
///
///   kNotFound         file missing / unreadable
///   kBadMagic         not a RIND container
///   kVersionMismatch  container version this build cannot read
///   kTruncated        file ends before the sections its header promises
///   kCorruptHeader    count/length/name-length fields absurd for the
///                     observed file size (incl. length==0 with count>0)
///   kBadValue         NaN or +/-Inf payload values
///   kRaggedRow        UCR rows of differing lengths
///   kParseError       UCR field that is not a number
///   kEmptyDataset     no series in the file
///
/// Allocation safety: header counts are validated against the actual file
/// size BEFORE any allocation, so a malicious 64-byte file cannot request a
/// multi-GB resize.

[[nodiscard]]
Status SaveDatasetBinaryStatus(const Dataset& dataset, const std::string& path);
[[nodiscard]]
StatusOr<Dataset> LoadDatasetBinaryStatus(const std::string& path);

/// Writes "label,v1,v2,...\n" per item (label 0 when the dataset is
/// unlabelled).
[[nodiscard]]
Status SaveDatasetUcrStatus(const Dataset& dataset, const std::string& path,
                            char delimiter = ',');

/// Reads a UCR-format file. Lines may be comma-, space- or tab-separated;
/// the first field is the integer class label. Requires every series to
/// have the same length.
[[nodiscard]] StatusOr<Dataset> LoadDatasetUcrStatus(const std::string& path);

/// In-memory parsers behind the file loaders. These are the fuzzing entry
/// points (tools/rotind_fuzz_load.cc) and what the fault-injection tests
/// drive directly; they never touch the filesystem.
[[nodiscard]]
StatusOr<Dataset> ParseDatasetBinary(const char* data, std::size_t size);
[[nodiscard]] StatusOr<Dataset> ParseDatasetUcr(std::string_view text);

/// Legacy boolean API, kept for call sites that only need a yes/no (the
/// detailed Status is discarded). Prefer the Status-returning functions.
bool SaveDatasetBinary(const Dataset& dataset, const std::string& path);
bool LoadDatasetBinary(const std::string& path, Dataset* out);
bool SaveDatasetUcr(const Dataset& dataset, const std::string& path,
                    char delimiter = ',');
bool LoadDatasetUcr(const std::string& path, Dataset* out);

}  // namespace rotind

#endif  // ROTIND_IO_SERIALIZE_H_
