#ifndef ROTIND_IO_SERIALIZE_H_
#define ROTIND_IO_SERIALIZE_H_

#include <string>

#include "src/core/series.h"

namespace rotind {

/// Dataset persistence. Two formats:
///
///  * Binary: a compact versioned container (magic "RIND", version,
///    counts, raw doubles). Fast; intended for caches and tools.
///  * UCR text: the de-facto standard exchange format of the UCR time
///    series archive — one series per line, class label first, values
///    separated by commas (or whitespace). Loading this format means the
///    paper's REAL datasets (Face, Yoga, ...) can be used with this
///    library wherever the synthetic stand-ins appear; see DESIGN.md.
///
/// All functions return false (and leave outputs untouched or partially
/// written files behind) on I/O or format errors; no exceptions.

bool SaveDatasetBinary(const Dataset& dataset, const std::string& path);
bool LoadDatasetBinary(const std::string& path, Dataset* out);

/// Writes "label,v1,v2,...\n" per item (label 0 when the dataset is
/// unlabelled).
bool SaveDatasetUcr(const Dataset& dataset, const std::string& path,
                    char delimiter = ',');

/// Reads a UCR-format file. Lines may be comma-, space- or tab-separated;
/// the first field is the integer class label. Requires every series to
/// have the same length.
bool LoadDatasetUcr(const std::string& path, Dataset* out);

}  // namespace rotind

#endif  // ROTIND_IO_SERIALIZE_H_
