#include "src/storage/index_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/io/bytes.h"

namespace rotind::storage {
namespace {

std::uint64_t AlignUp(std::uint64_t value, std::uint64_t alignment) {
  const std::uint64_t rem = value % alignment;
  return rem == 0 ? value : value + (alignment - rem);
}

/// Header fields plus every derived size, all validated against the actual
/// container size BEFORE any allocation (same discipline as the dataset
/// loader: a malicious 64-byte file cannot request a multi-GB resize).
struct HeaderInfo {
  std::uint32_t version = 0;
  std::uint64_t page_size = 0;
  std::uint64_t count = 0;
  std::uint64_t length = 0;
  std::uint64_t sig_dims = 0;
  std::uint64_t paa_dims = 0;
  std::uint64_t ri_dims = 0;      ///< v2 extension header; 0 for v1 files.
  std::uint64_t header_bytes = 0; ///< 64 for v1, 128 for v2.
  std::uint64_t flags = 0;
  std::uint64_t data_bytes = 0;
  std::uint64_t data_pages = 0;
  std::uint64_t resident_end = 0;
  std::uint64_t data_offset = 0;
};

StatusOr<HeaderInfo> ParseHeader(const char* data, std::size_t size,
                                 std::uint64_t file_size) {
  BufferReader reader(data, size);
  char magic[4];
  if (!reader.ReadBytes(magic, sizeof(magic))) {
    return Status(StatusCode::kTruncated, "file too small to hold the magic");
  }
  if (std::memcmp(magic, kIndexMagic, sizeof(magic)) != 0) {
    return Status(StatusCode::kBadMagic, "file does not start with 'RIDX'");
  }
  std::uint32_t version = 0;
  if (!reader.Read(&version)) {
    return Status(StatusCode::kTruncated, "file ends inside the version field");
  }
  if (version != kIndexVersionV1 && version != kIndexVersion) {
    return Status(StatusCode::kVersionMismatch,
                  "index version " + std::to_string(version) +
                      "; this build reads versions " +
                      std::to_string(kIndexVersionV1) + " through " +
                      std::to_string(kIndexVersion));
  }
  HeaderInfo info;
  info.version = version;
  std::uint64_t stored_checksum = 0;
  if (!reader.Read(&info.page_size) || !reader.Read(&info.count) ||
      !reader.Read(&info.length) || !reader.Read(&info.sig_dims) ||
      !reader.Read(&info.paa_dims) || !reader.Read(&info.flags) ||
      !reader.Read(&stored_checksum)) {
    return Status(StatusCode::kTruncated, "file ends inside the header");
  }
  if (Fnv1a64(data, kIndexHeaderBytes - sizeof(std::uint64_t)) !=
      stored_checksum) {
    return Status(StatusCode::kCorruptHeader, "header checksum mismatch");
  }
  info.header_bytes = kIndexHeaderBytes;
  if (version >= 2) {
    // Version 2 carries a fixed-size extension header directly after the
    // base header. Its reserved bytes must be zero so a future version can
    // assign them meaning without v2 readers silently accepting the result.
    info.header_bytes += kIndexExtHeaderBytes;
    std::uint64_t reserved[6] = {};
    std::uint64_t ext_checksum = 0;
    if (!reader.Read(&info.ri_dims) ||
        !reader.ReadBytes(reserved, sizeof reserved) ||
        !reader.Read(&ext_checksum)) {
      return Status(StatusCode::kTruncated,
                    "file ends inside the v2 extension header");
    }
    if (Fnv1a64(data + kIndexHeaderBytes,
                kIndexExtHeaderBytes - sizeof(std::uint64_t)) !=
        ext_checksum) {
      return Status(StatusCode::kCorruptHeader,
                    "extension header checksum mismatch");
    }
    for (std::uint64_t r : reserved) {
      if (r != 0) {
        return Status(StatusCode::kCorruptHeader,
                      "nonzero reserved bytes in the extension header");
      }
    }
  }
  if (info.page_size < kMinPageSize || info.page_size > kMaxPageSize) {
    return Status(StatusCode::kCorruptHeader,
                  "page size " + std::to_string(info.page_size) +
                      " outside [" + std::to_string(kMinPageSize) + ", " +
                      std::to_string(kMaxPageSize) + "]");
  }
  if (info.count == 0) {
    return Status(StatusCode::kEmptyDataset, "index holds zero series");
  }
  if (info.length == 0) {
    return Status(StatusCode::kCorruptHeader,
                  "zero series length with nonzero count");
  }
  // Flag bits are version-gated: a v1 header claiming the v2 RI section is
  // exactly as corrupt as one claiming any other unknown bit.
  const std::uint64_t allowed_flags =
      info.version == kIndexVersionV1
          ? kIndexFlagHasLabels
          : (kIndexFlagHasLabels | kIndexFlagHasRiSig);
  if ((info.flags & ~allowed_flags) != 0) {
    return Status(StatusCode::kCorruptHeader, "unknown flag bits set");
  }
  if (((info.flags & kIndexFlagHasRiSig) != 0) != (info.ri_dims > 0)) {
    return Status(StatusCode::kCorruptHeader,
                  "RI signature flag and ri_dims disagree");
  }
  if (info.sig_dims > info.length || info.paa_dims > info.length ||
      info.ri_dims > info.length) {
    return Status(StatusCode::kCorruptHeader,
                  "signature dims exceed the series length");
  }
  // Caps derived from the ACTUAL container size. count and length are each
  // bounded by file_size/8, which (real files being < 2^61 bytes) keeps
  // every product below computed here overflow-free; the explicit guard
  // covers hostile in-memory images too.
  if (info.count > file_size / sizeof(double) ||
      info.length > file_size / sizeof(double)) {
    return Status(StatusCode::kCorruptHeader,
                  "count/length cannot fit in a file of " +
                      std::to_string(file_size) + " bytes");
  }
  if (info.length > UINT64_MAX / (info.count * sizeof(double))) {
    return Status(StatusCode::kCorruptHeader, "count*length overflows");
  }
  info.data_bytes = info.count * info.length * sizeof(double);
  info.data_pages = (info.data_bytes + info.page_size - 1) / info.page_size;

  const std::uint64_t checksum = sizeof(std::uint64_t);
  std::uint64_t resident = info.header_bytes;
  resident += info.count * 16 + checksum;                           // catalog
  resident += info.data_pages * 8 + checksum;               // page checksums
  resident += info.count * info.sig_dims * sizeof(double) + checksum;
  resident += info.count * info.paa_dims * sizeof(double) + checksum;
  if ((info.flags & kIndexFlagHasRiSig) != 0) {
    resident += info.count * info.ri_dims * sizeof(double) + checksum;
  }
  if ((info.flags & kIndexFlagHasLabels) != 0) {
    resident += info.count * sizeof(std::int32_t) + checksum;
  }
  info.resident_end = resident;
  if (info.resident_end > file_size) {
    return Status(StatusCode::kTruncated,
                  "file ends inside the resident region (" +
                      std::to_string(info.resident_end) + " bytes needed, " +
                      std::to_string(file_size) + " present)");
  }
  info.data_offset = AlignUp(info.resident_end, info.page_size);
  const std::uint64_t total =
      info.data_offset + info.data_pages * info.page_size;
  if (total > file_size) {
    return Status(StatusCode::kTruncated,
                  "file ends inside the data section (" +
                      std::to_string(total) + " bytes needed, " +
                      std::to_string(file_size) + " present)");
  }
  if (total < file_size) {
    return Status(StatusCode::kCorruptHeader,
                  std::to_string(file_size - total) +
                      " trailing bytes after the data section");
  }
  return info;
}

/// Verifies the stored FNV-1a of `[start, start+bytes)` within `image`.
/// The reader must be positioned at the checksum field.
bool SectionChecksumOk(const std::string& image, std::size_t start,
                       std::size_t bytes, BufferReader& reader) {
  std::uint64_t stored = 0;
  if (!reader.Read(&stored)) return false;
  return Fnv1a64(image.data() + start, bytes) == stored;
}

Status CorruptSection(const std::string& name) {
  return Status(StatusCode::kCorruptHeader, name + " checksum mismatch");
}

}  // namespace

Status WriteIndexFile(const Dataset& db, const IndexBuildData& extras,
                      std::size_t page_size_bytes, const std::string& path) {
  const std::size_t count = db.size();
  const std::size_t length = db.length();
  if (count == 0 || length == 0) {
    return Status::InvalidArgument("refusing to write an empty index");
  }
  if (page_size_bytes < kMinPageSize || page_size_bytes > kMaxPageSize) {
    return Status::InvalidArgument(
        "page size " + std::to_string(page_size_bytes) + " outside [" +
        std::to_string(kMinPageSize) + ", " + std::to_string(kMaxPageSize) +
        "]");
  }
  if (extras.sig_dims > length || extras.paa_dims > length ||
      extras.ri_dims > length) {
    return Status::InvalidArgument("signature dims exceed the series length");
  }
  if (extras.signatures.size() != count * extras.sig_dims ||
      extras.paa.size() != count * extras.paa_dims ||
      extras.ri_signatures.size() != count * extras.ri_dims) {
    return Status::InvalidArgument(
        "signature matrix shape does not match count x dims");
  }
  if (!extras.labels.empty() && extras.labels.size() != count) {
    return Status::InvalidArgument("label count does not match series count");
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (db.items[i].size() != length) {
      return Status::InvalidArgument(
          "dataset is ragged: item " + std::to_string(i) + " has length " +
          std::to_string(db.items[i].size()) + ", expected " +
          std::to_string(length));
    }
    for (double v : db.items[i]) {
      if (!std::isfinite(v)) {
        return Status(StatusCode::kBadValue,
                      "item " + std::to_string(i) +
                          " contains a non-finite value; refusing to write");
      }
    }
  }
  for (double v : extras.signatures) {
    if (!std::isfinite(v)) {
      return Status(StatusCode::kBadValue, "non-finite FFT signature value");
    }
  }
  for (double v : extras.paa) {
    if (!std::isfinite(v)) {
      return Status(StatusCode::kBadValue, "non-finite PAA summary value");
    }
  }
  for (double v : extras.ri_signatures) {
    if (!std::isfinite(v)) {
      return Status(StatusCode::kBadValue, "non-finite RI signature value");
    }
  }

  const std::uint64_t data_bytes =
      static_cast<std::uint64_t>(count) * length * sizeof(double);
  const std::uint64_t data_pages =
      (data_bytes + page_size_bytes - 1) / page_size_bytes;

  // Materialize the padded data section to checksum its pages.
  std::string data(static_cast<std::size_t>(data_pages * page_size_bytes),
                   '\0');
  for (std::size_t i = 0; i < count; ++i) {
    std::memcpy(data.data() + i * length * sizeof(double), db.items[i].data(),
                length * sizeof(double));
  }
  std::vector<std::uint64_t> page_checksums(
      static_cast<std::size_t>(data_pages));
  for (std::size_t p = 0; p < page_checksums.size(); ++p) {
    page_checksums[p] =
        Fnv1a64(data.data() + p * page_size_bytes, page_size_bytes);
  }

  // Emit the OLDEST version that can represent the payload: v1 (and a
  // byte-identical file to pre-v2 builds) unless the RI section is present.
  const bool has_ri = extras.ri_dims > 0;
  const std::uint32_t version = has_ri ? kIndexVersion : kIndexVersionV1;
  std::ostringstream header_buf;
  header_buf.write(kIndexMagic, sizeof(kIndexMagic));
  WritePod(header_buf, version);
  WritePod(header_buf, static_cast<std::uint64_t>(page_size_bytes));
  WritePod(header_buf, static_cast<std::uint64_t>(count));
  WritePod(header_buf, static_cast<std::uint64_t>(length));
  WritePod(header_buf, static_cast<std::uint64_t>(extras.sig_dims));
  WritePod(header_buf, static_cast<std::uint64_t>(extras.paa_dims));
  std::uint64_t flags = extras.labels.empty() ? 0 : kIndexFlagHasLabels;
  if (has_ri) flags |= kIndexFlagHasRiSig;
  WritePod(header_buf, flags);
  const std::string header = std::move(header_buf).str();

  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  const std::uint64_t header_checksum = Fnv1a64(header.data(), header.size());
  WritePod(out, header_checksum);
  std::uint64_t written = kIndexHeaderBytes;
  if (has_ri) {
    std::ostringstream ext_buf;
    WritePod(ext_buf, static_cast<std::uint64_t>(extras.ri_dims));
    const std::string reserved(48, '\0');
    ext_buf.write(reserved.data(),
                  static_cast<std::streamsize>(reserved.size()));
    const std::string ext = std::move(ext_buf).str();
    out.write(ext.data(), static_cast<std::streamsize>(ext.size()));
    WritePod(out, Fnv1a64(ext.data(), ext.size()));
    written += kIndexExtHeaderBytes;
  }

  // Each resident section is written, then its checksum. WriteSection
  // returns the byte count so the caller tracks the padding target.
  const auto write_section = [&](const void* bytes, std::size_t n) {
    if (n != 0) {
      out.write(static_cast<const char*>(bytes),
                static_cast<std::streamsize>(n));
    }
    WritePod(out, Fnv1a64(bytes, n));
    written += n + sizeof(std::uint64_t);
  };

  std::vector<std::uint64_t> catalog(count * 2);
  for (std::size_t i = 0; i < count; ++i) {
    catalog[2 * i] = static_cast<std::uint64_t>(i) * length * sizeof(double);
    catalog[2 * i + 1] = length * sizeof(double);
  }
  write_section(catalog.data(), catalog.size() * sizeof(std::uint64_t));
  write_section(page_checksums.data(),
                page_checksums.size() * sizeof(std::uint64_t));
  write_section(extras.signatures.data(),
                extras.signatures.size() * sizeof(double));
  write_section(extras.paa.data(), extras.paa.size() * sizeof(double));
  if (has_ri) {
    write_section(extras.ri_signatures.data(),
                  extras.ri_signatures.size() * sizeof(double));
  }
  if (!extras.labels.empty()) {
    std::vector<std::int32_t> labels32(extras.labels.begin(),
                                       extras.labels.end());
    write_section(labels32.data(), labels32.size() * sizeof(std::int32_t));
  }

  const std::uint64_t data_offset = AlignUp(written, page_size_bytes);
  const std::string padding(static_cast<std::size_t>(data_offset - written),
                            '\0');
  out.write(padding.data(), static_cast<std::streamsize>(padding.size()));
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out) return Status::IoError("write failed on " + path);
  return Status::Ok();
}

StatusOr<std::unique_ptr<IndexFile>> IndexFile::ParseResident(
    const std::string& resident, std::uint64_t file_size) {
  StatusOr<HeaderInfo> parsed =
      ParseHeader(resident.data(), resident.size(), file_size);
  if (!parsed.ok()) return parsed.status();
  const HeaderInfo& info = *parsed;
  if (resident.size() < info.resident_end) {
    return Status(StatusCode::kTruncated,
                  "resident region ends before its sections");
  }

  std::unique_ptr<IndexFile> file(new IndexFile());
  file->count_ = static_cast<std::size_t>(info.count);
  file->length_ = static_cast<std::size_t>(info.length);
  file->page_size_ = static_cast<std::size_t>(info.page_size);
  file->data_pages_ = static_cast<std::size_t>(info.data_pages);
  file->data_offset_ = info.data_offset;
  file->sig_dims_ = static_cast<std::size_t>(info.sig_dims);
  file->paa_dims_ = static_cast<std::size_t>(info.paa_dims);

  BufferReader reader(resident.data(), resident.size());
  // Header (and, for v2, extension header) already verified.
  (void)reader.Skip(static_cast<std::size_t>(info.header_bytes));

  std::size_t start = reader.position();
  file->catalog_.resize(file->count_);
  const std::uint64_t data_size = info.data_pages * info.page_size;
  for (std::size_t i = 0; i < file->count_; ++i) {
    Extent& e = file->catalog_[i];
    (void)reader.Read(&e.offset);  // resident_end check proved these fit
    (void)reader.Read(&e.bytes);
  }
  if (!SectionChecksumOk(resident, start, file->count_ * 16, reader)) {
    return CorruptSection("catalog");
  }
  for (std::size_t i = 0; i < file->count_; ++i) {
    const Extent& e = file->catalog_[i];
    if (e.bytes != info.length * sizeof(double) || e.offset > data_size ||
        e.bytes > data_size - e.offset) {
      return Status(StatusCode::kCorruptHeader,
                    "catalog entry " + std::to_string(i) +
                        " points outside the data section");
    }
  }

  start = reader.position();
  file->page_checksums_.resize(file->data_pages_);
  for (std::uint64_t& sum : file->page_checksums_) (void)reader.Read(&sum);
  if (!SectionChecksumOk(resident, start, file->data_pages_ * 8, reader)) {
    return CorruptSection("page checksum table");
  }

  start = reader.position();
  file->sigs_.resize(file->count_ * file->sig_dims_);
  (void)reader.ReadBytes(file->sigs_.data(),
                         file->sigs_.size() * sizeof(double));
  if (!SectionChecksumOk(resident, start, file->sigs_.size() * sizeof(double),
                         reader)) {
    return CorruptSection("FFT signature section");
  }

  start = reader.position();
  file->paa_.resize(file->count_ * file->paa_dims_);
  (void)reader.ReadBytes(file->paa_.data(),
                         file->paa_.size() * sizeof(double));
  if (!SectionChecksumOk(resident, start, file->paa_.size() * sizeof(double),
                         reader)) {
    return CorruptSection("PAA summary section");
  }
  for (double v : file->sigs_) {
    if (!std::isfinite(v)) {
      return Status(StatusCode::kBadValue, "non-finite FFT signature value");
    }
  }
  for (double v : file->paa_) {
    if (!std::isfinite(v)) {
      return Status(StatusCode::kBadValue, "non-finite PAA summary value");
    }
  }

  if ((info.flags & kIndexFlagHasRiSig) != 0) {
    file->ri_dims_ = static_cast<std::size_t>(info.ri_dims);
    start = reader.position();
    file->ri_sigs_.resize(file->count_ * file->ri_dims_);
    (void)reader.ReadBytes(file->ri_sigs_.data(),
                           file->ri_sigs_.size() * sizeof(double));
    if (!SectionChecksumOk(resident, start,
                           file->ri_sigs_.size() * sizeof(double), reader)) {
      return CorruptSection("RI signature section");
    }
    for (double v : file->ri_sigs_) {
      if (!std::isfinite(v)) {
        return Status(StatusCode::kBadValue, "non-finite RI signature value");
      }
    }
  }

  if ((info.flags & kIndexFlagHasLabels) != 0) {
    start = reader.position();
    file->labels_.resize(file->count_);
    for (int& label : file->labels_) {
      std::int32_t v = 0;
      (void)reader.Read(&v);
      label = v;
    }
    if (!SectionChecksumOk(resident, start, file->count_ * 4, reader)) {
      return CorruptSection("label section");
    }
  }
  return file;
}

StatusOr<std::unique_ptr<IndexFile>> IndexFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::NotFound("cannot open " + path);
  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    ::close(fd);
    return Status::IoError("cannot stat " + path);
  }
  const std::uint64_t file_size = static_cast<std::uint64_t>(end);

  // Two-phase open: read the fixed header region (base header plus the
  // possible v2 extension) to learn the resident region's size, then read
  // exactly that region. The data section is never slurped — it is served
  // page-at-a-time through ReadPage.
  std::string header(kIndexHeaderBytes + kIndexExtHeaderBytes, '\0');
  const std::size_t header_bytes =
      std::min<std::uint64_t>(file_size, header.size());
  ssize_t got = ::pread(fd, header.data(), header_bytes, 0);
  if (got < 0 || static_cast<std::size_t>(got) != header_bytes) {
    ::close(fd);
    return Status::IoError("short read on " + path + " header");
  }
  StatusOr<HeaderInfo> info =
      ParseHeader(header.data(), header_bytes, file_size);
  if (!info.ok()) {
    ::close(fd);
    return info.status();
  }

  std::string resident(static_cast<std::size_t>(info->resident_end), '\0');
  got = ::pread(fd, resident.data(), resident.size(), 0);
  if (got < 0 || static_cast<std::size_t>(got) != resident.size()) {
    ::close(fd);
    return Status::IoError("short read on " + path + " resident region");
  }
  StatusOr<std::unique_ptr<IndexFile>> file =
      ParseResident(resident, file_size);
  if (!file.ok()) {
    ::close(fd);
    return file.status();
  }
  (*file)->fd_ = fd;
  (*file)->path_ = path;
  return file;
}

StatusOr<std::unique_ptr<IndexFile>> IndexFile::FromMemory(std::string bytes) {
  StatusOr<std::unique_ptr<IndexFile>> file =
      ParseResident(bytes, bytes.size());
  if (!file.ok()) return file.status();
  (*file)->memory_ = std::move(bytes);
  return file;
}

IndexFile::~IndexFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status IndexFile::ReadPage(std::size_t page, char* out) const {
  if (page >= data_pages_) {
    return Status::OutOfRange("page " + std::to_string(page) +
                              " out of range; index has " +
                              std::to_string(data_pages_) + " data pages");
  }
  const std::uint64_t offset =
      data_offset_ + static_cast<std::uint64_t>(page) * page_size_;
  if (fd_ >= 0) {
    std::size_t done = 0;
    while (done < page_size_) {
      const ssize_t got =
          ::pread(fd_, out + done, page_size_ - done,
                  static_cast<off_t>(offset + done));
      if (got < 0) {
        if (errno == EINTR) continue;
        return Status::IoError("pread failed on " + path_ + " page " +
                               std::to_string(page));
      }
      if (got == 0) {
        return Status(StatusCode::kTruncated,
                      "file ends inside data page " + std::to_string(page));
      }
      done += static_cast<std::size_t>(got);
    }
  } else {
    if (offset + page_size_ > memory_.size()) {
      return Status(StatusCode::kTruncated,
                    "image ends inside data page " + std::to_string(page));
    }
    std::memcpy(out, memory_.data() + offset, page_size_);
  }
  if (Fnv1a64(out, page_size_) != page_checksums_[page]) {
    return Status(StatusCode::kCorruptHeader,
                  "data page " + std::to_string(page) +
                      " checksum mismatch (bit rot or torn write)");
  }
  return Status::Ok();
}

}  // namespace rotind::storage
