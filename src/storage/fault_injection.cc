#include "src/storage/fault_injection.h"

#include <thread>

namespace rotind::storage {

FaultSchedule::FaultSchedule(const FaultScheduleSpec& spec)
    : spec_(spec), rng_(spec.seed) {}

FaultAction FaultSchedule::Decide(std::uint64_t key) {
  MutexLock lock(mutex_);
  FaultAction action;
  if (spec_.permanent_fail_key >= 0 &&
      key == static_cast<std::uint64_t>(spec_.permanent_fail_key)) {
    action.kind = FaultKind::kTransientRead;  // fails on every attempt
    ++counters_.transient_errors;
    return action;
  }
  const auto burst = burst_remaining_.find(key);
  if (burst != burst_remaining_.end()) {
    if (--burst->second <= 0) burst_remaining_.erase(burst);
    action.kind = FaultKind::kTransientRead;
    ++counters_.transient_errors;
    return action;
  }
  const double draw = rng_.NextDouble();
  if (draw < spec_.transient_read_prob) {
    if (spec_.transient_burst > 1) {
      burst_remaining_[key] = spec_.transient_burst - 1;
    }
    action.kind = FaultKind::kTransientRead;
    ++counters_.transient_errors;
  } else if (draw < spec_.transient_read_prob + spec_.torn_page_prob) {
    action.kind = FaultKind::kTornPage;
    ++counters_.torn_pages;
  } else if (draw < spec_.transient_read_prob + spec_.torn_page_prob +
                        spec_.latency_spike_prob) {
    action.kind = FaultKind::kLatencySpike;
    action.latency = spec_.latency_spike;
    ++counters_.latency_spikes;
  }
  return action;
}

FaultCounters FaultSchedule::counters() const {
  MutexLock lock(mutex_);
  return counters_;
}

Status FaultInjectingSource::ReadPage(std::size_t page, char* out) const {
  const FaultAction action = schedule_.Decide(page);
  switch (action.kind) {
    case FaultKind::kTransientRead:
      return Status::IoError("injected transient read error on page " +
                             std::to_string(page));
    case FaultKind::kTornPage:
      // A torn page reads back real bytes that fail checksum; model the
      // *detected* outcome directly with the code IndexFile reports.
      return Status(StatusCode::kCorruptHeader,
                    "injected torn page " + std::to_string(page) +
                        ": checksum mismatch");
    case FaultKind::kLatencySpike:
      // NOTE: the sleep happens inside the BufferPool's single mutex when
      // reached through a pool miss, so a spike convoys concurrent pins —
      // intentional: that is how a slow disk read behaves under this pool
      // design, and it is attributable in the p99 column.
      std::this_thread::sleep_for(action.latency);
      break;
    case FaultKind::kNone:
      break;
  }
  return inner_.ReadPage(page, out);
}

}  // namespace rotind::storage
