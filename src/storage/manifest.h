#ifndef ROTIND_STORAGE_MANIFEST_H_
#define ROTIND_STORAGE_MANIFEST_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/status.h"

namespace rotind::storage {

/// Shard-set manifest ("RMAN" container, version 1): the single small file
/// that names which RIDX shards make up one index GENERATION, plus the
/// tombstone set masking deleted shard rows. The manifest is the unit of
/// atomic publication — a new generation (after compaction or ingest)
/// becomes visible by atomically renaming a fully-written, fsync'd temp
/// file over the old manifest (then fsyncing the directory), so readers
/// observe either the old complete generation or the new complete
/// generation, never a mixture — across process crashes AND power loss.
///
/// Layout (little-endian, both checksums 64-bit FNV-1a):
///
///   +--------------------------------------------------------------+
///   | header (40 bytes, fixed)                                     |
///   |   magic "RMAN" | version u32 | generation u64                |
///   |   shard_count u64 | tombstone_count u64                      |
///   |   header checksum u64 (over the 36 bytes before it)          |
///   +--------------------------------------------------------------+
///   | shard table: shard_count x                                   |
///   |   {name_len u32, name bytes, count u64, length u64}          |
///   | tombstones: tombstone_count x u64, strictly ascending,       |
///   |   each < the sum of shard counts                             |
///   | body checksum u64 (over everything between the header        |
///   |   checksum and this field)                                   |
///   +--------------------------------------------------------------+
///
/// Shard names are paths RELATIVE to the manifest's own directory (no '/'
/// allowed, no NUL, 1..255 bytes), so a shard set moves as one directory.
/// Tombstones address GLOBAL shard rows: shard s's rows occupy positions
/// [sum(count of shards < s), ...) of the concatenated set.
///
/// Error taxonomy mirrors the RIDX container (src/storage/index_file.h):
///   kBadMagic         not a RMAN file
///   kVersionMismatch  written by an incompatible version
///   kTruncated        file ends before the sections its header promises
///   kCorruptHeader    checksum mismatch or internally absurd fields
///   kIoError          read/write/rename failure on the filesystem
///
/// A generation ROLLBACK (opening a manifest whose generation is not
/// greater than the generation already being served) is deliberately NOT a
/// parse error — the bytes are well-formed — it is a reload-policy
/// rejection, enforced where a generation is swapped in (ShardedIndex
/// reopen, QueryServer::SwapEngine).

inline constexpr char kManifestMagic[4] = {'R', 'M', 'A', 'N'};
inline constexpr std::uint32_t kManifestVersion = 1;
/// Fixed header size: magic (4) + version (4) + generation (8) +
/// shard_count (8) + tombstone_count (8) + header checksum (8).
inline constexpr std::size_t kManifestHeaderBytes = 40;
/// Shard-name length cap; also the absurdity bound for name_len fields.
inline constexpr std::size_t kMaxShardNameBytes = 255;
/// Absurdity bound on shard_count: no real deployment approaches it, and
/// it keeps a corrupt count field from driving a giant allocation before
/// the truncation check can fire.
inline constexpr std::uint64_t kMaxManifestShards = 1u << 20;

/// One shard entry: a RIDX file (relative to the manifest directory) and
/// the shape the manifest writer recorded for it. The recorded count and
/// length let a reader cross-check the opened shard against what the
/// generation expects (a swapped-out shard file is a corruption, not a
/// surprise).
struct ManifestShard {
  std::string file;
  std::uint64_t count = 0;   ///< Series in the shard.
  std::uint64_t length = 0;  ///< Common series length.
};

struct Manifest {
  std::uint64_t generation = 0;
  std::vector<ManifestShard> shards;
  /// Deleted global shard-row ids, strictly ascending, each < total_count().
  std::vector<std::uint64_t> tombstones;

  /// Sum of shard counts (the global shard-row id space).
  [[nodiscard]] std::uint64_t total_count() const;
};

/// Parses an in-memory manifest image. This is the fuzzing entry point
/// (tools/rotind_fuzz_load.cc): any byte string must map to a Status or a
/// Manifest, never a crash or an unbounded allocation.
[[nodiscard]] StatusOr<Manifest> ParseManifest(const char* data,
                                               std::size_t size);

/// Reads and parses `path`. kNotFound when the file cannot be opened.
[[nodiscard]] StatusOr<Manifest> LoadManifest(const std::string& path);

/// Renders `manifest` to its on-disk byte image. Validates shard names and
/// the tombstone invariants (the writer refuses to produce an image its
/// own parser would reject).
[[nodiscard]] StatusOr<std::string> SerializeManifest(
    const Manifest& manifest);

/// Crash-injection hook for WriteManifest, exercising the two places an
/// interrupted publication can die. Either way the OLD manifest at `path`
/// must remain untouched and loadable — that is the property the swap
/// tests pin down.
enum class ManifestWriteFault {
  kNone,
  /// Die after the temp file is fully written but before the rename: the
  /// publication never happened; a stale temp file may remain.
  kCrashBeforeRename,
  /// Die mid-write: the temp file holds a torn prefix and the rename never
  /// runs.
  kTornTempWrite,
};

/// Atomically publishes `manifest` at `path`: serializes, writes AND
/// fsyncs `path + ".tmp"`, renames it over `path`, and fsyncs the parent
/// directory — so the publication survives power loss, not just process
/// death. With a non-kNone fault the write stops at the corresponding
/// point and returns kIoError, leaving any previous manifest at `path`
/// intact.
[[nodiscard]] Status WriteManifest(const Manifest& manifest,
                                   const std::string& path,
                                   ManifestWriteFault fault =
                                       ManifestWriteFault::kNone);

}  // namespace rotind::storage

#endif  // ROTIND_STORAGE_MANIFEST_H_
