#include "src/storage/buffer_pool.h"

#include <string>

#include "src/core/contracts.h"

namespace rotind::storage {

BufferPool::Pinned& BufferPool::Pinned::operator=(Pinned&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    data_ = other.data_;
    page_ = other.page_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

void BufferPool::Pinned::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    data_ = nullptr;
  }
}

BufferPool::BufferPool(const PageSource& source, std::size_t capacity_pages,
                       EvictionPolicy policy)
    : source_(source),
      page_size_(source.page_size_bytes()),
      policy_(policy),
      capacity_(capacity_pages == 0 ? 1 : capacity_pages) {
  frames_.resize(capacity_);
  for (Frame& frame : frames_) frame.data.resize(page_size_);
}

void BufferPool::Unpin(std::size_t frame) {
  MutexLock lock(mutex_);
  ROTIND_DCHECK(frames_[frame].pins > 0);
  --frames_[frame].pins;
}

StatusOr<std::size_t> BufferPool::PickFrameLocked() {
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    if (!frames_[i].occupied) return i;
  }
  if (policy_ == EvictionPolicy::kLru) {
    std::size_t victim = frames_.size();
    for (std::size_t i = 0; i < frames_.size(); ++i) {
      if (frames_[i].pins != 0) continue;
      if (victim == frames_.size() ||
          frames_[i].last_use < frames_[victim].last_use) {
        victim = i;
      }
    }
    if (victim != frames_.size()) return victim;
  } else {
    // Clock: up to two sweeps — the first clears reference bits, so the
    // second is guaranteed to find a cold frame if any frame is unpinned.
    for (std::size_t step = 0; step < 2 * frames_.size(); ++step) {
      Frame& frame = frames_[hand_];
      const std::size_t here = hand_;
      hand_ = (hand_ + 1) % frames_.size();
      if (frame.pins != 0) continue;
      if (frame.referenced) {
        frame.referenced = false;
        continue;
      }
      return here;
    }
  }
  return Status::InvalidArgument(
      "buffer pool capacity exhausted: all " +
      std::to_string(frames_.size()) + " frames are pinned");
}

StatusOr<BufferPool::Pinned> BufferPool::Pin(std::size_t page,
                                             PinOutcome* outcome) {
  if (outcome != nullptr) *outcome = PinOutcome{};
  MutexLock lock(mutex_);
  if (page >= source_.num_pages()) {
    return Status::OutOfRange("page " + std::to_string(page) +
                              " out of range; source has " +
                              std::to_string(source_.num_pages()) + " pages");
  }

  const auto it = page_to_frame_.find(page);
  if (it != page_to_frame_.end()) {
    Frame& frame = frames_[it->second];
    ++frame.pins;
    frame.last_use = ++tick_;
    frame.referenced = true;
    ++counters_.hits;
    if (outcome != nullptr) outcome->hit = true;
    return Pinned(this, it->second, frame.data.data(), page);
  }

  StatusOr<std::size_t> slot = PickFrameLocked();
  if (!slot.ok()) return slot.status();
  Frame& frame = frames_[*slot];
  if (frame.occupied) {
    ROTIND_DCHECK(frame.pins == 0);
    page_to_frame_.erase(frame.page);
    frame.occupied = false;
    ++counters_.evictions;
    if (outcome != nullptr) outcome->evicted = true;
  }
  // The source read happens under the pool mutex: correctness first.
  // ReadPage failure leaves the frame free (unoccupied, unpinned, and not
  // in page_to_frame_), so a transient I/O error does not poison the pool:
  // the Status propagates to the caller and the very next Pin of the same
  // page retries the read into a clean frame.
  Status read = source_.ReadPage(page, frame.data.data());
  if (!read.ok()) {
    ROTIND_DCHECK(!frame.occupied && frame.pins == 0);
    ROTIND_DCHECK(page_to_frame_.find(page) == page_to_frame_.end());
    ++counters_.failed_reads;
    return read;
  }
  frame.page = page;
  frame.occupied = true;
  frame.pins = 1;
  frame.last_use = ++tick_;
  frame.referenced = true;
  page_to_frame_[page] = *slot;
  ++counters_.misses;
  counters_.bytes_read += page_size_;
  if (outcome != nullptr) outcome->bytes_read = page_size_;
  return Pinned(this, *slot, frame.data.data(), page);
}

std::size_t BufferPool::resident_pages() const {
  MutexLock lock(mutex_);
  return page_to_frame_.size();
}

std::size_t BufferPool::pinned_pages() const {
  MutexLock lock(mutex_);
  std::size_t pinned = 0;
  for (const Frame& frame : frames_) {
    if (frame.occupied && frame.pins > 0) ++pinned;
  }
  return pinned;
}

PoolCounters BufferPool::counters() const {
  MutexLock lock(mutex_);
  return counters_;
}

}  // namespace rotind::storage
