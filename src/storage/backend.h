#ifndef ROTIND_STORAGE_BACKEND_H_
#define ROTIND_STORAGE_BACKEND_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/flat_dataset.h"
#include "src/core/series.h"
#include "src/core/status.h"
#include "src/core/sync.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/fault_injection.h"
#include "src/storage/index_file.h"
#include "src/storage/simulated_disk.h"

namespace rotind::storage {

/// Pluggable candidate-series storage behind the QueryEngine and
/// RotationInvariantIndex: every refinement fetch goes through one of
/// these instead of poking a `std::vector<Series>` directly.
///
///   kInMemory   zero-copy borrow from a FlatDataset — today's behavior,
///               no I/O, no accounting beyond the fetch count.
///   kSimulated  the paper's Section 5.4 accounting stub (SimulatedDisk):
///               bytes live in RAM but page reads are tallied as if the
///               series were packed contiguously into fixed-size pages.
///   kFile       a real paged RIDX index file read with pread through a
///               BufferPool (pin -> copy -> unpin per page).
enum class BackendKind { kInMemory, kSimulated, kFile };

/// Per-fetch (or per-query, when accumulated) I/O accounting. The engine
/// folds these into obs::StageStats under the kDiskFetch stage so
/// --metrics-json attributes real I/O per query.
struct FetchStats {
  std::uint64_t object_fetches = 0;
  std::uint64_t page_reads = 0;      ///< Pages read from the medium.
  std::uint64_t pool_hits = 0;       ///< Pages served by the buffer pool.
  std::uint64_t pool_evictions = 0;  ///< Frames recycled to serve misses.
  std::uint64_t bytes_read = 0;      ///< Bytes read from the medium.
  std::uint64_t retries = 0;         ///< Re-attempted page pins.
  std::uint64_t faults_absorbed = 0; ///< Pins that succeeded on a retry.

  FetchStats& operator+=(const FetchStats& other) {
    object_fetches += other.object_fetches;
    page_reads += other.page_reads;
    pool_hits += other.pool_hits;
    pool_evictions += other.pool_evictions;
    bytes_read += other.bytes_read;
    retries += other.retries;
    faults_absorbed += other.faults_absorbed;
    return *this;
  }
};

/// Bounded retry-with-backoff for transient storage faults. Only the
/// transient codes (kIoError, kCorruptHeader — a failed read and a torn
/// page) are retried; everything else surfaces immediately.
struct RetryPolicy {
  int max_attempts = 1;  ///< Total attempts; 1 disables retry.
  std::chrono::nanoseconds initial_backoff{100'000};  // 100 us
  double backoff_multiplier = 2.0;

  [[nodiscard]] bool enabled() const { return max_attempts > 1; }
};

/// True for Status codes a retry may clear (the transient fault classes).
[[nodiscard]] bool IsRetryableStorageError(StatusCode code);

/// A fetched series: either a zero-copy borrow (in-memory and simulated
/// backends) or an owned buffer assembled from pool pages (file backend).
/// The pointer stays valid while the handle lives.
class SeriesHandle {
 public:
  SeriesHandle() = default;

  static SeriesHandle Borrowed(const double* data, std::size_t n) {
    SeriesHandle h;
    h.borrowed_ = data;
    h.n_ = n;
    return h;
  }

  static SeriesHandle TakeOwned(std::vector<double> values) {
    SeriesHandle h;
    h.owned_ = std::move(values);
    h.n_ = h.owned_.size();
    return h;
  }

  [[nodiscard]] bool valid() const {
    return borrowed_ != nullptr || !owned_.empty();
  }
  [[nodiscard]] const double* data() const {
    return borrowed_ != nullptr ? borrowed_ : owned_.data();
  }
  [[nodiscard]] std::size_t length() const { return n_; }

 private:
  const double* borrowed_ = nullptr;
  std::vector<double> owned_;
  std::size_t n_ = 0;
};

/// Uniform read interface over the three storages. All methods are const
/// and thread-safe (SearchBatch shares one backend across workers).
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  virtual BackendKind backend_kind() const = 0;
  /// Short stable name for logs and JSON: "memory" / "simulated" / "file".
  virtual const char* name() const = 0;
  virtual std::size_t size() const = 0;
  virtual std::size_t length() const = 0;

  /// Fetches object `i` (precondition: i < size()). `stats`, when non-null,
  /// accumulates the I/O this fetch performed. On an I/O failure the file
  /// backend returns an invalid handle and latches the Status (see
  /// error()); the in-memory backends cannot fail.
  virtual SeriesHandle Fetch(std::size_t i, FetchStats* stats) const = 0;

  /// Validated fetch for tools and untrusted callers: bounds-checked,
  /// surfaces I/O errors as a Status instead of latching.
  [[nodiscard]] virtual StatusOr<SeriesHandle> TryFetch(
      std::size_t i, FetchStats* stats) const;

  /// Class label of object `i` (0 when the backend carries no labels).
  virtual int label(std::size_t i) const;

  /// First I/O error latched by an unchecked Fetch; OK for healthy
  /// backends. Engines check this once per query, not per candidate.
  [[nodiscard]] virtual Status error() const { return Status::Ok(); }

  /// Resets the latched error. A long-running server calls this after
  /// reporting a failed query, so one transient fault does not poison
  /// every later query on the shared backend. No-op for backends that
  /// cannot fail.
  virtual void ClearError() const {}
};

/// Zero-copy over a FlatDataset (which must outlive the backend).
class InMemoryBackend final : public StorageBackend {
 public:
  explicit InMemoryBackend(const FlatDataset& flat) : flat_(&flat) {}

  BackendKind backend_kind() const override { return BackendKind::kInMemory; }
  const char* name() const override { return "memory"; }
  std::size_t size() const override { return flat_->size(); }
  std::size_t length() const override { return flat_->length(); }
  SeriesHandle Fetch(std::size_t i, FetchStats* stats) const override;
  int label(std::size_t i) const override;

  /// The borrowed dataset, exposing the SoA tiles for blocked scoring
  /// (QueryEngine's 8-candidates-at-a-time cascade terminals). Fetch on
  /// this backend is a free borrow, so a driver that reads tiles directly
  /// is observationally identical to one that fetches per candidate.
  const FlatDataset* flat() const { return flat_; }

 private:
  const FlatDataset* flat_;
};

/// Wraps SimulatedDisk: real bytes in RAM, paper-parity page accounting.
class SimulatedBackend final : public StorageBackend {
 public:
  SimulatedBackend(const std::vector<Series>& db, std::size_t page_size_bytes);
  SimulatedBackend(const FlatDataset& flat, std::size_t page_size_bytes);

  BackendKind backend_kind() const override { return BackendKind::kSimulated; }
  const char* name() const override { return "simulated"; }
  std::size_t size() const override { return disk_.num_objects(); }
  std::size_t length() const override { return length_; }
  SeriesHandle Fetch(std::size_t i, FetchStats* stats) const override;

  const SimulatedDisk& disk() const { return disk_; }

 private:
  SimulatedDisk disk_;
  std::size_t length_ = 0;
};

/// pread-backed RIDX index file behind a BufferPool. Each fetch pins the
/// pages the object's catalog extent touches, copies the slices into an
/// owned buffer, and unpins — so a handle never holds pool frames hostage.
class FileBackend final : public StorageBackend {
 public:
  /// Per-backend knobs beyond pool sizing: the retry budget for transient
  /// page faults and an optional seeded fault schedule installed *under*
  /// the pool (FaultInjectingSource), so injected faults travel the exact
  /// path real disk errors take.
  struct Tuning {
    RetryPolicy retry;
    FaultScheduleSpec faults;
  };

  [[nodiscard]] static StatusOr<std::unique_ptr<FileBackend>> Open(
      const std::string& path, std::size_t pool_pages,
      EvictionPolicy eviction, const Tuning& tuning = Tuning());

  /// Adopts an already-parsed index (file- or memory-backed); used by
  /// tests and the fuzzer.
  [[nodiscard]] static std::unique_ptr<FileBackend> FromIndex(
      std::unique_ptr<IndexFile> file, std::size_t pool_pages,
      EvictionPolicy eviction, const Tuning& tuning = Tuning());

  BackendKind backend_kind() const override { return BackendKind::kFile; }
  const char* name() const override { return "file"; }
  std::size_t size() const override { return file_->num_objects(); }
  std::size_t length() const override { return file_->series_length(); }
  SeriesHandle Fetch(std::size_t i, FetchStats* stats) const override;
  [[nodiscard]] StatusOr<SeriesHandle> TryFetch(
      std::size_t i, FetchStats* stats) const override;
  int label(std::size_t i) const override;
  [[nodiscard]] Status error() const override;
  void ClearError() const override;

  [[nodiscard]] const IndexFile& file() const { return *file_; }
  [[nodiscard]] const BufferPool& pool() const { return pool_; }
  [[nodiscard]] const RetryPolicy& retry_policy() const { return retry_; }
  /// Injected-fault totals; all-zero when no fault schedule is installed.
  [[nodiscard]] FaultCounters fault_counters() const;

 private:
  FileBackend(std::unique_ptr<IndexFile> file, std::size_t pool_pages,
              EvictionPolicy eviction, const Tuning& tuning);

  /// Pins `page` with bounded retry-with-backoff; transient failures
  /// (IsRetryableStorageError) are re-attempted up to the policy budget,
  /// accumulating per-attempt I/O into `stats`.
  [[nodiscard]] StatusOr<BufferPool::Pinned> PinWithRetry(
      std::size_t page, FetchStats* stats) const;

  const std::unique_ptr<IndexFile> file_;
  const RetryPolicy retry_;
  /// Null when disabled; set once in the constructor.
  const std::unique_ptr<FaultSchedule> fault_schedule_;
  const std::unique_ptr<FaultInjectingSource> fault_source_;
  /// SYNC-EXEMPT: internally synchronized — BufferPool owns its own Mutex.
  mutable BufferPool pool_;
  /// kBackendError rank: acquired with no other lock held (PinWithRetry
  /// releases the pool pin before Fetch latches a failure), and strictly
  /// above the pool so error() may never be called from inside a pin.
  mutable Mutex error_mutex_{LockRank::kBackendError};
  /// First failure from an unchecked Fetch.
  mutable Status error_ ROTIND_GUARDED_BY(error_mutex_);
};

/// StorageBackend decorator that injects faults at the *object fetch*
/// boundary — above any pool or retry machinery — so engine- and
/// server-level error handling can be driven deterministically over any
/// inner backend (including the in-memory ones that cannot otherwise
/// fail). Fault keys are object ids.
class FaultInjectingBackend final : public StorageBackend {
 public:
  /// Owning: the decorator keeps `inner` alive.
  FaultInjectingBackend(std::unique_ptr<StorageBackend> inner,
                        const FaultScheduleSpec& spec);
  /// Borrowing: `inner` must outlive the decorator.
  FaultInjectingBackend(const StorageBackend& inner,
                        const FaultScheduleSpec& spec);

  BackendKind backend_kind() const override {
    return inner_->backend_kind();
  }
  const char* name() const override { return "fault-injecting"; }
  std::size_t size() const override { return inner_->size(); }
  std::size_t length() const override { return inner_->length(); }
  SeriesHandle Fetch(std::size_t i, FetchStats* stats) const override;
  [[nodiscard]] StatusOr<SeriesHandle> TryFetch(
      std::size_t i, FetchStats* stats) const override;
  int label(std::size_t i) const override { return inner_->label(i); }
  [[nodiscard]] Status error() const override;
  void ClearError() const override;

  [[nodiscard]] FaultCounters fault_counters() const {
    return schedule_.counters();
  }
  [[nodiscard]] const StorageBackend& inner() const { return *inner_; }

 private:
  const std::unique_ptr<StorageBackend> owned_;
  const StorageBackend* const inner_;
  /// SYNC-EXEMPT: internally synchronized — FaultSchedule owns its own
  /// Mutex.
  mutable FaultSchedule schedule_;
  mutable Mutex error_mutex_{LockRank::kBackendError};
  /// First injected failure from unchecked Fetch.
  mutable Status error_ ROTIND_GUARDED_BY(error_mutex_);
};

/// Backend selection, carried inside EngineOptions. kInMemory and
/// kSimulated build over the caller's dataset; kFile opens `index_path`.
struct StorageOptions {
  BackendKind backend = BackendKind::kInMemory;
  std::string index_path;               ///< kFile: RIDX file to open.
  std::size_t pool_pages = 64;          ///< kFile: BufferPool capacity.
  EvictionPolicy eviction = EvictionPolicy::kLru;
  std::size_t page_size_bytes = 4096;   ///< kSimulated page size.
  RetryPolicy retry;                    ///< kFile: transient-fault retry.
  FaultScheduleSpec faults;             ///< kFile: injected-fault schedule.
};

/// Builds the backend `options` asks for. `in_memory_source` is required
/// for kInMemory (borrowed — must outlive the backend) and kSimulated
/// (copied); it is ignored for kFile.
[[nodiscard]] StatusOr<std::unique_ptr<StorageBackend>> OpenBackend(
    const StorageOptions& options, const FlatDataset* in_memory_source);

}  // namespace rotind::storage

#endif  // ROTIND_STORAGE_BACKEND_H_
