#ifndef ROTIND_STORAGE_SIMULATED_DISK_H_
#define ROTIND_STORAGE_SIMULATED_DISK_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/series.h"
#include "src/core/status.h"

namespace rotind::storage {

/// A simulated paged object store. The paper's Section 5.4 measures "the
/// fraction of items that must be retrieved from disk"; this class is the
/// accounting substrate: full time series live "on disk", indexes keep only
/// compressed signatures in memory, and every Fetch is tallied (object
/// fetches and the page reads they imply, assuming series are stored
/// contiguously in `page_size_bytes` pages).
///
/// Page accounting is offset-aware: object i starts at the byte offset
/// where object i-1 ended, and a fetch reads every page its byte range
/// touches — so a series straddling a page boundary costs one page more
/// than its size alone implies, exactly as a real paged store would.
///
/// Thread safety: counters are atomic, so concurrent Fetches from the
/// deterministic SearchBatch path tally correctly. Store/StoreAll are not
/// thread-safe and must happen-before any concurrent Fetch.
class SimulatedDisk {
 public:
  explicit SimulatedDisk(std::size_t page_size_bytes = 4096);

  SimulatedDisk(const SimulatedDisk&) = delete;
  SimulatedDisk& operator=(const SimulatedDisk&) = delete;
  SimulatedDisk(SimulatedDisk&& other) noexcept;
  SimulatedDisk& operator=(SimulatedDisk&& other) noexcept;

  /// Stores a series; returns its object id (dense, starting at 0).
  int Store(const Series& s);

  /// Stores a whole database in order.
  void StoreAll(const std::vector<Series>& db);

  /// Whether `id` names a stored object.
  bool Contains(int id) const {
    return id >= 0 && static_cast<std::size_t>(id) < objects_.size();
  }

  /// Reads an object back, counting the access. Returns kOutOfRange for an
  /// invalid id (no access is counted).
  [[nodiscard]] StatusOr<const Series*> TryFetch(int id) const;

  /// Reads without counting (for test verification / setup).
  [[nodiscard]] StatusOr<const Series*> TryPeek(int id) const;

  /// Reference-returning conveniences for callers that already validated
  /// `id` (internal index code fetches only ids it stored). Bounds-checked:
  /// an invalid id returns a reference to a shared empty Series and counts
  /// nothing — defined behavior, never UB.
  const Series& Fetch(int id) const;
  const Series& Peek(int id) const;

  std::size_t num_objects() const { return objects_.size(); }
  std::size_t page_size_bytes() const { return page_size_bytes_; }

  /// Pages a fetch of `id` reads: every page its byte range [offset,
  /// offset + bytes) touches. 0 for an invalid id or an empty series.
  std::uint64_t PagesSpanned(int id) const;

  std::uint64_t object_fetches() const {
    return object_fetches_.load(std::memory_order_relaxed);
  }
  std::uint64_t page_reads() const {
    return page_reads_.load(std::memory_order_relaxed);
  }

  /// Fraction of stored objects fetched so far — Figure 24's y-axis.
  /// (Counts fetches, not distinct objects; search algorithms fetch each
  /// object at most once.)
  double FetchFraction() const;

  void ResetCounters();

 private:
  std::size_t page_size_bytes_;
  std::vector<Series> objects_;
  /// Byte offset of each object in the contiguous simulated layout.
  std::vector<std::uint64_t> offsets_;
  std::uint64_t next_offset_ = 0;
  mutable std::atomic<std::uint64_t> object_fetches_{0};
  mutable std::atomic<std::uint64_t> page_reads_{0};
};

}  // namespace rotind::storage

#endif  // ROTIND_STORAGE_SIMULATED_DISK_H_
