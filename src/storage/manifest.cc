#include "src/storage/manifest.h"

#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include "src/io/bytes.h"

namespace rotind::storage {
namespace {

/// Header field block checksummed by the header checksum: everything
/// before the checksum itself.
constexpr std::size_t kHeaderChecksummedBytes =
    kManifestHeaderBytes - sizeof(std::uint64_t);

Status Corrupt(const std::string& what) {
  return {StatusCode::kCorruptHeader, what};
}

Status Truncated(const std::string& what) {
  return {StatusCode::kTruncated, what};
}

/// Directory prefix of `path` ("." when the path has no separator) — the
/// directory whose entry must be fsync'd for a rename inside it to be
/// durable.
std::string DirOf(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Shard names must survive a round trip through "manifest directory +
/// name": non-empty, bounded, single path component, no NUL.
Status ValidateShardName(const std::string& name) {
  if (name.empty()) return Corrupt("empty shard file name");
  if (name.size() > kMaxShardNameBytes) {
    return Corrupt("shard file name longer than " +
                   std::to_string(kMaxShardNameBytes) + " bytes");
  }
  for (char c : name) {
    if (c == '\0' || c == '/') {
      return Corrupt("shard file name contains '/' or NUL");
    }
  }
  return Status::Ok();
}

Status ValidateManifest(const Manifest& m) {
  if (m.shards.size() > kMaxManifestShards) {
    return Corrupt("shard count " + std::to_string(m.shards.size()) +
                   " exceeds the " + std::to_string(kMaxManifestShards) +
                   " cap");
  }
  std::uint64_t total = 0;
  for (const ManifestShard& shard : m.shards) {
    Status name_ok = ValidateShardName(shard.file);
    if (!name_ok.ok()) return name_ok;
    if (shard.count == 0) return Corrupt("shard with zero series");
    if (shard.length == 0) return Corrupt("shard with zero series length");
    // Absurdity bound: keeps the total_count sum from wrapping u64 (which
    // would defeat the tombstone range check below).
    if (shard.count > (1ull << 40) || shard.length > (1ull << 40)) {
      return Corrupt("shard count/length field is absurdly large");
    }
    if (shard.length != m.shards.front().length) {
      return Corrupt("shards disagree on series length");
    }
    total += shard.count;
  }
  for (std::size_t i = 0; i < m.tombstones.size(); ++i) {
    if (m.tombstones[i] >= total) {
      return Corrupt("tombstone " + std::to_string(m.tombstones[i]) +
                     " outside the " + std::to_string(total) +
                     " shard rows");
    }
    if (i > 0 && m.tombstones[i] <= m.tombstones[i - 1]) {
      return Corrupt("tombstones not strictly ascending");
    }
  }
  return Status::Ok();
}

}  // namespace

std::uint64_t Manifest::total_count() const {
  std::uint64_t total = 0;
  for (const ManifestShard& shard : shards) total += shard.count;
  return total;
}

StatusOr<Manifest> ParseManifest(const char* data, std::size_t size) {
  BufferReader reader(data, size);
  char magic[4];
  if (!reader.ReadBytes(magic, sizeof magic)) {
    return Truncated("manifest shorter than its magic");
  }
  if (std::memcmp(magic, kManifestMagic, sizeof magic) != 0) {
    return Status(StatusCode::kBadMagic,
                  "file does not start with 'RMAN'");
  }
  std::uint32_t version = 0;
  std::uint64_t generation = 0;
  std::uint64_t shard_count = 0;
  std::uint64_t tombstone_count = 0;
  std::uint64_t header_checksum = 0;
  if (!reader.Read(&version) || !reader.Read(&generation) ||
      !reader.Read(&shard_count) || !reader.Read(&tombstone_count) ||
      !reader.Read(&header_checksum)) {
    return Truncated("manifest shorter than its header");
  }
  const std::uint64_t expected_header =
      Fnv1a64(data, kHeaderChecksummedBytes);
  if (header_checksum != expected_header) {
    return Corrupt("manifest header checksum mismatch");
  }
  if (version != kManifestVersion) {
    return Status(StatusCode::kVersionMismatch,
                  "manifest version " + std::to_string(version) +
                      "; this build reads version " +
                      std::to_string(kManifestVersion));
  }
  if (shard_count > kMaxManifestShards) {
    return Corrupt("shard count " + std::to_string(shard_count) +
                   " exceeds the " + std::to_string(kMaxManifestShards) +
                   " cap");
  }
  // Size-based absurdity bounds, BEFORE any count-driven allocation: every
  // shard entry costs at least 21 body bytes (name_len u32 + a 1-byte name
  // + count u64 + length u64) and every tombstone 8, so a count the file
  // cannot physically hold is rejected without reserving for it.
  constexpr std::uint64_t kMinShardEntryBytes = 21;
  if (shard_count > size / kMinShardEntryBytes) {
    return Corrupt("shard count " + std::to_string(shard_count) +
                   " cannot fit in a " + std::to_string(size) +
                   "-byte manifest");
  }
  if (tombstone_count > size / sizeof(std::uint64_t)) {
    return Corrupt("tombstone count " + std::to_string(tombstone_count) +
                   " cannot fit in a " + std::to_string(size) +
                   "-byte manifest");
  }

  Manifest manifest;
  manifest.generation = generation;
  manifest.shards.reserve(static_cast<std::size_t>(shard_count));
  const std::size_t body_begin = reader.position();
  for (std::uint64_t s = 0; s < shard_count; ++s) {
    std::uint32_t name_len = 0;
    if (!reader.Read(&name_len)) {
      return Truncated("manifest ends inside its shard table");
    }
    if (name_len == 0 || name_len > kMaxShardNameBytes) {
      return Corrupt("shard name length " + std::to_string(name_len) +
                     " outside [1, " + std::to_string(kMaxShardNameBytes) +
                     "]");
    }
    ManifestShard shard;
    shard.file.resize(name_len);
    if (!reader.ReadBytes(shard.file.data(), name_len) ||
        !reader.Read(&shard.count) || !reader.Read(&shard.length)) {
      return Truncated("manifest ends inside its shard table");
    }
    manifest.shards.push_back(std::move(shard));
  }
  manifest.tombstones.resize(static_cast<std::size_t>(tombstone_count));
  for (std::uint64_t& t : manifest.tombstones) {
    if (!reader.Read(&t)) {
      return Truncated("manifest ends inside its tombstone list");
    }
  }
  std::uint64_t body_checksum = 0;
  if (!reader.Read(&body_checksum)) {
    return Truncated("manifest ends before its body checksum");
  }
  const std::uint64_t expected_body =
      Fnv1a64(data + body_begin, reader.position() - sizeof(std::uint64_t) -
                                     body_begin);
  if (body_checksum != expected_body) {
    return Corrupt("manifest body checksum mismatch");
  }
  if (reader.remaining() != 0) {
    return Corrupt(std::to_string(reader.remaining()) +
                   " trailing bytes after the manifest body checksum");
  }
  Status valid = ValidateManifest(manifest);
  if (!valid.ok()) return valid;
  return manifest;
}

StatusOr<Manifest> LoadManifest(const std::string& path) {
  StatusOr<std::string> bytes = ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  return ParseManifest(bytes->data(), bytes->size());
}

StatusOr<std::string> SerializeManifest(const Manifest& manifest) {
  Status valid = ValidateManifest(manifest);
  if (!valid.ok()) return valid;
  std::ostringstream out;
  out.write(kManifestMagic, sizeof kManifestMagic);
  WritePod(out, kManifestVersion);
  WritePod(out, manifest.generation);
  WritePod(out, static_cast<std::uint64_t>(manifest.shards.size()));
  WritePod(out, static_cast<std::uint64_t>(manifest.tombstones.size()));
  std::string header = std::move(out).str();
  const std::uint64_t header_checksum =
      Fnv1a64(header.data(), header.size());

  std::ostringstream body;
  for (const ManifestShard& shard : manifest.shards) {
    WritePod(body, static_cast<std::uint32_t>(shard.file.size()));
    body.write(shard.file.data(),
               static_cast<std::streamsize>(shard.file.size()));
    WritePod(body, shard.count);
    WritePod(body, shard.length);
  }
  for (std::uint64_t t : manifest.tombstones) WritePod(body, t);
  std::string body_bytes = std::move(body).str();
  const std::uint64_t body_checksum =
      Fnv1a64(body_bytes.data(), body_bytes.size());

  std::string image = std::move(header);
  image.append(reinterpret_cast<const char*>(&header_checksum),
               sizeof header_checksum);
  image += body_bytes;
  image.append(reinterpret_cast<const char*>(&body_checksum),
               sizeof body_checksum);
  return image;
}

Status WriteManifest(const Manifest& manifest, const std::string& path,
                     ManifestWriteFault fault) {
  StatusOr<std::string> image = SerializeManifest(manifest);
  if (!image.ok()) return image.status();
  const std::string tmp = path + ".tmp";
  if (fault == ManifestWriteFault::kTornTempWrite) {
    // Simulated crash mid-write: half the image lands in the temp file,
    // the rename never runs. The previous manifest at `path` is untouched.
    const std::string torn = image->substr(0, image->size() / 2);
    Status write = WriteStringToFile(tmp, torn);
    if (!write.ok()) return write;
    return Status::IoError("injected crash: torn temp-file write of " + tmp);
  }
  // fsync'd BEFORE the rename: without it the rename could land on disk
  // ahead of the temp file's data after a power loss, publishing an empty
  // or torn manifest under the final name.
  Status write = WriteStringToFile(tmp, *image, WriteDurability::kFsync);
  if (!write.ok()) return write;
  if (fault == ManifestWriteFault::kCrashBeforeRename) {
    // Simulated crash between the complete temp write and the rename: the
    // new generation was never published.
    return Status::IoError("injected crash: " + tmp +
                           " written but never renamed over " + path);
  }
  // The atomic publication point. std::rename replaces `path` in one
  // filesystem operation, so a reader sees either the old or the new
  // manifest — never a prefix of the new one.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename " + tmp + " -> " + path + " failed");
  }
  // The rename is durable only once the directory entry is on stable
  // storage too.
  return SyncDirectory(DirOf(path));
}

}  // namespace rotind::storage
